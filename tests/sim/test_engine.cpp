// Unit tests for the discrete-event engine: clock advance, determinism,
// event ordering, flags/notifiers, deadlock detection, error propagation.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <vector>

namespace sim = mv2gnc::sim;

TEST(SimTime, UnitConstructors) {
  EXPECT_EQ(sim::nanoseconds(5), 5);
  EXPECT_EQ(sim::microseconds(3), 3'000);
  EXPECT_EQ(sim::milliseconds(2), 2'000'000);
  EXPECT_EQ(sim::seconds(1), 1'000'000'000);
}

TEST(SimTime, Conversions) {
  EXPECT_DOUBLE_EQ(sim::to_us(1500), 1.5);
  EXPECT_DOUBLE_EQ(sim::to_ms(2'500'000), 2.5);
  EXPECT_DOUBLE_EQ(sim::to_sec(1'000'000'000), 1.0);
}

TEST(SimTime, Format) {
  EXPECT_EQ(sim::format_time(500), "500 ns");
  EXPECT_EQ(sim::format_time(sim::microseconds(12)), "12.00 us");
  EXPECT_EQ(sim::format_time(sim::milliseconds(40)), "40.00 ms");
  EXPECT_EQ(sim::format_time(sim::seconds(12)), "12.000 s");
}

TEST(Engine, EmptyRunFinishesAtTimeZero) {
  sim::Engine eng;
  eng.run();
  EXPECT_EQ(eng.now(), 0);
}

TEST(Engine, SingleProcessDelayAdvancesClock) {
  sim::Engine eng;
  sim::SimTime observed = -1;
  eng.spawn("p", [&] {
    eng.delay(sim::microseconds(10));
    observed = eng.now();
  });
  eng.run();
  EXPECT_EQ(observed, sim::microseconds(10));
  EXPECT_EQ(eng.now(), sim::microseconds(10));
}

TEST(Engine, ZeroAndNegativeDelaysDoNotMoveClockBackwards) {
  sim::Engine eng;
  eng.spawn("p", [&] {
    eng.delay(sim::microseconds(5));
    eng.delay(0);
    EXPECT_EQ(eng.now(), sim::microseconds(5));
    eng.delay(-100);  // clamped to zero
    EXPECT_EQ(eng.now(), sim::microseconds(5));
  });
  eng.run();
}

TEST(Engine, ProcessesInterleaveByVirtualTime) {
  sim::Engine eng;
  std::vector<int> order;
  eng.spawn("slow", [&] {
    eng.delay(100);
    order.push_back(1);
    eng.delay(100);  // wakes at 200
    order.push_back(3);
  });
  eng.spawn("fast", [&] {
    eng.delay(150);
    order.push_back(2);
  });
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Engine, SameTimeEventsRunFifo) {
  sim::Engine eng;
  std::vector<int> order;
  for (int i = 0; i < 8; ++i) {
    eng.spawn("p" + std::to_string(i), [&, i] {
      eng.delay(100);
      order.push_back(i);
    });
  }
  eng.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(Engine, ScheduleAtRunsActionAtRequestedTime) {
  sim::Engine eng;
  sim::SimTime fired_at = -1;
  eng.schedule_at(sim::microseconds(7), [&] { fired_at = eng.now(); });
  eng.run();
  EXPECT_EQ(fired_at, sim::microseconds(7));
}

TEST(Engine, ScheduleAfterFromProcessIsRelative) {
  sim::Engine eng;
  sim::SimTime fired_at = -1;
  eng.spawn("p", [&] {
    eng.delay(100);
    eng.schedule_after(50, [&] { fired_at = eng.now(); });
    eng.delay(1000);  // keep sim alive past the event
  });
  eng.run();
  EXPECT_EQ(fired_at, 150);
}

TEST(Engine, EventFlagWakesAllWaiters) {
  sim::Engine eng;
  sim::EventFlag flag(eng);
  int woken = 0;
  for (int i = 0; i < 3; ++i) {
    eng.spawn("waiter" + std::to_string(i), [&] {
      flag.wait();
      ++woken;
      EXPECT_EQ(eng.now(), 500);
    });
  }
  eng.spawn("trigger", [&] {
    eng.delay(500);
    flag.trigger();
  });
  eng.run();
  EXPECT_EQ(woken, 3);
}

TEST(Engine, EventFlagWaitAfterTriggerReturnsImmediately) {
  sim::Engine eng;
  sim::EventFlag flag(eng);
  eng.spawn("p", [&] {
    flag.trigger();
    flag.wait();  // must not block
    EXPECT_EQ(eng.now(), 0);
  });
  eng.run();
}

TEST(Engine, EventFlagResetBlocksAgain) {
  sim::Engine eng;
  sim::EventFlag flag(eng);
  std::vector<sim::SimTime> wakes;
  eng.spawn("waiter", [&] {
    flag.wait();
    wakes.push_back(eng.now());
    flag.reset();
    flag.wait();
    wakes.push_back(eng.now());
  });
  eng.spawn("trigger", [&] {
    eng.delay(10);
    flag.trigger();  // waiter wakes at t=10 and resets the flag
    eng.delay(10);
    flag.trigger();  // flag was reset, so this wakes the waiter again
  });
  eng.run();
  ASSERT_EQ(wakes.size(), 2u);
  EXPECT_EQ(wakes[0], 10);
  EXPECT_EQ(wakes[1], 20);
}

TEST(Engine, NotifierCoalescesPendingNotifications) {
  sim::Engine eng;
  sim::Notifier n(eng);
  int wakeups = 0;
  eng.spawn("consumer", [&] {
    n.wait();  // should see the 3 pre-deposited tokens as one wake
    ++wakeups;
    n.wait();  // blocks until the producer's later notify
    ++wakeups;
    EXPECT_EQ(eng.now(), 100);
  });
  eng.spawn("producer", [&] {
    n.notify();
    n.notify();
    n.notify();
    eng.delay(100);
    n.notify();
  });
  eng.run();
  EXPECT_EQ(wakeups, 2);
}

TEST(Engine, NotifierTryConsume) {
  sim::Engine eng;
  sim::Notifier n(eng);
  eng.spawn("p", [&] {
    EXPECT_FALSE(n.try_consume());
    n.notify();
    n.notify();
    EXPECT_TRUE(n.try_consume());
    EXPECT_FALSE(n.try_consume());
  });
  eng.run();
}

TEST(Engine, DeadlockDetectedWithDiagnostics) {
  sim::Engine eng;
  sim::EventFlag never(eng);
  eng.spawn("stuck-process", [&] { never.wait("waiting-for-godot"); });
  try {
    eng.run();
    FAIL() << "expected DeadlockError";
  } catch (const sim::DeadlockError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("stuck-process"), std::string::npos);
    EXPECT_NE(what.find("waiting-for-godot"), std::string::npos);
  }
}

TEST(Engine, ExceptionInProcessPropagatesToRun) {
  sim::Engine eng;
  eng.spawn("thrower", [&] {
    eng.delay(10);
    throw std::runtime_error("boom");
  });
  eng.spawn("bystander", [&] { eng.delay(sim::seconds(100)); });
  EXPECT_THROW(eng.run(), std::runtime_error);
}

TEST(Engine, SpawnFromRunningProcess) {
  sim::Engine eng;
  std::vector<std::string> log;
  eng.spawn("parent", [&] {
    eng.delay(10);
    eng.spawn("child", [&] {
      log.push_back("child@" + std::to_string(eng.now()));
      eng.delay(5);
      log.push_back("child-done@" + std::to_string(eng.now()));
    });
    log.push_back("parent@" + std::to_string(eng.now()));
    eng.delay(100);
  });
  eng.run();
  ASSERT_EQ(log.size(), 3u);
  EXPECT_EQ(log[0], "parent@10");
  EXPECT_EQ(log[1], "child@10");
  EXPECT_EQ(log[2], "child-done@15");
}

TEST(Engine, CurrentProcessNameVisibleInsideProcess) {
  sim::Engine eng;
  std::string seen;
  eng.spawn("rank-3", [&] { seen = eng.current_process_name(); });
  eng.run();
  EXPECT_EQ(seen, "rank-3");
  EXPECT_EQ(eng.current_process_name(), "");
}

TEST(Engine, BlockingPrimitiveOffProcessThrows) {
  sim::Engine eng;
  EXPECT_THROW(eng.delay(10), std::logic_error);
}

TEST(Engine, DeterministicAcrossRuns) {
  auto run_once = [] {
    sim::Engine eng;
    std::vector<std::pair<std::string, sim::SimTime>> log;
    for (int i = 0; i < 5; ++i) {
      eng.spawn("p" + std::to_string(i), [&, i] {
        for (int k = 0; k < 4; ++k) {
          eng.delay(17 * (i + 1));
          log.emplace_back("p" + std::to_string(i), eng.now());
        }
      });
    }
    eng.run();
    return log;
  };
  auto a = run_once();
  auto b = run_once();
  EXPECT_EQ(a, b);
}

TEST(Engine, ManyEventsStressAndCount) {
  sim::Engine eng;
  constexpr int kSteps = 2000;
  eng.spawn("looper", [&] {
    for (int i = 0; i < kSteps; ++i) eng.delay(1);
  });
  eng.run();
  EXPECT_EQ(eng.now(), kSteps);
  EXPECT_GE(eng.events_executed(), static_cast<std::uint64_t>(kSteps));
}

TEST(Engine, SeededRngIsDeterministic) {
  auto draw = [](std::uint64_t seed) {
    sim::Engine eng;
    eng.seed_rng(seed);
    std::vector<std::uint64_t> out;
    for (int i = 0; i < 16; ++i) out.push_back(eng.rand_u64());
    return out;
  };
  EXPECT_EQ(draw(123), draw(123));
  EXPECT_NE(draw(123), draw(124));
}

TEST(Engine, RandHelpersStayInRange) {
  sim::Engine eng;
  eng.seed_rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double u = eng.rand_uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
    EXPECT_LT(eng.rand_below(17), 17u);
  }
  EXPECT_EQ(eng.rand_below(0), 0u);
  EXPECT_EQ(eng.rand_below(1), 0u);
}

TEST(Engine, TimerFiresAtScheduledTime) {
  sim::Engine eng;
  sim::SimTime fired_at = -1;
  eng.spawn("driver", [&] {
    eng.schedule_timer(eng.now() + 500, [&] { fired_at = eng.now(); });
    eng.delay(1000);
  });
  eng.run();
  EXPECT_EQ(fired_at, 500);
}

TEST(Engine, CancelledTimerNeverFiresNorAdvancesClock) {
  sim::Engine eng;
  bool fired = false;
  eng.spawn("driver", [&] {
    const sim::TimerId id =
        eng.schedule_timer(eng.now() + 10'000, [&] { fired = true; });
    eng.delay(100);
    EXPECT_TRUE(eng.cancel_timer(id));
    EXPECT_FALSE(eng.cancel_timer(id));  // second cancel is a no-op
  });
  eng.run();
  EXPECT_FALSE(fired);
  // The orphaned timer event is discarded without dragging the clock out to
  // its deadline.
  EXPECT_EQ(eng.now(), 100);
}
