#include "sim/trace.hpp"

#include <gtest/gtest.h>

namespace sim = mv2gnc::sim;

TEST(Trace, DisabledByDefaultRecordsNothing) {
  sim::TraceRecorder tr;
  tr.record(0, "east_cuda", 0, 100);
  EXPECT_TRUE(tr.records().empty());
}

TEST(Trace, RecordsWhenEnabled) {
  sim::TraceRecorder tr;
  tr.set_enabled(true);
  tr.record(1, "east_cuda", 10, 110);
  tr.record(1, "east_cuda", 200, 250);
  tr.record(1, "east_mpi", 110, 140);
  tr.record(2, "east_cuda", 0, 5);
  ASSERT_EQ(tr.records().size(), 4u);
  EXPECT_EQ(tr.total(1, "east_cuda"), 150);
  EXPECT_EQ(tr.total(1, "east_mpi"), 30);
  EXPECT_EQ(tr.total(2, "east_cuda"), 5);
  EXPECT_EQ(tr.total(1, "west_cuda"), 0);
}

TEST(Trace, TotalAcrossRanks) {
  sim::TraceRecorder tr;
  tr.set_enabled(true);
  tr.record(0, "rdma", 0, 10);
  tr.record(1, "rdma", 0, 20);
  EXPECT_EQ(tr.total("rdma"), 30);
}

TEST(Trace, CategoriesFirstSeenOrder) {
  sim::TraceRecorder tr;
  tr.set_enabled(true);
  tr.record(3, "south_mpi", 0, 1);
  tr.record(3, "west_mpi", 1, 2);
  tr.record(3, "south_mpi", 2, 3);
  tr.record(3, "east_cuda", 3, 4);
  auto cats = tr.categories(3);
  ASSERT_EQ(cats.size(), 3u);
  EXPECT_EQ(cats[0], "south_mpi");
  EXPECT_EQ(cats[1], "west_mpi");
  EXPECT_EQ(cats[2], "east_cuda");
}

TEST(Trace, ClearResets) {
  sim::TraceRecorder tr;
  tr.set_enabled(true);
  tr.record(0, "x", 0, 1);
  tr.clear();
  EXPECT_TRUE(tr.records().empty());
  EXPECT_EQ(tr.total(0, "x"), 0);
}

TEST(Trace, DurationHelper) {
  sim::TraceRecord r{0, "c", 100, 350};
  EXPECT_EQ(r.duration(), 250);
}

TEST(Trace, CountsPointEvents) {
  sim::TraceRecorder tr;
  tr.set_enabled(true);
  tr.event(0, "fault_timeout", 10);
  tr.event(0, "fault_timeout", 20);
  tr.event(1, "fault_timeout", 30);
  tr.event(0, "fault_rts_retransmit", 40);
  EXPECT_EQ(tr.count(0, "fault_timeout"), 2u);
  EXPECT_EQ(tr.count(1, "fault_timeout"), 1u);
  EXPECT_EQ(tr.count("fault_timeout"), 3u);
  EXPECT_EQ(tr.count("fault_rts_retransmit"), 1u);
  EXPECT_EQ(tr.count("fault_stall_fallback"), 0u);
}

TEST(Trace, EventsAreNoOpsWhenDisabled) {
  sim::TraceRecorder tr;
  tr.event(0, "fault_timeout", 10);
  EXPECT_EQ(tr.count("fault_timeout"), 0u);
  EXPECT_TRUE(tr.records().empty());
}
