// Engine property tests: clock monotonicity, FIFO fairness and
// determinism under randomized (seeded) event storms.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace sim = mv2gnc::sim;

namespace {

struct StormLog {
  std::vector<sim::SimTime> times;
  bool monotone = true;
};

StormLog run_storm(unsigned seed, int procs, int steps) {
  sim::Engine eng;
  StormLog log;
  sim::SimTime last = 0;
  auto observe = [&](sim::SimTime t) {
    if (t < last) log.monotone = false;
    last = t;
    log.times.push_back(t);
  };
  for (int p = 0; p < procs; ++p) {
    eng.spawn("p" + std::to_string(p), [&, p, seed] {
      std::mt19937 rng(seed * 97 + static_cast<unsigned>(p));
      for (int s = 0; s < steps; ++s) {
        eng.delay(static_cast<sim::SimTime>(rng() % 1000));
        observe(eng.now());
      }
    });
  }
  eng.run();
  return log;
}

}  // namespace

class EngineStorm : public ::testing::TestWithParam<unsigned> {};

TEST_P(EngineStorm, ClockMonotoneAndDeterministic) {
  const unsigned seed = GetParam();
  StormLog a = run_storm(seed, 6, 200);
  EXPECT_TRUE(a.monotone);
  EXPECT_EQ(a.times.size(), 6u * 200u);
  StormLog b = run_storm(seed, 6, 200);
  EXPECT_EQ(a.times, b.times);  // bit-reproducible
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineStorm,
                         ::testing::Values(1u, 7u, 42u, 1234u));

TEST(EngineStress, ResourceStormConservesBusyTime) {
  sim::Engine eng;
  sim::FifoResource res(eng, "srv");
  std::mt19937 rng(5);
  sim::SimTime total = 0;
  constexpr int kOps = 500;
  eng.spawn("driver", [&] {
    sim::EventFlag all_done(eng);
    int remaining = kOps;
    for (int i = 0; i < kOps; ++i) {
      const auto d = static_cast<sim::SimTime>(rng() % 2000);
      total += d;
      res.submit(d, [&] {
        if (--remaining == 0) all_done.trigger();
      });
      if (i % 50 == 0) eng.delay(100);  // occasional idle gaps
    }
    all_done.wait();
  });
  eng.run();
  EXPECT_EQ(res.total_busy_time(), total);
  EXPECT_EQ(res.operations(), static_cast<std::uint64_t>(kOps));
  // A serial server can never finish before the sum of service times.
  EXPECT_GE(eng.now(), total);
}

TEST(EngineStress, ChainedSpawnsDepth) {
  sim::Engine eng;
  int depth = 0;
  std::function<void(int)> spawn_next = [&](int level) {
    depth = std::max(depth, level);
    if (level >= 64) return;
    eng.spawn("child" + std::to_string(level), [&, level] {
      eng.delay(1);
      spawn_next(level + 1);
    });
  };
  eng.spawn("root", [&] { spawn_next(1); });
  eng.run();
  EXPECT_EQ(depth, 64);
  EXPECT_EQ(eng.now(), 63);  // child k resumes at t=k-1; the last spawn is a no-op
}

TEST(EngineStress, ManyWaitersOnOneFlag) {
  sim::Engine eng;
  sim::EventFlag flag(eng);
  int woken = 0;
  constexpr int kWaiters = 100;
  for (int i = 0; i < kWaiters; ++i) {
    eng.spawn("w" + std::to_string(i), [&] {
      flag.wait();
      ++woken;
    });
  }
  eng.schedule_at(sim::microseconds(5), [&] { flag.trigger(); });
  eng.run();
  EXPECT_EQ(woken, kWaiters);
}
