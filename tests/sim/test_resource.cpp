#include "sim/resource.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"

namespace sim = mv2gnc::sim;

TEST(FifoResource, SingleOperationCompletesAfterDuration) {
  sim::Engine eng;
  sim::FifoResource res(eng, "dma");
  sim::SimTime completed_at = -1;
  eng.spawn("p", [&] {
    sim::EventFlag done(eng);
    sim::SimTime predicted =
        res.submit(sim::microseconds(10), [&] { done.trigger(); });
    EXPECT_EQ(predicted, sim::microseconds(10));
    done.wait();
    completed_at = eng.now();
  });
  eng.run();
  EXPECT_EQ(completed_at, sim::microseconds(10));
}

TEST(FifoResource, OperationsSerialize) {
  sim::Engine eng;
  sim::FifoResource res(eng, "dma");
  std::vector<sim::SimTime> completions;
  eng.spawn("p", [&] {
    sim::EventFlag done(eng);
    // Three back-to-back 5us operations must finish at 5, 10, 15us.
    int remaining = 3;
    for (int i = 0; i < 3; ++i) {
      res.submit(sim::microseconds(5), [&] {
        completions.push_back(eng.now());
        if (--remaining == 0) done.trigger();
      });
    }
    done.wait();
  });
  eng.run();
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_EQ(completions[0], sim::microseconds(5));
  EXPECT_EQ(completions[1], sim::microseconds(10));
  EXPECT_EQ(completions[2], sim::microseconds(15));
}

TEST(FifoResource, IdleGapResetsQueue) {
  sim::Engine eng;
  sim::FifoResource res(eng, "dma");
  eng.spawn("p", [&] {
    sim::EventFlag d1(eng);
    res.submit(sim::microseconds(2), [&] { d1.trigger(); });
    d1.wait();
    eng.delay(sim::microseconds(100));
    // Queue drained long ago; next op starts now, not at busy_until.
    sim::SimTime done = res.submit(sim::microseconds(3));
    EXPECT_EQ(done, eng.now() + sim::microseconds(3));
  });
  eng.run();
}

TEST(FifoResource, TracksBusyTimeAndOps) {
  sim::Engine eng;
  sim::FifoResource res(eng, "dma");
  eng.spawn("p", [&] {
    res.submit(sim::microseconds(4));
    res.submit(sim::microseconds(6));
    EXPECT_EQ(res.total_busy_time(), sim::microseconds(10));
    EXPECT_EQ(res.operations(), 2u);
    EXPECT_EQ(res.busy_until(), sim::microseconds(10));
  });
  eng.run();
}

TEST(FifoResource, NegativeDurationClampedToZero) {
  sim::Engine eng;
  sim::FifoResource res(eng, "dma");
  eng.spawn("p", [&] {
    sim::SimTime done = res.submit(-5);
    EXPECT_EQ(done, eng.now());
  });
  eng.run();
}

TEST(FifoResource, TwoResourcesProgressIndependently) {
  sim::Engine eng;
  sim::FifoResource a(eng, "a");
  sim::FifoResource b(eng, "b");
  eng.spawn("p", [&] {
    sim::SimTime da = a.submit(sim::microseconds(10));
    sim::SimTime db = b.submit(sim::microseconds(3));
    EXPECT_EQ(da, sim::microseconds(10));
    EXPECT_EQ(db, sim::microseconds(3));  // not queued behind a
  });
  eng.run();
}

TEST(FifoResource, NameAccessible) {
  sim::Engine eng;
  sim::FifoResource res(eng, "pcie-d2h");
  EXPECT_EQ(res.name(), "pcie-d2h");
}
