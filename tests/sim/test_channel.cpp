#include "sim/channel.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace sim = mv2gnc::sim;

TEST(Channel, SendThenRecvSameProcess) {
  sim::Engine eng;
  sim::Channel<int> ch(eng, "test");
  int got = 0;
  eng.spawn("p", [&] {
    ch.send(42);
    got = ch.recv();
  });
  eng.run();
  EXPECT_EQ(got, 42);
}

TEST(Channel, RecvBlocksUntilSend) {
  sim::Engine eng;
  sim::Channel<int> ch(eng);
  sim::SimTime recv_time = -1;
  eng.spawn("consumer", [&] {
    int v = ch.recv();
    EXPECT_EQ(v, 7);
    recv_time = eng.now();
  });
  eng.spawn("producer", [&] {
    eng.delay(sim::microseconds(3));
    ch.send(7);
  });
  eng.run();
  EXPECT_EQ(recv_time, sim::microseconds(3));
}

TEST(Channel, PreservesFifoOrder) {
  sim::Engine eng;
  sim::Channel<int> ch(eng);
  std::vector<int> got;
  eng.spawn("producer", [&] {
    for (int i = 0; i < 10; ++i) ch.send(i);
  });
  eng.spawn("consumer", [&] {
    for (int i = 0; i < 10; ++i) got.push_back(ch.recv());
  });
  eng.run();
  ASSERT_EQ(got.size(), 10u);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(got[i], i);
}

TEST(Channel, TryRecvNonBlocking) {
  sim::Engine eng;
  sim::Channel<std::string> ch(eng);
  eng.spawn("p", [&] {
    std::string out;
    EXPECT_FALSE(ch.try_recv(out));
    ch.send("hello");
    EXPECT_TRUE(ch.try_recv(out));
    EXPECT_EQ(out, "hello");
    EXPECT_FALSE(ch.try_recv(out));
  });
  eng.run();
}

TEST(Channel, SizeAndEmpty) {
  sim::Engine eng;
  sim::Channel<int> ch(eng);
  eng.spawn("p", [&] {
    EXPECT_TRUE(ch.empty());
    ch.send(1);
    ch.send(2);
    EXPECT_EQ(ch.size(), 2u);
    (void)ch.recv();
    EXPECT_EQ(ch.size(), 1u);
  });
  eng.run();
}

TEST(Channel, MultipleConsumersEachGetOneMessage) {
  sim::Engine eng;
  sim::Channel<int> ch(eng);
  std::vector<int> got;
  for (int i = 0; i < 3; ++i) {
    eng.spawn("consumer" + std::to_string(i), [&] { got.push_back(ch.recv()); });
  }
  eng.spawn("producer", [&] {
    eng.delay(5);
    ch.send(10);
    ch.send(20);
    ch.send(30);
  });
  eng.run();
  ASSERT_EQ(got.size(), 3u);
  EXPECT_EQ(got[0] + got[1] + got[2], 60);
}

TEST(Channel, MoveOnlyPayload) {
  sim::Engine eng;
  sim::Channel<std::unique_ptr<int>> ch(eng);
  int got = 0;
  eng.spawn("p", [&] {
    ch.send(std::make_unique<int>(99));
    got = *ch.recv();
  });
  eng.run();
  EXPECT_EQ(got, 99);
}

TEST(Channel, SendFromScheduledAction) {
  sim::Engine eng;
  sim::Channel<int> ch(eng);
  sim::SimTime got_at = -1;
  eng.schedule_at(sim::microseconds(2), [&] { ch.send(5); });
  eng.spawn("consumer", [&] {
    EXPECT_EQ(ch.recv(), 5);
    got_at = eng.now();
  });
  eng.run();
  EXPECT_EQ(got_at, sim::microseconds(2));
}
