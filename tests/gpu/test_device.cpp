#include "gpu/device.hpp"

#include <gtest/gtest.h>

namespace gpu = mv2gnc::gpu;
namespace sim = mv2gnc::sim;

namespace {

struct Fixture {
  sim::Engine eng;
  gpu::MemoryRegistry reg;
  gpu::Device dev{eng, reg, 0, gpu::GpuCostModel::tesla_c2050(), 1 << 20};
};

}  // namespace

TEST(Device, AllocateRegistersRange) {
  Fixture f;
  void* p = f.dev.allocate(1024);
  ASSERT_NE(p, nullptr);
  auto info = f.reg.query(p);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->device_id, 0);
  EXPECT_EQ(f.dev.bytes_allocated(), 1024u);
  f.dev.deallocate(p);
  EXPECT_EQ(f.dev.bytes_allocated(), 0u);
  EXPECT_FALSE(f.reg.is_device_pointer(p));
}

TEST(Device, ZeroByteAllocationGetsUniquePointer) {
  Fixture f;
  void* a = f.dev.allocate(0);
  void* b = f.dev.allocate(0);
  EXPECT_NE(a, nullptr);
  EXPECT_NE(a, b);
  f.dev.deallocate(a);
  f.dev.deallocate(b);
}

TEST(Device, CapacityEnforced) {
  Fixture f;  // 1 MB capacity
  void* p = f.dev.allocate(900 * 1024);
  EXPECT_THROW(f.dev.allocate(200 * 1024), gpu::DeviceError);
  f.dev.deallocate(p);
  void* q = f.dev.allocate(1024 * 1024);  // fits after free
  f.dev.deallocate(q);
}

TEST(Device, FreeNullIsNoop) {
  Fixture f;
  EXPECT_NO_THROW(f.dev.deallocate(nullptr));
}

TEST(Device, FreeForeignPointerThrows) {
  Fixture f;
  int x = 0;
  EXPECT_THROW(f.dev.deallocate(&x), gpu::DeviceError);
}

TEST(Device, DeviceMemoryIsWritableHostBackedStorage) {
  Fixture f;
  auto* p = static_cast<std::byte*>(f.dev.allocate(64));
  p[0] = std::byte{0xAB};
  p[63] = std::byte{0xCD};
  EXPECT_EQ(p[0], std::byte{0xAB});
  EXPECT_EQ(p[63], std::byte{0xCD});
  f.dev.deallocate(p);
}

TEST(Device, EnginesAreDistinct) {
  Fixture f;
  EXPECT_NE(&f.dev.d2h_engine(), &f.dev.h2d_engine());
  EXPECT_NE(&f.dev.d2h_engine(), &f.dev.d2d_engine());
  EXPECT_NE(&f.dev.d2d_engine(), &f.dev.kernel_engine());
  EXPECT_EQ(f.dev.d2h_engine().name(), "gpu0.d2h");
}

TEST(Device, DestructorCleansRegistry) {
  sim::Engine eng;
  gpu::MemoryRegistry reg;
  void* leaked = nullptr;
  {
    gpu::Device dev(eng, reg, 1, gpu::GpuCostModel::tesla_c2050(), 1 << 20);
    leaked = dev.allocate(128);  // intentionally not freed
    EXPECT_TRUE(reg.is_device_pointer(leaked));
  }
  EXPECT_FALSE(reg.is_device_pointer(leaked));
  EXPECT_EQ(reg.live_ranges(), 0u);
}

TEST(Device, TwoDevicesShareRegistryDistinctIds) {
  sim::Engine eng;
  gpu::MemoryRegistry reg;
  gpu::Device d0(eng, reg, 0, gpu::GpuCostModel::tesla_c2050(), 1 << 20);
  gpu::Device d1(eng, reg, 1, gpu::GpuCostModel::tesla_c2050(), 1 << 20);
  void* a = d0.allocate(64);
  void* b = d1.allocate(64);
  EXPECT_EQ(reg.query(a)->device_id, 0);
  EXPECT_EQ(reg.query(b)->device_id, 1);
  d0.deallocate(a);
  d1.deallocate(b);
}
