// Calibration tests: the cost model must hit the measured points the paper
// reports for the Tesla C2050 (within tolerance), because every experiment
// downstream depends on these anchors.
#include "gpu/cost_model.hpp"

#include <gtest/gtest.h>

namespace gpu = mv2gnc::gpu;
namespace sim = mv2gnc::sim;

namespace {

gpu::GpuCostModel model() { return gpu::GpuCostModel::tesla_c2050(); }

// Latency of the paper's option (a): nc -> nc across PCIe (Fig. 1(a)).
sim::SimTime nc2nc_d2h(std::size_t rows) {
  return model().copy2d_time(4, rows, gpu::CopyDir::kDeviceToHost,
                             gpu::Layout2D::kSameLayout, false);
}

// Option (b): nc -> contiguous host across PCIe (Fig. 1(b)).
sim::SimTime nc2c_d2h(std::size_t rows) {
  return model().copy2d_time(4, rows, gpu::CopyDir::kDeviceToHost,
                             gpu::Layout2D::kPack, false);
}

// Option (c): pack inside the device, then contiguous D2H (Fig. 1(c)).
sim::SimTime nc2c2c(std::size_t rows) {
  auto m = model();
  return m.copy2d_time(4, rows, gpu::CopyDir::kDeviceToDevice,
                       gpu::Layout2D::kPack, false) +
         m.copy_time(rows * 4, gpu::CopyDir::kDeviceToHost);
}

}  // namespace

TEST(GpuCostModel, MotivationOptionA_4KB) {
  // Paper §I-A: ~200 us for a 4 KB vector (1024 rows of 4 B).
  const double us = sim::to_us(nc2nc_d2h(1024));
  EXPECT_NEAR(us, 200.0, 20.0);
}

TEST(GpuCostModel, MotivationOptionB_4KB) {
  // Paper §I-A: ~281 us.
  const double us = sim::to_us(nc2c_d2h(1024));
  EXPECT_NEAR(us, 281.0, 25.0);
}

TEST(GpuCostModel, MotivationOptionC_4KB) {
  // Paper §I-A: ~35 us; factor ~8 between (b) and (c).
  const double us = sim::to_us(nc2c2c(1024));
  EXPECT_NEAR(us, 35.0, 10.0);
  EXPECT_GT(sim::to_us(nc2c_d2h(1024)) / us, 5.0);
}

TEST(GpuCostModel, Fig2LargeMessageRatio) {
  // Fig. 2(b): at 4 MB (1M rows of 4 B) the device-pack scheme costs
  // ~4.8% of the nc2nc scheme.
  const double ratio = static_cast<double>(nc2c2c(1 << 20)) /
                       static_cast<double>(nc2nc_d2h(1 << 20));
  EXPECT_NEAR(ratio, 0.048, 0.025);
}

TEST(GpuCostModel, Fig2CrossoverNearSmallSizes) {
  // Fig. 2(a): D2D2H wins for sizes above ~64 B; below that the extra
  // device hop does not pay off.
  EXPECT_LT(nc2c2c(4096), nc2nc_d2h(4096));   // 16 KB: offload wins
  EXPECT_LT(nc2c2c(256), nc2nc_d2h(256));     // 1 KB: offload wins
  EXPECT_GE(nc2c2c(4), nc2nc_d2h(4));         // 16 B: offload loses
}

TEST(GpuCostModel, ContiguousCopyDominatedByBandwidthAtLargeSizes) {
  auto m = model();
  const std::size_t mb64 = 64ull << 20;
  const double us = sim::to_us(m.copy_time(mb64, gpu::CopyDir::kDeviceToHost));
  // 64 MB at 5.5 GB/s ~= 12.2 ms.
  EXPECT_NEAR(us, 12'200.0, 600.0);
}

TEST(GpuCostModel, ContiguousRows2DCopyDegradesTo1D) {
  auto m = model();
  const sim::SimTime t2d = m.copy2d_time(1024, 64, gpu::CopyDir::kDeviceToHost,
                                         gpu::Layout2D::kSameLayout,
                                         /*rows_contiguous=*/true);
  const sim::SimTime t1d = m.copy_time(1024 * 64, gpu::CopyDir::kDeviceToHost);
  EXPECT_EQ(t2d, t1d);
}

TEST(GpuCostModel, SingleRowIsContiguous) {
  auto m = model();
  const sim::SimTime t = m.copy2d_time(4096, 1, gpu::CopyDir::kDeviceToHost,
                                       gpu::Layout2D::kPack, false);
  EXPECT_EQ(t, m.copy_time(4096, gpu::CopyDir::kDeviceToHost));
}

TEST(GpuCostModel, D2DRowCostIsTwoRegime) {
  auto m = model();
  auto d2d = [&](std::size_t rows) {
    return m.copy2d_time(4, rows, gpu::CopyDir::kDeviceToDevice,
                         gpu::Layout2D::kPack, false);
  };
  // Marginal per-row cost above the knee must be below the cost below it.
  const double below = static_cast<double>(d2d(4096) - d2d(2048)) / 2048.0;
  const double above =
      static_cast<double>(d2d(65536) - d2d(32768)) / 32768.0;
  EXPECT_LT(above, below);
}

TEST(GpuCostModel, KernelTimeScalesWithPoints) {
  auto m = model();
  const sim::SimTime t1 = m.kernel_time(1'000'000, false);
  const sim::SimTime t2 = m.kernel_time(2'000'000, false);
  EXPECT_GT(t2 - t1, 0);
  // Double precision costs more per point.
  EXPECT_GT(m.kernel_time(1'000'000, true), t1);
}

TEST(GpuCostModel, TransferTimeMonotoneInSize) {
  auto m = model();
  sim::SimTime prev = 0;
  for (std::size_t s = 1024; s <= (16u << 20); s *= 4) {
    const sim::SimTime t = m.transfer_time(s, gpu::CopyDir::kHostToDevice);
    EXPECT_GE(t, prev);
    prev = t;
  }
}
