#include "gpu/memory_registry.hpp"

#include <gtest/gtest.h>

#include <array>

namespace gpu = mv2gnc::gpu;

TEST(MemoryRegistry, UnknownPointerIsHost) {
  gpu::MemoryRegistry reg;
  int x = 0;
  EXPECT_FALSE(reg.is_device_pointer(&x));
  EXPECT_FALSE(reg.query(&x).has_value());
  EXPECT_FALSE(reg.query(nullptr).has_value());
}

TEST(MemoryRegistry, RegisteredRangeClassifies) {
  gpu::MemoryRegistry reg;
  std::array<std::byte, 256> buf{};
  reg.register_range(buf.data(), buf.size(), 3);
  auto info = reg.query(buf.data());
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->device_id, 3);
  EXPECT_EQ(info->base, buf.data());
  EXPECT_EQ(info->size, 256u);
}

TEST(MemoryRegistry, InteriorPointerClassifies) {
  gpu::MemoryRegistry reg;
  std::array<std::byte, 256> buf{};
  reg.register_range(buf.data(), buf.size(), 1);
  EXPECT_TRUE(reg.is_device_pointer(buf.data() + 100));
  EXPECT_TRUE(reg.is_device_pointer(buf.data() + 255));
}

TEST(MemoryRegistry, OnePastEndIsNotInside) {
  gpu::MemoryRegistry reg;
  std::array<std::byte, 64> buf{};
  reg.register_range(buf.data(), buf.size(), 1);
  EXPECT_FALSE(reg.is_device_pointer(buf.data() + 64));
}

TEST(MemoryRegistry, UnregisterRemoves) {
  gpu::MemoryRegistry reg;
  std::array<std::byte, 64> buf{};
  reg.register_range(buf.data(), buf.size(), 0);
  EXPECT_EQ(reg.live_ranges(), 1u);
  reg.unregister_range(buf.data());
  EXPECT_EQ(reg.live_ranges(), 0u);
  EXPECT_FALSE(reg.is_device_pointer(buf.data()));
}

TEST(MemoryRegistry, UnregisterUnknownThrows) {
  gpu::MemoryRegistry reg;
  int x = 0;
  EXPECT_THROW(reg.unregister_range(&x), std::invalid_argument);
}

TEST(MemoryRegistry, OverlapRejected) {
  gpu::MemoryRegistry reg;
  std::array<std::byte, 256> buf{};
  reg.register_range(buf.data(), 128, 0);
  EXPECT_THROW(reg.register_range(buf.data() + 64, 64, 0),
               std::invalid_argument);
  EXPECT_THROW(reg.register_range(buf.data(), 128, 0), std::invalid_argument);
  // Adjacent (non-overlapping) is fine.
  reg.register_range(buf.data() + 128, 128, 0);
  EXPECT_EQ(reg.live_ranges(), 2u);
}

TEST(MemoryRegistry, NullOrEmptyRangeRejected) {
  gpu::MemoryRegistry reg;
  std::array<std::byte, 8> buf{};
  EXPECT_THROW(reg.register_range(nullptr, 8, 0), std::invalid_argument);
  EXPECT_THROW(reg.register_range(buf.data(), 0, 0), std::invalid_argument);
}

TEST(MemoryRegistry, PinnedHostRanges) {
  gpu::MemoryRegistry reg;
  std::array<std::byte, 128> buf{};
  EXPECT_FALSE(reg.is_pinned_host(buf.data()));
  reg.register_pinned_host(buf.data(), buf.size());
  EXPECT_TRUE(reg.is_pinned_host(buf.data()));
  EXPECT_TRUE(reg.is_pinned_host(buf.data() + 127));
  EXPECT_FALSE(reg.is_pinned_host(buf.data() + 128));
  reg.unregister_pinned_host(buf.data());
  EXPECT_FALSE(reg.is_pinned_host(buf.data()));
}

TEST(MemoryRegistry, PinnedIsIndependentOfDeviceRanges) {
  gpu::MemoryRegistry reg;
  std::array<std::byte, 64> dev{};
  std::array<std::byte, 64> pin{};
  reg.register_range(dev.data(), 64, 0);
  reg.register_pinned_host(pin.data(), 64);
  EXPECT_TRUE(reg.is_device_pointer(dev.data()));
  EXPECT_FALSE(reg.is_pinned_host(dev.data()));
  EXPECT_FALSE(reg.is_device_pointer(pin.data()));
  EXPECT_TRUE(reg.is_pinned_host(pin.data()));
}

TEST(MemoryRegistry, PinnedValidation) {
  gpu::MemoryRegistry reg;
  std::array<std::byte, 8> buf{};
  EXPECT_THROW(reg.register_pinned_host(nullptr, 8), std::invalid_argument);
  EXPECT_THROW(reg.register_pinned_host(buf.data(), 0),
               std::invalid_argument);
  EXPECT_THROW(reg.unregister_pinned_host(buf.data()),
               std::invalid_argument);
}

TEST(MemoryRegistry, MultipleDevices) {
  gpu::MemoryRegistry reg;
  std::array<std::byte, 64> a{};
  std::array<std::byte, 64> b{};
  reg.register_range(a.data(), 64, 0);
  reg.register_range(b.data(), 64, 5);
  EXPECT_EQ(reg.query(a.data())->device_id, 0);
  EXPECT_EQ(reg.query(b.data())->device_id, 5);
}
