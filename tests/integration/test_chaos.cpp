// The seeded chaos harness (docs/RELIABILITY.md, "Process faults and
// hang-free collectives"): rank crash-stop mid-collective, stall/skew
// injection, lossy IPC + fabric, and transport failover — asserting the
// cluster's core liveness contract on every axis: every surviving rank
// either completes or raises a clean RequestError within a bounded budget;
// nobody blocks forever.
//
// Buffers that back direct-mode receives are deliberately allocated in
// *test* scope, not fiber scope: a crashed rank's advertised landing zone
// may still be written by a peer's in-flight retransmission after the
// crashed fiber has unwound.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "mpi/cluster.hpp"

namespace mpisim = mv2gnc::mpisim;
namespace netsim = mv2gnc::netsim;
namespace core = mv2gnc::core;
namespace sim = mv2gnc::sim;
using mpisim::Cluster;
using mpisim::ClusterConfig;
using mpisim::Context;
using mpisim::Datatype;

namespace {

Datatype committed(Datatype t) {
  t.commit();
  return t;
}

ClusterConfig colocated(int ranks, std::size_t rpn) {
  ClusterConfig cfg;
  cfg.ranks = ranks;
  cfg.tunables.ranks_per_node = rpn;
  return cfg;
}

// A rank's fate after a chaos run. `finished` distinguishes "reached the
// end of its body" (ok or clean error) from "crash-stopped mid-flight".
struct Outcome {
  bool finished = false;
  std::string error;  // empty: completed every operation
};

void fault_rendezvous_control(netsim::FaultModel& fm, double drop_send,
                              double drop_imm) {
  netsim::FaultSpec ctrl;
  ctrl.drop_send = drop_send;
  for (int kind : {core::kRts, core::kCts, core::kChunkAck, core::kRndvDone,
                   core::kSendDone, core::kRtsAck, core::kSendDoneAck}) {
    fm.set_kind(kind, ctrl);
  }
  netsim::FaultSpec data;
  data.drop_imm = drop_imm;
  fm.set_kind(core::kChunkFin, data);
}

void expect_survivor_pools_quiesced(Cluster& cluster, int crashed_rank) {
  for (int r = 0; r < cluster.config().ranks; ++r) {
    if (r == crashed_rank) continue;  // a crash-stop abandons its checkouts
    EXPECT_EQ(cluster.vbuf_audit(r), "") << "rank " << r;
    EXPECT_EQ(cluster.vbufs_in_use(r), cluster.graveyard_slots(r))
        << "rank " << r;
  }
}

}  // namespace

TEST(Chaos, CrashedPeerDoesNotHangFlatAllreduce) {
  // Rank 3 crash-stops 2 ms in. Every survivor must exit its allreduce
  // loop with a bounded "aborted" RequestError — and the poisoned context
  // must fail later collectives immediately rather than risking a partial
  // reduction against reused tags.
  ClusterConfig cfg;
  cfg.ranks = 4;
  cfg.rng_seed = 5;
  cfg.tunables.rndv_timeout_ns = 200'000;
  cfg.tunables.rndv_max_retries = 3;
  cfg.tunables.coll_select = core::CollSelect::kFlat;
  cfg.crash_at = {{3, sim::SimTime{2'000'000}}};
  Cluster cluster(cfg);
  const int count = 32'768;
  std::vector<std::vector<double>> in(4), out(4);
  for (int r = 0; r < 4; ++r) {
    in[static_cast<std::size_t>(r)].assign(static_cast<std::size_t>(count),
                                           double(r + 1));
    out[static_cast<std::size_t>(r)].assign(static_cast<std::size_t>(count),
                                            0.0);
  }
  std::vector<Outcome> outcome(4);
  std::vector<std::string> poisoned(4);
  cluster.run([&](Context& ctx) {
    auto& me = outcome[static_cast<std::size_t>(ctx.rank)];
    try {
      for (int it = 0; it < 30; ++it) {
        ctx.comm.allreduce_sum(in[static_cast<std::size_t>(ctx.rank)].data(),
                               out[static_cast<std::size_t>(ctx.rank)].data(),
                               count);
      }
    } catch (const mpisim::RequestError& e) {
      me.error = e.what();
      // Once one collective aborted, later ones on the context must refuse
      // to start rather than exchange against desynchronized tags.
      try {
        ctx.comm.barrier();
      } catch (const mpisim::RequestError& p) {
        poisoned[static_cast<std::size_t>(ctx.rank)] = p.what();
      }
    }
    me.finished = true;
  });
  for (int r = 0; r < 3; ++r) {
    const auto& o = outcome[static_cast<std::size_t>(r)];
    EXPECT_TRUE(o.finished) << "rank " << r << " hung";
    EXPECT_NE(o.error.find("aborted"), std::string::npos)
        << "rank " << r << ": " << o.error;
    EXPECT_NE(poisoned[static_cast<std::size_t>(r)].find("poisoned"),
              std::string::npos)
        << "rank " << r << ": " << poisoned[static_cast<std::size_t>(r)];
  }
  EXPECT_FALSE(outcome[3].finished);  // crash-stop never reaches the end
  expect_survivor_pools_quiesced(cluster, 3);
}

TEST(Chaos, CrashedColocatedPeerDoesNotHangHierAllreduce) {
  // The marquee hang: in the two-level allreduce, rank 1 dies while its
  // co-located leader (rank 0) is mid intra-node exchange over the IPC
  // channel. Without the COLL_ABORT wave + liveness watchdog, ranks 2/3
  // would block forever on the inter-node step waiting for a leader that
  // can never finish its node.
  ClusterConfig cfg = colocated(4, 2);
  cfg.rng_seed = 17;
  cfg.tunables.rndv_timeout_ns = 200'000;
  cfg.tunables.rndv_max_retries = 3;
  cfg.tunables.coll_select = core::CollSelect::kHier;
  cfg.crash_at = {{1, sim::SimTime{2'000'000}}};
  Cluster cluster(cfg);
  const int count = 32'768;
  std::vector<std::vector<double>> in(4), out(4);
  for (int r = 0; r < 4; ++r) {
    in[static_cast<std::size_t>(r)].assign(static_cast<std::size_t>(count),
                                           double(r + 1));
    out[static_cast<std::size_t>(r)].assign(static_cast<std::size_t>(count),
                                            0.0);
  }
  std::vector<Outcome> outcome(4);
  cluster.run([&](Context& ctx) {
    auto& me = outcome[static_cast<std::size_t>(ctx.rank)];
    try {
      for (int it = 0; it < 30; ++it) {
        ctx.comm.allreduce_sum(in[static_cast<std::size_t>(ctx.rank)].data(),
                               out[static_cast<std::size_t>(ctx.rank)].data(),
                               count);
      }
    } catch (const mpisim::RequestError& e) {
      me.error = e.what();
    }
    EXPECT_EQ(ctx.cuda->open_ipc_handles(), 0u) << "rank " << ctx.rank;
    me.finished = true;
  });
  for (int r : {0, 2, 3}) {
    const auto& o = outcome[static_cast<std::size_t>(r)];
    EXPECT_TRUE(o.finished) << "rank " << r << " hung";
    EXPECT_NE(o.error.find("aborted"), std::string::npos)
        << "rank " << r << ": " << o.error;
  }
  EXPECT_FALSE(outcome[1].finished);
  expect_survivor_pools_quiesced(cluster, 1);
}

TEST(Chaos, MatrixWithCrashTerminatesEverywhere) {
  // The fault matrix: rpn {1,2,4} x {flat,hier,auto} under lossy fabric +
  // lossy IPC + stall/skew injection, with rank 3 crash-stopping early.
  // The assertion is liveness, not success: every surviving rank finishes
  // its body — completing or raising a clean RequestError — and the run
  // itself terminates (a hang would deadlock the simulation).
  std::uint64_t total_faults = 0;
  for (std::size_t rpn : {1u, 2u, 4u}) {
    for (core::CollSelect select :
         {core::CollSelect::kFlat, core::CollSelect::kHier,
          core::CollSelect::kAuto}) {
      ClusterConfig cfg = colocated(4, rpn);
      cfg.rng_seed = 40 + rpn * 10 + static_cast<std::uint64_t>(select);
      cfg.tunables.rndv_timeout_ns = 200'000;
      cfg.tunables.rndv_max_retries = 3;
      cfg.tunables.coll_select = select;
      cfg.tunables.rank_skew_ns = 10'000;
      cfg.tunables.rank_stall_prob = 0.05;
      cfg.tunables.rank_stall_ns = 2'000;
      fault_rendezvous_control(cfg.faults, 0.02, 0.0);
      if (rpn > 1) fault_rendezvous_control(cfg.ipc_faults, 0.05, 0.0);
      cfg.crash_at = {{3, sim::SimTime{1'500'000}}};
      Cluster cluster(cfg);
      const int count = 16'384;
      std::vector<std::vector<double>> in(4), out(4);
      for (int r = 0; r < 4; ++r) {
        in[static_cast<std::size_t>(r)].assign(static_cast<std::size_t>(count),
                                               double(r));
        out[static_cast<std::size_t>(r)].assign(
            static_cast<std::size_t>(count), 0.0);
      }
      std::vector<Outcome> outcome(4);
      cluster.run([&](Context& ctx) {
        auto& me = outcome[static_cast<std::size_t>(ctx.rank)];
        try {
          for (int it = 0; it < 10; ++it) {
            ctx.comm.allreduce_sum(
                in[static_cast<std::size_t>(ctx.rank)].data(),
                out[static_cast<std::size_t>(ctx.rank)].data(), count);
          }
          ctx.comm.barrier();
        } catch (const mpisim::RequestError& e) {
          me.error = e.what();
          EXPECT_FALSE(me.error.empty());
        }
        EXPECT_EQ(ctx.cuda->open_ipc_handles(), 0u);
        me.finished = true;
      });
      for (int r = 0; r < 3; ++r) {
        EXPECT_TRUE(outcome[static_cast<std::size_t>(r)].finished)
            << "rpn=" << rpn << " select=" << static_cast<int>(select)
            << " rank " << r << " hung";
      }
      expect_survivor_pools_quiesced(cluster, 3);
      for (int r = 0; r < 4; ++r) {
        const Cluster::FaultStats fs = cluster.fault_stats(r);
        total_faults += fs.fabric.total() + fs.ipc.total();
      }
    }
  }
  EXPECT_GT(total_faults, 0u);  // the matrix exercised the fault plane
}

TEST(Chaos, LossyMatrixCompletesWithCorrectResults) {
  // No crashes, generous retry budget: under lossy IPC + fabric control
  // planes, stalls and start skew, the mixed workload (device ring p2p +
  // allreduce + barrier) must fully COMPLETE on every rank with correct
  // reductions — chaos that stays within the retransmit budget is invisible
  // to the application.
  for (std::size_t rpn : {2u, 4u}) {
    for (std::uint64_t seed : {1u, 2u}) {
      ClusterConfig cfg = colocated(4, rpn);
      cfg.rng_seed = 1000 + rpn * 100 + seed;
      cfg.tunables.rndv_timeout_ns = 200'000;
      cfg.tunables.rndv_max_retries = 25;
      cfg.tunables.coll_select = core::CollSelect::kAuto;
      cfg.tunables.rank_skew_ns = 10'000;
      cfg.tunables.rank_stall_prob = 0.05;
      cfg.tunables.rank_stall_ns = 2'000;
      fault_rendezvous_control(cfg.faults, 0.02, 0.0);
      fault_rendezvous_control(cfg.ipc_faults, 0.04, 0.02);
      Cluster cluster(cfg);
      const int count = 8'192;
      std::vector<std::vector<double>> in(4), out(4);
      for (int r = 0; r < 4; ++r) {
        auto& v = in[static_cast<std::size_t>(r)];
        v.resize(static_cast<std::size_t>(count));
        for (int i = 0; i < count; ++i) {
          v[static_cast<std::size_t>(i)] = r * 3 + i % 5;
        }
        out[static_cast<std::size_t>(r)].assign(
            static_cast<std::size_t>(count), 0.0);
      }
      std::vector<Outcome> outcome(4);
      cluster.run([&](Context& ctx) {
        auto& me = outcome[static_cast<std::size_t>(ctx.rank)];
        auto byte_t = committed(Datatype::byte());
        const int n = 1 << 17;
        auto* dev = static_cast<std::byte*>(ctx.cuda->malloc(n));
        try {
          for (int it = 0; it < 2; ++it) {
            const int right = (ctx.rank + 1) % 4;
            const int left = (ctx.rank + 3) % 4;
            auto s = ctx.comm.isend(dev, n, byte_t, right, 10 + it);
            ctx.comm.recv(dev, n, byte_t, left, 10 + it);
            ctx.comm.wait(s, nullptr);
            ctx.comm.allreduce_sum(
                in[static_cast<std::size_t>(ctx.rank)].data(),
                out[static_cast<std::size_t>(ctx.rank)].data(), count);
            ctx.comm.barrier();
          }
        } catch (const mpisim::RequestError& e) {
          me.error = e.what();
        }
        EXPECT_EQ(ctx.cuda->open_ipc_handles(), 0u) << "rank " << ctx.rank;
        ctx.cuda->free(dev);
        me.finished = true;
      });
      std::uint64_t faults = 0;
      for (int r = 0; r < 4; ++r) {
        const auto& o = outcome[static_cast<std::size_t>(r)];
        EXPECT_TRUE(o.finished) << "rank " << r << " hung";
        EXPECT_EQ(o.error, "") << "rank " << r;
        for (int i = 0; i < count; i += 971) {
          EXPECT_EQ(out[static_cast<std::size_t>(r)][static_cast<std::size_t>(
                        i)],
                    double(4 * (i % 5) + 18))
              << "rank " << r << " elem " << i;
        }
        EXPECT_EQ(cluster.vbuf_audit(r), "") << "rank " << r;
        EXPECT_EQ(cluster.vbufs_in_use(r), cluster.graveyard_slots(r));
        const Cluster::FaultStats fs = cluster.fault_stats(r);
        faults += fs.fabric.total() + fs.ipc.total();
      }
      EXPECT_GT(faults, 0u) << "rpn=" << rpn << " seed=" << seed;
    }
  }
}

TEST(Chaos, FailoverDemotesPersistentlyFailingIpcPeerToFabric) {
  // The channel permanently swallows peer-copy fins, so every IPC-routed
  // rendezvous between the co-located pair fails. After two consecutive
  // failures the router must demote 0<->1 to the fabric — where transfers
  // succeed — and the failover table must surface the event.
  ClusterConfig cfg = colocated(2, 2);
  cfg.rng_seed = 7;
  cfg.tunables.rndv_timeout_ns = 200'000;
  cfg.tunables.rndv_max_retries = 3;
  cfg.tunables.transport_failover_threshold = 2;
  cfg.tunables.transport_restore_threshold = 100;  // stay demoted
  netsim::FaultSpec swallow;
  swallow.drop_imm = 1.0;
  cfg.ipc_faults.set_kind(core::kChunkFin, swallow);
  Cluster cluster(cfg);
  int failures = 0;
  int successes = 0;
  cluster.run([&](Context& ctx) {
    auto byte_t = committed(Datatype::byte());
    const int n = 1 << 18;
    auto* dev = static_cast<std::byte*>(ctx.cuda->malloc(n));
    for (int it = 0; it < 4; ++it) {
      try {
        if (ctx.rank == 0) {
          ctx.comm.send(dev, n, byte_t, 1, it);
          ++successes;
        } else {
          ctx.comm.recv(dev, n, byte_t, 0, it);
        }
      } catch (const mpisim::RequestError&) {
        if (ctx.rank == 0) ++failures;
      }
    }
    EXPECT_EQ(ctx.cuda->open_ipc_handles(), 0u) << "rank " << ctx.rank;
    ctx.cuda->free(dev);
  });
  EXPECT_EQ(failures, 2);   // exactly until the demotion threshold
  EXPECT_EQ(successes, 2);  // everything after it rode the fabric
  const core::PeerHealth& h01 = cluster.router(0).peer_health().at(1);
  EXPECT_EQ(h01.demotions, 1u);
  EXPECT_TRUE(h01.demoted);
  const core::PeerHealth& h10 = cluster.router(1).peer_health().at(0);
  EXPECT_EQ(h10.demotions, 1u);
  EXPECT_GT(cluster.fault_stats(0).ipc.total() +
                cluster.fault_stats(1).ipc.total(),
            0u);
  std::ostringstream os;
  cluster.print_stats(os);
  EXPECT_NE(os.str().find("ipc-faults"), std::string::npos);
  EXPECT_NE(os.str().find("demoted-now"), std::string::npos);
}

TEST(Chaos, FailoverRestoresAfterChannelHeals) {
  // Hysteresis round trip at cluster level: demote onto the fabric while
  // the channel is sick, heal the channel mid-run, earn the restore with
  // two clean transfers, and end re-routed over IPC.
  ClusterConfig cfg = colocated(2, 2);
  cfg.rng_seed = 23;
  cfg.tunables.rndv_timeout_ns = 200'000;
  cfg.tunables.rndv_max_retries = 3;
  cfg.tunables.transport_failover_threshold = 2;
  cfg.tunables.transport_restore_threshold = 2;
  netsim::FaultSpec swallow;
  swallow.drop_imm = 1.0;
  cfg.ipc_faults.set_kind(core::kChunkFin, swallow);
  Cluster cluster(cfg);
  int late_failures = 0;
  cluster.run([&](Context& ctx) {
    auto byte_t = committed(Datatype::byte());
    const int n = 1 << 18;
    auto* dev = static_cast<std::byte*>(ctx.cuda->malloc(n));
    for (int it = 0; it < 2; ++it) {  // two failures: demoted
      try {
        if (ctx.rank == 0) ctx.comm.send(dev, n, byte_t, 1, it);
        else ctx.comm.recv(dev, n, byte_t, 0, it);
      } catch (const mpisim::RequestError&) {
      }
    }
    ctx.comm.barrier();  // eager traffic: unaffected by the chunk-fin fault
    if (ctx.rank == 0) cluster.ipc_channel(0)->faults().clear();
    ctx.comm.barrier();
    for (int it = 2; it < 5; ++it) {  // 2 on fabric earn restore, 1 on IPC
      try {
        if (ctx.rank == 0) ctx.comm.send(dev, n, byte_t, 1, it);
        else ctx.comm.recv(dev, n, byte_t, 0, it);
      } catch (const mpisim::RequestError&) {
        ++late_failures;
      }
    }
    ctx.cuda->free(dev);
  });
  EXPECT_EQ(late_failures, 0);
  const core::PeerHealth& h01 = cluster.router(0).peer_health().at(1);
  EXPECT_EQ(h01.demotions, 1u);
  EXPECT_EQ(h01.restores, 1u);
  EXPECT_FALSE(h01.demoted);
  const core::PeerHealth& h10 = cluster.router(1).peer_health().at(0);
  EXPECT_EQ(h10.restores, 1u);
  EXPECT_FALSE(h10.demoted);
}

TEST(Chaos, AdaptiveRoutingSurvivesLossyFatTree) {
  // The PR-7 fault matrix, pointed at the congestion machinery: seeded
  // drops + jitter on every rendezvous control kind over an oversubscribed
  // fat tree, with adaptive routing AND ECN feedback armed. Retransmitted
  // fins may take different uplinks than their originals and re-marked
  // acks may echo stale congestion — none of that may corrupt data, leak
  // vbufs, or hang a rank.
  ClusterConfig cfg;
  cfg.ranks = 8;
  cfg.rng_seed = 11;
  cfg.topology = netsim::FabricTopology::fat_tree(4, 2.0);
  cfg.tunables.route_select = core::RouteSelect::kAdaptive;
  cfg.tunables.ecn_backlog_ns = 20'000;
  cfg.tunables.chunk_select = core::ChunkSelect::kFixed;
  cfg.tunables.rndv_timeout_ns = 400'000;
  cfg.tunables.rndv_max_retries = 12;
  fault_rendezvous_control(cfg.faults, /*drop_send=*/0.05, /*drop_imm=*/0.05);
  Cluster cluster(cfg);
  const int n = 1 << 19;  // 8 chunks: enough fins to meet the fault matrix
  std::vector<Outcome> outcome(8);
  std::vector<std::size_t> mismatches(8, 0);
  cluster.run([&](Context& ctx) {
    auto& me = outcome[static_cast<std::size_t>(ctx.rank)];
    auto byte_t = committed(Datatype::byte());
    // Cross-leaf pairwise exchange (rank XOR 4 lives on the other leaf),
    // so every transfer's chunks cross the shared uplinks.
    const int peer = ctx.rank ^ 4;
    auto* dev = static_cast<std::byte*>(
        ctx.cuda->malloc(static_cast<std::size_t>(n)));
    auto* rxd = static_cast<std::byte*>(
        ctx.cuda->malloc(static_cast<std::size_t>(n)));
    std::vector<std::byte> host(static_cast<std::size_t>(n));
    for (std::size_t i = 0; i < host.size(); ++i) {
      host[i] = static_cast<std::byte>((i * 13 + ctx.rank * 7) & 0xFF);
    }
    ctx.cuda->memcpy(dev, host.data(), host.size());
    ctx.cuda->memset(rxd, 0, static_cast<std::size_t>(n));
    try {
      mpisim::Request rs = ctx.comm.isend(dev, n, byte_t, peer, 5);
      mpisim::Request rr = ctx.comm.irecv(rxd, n, byte_t, peer, 5);
      ctx.comm.wait(rr);
      ctx.comm.wait(rs);
      std::vector<std::byte> out(static_cast<std::size_t>(n));
      ctx.cuda->memcpy(out.data(), rxd, out.size());
      for (std::size_t i = 0; i < out.size(); i += 2099) {
        const auto want = static_cast<std::byte>((i * 13 + peer * 7) & 0xFF);
        if (out[i] != want) ++mismatches[static_cast<std::size_t>(ctx.rank)];
      }
    } catch (const mpisim::RequestError& e) {
      me.error = e.what();
    }
    ctx.cuda->free(dev);
    ctx.cuda->free(rxd);
    me.finished = true;
  });
  std::uint64_t faults = 0;
  for (int r = 0; r < 8; ++r) {
    const auto& o = outcome[static_cast<std::size_t>(r)];
    EXPECT_TRUE(o.finished) << "rank " << r << " hung";
    if (o.error.empty()) {
      EXPECT_EQ(mismatches[static_cast<std::size_t>(r)], 0u) << "rank " << r;
    }
    faults += cluster.fault_stats(r).fabric.total();
  }
  EXPECT_GT(faults, 0u);  // the matrix actually fired
  expect_survivor_pools_quiesced(cluster, /*crashed_rank=*/-1);
}
