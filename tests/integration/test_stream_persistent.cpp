// Stream-triggered and persistent rendezvous under the PR-7 fault matrix
// (docs/STREAMS.md): the new trigger_mode / persistent_plan_cache knobs
// must deliver the same bytes as the CPU-driven loop on every transport
// (fabric, IPC, mixed rpn), survive lossy fabrics without losing the
// hang-free guarantee, and fail cleanly — not hang — when a peer
// crash-stops mid-startall.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <string>
#include <vector>

#include "mpi/cluster.hpp"

namespace core = mv2gnc::core;
namespace cusim = mv2gnc::cusim;
namespace mpisim = mv2gnc::mpisim;
namespace netsim = mv2gnc::netsim;
namespace sim = mv2gnc::sim;
using mpisim::Cluster;
using mpisim::ClusterConfig;
using mpisim::Context;
using mpisim::Datatype;

namespace {

Datatype committed(Datatype t) {
  t.commit();
  return t;
}

enum class Mode { kCpuDriven, kStreamTriggered, kPersistentStream };

// Ring halo exchange of a strided device vector, `iters` rounds; returns
// every received element of every rank and round, in a deterministic
// order, for byte-compare across modes.
std::vector<int> run_ring(Mode mode, int ranks, std::size_t rpn, int n,
                          int iters) {
  ClusterConfig cfg;
  cfg.ranks = ranks;
  cfg.tunables.ranks_per_node = rpn;
  if (mode != Mode::kCpuDriven) {
    cfg.tunables.trigger_mode = core::TriggerMode::kStream;
  }
  if (mode == Mode::kPersistentStream) {
    cfg.tunables.persistent_plan_cache = true;
  }
  std::vector<int> received(
      static_cast<std::size_t>(ranks) * static_cast<std::size_t>(iters) *
      static_cast<std::size_t>(n));
  Cluster cluster(cfg);
  cluster.run([&](Context& ctx) {
    auto col = committed(Datatype::vector(n, 1, 2, Datatype::int32()));
    const std::size_t span = static_cast<std::size_t>(col.extent()) + 64;
    auto* dsend = static_cast<std::byte*>(ctx.cuda->malloc(span));
    auto* drecv = static_cast<std::byte*>(ctx.cuda->malloc(span));
    std::vector<std::byte> host(span);
    const int to = (ctx.rank + 1) % ctx.size;
    const int from = (ctx.rank + ctx.size - 1) % ctx.size;
    cusim::Stream stream = ctx.cuda->create_stream();
    std::array<mpisim::PersistentRequest, 2> preqs;
    if (mode == Mode::kPersistentStream) {
      preqs[0] = ctx.comm.send_init(dsend, 1, col, to, 9);
      preqs[1] = ctx.comm.recv_init(drecv, 1, col, from, 9);
    }
    for (int it = 0; it < iters; ++it) {
      // Stage this round's strided payload on the device.
      for (int i = 0; i < n; ++i) {
        int v = ctx.rank * 1'000'000 + it * 1'000 + i % 997;
        std::memcpy(host.data() + static_cast<std::size_t>(i) * 8, &v, 4);
      }
      ctx.cuda->memcpy(dsend, host.data(), span,
                       cusim::MemcpyKind::kHostToDevice);
      switch (mode) {
        case Mode::kCpuDriven: {
          mpisim::Request sr = ctx.comm.isend(dsend, 1, col, to, 9);
          mpisim::Request rr = ctx.comm.irecv(drecv, 1, col, from, 9);
          std::array<mpisim::Request, 2> reqs{sr, rr};
          ctx.comm.waitall(reqs);
          break;
        }
        case Mode::kStreamTriggered: {
          ctx.cuda->launch_kernel_timed(stream, 5'000, [] {});
          mpisim::Request sr = ctx.comm.isend_on(stream, dsend, 1, col, to, 9);
          mpisim::Request rr =
              ctx.comm.irecv_on(stream, drecv, 1, col, from, 9);
          std::array<mpisim::Request, 2> reqs{sr, rr};
          ctx.comm.waitall(reqs);
          break;
        }
        case Mode::kPersistentStream: {
          ctx.cuda->launch_kernel_timed(stream, 5'000, [] {});
          ctx.comm.startall_on(stream, preqs);
          ctx.comm.waitall_persistent(preqs);
          break;
        }
      }
      ctx.cuda->memcpy(host.data(), drecv, span,
                       cusim::MemcpyKind::kDeviceToHost);
      const std::size_t base =
          (static_cast<std::size_t>(ctx.rank) * iters +
           static_cast<std::size_t>(it)) *
          static_cast<std::size_t>(n);
      for (int i = 0; i < n; ++i) {
        std::memcpy(&received[base + static_cast<std::size_t>(i)],
                    host.data() + static_cast<std::size_t>(i) * 8, 4);
      }
    }
    ctx.cuda->free(dsend);
    ctx.cuda->free(drecv);
  });
  return received;
}

void fault_rendezvous_control(netsim::FaultModel& fm, double drop_send) {
  netsim::FaultSpec ctrl;
  ctrl.drop_send = drop_send;
  for (int kind : {core::kRts, core::kCts, core::kChunkAck, core::kRndvDone,
                   core::kSendDone, core::kRtsAck, core::kSendDoneAck}) {
    fm.set_kind(kind, ctrl);
  }
}

}  // namespace

TEST(StreamPersistent, ByteCompareCpuVsStreamAcrossRpn) {
  // The stream-triggered path must deliver exactly the bytes the
  // CPU-driven loop delivers, on the fabric (rpn=1), mixed (rpn=2) and
  // all-IPC (rpn=4) topologies — every rendezvous path flavor.
  const int n = 4096;  // 16 KB packed: rendezvous-sized
  for (std::size_t rpn : {1u, 2u, 4u}) {
    const std::vector<int> cpu = run_ring(Mode::kCpuDriven, 4, rpn, n, 3);
    const std::vector<int> str =
        run_ring(Mode::kStreamTriggered, 4, rpn, n, 3);
    const std::vector<int> per =
        run_ring(Mode::kPersistentStream, 4, rpn, n, 3);
    EXPECT_EQ(cpu, str) << "rpn=" << rpn;
    EXPECT_EQ(cpu, per) << "rpn=" << rpn;
    // Sanity: the expected ring pattern actually arrived (guards against
    // three identically-wrong runs).
    EXPECT_EQ(cpu[0], 3 * 1'000'000);  // rank 0 hears rank 3, round 0
  }
}

TEST(StreamPersistent, PersistentSurvivesLossyFabricAndIpc) {
  // Persistent re-fires with the plan cache on, under the PR-7 lossy
  // matrix: dropped rendezvous control on both the fabric and the IPC
  // channel. The reliability layer must retransmit through it; the cached
  // plan must not leak stale state between rounds. Completion of this
  // test IS the hang-free assertion (a hang deadlocks the run).
  ClusterConfig cfg;
  cfg.ranks = 4;
  cfg.tunables.ranks_per_node = 2;
  cfg.tunables.persistent_plan_cache = true;
  cfg.tunables.rndv_timeout_ns = 200'000;
  cfg.rng_seed = 23;
  fault_rendezvous_control(cfg.faults, 0.05);
  fault_rendezvous_control(cfg.ipc_faults, 0.05);
  Cluster cluster(cfg);
  const int n = 50'000;
  cluster.run([&](Context& ctx) {
    auto ints = committed(Datatype::int32());
    const int to = (ctx.rank + 1) % ctx.size;
    const int from = (ctx.rank + ctx.size - 1) % ctx.size;
    std::vector<int> out(n), in(n, -1);
    auto sreq = ctx.comm.send_init(out.data(), n, ints, to, 4);
    auto rreq = ctx.comm.recv_init(in.data(), n, ints, from, 4);
    for (int it = 0; it < 8; ++it) {
      std::fill(out.begin(), out.end(), ctx.rank * 1000 + it);
      rreq.start();
      sreq.start();
      sreq.wait();
      rreq.wait();
      EXPECT_EQ(in[0], from * 1000 + it) << "rank " << ctx.rank;
      EXPECT_EQ(in[n - 1], from * 1000 + it) << "rank " << ctx.rank;
    }
  });
  std::uint64_t faults = 0;
  std::uint64_t cache_hits = 0;
  for (int r = 0; r < 4; ++r) {
    faults += cluster.fault_stats(r).fabric.total() +
              cluster.fault_stats(r).ipc.total();
    cache_hits += cluster.trigger_stats(r).plan_cache_hits;
    EXPECT_EQ(cluster.vbuf_audit(r), "") << "rank " << r;
  }
  EXPECT_GT(faults, 0u) << "lossy run injected nothing - vacuous test";
  EXPECT_GT(cache_hits, 0u) << "plan cache never re-fired";
}

TEST(StreamPersistent, CrashMidStartallFailsCleanlyWithoutHanging) {
  // Rank 3 crash-stops while rank 2 re-fires persistent sends at it via
  // startall. Rank 2 must get a clean RequestError once the retry budget
  // is spent — never a hang — while the unaffected persistent pair (0<->1)
  // keeps exchanging correct data through the noise.
  ClusterConfig cfg;
  cfg.ranks = 4;
  cfg.tunables.persistent_plan_cache = true;
  cfg.tunables.rndv_timeout_ns = 200'000;
  cfg.tunables.rndv_max_retries = 3;
  cfg.rng_seed = 31;
  cfg.crash_at = {{3, sim::SimTime{400'000}}};
  Cluster cluster(cfg);
  const int n = 50'000;
  std::array<bool, 4> finished{};
  std::string send_error;
  // Buffers of the crash victim and of transfers aimed at it must outlive
  // the run: crash-stop unwinds the fiber (and would free its stack
  // vectors) while chunk deliveries to those buffers are still in flight
  // on the fabric. test_chaos's crash cells satisfy this via cuda->malloc
  // buffers the crashed rank never frees; host-buffer tests hoist instead.
  std::vector<int> r2_a(n, 2), r2_b(n, 22);
  std::vector<int> r3_a(n), r3_b(n);
  cluster.run([&](Context& ctx) {
    auto ints = committed(Datatype::int32());
    if (ctx.rank <= 1) {
      const int peer = 1 - ctx.rank;
      std::vector<int> out(n), in(n, -1);
      auto sreq = ctx.comm.send_init(out.data(), n, ints, peer, 4);
      auto rreq = ctx.comm.recv_init(in.data(), n, ints, peer, 4);
      for (int it = 0; it < 10; ++it) {
        std::fill(out.begin(), out.end(), ctx.rank * 1000 + it);
        std::array<mpisim::PersistentRequest, 2> reqs{sreq, rreq};
        ctx.comm.startall(reqs);
        ctx.comm.waitall_persistent(reqs);
        EXPECT_EQ(in[n - 1], peer * 1000 + it) << "rank " << ctx.rank;
      }
    } else if (ctx.rank == 2) {
      std::array<mpisim::PersistentRequest, 2> reqs{
          ctx.comm.send_init(r2_a.data(), n, ints, 3, 1),
          ctx.comm.send_init(r2_b.data(), n, ints, 3, 2)};
      try {
        for (int it = 0; it < 10; ++it) {
          ctx.comm.startall(reqs);
          ctx.comm.waitall_persistent(reqs);
        }
      } catch (const mpisim::RequestError& e) {
        send_error = e.what();
      }
    } else {
      // The victim: sinks rank 2's sends until the crash timer fires.
      auto r1 = ctx.comm.recv_init(r3_a.data(), n, ints, 2, 1);
      auto r2 = ctx.comm.recv_init(r3_b.data(), n, ints, 2, 2);
      for (int it = 0; it < 10; ++it) {
        r1.start();
        r2.start();
        r1.wait();
        r2.wait();
      }
    }
    finished[static_cast<std::size_t>(ctx.rank)] = true;
  });
  EXPECT_TRUE(finished[0]);
  EXPECT_TRUE(finished[1]);
  EXPECT_TRUE(finished[2]) << "rank 2 hung on a dead peer";
  EXPECT_FALSE(finished[3]);  // crash-stop never reaches the end
  EXPECT_FALSE(send_error.empty())
      << "sends to the crashed rank never failed";
}
