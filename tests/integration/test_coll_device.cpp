// Device-buffer collectives (docs/COLLECTIVES.md, "Device-resident
// buffers"): the staged and sliced-pipeline schedules must be byte-exact
// with the host path across the placement / algorithm / trigger matrix,
// survive the lossy fault matrix, return every staging slot, and stay
// hang-free when a rank crash-stops mid-pipeline.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "mpi/cluster.hpp"
#include "mpi/coll.hpp"

namespace core = mv2gnc::core;
namespace netsim = mv2gnc::netsim;
namespace mpisim = mv2gnc::mpisim;
namespace sim = mv2gnc::sim;
using mpisim::Cluster;
using mpisim::ClusterConfig;
using mpisim::Context;
using mpisim::Datatype;

namespace {

// A count with a remainder against every node size and slice cut in the
// matrix, so the ragged-edge paths run too.
constexpr int kCount = 24'001;

ClusterConfig matrix_config(int ranks, int rpn, core::CollSelect sel,
                            core::CollDevice dev, core::TriggerMode trig) {
  ClusterConfig cfg;
  cfg.ranks = ranks;
  cfg.tunables.ranks_per_node = static_cast<std::size_t>(rpn);
  cfg.tunables.coll_select = sel;
  cfg.tunables.coll_device = dev;
  cfg.tunables.trigger_mode = trig;
  // Force several slices per call so the per-slice tag machinery, the
  // prefetch window and the write-back stream all see real traffic.
  cfg.tunables.coll_slice_bytes = 32'768;
  return cfg;
}

std::vector<double> seed_vector(int rank, int count) {
  std::vector<double> v(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    v[static_cast<std::size_t>(i)] =
        static_cast<double>(rank + 1) * static_cast<double>(i % 29 - 14);
  }
  return v;
}

void expect_pools_quiesced(Cluster& cluster) {
  for (int r = 0; r < cluster.config().ranks; ++r) {
    EXPECT_EQ(cluster.vbuf_audit(r), "") << "rank " << r;
    EXPECT_EQ(cluster.vbufs_in_use(r), cluster.graveyard_slots(r))
        << "rank " << r;
  }
}

// One allreduce_sum over the given config; device = true stages the
// operands through registered device memory. Returns every rank's result.
std::vector<std::vector<double>> run_allreduce(const ClusterConfig& cfg,
                                               bool device,
                                               bool audit_pools = true) {
  std::vector<std::vector<double>> out(
      static_cast<std::size_t>(cfg.ranks),
      std::vector<double>(static_cast<std::size_t>(kCount)));
  Cluster cluster(cfg);
  cluster.run([&](Context& ctx) {
    const std::vector<double> in = seed_vector(ctx.rank, kCount);
    std::vector<double>& res = out[static_cast<std::size_t>(ctx.rank)];
    const std::size_t bytes = sizeof(double) * kCount;
    if (device) {
      auto* din = static_cast<double*>(ctx.cuda->malloc(bytes));
      auto* dout = static_cast<double*>(ctx.cuda->malloc(bytes));
      ctx.cuda->memcpy(din, in.data(), bytes);
      ctx.comm.allreduce_sum(din, dout, kCount);
      ctx.cuda->memcpy(res.data(), dout, bytes);
      ctx.cuda->free(din);
      ctx.cuda->free(dout);
    } else {
      ctx.comm.allreduce_sum(in.data(), res.data(), kCount);
    }
  });
  if (audit_pools) expect_pools_quiesced(cluster);
  return out;
}

std::vector<std::vector<std::int32_t>> run_bcast(const ClusterConfig& cfg,
                                                 bool device, int root) {
  constexpr int kN = 30'011;
  std::vector<std::vector<std::int32_t>> out(
      static_cast<std::size_t>(cfg.ranks),
      std::vector<std::int32_t>(static_cast<std::size_t>(kN)));
  Cluster cluster(cfg);
  cluster.run([&](Context& ctx) {
    std::vector<std::int32_t>& buf = out[static_cast<std::size_t>(ctx.rank)];
    if (ctx.rank == root) {
      for (int i = 0; i < kN; ++i) {
        buf[static_cast<std::size_t>(i)] = i * 7 - 3;
      }
    }
    auto dt = Datatype::int32();
    dt.commit();
    const std::size_t bytes = sizeof(std::int32_t) * kN;
    if (device) {
      auto* dbuf = static_cast<std::int32_t*>(ctx.cuda->malloc(bytes));
      ctx.cuda->memcpy(dbuf, buf.data(), bytes);
      ctx.comm.bcast(dbuf, kN, dt, root);
      ctx.cuda->memcpy(buf.data(), dbuf, bytes);
      ctx.cuda->free(dbuf);
    } else {
      ctx.comm.bcast(buf.data(), kN, dt, root);
    }
  });
  expect_pools_quiesced(cluster);
  return out;
}

std::vector<std::vector<std::byte>> run_allgather(const ClusterConfig& cfg,
                                                  bool device) {
  constexpr int kBlock = 20'483;
  const std::size_t total =
      static_cast<std::size_t>(kBlock) * static_cast<std::size_t>(cfg.ranks);
  std::vector<std::vector<std::byte>> out(
      static_cast<std::size_t>(cfg.ranks), std::vector<std::byte>(total));
  Cluster cluster(cfg);
  cluster.run([&](Context& ctx) {
    std::vector<std::byte> in(static_cast<std::size_t>(kBlock));
    for (int i = 0; i < kBlock; ++i) {
      in[static_cast<std::size_t>(i)] =
          static_cast<std::byte>((ctx.rank * 37 + i) & 0xff);
    }
    auto dt = Datatype::byte();
    dt.commit();
    std::vector<std::byte>& res = out[static_cast<std::size_t>(ctx.rank)];
    if (device) {
      auto* din = static_cast<std::byte*>(ctx.cuda->malloc(in.size()));
      auto* dout = static_cast<std::byte*>(ctx.cuda->malloc(total));
      ctx.cuda->memcpy(din, in.data(), in.size());
      ctx.comm.allgather(din, kBlock, dt, dout);
      ctx.cuda->memcpy(res.data(), dout, total);
      ctx.cuda->free(din);
      ctx.cuda->free(dout);
    } else {
      ctx.comm.allgather(in.data(), kBlock, dt, res.data());
    }
  });
  expect_pools_quiesced(cluster);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------------
// Byte-compare matrix: host == device-staged == device-pipelined across
// rpn x coll_select x trigger_mode.
// ---------------------------------------------------------------------------

struct MatrixCase {
  int rpn;
  core::CollSelect sel;
  core::TriggerMode trig;
};

class CollDeviceMatrix : public ::testing::TestWithParam<MatrixCase> {};

TEST_P(CollDeviceMatrix, AllreduceBitExactAcrossSchedules) {
  const MatrixCase& mc = GetParam();
  const auto host = run_allreduce(
      matrix_config(8, mc.rpn, mc.sel, core::CollDevice::kStaged, mc.trig),
      /*device=*/false);
  const auto staged = run_allreduce(
      matrix_config(8, mc.rpn, mc.sel, core::CollDevice::kStaged, mc.trig),
      /*device=*/true);
  const auto piped = run_allreduce(
      matrix_config(8, mc.rpn, mc.sel, core::CollDevice::kPipelined, mc.trig),
      /*device=*/true);
  const auto autod = run_allreduce(
      matrix_config(8, mc.rpn, mc.sel, core::CollDevice::kAuto, mc.trig),
      /*device=*/true);
  for (int r = 0; r < 8; ++r) {
    const auto& h = host[static_cast<std::size_t>(r)];
    EXPECT_EQ(0, std::memcmp(h.data(),
                             staged[static_cast<std::size_t>(r)].data(),
                             h.size() * sizeof(double)))
        << "staged diverges at rank " << r;
    EXPECT_EQ(0, std::memcmp(h.data(),
                             piped[static_cast<std::size_t>(r)].data(),
                             h.size() * sizeof(double)))
        << "pipelined diverges at rank " << r;
    EXPECT_EQ(0, std::memcmp(h.data(),
                             autod[static_cast<std::size_t>(r)].data(),
                             h.size() * sizeof(double)))
        << "auto diverges at rank " << r;
  }
}

TEST_P(CollDeviceMatrix, BcastAndAllgatherBitExactAcrossSchedules) {
  const MatrixCase& mc = GetParam();
  const auto mk = [&](core::CollDevice dev) {
    return matrix_config(8, mc.rpn, mc.sel, dev, mc.trig);
  };
  const auto bhost = run_bcast(mk(core::CollDevice::kStaged), false, 2);
  const auto bstaged = run_bcast(mk(core::CollDevice::kStaged), true, 2);
  const auto bpiped = run_bcast(mk(core::CollDevice::kPipelined), true, 2);
  const auto ghost = run_allgather(mk(core::CollDevice::kStaged), false);
  const auto gstaged = run_allgather(mk(core::CollDevice::kStaged), true);
  const auto gpiped = run_allgather(mk(core::CollDevice::kPipelined), true);
  for (int r = 0; r < 8; ++r) {
    const std::size_t ri = static_cast<std::size_t>(r);
    EXPECT_EQ(bhost[ri], bstaged[ri]) << "staged bcast, rank " << r;
    EXPECT_EQ(bhost[ri], bpiped[ri]) << "pipelined bcast, rank " << r;
    EXPECT_EQ(0, std::memcmp(ghost[ri].data(), gstaged[ri].data(),
                             ghost[ri].size()))
        << "staged allgather, rank " << r;
    EXPECT_EQ(0, std::memcmp(ghost[ri].data(), gpiped[ri].data(),
                             ghost[ri].size()))
        << "pipelined allgather, rank " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Placements, CollDeviceMatrix,
    ::testing::Values(
        MatrixCase{1, core::CollSelect::kFlat, core::TriggerMode::kPolled},
        MatrixCase{1, core::CollSelect::kAuto, core::TriggerMode::kStream},
        MatrixCase{2, core::CollSelect::kFlat, core::TriggerMode::kPolled},
        MatrixCase{2, core::CollSelect::kHier, core::TriggerMode::kPolled},
        MatrixCase{2, core::CollSelect::kHier, core::TriggerMode::kStream},
        MatrixCase{2, core::CollSelect::kAuto, core::TriggerMode::kPolled},
        MatrixCase{4, core::CollSelect::kFlat, core::TriggerMode::kStream},
        MatrixCase{4, core::CollSelect::kHier, core::TriggerMode::kPolled},
        MatrixCase{4, core::CollSelect::kAuto, core::TriggerMode::kStream}),
    [](const ::testing::TestParamInfo<MatrixCase>& info) {
      const MatrixCase& mc = info.param;
      std::string name = "rpn" + std::to_string(mc.rpn);
      name += mc.sel == core::CollSelect::kFlat    ? "_flat"
              : mc.sel == core::CollSelect::kHier ? "_hier"
                                                  : "_auto";
      name += mc.trig == core::TriggerMode::kStream ? "_stream" : "_polled";
      return name;
    });

// A non-power-of-two group exercises the pre/post pairing of the sliced
// wire leg on every schedule.
TEST(CollDevice, NonPowerOfTwoGroupBitExact) {
  for (core::TriggerMode trig :
       {core::TriggerMode::kPolled, core::TriggerMode::kStream}) {
    const auto host = run_allreduce(
        matrix_config(6, 2, core::CollSelect::kAuto, core::CollDevice::kStaged,
                      trig),
        false);
    const auto piped = run_allreduce(
        matrix_config(6, 2, core::CollSelect::kAuto,
                      core::CollDevice::kPipelined, trig),
        true);
    for (int r = 0; r < 6; ++r) {
      EXPECT_EQ(0, std::memcmp(host[static_cast<std::size_t>(r)].data(),
                               piped[static_cast<std::size_t>(r)].data(),
                               sizeof(double) * kCount))
          << "rank " << r << " trig " << static_cast<int>(trig);
    }
  }
}

// Mixed residency (device send buffer, host recv buffer) must still agree
// with the host result — it rides the staged schedule's wire leg.
TEST(CollDevice, MixedResidencyFallsBackToStaged) {
  ClusterConfig cfg = matrix_config(4, 2, core::CollSelect::kAuto,
                                    core::CollDevice::kPipelined,
                                    core::TriggerMode::kPolled);
  std::vector<std::vector<double>> out(
      4, std::vector<double>(static_cast<std::size_t>(kCount)));
  Cluster cluster(cfg);
  cluster.run([&](Context& ctx) {
    const std::vector<double> in = seed_vector(ctx.rank, kCount);
    const std::size_t bytes = sizeof(double) * kCount;
    auto* din = static_cast<double*>(ctx.cuda->malloc(bytes));
    ctx.cuda->memcpy(din, in.data(), bytes);
    ctx.comm.allreduce_sum(din, out[static_cast<std::size_t>(ctx.rank)].data(),
                           kCount);
    ctx.cuda->free(din);
  });
  const auto host = run_allreduce(
      matrix_config(4, 2, core::CollSelect::kAuto, core::CollDevice::kStaged,
                    core::TriggerMode::kPolled),
      false);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(0, std::memcmp(host[static_cast<std::size_t>(r)].data(),
                             out[static_cast<std::size_t>(r)].data(),
                             sizeof(double) * kCount))
        << "rank " << r;
  }
  // Pipelined never engaged: the recv side lives on the host.
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(cluster.coll_stats(r).allreduce.device_pipelined, 0u)
        << "rank " << r;
    EXPECT_GT(cluster.coll_stats(r).allreduce.device_calls, 0u)
        << "rank " << r;
  }
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

TEST(CollDevice, PipelinedCountersAndPeerBytes) {
  ClusterConfig cfg = matrix_config(8, 2, core::CollSelect::kHier,
                                    core::CollDevice::kPipelined,
                                    core::TriggerMode::kPolled);
  const auto piped = run_allreduce(cfg, true);
  (void)piped;
  Cluster cluster(cfg);
  cluster.run([&](Context& ctx) {
    const std::vector<double> in = seed_vector(ctx.rank, kCount);
    const std::size_t bytes = sizeof(double) * kCount;
    auto* din = static_cast<double*>(ctx.cuda->malloc(bytes));
    auto* dout = static_cast<double*>(ctx.cuda->malloc(bytes));
    ctx.cuda->memcpy(din, in.data(), bytes);
    ctx.comm.allreduce_sum(din, dout, kCount);
    ctx.cuda->free(din);
    ctx.cuda->free(dout);
  });
  for (int r = 0; r < 8; ++r) {
    const auto& ar = cluster.coll_stats(r).allreduce;
    EXPECT_EQ(ar.device_calls, 1u) << "rank " << r;
    EXPECT_EQ(ar.device_pipelined, 1u) << "rank " << r;
    EXPECT_GT(ar.device_slices, 1u) << "rank " << r;
    EXPECT_GT(ar.reduce_kernels, 0u) << "rank " << r;
    // Hier at rpn 2: the intra rings exchanged device pointers over the
    // device-direct IPC peer path; the fabric stripe staged across PCIe.
    EXPECT_GT(ar.bytes_peer, 0u) << "rank " << r;
    EXPECT_GT(ar.bytes_staged, 0u) << "rank " << r;
    EXPECT_GT(ar.device_elapsed_ns, 0) << "rank " << r;
  }
}

// ---------------------------------------------------------------------------
// Fault matrix: lossy fabric + lossy IPC under both schedules.
// ---------------------------------------------------------------------------

TEST(CollDevice, LossyFabricAndIpcStillBitExact) {
  for (core::CollDevice dev :
       {core::CollDevice::kStaged, core::CollDevice::kPipelined}) {
    ClusterConfig cfg = matrix_config(8, 2, core::CollSelect::kAuto, dev,
                                      core::TriggerMode::kPolled);
    cfg.rng_seed = 23;
    netsim::FaultSpec drop;
    drop.drop_send = 0.02;
    cfg.faults.set_default(drop);
    cfg.ipc_faults.set_default(drop);
    const auto lossy = run_allreduce(cfg, true);
    ClusterConfig clean = matrix_config(8, 2, core::CollSelect::kAuto,
                                        core::CollDevice::kStaged,
                                        core::TriggerMode::kPolled);
    const auto host = run_allreduce(clean, false);
    for (int r = 0; r < 8; ++r) {
      EXPECT_EQ(0, std::memcmp(host[static_cast<std::size_t>(r)].data(),
                               lossy[static_cast<std::size_t>(r)].data(),
                               sizeof(double) * kCount))
          << "schedule " << static_cast<int>(dev) << ", rank " << r;
    }
  }
}

// ---------------------------------------------------------------------------
// Crash-stop mid device collective: survivors abort cleanly, nobody hangs,
// survivor pools quiesce.
// ---------------------------------------------------------------------------

TEST(CollDevice, CrashMidPipelinedAllreduceDoesNotHang) {
  ClusterConfig cfg = matrix_config(4, 2, core::CollSelect::kHier,
                                    core::CollDevice::kPipelined,
                                    core::TriggerMode::kPolled);
  cfg.rng_seed = 11;
  cfg.tunables.rndv_timeout_ns = 200'000;
  cfg.tunables.rndv_max_retries = 3;
  cfg.crash_at = {{3, sim::SimTime{1'500'000}}};
  Cluster cluster(cfg);
  struct Outcome {
    bool finished = false;
    std::string error;
  };
  std::vector<Outcome> outcome(4);
  cluster.run([&](Context& ctx) {
    auto& me = outcome[static_cast<std::size_t>(ctx.rank)];
    const std::vector<double> in = seed_vector(ctx.rank, kCount);
    const std::size_t bytes = sizeof(double) * kCount;
    // Deliberately never freed before teardown: an aborted pipeline's
    // already-enqueued write-back may still land in the destination
    // buffer after the fiber unwound (same liveness rule as any buffer
    // handed to a collective).
    auto* din = static_cast<double*>(ctx.cuda->malloc(bytes));
    auto* dout = static_cast<double*>(ctx.cuda->malloc(bytes));
    ctx.cuda->memcpy(din, in.data(), bytes);
    try {
      for (int it = 0; it < 50; ++it) {
        ctx.comm.allreduce_sum(din, dout, kCount);
      }
    } catch (const mpisim::RequestError& e) {
      me.error = e.what();
    }
    me.finished = true;
  });
  for (int r = 0; r < 3; ++r) {
    const auto& o = outcome[static_cast<std::size_t>(r)];
    EXPECT_TRUE(o.finished) << "rank " << r << " hung";
    EXPECT_NE(o.error.find("aborted"), std::string::npos)
        << "rank " << r << ": " << o.error;
  }
  EXPECT_FALSE(outcome[3].finished);
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(cluster.vbuf_audit(r), "") << "rank " << r;
    EXPECT_EQ(cluster.vbufs_in_use(r), cluster.graveyard_slots(r))
        << "rank " << r;
  }
}
