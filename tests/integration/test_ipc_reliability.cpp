// Reliability guarantees over the intra-node IPC transport: the same
// retransmit/backoff/abort behaviour PR 2 established over the fabric must
// hold when the lossy wire is the node-local channel — byte-identical
// delivery under seeded loss, sender SEND_ABORT propagation, receiver
// force-drain after sender silence, per-pair delivery jitter, and clean
// CUDA-IPC mapping accounting on every failure path.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "mpi/cluster.hpp"

namespace mpisim = mv2gnc::mpisim;
namespace netsim = mv2gnc::netsim;
namespace core = mv2gnc::core;
namespace sim = mv2gnc::sim;
using mpisim::Cluster;
using mpisim::ClusterConfig;
using mpisim::Context;
using mpisim::Datatype;

namespace {

Datatype committed(Datatype t) {
  t.commit();
  return t;
}

ClusterConfig colocated(int ranks, std::size_t rpn) {
  ClusterConfig cfg;
  cfg.ranks = ranks;
  cfg.tunables.ranks_per_node = rpn;
  return cfg;
}

// Same invariant the fabric reliability suite asserts: vbuf books balance
// and anything still checked out is parked in the graveyard.
void expect_pools_quiesced(Cluster& cluster) {
  for (int r = 0; r < cluster.config().ranks; ++r) {
    EXPECT_EQ(cluster.vbuf_audit(r), "") << "rank " << r;
    EXPECT_EQ(cluster.vbufs_in_use(r), cluster.graveyard_slots(r))
        << "rank " << r;
  }
}

// Mirror of the fabric suite's helper, applied to the channel's model:
// drop rendezvous control messages, swallow/fail chunk-fin immediates.
void fault_rendezvous_control(netsim::FaultModel& fm, double drop_send,
                              double drop_imm, double fail_write) {
  netsim::FaultSpec ctrl;
  ctrl.drop_send = drop_send;
  for (int kind : {core::kRts, core::kCts, core::kChunkAck, core::kRndvDone,
                   core::kSendDone, core::kRtsAck, core::kSendDoneAck,
                   core::kSendAbort}) {
    fm.set_kind(kind, ctrl);
  }
  netsim::FaultSpec data;
  data.drop_imm = drop_imm;
  data.fail_write = fail_write;
  fm.set_kind(core::kChunkFin, data);
}

}  // namespace

TEST(IpcReliability, LossyChannelSoakDeliversByteIdentical) {
  // A pipelined strided device-to-device transfer between co-located ranks
  // whose channel drops 5% of rendezvous control messages, fails 1% of
  // peer copies and jitters every delivery — the payload must still arrive
  // byte-identical, recovered entirely by the IPC-side retransmit path.
  ClusterConfig cfg = colocated(2, 2);
  cfg.rng_seed = 2025;
  cfg.tunables.rndv_timeout_ns = 200'000;
  cfg.tunables.rndv_max_retries = 25;
  fault_rendezvous_control(cfg.ipc_faults, /*drop_send=*/0.05,
                           /*drop_imm=*/0.05, /*fail_write=*/0.01);
  netsim::FaultSpec jitter;
  jitter.jitter_ns = 2'000;
  cfg.ipc_faults.set_kind(core::kEager, jitter);
  Cluster cluster(cfg);
  const int rows = 1 << 18;  // 1 MB packed
  std::size_t mismatches = 0;
  cluster.run([&](Context& ctx) {
    auto col = committed(Datatype::vector(rows, 1, 2, Datatype::float32()));
    const std::size_t span = static_cast<std::size_t>(rows) * 8 + 16;
    auto* dev = static_cast<std::byte*>(ctx.cuda->malloc(span));
    if (ctx.rank == 0) {
      std::vector<std::byte> host(span);
      for (std::size_t i = 0; i < span; ++i) {
        host[i] = static_cast<std::byte>((i * 131 + 7) & 0xFF);
      }
      ctx.cuda->memcpy(dev, host.data(), span);
      ctx.comm.send(dev, 1, col, 1, 0);
    } else {
      ctx.cuda->memset(dev, 0, span);
      ctx.comm.recv(dev, 1, col, 0, 0);
      std::vector<std::byte> out(span);
      ctx.cuda->memcpy(out.data(), dev, span);
      for (int r = 0; r < rows; ++r) {
        const std::size_t off = static_cast<std::size_t>(r) * 8;
        for (std::size_t b = 0; b < 4; ++b) {
          if (out[off + b] !=
              static_cast<std::byte>(((off + b) * 131 + 7) & 0xFF)) {
            ++mismatches;
          }
        }
      }
    }
    ctx.comm.barrier();
    EXPECT_EQ(ctx.cuda->open_ipc_handles(), 0u);
    ctx.cuda->free(dev);
  });
  expect_pools_quiesced(cluster);
  EXPECT_EQ(mismatches, 0u);
  // Faults fired on the channel, none on the (untouched) fabric, and the
  // per-rank split surfaces them on the IPC side.
  std::uint64_t ipc_faults = 0;
  std::uint64_t retx = 0;
  for (int r = 0; r < 2; ++r) {
    const Cluster::FaultStats fs = cluster.fault_stats(r);
    EXPECT_EQ(fs.fabric.total(), 0u) << "rank " << r;
    ipc_faults += fs.ipc.total();
    EXPECT_EQ(cluster.rank_stats(r).ipc_faults_injected, fs.ipc.total());
    retx += cluster.retry_stats(r).total_retransmits();
  }
  EXPECT_GT(ipc_faults, 0u);
  EXPECT_GT(retx, 0u);
  EXPECT_EQ(cluster.retry_stats(0).transfer_failures, 0u);
  EXPECT_EQ(cluster.retry_stats(1).transfer_failures, 0u);
}

TEST(IpcReliability, SenderAbortPropagatesOverIpc) {
  // Every peer-copy fin immediate is swallowed on the channel, so the
  // sender exhausts its budget with the rendezvous established. Exactly as
  // over the fabric, the SEND_ABORT must fail the matched receive as a
  // bounded RequestError — and every CUDA-IPC mapping the device transfer
  // opened must be closed again on the failure path.
  ClusterConfig cfg = colocated(2, 2);
  cfg.rng_seed = 13;
  cfg.tunables.rndv_timeout_ns = 200'000;
  cfg.tunables.rndv_max_retries = 3;
  netsim::FaultSpec swallow;
  swallow.drop_imm = 1.0;
  cfg.ipc_faults.set_kind(core::kChunkFin, swallow);
  Cluster cluster(cfg);
  bool sender_threw = false;
  bool receiver_threw = false;
  std::string receiver_what;
  sim::SimTime receiver_failed_at = 0;
  cluster.run([&](Context& ctx) {
    const int n = 1 << 20;
    auto byte_t = committed(Datatype::byte());
    auto* dev = static_cast<std::byte*>(ctx.cuda->malloc(n));
    try {
      if (ctx.rank == 0) {
        ctx.comm.send(dev, n, byte_t, 1, 0);
      } else {
        ctx.comm.recv(dev, n, byte_t, 0, 0);
      }
    } catch (const mpisim::RequestError& e) {
      if (ctx.rank == 0) {
        sender_threw = true;
      } else {
        receiver_threw = true;
        receiver_what = e.what();
        receiver_failed_at = ctx.engine->now();
      }
    }
    EXPECT_EQ(ctx.cuda->open_ipc_handles(), 0u) << "rank " << ctx.rank;
    ctx.cuda->free(dev);
  });
  expect_pools_quiesced(cluster);
  EXPECT_TRUE(sender_threw);
  EXPECT_TRUE(receiver_threw);
  EXPECT_NE(receiver_what.find("abort"), std::string::npos);
  EXPECT_LE(receiver_failed_at, sim::SimTime{10'000'000});
  EXPECT_EQ(cluster.retry_stats(0).transfer_failures, 1u);
  EXPECT_EQ(cluster.retry_stats(1).transfer_failures, 1u);
}

TEST(IpcReliability, ForceDrainCompletesDirectReceiverOverIpc) {
  // Every SEND_DONE on the channel is swallowed: the direct-mode sender
  // stops retransmitting once its budget is out (data fully acked — not a
  // failure), and the receiver's watchdog force-drains, completing the
  // request with the payload it verifiably holds.
  ClusterConfig cfg = colocated(2, 2);
  cfg.rng_seed = 31;
  cfg.tunables.rndv_timeout_ns = 200'000;
  cfg.tunables.rndv_max_retries = 4;
  netsim::FaultSpec black_hole;
  black_hole.drop_send = 1.0;
  cfg.ipc_faults.set_kind(core::kSendDone, black_hole);
  Cluster cluster(cfg);
  std::size_t mismatches = 0;
  cluster.run([&](Context& ctx) {
    const int n = 1 << 20;
    auto byte_t = committed(Datatype::byte());
    std::vector<std::byte> buf(static_cast<std::size_t>(n));
    if (ctx.rank == 0) {
      for (int i = 0; i < n; ++i) {
        buf[static_cast<std::size_t>(i)] =
            static_cast<std::byte>((i * 11 + 2) & 0xFF);
      }
      ctx.comm.send(buf.data(), n, byte_t, 1, 0);
    } else {
      ctx.comm.recv(buf.data(), n, byte_t, 0, 0);
      for (int i = 0; i < n; i += 523) {
        if (buf[static_cast<std::size_t>(i)] !=
            static_cast<std::byte>((i * 11 + 2) & 0xFF)) {
          ++mismatches;
        }
      }
    }
  });
  expect_pools_quiesced(cluster);
  EXPECT_EQ(mismatches, 0u);
  EXPECT_GT(cluster.retry_stats(1).force_drains, 0u);
  EXPECT_EQ(cluster.retry_stats(0).transfer_failures, 0u);
  EXPECT_EQ(cluster.retry_stats(1).transfer_failures, 0u);
  EXPECT_EQ(cluster.tracked_rendezvous(1), 0u);
  EXPECT_GT(cluster.fault_stats(1).ipc.sends_dropped +
                cluster.fault_stats(0).ipc.sends_dropped,
            0u);
}

TEST(IpcReliability, PerPairJitterSlowsDeliveryDeterministically) {
  // Per-pair jitter on in-node delivery: the same workload on the same
  // seed finishes later with a jittered 0->1 edge than without, and two
  // jittered runs on one seed finish at the identical virtual time.
  auto run_once = [](sim::SimTime jitter_ns) {
    ClusterConfig cfg = colocated(2, 2);
    cfg.rng_seed = 77;
    if (jitter_ns > 0) {
      netsim::FaultSpec spec;
      spec.jitter_ns = jitter_ns;
      cfg.ipc_faults.set_pair(0, 1, spec);
    }
    Cluster cluster(cfg);
    cluster.run([](Context& ctx) {
      auto byte_t = committed(Datatype::byte());
      const int n = 1 << 19;
      auto* dev = static_cast<std::byte*>(ctx.cuda->malloc(n));
      for (int it = 0; it < 3; ++it) {
        if (ctx.rank == 0) ctx.comm.send(dev, n, byte_t, 1, it);
        else ctx.comm.recv(dev, n, byte_t, 0, it);
      }
      ctx.comm.barrier();
      ctx.cuda->free(dev);
    });
    return cluster.elapsed();
  };
  const sim::SimTime clean = run_once(0);
  const sim::SimTime jittered_a = run_once(100'000);
  const sim::SimTime jittered_b = run_once(100'000);
  EXPECT_GT(clean, 0);
  EXPECT_GT(jittered_a, clean);        // the jitter cost is visible
  EXPECT_EQ(jittered_a, jittered_b);   // and seeded-deterministic
}
