// Whole-stack integration: randomized datatypes and sizes pushed through
// the full cluster (device and host, eager and rendezvous), multi-rank
// traffic patterns, and cross-run determinism.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <random>
#include <vector>

#include "mpi/cluster.hpp"

namespace mpisim = mv2gnc::mpisim;
namespace sim = mv2gnc::sim;
using mpisim::Cluster;
using mpisim::ClusterConfig;
using mpisim::Context;
using mpisim::Datatype;

namespace {

Datatype committed(Datatype t) {
  t.commit();
  return t;
}

std::vector<std::byte> pattern(std::size_t n, unsigned seed) {
  std::vector<std::byte> v(n);
  std::mt19937 rng(seed);
  for (auto& b : v) b = static_cast<std::byte>(rng() & 0xFF);
  return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// Property sweep: a (count, blocklen, stride, elements, device?) shape goes
// device-to-device through the library and arrives bit-exact.
// ---------------------------------------------------------------------------

struct XferShape {
  int count, blocklen, stride, elements;
  bool on_device;
};

class ClusterTransfer : public ::testing::TestWithParam<XferShape> {};

TEST_P(ClusterTransfer, VectorArrivesBitExact) {
  const XferShape p = GetParam();
  Cluster cluster(ClusterConfig{});
  cluster.run([&](Context& ctx) {
    auto t = committed(
        Datatype::vector(p.count, p.blocklen, p.stride, Datatype::int32()));
    const std::size_t span =
        static_cast<std::size_t>(t.extent()) * p.elements + 64;
    auto init = pattern(span, 42);
    std::vector<std::byte> host_buf;
    std::byte* buf;
    if (p.on_device) {
      buf = static_cast<std::byte*>(ctx.cuda->malloc(span));
    } else {
      host_buf.resize(span);
      buf = host_buf.data();
    }
    if (ctx.rank == 0) {
      if (p.on_device) {
        ctx.cuda->memcpy(buf, init.data(), span);
      } else {
        std::copy(init.begin(), init.end(), buf);
      }
      ctx.comm.send(buf, p.elements, t, 1, 0);
    } else {
      if (p.on_device) {
        ctx.cuda->memset(buf, 0, span);
      } else {
        std::fill(host_buf.begin(), host_buf.end(), std::byte{0});
      }
      ctx.comm.recv(buf, p.elements, t, 0, 0);
      std::vector<std::byte> got(span);
      if (p.on_device) {
        ctx.cuda->memcpy(got.data(), buf, span);
      } else {
        std::copy(buf, buf + span, got.begin());
      }
      // Exactly the data positions of the type map must match `init`.
      for (int e = 0; e < p.elements; ++e) {
        for (const auto& seg : t.segments()) {
          const std::size_t off =
              static_cast<std::size_t>(e) * t.extent() + seg.offset;
          EXPECT_EQ(std::memcmp(got.data() + off, init.data() + off,
                                seg.length),
                    0)
              << "element " << e;
        }
      }
    }
    if (p.on_device) ctx.cuda->free(buf);
  });
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, ClusterTransfer,
    ::testing::Values(
        // eager-sized
        XferShape{16, 1, 2, 1, true}, XferShape{16, 1, 2, 1, false},
        XferShape{100, 3, 7, 2, true},
        // rendezvous single-chunk
        XferShape{5000, 1, 3, 1, true}, XferShape{5000, 1, 3, 1, false},
        // pipelined multi-chunk
        XferShape{60000, 1, 2, 1, true}, XferShape{60000, 1, 2, 1, false},
        XferShape{9000, 4, 9, 3, true},
        // wide blocks (chunk aligns to blocks of 512 B)
        XferShape{1000, 128, 200, 1, true}));

// ---------------------------------------------------------------------------
// Randomized soak: many messages of random sizes/tags between 4 ranks.
// ---------------------------------------------------------------------------

TEST(ClusterSoak, RandomizedTrafficAllArrives) {
  Cluster cluster(ClusterConfig{.ranks = 4});
  cluster.run([](Context& ctx) {
    auto bytes = committed(Datatype::byte());
    std::mt19937 rng(1234);  // same stream on every rank
    constexpr int kMsgs = 25;
    struct Msg {
      int src, dst, tag;
      std::size_t size;
    };
    std::vector<Msg> msgs;
    for (int i = 0; i < kMsgs; ++i) {
      Msg m;
      m.src = static_cast<int>(rng() % 4);
      m.dst = static_cast<int>(rng() % 4);
      m.tag = 100 + i;
      m.size = 1 + rng() % (300 * 1024);  // spans eager..pipelined
      if (m.src == m.dst) m.dst = (m.dst + 1) % 4;
      msgs.push_back(m);
    }
    std::vector<std::vector<std::byte>> keep;
    std::vector<mpisim::Request> reqs;
    for (const Msg& m : msgs) {
      if (ctx.rank == m.dst) {
        keep.emplace_back(m.size);
        reqs.push_back(ctx.comm.irecv(keep.back().data(),
                                      static_cast<int>(m.size), bytes, m.src,
                                      m.tag));
      }
    }
    for (const Msg& m : msgs) {
      if (ctx.rank == m.src) {
        keep.emplace_back(m.size,
                          static_cast<std::byte>(m.tag & 0xFF));
        reqs.push_back(ctx.comm.isend(keep.back().data(),
                                      static_cast<int>(m.size), bytes, m.dst,
                                      m.tag));
      }
    }
    ctx.comm.waitall(reqs);
    // Verify every received buffer is filled with its tag byte.
    std::size_t k = 0;
    for (const Msg& m : msgs) {
      if (ctx.rank == m.dst) {
        const auto& buf = keep[k++];
        EXPECT_EQ(buf.front(), static_cast<std::byte>(m.tag & 0xFF));
        EXPECT_EQ(buf.back(), static_cast<std::byte>(m.tag & 0xFF));
      }
    }
    ctx.comm.barrier();
  });
}

// ---------------------------------------------------------------------------
// Ring exchange across 8 ranks with device buffers.
// ---------------------------------------------------------------------------

TEST(ClusterPatterns, DeviceRingShift) {
  Cluster cluster(ClusterConfig{.ranks = 8});
  cluster.run([](Context& ctx) {
    auto ints = committed(Datatype::int32());
    const int n = 50'000;
    auto* out = static_cast<int*>(ctx.cuda->malloc(n * sizeof(int)));
    auto* in = static_cast<int*>(ctx.cuda->malloc(n * sizeof(int)));
    std::vector<int> host(n, ctx.rank);
    ctx.cuda->memcpy(out, host.data(), n * sizeof(int));
    const int next = (ctx.rank + 1) % ctx.size;
    const int prev = (ctx.rank + ctx.size - 1) % ctx.size;
    auto r = ctx.comm.irecv(in, n, ints, prev, 0);
    ctx.comm.send(out, n, ints, next, 0);
    ctx.comm.wait(r);
    ctx.cuda->memcpy(host.data(), in, n * sizeof(int));
    EXPECT_EQ(host[0], prev);
    EXPECT_EQ(host[n - 1], prev);
    ctx.cuda->free(out);
    ctx.cuda->free(in);
  });
}

// ---------------------------------------------------------------------------
// Determinism across full cluster runs.
// ---------------------------------------------------------------------------

TEST(ClusterDeterminism, IdenticalVirtualTimesAcrossRuns) {
  auto run_once = [] {
    Cluster cluster(ClusterConfig{.ranks = 4});
    sim::SimTime done = 0;
    cluster.run([&](Context& ctx) {
      auto bytes = committed(Datatype::byte());
      const std::size_t n = 200 * 1024;
      auto* dev = static_cast<std::byte*>(ctx.cuda->malloc(n));
      const int next = (ctx.rank + 1) % ctx.size;
      const int prev = (ctx.rank + ctx.size - 1) % ctx.size;
      for (int it = 0; it < 3; ++it) {
        auto r = ctx.comm.irecv(dev, static_cast<int>(n), bytes, prev, it);
        ctx.comm.send(dev, static_cast<int>(n), bytes, next, it);
        ctx.comm.wait(r);
      }
      ctx.comm.barrier();
      if (ctx.rank == 0) done = ctx.engine->now();
      ctx.cuda->free(dev);
    });
    return done;
  };
  const sim::SimTime a = run_once();
  const sim::SimTime b = run_once();
  EXPECT_GT(a, 0);
  EXPECT_EQ(a, b);
}

// ---------------------------------------------------------------------------
// Mixed residency in one application step (the Stencil2D north/south +
// east/west mix): contiguous device rows and strided device columns and a
// host control message, concurrently.
// ---------------------------------------------------------------------------

TEST(ClusterPatterns, MixedResidencyConcurrentTraffic) {
  Cluster cluster(ClusterConfig{.ranks = 2});
  cluster.run([](Context& ctx) {
    auto ints = committed(Datatype::int32());
    auto col = committed(Datatype::vector(30000, 1, 4, Datatype::int32()));
    const int peer = 1 - ctx.rank;
    auto* dev_col = static_cast<int*>(
        ctx.cuda->malloc(30000ull * 4 * sizeof(int)));
    auto* dev_row = static_cast<int*>(ctx.cuda->malloc(40000 * sizeof(int)));
    std::vector<int> host_msg(2000, ctx.rank + 7);

    std::vector<mpisim::Request> reqs;
    reqs.push_back(ctx.comm.irecv(dev_col, 1, col, peer, 1));
    reqs.push_back(ctx.comm.irecv(dev_row, 40000, ints, peer, 2));
    std::vector<int> host_in(2000, -1);
    reqs.push_back(ctx.comm.irecv(host_in.data(), 2000, ints, peer, 3));
    reqs.push_back(ctx.comm.isend(dev_col, 1, col, peer, 1));
    reqs.push_back(ctx.comm.isend(dev_row, 40000, ints, peer, 2));
    reqs.push_back(ctx.comm.isend(host_msg.data(), 2000, ints, peer, 3));
    ctx.comm.waitall(reqs);
    EXPECT_EQ(host_in[0], peer + 7);
    ctx.cuda->free(dev_col);
    ctx.cuda->free(dev_row);
  });
}
