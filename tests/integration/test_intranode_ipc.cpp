// Intra-node GPU-IPC transport, end to end: co-located ranks exchange
// device payloads over peer copies without touching the HCA, forced-fabric
// mode disables the fast path, mixed topologies route per peer, and
// wildcard receives match across transports — including under fabric-side
// fault injection.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "mpi/cluster.hpp"

namespace mpisim = mv2gnc::mpisim;
namespace netsim = mv2gnc::netsim;
namespace core = mv2gnc::core;
namespace sim = mv2gnc::sim;
using mpisim::Cluster;
using mpisim::ClusterConfig;
using mpisim::Context;
using mpisim::Datatype;

namespace {

Datatype committed(Datatype t) {
  t.commit();
  return t;
}

ClusterConfig colocated(int ranks, std::size_t rpn) {
  ClusterConfig cfg;
  cfg.ranks = ranks;
  cfg.tunables.ranks_per_node = rpn;
  return cfg;
}

}  // namespace

// ---------------------------------------------------------------------------
// Transport selection and routing.
// ---------------------------------------------------------------------------

TEST(IntranodeTopology, BlockedPlacementAndPerPeerRoutes) {
  Cluster cluster(colocated(4, 2));
  EXPECT_EQ(cluster.node_of(0), 0);
  EXPECT_EQ(cluster.node_of(1), 0);
  EXPECT_EQ(cluster.node_of(2), 1);
  EXPECT_EQ(cluster.node_of(3), 1);
  // Co-located peers are device-direct; cross-node peers are not.
  EXPECT_TRUE(cluster.router(0).device_direct(1));
  EXPECT_FALSE(cluster.router(0).device_direct(2));
  EXPECT_TRUE(cluster.router(2).device_direct(3));
  EXPECT_FALSE(cluster.router(3).device_direct(1));
  // Two transports bound per rank: the fabric fallback plus the node's IPC.
  EXPECT_EQ(cluster.router(0).transports().size(), 2u);
}

TEST(IntranodeTopology, DefaultTopologyHasNoIpcTransport) {
  Cluster cluster(ClusterConfig{.ranks = 4});
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(cluster.router(r).transports().size(), 1u);
    for (int p = 0; p < 4; ++p) {
      EXPECT_FALSE(cluster.router(r).device_direct(p));
    }
  }
}

TEST(IntranodeTopology, ForcedFabricDisablesFastPath) {
  ClusterConfig cfg = colocated(2, 2);
  cfg.tunables.transport_select = core::TransportSelect::kFabric;
  Cluster cluster(cfg);
  EXPECT_FALSE(cluster.router(0).device_direct(1));
  EXPECT_EQ(cluster.router(0).transports().size(), 1u);
}

// ---------------------------------------------------------------------------
// Payload integrity over the IPC fast path.
// ---------------------------------------------------------------------------

struct IpcShape {
  int count, blocklen, stride, elements;
  bool on_device;
};

class IntranodeTransfer : public ::testing::TestWithParam<IpcShape> {};

TEST_P(IntranodeTransfer, ArrivesBitExactWithoutTouchingTheHca) {
  const IpcShape p = GetParam();
  Cluster cluster(colocated(2, 2));
  cluster.run([&](Context& ctx) {
    auto t = committed(
        Datatype::vector(p.count, p.blocklen, p.stride, Datatype::int32()));
    const std::size_t span =
        static_cast<std::size_t>(t.extent()) * p.elements + 64;
    std::vector<std::byte> init(span);
    for (std::size_t i = 0; i < span; ++i) {
      init[i] = static_cast<std::byte>((i * 31 + 7) & 0xFF);
    }
    std::vector<std::byte> host_buf;
    std::byte* buf;
    if (p.on_device) {
      buf = static_cast<std::byte*>(ctx.cuda->malloc(span));
    } else {
      host_buf.resize(span);
      buf = host_buf.data();
    }
    if (ctx.rank == 0) {
      if (p.on_device) ctx.cuda->memcpy(buf, init.data(), span);
      else std::memcpy(buf, init.data(), span);
      ctx.comm.send(buf, p.elements, t, 1, 0);
    } else {
      if (p.on_device) ctx.cuda->memset(buf, 0, span);
      else std::memset(buf, 0, span);
      ctx.comm.recv(buf, p.elements, t, 0, 0);
      std::vector<std::byte> got(span);
      if (p.on_device) ctx.cuda->memcpy(got.data(), buf, span);
      else std::memcpy(got.data(), buf, span);
      for (int e = 0; e < p.elements; ++e) {
        for (const auto& seg : t.segments()) {
          const std::size_t off =
              static_cast<std::size_t>(e) * t.extent() + seg.offset;
          ASSERT_EQ(
              std::memcmp(got.data() + off, init.data() + off, seg.length),
              0)
              << "element " << e;
        }
      }
    }
    ctx.comm.barrier();
    // Every IPC mapping the rendezvous path opened must be closed again.
    EXPECT_EQ(ctx.cuda->open_ipc_handles(), 0u);
    if (p.on_device) ctx.cuda->free(buf);
  });
  // The payload moved over the node's IPC channel, not the HCA.
  std::uint64_t fabric_bytes = 0, ipc_bytes = 0;
  for (int r = 0; r < 2; ++r) {
    const mpisim::RankStats s = cluster.rank_stats(r);
    fabric_bytes += s.bytes_sent;
    ipc_bytes += s.ipc_bytes_sent;
  }
  EXPECT_EQ(fabric_bytes, 0u);
  EXPECT_GT(ipc_bytes, 0u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, IntranodeTransfer,
    ::testing::Values(
        // eager-sized, both residencies
        IpcShape{16, 1, 2, 1, true}, IpcShape{16, 1, 2, 1, false},
        // rendezvous contiguous device: the kDeviceIpcDirect landing
        IpcShape{50000, 4, 4, 1, true},
        // rendezvous non-contiguous device: pack -> peer copy -> unpack,
        // single chunk and pipelined multi-chunk
        IpcShape{5000, 1, 3, 1, true}, IpcShape{60000, 1, 2, 1, true},
        IpcShape{9000, 4, 9, 3, true},
        // host rendezvous over the channel (shared-memory path)
        IpcShape{60000, 1, 2, 1, false}));

// Mixed residency across one node: device sender into a host receiver and
// vice versa still routes over the channel (PCIe-staged peer copy).
TEST(IntranodeTransfer, MixedResidencyAcrossTheChannel) {
  Cluster cluster(colocated(2, 2));
  cluster.run([](Context& ctx) {
    auto ints = committed(Datatype::int32());
    const int n = 40000;
    if (ctx.rank == 0) {
      auto* dev = static_cast<int*>(ctx.cuda->malloc(n * sizeof(int)));
      std::vector<int> host(n);
      std::iota(host.begin(), host.end(), 100);
      ctx.cuda->memcpy(dev, host.data(), n * sizeof(int));
      ctx.comm.send(dev, n, ints, 1, 0);
      std::vector<int> back(n, -1);
      ctx.comm.recv(back.data(), n, ints, 1, 1);
      EXPECT_EQ(back[0], 7);
      EXPECT_EQ(back[n - 1], 7);
      ctx.cuda->free(dev);
    } else {
      std::vector<int> host(n, -1);
      ctx.comm.recv(host.data(), n, ints, 0, 0);
      EXPECT_EQ(host[0], 100);
      EXPECT_EQ(host[n - 1], 100 + n - 1);
      auto* dev = static_cast<int*>(ctx.cuda->malloc(n * sizeof(int)));
      std::vector<int> fill(n, 7);
      ctx.cuda->memcpy(dev, fill.data(), n * sizeof(int));
      ctx.comm.send(dev, n, ints, 0, 1);
      ctx.cuda->free(dev);
    }
  });
}

// Forcing the fabric must deliver the same bytes — just over the HCA.
TEST(IntranodeTransfer, ForcedFabricDeliversSamePayload) {
  ClusterConfig cfg = colocated(2, 2);
  cfg.tunables.transport_select = core::TransportSelect::kFabric;
  Cluster cluster(cfg);
  cluster.run([](Context& ctx) {
    auto col = committed(Datatype::vector(20000, 1, 3, Datatype::int32()));
    const std::size_t span = static_cast<std::size_t>(col.extent()) + 64;
    auto* dev = static_cast<std::byte*>(ctx.cuda->malloc(span));
    if (ctx.rank == 0) {
      std::vector<std::byte> init(span, std::byte{0x3C});
      ctx.cuda->memcpy(dev, init.data(), span);
      ctx.comm.send(dev, 1, col, 1, 0);
    } else {
      ctx.cuda->memset(dev, 0, span);
      ctx.comm.recv(dev, 1, col, 0, 0);
      std::vector<std::byte> got(span);
      ctx.cuda->memcpy(got.data(), dev, span);
      EXPECT_EQ(got[0], std::byte{0x3C});
    }
    ctx.cuda->free(dev);
  });
  std::uint64_t fabric_bytes = 0, ipc_bytes = 0;
  for (int r = 0; r < 2; ++r) {
    const mpisim::RankStats s = cluster.rank_stats(r);
    fabric_bytes += s.bytes_sent;
    ipc_bytes += s.ipc_bytes_sent;
  }
  EXPECT_GT(fabric_bytes, 0u);
  EXPECT_EQ(ipc_bytes, 0u);
}

// ---------------------------------------------------------------------------
// Mixed transports in one job: intra-node and cross-node traffic at once.
// ---------------------------------------------------------------------------

TEST(MixedTransports, RingAcrossTwoNodesIsBitExact) {
  // 4 ranks, 2 per node: the ring alternates IPC hops (0->1, 2->3) and
  // fabric hops (1->2, 3->0).
  Cluster cluster(colocated(4, 2));
  cluster.run([](Context& ctx) {
    auto ints = committed(Datatype::int32());
    const int n = 50'000;
    auto* out = static_cast<int*>(ctx.cuda->malloc(n * sizeof(int)));
    auto* in = static_cast<int*>(ctx.cuda->malloc(n * sizeof(int)));
    std::vector<int> host(n, ctx.rank);
    ctx.cuda->memcpy(out, host.data(), n * sizeof(int));
    const int next = (ctx.rank + 1) % ctx.size;
    const int prev = (ctx.rank + ctx.size - 1) % ctx.size;
    auto r = ctx.comm.irecv(in, n, ints, prev, 0);
    ctx.comm.send(out, n, ints, next, 0);
    ctx.comm.wait(r);
    ctx.cuda->memcpy(host.data(), in, n * sizeof(int));
    EXPECT_EQ(host[0], prev);
    EXPECT_EQ(host[n - 1], prev);
    ctx.cuda->free(out);
    ctx.cuda->free(in);
  });
  // Both transports carried payload.
  std::uint64_t fabric_bytes = 0, ipc_bytes = 0;
  for (int r = 0; r < 4; ++r) {
    const mpisim::RankStats s = cluster.rank_stats(r);
    fabric_bytes += s.bytes_sent;
    ipc_bytes += s.ipc_bytes_sent;
  }
  EXPECT_GT(fabric_bytes, 0u);
  EXPECT_GT(ipc_bytes, 0u);
}

// Wildcard matching across transports: an intra-node sender and a
// cross-node sender race into the same kAnySource/kAnyTag receives; both
// payloads must arrive bit-exact, with the fabric leg running under fault
// injection (drops + write failures) while the IPC leg stays lossless.
TEST(MixedTransports, AnySourceMatchesAcrossTransportsUnderFaults) {
  ClusterConfig cfg = colocated(3, 2);  // ranks 0,1 on node 0; rank 2 alone
  netsim::FaultSpec lossy;
  lossy.drop_send = 0.05;
  lossy.drop_imm = 0.05;
  lossy.fail_write = 0.02;
  cfg.faults.set_default(lossy);
  cfg.rng_seed = 99;
  Cluster cluster(cfg);
  ASSERT_TRUE(cluster.router(0).device_direct(1));
  ASSERT_FALSE(cluster.router(0).device_direct(2));
  cluster.run([](Context& ctx) {
    auto ints = committed(Datatype::int32());
    const int n = 30'000;
    if (ctx.rank == 0) {
      // Two wildcard receives; the senders race over different transports.
      std::vector<int> a(n, -1), b(n, -1);
      mpisim::Status st_a, st_b;
      auto ra = ctx.comm.irecv(a.data(), n, ints, mpisim::kAnySource,
                               mpisim::kAnyTag);
      auto rb = ctx.comm.irecv(b.data(), n, ints, mpisim::kAnySource,
                               mpisim::kAnyTag);
      ctx.comm.wait(ra, &st_a);
      ctx.comm.wait(rb, &st_b);
      // One message from each sender, whatever the arrival order.
      EXPECT_NE(st_a.source, st_b.source);
      const std::pair<mpisim::Status, const std::vector<int>*> got[] = {
          {st_a, &a}, {st_b, &b}};
      for (const auto& [st, buf] : got) {
        EXPECT_TRUE(st.source == 1 || st.source == 2);
        EXPECT_EQ((*buf)[0], st.source * 1000);
        EXPECT_EQ((*buf)[n - 1], st.source * 1000);
      }
    } else {
      // Device-resident payload on both senders: rank 1 goes over the IPC
      // channel, rank 2 over the faulty fabric.
      auto* dev = static_cast<int*>(ctx.cuda->malloc(n * sizeof(int)));
      std::vector<int> host(n, ctx.rank * 1000);
      ctx.cuda->memcpy(dev, host.data(), n * sizeof(int));
      ctx.comm.send(dev, n, ints, 0, ctx.rank);
      ctx.cuda->free(dev);
    }
    ctx.comm.barrier();
  });
  // The fault model actually fired on the fabric leg.
  std::uint64_t faults = 0;
  for (int r = 0; r < 3; ++r) faults += cluster.rank_stats(r).faults_injected;
  EXPECT_GT(faults, 0u);
}

// ---------------------------------------------------------------------------
// Determinism and performance of the fast path.
// ---------------------------------------------------------------------------

TEST(IntranodePerf, IpcBeatsForcedFabricOnDeviceRendezvous) {
  auto run_once = [](core::TransportSelect select) {
    ClusterConfig cfg = colocated(2, 2);
    cfg.tunables.transport_select = select;
    Cluster cluster(cfg);
    cluster.run([](Context& ctx) {
      auto col = committed(Datatype::vector(60000, 1, 2, Datatype::int32()));
      const std::size_t span = static_cast<std::size_t>(col.extent()) + 64;
      auto* dev = static_cast<std::byte*>(ctx.cuda->malloc(span));
      if (ctx.rank == 0) ctx.comm.send(dev, 1, col, 1, 0);
      else ctx.comm.recv(dev, 1, col, 0, 0);
      ctx.cuda->free(dev);
    });
    return cluster.elapsed();
  };
  const sim::SimTime ipc = run_once(core::TransportSelect::kAuto);
  const sim::SimTime fabric = run_once(core::TransportSelect::kFabric);
  EXPECT_LT(ipc, fabric);
}

TEST(IntranodeDeterminism, IdenticalVirtualTimesAcrossRuns) {
  auto run_once = [] {
    Cluster cluster(colocated(4, 2));
    sim::SimTime done = 0;
    cluster.run([&](Context& ctx) {
      auto bytes = committed(Datatype::byte());
      const std::size_t n = 200 * 1024;
      auto* dev = static_cast<std::byte*>(ctx.cuda->malloc(n));
      const int next = (ctx.rank + 1) % ctx.size;
      const int prev = (ctx.rank + ctx.size - 1) % ctx.size;
      for (int it = 0; it < 3; ++it) {
        auto r = ctx.comm.irecv(dev, static_cast<int>(n), bytes, prev, it);
        ctx.comm.send(dev, static_cast<int>(n), bytes, next, it);
        ctx.comm.wait(r);
      }
      ctx.comm.barrier();
      if (ctx.rank == 0) done = ctx.engine->now();
      ctx.cuda->free(dev);
    });
    return done;
  };
  const sim::SimTime a = run_once();
  const sim::SimTime b = run_once();
  EXPECT_GT(a, 0);
  EXPECT_EQ(a, b);
}

// Collectives over a mixed topology: correctness is transport-agnostic.
TEST(MixedTransports, AllreduceOverMixedTopology) {
  Cluster cluster(colocated(4, 2));
  cluster.run([](Context& ctx) {
    std::vector<double> v(1024, ctx.rank + 1.0);
    std::vector<double> out(1024, 0.0);
    ctx.comm.allreduce_sum(v.data(), out.data(), 1024);
    EXPECT_DOUBLE_EQ(out[0], 1.0 + 2.0 + 3.0 + 4.0);
    EXPECT_DOUBLE_EQ(out[1023], 10.0);
  });
}
