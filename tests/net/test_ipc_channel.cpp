// Intra-node IPC channel semantics: lossless delivery over the shared
// queue pair, one-sided peer copies with bandwidth chosen from where the
// endpoints live, delivery receipts, and wr-id disjointness with the
// fabric's range.
#include "net/ipc.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "gpu/memory_registry.hpp"
#include "net/fabric.hpp"

namespace netsim = mv2gnc::netsim;
namespace gpu = mv2gnc::gpu;
namespace sim = mv2gnc::sim;

namespace {

netsim::WireMessage make_msg(int kind, std::uint64_t h0 = 0,
                             std::vector<std::byte> payload = {}) {
  netsim::WireMessage m;
  m.kind = kind;
  m.header[0] = h0;
  m.payload = std::move(payload);
  return m;
}

}  // namespace

TEST(IpcChannel, SendDeliversWithSourceStamped) {
  sim::Engine eng;
  gpu::MemoryRegistry reg;
  netsim::IpcChannel ch(eng, reg, netsim::IpcCostModel{});
  ch.add_rank(0);
  ch.add_rank(1);
  bool got = false;
  eng.spawn("sender", [&] { ch.port(0).post_send(1, make_msg(7, 42)); });
  eng.spawn("receiver", [&] {
    sim::Notifier n(eng);
    ch.port(1).set_wakeup(&n);
    netsim::Completion c;
    while (!ch.port(1).poll(c)) n.wait();
    EXPECT_EQ(c.type, netsim::CqType::kRecv);
    EXPECT_EQ(c.msg.kind, 7);
    EXPECT_EQ(c.msg.header[0], 42u);
    EXPECT_EQ(c.msg.src_node, 0);
    got = true;
  });
  eng.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(ch.port(0).messages_sent(), 1u);
}

TEST(IpcChannel, WrIdsDisjointFromFabricRange) {
  sim::Engine eng;
  gpu::MemoryRegistry reg;
  netsim::IpcChannel ch(eng, reg, netsim::IpcCostModel{});
  ch.add_rank(0);
  ch.add_rank(1);
  eng.spawn("sender", [&] {
    const std::uint64_t wr = ch.port(0).post_send(1, make_msg(1));
    EXPECT_GT(wr, netsim::kIpcWrBase);
  });
  eng.run();
}

TEST(IpcChannel, RdmaWritePlacesBytesBeforeImmediate) {
  sim::Engine eng;
  gpu::MemoryRegistry reg;
  netsim::IpcChannel ch(eng, reg, netsim::IpcCostModel{});
  ch.add_rank(0);
  ch.add_rank(1);
  std::vector<std::byte> src(4096);
  std::vector<std::byte> dst(4096, std::byte{0});
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::byte>(i * 7 & 0xFF);
  }
  eng.spawn("writer", [&] {
    ch.port(0).post_rdma_write(1, src.data(), dst.data(), src.size(),
                               make_msg(9, 1234));
  });
  eng.spawn("target", [&] {
    sim::Notifier n(eng);
    ch.port(1).set_wakeup(&n);
    netsim::Completion c;
    while (!ch.port(1).poll(c)) n.wait();
    ASSERT_EQ(c.type, netsim::CqType::kRecv);
    EXPECT_EQ(c.msg.kind, 9);
    EXPECT_EQ(std::memcmp(src.data(), dst.data(), src.size()), 0);
  });
  eng.run();
  EXPECT_EQ(ch.port(0).rdma_writes(), 1u);
  EXPECT_EQ(ch.port(0).bytes_sent(), src.size());
}

TEST(IpcChannel, CopyBandwidthFollowsEndpointResidency) {
  sim::Engine eng;
  gpu::MemoryRegistry reg;
  netsim::IpcCostModel cost;
  cost.host_bw = 10.0;
  cost.pcie_bw = 5.0;
  cost.peer_d2d_bw = 6.5;
  cost.shm_host_bw = 4.0;
  cost.cma_host_bw = 11.5;
  cost.shm_cma_threshold = 1024;
  netsim::IpcChannel ch(eng, reg, cost);
  // Two fake device allocations registered directly with the registry.
  alignas(64) static std::byte dev_a[256];
  alignas(64) static std::byte dev_b[256];
  alignas(64) static std::byte host[256];
  reg.register_range(dev_a, sizeof(dev_a), /*device_id=*/0);
  reg.register_range(dev_b, sizeof(dev_b), /*device_id=*/1);
  EXPECT_DOUBLE_EQ(ch.copy_bw(dev_a, dev_b, 256), 6.5);  // peer D2D
  EXPECT_DOUBLE_EQ(ch.copy_bw(dev_a, host, 256), 5.0);   // one device end
  EXPECT_DOUBLE_EQ(ch.copy_bw(host, dev_b, 256), 5.0);
  // Host<->host splits by size: double-buffered shm below the threshold,
  // single-copy CMA at or above it.
  EXPECT_DOUBLE_EQ(ch.copy_bw(host, host, 256), 4.0);
  EXPECT_DOUBLE_EQ(ch.copy_bw(host, host, 1024), 11.5);
  EXPECT_DOUBLE_EQ(ch.copy_bw(host, host, 1 << 20), 11.5);
}

TEST(IpcChannel, PeerCopyIsFasterThanPcieStagedCopy) {
  // The whole point of the fast path: a D2D peer copy of N bytes must beat
  // the same N bytes staged D2H + H2D over PCIe.
  netsim::IpcCostModel cost = netsim::IpcCostModel::from_gpu(
      mv2gnc::gpu::GpuCostModel::tesla_c2050());
  const std::size_t n = 1 << 20;
  const sim::SimTime peer = cost.copy_time(n, cost.peer_d2d_bw);
  const sim::SimTime staged = 2 * cost.copy_time(n, cost.pcie_bw);
  EXPECT_LT(peer, staged);
}

TEST(IpcChannel, DeliveryReceiptEchoesHeader) {
  sim::Engine eng;
  gpu::MemoryRegistry reg;
  netsim::IpcChannel ch(eng, reg, netsim::IpcCostModel{});
  ch.add_rank(0);
  ch.add_rank(1);
  constexpr int kProbe = 40;
  constexpr int kProbeAck = 41;
  ch.enable_delivery_receipt(kProbe, kProbeAck, /*echo_header=*/2);
  bool acked = false;
  eng.spawn("sender", [&] {
    auto m = make_msg(kProbe);
    m.header[2] = 777;
    ch.port(0).post_send(1, std::move(m));
    sim::Notifier n(eng);
    ch.port(0).set_wakeup(&n);
    netsim::Completion c;
    for (;;) {
      if (!ch.port(0).poll(c)) {
        n.wait();
        continue;
      }
      if (c.type == netsim::CqType::kRecv && c.msg.kind == kProbeAck) {
        EXPECT_EQ(c.msg.header[0], 777u);
        acked = true;
        return;
      }
    }
  });
  eng.spawn("receiver", [&] {
    sim::Notifier n(eng);
    ch.port(1).set_wakeup(&n);
    netsim::Completion c;
    while (!ch.port(1).poll(c)) n.wait();
    EXPECT_EQ(c.msg.kind, kProbe);
  });
  eng.run();
  EXPECT_TRUE(acked);
}

TEST(IpcChannel, ReceiptConfigValidated) {
  sim::Engine eng;
  gpu::MemoryRegistry reg;
  netsim::IpcChannel ch(eng, reg, netsim::IpcCostModel{});
  EXPECT_THROW(ch.enable_delivery_receipt(1, 2, 6), std::invalid_argument);
}

TEST(IpcChannel, UnknownRankRejected) {
  sim::Engine eng;
  gpu::MemoryRegistry reg;
  netsim::IpcChannel ch(eng, reg, netsim::IpcCostModel{});
  ch.add_rank(3);
  EXPECT_TRUE(ch.has_rank(3));
  EXPECT_FALSE(ch.has_rank(4));
  EXPECT_THROW(ch.port(4), std::out_of_range);
}

TEST(IpcChannel, RdmaReadPullsBytes) {
  sim::Engine eng;
  gpu::MemoryRegistry reg;
  netsim::IpcChannel ch(eng, reg, netsim::IpcCostModel{});
  ch.add_rank(0);
  ch.add_rank(1);
  std::vector<std::byte> remote(512, std::byte{0x5A});
  std::vector<std::byte> local(512, std::byte{0});
  eng.spawn("reader", [&] {
    sim::Notifier n(eng);
    ch.port(0).set_wakeup(&n);
    const std::uint64_t wr =
        ch.port(0).post_rdma_read(1, local.data(), remote.data(), local.size());
    netsim::Completion c;
    for (;;) {
      if (!ch.port(0).poll(c)) {
        n.wait();
        continue;
      }
      if (c.type == netsim::CqType::kRdmaReadComplete) {
        EXPECT_EQ(c.wr_id, wr);
        EXPECT_EQ(std::memcmp(local.data(), remote.data(), local.size()), 0);
        return;
      }
    }
  });
  eng.run();
}
