// Intra-node IPC channel semantics: delivery over the shared queue pair
// (lossless by default, lossy under an armed FaultModel), one-sided peer
// copies with bandwidth chosen from where the endpoints live, delivery
// receipts, wr-id disjointness with the fabric's range, and per-port fault
// accounting mirroring the fabric's.
#include "net/ipc.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "gpu/memory_registry.hpp"
#include "net/fabric.hpp"

namespace netsim = mv2gnc::netsim;
namespace gpu = mv2gnc::gpu;
namespace sim = mv2gnc::sim;

namespace {

netsim::WireMessage make_msg(int kind, std::uint64_t h0 = 0,
                             std::vector<std::byte> payload = {}) {
  netsim::WireMessage m;
  m.kind = kind;
  m.header[0] = h0;
  m.payload = std::move(payload);
  return m;
}

}  // namespace

TEST(IpcChannel, SendDeliversWithSourceStamped) {
  sim::Engine eng;
  gpu::MemoryRegistry reg;
  netsim::IpcChannel ch(eng, reg, netsim::IpcCostModel{});
  ch.add_rank(0);
  ch.add_rank(1);
  bool got = false;
  eng.spawn("sender", [&] { ch.port(0).post_send(1, make_msg(7, 42)); });
  eng.spawn("receiver", [&] {
    sim::Notifier n(eng);
    ch.port(1).set_wakeup(&n);
    netsim::Completion c;
    while (!ch.port(1).poll(c)) n.wait();
    EXPECT_EQ(c.type, netsim::CqType::kRecv);
    EXPECT_EQ(c.msg.kind, 7);
    EXPECT_EQ(c.msg.header[0], 42u);
    EXPECT_EQ(c.msg.src_node, 0);
    got = true;
  });
  eng.run();
  EXPECT_TRUE(got);
  EXPECT_EQ(ch.port(0).messages_sent(), 1u);
}

TEST(IpcChannel, WrIdsDisjointFromFabricRange) {
  sim::Engine eng;
  gpu::MemoryRegistry reg;
  netsim::IpcChannel ch(eng, reg, netsim::IpcCostModel{});
  ch.add_rank(0);
  ch.add_rank(1);
  eng.spawn("sender", [&] {
    const std::uint64_t wr = ch.port(0).post_send(1, make_msg(1));
    EXPECT_GT(wr, netsim::kIpcWrBase);
  });
  eng.run();
}

TEST(IpcChannel, RdmaWritePlacesBytesBeforeImmediate) {
  sim::Engine eng;
  gpu::MemoryRegistry reg;
  netsim::IpcChannel ch(eng, reg, netsim::IpcCostModel{});
  ch.add_rank(0);
  ch.add_rank(1);
  std::vector<std::byte> src(4096);
  std::vector<std::byte> dst(4096, std::byte{0});
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::byte>(i * 7 & 0xFF);
  }
  eng.spawn("writer", [&] {
    ch.port(0).post_rdma_write(1, src.data(), dst.data(), src.size(),
                               make_msg(9, 1234));
  });
  eng.spawn("target", [&] {
    sim::Notifier n(eng);
    ch.port(1).set_wakeup(&n);
    netsim::Completion c;
    while (!ch.port(1).poll(c)) n.wait();
    ASSERT_EQ(c.type, netsim::CqType::kRecv);
    EXPECT_EQ(c.msg.kind, 9);
    EXPECT_EQ(std::memcmp(src.data(), dst.data(), src.size()), 0);
  });
  eng.run();
  EXPECT_EQ(ch.port(0).rdma_writes(), 1u);
  EXPECT_EQ(ch.port(0).bytes_sent(), src.size());
}

TEST(IpcChannel, CopyBandwidthFollowsEndpointResidency) {
  sim::Engine eng;
  gpu::MemoryRegistry reg;
  netsim::IpcCostModel cost;
  cost.host_bw = 10.0;
  cost.pcie_bw = 5.0;
  cost.peer_d2d_bw = 6.5;
  cost.shm_host_bw = 4.0;
  cost.cma_host_bw = 11.5;
  cost.shm_cma_threshold = 1024;
  netsim::IpcChannel ch(eng, reg, cost);
  // Two fake device allocations registered directly with the registry.
  alignas(64) static std::byte dev_a[256];
  alignas(64) static std::byte dev_b[256];
  alignas(64) static std::byte host[256];
  reg.register_range(dev_a, sizeof(dev_a), /*device_id=*/0);
  reg.register_range(dev_b, sizeof(dev_b), /*device_id=*/1);
  EXPECT_DOUBLE_EQ(ch.copy_bw(dev_a, dev_b, 256), 6.5);  // peer D2D
  EXPECT_DOUBLE_EQ(ch.copy_bw(dev_a, host, 256), 5.0);   // one device end
  EXPECT_DOUBLE_EQ(ch.copy_bw(host, dev_b, 256), 5.0);
  // Host<->host splits by size: double-buffered shm below the threshold,
  // single-copy CMA at or above it.
  EXPECT_DOUBLE_EQ(ch.copy_bw(host, host, 256), 4.0);
  EXPECT_DOUBLE_EQ(ch.copy_bw(host, host, 1024), 11.5);
  EXPECT_DOUBLE_EQ(ch.copy_bw(host, host, 1 << 20), 11.5);
}

TEST(IpcChannel, PeerCopyIsFasterThanPcieStagedCopy) {
  // The whole point of the fast path: a D2D peer copy of N bytes must beat
  // the same N bytes staged D2H + H2D over PCIe.
  netsim::IpcCostModel cost = netsim::IpcCostModel::from_gpu(
      mv2gnc::gpu::GpuCostModel::tesla_c2050());
  const std::size_t n = 1 << 20;
  const sim::SimTime peer = cost.copy_time(n, cost.peer_d2d_bw);
  const sim::SimTime staged = 2 * cost.copy_time(n, cost.pcie_bw);
  EXPECT_LT(peer, staged);
}

TEST(IpcChannel, DeliveryReceiptEchoesHeader) {
  sim::Engine eng;
  gpu::MemoryRegistry reg;
  netsim::IpcChannel ch(eng, reg, netsim::IpcCostModel{});
  ch.add_rank(0);
  ch.add_rank(1);
  constexpr int kProbe = 40;
  constexpr int kProbeAck = 41;
  ch.enable_delivery_receipt(kProbe, kProbeAck, /*echo_header=*/2);
  bool acked = false;
  eng.spawn("sender", [&] {
    auto m = make_msg(kProbe);
    m.header[2] = 777;
    ch.port(0).post_send(1, std::move(m));
    sim::Notifier n(eng);
    ch.port(0).set_wakeup(&n);
    netsim::Completion c;
    for (;;) {
      if (!ch.port(0).poll(c)) {
        n.wait();
        continue;
      }
      if (c.type == netsim::CqType::kRecv && c.msg.kind == kProbeAck) {
        EXPECT_EQ(c.msg.header[0], 777u);
        acked = true;
        return;
      }
    }
  });
  eng.spawn("receiver", [&] {
    sim::Notifier n(eng);
    ch.port(1).set_wakeup(&n);
    netsim::Completion c;
    while (!ch.port(1).poll(c)) n.wait();
    EXPECT_EQ(c.msg.kind, kProbe);
  });
  eng.run();
  EXPECT_TRUE(acked);
}

TEST(IpcChannel, ReceiptConfigValidated) {
  sim::Engine eng;
  gpu::MemoryRegistry reg;
  netsim::IpcChannel ch(eng, reg, netsim::IpcCostModel{});
  EXPECT_THROW(ch.enable_delivery_receipt(1, 2, 6), std::invalid_argument);
}

TEST(IpcChannel, UnknownRankRejected) {
  sim::Engine eng;
  gpu::MemoryRegistry reg;
  netsim::IpcChannel ch(eng, reg, netsim::IpcCostModel{});
  ch.add_rank(3);
  EXPECT_TRUE(ch.has_rank(3));
  EXPECT_FALSE(ch.has_rank(4));
  EXPECT_THROW(ch.port(4), std::out_of_range);
}

// ---------------------------------------------------------------------------
// Fault injection at the channel (mirrors the fabric's FaultModel tests).
// ---------------------------------------------------------------------------

TEST(IpcFaults, CertainDropLosesSendButSenderStillCompletes) {
  sim::Engine eng;
  eng.seed_rng(42);
  gpu::MemoryRegistry reg;
  netsim::IpcChannel ch(eng, reg, netsim::IpcCostModel{});
  ch.add_rank(0);
  ch.add_rank(1);
  netsim::FaultSpec spec;
  spec.drop_send = 1.0;
  ch.faults().set_default(spec);
  int send_completes = 0;
  eng.spawn("sender", [&] {
    sim::Notifier n(eng);
    ch.port(0).set_wakeup(&n);
    for (int i = 0; i < 5; ++i) ch.port(0).post_send(1, make_msg(1, 7));
    netsim::Completion c;
    while (send_completes < 5) {
      while (!ch.port(0).poll(c)) n.wait();
      EXPECT_EQ(c.type, netsim::CqType::kSendComplete);
      ++send_completes;
    }
  });
  eng.run();
  EXPECT_EQ(send_completes, 5);
  netsim::Completion c;
  EXPECT_FALSE(ch.port(1).poll(c));  // nothing ever arrived
  EXPECT_EQ(ch.port(0).fault_counters().sends_dropped, 5u);
}

TEST(IpcFaults, CertainCopyFailureYieldsErrorCqeAndNoData) {
  sim::Engine eng;
  eng.seed_rng(42);
  gpu::MemoryRegistry reg;
  netsim::IpcChannel ch(eng, reg, netsim::IpcCostModel{});
  ch.add_rank(0);
  ch.add_rank(1);
  netsim::FaultSpec spec;
  spec.fail_write = 1.0;
  ch.faults().set_default(spec);
  std::vector<std::byte> src(256, std::byte{0xAB});
  std::vector<std::byte> dst(256, std::byte{0x00});
  bool got_error = false;
  eng.spawn("writer", [&] {
    sim::Notifier n(eng);
    ch.port(0).set_wakeup(&n);
    const std::uint64_t wr = ch.port(0).post_rdma_write(
        1, src.data(), dst.data(), src.size(), make_msg(4));
    netsim::Completion c;
    while (!ch.port(0).poll(c)) n.wait();
    EXPECT_EQ(c.type, netsim::CqType::kError);
    EXPECT_EQ(c.wr_id, wr);
    got_error = true;
  });
  eng.run();
  EXPECT_TRUE(got_error);
  EXPECT_EQ(dst[0], std::byte{0x00});  // no bytes landed
  netsim::Completion c;
  EXPECT_FALSE(ch.port(1).poll(c));    // no immediate delivered
  EXPECT_EQ(ch.port(0).fault_counters().writes_failed, 1u);
}

TEST(IpcFaults, ImmediateDropStillLandsData) {
  sim::Engine eng;
  eng.seed_rng(42);
  gpu::MemoryRegistry reg;
  netsim::IpcChannel ch(eng, reg, netsim::IpcCostModel{});
  ch.add_rank(0);
  ch.add_rank(1);
  netsim::FaultSpec spec;
  spec.drop_imm = 1.0;
  ch.faults().set_default(spec);
  std::vector<std::byte> src(64, std::byte{0x5C});
  std::vector<std::byte> dst(64, std::byte{0x00});
  eng.spawn("writer", [&] {
    sim::Notifier n(eng);
    ch.port(0).set_wakeup(&n);
    ch.port(0).post_rdma_write(1, src.data(), dst.data(), src.size(),
                               make_msg(4));
    netsim::Completion c;
    while (!ch.port(0).poll(c)) n.wait();
    EXPECT_EQ(c.type, netsim::CqType::kRdmaComplete);
  });
  eng.run();
  EXPECT_EQ(dst[0], std::byte{0x5C});  // copy happened
  netsim::Completion c;
  EXPECT_FALSE(ch.port(1).poll(c));    // fin never told
  EXPECT_EQ(ch.port(0).fault_counters().imms_dropped, 1u);
}

TEST(IpcFaults, JitterDelaysDeliveryWithinBound) {
  auto arrival_time = [](sim::SimTime jitter, std::uint64_t seed) {
    sim::Engine eng;
    eng.seed_rng(seed);
    gpu::MemoryRegistry reg;
    netsim::IpcChannel ch(eng, reg, netsim::IpcCostModel{});
    ch.add_rank(0);
    ch.add_rank(1);
    if (jitter > 0) {
      netsim::FaultSpec spec;
      spec.jitter_ns = jitter;
      ch.faults().set_default(spec);
    }
    sim::SimTime arrived = -1;
    eng.spawn("sender", [&] { ch.port(0).post_send(1, make_msg(1)); });
    eng.spawn("receiver", [&] {
      sim::Notifier n(eng);
      ch.port(1).set_wakeup(&n);
      netsim::Completion c;
      while (!ch.port(1).poll(c)) n.wait();
      arrived = eng.now();
    });
    eng.run();
    return arrived;
  };
  const sim::SimTime clean = arrival_time(0, 9);
  const sim::SimTime jittered = arrival_time(200'000, 9);
  ASSERT_GE(clean, 0);
  ASSERT_GE(jittered, 0);
  EXPECT_GE(jittered, clean);
  EXPECT_LE(jittered, clean + 200'000);
}

TEST(IpcFaults, DeliveryReceiptsRollTheirOwnDice) {
  // A drop rule on the receipt kind loses receipts without touching the
  // probe they acknowledge: the probe still arrives, no receipt ever does,
  // and the drop is charged to the receipt's sender (the receiving port).
  sim::Engine eng;
  eng.seed_rng(5);
  gpu::MemoryRegistry reg;
  netsim::IpcChannel ch(eng, reg, netsim::IpcCostModel{});
  ch.add_rank(0);
  ch.add_rank(1);
  constexpr int kProbe = 40;
  constexpr int kProbeAck = 41;
  ch.enable_delivery_receipt(kProbe, kProbeAck, /*echo_header=*/2);
  netsim::FaultSpec black_hole;
  black_hole.drop_send = 1.0;
  ch.faults().set_kind(kProbeAck, black_hole);
  bool probe_arrived = false;
  eng.spawn("sender", [&] { ch.port(0).post_send(1, make_msg(kProbe)); });
  eng.spawn("receiver", [&] {
    sim::Notifier n(eng);
    ch.port(1).set_wakeup(&n);
    netsim::Completion c;
    while (!ch.port(1).poll(c)) n.wait();
    EXPECT_EQ(c.msg.kind, kProbe);
    probe_arrived = true;
  });
  eng.run();
  EXPECT_TRUE(probe_arrived);
  // The sender's CQ holds only its own kSendComplete; the receipt never
  // arrived.
  netsim::Completion c;
  bool receipt_arrived = false;
  while (ch.port(0).poll(c)) {
    if (c.type == netsim::CqType::kRecv) receipt_arrived = true;
  }
  EXPECT_FALSE(receipt_arrived);
  EXPECT_EQ(ch.port(1).fault_counters().sends_dropped, 1u);
  EXPECT_EQ(ch.port(0).fault_counters().sends_dropped, 0u);
}

TEST(IpcFaults, PartialDropRateIsSeededDeterministic) {
  auto deliveries = [](std::uint64_t seed) {
    sim::Engine eng;
    eng.seed_rng(seed);
    gpu::MemoryRegistry reg;
    netsim::IpcChannel ch(eng, reg, netsim::IpcCostModel{});
    ch.add_rank(0);
    ch.add_rank(1);
    netsim::FaultSpec spec;
    spec.drop_send = 0.5;
    ch.faults().set_default(spec);
    eng.spawn("sender", [&] {
      for (int i = 0; i < 100; ++i) {
        ch.port(0).post_send(1, make_msg(1, std::uint64_t(i)));
      }
    });
    eng.run();
    std::vector<std::uint64_t> got;
    netsim::Completion c;
    while (ch.port(1).poll(c)) {
      if (c.type == netsim::CqType::kRecv) got.push_back(c.msg.header[0]);
    }
    return got;
  };
  const auto a = deliveries(1234);
  const auto b = deliveries(1234);
  const auto c = deliveries(99);
  EXPECT_EQ(a, b);            // same seed, same losses
  EXPECT_NE(a.size(), 100u);  // some were dropped
  EXPECT_FALSE(a.empty());    // some got through
  EXPECT_NE(a, c);            // different seed, different pattern
}

TEST(IpcChannel, RdmaReadPullsBytes) {
  sim::Engine eng;
  gpu::MemoryRegistry reg;
  netsim::IpcChannel ch(eng, reg, netsim::IpcCostModel{});
  ch.add_rank(0);
  ch.add_rank(1);
  std::vector<std::byte> remote(512, std::byte{0x5A});
  std::vector<std::byte> local(512, std::byte{0});
  eng.spawn("reader", [&] {
    sim::Notifier n(eng);
    ch.port(0).set_wakeup(&n);
    const std::uint64_t wr =
        ch.port(0).post_rdma_read(1, local.data(), remote.data(), local.size());
    netsim::Completion c;
    for (;;) {
      if (!ch.port(0).poll(c)) {
        n.wait();
        continue;
      }
      if (c.type == netsim::CqType::kRdmaReadComplete) {
        EXPECT_EQ(c.wr_id, wr);
        EXPECT_EQ(std::memcmp(local.data(), remote.data(), local.size()), 0);
        return;
      }
    }
  });
  eng.run();
}
