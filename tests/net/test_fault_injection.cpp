// FaultModel semantics at the fabric layer: seeded-deterministic drops,
// synthetic write errors, immediate loss, delivery jitter, rule precedence,
// and per-endpoint fault accounting.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "net/fabric.hpp"
#include "net/fault.hpp"

namespace netsim = mv2gnc::netsim;
namespace sim = mv2gnc::sim;

namespace {

netsim::WireMessage make_msg(int kind, std::uint64_t h0 = 0) {
  netsim::WireMessage m;
  m.kind = kind;
  m.header[0] = h0;
  return m;
}

// Drain an endpoint's CQ, keeping only message arrivals (kRecv) — local
// kSendComplete entries are not interesting to these tests.
std::vector<netsim::Completion> drain(netsim::Endpoint& ep) {
  std::vector<netsim::Completion> out;
  netsim::Completion c;
  while (ep.poll(c)) {
    if (c.type == netsim::CqType::kRecv) out.push_back(c);
  }
  return out;
}

}  // namespace

TEST(FaultModel, RulePrecedencePairOverKindOverDefault) {
  netsim::FaultModel fm;
  EXPECT_FALSE(fm.enabled());
  netsim::FaultSpec dflt;
  dflt.drop_send = 0.1;
  netsim::FaultSpec by_kind;
  by_kind.drop_send = 0.2;
  netsim::FaultSpec by_pair;
  by_pair.drop_send = 0.3;
  fm.set_default(dflt);
  fm.set_kind(7, by_kind);
  fm.set_pair(0, 1, by_pair);
  EXPECT_TRUE(fm.enabled());
  EXPECT_DOUBLE_EQ(fm.resolve(0, 1, 7).drop_send, 0.3);   // pair wins
  EXPECT_DOUBLE_EQ(fm.resolve(1, 0, 7).drop_send, 0.2);   // kind next
  EXPECT_DOUBLE_EQ(fm.resolve(1, 0, 9).drop_send, 0.1);   // default last
  fm.clear();
  EXPECT_FALSE(fm.enabled());
  EXPECT_DOUBLE_EQ(fm.resolve(0, 1, 7).drop_send, 0.0);
}

TEST(FaultModel, PairKindRuleOutranksPairAndKind) {
  // Full precedence tier, most specific first: pair+kind beats pair beats
  // kind beats default — and removal of the top rule falls through to the
  // next one, not to zero.
  netsim::FaultModel fm;
  netsim::FaultSpec dflt, by_kind, by_pair, by_pair_kind;
  dflt.drop_send = 0.1;
  by_kind.drop_send = 0.2;
  by_pair.drop_send = 0.3;
  by_pair_kind.drop_send = 0.4;
  fm.set_default(dflt);
  fm.set_kind(7, by_kind);
  fm.set_pair(0, 1, by_pair);
  fm.set_pair_kind(0, 1, 7, by_pair_kind);
  EXPECT_TRUE(fm.enabled());
  EXPECT_DOUBLE_EQ(fm.resolve(0, 1, 7).drop_send, 0.4);  // pair+kind wins
  EXPECT_DOUBLE_EQ(fm.resolve(0, 1, 9).drop_send, 0.3);  // other kind: pair
  EXPECT_DOUBLE_EQ(fm.resolve(1, 0, 7).drop_send, 0.2);  // other dir: kind
  EXPECT_DOUBLE_EQ(fm.resolve(1, 0, 9).drop_send, 0.1);  // default last
  // A pair+kind rule alone keeps the model enabled.
  fm.clear();
  fm.set_pair_kind(2, 3, 5, by_pair_kind);
  EXPECT_TRUE(fm.enabled());
  EXPECT_DOUBLE_EQ(fm.resolve(2, 3, 5).drop_send, 0.4);
  EXPECT_DOUBLE_EQ(fm.resolve(2, 3, 6).drop_send, 0.0);
  fm.clear();
  EXPECT_FALSE(fm.enabled());
}

TEST(FaultInjection, PairKindRuleDropsOnlyThatKindOnThatPath) {
  sim::Engine eng;
  eng.seed_rng(11);
  netsim::Fabric fab(eng, 3, netsim::NetCostModel::qdr_ib());
  netsim::FaultSpec spec;
  spec.drop_send = 1.0;
  fab.faults().set_pair_kind(0, 1, /*kind=*/7, spec);
  eng.spawn("sender", [&] {
    fab.endpoint(0).post_send(1, make_msg(7));  // dropped: pair+kind match
    fab.endpoint(0).post_send(1, make_msg(8));  // other kind: delivered
    fab.endpoint(0).post_send(2, make_msg(7));  // other dst: delivered
  });
  eng.run();
  EXPECT_EQ(drain(fab.endpoint(1)).size(), 1u);
  EXPECT_EQ(drain(fab.endpoint(2)).size(), 1u);
  EXPECT_EQ(fab.endpoint(0).fault_counters().sends_dropped, 1u);
}

TEST(FaultInjection, CertainDropLosesSendButSenderStillCompletes) {
  sim::Engine eng;
  eng.seed_rng(42);
  netsim::Fabric fab(eng, 2, netsim::NetCostModel::qdr_ib());
  netsim::FaultSpec spec;
  spec.drop_send = 1.0;
  fab.faults().set_default(spec);
  int send_completes = 0;
  eng.spawn("sender", [&] {
    sim::Notifier n(eng);
    fab.endpoint(0).set_wakeup(&n);
    for (int i = 0; i < 5; ++i) fab.endpoint(0).post_send(1, make_msg(1, 7));
    netsim::Completion c;
    while (send_completes < 5) {
      while (!fab.endpoint(0).poll(c)) n.wait();
      EXPECT_EQ(c.type, netsim::CqType::kSendComplete);
      ++send_completes;
    }
  });
  eng.run();
  EXPECT_EQ(send_completes, 5);
  EXPECT_TRUE(drain(fab.endpoint(1)).empty());  // nothing ever arrived
  EXPECT_EQ(fab.endpoint(0).fault_counters().sends_dropped, 5u);
}

TEST(FaultInjection, CertainWriteFailureYieldsErrorCqeAndNoData) {
  sim::Engine eng;
  eng.seed_rng(42);
  netsim::Fabric fab(eng, 2, netsim::NetCostModel::qdr_ib());
  netsim::FaultSpec spec;
  spec.fail_write = 1.0;
  fab.faults().set_default(spec);
  std::vector<std::byte> src(256, std::byte{0xAB});
  std::vector<std::byte> dst(256, std::byte{0x00});
  std::uint64_t wr = 0;
  bool got_error = false;
  eng.spawn("sender", [&] {
    sim::Notifier n(eng);
    fab.endpoint(0).set_wakeup(&n);
    wr = fab.endpoint(0).post_rdma_write(1, src.data(), dst.data(),
                                         src.size(), make_msg(4));
    netsim::Completion c;
    while (!fab.endpoint(0).poll(c)) n.wait();
    EXPECT_EQ(c.type, netsim::CqType::kError);
    EXPECT_EQ(c.wr_id, wr);
    got_error = true;
  });
  eng.run();
  EXPECT_TRUE(got_error);
  // No bytes landed and no immediate was delivered.
  EXPECT_EQ(dst[0], std::byte{0x00});
  EXPECT_TRUE(drain(fab.endpoint(1)).empty());
  EXPECT_EQ(fab.endpoint(0).fault_counters().writes_failed, 1u);
}

TEST(FaultInjection, ImmediateDropStillLandsData) {
  sim::Engine eng;
  eng.seed_rng(42);
  netsim::Fabric fab(eng, 2, netsim::NetCostModel::qdr_ib());
  netsim::FaultSpec spec;
  spec.drop_imm = 1.0;
  fab.faults().set_default(spec);
  std::vector<std::byte> src(64, std::byte{0x5C});
  std::vector<std::byte> dst(64, std::byte{0x00});
  eng.spawn("sender", [&] {
    sim::Notifier n(eng);
    fab.endpoint(0).set_wakeup(&n);
    fab.endpoint(0).post_rdma_write(1, src.data(), dst.data(), src.size(),
                                    make_msg(4));
    netsim::Completion c;
    while (!fab.endpoint(0).poll(c)) n.wait();
    EXPECT_EQ(c.type, netsim::CqType::kRdmaComplete);
  });
  eng.run();
  EXPECT_EQ(dst[0], std::byte{0x5C});                   // data landed
  EXPECT_TRUE(drain(fab.endpoint(1)).empty());          // fin never told
  EXPECT_EQ(fab.endpoint(0).fault_counters().imms_dropped, 1u);
}

TEST(FaultInjection, JitterDelaysDeliveryWithinBound) {
  auto arrival_time = [](sim::SimTime jitter, std::uint64_t seed) {
    sim::Engine eng;
    eng.seed_rng(seed);
    netsim::Fabric fab(eng, 2, netsim::NetCostModel::qdr_ib());
    if (jitter > 0) {
      netsim::FaultSpec spec;
      spec.jitter_ns = jitter;
      fab.faults().set_default(spec);
    }
    sim::SimTime arrived = -1;
    eng.spawn("sender",
              [&] { fab.endpoint(0).post_send(1, make_msg(1)); });
    eng.spawn("receiver", [&] {
      sim::Notifier n(eng);
      fab.endpoint(1).set_wakeup(&n);
      netsim::Completion c;
      while (!fab.endpoint(1).poll(c)) n.wait();
      arrived = eng.now();
    });
    eng.run();
    return arrived;
  };
  const sim::SimTime clean = arrival_time(0, 9);
  const sim::SimTime jittered = arrival_time(1'000'000, 9);
  ASSERT_GE(clean, 0);
  ASSERT_GE(jittered, 0);
  EXPECT_GE(jittered, clean);
  EXPECT_LE(jittered, clean + 1'000'000);
}

TEST(FaultInjection, PartialDropRateIsSeededDeterministic) {
  auto deliveries = [](std::uint64_t seed) {
    sim::Engine eng;
    eng.seed_rng(seed);
    netsim::Fabric fab(eng, 2, netsim::NetCostModel::qdr_ib());
    netsim::FaultSpec spec;
    spec.drop_send = 0.5;
    fab.faults().set_default(spec);
    eng.spawn("sender", [&] {
      for (int i = 0; i < 100; ++i) {
        fab.endpoint(0).post_send(1, make_msg(1, std::uint64_t(i)));
      }
    });
    eng.run();
    std::vector<std::uint64_t> got;
    for (const auto& c : drain(fab.endpoint(1))) got.push_back(c.msg.header[0]);
    return got;
  };
  const auto a = deliveries(1234);
  const auto b = deliveries(1234);
  const auto c = deliveries(99);
  EXPECT_EQ(a, b);                       // same seed, same losses
  EXPECT_NE(a.size(), 100u);             // some were dropped
  EXPECT_FALSE(a.empty());               // some got through
  EXPECT_NE(a, c);                       // different seed, different pattern
}

TEST(FaultInjection, PairRuleOnlyAffectsThatDirection) {
  sim::Engine eng;
  eng.seed_rng(7);
  netsim::Fabric fab(eng, 3, netsim::NetCostModel::qdr_ib());
  netsim::FaultSpec spec;
  spec.drop_send = 1.0;
  fab.faults().set_pair(0, 1, spec);
  eng.spawn("sender", [&] {
    fab.endpoint(0).post_send(1, make_msg(1));  // dropped
    fab.endpoint(0).post_send(2, make_msg(1));  // delivered
    fab.endpoint(1).post_send(0, make_msg(1));  // reverse dir: delivered
  });
  eng.run();
  EXPECT_TRUE(drain(fab.endpoint(1)).empty());
  EXPECT_EQ(drain(fab.endpoint(2)).size(), 1u);
  EXPECT_EQ(drain(fab.endpoint(0)).size(), 1u);
  EXPECT_EQ(fab.endpoint(0).fault_counters().sends_dropped, 1u);
  EXPECT_EQ(fab.endpoint(1).fault_counters().sends_dropped, 0u);
}
