// Fat-tree and dragonfly topology semantics: deterministic routing
// (D-mod-k, flow hashing, least-backlogged adaptive), shared-link queuing,
// cut-through equivalence with the crossbar on uncontended paths, ECN
// backlog marking, and the per-link stats surfaced through
// Cluster::print_stats.
#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "mpi/cluster.hpp"
#include "net/fabric.hpp"

namespace mpisim = mv2gnc::mpisim;
namespace netsim = mv2gnc::netsim;
namespace sim = mv2gnc::sim;

namespace {

netsim::WireMessage make_msg(int kind, std::vector<std::byte> payload = {}) {
  netsim::WireMessage m;
  m.kind = kind;
  m.payload = std::move(payload);
  return m;
}

// Runs one sender per (src, dst) pair, all posting simultaneously, and
// records the virtual arrival time of each dst's first kRecv.
std::vector<sim::SimTime> arrival_times(
    netsim::Fabric& fab, sim::Engine& eng,
    const std::vector<std::pair<int, int>>& flows, std::size_t bytes) {
  std::vector<sim::SimTime> arrivals(flows.size(), 0);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto [src, dst] = flows[i];
    eng.spawn("s" + std::to_string(src), [&fab, src, dst, bytes] {
      fab.endpoint(src).post_send(dst,
                                  make_msg(1, std::vector<std::byte>(bytes)));
    });
    eng.spawn("r" + std::to_string(dst), [&fab, &eng, &arrivals, i, dst] {
      sim::Notifier n(eng);
      fab.endpoint(dst).set_wakeup(&n);
      netsim::Completion c;
      for (;;) {
        if (fab.endpoint(dst).poll(c)) {
          if (c.type == netsim::CqType::kRecv) break;
        } else {
          n.wait();
        }
      }
      arrivals[i] = eng.now();
      fab.endpoint(dst).set_wakeup(nullptr);
    });
  }
  eng.run();
  return arrivals;
}

}  // namespace

TEST(FabricTopology, UplinksFollowOversubscription) {
  EXPECT_EQ(netsim::FabricTopology::fat_tree(8, 1.0).uplinks(), 8);
  EXPECT_EQ(netsim::FabricTopology::fat_tree(8, 2.0).uplinks(), 4);
  EXPECT_EQ(netsim::FabricTopology::fat_tree(8, 4.0).uplinks(), 2);
  // Floors at one uplink no matter how harsh the ratio.
  EXPECT_EQ(netsim::FabricTopology::fat_tree(2, 16.0).uplinks(), 1);
}

TEST(FabricTopology, ValidateRejectsBadFatTrees) {
  EXPECT_NO_THROW(netsim::FabricTopology::crossbar().validate());
  EXPECT_NO_THROW(netsim::FabricTopology::fat_tree(8, 2.0).validate());
  EXPECT_THROW(netsim::FabricTopology::fat_tree(0, 2.0).validate(),
               std::invalid_argument);
  EXPECT_THROW(netsim::FabricTopology::fat_tree(8, 0.0).validate(),
               std::invalid_argument);
  EXPECT_THROW(netsim::FabricTopology::fat_tree(8, -1.0).validate(),
               std::invalid_argument);
}

TEST(FabricTopology, CrossbarHasNoSharedLinks) {
  sim::Engine eng;
  netsim::Fabric fab(eng, 4, netsim::NetCostModel::qdr_ib());
  EXPECT_EQ(fab.topology().kind, netsim::FabricTopology::Kind::kCrossbar);
  EXPECT_TRUE(fab.link_stats().empty());
  // traverse is a no-op: no delay, no state.
  EXPECT_EQ(fab.traverse(0, 3, 1 << 20), 0);
  EXPECT_TRUE(fab.link_stats().empty());
}

TEST(FabricTopology, SameLeafTrafficNeverTouchesSharedLinks) {
  sim::Engine eng;
  netsim::Fabric fab(eng, 8, netsim::NetCostModel::qdr_ib(),
                     netsim::FabricTopology::fat_tree(4, 2.0));
  EXPECT_EQ(fab.traverse(0, 3, 1 << 20), 0);  // both on leaf 0
  for (const netsim::LinkStats& l : fab.link_stats()) EXPECT_EQ(l.ops, 0u);
}

TEST(FabricTopology, SingleFlowCrossLeafMatchesCrossbarTiming) {
  // Cut-through accounting: an uncontended fat-tree path adds zero delay,
  // so a lone cross-leaf message lands at exactly the crossbar instant.
  const std::size_t kBytes = 64 * 1024;
  sim::SimTime crossbar_at = 0;
  {
    sim::Engine eng;
    netsim::Fabric fab(eng, 16, netsim::NetCostModel::qdr_ib());
    crossbar_at = arrival_times(fab, eng, {{0, 9}}, kBytes)[0];
  }
  sim::SimTime fat_at = 0;
  {
    sim::Engine eng;
    netsim::Fabric fab(eng, 16, netsim::NetCostModel::qdr_ib(),
                       netsim::FabricTopology::fat_tree(8, 2.0));
    fat_at = arrival_times(fab, eng, {{0, 9}}, kBytes)[0];
    // The flow did cross a leaf boundary: both links saw it.
    std::uint64_t ops = 0;
    for (const netsim::LinkStats& l : fab.link_stats()) ops += l.ops;
    EXPECT_EQ(ops, 2u);  // one up-link crossing + one down-link crossing
  }
  EXPECT_GT(crossbar_at, 0);
  EXPECT_EQ(fat_at, crossbar_at);
}

TEST(FabricTopology, TwoFlowsSharingAnUplinkQueueBehindEachOther) {
  // leaf_ports=2, 2:1 oversubscription => exactly one uplink per leaf.
  // Flows 0->2 and 1->3 both cross from leaf 0 to leaf 1 through it; the
  // later drain queues for exactly one wire time of the earlier one.
  const std::size_t kBytes = 64 * 1024;
  const netsim::NetCostModel cost = netsim::NetCostModel::qdr_ib();
  const std::vector<std::pair<int, int>> flows = {{0, 2}, {1, 3}};
  std::vector<sim::SimTime> xbar;
  {
    sim::Engine eng;
    netsim::Fabric fab(eng, 4, cost);
    xbar = arrival_times(fab, eng, flows, kBytes);
  }
  std::vector<sim::SimTime> fat;
  sim::SimTime wait_total = 0;
  std::uint64_t contended = 0;
  {
    sim::Engine eng;
    netsim::Fabric fab(eng, 4, cost,
                       netsim::FabricTopology::fat_tree(2, 2.0));
    fat = arrival_times(fab, eng, flows, kBytes);
    for (const netsim::LinkStats& l : fab.link_stats()) {
      wait_total += l.wait_total;
      contended += l.contended_ops;
    }
  }
  // Both flows drain their (independent) NICs at the same instant on the
  // crossbar and arrive together; on the fat tree the first is untouched
  // and the second waits one serialization of the first on the uplink.
  EXPECT_EQ(xbar[0], xbar[1]);
  EXPECT_EQ(fat[0], xbar[0]);
  EXPECT_EQ(fat[1], xbar[1] + cost.wire_time(kBytes + 64));
  EXPECT_EQ(contended, 1u);
  EXPECT_EQ(wait_total, cost.wire_time(kBytes + 64));
}

TEST(FabricTopology, IncastFunnelsThroughOneUplinkDeterministically) {
  // Every rank of leaf 1 fires at node 0: D-mod-k sends all of it through
  // spine 0 — the classic hot-spot. The queuing accumulates on leaf 1's
  // up-link; by the time flows reach the down-link they are already spaced
  // one serialization apart, so it stays busy but never backs up.
  const std::size_t kBytes = 32 * 1024;
  const netsim::NetCostModel cost = netsim::NetCostModel::qdr_ib();
  const std::vector<std::pair<int, int>> flows = {
      {4, 0}, {5, 0}, {6, 0}, {7, 0}};
  auto run_once = [&](std::vector<netsim::LinkStats>& stats_out) {
    sim::Engine eng;
    netsim::Fabric fab(eng, 8, cost,
                       netsim::FabricTopology::fat_tree(4, 2.0));
    std::vector<sim::SimTime> arrivals(1, 0);
    for (const auto& [src, dst] : flows) {
      eng.spawn("s" + std::to_string(src), [&fab, src, dst, kBytes] {
        fab.endpoint(src).post_send(
            dst, make_msg(1, std::vector<std::byte>(kBytes)));
      });
    }
    eng.spawn("sink", [&] {
      sim::Notifier n(eng);
      fab.endpoint(0).set_wakeup(&n);
      netsim::Completion c;
      int got = 0;
      while (got < 4) {
        if (fab.endpoint(0).poll(c)) {
          if (c.type == netsim::CqType::kRecv) ++got;
        } else {
          n.wait();
        }
      }
      arrivals[0] = eng.now();
    });
    eng.run();
    stats_out = fab.link_stats();
    return arrivals[0];
  };
  std::vector<netsim::LinkStats> s1;
  std::vector<netsim::LinkStats> s2;
  const sim::SimTime t1 = run_once(s1);
  const sim::SimTime t2 = run_once(s2);
  EXPECT_EQ(t1, t2);  // bit-reproducible, link state included
  ASSERT_EQ(s1.size(), s2.size());
  const sim::SimTime wire = cost.wire_time(kBytes + 64);
  bool saw_hot_uplink = false;
  bool saw_spaced_downlink = false;
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].ops, s2[i].ops);
    EXPECT_EQ(s1[i].bytes, s2[i].bytes);
    EXPECT_EQ(s1[i].wait_total, s2[i].wait_total);
    if (s1[i].up && s1[i].leaf == 1 && s1[i].index == 0) {
      saw_hot_uplink = true;
      EXPECT_EQ(s1[i].ops, 4u);
      EXPECT_EQ(s1[i].busy_total, 4 * wire);
      // Three of the four crossings queued; the deepest behind all three
      // predecessors.
      EXPECT_EQ(s1[i].contended_ops, 3u);
      EXPECT_EQ(s1[i].wait_total, 6 * wire);
      EXPECT_EQ(s1[i].peak_backlog, 3 * wire);
    }
    if (!s1[i].up && s1[i].leaf == 0 && s1[i].index == 0) {
      saw_spaced_downlink = true;
      EXPECT_EQ(s1[i].ops, 4u);
      EXPECT_EQ(s1[i].busy_total, 4 * wire);
      EXPECT_EQ(s1[i].contended_ops, 0u);  // up-link already spaced them
    }
  }
  EXPECT_TRUE(saw_hot_uplink);
  EXPECT_TRUE(saw_spaced_downlink);
}

TEST(FabricTopology, ClusterPrintStatsShowsFabricLinksOnlyForFatTree) {
  auto run_cluster = [](bool fat_tree) {
    mpisim::ClusterConfig cfg;
    cfg.ranks = 16;
    if (fat_tree) cfg.topology = netsim::FabricTopology::fat_tree(8, 2.0);
    mpisim::Cluster cluster(cfg);
    cluster.run([](mpisim::Context& ctx) {
      // Every rank sends one rendezvous-sized message across the leaf
      // boundary (rank XOR 8 lives on the other leaf of an 8-port tree).
      auto dt = mpisim::Datatype::byte();
      dt.commit();
      std::vector<std::byte> tx(32 * 1024, std::byte{0x11});
      std::vector<std::byte> rx(32 * 1024);
      const int peer = ctx.rank ^ 8;
      ctx.comm.sendrecv(tx.data(), static_cast<int>(tx.size()), dt, peer, 3,
                        rx.data(), static_cast<int>(rx.size()), dt, peer, 3);
    });
    std::ostringstream os;
    cluster.print_stats(os);
    return os.str();
  };
  const std::string fat = run_cluster(true);
  EXPECT_NE(fat.find("fabric links"), std::string::npos);
  EXPECT_NE(fat.find("oversubscription 2.0:1"), std::string::npos);
  EXPECT_NE(fat.find("up"), std::string::npos);
  const std::string xbar = run_cluster(false);
  EXPECT_EQ(xbar.find("fabric links"), std::string::npos);
}

namespace {

// Total virtual time for `flows` incast senders to land at their dst under
// one routing policy, plus the resulting link snapshot.
sim::SimTime run_routed(const netsim::FabricTopology& topo, int nodes,
                        const std::vector<std::pair<int, int>>& flows,
                        std::size_t bytes,
                        std::vector<netsim::LinkStats>* stats_out = nullptr,
                        sim::SimTime ecn_ns = 0) {
  sim::Engine eng;
  netsim::Fabric fab(eng, nodes, netsim::NetCostModel::qdr_ib(), topo);
  if (ecn_ns > 0) fab.set_ecn_threshold(ecn_ns);
  // Unlike arrival_times above, incast flows share a destination, so each
  // distinct dst gets ONE receiver that drains all of its messages (an
  // endpoint holds a single wakeup notifier — per-flow receivers on the
  // same endpoint would overwrite each other's and deadlock).
  std::map<int, int> expected;
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto [src, dst] = flows[i];
    ++expected[dst];
    // Distinct flow labels so hashed routing can spread them.
    const std::uint64_t flow = i + 1;
    eng.spawn("s" + std::to_string(src), [&fab, src, dst, bytes, flow] {
      netsim::WireMessage m = make_msg(1, std::vector<std::byte>(bytes));
      m.flow = flow;
      fab.endpoint(src).post_send(dst, std::move(m));
    });
  }
  sim::SimTime last = 0;
  for (const auto& [dst, count] : expected) {
    eng.spawn("r" + std::to_string(dst), [&fab, &eng, &last, dst, count] {
      sim::Notifier n(eng);
      fab.endpoint(dst).set_wakeup(&n);
      netsim::Completion c;
      int seen = 0;
      while (seen < count) {
        if (fab.endpoint(dst).poll(c)) {
          if (c.type == netsim::CqType::kRecv) ++seen;
        } else {
          n.wait();
        }
      }
      last = std::max(last, eng.now());
      fab.endpoint(dst).set_wakeup(nullptr);
    });
  }
  eng.run();
  if (stats_out != nullptr) *stats_out = fab.link_stats();
  return last;
}

void expect_same_links(const std::vector<netsim::LinkStats>& a,
                       const std::vector<netsim::LinkStats>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].ops, b[i].ops) << "link " << i;
    EXPECT_EQ(a[i].contended_ops, b[i].contended_ops) << "link " << i;
    EXPECT_EQ(a[i].bytes, b[i].bytes) << "link " << i;
    EXPECT_EQ(a[i].ecn_marks, b[i].ecn_marks) << "link " << i;
    EXPECT_EQ(a[i].busy_total, b[i].busy_total) << "link " << i;
    EXPECT_EQ(a[i].wait_total, b[i].wait_total) << "link " << i;
    EXPECT_EQ(a[i].peak_backlog, b[i].peak_backlog) << "link " << i;
  }
}

// Incast that D-mod-k must funnel: four distinct sources on other leaves
// all firing at node 0 (dst % uplinks == 0 for every flow).
const std::vector<std::pair<int, int>> kIncast = {
    {4, 0}, {5, 0}, {8, 0}, {9, 0}};

}  // namespace

TEST(RouteSelect, HashAndAdaptiveBeatDmodKOnIncast) {
  const std::size_t kBytes = 64 * 1024;
  auto topo = [](netsim::RouteSelect r) {
    netsim::FabricTopology t = netsim::FabricTopology::fat_tree(4, 2.0);
    t.route = r;
    return t;
  };
  const sim::SimTime dmodk =
      run_routed(topo(netsim::RouteSelect::kDmodK), 16, kIncast, kBytes);
  const sim::SimTime hash =
      run_routed(topo(netsim::RouteSelect::kHash), 16, kIncast, kBytes);
  const sim::SimTime adaptive =
      run_routed(topo(netsim::RouteSelect::kAdaptive), 16, kIncast, kBytes);
  // D-mod-k sends every flow through spine 0; the other policies spread
  // them over both spines, so the last flow lands strictly earlier.
  EXPECT_LT(hash, dmodk);
  EXPECT_LT(adaptive, dmodk);
}

TEST(RouteSelect, AdaptiveSpreadsIncastAcrossUplinks) {
  netsim::FabricTopology t = netsim::FabricTopology::fat_tree(4, 2.0);
  t.route = netsim::RouteSelect::kAdaptive;
  std::vector<netsim::LinkStats> links;
  run_routed(t, 16, kIncast, 64 * 1024, &links);
  // Each source leaf (1 and 2) pushes one flow up each of its two uplinks.
  for (const netsim::LinkStats& l : links) {
    if (l.up && (l.leaf == 1 || l.leaf == 2)) {
      EXPECT_EQ(l.ops, 1u) << "leaf " << l.leaf << " uplink " << l.index;
    }
  }
}

TEST(RouteSelect, HashAndAdaptiveAreSeededDeterministic) {
  for (const netsim::RouteSelect r :
       {netsim::RouteSelect::kHash, netsim::RouteSelect::kAdaptive}) {
    netsim::FabricTopology t = netsim::FabricTopology::fat_tree(4, 2.0);
    t.route = r;
    std::vector<netsim::LinkStats> a;
    std::vector<netsim::LinkStats> b;
    const sim::SimTime t1 = run_routed(t, 16, kIncast, 64 * 1024, &a);
    const sim::SimTime t2 = run_routed(t, 16, kIncast, 64 * 1024, &b);
    EXPECT_EQ(t1, t2);
    expect_same_links(a, b);
  }
}

TEST(RouteSelect, DefaultRouteIsByteIdenticalWithExplicitDmodK) {
  // A topology that never mentions route and one that sets kDmodK must
  // produce identical timing AND identical link state — the regression
  // gate for the whole routing feature being off by default.
  const netsim::FabricTopology implicit =
      netsim::FabricTopology::fat_tree(4, 2.0);
  netsim::FabricTopology explicit_dmodk =
      netsim::FabricTopology::fat_tree(4, 2.0);
  explicit_dmodk.route = netsim::RouteSelect::kDmodK;
  std::vector<netsim::LinkStats> a;
  std::vector<netsim::LinkStats> b;
  const sim::SimTime t1 = run_routed(implicit, 16, kIncast, 64 * 1024, &a);
  const sim::SimTime t2 =
      run_routed(explicit_dmodk, 16, kIncast, 64 * 1024, &b);
  EXPECT_EQ(t1, t2);
  expect_same_links(a, b);
}

TEST(RouteSelect, AdaptiveOnCrossbarIsANoOp) {
  netsim::FabricTopology t;  // crossbar
  t.route = netsim::RouteSelect::kAdaptive;
  EXPECT_NO_THROW(t.validate());
  sim::Engine eng;
  netsim::Fabric fab(eng, 4, netsim::NetCostModel::qdr_ib(), t);
  EXPECT_EQ(fab.traverse(0, 3, 1 << 20), 0);
  EXPECT_TRUE(fab.link_stats().empty());
}

TEST(RouteSelect, FabricMarksEcnAboveBacklogThreshold) {
  // With a tiny threshold the funneled incast must mark; without one it
  // must not, and timings stay identical — marking observes, not perturbs.
  netsim::FabricTopology t = netsim::FabricTopology::fat_tree(4, 2.0);
  std::vector<netsim::LinkStats> marked;
  std::vector<netsim::LinkStats> unmarked;
  const sim::SimTime with_ecn =
      run_routed(t, 16, kIncast, 64 * 1024, &marked, /*ecn_ns=*/1000);
  const sim::SimTime without =
      run_routed(t, 16, kIncast, 64 * 1024, &unmarked);
  EXPECT_EQ(with_ecn, without);
  std::uint64_t marks = 0;
  for (const netsim::LinkStats& l : marked) marks += l.ecn_marks;
  EXPECT_GT(marks, 0u);
  for (const netsim::LinkStats& l : unmarked) EXPECT_EQ(l.ecn_marks, 0u);
}

TEST(Dragonfly, SameGroupTrafficTouchesNoGlobalLink) {
  sim::Engine eng;
  netsim::Fabric fab(eng, 8, netsim::NetCostModel::qdr_ib(),
                     netsim::FabricTopology::dragonfly(4));
  EXPECT_EQ(fab.traverse(0, 3, 1 << 20), 0);  // both in group 0
  for (const netsim::LinkStats& l : fab.link_stats()) EXPECT_EQ(l.ops, 0u);
}

TEST(Dragonfly, MinimalRouteUsesTheDirectGlobalLink) {
  sim::Engine eng;
  netsim::Fabric fab(eng, 8, netsim::NetCostModel::qdr_ib(),
                     netsim::FabricTopology::dragonfly(4));
  fab.traverse(0, 5, 1 << 16);  // group 0 -> group 1, default dmodk
  for (const netsim::LinkStats& l : fab.link_stats()) {
    const bool direct = l.leaf == 0 && l.index == 1;
    EXPECT_EQ(l.ops, direct ? 1u : 0u)
        << "grp" << l.leaf << "->grp" << l.index;
  }
}

TEST(Dragonfly, AdaptiveValiantDetourBeatsMinimalOnIncast) {
  // Three groups; group 1 fires two flows at group 0 while group 2 stays
  // idle. The minimal route serializes both on the one direct 1->0 link;
  // UGAL-style adaptive sees the backlog and bounces the second flow
  // through the idle group 2 (1->2, 2->0), landing it strictly earlier.
  // (If group 2 ALSO fired at group 0 the detour's second hop would be as
  // backed up as the direct link and UGAL would correctly stay minimal —
  // the detour needs somewhere idle to go.)
  const std::vector<std::pair<int, int>> flows = {{4, 0}, {5, 1}};
  const std::size_t kBytes = 256 * 1024;
  netsim::FabricTopology direct = netsim::FabricTopology::dragonfly(4);
  netsim::FabricTopology ugal = netsim::FabricTopology::dragonfly(4);
  ugal.route = netsim::RouteSelect::kAdaptive;
  std::vector<netsim::LinkStats> links;
  const sim::SimTime t_min = run_routed(direct, 12, flows, kBytes);
  const sim::SimTime t_ugal = run_routed(ugal, 12, flows, kBytes, &links);
  EXPECT_LT(t_ugal, t_min);
  // The detour actually happened: the 1->2 leg carried traffic.
  std::uint64_t detour_ops = 0;
  for (const netsim::LinkStats& l : links) {
    if (l.leaf == 1 && l.index == 2) detour_ops += l.ops;
  }
  EXPECT_GT(detour_ops, 0u);
}

TEST(Dragonfly, RoutedRunsAreSeededDeterministic) {
  const std::vector<std::pair<int, int>> flows = {
      {4, 0}, {5, 1}, {8, 0}, {9, 1}};
  for (const netsim::RouteSelect r :
       {netsim::RouteSelect::kHash, netsim::RouteSelect::kAdaptive}) {
    netsim::FabricTopology t = netsim::FabricTopology::dragonfly(4);
    t.route = r;
    std::vector<netsim::LinkStats> a;
    std::vector<netsim::LinkStats> b;
    const sim::SimTime t1 = run_routed(t, 12, flows, 128 * 1024, &a);
    const sim::SimTime t2 = run_routed(t, 12, flows, 128 * 1024, &b);
    EXPECT_EQ(t1, t2);
    expect_same_links(a, b);
  }
}

TEST(RouteSelect, ClusterMapsTunableOntoTopologyAndPrintsRouteMode) {
  mpisim::ClusterConfig cfg;
  cfg.ranks = 16;
  cfg.topology = netsim::FabricTopology::fat_tree(8, 2.0);
  cfg.tunables.route_select = mv2gnc::core::RouteSelect::kAdaptive;
  mpisim::Cluster cluster(cfg);
  cluster.run([](mpisim::Context& ctx) {
    auto dt = mpisim::Datatype::byte();
    dt.commit();
    std::vector<std::byte> tx(32 * 1024, std::byte{0x22});
    std::vector<std::byte> rx(32 * 1024);
    const int peer = ctx.rank ^ 8;
    ctx.comm.sendrecv(tx.data(), static_cast<int>(tx.size()), dt, peer, 3,
                      rx.data(), static_cast<int>(rx.size()), dt, peer, 3);
  });
  std::ostringstream os;
  cluster.print_stats(os);
  EXPECT_NE(os.str().find("route adaptive"), std::string::npos);
  // The raw accessor mirrors what the table rendered.
  std::uint64_t ops = 0;
  for (const netsim::LinkStats& l : cluster.link_stats()) ops += l.ops;
  EXPECT_GT(ops, 0u);
}
