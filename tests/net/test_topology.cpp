// Fat-tree topology semantics: deterministic D-mod-k routing, shared-link
// queuing, cut-through equivalence with the crossbar on uncontended paths,
// and the per-link stats surfaced through Cluster::print_stats.
#include "net/topology.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "mpi/cluster.hpp"
#include "net/fabric.hpp"

namespace mpisim = mv2gnc::mpisim;
namespace netsim = mv2gnc::netsim;
namespace sim = mv2gnc::sim;

namespace {

netsim::WireMessage make_msg(int kind, std::vector<std::byte> payload = {}) {
  netsim::WireMessage m;
  m.kind = kind;
  m.payload = std::move(payload);
  return m;
}

// Runs one sender per (src, dst) pair, all posting simultaneously, and
// records the virtual arrival time of each dst's first kRecv.
std::vector<sim::SimTime> arrival_times(
    netsim::Fabric& fab, sim::Engine& eng,
    const std::vector<std::pair<int, int>>& flows, std::size_t bytes) {
  std::vector<sim::SimTime> arrivals(flows.size(), 0);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    const auto [src, dst] = flows[i];
    eng.spawn("s" + std::to_string(src), [&fab, src, dst, bytes] {
      fab.endpoint(src).post_send(dst,
                                  make_msg(1, std::vector<std::byte>(bytes)));
    });
    eng.spawn("r" + std::to_string(dst), [&fab, &eng, &arrivals, i, dst] {
      sim::Notifier n(eng);
      fab.endpoint(dst).set_wakeup(&n);
      netsim::Completion c;
      for (;;) {
        if (fab.endpoint(dst).poll(c)) {
          if (c.type == netsim::CqType::kRecv) break;
        } else {
          n.wait();
        }
      }
      arrivals[i] = eng.now();
      fab.endpoint(dst).set_wakeup(nullptr);
    });
  }
  eng.run();
  return arrivals;
}

}  // namespace

TEST(FabricTopology, UplinksFollowOversubscription) {
  EXPECT_EQ(netsim::FabricTopology::fat_tree(8, 1.0).uplinks(), 8);
  EXPECT_EQ(netsim::FabricTopology::fat_tree(8, 2.0).uplinks(), 4);
  EXPECT_EQ(netsim::FabricTopology::fat_tree(8, 4.0).uplinks(), 2);
  // Floors at one uplink no matter how harsh the ratio.
  EXPECT_EQ(netsim::FabricTopology::fat_tree(2, 16.0).uplinks(), 1);
}

TEST(FabricTopology, ValidateRejectsBadFatTrees) {
  EXPECT_NO_THROW(netsim::FabricTopology::crossbar().validate());
  EXPECT_NO_THROW(netsim::FabricTopology::fat_tree(8, 2.0).validate());
  EXPECT_THROW(netsim::FabricTopology::fat_tree(0, 2.0).validate(),
               std::invalid_argument);
  EXPECT_THROW(netsim::FabricTopology::fat_tree(8, 0.0).validate(),
               std::invalid_argument);
  EXPECT_THROW(netsim::FabricTopology::fat_tree(8, -1.0).validate(),
               std::invalid_argument);
}

TEST(FabricTopology, CrossbarHasNoSharedLinks) {
  sim::Engine eng;
  netsim::Fabric fab(eng, 4, netsim::NetCostModel::qdr_ib());
  EXPECT_EQ(fab.topology().kind, netsim::FabricTopology::Kind::kCrossbar);
  EXPECT_TRUE(fab.link_stats().empty());
  // traverse is a no-op: no delay, no state.
  EXPECT_EQ(fab.traverse(0, 3, 1 << 20), 0);
  EXPECT_TRUE(fab.link_stats().empty());
}

TEST(FabricTopology, SameLeafTrafficNeverTouchesSharedLinks) {
  sim::Engine eng;
  netsim::Fabric fab(eng, 8, netsim::NetCostModel::qdr_ib(),
                     netsim::FabricTopology::fat_tree(4, 2.0));
  EXPECT_EQ(fab.traverse(0, 3, 1 << 20), 0);  // both on leaf 0
  for (const netsim::LinkStats& l : fab.link_stats()) EXPECT_EQ(l.ops, 0u);
}

TEST(FabricTopology, SingleFlowCrossLeafMatchesCrossbarTiming) {
  // Cut-through accounting: an uncontended fat-tree path adds zero delay,
  // so a lone cross-leaf message lands at exactly the crossbar instant.
  const std::size_t kBytes = 64 * 1024;
  sim::SimTime crossbar_at = 0;
  {
    sim::Engine eng;
    netsim::Fabric fab(eng, 16, netsim::NetCostModel::qdr_ib());
    crossbar_at = arrival_times(fab, eng, {{0, 9}}, kBytes)[0];
  }
  sim::SimTime fat_at = 0;
  {
    sim::Engine eng;
    netsim::Fabric fab(eng, 16, netsim::NetCostModel::qdr_ib(),
                       netsim::FabricTopology::fat_tree(8, 2.0));
    fat_at = arrival_times(fab, eng, {{0, 9}}, kBytes)[0];
    // The flow did cross a leaf boundary: both links saw it.
    std::uint64_t ops = 0;
    for (const netsim::LinkStats& l : fab.link_stats()) ops += l.ops;
    EXPECT_EQ(ops, 2u);  // one up-link crossing + one down-link crossing
  }
  EXPECT_GT(crossbar_at, 0);
  EXPECT_EQ(fat_at, crossbar_at);
}

TEST(FabricTopology, TwoFlowsSharingAnUplinkQueueBehindEachOther) {
  // leaf_ports=2, 2:1 oversubscription => exactly one uplink per leaf.
  // Flows 0->2 and 1->3 both cross from leaf 0 to leaf 1 through it; the
  // later drain queues for exactly one wire time of the earlier one.
  const std::size_t kBytes = 64 * 1024;
  const netsim::NetCostModel cost = netsim::NetCostModel::qdr_ib();
  const std::vector<std::pair<int, int>> flows = {{0, 2}, {1, 3}};
  std::vector<sim::SimTime> xbar;
  {
    sim::Engine eng;
    netsim::Fabric fab(eng, 4, cost);
    xbar = arrival_times(fab, eng, flows, kBytes);
  }
  std::vector<sim::SimTime> fat;
  sim::SimTime wait_total = 0;
  std::uint64_t contended = 0;
  {
    sim::Engine eng;
    netsim::Fabric fab(eng, 4, cost,
                       netsim::FabricTopology::fat_tree(2, 2.0));
    fat = arrival_times(fab, eng, flows, kBytes);
    for (const netsim::LinkStats& l : fab.link_stats()) {
      wait_total += l.wait_total;
      contended += l.contended_ops;
    }
  }
  // Both flows drain their (independent) NICs at the same instant on the
  // crossbar and arrive together; on the fat tree the first is untouched
  // and the second waits one serialization of the first on the uplink.
  EXPECT_EQ(xbar[0], xbar[1]);
  EXPECT_EQ(fat[0], xbar[0]);
  EXPECT_EQ(fat[1], xbar[1] + cost.wire_time(kBytes + 64));
  EXPECT_EQ(contended, 1u);
  EXPECT_EQ(wait_total, cost.wire_time(kBytes + 64));
}

TEST(FabricTopology, IncastFunnelsThroughOneUplinkDeterministically) {
  // Every rank of leaf 1 fires at node 0: D-mod-k sends all of it through
  // spine 0 — the classic hot-spot. The queuing accumulates on leaf 1's
  // up-link; by the time flows reach the down-link they are already spaced
  // one serialization apart, so it stays busy but never backs up.
  const std::size_t kBytes = 32 * 1024;
  const netsim::NetCostModel cost = netsim::NetCostModel::qdr_ib();
  const std::vector<std::pair<int, int>> flows = {
      {4, 0}, {5, 0}, {6, 0}, {7, 0}};
  auto run_once = [&](std::vector<netsim::LinkStats>& stats_out) {
    sim::Engine eng;
    netsim::Fabric fab(eng, 8, cost,
                       netsim::FabricTopology::fat_tree(4, 2.0));
    std::vector<sim::SimTime> arrivals(1, 0);
    for (const auto [src, dst] : flows) {
      eng.spawn("s" + std::to_string(src), [&fab, src, dst, kBytes] {
        fab.endpoint(src).post_send(
            dst, make_msg(1, std::vector<std::byte>(kBytes)));
      });
    }
    eng.spawn("sink", [&] {
      sim::Notifier n(eng);
      fab.endpoint(0).set_wakeup(&n);
      netsim::Completion c;
      int got = 0;
      while (got < 4) {
        if (fab.endpoint(0).poll(c)) {
          if (c.type == netsim::CqType::kRecv) ++got;
        } else {
          n.wait();
        }
      }
      arrivals[0] = eng.now();
    });
    eng.run();
    stats_out = fab.link_stats();
    return arrivals[0];
  };
  std::vector<netsim::LinkStats> s1;
  std::vector<netsim::LinkStats> s2;
  const sim::SimTime t1 = run_once(s1);
  const sim::SimTime t2 = run_once(s2);
  EXPECT_EQ(t1, t2);  // bit-reproducible, link state included
  ASSERT_EQ(s1.size(), s2.size());
  const sim::SimTime wire = cost.wire_time(kBytes + 64);
  bool saw_hot_uplink = false;
  bool saw_spaced_downlink = false;
  for (std::size_t i = 0; i < s1.size(); ++i) {
    EXPECT_EQ(s1[i].ops, s2[i].ops);
    EXPECT_EQ(s1[i].bytes, s2[i].bytes);
    EXPECT_EQ(s1[i].wait_total, s2[i].wait_total);
    if (s1[i].up && s1[i].leaf == 1 && s1[i].index == 0) {
      saw_hot_uplink = true;
      EXPECT_EQ(s1[i].ops, 4u);
      EXPECT_EQ(s1[i].busy_total, 4 * wire);
      // Three of the four crossings queued; the deepest behind all three
      // predecessors.
      EXPECT_EQ(s1[i].contended_ops, 3u);
      EXPECT_EQ(s1[i].wait_total, 6 * wire);
      EXPECT_EQ(s1[i].peak_backlog, 3 * wire);
    }
    if (!s1[i].up && s1[i].leaf == 0 && s1[i].index == 0) {
      saw_spaced_downlink = true;
      EXPECT_EQ(s1[i].ops, 4u);
      EXPECT_EQ(s1[i].busy_total, 4 * wire);
      EXPECT_EQ(s1[i].contended_ops, 0u);  // up-link already spaced them
    }
  }
  EXPECT_TRUE(saw_hot_uplink);
  EXPECT_TRUE(saw_spaced_downlink);
}

TEST(FabricTopology, ClusterPrintStatsShowsFabricLinksOnlyForFatTree) {
  auto run_cluster = [](bool fat_tree) {
    mpisim::ClusterConfig cfg;
    cfg.ranks = 16;
    if (fat_tree) cfg.topology = netsim::FabricTopology::fat_tree(8, 2.0);
    mpisim::Cluster cluster(cfg);
    cluster.run([](mpisim::Context& ctx) {
      // Every rank sends one rendezvous-sized message across the leaf
      // boundary (rank XOR 8 lives on the other leaf of an 8-port tree).
      auto dt = mpisim::Datatype::byte();
      dt.commit();
      std::vector<std::byte> tx(32 * 1024, std::byte{0x11});
      std::vector<std::byte> rx(32 * 1024);
      const int peer = ctx.rank ^ 8;
      ctx.comm.sendrecv(tx.data(), static_cast<int>(tx.size()), dt, peer, 3,
                        rx.data(), static_cast<int>(rx.size()), dt, peer, 3);
    });
    std::ostringstream os;
    cluster.print_stats(os);
    return os.str();
  };
  const std::string fat = run_cluster(true);
  EXPECT_NE(fat.find("fabric links"), std::string::npos);
  EXPECT_NE(fat.find("oversubscription 2.0:1"), std::string::npos);
  EXPECT_NE(fat.find("up"), std::string::npos);
  const std::string xbar = run_cluster(false);
  EXPECT_EQ(xbar.find("fabric links"), std::string::npos);
}
