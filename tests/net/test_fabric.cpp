// netsim semantics: message delivery, ordering, RDMA data placement,
// completion queues, timing.
#include "net/fabric.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace netsim = mv2gnc::netsim;
namespace sim = mv2gnc::sim;

namespace {

netsim::WireMessage make_msg(int kind, std::uint64_t h0 = 0,
                             std::vector<std::byte> payload = {}) {
  netsim::WireMessage m;
  m.kind = kind;
  m.header[0] = h0;
  m.payload = std::move(payload);
  return m;
}

}  // namespace

TEST(Fabric, ConstructionAndAccess) {
  sim::Engine eng;
  netsim::Fabric fab(eng, 4, netsim::NetCostModel::qdr_ib());
  EXPECT_EQ(fab.nodes(), 4);
  EXPECT_EQ(fab.endpoint(2).node(), 2);
  EXPECT_THROW(fab.endpoint(4), std::out_of_range);
  EXPECT_THROW(netsim::Fabric(eng, 0, netsim::NetCostModel::qdr_ib()),
               std::invalid_argument);
}

TEST(Fabric, SendDeliversMessageWithSourceStamped) {
  sim::Engine eng;
  netsim::Fabric fab(eng, 2, netsim::NetCostModel::qdr_ib());
  bool got = false;
  eng.spawn("sender", [&] {
    fab.endpoint(0).post_send(1, make_msg(7, 42));
  });
  eng.spawn("receiver", [&] {
    sim::Notifier n(eng);
    fab.endpoint(1).set_wakeup(&n);
    netsim::Completion c;
    while (!fab.endpoint(1).poll(c)) n.wait();
    EXPECT_EQ(c.type, netsim::CqType::kRecv);
    EXPECT_EQ(c.msg.kind, 7);
    EXPECT_EQ(c.msg.header[0], 42u);
    EXPECT_EQ(c.msg.src_node, 0);
    got = true;
  });
  eng.run();
  EXPECT_TRUE(got);
}

TEST(Fabric, SenderGetsLocalCompletion) {
  sim::Engine eng;
  netsim::Fabric fab(eng, 2, netsim::NetCostModel::qdr_ib());
  eng.spawn("sender", [&] {
    sim::Notifier n(eng);
    fab.endpoint(0).set_wakeup(&n);
    const std::uint64_t wr = fab.endpoint(0).post_send(1, make_msg(1));
    netsim::Completion c;
    while (!fab.endpoint(0).poll(c)) n.wait();
    EXPECT_EQ(c.type, netsim::CqType::kSendComplete);
    EXPECT_EQ(c.wr_id, wr);
  });
  eng.run();
}

TEST(Fabric, MessagesBetweenPairArriveInOrder) {
  sim::Engine eng;
  netsim::Fabric fab(eng, 2, netsim::NetCostModel::qdr_ib());
  std::vector<std::uint64_t> order;
  eng.spawn("sender", [&] {
    for (std::uint64_t i = 0; i < 10; ++i) {
      fab.endpoint(0).post_send(1, make_msg(1, i));
    }
  });
  eng.spawn("receiver", [&] {
    sim::Notifier n(eng);
    fab.endpoint(1).set_wakeup(&n);
    netsim::Completion c;
    while (order.size() < 10) {
      if (fab.endpoint(1).poll(c)) {
        if (c.type == netsim::CqType::kRecv) order.push_back(c.msg.header[0]);
      } else {
        n.wait();
      }
    }
  });
  eng.run();
  for (std::uint64_t i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(Fabric, RdmaWritePlacesBytesBeforeImmediate) {
  sim::Engine eng;
  netsim::Fabric fab(eng, 2, netsim::NetCostModel::qdr_ib());
  std::vector<std::byte> src(4096);
  std::vector<std::byte> dst(4096, std::byte{0});
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::byte>(i * 7 & 0xFF);
  }
  eng.spawn("writer", [&] {
    fab.endpoint(0).post_rdma_write(1, src.data(), dst.data(), src.size(),
                                    make_msg(9, 1234));
  });
  eng.spawn("target", [&] {
    sim::Notifier n(eng);
    fab.endpoint(1).set_wakeup(&n);
    netsim::Completion c;
    while (!fab.endpoint(1).poll(c)) n.wait();
    ASSERT_EQ(c.type, netsim::CqType::kRecv);
    EXPECT_EQ(c.msg.kind, 9);
    // The data must already be visible when the immediate arrives.
    EXPECT_EQ(std::memcmp(src.data(), dst.data(), src.size()), 0);
  });
  eng.run();
}

TEST(Fabric, RdmaWriteWithoutImmediateStillMovesData) {
  sim::Engine eng;
  netsim::Fabric fab(eng, 2, netsim::NetCostModel::qdr_ib());
  std::vector<std::byte> src(128, std::byte{0x3C});
  std::vector<std::byte> dst(128, std::byte{0});
  eng.spawn("writer", [&] {
    sim::Notifier n(eng);
    fab.endpoint(0).set_wakeup(&n);
    fab.endpoint(0).post_rdma_write(1, src.data(), dst.data(), src.size());
    netsim::Completion c;
    while (!fab.endpoint(0).poll(c)) n.wait();
    EXPECT_EQ(c.type, netsim::CqType::kRdmaComplete);
    EXPECT_EQ(std::memcmp(src.data(), dst.data(), src.size()), 0);
  });
  eng.run();
}

TEST(Fabric, LatencyMatchesModelForSmallMessage) {
  sim::Engine eng;
  auto cost = netsim::NetCostModel::qdr_ib();
  netsim::Fabric fab(eng, 2, cost);
  sim::SimTime arrival = -1;
  eng.spawn("sender", [&] { fab.endpoint(0).post_send(1, make_msg(1)); });
  eng.spawn("receiver", [&] {
    sim::Notifier n(eng);
    fab.endpoint(1).set_wakeup(&n);
    netsim::Completion c;
    while (!fab.endpoint(1).poll(c)) n.wait();
    arrival = eng.now();
  });
  eng.run();
  const sim::SimTime expected = cost.post_overhead_ns +
                                cost.per_msg_overhead_ns + cost.wire_time(64) +
                                cost.latency_ns;
  EXPECT_EQ(arrival, expected);
}

TEST(Fabric, LargeTransfersSerializedOnTx) {
  sim::Engine eng;
  auto cost = netsim::NetCostModel::qdr_ib();
  netsim::Fabric fab(eng, 2, cost);
  std::vector<std::byte> src(1u << 20), dst(1u << 20);
  sim::SimTime done_at = -1;
  eng.spawn("writer", [&] {
    sim::Notifier n(eng);
    fab.endpoint(0).set_wakeup(&n);
    fab.endpoint(0).post_rdma_write(1, src.data(), dst.data(), src.size());
    fab.endpoint(0).post_rdma_write(1, src.data(), dst.data(), src.size());
    int completions = 0;
    netsim::Completion c;
    while (completions < 2) {
      if (fab.endpoint(0).poll(c)) ++completions;
      else n.wait();
    }
    done_at = eng.now();
  });
  eng.run();
  // Two 1 MB writes must take at least twice the wire time of one.
  EXPECT_GE(done_at, 2 * cost.wire_time(1u << 20));
}

TEST(Fabric, StatsTracked) {
  sim::Engine eng;
  netsim::Fabric fab(eng, 2, netsim::NetCostModel::qdr_ib());
  std::vector<std::byte> buf(256);
  eng.spawn("sender", [&] {
    fab.endpoint(0).post_send(1, make_msg(1, 0, std::vector<std::byte>(100)));
    fab.endpoint(0).post_rdma_write(1, buf.data(), buf.data(), 256);
  });
  eng.run();
  EXPECT_EQ(fab.endpoint(0).messages_sent(), 1u);
  EXPECT_EQ(fab.endpoint(0).rdma_writes(), 1u);
  EXPECT_EQ(fab.endpoint(0).bytes_sent(), 356u);
  EXPECT_GT(fab.endpoint(0).tx_busy_time(), 0);
}

TEST(Fabric, BadDestinationThrows) {
  sim::Engine eng;
  netsim::Fabric fab(eng, 2, netsim::NetCostModel::qdr_ib());
  eng.spawn("sender", [&] {
    EXPECT_THROW(fab.endpoint(0).post_send(5, make_msg(1)), std::out_of_range);
    std::byte b;
    EXPECT_THROW(fab.endpoint(0).post_rdma_write(-1, &b, &b, 1),
                 std::out_of_range);
    EXPECT_THROW(fab.endpoint(0).post_rdma_write(1, nullptr, &b, 1),
                 std::invalid_argument);
  });
  eng.run();
}
