#include "core/vbuf_pool.hpp"

#include <gtest/gtest.h>

#include <set>

using mv2gnc::core::VbufPool;

TEST(VbufPool, AcquireReleaseCycle) {
  VbufPool pool(4, 1024);
  EXPECT_EQ(pool.capacity(), 4u);
  EXPECT_EQ(pool.buffer_bytes(), 1024u);
  EXPECT_EQ(pool.available(), 4u);
  std::byte* a = pool.try_acquire();
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(pool.in_use(), 1u);
  pool.release(a);
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(VbufPool, ExhaustionReturnsNull) {
  VbufPool pool(2, 64);
  std::byte* a = pool.try_acquire();
  std::byte* b = pool.try_acquire();
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(pool.try_acquire(), nullptr);
  pool.release(b);
  EXPECT_NE(pool.try_acquire(), nullptr);
}

TEST(VbufPool, BuffersAreDistinctAndWritable) {
  VbufPool pool(8, 256);
  std::set<std::byte*> seen;
  for (int i = 0; i < 8; ++i) {
    std::byte* p = pool.try_acquire();
    ASSERT_NE(p, nullptr);
    p[0] = static_cast<std::byte>(i);
    p[255] = static_cast<std::byte>(i);
    EXPECT_TRUE(seen.insert(p).second) << "duplicate buffer";
  }
}

TEST(VbufPool, DoubleReleaseThrows) {
  VbufPool pool(2, 64);
  std::byte* a = pool.try_acquire();
  pool.release(a);
  EXPECT_THROW(pool.release(a), std::invalid_argument);
}

TEST(VbufPool, ForeignPointerThrows) {
  VbufPool pool(2, 64);
  std::byte x;
  EXPECT_THROW(pool.release(&x), std::invalid_argument);
  EXPECT_THROW(pool.release(nullptr), std::invalid_argument);
  // Interior (misaligned) pointer is also foreign.
  std::byte* a = pool.try_acquire();
  EXPECT_THROW(pool.release(a + 1), std::invalid_argument);
  pool.release(a);
}

TEST(VbufPool, HighWaterMark) {
  VbufPool pool(4, 64);
  std::byte* a = pool.try_acquire();
  std::byte* b = pool.try_acquire();
  pool.release(a);
  std::byte* c = pool.try_acquire();
  EXPECT_EQ(pool.high_water(), 2u);
  pool.release(b);
  pool.release(c);
  EXPECT_EQ(pool.high_water(), 2u);
}

TEST(VbufPool, AuditIsCleanThroughAcquireReleaseChurn) {
  VbufPool pool(4, 64);
  EXPECT_EQ(pool.audit(), "");
  std::byte* a = pool.try_acquire();
  std::byte* b = pool.try_acquire();
  EXPECT_EQ(pool.audit(), "");  // consistent with buffers checked out
  pool.release(a);
  std::byte* c = pool.try_acquire();
  EXPECT_EQ(pool.audit(), "");
  pool.release(b);
  pool.release(c);
  EXPECT_EQ(pool.audit(), "");
  EXPECT_EQ(pool.in_use(), 0u);
}

TEST(VbufPool, AuditIsCleanWhenExhausted) {
  VbufPool pool(2, 64);
  std::byte* a = pool.try_acquire();
  std::byte* b = pool.try_acquire();
  EXPECT_EQ(pool.try_acquire(), nullptr);
  EXPECT_EQ(pool.audit(), "");
  pool.release(a);
  pool.release(b);
  EXPECT_EQ(pool.audit(), "");
}

TEST(VbufPool, ZeroSizeRejected) {
  EXPECT_THROW(VbufPool(0, 64), std::invalid_argument);
  EXPECT_THROW(VbufPool(4, 0), std::invalid_argument);
}
