// Pack-plan engine: canonical signatures, the two-tier plan cache, chunk
// cursor tables, sub-pattern decomposition, and the cost-model-driven
// chunk/scheme selection helpers.
#include "core/pack_plan.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "core/gpu_staging.hpp"
#include "core/msg_view.hpp"
#include "gpu/cost_model.hpp"
#include "gpu/memory_registry.hpp"
#include "mpi/datatype.hpp"

namespace core = mv2gnc::core;
namespace gpu = mv2gnc::gpu;
using core::LayoutClass;
using core::PackPlan;
using core::PlanCache;
using mv2gnc::mpisim::Datatype;

namespace {

Datatype committed(Datatype t) {
  t.commit();
  return t;
}

// Two arithmetic runs of equal 16-byte blocks: genuinely irregular (no
// single vector pattern) yet perfectly decomposable.
Datatype two_run_hindexed(int rows_per_run = 8) {
  std::vector<int> lens(static_cast<std::size_t>(2 * rows_per_run), 4);
  std::vector<std::int64_t> displs;
  for (int i = 0; i < rows_per_run; ++i) displs.push_back(i * 64);
  for (int i = 0; i < rows_per_run; ++i) displs.push_back(4096 + i * 48);
  return committed(Datatype::hindexed(lens, displs, Datatype::int32()));
}

}  // namespace

TEST(PackPlan, ContiguousClassification) {
  auto plan = PackPlan::build(committed(Datatype::int32()), 16);
  EXPECT_EQ(plan->layout(), LayoutClass::kContiguous);
  EXPECT_TRUE(plan->contiguous());
  EXPECT_EQ(plan->packed_bytes(), 64u);
  EXPECT_EQ(plan->total_segments(), 1u);
}

TEST(PackPlan, SingleVectorClassification) {
  auto t = committed(Datatype::vector(64, 1, 4, Datatype::int32()));
  auto plan = PackPlan::build(t, 1);
  EXPECT_EQ(plan->layout(), LayoutClass::kSingleVector);
  ASSERT_EQ(plan->subpatterns().size(), 1u);
  EXPECT_EQ(plan->subpatterns()[0].rows, 64u);
  EXPECT_EQ(plan->subpatterns()[0].block, 4u);
  EXPECT_EQ(plan->subpatterns()[0].stride, 16);
}

TEST(PackPlan, SignatureFoldsContiguousNesting) {
  auto flat = committed(Datatype::contiguous(12, Datatype::int32()));
  auto nested = committed(
      Datatype::contiguous(4, Datatype::contiguous(3, Datatype::int32())));
  EXPECT_EQ(PackPlan::build(flat, 2)->signature(),
            PackPlan::build(nested, 2)->signature());
}

TEST(PackPlan, SignatureCollapsesVectorOfVector) {
  // hvector of 1-row vectors == the flat vector with the same stride.
  auto flat = committed(Datatype::vector(8, 2, 4, Datatype::int32()));
  auto nested = committed(Datatype::hvector(
      8, 1, 16, Datatype::contiguous(2, Datatype::int32())));
  EXPECT_EQ(PackPlan::build(flat, 1)->signature(),
            PackPlan::build(nested, 1)->signature());
}

TEST(PackPlan, SignatureDistinguishesExtent) {
  auto a = committed(Datatype::vector(8, 1, 4, Datatype::int32()));
  auto b = committed(
      Datatype::resized(Datatype::vector(8, 1, 4, Datatype::int32()), 0, 256));
  EXPECT_NE(PackPlan::build(a, 1)->signature(),
            PackPlan::build(b, 1)->signature());
}

TEST(PackPlan, SubPatternDecomposition) {
  auto plan = PackPlan::build(two_run_hindexed(), 1);
  EXPECT_EQ(plan->layout(), LayoutClass::kSubPatterned);
  ASSERT_EQ(plan->subpatterns().size(), 2u);
  const auto& a = plan->subpatterns()[0];
  const auto& b = plan->subpatterns()[1];
  EXPECT_EQ(a.rows, 8u);
  EXPECT_EQ(a.block, 16u);
  EXPECT_EQ(a.stride, 64);
  EXPECT_EQ(a.packed_offset, 0u);
  EXPECT_EQ(b.rows, 8u);
  EXPECT_EQ(b.stride, 48);
  EXPECT_EQ(b.first_offset, 4096);
  EXPECT_EQ(b.packed_offset, a.packed_bytes());
  EXPECT_EQ(a.packed_bytes() + b.packed_bytes(), plan->packed_bytes());
}

TEST(PackPlan, DegenerateListStaysIrregular) {
  // Alternating block lengths defeat uniform grouping: every run becomes
  // its own sub-pattern, so the plan must fall back to the generalized
  // kernel classification.
  std::vector<int> lens;
  std::vector<std::int64_t> displs;
  for (int i = 0; i < 16; ++i) {
    lens.push_back(1 + (i % 2) * 2);
    displs.push_back(i * 40);
  }
  auto t = committed(Datatype::hindexed(lens, displs, Datatype::int32()));
  auto plan = PackPlan::build(t, 1);
  EXPECT_EQ(plan->layout(), LayoutClass::kIrregular);
  EXPECT_TRUE(plan->subpatterns().empty());
}

TEST(PackPlan, SegmentsInRangeIsExact) {
  // 8 rows of 4 bytes per element, two elements. The extent is padded so
  // the last row of one element does not abut the first row of the next
  // (which would merge across the seam and leave 15 runs, not 16).
  auto t = committed(Datatype::resized(
      Datatype::vector(8, 1, 4, Datatype::int32()), 0, 120));
  auto plan = PackPlan::build(t, 2);
  EXPECT_EQ(plan->total_segments(), 16u);
  EXPECT_EQ(plan->segments_in_range(0, 64), 16u);
  EXPECT_EQ(plan->segments_in_range(0, 4), 1u);
  EXPECT_EQ(plan->segments_in_range(4, 8), 2u);   // rows 1..2
  EXPECT_EQ(plan->segments_in_range(2, 4), 2u);   // straddles rows 0..1
  EXPECT_EQ(plan->segments_in_range(30, 4), 2u);  // straddles the elem seam
  EXPECT_EQ(plan->segments_in_range(0, 0), 0u);
  EXPECT_THROW(plan->segments_in_range(60, 8), std::out_of_range);
}

TEST(PackPlan, ChunkCursorTables) {
  auto t = committed(Datatype::vector(8, 1, 4, Datatype::int32()));
  auto plan = PackPlan::build(t, 4);  // 128 packed bytes
  auto table = plan->chunk_cursors(48);
  ASSERT_EQ(table->count, 3u);  // 48 + 48 + 32
  EXPECT_EQ(table->cursors[0], (mv2gnc::mpisim::PackCursor{0, 0, 0}));
  // 48 bytes = 12 rows = one element + 4 rows.
  EXPECT_EQ(table->cursors[1], (mv2gnc::mpisim::PackCursor{1, 4, 0}));
  EXPECT_EQ(table->cursors[2], (mv2gnc::mpisim::PackCursor{3, 0, 0}));
  EXPECT_EQ(table->segments[0], 12u);
  EXPECT_EQ(table->segments[1], 12u);
  EXPECT_EQ(table->segments[2], 8u);
  // Memoized: the same table object comes back.
  EXPECT_EQ(plan->chunk_cursors(48).get(), table.get());
}

TEST(PlanCacheTest, NodeFastPathHits) {
  auto& cache = PlanCache::instance();
  cache.reset();
  auto t = committed(Datatype::vector(16, 1, 4, Datatype::int32()));
  auto p1 = cache.get(t, 3);
  auto p2 = cache.get(t, 3);
  EXPECT_EQ(p1.get(), p2.get());
  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  // A different count is a different plan.
  auto p3 = cache.get(t, 4);
  EXPECT_NE(p1.get(), p3.get());
  EXPECT_EQ(cache.stats().misses, 2u);
}

TEST(PlanCacheTest, SignatureTierDedupesDistinctTrees) {
  auto& cache = PlanCache::instance();
  cache.reset();
  auto a = committed(Datatype::vector(16, 1, 4, Datatype::int32()));
  auto b = committed(Datatype::vector(16, 1, 4, Datatype::int32()));
  ASSERT_NE(a.node_id(), b.node_id());
  auto pa = cache.get(a, 2);
  auto pb = cache.get(b, 2);
  EXPECT_EQ(pa.get(), pb.get());
  const auto s = cache.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.signature_dedups, 1u);
  EXPECT_EQ(cache.size(), 1u);
  // The alias now hits the fast path.
  cache.get(b, 2);
  EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(PlanCacheTest, LruEvictsLeastRecentlyUsed) {
  auto& cache = PlanCache::instance();
  cache.reset();
  cache.set_capacity(4);
  std::vector<Datatype> keep;
  for (int i = 1; i <= 8; ++i) {
    keep.push_back(committed(Datatype::vector(i + 1, 1, 4, Datatype::int32())));
    cache.get(keep.back(), 1);
  }
  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.stats().evictions, 4u);
  // The evicted first entry rebuilds on next use.
  cache.get(keep.front(), 1);
  EXPECT_EQ(cache.stats().misses, 9u);
  cache.set_capacity(256);
  cache.reset();
}

TEST(CostSelection, ModelPrefersOffloadForFineGrainedRows) {
  const auto cost = gpu::GpuCostModel::tesla_c2050();
  gpu::MemoryRegistry reg;
  std::vector<std::byte> buf(1 << 20);
  // 4-byte rows: per-row PCIe cost dominates, offload must win (Fig. 2).
  auto fine = committed(Datatype::vector(4096, 1, 4, Datatype::int32()));
  auto mfine = core::MsgView::make(buf.data(), 1, fine, reg);
  EXPECT_TRUE(core::model_prefers_offload(cost, mfine));
  // Few huge rows: the strided PCIe copy is nearly contiguous already and
  // the extra D2D stage only adds time.
  auto coarse = committed(
      Datatype::vector(4, 65536, 65536 * 2, Datatype::int32()));
  auto mcoarse = core::MsgView::make(buf.data(), 1, coarse, reg);
  EXPECT_FALSE(core::model_prefers_offload(cost, mcoarse));
}

TEST(CostSelection, ChunkMinimizesLatencyModel) {
  const auto cost = gpu::GpuCostModel::tesla_c2050();
  gpu::MemoryRegistry reg;
  std::vector<std::byte> buf(64);
  auto t = committed(Datatype::vector(1024, 1, 2, Datatype::int32()));
  auto msg = core::MsgView::make(buf.data(), 1024, t, reg);  // 4 MB packed
  const std::size_t chosen =
      core::select_chunk_bytes(cost, msg, /*offload=*/true, 64 * 1024);
  ASSERT_GE(chosen, 8u * 1024u);
  ASSERT_LE(chosen, 1u << 20);
  // The chosen chunk is no worse than every power-of-two candidate under
  // the (n+2)·T model it is minimizing.
  const auto model = [&](std::size_t c) {
    const std::size_t n = (msg.packed_bytes + c - 1) / c;
    return static_cast<double>(n + 2) *
           static_cast<double>(core::modeled_stage_time(cost, msg, c, true));
  };
  for (std::size_t c = 8 * 1024; c <= (1u << 20); c *= 2) {
    EXPECT_LE(model(chosen), model(c)) << "candidate " << c;
  }
}

TEST(CostSelection, StageTimeScalesWithSegmentDensity) {
  const auto cost = gpu::GpuCostModel::tesla_c2050();
  gpu::MemoryRegistry reg;
  std::vector<std::byte> buf(64);
  auto fine = committed(Datatype::vector(4096, 1, 2, Datatype::int32()));
  auto wide = committed(Datatype::vector(16, 256, 512, Datatype::int32()));
  auto mfine = core::MsgView::make(buf.data(), 64, fine, reg);
  auto mwide = core::MsgView::make(buf.data(), 64, wide, reg);
  ASSERT_EQ(mfine.packed_bytes, mwide.packed_bytes);
  EXPECT_GT(core::modeled_stage_time(cost, mfine, 64 * 1024, true),
            core::modeled_stage_time(cost, mwide, 64 * 1024, true));
}
