// Rendezvous-pipeline behaviour under non-default tunables: tiny vbuf
// pools (back-pressure), pipelining/offload ablations, odd chunk sizes,
// and the paper's (n+2)-stage latency model.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpi/cluster.hpp"

namespace mpisim = mv2gnc::mpisim;
namespace core = mv2gnc::core;
namespace sim = mv2gnc::sim;
using mpisim::Cluster;
using mpisim::ClusterConfig;
using mpisim::Context;
using mpisim::Datatype;

namespace {

Datatype committed(Datatype t) {
  t.commit();
  return t;
}

// One-way device-to-device strided transfer of `rows` 4-byte rows under
// the given tunables; returns virtual elapsed time at the receiver and
// verifies payload integrity.
sim::SimTime timed_transfer(const core::Tunables& tun, int rows) {
  ClusterConfig cfg;
  cfg.tunables = tun;
  Cluster cluster(cfg);
  sim::SimTime elapsed = 0;
  cluster.run([&](Context& ctx) {
    auto col = committed(Datatype::vector(rows, 1, 2, Datatype::float32()));
    const std::size_t span = static_cast<std::size_t>(rows) * 8 + 16;
    auto* dev = static_cast<std::byte*>(ctx.cuda->malloc(span));
    if (ctx.rank == 0) {
      std::vector<std::byte> host(span);
      for (std::size_t i = 0; i < span; ++i) {
        host[i] = static_cast<std::byte>(i * 13 & 0xFF);
      }
      ctx.cuda->memcpy(dev, host.data(), span);
      ctx.comm.barrier();
      ctx.comm.send(dev, 1, col, 1, 0);
    } else {
      ctx.cuda->memset(dev, 0, span);
      ctx.comm.barrier();
      const sim::SimTime t0 = ctx.engine->now();
      ctx.comm.recv(dev, 1, col, 0, 0);
      elapsed = ctx.engine->now() - t0;
      std::vector<std::byte> out(span);
      ctx.cuda->memcpy(out.data(), dev, span);
      for (int r = 0; r < rows; r += 97) {
        const std::size_t off = static_cast<std::size_t>(r) * 8;
        EXPECT_EQ(out[off], static_cast<std::byte>((off * 13) & 0xFF));
      }
    }
    ctx.cuda->free(dev);
  });
  return elapsed;
}

}  // namespace

TEST(RndvPipeline, TinyVbufPoolStillCompletes) {
  // Two buffers total: maximal back-pressure, must still drain correctly.
  core::Tunables tun;
  tun.vbuf_count = 2;
  tun.recv_window = 2;
  const sim::SimTime t = timed_transfer(tun, 1 << 18);  // 1 MB
  EXPECT_GT(t, 0);
}

TEST(RndvPipeline, LargerWindowIsNotSlower) {
  core::Tunables small;
  small.vbuf_count = 2;
  small.recv_window = 1;
  core::Tunables big;
  big.vbuf_count = 32;
  big.recv_window = 8;
  const sim::SimTime constrained = timed_transfer(small, 1 << 18);
  const sim::SimTime roomy = timed_transfer(big, 1 << 18);
  EXPECT_LE(roomy, constrained);
}

TEST(RndvPipeline, PipeliningBeatsSingleBlock) {
  // The (n+2) model: chunked overlap must beat the monolithic transfer
  // for large messages.
  core::Tunables on;
  core::Tunables off;
  off.pipelining = false;
  const sim::SimTime piped = timed_transfer(on, 1 << 19);    // 2 MB
  const sim::SimTime mono = timed_transfer(off, 1 << 19);
  EXPECT_LT(piped, mono);
}

TEST(RndvPipeline, OffloadBeatsPciePackForLargeStrided) {
  core::Tunables on;
  core::Tunables off;
  off.gpu_offload = false;
  const sim::SimTime offload = timed_transfer(on, 1 << 19);
  const sim::SimTime pcie = timed_transfer(off, 1 << 19);
  EXPECT_LT(offload, pcie);
}

TEST(RndvPipeline, BothMechanismsCompose) {
  core::Tunables full;
  core::Tunables neither;
  neither.gpu_offload = false;
  neither.pipelining = false;
  const sim::SimTime best = timed_transfer(full, 1 << 19);
  const sim::SimTime worst = timed_transfer(neither, 1 << 19);
  // The paper's headline: the combination is multiple times faster.
  EXPECT_LT(static_cast<double>(best) * 2.5, static_cast<double>(worst));
}

TEST(RndvPipeline, OddChunkSizesDeliverCorrectly) {
  for (std::size_t chunk : {12u * 1024u, 40u * 1024u, 100u * 1024u}) {
    core::Tunables tun;
    tun.chunk_select = core::ChunkSelect::kFixed;
    tun.chunk_bytes = chunk;
    const sim::SimTime t = timed_transfer(tun, (1 << 18) + 123);
    EXPECT_GT(t, 0) << "chunk " << chunk;
  }
}

TEST(RndvPipeline, ChunkLargerThanMessage) {
  core::Tunables tun;
  tun.chunk_select = core::ChunkSelect::kFixed;
  tun.chunk_bytes = 16u << 20;  // bigger than the message
  tun.pipeline_threshold = 1024;
  const sim::SimTime t = timed_transfer(tun, 1 << 16);
  EXPECT_GT(t, 0);
}

TEST(RndvPipeline, SixtyFourKIsNearOptimalChunk) {
  // Regenerate the paper's §IV-B tuning claim in miniature: 64 KB must be
  // within 25% of the best chunk size in the sweep.
  std::vector<std::size_t> chunks = {4u << 10, 16u << 10, 64u << 10,
                                     256u << 10, 1u << 20};
  sim::SimTime best = sim::kNever;
  sim::SimTime at64k = 0;
  for (auto c : chunks) {
    core::Tunables tun;
    tun.chunk_select = core::ChunkSelect::kFixed;
    tun.chunk_bytes = c;
    const sim::SimTime t = timed_transfer(tun, (4u << 20) / 4);
    best = std::min(best, t);
    if (c == 64u << 10) at64k = t;
  }
  EXPECT_LT(static_cast<double>(at64k),
            1.25 * static_cast<double>(best));
}

TEST(RndvPipeline, ConcurrentAllToAllDoesNotStarveThePool) {
  // Regression: 4 ranks each running 4 concurrent large receives used to
  // consume the entire vbuf pool as landing windows, leaving every sender
  // unable to stage — a circular wait across ranks. The fix caps window
  // pool usage at half capacity and gives slot-less senders a pinned
  // fallback.
  core::Tunables tun;
  tun.vbuf_count = 8;  // tight pool: 4 rx windows would previously eat it
  tun.recv_window = 8;
  ClusterConfig cfg;
  cfg.ranks = 4;
  cfg.tunables = tun;
  Cluster cluster(cfg);
  cluster.run([](Context& ctx) {
    auto bytes = committed(Datatype::byte());
    const std::size_t n = 512u << 10;  // 8 chunks each
    std::vector<std::byte*> bufs;
    std::vector<mpisim::Request> reqs;
    for (int peer = 0; peer < ctx.size; ++peer) {
      auto* in = static_cast<std::byte*>(ctx.cuda->malloc(n));
      bufs.push_back(in);
      reqs.push_back(
          ctx.comm.irecv(in, static_cast<int>(n), bytes, peer, peer));
    }
    for (int peer = 0; peer < ctx.size; ++peer) {
      auto* out = static_cast<std::byte*>(ctx.cuda->malloc(n));
      bufs.push_back(out);
      reqs.push_back(
          ctx.comm.isend(out, static_cast<int>(n), bytes, peer, ctx.rank));
    }
    ctx.comm.waitall(reqs);
    for (auto* b : bufs) ctx.cuda->free(b);
  });
}

TEST(RndvPipeline, DeviceOomOnTbufSurfaces) {
  // The offload path needs a device tbuf of packed-message size; when the
  // modeled device DRAM cannot hold it, the failure must surface as a
  // DeviceError rather than corrupt the transfer.
  ClusterConfig cfg;
  cfg.device_memory_bytes = 5u << 20;  // 5 MB device
  Cluster cluster(cfg);
  EXPECT_THROW(
      cluster.run([](Context& ctx) {
        const int rows = 1 << 19;  // span 4 MB, packed 2 MB -> tbuf OOM
        auto col =
            committed(Datatype::vector(rows, 1, 2, Datatype::float32()));
        auto* dev = static_cast<std::byte*>(
            ctx.cuda->malloc(static_cast<std::size_t>(rows) * 8));
        if (ctx.rank == 0) {
          ctx.comm.send(dev, 1, col, 1, 0);
        } else {
          ctx.comm.recv(dev, 1, col, 0, 0);
        }
      }),
      mv2gnc::gpu::DeviceError);
}

TEST(RndvPipeline, SelfSendEagerAndRendezvous) {
  Cluster cluster(ClusterConfig{});
  cluster.run([](Context& ctx) {
    if (ctx.rank != 0) return;
    auto ints = committed(Datatype::int32());
    // Eager self-send.
    int small_out = 41, small_in = 0;
    auto r1 = ctx.comm.irecv(&small_in, 1, ints, 0, 1);
    ctx.comm.send(&small_out, 1, ints, 0, 1);
    ctx.comm.wait(r1);
    EXPECT_EQ(small_in, 41);
    // Rendezvous self-send.
    std::vector<int> big_out(1 << 17);
    std::iota(big_out.begin(), big_out.end(), 0);
    std::vector<int> big_in(1 << 17, -1);
    auto r2 = ctx.comm.irecv(big_in.data(), 1 << 17, ints, 0, 2);
    auto s2 = ctx.comm.isend(big_out.data(), 1 << 17, ints, 0, 2);
    ctx.comm.wait(r2);
    ctx.comm.wait(s2);
    EXPECT_EQ(big_in, big_out);
  });
}

TEST(RndvPipeline, ManyConcurrentTransfersShareThePool) {
  // Four large sends each way between two ranks, all in flight at once.
  Cluster cluster(ClusterConfig{});
  cluster.run([](Context& ctx) {
    auto bytes = committed(Datatype::byte());
    const std::size_t n = 512u << 10;
    const int peer = 1 - ctx.rank;
    std::vector<std::byte*> bufs;
    std::vector<mpisim::Request> reqs;
    for (int k = 0; k < 4; ++k) {
      auto* out = static_cast<std::byte*>(ctx.cuda->malloc(n));
      auto* in = static_cast<std::byte*>(ctx.cuda->malloc(n));
      bufs.push_back(out);
      bufs.push_back(in);
      reqs.push_back(ctx.comm.irecv(in, static_cast<int>(n), bytes, peer, k));
      reqs.push_back(
          ctx.comm.isend(out, static_cast<int>(n), bytes, peer, k));
    }
    ctx.comm.waitall(reqs);
    for (auto* b : bufs) ctx.cuda->free(b);
  });
}
