// Protocol fuzz: random-but-deterministic sweeps of tunables (chunk size,
// pool size, window, thresholds, ablation levers) crossed with message
// shapes and buffer placements. Every combination must deliver bit-exact
// payloads; this is the net that catches protocol edge cases (chunk
// seams, window exhaustion, degenerate plans).
#include <gtest/gtest.h>

#include <cstring>
#include <random>
#include <vector>

#include "mpi/cluster.hpp"

namespace mpisim = mv2gnc::mpisim;
namespace core = mv2gnc::core;
using mpisim::Cluster;
using mpisim::ClusterConfig;
using mpisim::Context;
using mpisim::Datatype;

namespace {

Datatype committed(Datatype t) {
  t.commit();
  return t;
}

struct FuzzCase {
  unsigned seed;
};

class ProtocolFuzz : public ::testing::TestWithParam<FuzzCase> {};

}  // namespace

TEST_P(ProtocolFuzz, RandomConfigDeliversExactPayload) {
  std::mt19937 rng(GetParam().seed);
  // Random tunables within valid ranges.
  core::Tunables tun;
  // Fixed chunking so the randomized chunk_bytes actually exercises odd
  // chunk/message alignments (kModel would override it on device paths).
  tun.chunk_select = core::ChunkSelect::kFixed;
  tun.chunk_bytes = 1u << (10 + rng() % 9);           // 1 KB .. 256 KB
  tun.vbuf_count = 2 + rng() % 30;                    // 2 .. 31
  tun.recv_window = 1 + rng() % tun.vbuf_count;       // 1 .. vbuf_count
  tun.eager_threshold = (rng() % 2) ? 0 : 1u << (8 + rng() % 7);
  tun.pipeline_threshold = 1u << (12 + rng() % 8);
  tun.gpu_offload = rng() % 2 == 0;
  tun.scheme_select = (rng() % 2 == 0) ? core::SchemeSelect::kModel
                                       : core::SchemeSelect::kTunable;
  tun.pipelining = rng() % 2 == 0;
  // Topology dimension: one process per node (pure fabric), or both ranks
  // co-located (pure intra-node IPC — rpn 2 and 4 both fold the two ranks
  // onto node 0, exercising the peer-copy paths under every knob above).
  const std::size_t rpn_options[] = {1, 2, 4};
  tun.ranks_per_node = rpn_options[rng() % 3];
  ASSERT_NO_THROW(tun.validate());

  // Random message shape.
  const int blocklen = 1 + static_cast<int>(rng() % 8);
  const int stride = blocklen + static_cast<int>(rng() % 8);
  const int rows = 1 + static_cast<int>(rng() % 30000);
  const int elements = 1 + static_cast<int>(rng() % 3);
  const bool src_dev = rng() % 2 == 0;
  const bool dst_dev = rng() % 2 == 0;

  ClusterConfig cfg;
  cfg.tunables = tun;
  Cluster cluster(cfg);
  cluster.run([&](Context& ctx) {
    auto t = committed(
        Datatype::vector(rows, blocklen, stride, Datatype::int32()));
    const std::size_t span =
        static_cast<std::size_t>(t.extent()) * elements + 64;
    const bool mine_dev = (ctx.rank == 0) ? src_dev : dst_dev;
    std::vector<std::byte> host_buf;
    std::byte* buf;
    if (mine_dev) {
      buf = static_cast<std::byte*>(ctx.cuda->malloc(span));
    } else {
      host_buf.resize(span);
      buf = host_buf.data();
    }
    std::vector<std::byte> init(span);
    std::mt19937 drng(GetParam().seed * 7 + 1);
    for (auto& b : init) b = static_cast<std::byte>(drng() & 0xFF);
    if (ctx.rank == 0) {
      if (mine_dev) ctx.cuda->memcpy(buf, init.data(), span);
      else std::memcpy(buf, init.data(), span);
      ctx.comm.send(buf, elements, t, 1, 0);
    } else {
      if (mine_dev) ctx.cuda->memset(buf, 0, span);
      else std::memset(buf, 0, span);
      ctx.comm.recv(buf, elements, t, 0, 0);
      std::vector<std::byte> got(span);
      if (mine_dev) ctx.cuda->memcpy(got.data(), buf, span);
      else std::memcpy(got.data(), buf, span);
      for (int e = 0; e < elements; ++e) {
        for (const auto& seg : t.segments()) {
          const std::size_t off =
              static_cast<std::size_t>(e) * t.extent() + seg.offset;
          ASSERT_EQ(std::memcmp(got.data() + off, init.data() + off,
                                seg.length),
                    0)
              << "seed " << GetParam().seed << " rows " << rows
              << " chunk " << tun.chunk_bytes << " rpn "
              << tun.ranks_per_node;
        }
      }
    }
    if (mine_dev) ctx.cuda->free(buf);
  });
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProtocolFuzz,
                         ::testing::Values(FuzzCase{1}, FuzzCase{2},
                                           FuzzCase{3}, FuzzCase{5},
                                           FuzzCase{8}, FuzzCase{13},
                                           FuzzCase{21}, FuzzCase{34},
                                           FuzzCase{55}, FuzzCase{89},
                                           FuzzCase{144}, FuzzCase{233},
                                           FuzzCase{377}, FuzzCase{610},
                                           FuzzCase{987}, FuzzCase{1597}));

TEST(ProtocolFuzz, StencilCorrectUnderExtremeThresholds) {
  // Everything-rendezvous and giant-chunk configurations must not change
  // application results (validated against the serial reference).
  for (std::size_t eager : {std::size_t{0}, std::size_t{1} << 20}) {
    core::Tunables tun;
    tun.eager_threshold = eager;
    tun.pipeline_threshold = 0;  // chunk everything that rendezvous
    ClusterConfig cfg;
    cfg.ranks = 4;
    cfg.tunables = tun;
    Cluster cluster(cfg);
    cluster.run([](Context& ctx) {
      auto ints = committed(Datatype::int32());
      std::vector<int> v(4096, ctx.rank);
      std::vector<int> got(4096, -1);
      const int peer = ctx.rank ^ 1;
      auto r = ctx.comm.irecv(got.data(), 4096, ints, peer, 0);
      ctx.comm.send(v.data(), 4096, ints, peer, 0);
      ctx.comm.wait(r);
      EXPECT_EQ(got[0], peer);
      EXPECT_EQ(got[4095], peer);
    });
  }
}
