// Input validation for the chunking layer: ChunkPlan::make rejects
// degenerate geometries, VbufPool rejects empty pools, and the plan's
// arithmetic stays consistent at the boundaries it does accept.
#include <gtest/gtest.h>

#include <stdexcept>

#include "core/rndv.hpp"
#include "core/vbuf_pool.hpp"

namespace core = mv2gnc::core;

TEST(ChunkPlan, ZeroTotalThrows) {
  EXPECT_THROW(core::ChunkPlan::make(0, 64 * 1024), std::invalid_argument);
}

TEST(ChunkPlan, ZeroChunkThrows) {
  EXPECT_THROW(core::ChunkPlan::make(1024, 0), std::invalid_argument);
}

TEST(ChunkPlan, OversizeChunkCoercesToSingleChunk) {
  const auto plan = core::ChunkPlan::make(1000, 1 << 20);
  EXPECT_EQ(plan.count, 1u);
  EXPECT_EQ(plan.chunk, 1000u);
  EXPECT_EQ(plan.bytes_of(0), 1000u);
}

TEST(ChunkPlan, ExactMultipleAndRemainder) {
  const auto even = core::ChunkPlan::make(4096, 1024);
  EXPECT_EQ(even.count, 4u);
  EXPECT_EQ(even.bytes_of(3), 1024u);

  const auto ragged = core::ChunkPlan::make(4097, 1024);
  EXPECT_EQ(ragged.count, 5u);
  EXPECT_EQ(ragged.bytes_of(4), 1u);
  EXPECT_EQ(ragged.offset_of(4), 4096u);
}

TEST(VbufPool, ZeroCountThrows) {
  EXPECT_THROW(core::VbufPool(0, 4096), std::invalid_argument);
}

TEST(VbufPool, ZeroBufferSizeThrows) {
  EXPECT_THROW(core::VbufPool(4, 0), std::invalid_argument);
}
