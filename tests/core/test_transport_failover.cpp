// TransportRouter health tracking: consecutive-streak bookkeeping,
// hysteresis on demote/restore, and the disabled-by-default guarantee.
#include <gtest/gtest.h>

#include "core/transport.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"

namespace core = mv2gnc::core;
namespace netsim = mv2gnc::netsim;
namespace sim = mv2gnc::sim;

namespace {

// Two distinct transports over one fabric; identity (address) is all the
// routing assertions need.
struct RouterRig {
  sim::Engine eng;
  netsim::Fabric fab{eng, 2, netsim::NetCostModel::qdr_ib()};
  core::FabricTransport fallback{fab.endpoint(0)};
  core::FabricTransport routed{fab.endpoint(1)};
  core::TransportRouter router{fallback};
  RouterRig() { router.add_route(1, routed); }
};

}  // namespace

TEST(TransportFailover, HysteresisDemotesAfterConsecutiveFailures) {
  RouterRig rig;
  rig.router.set_failover(/*demote_after=*/2, /*restore_after=*/2);
  EXPECT_EQ(&rig.router.route(1), &rig.routed);
  rig.router.note_failure(1);
  EXPECT_EQ(&rig.router.route(1), &rig.routed);  // one failure: not enough
  rig.router.note_success(1);                    // success resets the streak
  rig.router.note_failure(1);
  EXPECT_EQ(&rig.router.route(1), &rig.routed);
  rig.router.note_failure(1);  // second *consecutive* failure: demote
  EXPECT_EQ(&rig.router.route(1), &rig.fallback);
  const core::PeerHealth& h = rig.router.peer_health().at(1);
  EXPECT_TRUE(h.demoted);
  EXPECT_EQ(h.demotions, 1u);
  EXPECT_EQ(h.restores, 0u);
}

TEST(TransportFailover, HysteresisRestoresAfterConsecutiveSuccesses) {
  RouterRig rig;
  rig.router.set_failover(2, 2);
  rig.router.note_failure(1);
  rig.router.note_failure(1);
  ASSERT_EQ(&rig.router.route(1), &rig.fallback);
  rig.router.note_success(1);
  EXPECT_EQ(&rig.router.route(1), &rig.fallback);  // one success: still shy
  rig.router.note_failure(1);                      // failure resets the streak
  rig.router.note_success(1);
  EXPECT_EQ(&rig.router.route(1), &rig.fallback);
  rig.router.note_success(1);  // second consecutive success: restore
  EXPECT_EQ(&rig.router.route(1), &rig.routed);
  const core::PeerHealth& h = rig.router.peer_health().at(1);
  EXPECT_FALSE(h.demoted);
  EXPECT_EQ(h.demotions, 1u);
  EXPECT_EQ(h.restores, 1u);
  // The cycle can repeat: demote again from a restored state.
  rig.router.note_failure(1);
  rig.router.note_failure(1);
  EXPECT_EQ(&rig.router.route(1), &rig.fallback);
  EXPECT_EQ(rig.router.peer_health().at(1).demotions, 2u);
}

TEST(TransportFailover, DisabledByDefaultNeverReroutes) {
  RouterRig rig;  // no set_failover: demote_after == 0 means disabled
  for (int i = 0; i < 16; ++i) rig.router.note_failure(1);
  EXPECT_EQ(&rig.router.route(1), &rig.routed);
  auto it = rig.router.peer_health().find(1);
  if (it != rig.router.peer_health().end()) {
    EXPECT_FALSE(it->second.demoted);
    EXPECT_EQ(it->second.demotions, 0u);
  }
}

TEST(TransportFailover, FallbackOnlyPeerIsUnaffected) {
  // Health events for a peer with no dedicated route must not crash and
  // must not change its (fallback) routing.
  RouterRig rig;
  rig.router.set_failover(1, 1);
  rig.router.note_failure(0);
  rig.router.note_failure(0);
  EXPECT_EQ(&rig.router.route(0), &rig.fallback);
}
