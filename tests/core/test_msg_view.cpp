#include "core/msg_view.hpp"

#include <gtest/gtest.h>

#include <array>
#include <vector>

using mv2gnc::core::MsgView;
using mv2gnc::gpu::MemoryRegistry;
using mv2gnc::mpisim::Datatype;

namespace {

Datatype committed(Datatype t) {
  t.commit();
  return t;
}

}  // namespace

TEST(MsgView, HostContiguous) {
  MemoryRegistry reg;
  std::vector<int> buf(16);
  auto t = committed(Datatype::int32());
  auto v = MsgView::make(buf.data(), 16, t, reg);
  EXPECT_FALSE(v.on_device);
  EXPECT_TRUE(v.contiguous);
  EXPECT_EQ(v.packed_bytes, 64u);
  ASSERT_TRUE(v.pattern.has_value());
  EXPECT_EQ(v.pattern->count, 16u);
}

TEST(MsgView, DeviceClassification) {
  MemoryRegistry reg;
  std::array<std::byte, 256> fake_dev{};
  reg.register_range(fake_dev.data(), fake_dev.size(), 2);
  auto t = committed(Datatype::byte());
  auto v = MsgView::make(fake_dev.data(), 16, t, reg);
  EXPECT_TRUE(v.on_device);
  EXPECT_EQ(v.device_id, 2);
}

TEST(MsgView, StridedVectorPattern) {
  MemoryRegistry reg;
  std::vector<float> buf(1024);
  auto t = committed(Datatype::vector(64, 1, 16, Datatype::float32()));
  auto v = MsgView::make(buf.data(), 1, t, reg);
  EXPECT_FALSE(v.contiguous);
  ASSERT_TRUE(v.pattern.has_value());
  EXPECT_EQ(v.pattern->count, 64u);
  EXPECT_EQ(v.pattern->block_bytes, 4u);
  EXPECT_EQ(v.pattern->stride_bytes, 64);
}

TEST(MsgView, FirstSegmentPointer) {
  MemoryRegistry reg;
  std::vector<int> buf(64);
  const std::array<int, 2> lens{1, 1};
  const std::array<int, 2> displs{5, 9};
  auto t = committed(Datatype::indexed(lens, displs, Datatype::int32()));
  auto v = MsgView::make(buf.data(), 1, t, reg);
  EXPECT_EQ(v.first_segment_ptr(),
            reinterpret_cast<std::byte*>(buf.data()) + 20);
}

TEST(MsgView, RequiresCommittedType) {
  MemoryRegistry reg;
  std::vector<int> buf(4);
  auto t = Datatype::vector(2, 1, 2, Datatype::int32());  // not committed
  EXPECT_THROW(MsgView::make(buf.data(), 1, t, reg), std::logic_error);
}

TEST(MsgView, RejectsInvalidArguments) {
  MemoryRegistry reg;
  std::vector<int> buf(4);
  auto t = committed(Datatype::int32());
  EXPECT_THROW(MsgView::make(buf.data(), -1, t, reg), std::invalid_argument);
  EXPECT_THROW(MsgView::make(buf.data(), 1, Datatype{}, reg),
               std::invalid_argument);
}

TEST(MsgView, ZeroCountHasNoPattern) {
  MemoryRegistry reg;
  std::vector<int> buf(4);
  auto t = committed(Datatype::int32());
  auto v = MsgView::make(buf.data(), 0, t, reg);
  EXPECT_EQ(v.packed_bytes, 0u);
  EXPECT_FALSE(v.pattern.has_value());
}
