#include "core/tunables.hpp"

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <utility>

using mv2gnc::core::Tunables;

TEST(Tunables, DefaultsAreValid) {
  Tunables t;
  EXPECT_NO_THROW(t.validate());
  EXPECT_EQ(t.chunk_bytes, 64u * 1024u);  // the paper's optimum
  EXPECT_TRUE(t.gpu_offload);
  EXPECT_TRUE(t.pipelining);
}

TEST(Tunables, ValidationCatchesBadValues) {
  Tunables t;
  t.chunk_bytes = 0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = Tunables{};
  t.vbuf_count = 1;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = Tunables{};
  t.recv_window = 0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = Tunables{};
  t.recv_window = t.vbuf_count + 1;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = Tunables{};
  t.host_pack_bw = 0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = Tunables{};
  t.host_seg_overhead_ns = -1;
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(Tunables, ValidationCatchesBadFaultKnobs) {
  Tunables t;
  t.rank_stall_prob = -0.1;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = Tunables{};
  t.rank_stall_prob = 1.5;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = Tunables{};
  t.rank_stall_ns = -1;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = Tunables{};
  t.rank_skew_ns = -1;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = Tunables{};
  t.transport_restore_threshold = 0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = Tunables{};
  t.coll_watchdog_factor = 0.5;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  // Boundary values are legal: probabilities may be exactly 0 or 1, the
  // failover threshold 0 means "disabled".
  t = Tunables{};
  t.rank_stall_prob = 1.0;
  t.transport_failover_threshold = 0;
  t.coll_watchdog_factor = 1.0;
  EXPECT_NO_THROW(t.validate());
}

TEST(Tunables, FaultKnobsRoundTrip) {
  Tunables t;
  t.rank_skew_ns = 25'000;
  t.rank_stall_prob = 0.125;
  t.rank_stall_ns = 4'000;
  t.transport_failover_threshold = 5;
  t.transport_restore_threshold = 7;
  t.coll_watchdog_factor = 6.5;
  std::istringstream in(t.to_config_string());
  Tunables u = Tunables::from_stream(in);
  EXPECT_EQ(u.rank_skew_ns, 25'000);
  EXPECT_DOUBLE_EQ(u.rank_stall_prob, 0.125);
  EXPECT_EQ(u.rank_stall_ns, 4'000);
  EXPECT_EQ(u.transport_failover_threshold, 5u);
  EXPECT_EQ(u.transport_restore_threshold, 7u);
  EXPECT_DOUBLE_EQ(u.coll_watchdog_factor, 6.5);
}

TEST(Tunables, HostPackTimeModel) {
  Tunables t;
  t.host_pack_bw = 2.0;           // 2 bytes/ns
  t.host_seg_overhead_ns = 10.0;  // 10 ns per run
  EXPECT_EQ(t.host_pack_time(2000, 5), 1000 + 50);
  EXPECT_EQ(t.host_pack_time(0, 0), 0);
}

TEST(Tunables, ConfigRoundTrip) {
  Tunables t;
  t.chunk_bytes = 128 * 1024;
  t.eager_threshold = 4096;
  t.gpu_offload = false;
  t.recv_window = 4;
  std::istringstream in(t.to_config_string());
  Tunables u = Tunables::from_stream(in);
  EXPECT_EQ(u.chunk_bytes, 128u * 1024u);
  EXPECT_EQ(u.eager_threshold, 4096u);
  EXPECT_FALSE(u.gpu_offload);
  EXPECT_EQ(u.recv_window, 4u);
}

TEST(Tunables, ParserHandlesCommentsAndWhitespace) {
  std::istringstream in(
      "# MV2-GPU-NC site config\n"
      "\n"
      "  chunk_bytes =  32768   # tuned with OSU micro-benchmarks\n"
      "pipelining= no\n");
  Tunables t = Tunables::from_stream(in);
  EXPECT_EQ(t.chunk_bytes, 32768u);
  EXPECT_FALSE(t.pipelining);
}

TEST(Tunables, ParserRejectsUnknownKey) {
  std::istringstream in("warp_speed = 9\n");
  EXPECT_THROW(Tunables::from_stream(in), std::invalid_argument);
}

TEST(Tunables, ParserRejectsMalformedLines) {
  std::istringstream bad_value("chunk_bytes = many\n");
  EXPECT_THROW(Tunables::from_stream(bad_value), std::invalid_argument);
  std::istringstream no_eq("chunk_bytes 65536\n");
  EXPECT_THROW(Tunables::from_stream(no_eq), std::invalid_argument);
  std::istringstream bad_bool("gpu_offload = maybe\n");
  EXPECT_THROW(Tunables::from_stream(bad_bool), std::invalid_argument);
}

TEST(Tunables, ParserValidatesResult) {
  std::istringstream in("vbuf_count = 1\n");
  EXPECT_THROW(Tunables::from_stream(in), std::invalid_argument);
}

TEST(Tunables, MissingFileThrows) {
  EXPECT_THROW(Tunables::from_file("/nonexistent/mv2.conf"),
               std::invalid_argument);
}

TEST(Tunables, ReliabilityKnobsRoundTrip) {
  Tunables t;
  t.rndv_timeout_ns = 250'000;
  t.rndv_max_retries = 11;
  t.rndv_backoff_factor = 1.5;
  std::istringstream in(t.to_config_string());
  Tunables u = Tunables::from_stream(in);
  EXPECT_EQ(u.rndv_timeout_ns, 250'000);
  EXPECT_EQ(u.rndv_max_retries, 11u);
  EXPECT_DOUBLE_EQ(u.rndv_backoff_factor, 1.5);
}

TEST(Tunables, SelectionPoliciesDefaultToModel) {
  Tunables t;
  EXPECT_EQ(t.chunk_select, mv2gnc::core::ChunkSelect::kModel);
  EXPECT_EQ(t.scheme_select, mv2gnc::core::SchemeSelect::kModel);
}

TEST(Tunables, SelectionPoliciesRoundTrip) {
  Tunables t;
  t.chunk_select = mv2gnc::core::ChunkSelect::kFixed;
  t.scheme_select = mv2gnc::core::SchemeSelect::kTunable;
  std::istringstream in(t.to_config_string());
  Tunables u = Tunables::from_stream(in);
  EXPECT_EQ(u.chunk_select, mv2gnc::core::ChunkSelect::kFixed);
  EXPECT_EQ(u.scheme_select, mv2gnc::core::SchemeSelect::kTunable);
}

TEST(Tunables, ParserRejectsBadSelectionPolicy) {
  std::istringstream bad_chunk("chunk_select = auto\n");
  EXPECT_THROW(Tunables::from_stream(bad_chunk), std::invalid_argument);
  std::istringstream bad_scheme("scheme_select = always\n");
  EXPECT_THROW(Tunables::from_stream(bad_scheme), std::invalid_argument);
}

TEST(Tunables, ConcurrencyKnobsDefaultToLegacyBehaviour) {
  // fifo + no coalescing + uncapped depth must reproduce the pre-scheduler
  // pipeline exactly; that is the ablation baseline.
  Tunables t;
  EXPECT_EQ(t.sched_policy, mv2gnc::core::SchedPolicy::kFifo);
  EXPECT_EQ(t.max_inflight_chunks, 0u);
  EXPECT_EQ(t.ack_coalesce_window_ns, 0);
}

TEST(Tunables, ConcurrencyKnobsRoundTrip) {
  Tunables t;
  t.sched_policy = mv2gnc::core::SchedPolicy::kFair;
  t.vbuf_reserve_per_transfer = 3;
  t.max_inflight_chunks = 6;
  t.ack_coalesce_window_ns = 40'000;
  std::istringstream in(t.to_config_string());
  Tunables u = Tunables::from_stream(in);
  EXPECT_EQ(u.sched_policy, mv2gnc::core::SchedPolicy::kFair);
  EXPECT_EQ(u.vbuf_reserve_per_transfer, 3u);
  EXPECT_EQ(u.max_inflight_chunks, 6u);
  EXPECT_EQ(u.ack_coalesce_window_ns, 40'000);
}

TEST(Tunables, BytesWeightedPolicyRoundTrip) {
  Tunables t;
  t.sched_policy = mv2gnc::core::SchedPolicy::kBytesWeighted;
  std::istringstream in(t.to_config_string());
  Tunables u = Tunables::from_stream(in);
  EXPECT_EQ(u.sched_policy, mv2gnc::core::SchedPolicy::kBytesWeighted);
}

TEST(Tunables, ParserRejectsBadSchedPolicy) {
  std::istringstream bad("sched_policy = round_robin\n");
  EXPECT_THROW(Tunables::from_stream(bad), std::invalid_argument);
}

TEST(Tunables, ValidationCatchesBadConcurrencyKnobs) {
  Tunables t;
  t.vbuf_reserve_per_transfer = t.vbuf_count + 1;  // cannot out-reserve pool
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = Tunables{};
  t.ack_coalesce_window_ns = -1;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = Tunables{};
  t.ack_coalesce_window_ns = t.rndv_timeout_ns;  // would mimic ack loss
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(Tunables, ValidationCatchesBadReliabilityKnobs) {
  Tunables t;
  t.rndv_timeout_ns = 0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = Tunables{};
  t.rndv_timeout_ns = -5;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = Tunables{};
  t.rndv_backoff_factor = 0.5;  // backoff below 1 would shrink the timeout
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(Tunables, TopologyKnobsRoundTrip) {
  Tunables t;
  t.ranks_per_node = 4;
  t.transport_select = mv2gnc::core::TransportSelect::kFabric;
  std::istringstream in(t.to_config_string());
  Tunables u = Tunables::from_stream(in);
  EXPECT_EQ(u.ranks_per_node, 4u);
  EXPECT_EQ(u.transport_select, mv2gnc::core::TransportSelect::kFabric);
}

TEST(Tunables, TopologyKnobsValidated) {
  Tunables t;
  t.ranks_per_node = 0;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  std::istringstream bad(std::string("transport_select = hca\n"));
  EXPECT_THROW(Tunables::from_stream(bad), std::invalid_argument);
}

TEST(Tunables, StreamTriggerKnobsDefaultOff) {
  // The pinned baselines depend on these defaults: polled trigger mode and
  // no persistent plan cache are byte-identical with pre-stream builds.
  Tunables t;
  EXPECT_EQ(t.trigger_mode, mv2gnc::core::TriggerMode::kPolled);
  EXPECT_FALSE(t.persistent_plan_cache);
}

TEST(Tunables, StreamTriggerKnobsRoundTrip) {
  Tunables t;
  t.trigger_mode = mv2gnc::core::TriggerMode::kStream;
  t.persistent_plan_cache = true;
  const std::string rendered = t.to_config_string();
  EXPECT_NE(rendered.find("trigger_mode = stream"), std::string::npos);
  EXPECT_NE(rendered.find("persistent_plan_cache = true"), std::string::npos);
  std::istringstream in(rendered);
  Tunables u = Tunables::from_stream(in);
  EXPECT_EQ(u.trigger_mode, mv2gnc::core::TriggerMode::kStream);
  EXPECT_TRUE(u.persistent_plan_cache);
}

TEST(Tunables, ParserRejectsBadTriggerMode) {
  std::istringstream bad("trigger_mode = gpu\n");
  EXPECT_THROW(Tunables::from_stream(bad), std::invalid_argument);
}

TEST(Tunables, RoutingAndEcnKnobsDefaultOff) {
  Tunables t;
  EXPECT_EQ(t.route_select, mv2gnc::core::RouteSelect::kDmodK);
  EXPECT_EQ(t.ecn_backlog_ns, 0);
  EXPECT_EQ(t.ecn_restore_chunks, 16u);
}

TEST(Tunables, RoutingAndEcnKnobsRoundTrip) {
  for (const auto [route, name] :
       {std::pair{mv2gnc::core::RouteSelect::kHash, "hash"},
        std::pair{mv2gnc::core::RouteSelect::kAdaptive, "adaptive"},
        std::pair{mv2gnc::core::RouteSelect::kDmodK, "dmodk"}}) {
    Tunables t;
    t.route_select = route;
    t.ecn_backlog_ns = 25'000;
    t.ecn_restore_chunks = 8;
    const std::string rendered = t.to_config_string();
    EXPECT_NE(rendered.find(std::string("route_select = ") + name),
              std::string::npos);
    std::istringstream in(rendered);
    Tunables u = Tunables::from_stream(in);
    EXPECT_EQ(u.route_select, route);
    EXPECT_EQ(u.ecn_backlog_ns, 25'000);
    EXPECT_EQ(u.ecn_restore_chunks, 8u);
  }
}

TEST(Tunables, ParserRejectsBadRouteSelect) {
  std::istringstream bad("route_select = random\n");
  EXPECT_THROW(Tunables::from_stream(bad), std::invalid_argument);
}

TEST(Tunables, ValidationCatchesBadEcnKnobs) {
  Tunables t;
  t.ecn_backlog_ns = -1;
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = Tunables{};
  t.ecn_restore_chunks = 0;  // would grow back on every clean ack
  EXPECT_THROW(t.validate(), std::invalid_argument);
}

TEST(Tunables, DeviceCollectiveKnobsDefaultToLegacyBehaviour) {
  // staged + model-selected slice reproduces the pre-pipeline schedule
  // byte-for-byte; that is the ablation baseline.
  Tunables t;
  EXPECT_EQ(t.coll_device, mv2gnc::core::CollDevice::kStaged);
  EXPECT_EQ(t.coll_slice_bytes, 0u);
}

TEST(Tunables, DeviceCollectiveKnobsRoundTrip) {
  for (auto dev : {mv2gnc::core::CollDevice::kStaged,
                   mv2gnc::core::CollDevice::kPipelined,
                   mv2gnc::core::CollDevice::kAuto}) {
    Tunables t;
    t.coll_device = dev;
    t.coll_slice_bytes = 65'536;
    std::istringstream in(t.to_config_string());
    Tunables u = Tunables::from_stream(in);
    EXPECT_EQ(u.coll_device, dev);
    EXPECT_EQ(u.coll_slice_bytes, 65'536u);
  }
}

TEST(Tunables, ParserRejectsBadCollDevice) {
  std::istringstream bad("coll_device = sliced\n");
  EXPECT_THROW(Tunables::from_stream(bad), std::invalid_argument);
}

TEST(Tunables, ValidationCatchesBadDeviceCollectiveKnobs) {
  Tunables t;
  t.coll_slice_bytes = 12'345;  // not a multiple of the widest element
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t = Tunables{};
  t.coll_slice_bytes = 0;  // model-selected: always legal
  EXPECT_NO_THROW(t.validate());
  t.coll_device = mv2gnc::core::CollDevice::kPipelined;
  t.gpu_offload = false;  // nothing to pipeline without the device legs
  EXPECT_THROW(t.validate(), std::invalid_argument);
  t.gpu_offload = true;
  EXPECT_NO_THROW(t.validate());
}
