// GPU staging helpers: data integrity of the three Figure-2 schemes and of
// the chunked pack/unpack used by the pipeline (including the generalized
// kernel for irregular layouts), plus the timing relationships the paper's
// offload argument rests on.
#include "core/gpu_staging.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "cuda/runtime.hpp"
#include "gpu/device.hpp"

namespace core = mv2gnc::core;
namespace cusim = mv2gnc::cusim;
namespace gpu = mv2gnc::gpu;
namespace sim = mv2gnc::sim;
using mv2gnc::mpisim::Datatype;

namespace {

struct Rig {
  sim::Engine eng;
  gpu::MemoryRegistry reg;
  gpu::Device dev{eng, reg, 0, gpu::GpuCostModel::tesla_c2050(), 256u << 20};
  cusim::CudaContext ctx{dev};

  void run(const std::function<void()>& body) {
    eng.spawn("t", body);
    eng.run();
  }
};

Datatype committed(Datatype t) {
  t.commit();
  return t;
}

}  // namespace

class StageSchemes : public ::testing::TestWithParam<core::PackScheme> {};

TEST_P(StageSchemes, RoundTripPreservesData) {
  const auto scheme = GetParam();
  Rig rig;
  rig.run([&] {
    constexpr int kRows = 500, kStrideElems = 3;
    auto t = committed(
        Datatype::vector(kRows, 1, kStrideElems, Datatype::int32()));
    const std::size_t span = static_cast<std::size_t>(t.extent()) + 16;
    auto* dev = static_cast<std::byte*>(rig.ctx.malloc(span));
    std::vector<std::byte> init(span);
    for (std::size_t i = 0; i < span; ++i) {
      init[i] = static_cast<std::byte>(i * 31 & 0xFF);
    }
    rig.ctx.memcpy(dev, init.data(), span);
    auto msg = core::MsgView::make(dev, 1, t, rig.reg);

    // Host buffer big enough for either packed or strided images.
    std::vector<std::byte> host(span + 64, std::byte{0});
    core::stage_to_host(rig.ctx, scheme, msg, host.data());

    // Scrub the device data region, then bring the data back.
    auto* dev2 = static_cast<std::byte*>(rig.ctx.malloc(span));
    rig.ctx.memset(dev2, 0, span);
    auto msg2 = core::MsgView::make(dev2, 1, t, rig.reg);
    core::stage_from_host(rig.ctx, scheme, msg2, host.data());

    std::vector<std::byte> out(span);
    rig.ctx.memcpy(out.data(), dev2, span);
    for (int r = 0; r < kRows; ++r) {
      const std::size_t off = static_cast<std::size_t>(r) * kStrideElems * 4;
      EXPECT_EQ(std::memcmp(out.data() + off, init.data() + off, 4), 0)
          << "row " << r;
    }
    rig.ctx.free(dev);
    rig.ctx.free(dev2);
  });
}

INSTANTIATE_TEST_SUITE_P(AllSchemes, StageSchemes,
                         ::testing::Values(core::PackScheme::kD2H_nc2nc,
                                           core::PackScheme::kD2H_nc2c,
                                           core::PackScheme::kD2D2H_nc2c2c));

TEST(GpuStaging, OffloadSchemeFastestForLargeVectors) {
  // The crux of §IV-A: D2D2H beats both PCIe-strided schemes at size.
  Rig rig;
  rig.run([&] {
    constexpr int kRows = 1 << 16;
    auto t = committed(Datatype::vector(kRows, 1, 2, Datatype::float32()));
    const std::size_t span = static_cast<std::size_t>(t.extent()) + 16;
    auto* dev = static_cast<std::byte*>(rig.ctx.malloc(span));
    auto msg = core::MsgView::make(dev, 1, t, rig.reg);
    std::vector<std::byte> host(span + 64);
    auto timed = [&](core::PackScheme s) {
      const sim::SimTime t0 = rig.eng.now();
      core::stage_to_host(rig.ctx, s, msg, host.data());
      return rig.eng.now() - t0;
    };
    const sim::SimTime nc2nc = timed(core::PackScheme::kD2H_nc2nc);
    const sim::SimTime nc2c = timed(core::PackScheme::kD2H_nc2c);
    const sim::SimTime offload = timed(core::PackScheme::kD2D2H_nc2c2c);
    EXPECT_LT(offload, nc2nc);
    EXPECT_LT(offload, nc2c);
    EXPECT_LT(nc2nc, nc2c);  // nc2c pays the higher packing row cost
    rig.ctx.free(dev);
  });
}

TEST(GpuStaging, ChunkedDevicePackMatchesHostPack) {
  Rig rig;
  rig.run([&] {
    constexpr int kRows = 4096;
    auto t = committed(Datatype::vector(kRows, 2, 5, Datatype::int32()));
    const std::size_t span = static_cast<std::size_t>(t.extent()) + 16;
    auto* dev = static_cast<std::byte*>(rig.ctx.malloc(span));
    std::vector<std::byte> init(span);
    for (std::size_t i = 0; i < span; ++i) {
      init[i] = static_cast<std::byte>((i * 7 + 1) & 0xFF);
    }
    rig.ctx.memcpy(dev, init.data(), span);
    auto msg = core::MsgView::make(dev, 1, t, rig.reg);
    const std::size_t total = msg.packed_bytes;

    auto* tbuf = static_cast<std::byte*>(rig.ctx.malloc(total));
    auto stream = rig.ctx.create_stream();
    const std::size_t chunk = core::align_chunk_to_pattern(msg, 1000);
    EXPECT_EQ(chunk % msg.pattern->block_bytes, 0u);
    for (std::size_t off = 0; off < total; off += chunk) {
      const std::size_t n = std::min(chunk, total - off);
      core::submit_device_pack(rig.ctx, stream, msg, off, n, tbuf + off);
    }
    stream.synchronize();

    std::vector<std::byte> got(total);
    rig.ctx.memcpy(got.data(), tbuf, total);
    std::vector<std::byte> want(total);
    t.pack(init.data(), 1, want.data());
    EXPECT_EQ(got, want);
    rig.ctx.free(dev);
    rig.ctx.free(tbuf);
  });
}

TEST(GpuStaging, GeneralizedKernelHandlesIrregularLayout) {
  Rig rig;
  rig.run([&] {
    const std::array<int, 3> lens{2, 1, 3};
    const std::array<int, 3> displs{0, 5, 9};
    auto t = committed(Datatype::indexed(lens, displs, Datatype::int32()));
    const int count = 200;
    const std::size_t span =
        static_cast<std::size_t>(t.extent()) * count + 32;
    auto* dev = static_cast<std::byte*>(rig.ctx.malloc(span));
    std::vector<std::byte> init(span);
    for (std::size_t i = 0; i < span; ++i) {
      init[i] = static_cast<std::byte>(i & 0xFF);
    }
    rig.ctx.memcpy(dev, init.data(), span);
    auto msg = core::MsgView::make(dev, count, t, rig.reg);
    ASSERT_FALSE(msg.pattern.has_value());

    auto* tbuf = static_cast<std::byte*>(rig.ctx.malloc(msg.packed_bytes));
    auto stream = rig.ctx.create_stream();
    core::submit_device_pack(rig.ctx, stream, msg, 0, msg.packed_bytes, tbuf);
    stream.synchronize();
    std::vector<std::byte> got(msg.packed_bytes);
    rig.ctx.memcpy(got.data(), tbuf, msg.packed_bytes);
    std::vector<std::byte> want(msg.packed_bytes);
    t.pack(init.data(), count, want.data());
    EXPECT_EQ(got, want);

    // And back: unpack into a scrubbed buffer.
    auto* dev2 = static_cast<std::byte*>(rig.ctx.malloc(span));
    rig.ctx.memset(dev2, 0, span);
    auto msg2 = core::MsgView::make(dev2, count, t, rig.reg);
    core::submit_device_unpack(rig.ctx, stream, msg2, 0, msg2.packed_bytes,
                               tbuf);
    stream.synchronize();
    std::vector<std::byte> out(span);
    rig.ctx.memcpy(out.data(), dev2, span);
    std::vector<std::byte> expect(span, std::byte{0});
    t.unpack(want.data(), count, expect.data());
    EXPECT_EQ(out, expect);
    rig.ctx.free(dev);
    rig.ctx.free(dev2);
    rig.ctx.free(tbuf);
  });
}

TEST(GpuStaging, StageAnyHandlesUnalignedSlices) {
  Rig rig;
  rig.run([&] {
    auto t = committed(Datatype::vector(100, 1, 2, Datatype::float32()));
    const std::size_t span = static_cast<std::size_t>(t.extent()) + 16;
    auto* dev = static_cast<std::byte*>(rig.ctx.malloc(span));
    std::vector<std::byte> init(span);
    for (std::size_t i = 0; i < span; ++i) {
      init[i] = static_cast<std::byte>(i * 3 & 0xFF);
    }
    rig.ctx.memcpy(dev, init.data(), span);
    auto msg = core::MsgView::make(dev, 1, t, rig.reg);

    // 150 bytes is not a multiple of the 4-byte block size.
    std::vector<std::byte> host(150, std::byte{0});
    core::stage_to_host_any(rig.ctx, msg, host.data(), 150, true);
    std::vector<std::byte> want(msg.packed_bytes);
    t.pack(init.data(), 1, want.data());
    EXPECT_EQ(std::memcmp(host.data(), want.data(), 150), 0);
    rig.ctx.free(dev);
  });
}

TEST(GpuStaging, AlignChunkToPattern) {
  Rig rig;
  rig.run([&] {
    auto t = committed(Datatype::vector(64, 3, 5, Datatype::int32()));
    auto* dev = static_cast<std::byte*>(rig.ctx.malloc(4096));
    auto msg = core::MsgView::make(dev, 1, t, rig.reg);
    ASSERT_TRUE(msg.pattern.has_value());
    EXPECT_EQ(msg.pattern->block_bytes, 12u);
    EXPECT_EQ(core::align_chunk_to_pattern(msg, 100), 96u);  // 8 blocks
    EXPECT_EQ(core::align_chunk_to_pattern(msg, 5), 12u);    // min 1 block
    // Contiguous: untouched.
    auto c = committed(Datatype::int32());
    auto cm = core::MsgView::make(dev, 4, c, rig.reg);
    EXPECT_EQ(core::align_chunk_to_pattern(cm, 100), 100u);
    rig.ctx.free(dev);
  });
}

TEST(GpuStaging, StrideSmallerThanBlockFallsBackToGeneralized) {
  // A "pattern" whose stride < block cannot be expressed as cudaMemcpy2D;
  // the staging helpers must reject or fall back rather than corrupt data.
  Rig rig;
  rig.run([&] {
    // Overlapping-read layout: hvector stride 2 bytes < block 4 bytes.
    auto t = committed(Datatype::hvector(8, 1, 2, Datatype::int32()));
    auto* dev = static_cast<std::byte*>(rig.ctx.malloc(256));
    auto msg = core::MsgView::make(dev, 1, t, rig.reg);
    auto* tbuf = static_cast<std::byte*>(rig.ctx.malloc(msg.packed_bytes));
    auto stream = rig.ctx.create_stream();
    // Must take the generalized path and still produce host-pack output.
    std::vector<std::byte> init(256);
    for (std::size_t i = 0; i < init.size(); ++i) {
      init[i] = static_cast<std::byte>(i);
    }
    rig.ctx.memcpy(dev, init.data(), init.size());
    core::submit_device_pack(rig.ctx, stream, msg, 0, msg.packed_bytes, tbuf);
    stream.synchronize();
    std::vector<std::byte> got(msg.packed_bytes);
    rig.ctx.memcpy(got.data(), tbuf, msg.packed_bytes);
    std::vector<std::byte> want(msg.packed_bytes);
    t.pack(init.data(), 1, want.data());
    EXPECT_EQ(got, want);
    rig.ctx.free(dev);
    rig.ctx.free(tbuf);
  });
}
