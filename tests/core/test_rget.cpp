// Receiver-driven rendezvous (RGET): RDMA-READ data path, protocol
// selection, and the latency advantage of skipping the CTS leg.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "mpi/cluster.hpp"
#include "net/fabric.hpp"

namespace mpisim = mv2gnc::mpisim;
namespace netsim = mv2gnc::netsim;
namespace core = mv2gnc::core;
namespace sim = mv2gnc::sim;
using mpisim::Cluster;
using mpisim::ClusterConfig;
using mpisim::Context;
using mpisim::Datatype;

namespace {

Datatype committed(Datatype t) {
  t.commit();
  return t;
}

// One-way host-contiguous latency under the given tunables.
sim::SimTime host_latency(bool rget, std::size_t n) {
  ClusterConfig cfg;
  cfg.tunables.rget = rget;
  Cluster cluster(cfg);
  sim::SimTime elapsed = 0;
  cluster.run([&](Context& ctx) {
    auto bytes = committed(Datatype::byte());
    std::vector<std::byte> buf(n, static_cast<std::byte>(ctx.rank + 1));
    ctx.comm.barrier();
    if (ctx.rank == 0) {
      ctx.comm.send(buf.data(), static_cast<int>(n), bytes, 1, 0);
    } else {
      const sim::SimTime t0 = ctx.engine->now();
      ctx.comm.recv(buf.data(), static_cast<int>(n), bytes, 0, 0);
      elapsed = ctx.engine->now() - t0;
      EXPECT_EQ(buf[0], std::byte{1});
      EXPECT_EQ(buf[n - 1], std::byte{1});
    }
  });
  return elapsed;
}

}  // namespace

TEST(NetRdmaRead, DataPulledCorrectly) {
  sim::Engine eng;
  netsim::Fabric fab(eng, 2, netsim::NetCostModel::qdr_ib());
  std::vector<std::byte> remote(8192);
  std::vector<std::byte> local(8192, std::byte{0});
  for (std::size_t i = 0; i < remote.size(); ++i) {
    remote[i] = static_cast<std::byte>(i * 3 & 0xFF);
  }
  eng.spawn("reader", [&] {
    sim::Notifier n(eng);
    fab.endpoint(1).set_wakeup(&n);
    const std::uint64_t wr = fab.endpoint(1).post_rdma_read(
        0, local.data(), remote.data(), remote.size());
    netsim::Completion c;
    while (!fab.endpoint(1).poll(c)) n.wait();
    EXPECT_EQ(c.type, netsim::CqType::kRdmaReadComplete);
    EXPECT_EQ(c.wr_id, wr);
    EXPECT_EQ(std::memcmp(local.data(), remote.data(), remote.size()), 0);
  });
  eng.run();
  EXPECT_EQ(fab.endpoint(1).rdma_reads(), 1u);
}

TEST(NetRdmaRead, CostsTwoLatenciesPlusServe) {
  sim::Engine eng;
  auto cost = netsim::NetCostModel::qdr_ib();
  netsim::Fabric fab(eng, 2, cost);
  std::vector<std::byte> remote(4096), local(4096);
  sim::SimTime done_at = -1;
  eng.spawn("reader", [&] {
    sim::Notifier n(eng);
    fab.endpoint(1).set_wakeup(&n);
    fab.endpoint(1).post_rdma_read(0, local.data(), remote.data(), 4096);
    netsim::Completion c;
    while (!fab.endpoint(1).poll(c)) n.wait();
    done_at = eng.now();
  });
  eng.run();
  const sim::SimTime expected = cost.post_overhead_ns + cost.latency_ns +
                                cost.per_msg_overhead_ns +
                                cost.wire_time(4096) + cost.latency_ns;
  EXPECT_EQ(done_at, expected);
}

TEST(NetRdmaRead, Validation) {
  sim::Engine eng;
  netsim::Fabric fab(eng, 2, netsim::NetCostModel::qdr_ib());
  eng.spawn("p", [&] {
    std::byte b;
    EXPECT_THROW(fab.endpoint(0).post_rdma_read(9, &b, &b, 1),
                 std::out_of_range);
    EXPECT_THROW(fab.endpoint(0).post_rdma_read(1, nullptr, &b, 1),
                 std::invalid_argument);
  });
  eng.run();
}

TEST(Rget, HostContiguousDelivery) {
  const std::size_t n = 1u << 20;
  EXPECT_GT(host_latency(true, n), 0);
}

TEST(Rget, SkipsTheCtsLeg) {
  // RGET replaces RTS -> CTS -> RDMA-write -> FIN with RTS -> RDMA-read,
  // saving control-message hops for large host-contiguous transfers.
  const std::size_t n = 4u << 20;
  const sim::SimTime rput = host_latency(false, n);
  const sim::SimTime rget = host_latency(true, n);
  EXPECT_LT(rget, rput);
}

TEST(Rget, DeviceBuffersStillUseThePipeline) {
  // RGET only applies to host-contiguous pairs; device transfers must keep
  // working (and keep their pipelined performance) with rget enabled.
  ClusterConfig cfg;
  cfg.tunables.rget = true;
  Cluster cluster(cfg);
  cluster.run([](Context& ctx) {
    auto col = committed(Datatype::vector(50'000, 1, 2, Datatype::float32()));
    const std::size_t span = 50'000ull * 8 + 16;
    auto* dev = static_cast<std::byte*>(ctx.cuda->malloc(span));
    if (ctx.rank == 0) {
      std::vector<std::byte> host(span, std::byte{0x42});
      ctx.cuda->memcpy(dev, host.data(), span);
      ctx.comm.send(dev, 1, col, 1, 0);
    } else {
      ctx.cuda->memset(dev, 0, span);
      ctx.comm.recv(dev, 1, col, 0, 0);
      std::vector<std::byte> got(span);
      ctx.cuda->memcpy(got.data(), dev, span);
      EXPECT_EQ(got[0], std::byte{0x42});
      EXPECT_EQ(got[49'999 * 8], std::byte{0x42});
    }
    ctx.cuda->free(dev);
  });
}

TEST(Rget, HostStridedReceiverFallsBackToRput) {
  // A strided receiver cannot RDMA-READ into place; it must take the
  // staged path even when the sender advertised an RGET address.
  ClusterConfig cfg;
  cfg.tunables.rget = true;
  Cluster cluster(cfg);
  cluster.run([](Context& ctx) {
    auto ints = committed(Datatype::int32());
    auto strided = committed(Datatype::vector(40'000, 1, 2, Datatype::int32()));
    if (ctx.rank == 0) {
      std::vector<int> v(40'000);
      std::iota(v.begin(), v.end(), 0);
      ctx.comm.send(v.data(), 40'000, ints, 1, 0);  // host contiguous send
    } else {
      std::vector<int> got(80'000, -1);
      ctx.comm.recv(got.data(), 1, strided, 0, 0);  // host strided recv
      EXPECT_EQ(got[0], 0);
      EXPECT_EQ(got[2 * 39'999], 39'999);
      EXPECT_EQ(got[1], -1);
    }
  });
}

TEST(Rget, ConfigRoundTrip) {
  core::Tunables t;
  t.rget = true;
  std::istringstream in(t.to_config_string());
  EXPECT_TRUE(core::Tunables::from_stream(in).rget);
}
