// Concurrency scaling: the per-rank transfer progress scheduler (vbuf QoS
// reservations, round-robin overflow turns, adaptive pipeline depth) and
// CHUNK_ACK/credit coalescing, exercised with N simultaneous rendezvous
// transfers — on clean fabrics and under seeded drops + delivery jitter.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "mpi/cluster.hpp"
#include "core/sched.hpp"
#include "net/fabric.hpp"

namespace mpisim = mv2gnc::mpisim;
namespace netsim = mv2gnc::netsim;
namespace core = mv2gnc::core;
namespace sim = mv2gnc::sim;
using mpisim::Cluster;
using mpisim::ClusterConfig;
using mpisim::Context;
using mpisim::Datatype;

namespace {

Datatype committed(Datatype t) {
  t.commit();
  return t;
}

void expect_pools_quiesced(Cluster& cluster) {
  for (int r = 0; r < cluster.config().ranks; ++r) {
    EXPECT_EQ(cluster.vbuf_audit(r), "") << "rank " << r;
    EXPECT_EQ(cluster.vbufs_in_use(r), cluster.graveyard_slots(r))
        << "rank " << r;
  }
}

std::byte pattern(std::size_t i, int transfer) {
  return static_cast<std::byte>(
      (i * 131 + static_cast<std::size_t>(transfer) * 29 + 7) & 0xFF);
}

struct ConcResult {
  std::size_t mismatches = 0;
  sim::SimTime elapsed = 0;
  /// Receiver-side completion spread: wait-return time of the first and
  /// last transfer. Fifo drains transfers one after another (big spread);
  /// fair interleaves them (they finish together).
  sim::SimTime first_done = 0;
  sim::SimTime last_done = 0;
  core::SchedStats sender;
  core::SchedStats receiver;
  core::RetryStats sender_retries;
  core::RetryStats receiver_retries;
  std::uint64_t faults_injected = 0;
};

// `transfers` simultaneous device-to-device rendezvous transfers from
// rank 0 to rank 1, all posted before any wait, each carrying 4 * rows
// payload bytes. Strided (vector of `rows` 4-byte columns — the pack
// pipeline) or contiguous (plain chunked staging; its stage frontier is
// pool-limited, not pack-kernel-limited, so it is the shape that actually
// contends for vbufs). Per-transfer byte patterns keyed by the tag,
// verified on arrival.
ConcResult run_concurrent(const ClusterConfig& cfg, int transfers, int rows,
                          bool strided = true) {
  Cluster cluster(cfg);
  ConcResult res;
  cluster.run([&](Context& ctx) {
    auto col = strided
                   ? committed(Datatype::vector(rows, 1, 2,
                                                Datatype::float32()))
                   : committed(Datatype::byte());
    const int count = strided ? 1 : rows * 4;
    const std::size_t span = strided
                                 ? static_cast<std::size_t>(rows) * 8 + 16
                                 : static_cast<std::size_t>(rows) * 4;
    std::vector<std::byte*> dev(static_cast<std::size_t>(transfers));
    for (auto& d : dev) d = static_cast<std::byte*>(ctx.cuda->malloc(span));
    std::vector<mpisim::Request> reqs;
    reqs.reserve(static_cast<std::size_t>(transfers));
    if (ctx.rank == 0) {
      std::vector<std::byte> host(span);
      for (int t = 0; t < transfers; ++t) {
        for (std::size_t i = 0; i < span; ++i) host[i] = pattern(i, t);
        ctx.cuda->memcpy(dev[static_cast<std::size_t>(t)], host.data(), span);
        reqs.push_back(ctx.comm.isend(dev[static_cast<std::size_t>(t)],
                                      count, col, 1, /*tag=*/t));
      }
      for (auto& r : reqs) ctx.comm.wait(r);
    } else {
      for (int t = 0; t < transfers; ++t) {
        ctx.cuda->memset(dev[static_cast<std::size_t>(t)], 0, span);
        reqs.push_back(ctx.comm.irecv(dev[static_cast<std::size_t>(t)],
                                      count, col, 0, /*tag=*/t));
      }
      for (int t = 0; t < transfers; ++t) {
        ctx.comm.wait(reqs[static_cast<std::size_t>(t)]);
        if (t == 0) res.first_done = ctx.engine->now();
        res.last_done = ctx.engine->now();
      }
      std::vector<std::byte> out(span);
      for (int t = 0; t < transfers; ++t) {
        ctx.cuda->memcpy(out.data(), dev[static_cast<std::size_t>(t)], span);
        if (strided) {
          for (int r = 0; r < rows; ++r) {
            const std::size_t off = static_cast<std::size_t>(r) * 8;
            for (std::size_t b = 0; b < 4; ++b) {
              if (out[off + b] != pattern(off + b, t)) ++res.mismatches;
            }
          }
        } else {
          for (std::size_t i = 0; i < span; i += 2099) {
            if (out[i] != pattern(i, t)) ++res.mismatches;
          }
        }
      }
    }
    ctx.comm.barrier();
    for (auto* d : dev) ctx.cuda->free(d);
  });
  expect_pools_quiesced(cluster);
  res.elapsed = cluster.elapsed();
  res.sender = cluster.sched_stats(0);
  res.receiver = cluster.sched_stats(1);
  res.sender_retries = cluster.retry_stats(0);
  res.receiver_retries = cluster.retry_stats(1);
  res.faults_injected = cluster.rank_stats(0).faults_injected +
                        cluster.rank_stats(1).faults_injected;
  return res;
}

ClusterConfig fair_config() {
  ClusterConfig cfg;
  cfg.tunables.sched_policy = core::SchedPolicy::kFair;
  cfg.tunables.chunk_select = core::ChunkSelect::kFixed;
  return cfg;
}

// Drops + delivery jitter on every rendezvous control kind, including the
// coalesced-ack batches; write faults on the data path. Eager traffic
// (barriers) stays clean.
void fault_rendezvous_control(netsim::FaultModel& fm, double drop_send,
                              double drop_imm, double fail_write,
                              sim::SimTime jitter_ns) {
  netsim::FaultSpec ctrl;
  ctrl.drop_send = drop_send;
  ctrl.jitter_ns = jitter_ns;
  for (int kind : {core::kRts, core::kCts, core::kChunkAck,
                   core::kChunkAckBatch, core::kRndvDone, core::kSendDone,
                   core::kRtsAck, core::kSendDoneAck, core::kSendAbort}) {
    fm.set_kind(kind, ctrl);
  }
  netsim::FaultSpec data;
  data.drop_imm = drop_imm;
  data.fail_write = fail_write;
  data.jitter_ns = jitter_ns;
  fm.set_kind(core::kChunkFin, data);
}

}  // namespace

TEST(Sched, ConcurrentFairTransfersSurviveFaultsByteExact) {
  // ISSUE acceptance: 8 simultaneous strided device transfers, fair QoS +
  // ack coalescing, on a fabric dropping 3% of control messages (batches
  // included), failing 0.5% of writes and jittering deliveries. Everything
  // completes byte-exact and the pool books balance afterwards.
  ClusterConfig cfg = fair_config();
  cfg.rng_seed = 42;
  cfg.tunables.ack_coalesce_window_ns = 30'000;
  cfg.tunables.vbuf_count = 16;
  cfg.tunables.rndv_timeout_ns = 400'000;
  cfg.tunables.rndv_max_retries = 40;
  fault_rendezvous_control(cfg.faults, /*drop_send=*/0.03, /*drop_imm=*/0.03,
                           /*fail_write=*/0.005, /*jitter_ns=*/5'000);
  const ConcResult res = run_concurrent(cfg, /*transfers=*/8, 1 << 16);
  EXPECT_EQ(res.mismatches, 0u);
  EXPECT_GT(res.faults_injected, 0u);
  EXPECT_EQ(res.sender_retries.transfer_failures, 0u);
  EXPECT_EQ(res.receiver_retries.transfer_failures, 0u);
  // All eight were in flight at once on both sides, and the fair gate saw
  // real traffic.
  EXPECT_EQ(res.sender.active_high_water, 8u);
  EXPECT_EQ(res.receiver.active_high_water, 8u);
  EXPECT_GT(res.sender.grants_reserve + res.sender.grants_overflow, 0u);
}

TEST(Sched, ConcurrentRunsAreDeterministicForFixedSeed) {
  ClusterConfig cfg = fair_config();
  cfg.rng_seed = 9;
  cfg.tunables.ack_coalesce_window_ns = 30'000;
  cfg.tunables.rndv_timeout_ns = 400'000;
  cfg.tunables.rndv_max_retries = 40;
  fault_rendezvous_control(cfg.faults, 0.03, 0.03, 0.005, 5'000);
  const ConcResult a = run_concurrent(cfg, 6, 1 << 15);
  const ConcResult b = run_concurrent(cfg, 6, 1 << 15);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.sender.denials, b.sender.denials);
  EXPECT_EQ(a.receiver.ack_batches, b.receiver.ack_batches);
  EXPECT_EQ(a.mismatches, 0u);
  EXPECT_EQ(b.mismatches, 0u);
}

TEST(Sched, DefaultTunablesKeepEveryGateIdle) {
  // fifo + window 0 is the ablation baseline: the scheduler observes (the
  // control census still counts) but never gates, queues or batches.
  ClusterConfig cfg;  // defaults: kFifo, ack_coalesce_window_ns = 0
  const ConcResult res = run_concurrent(cfg, 4, 1 << 16);
  EXPECT_EQ(res.mismatches, 0u);
  for (const core::SchedStats* s : {&res.sender, &res.receiver}) {
    EXPECT_EQ(s->denials, 0u);
    EXPECT_EQ(s->queue_waits, 0u);
    EXPECT_EQ(s->grants_reserve + s->grants_overflow, 0u);
    EXPECT_EQ(s->ack_batches, 0u);
    EXPECT_EQ(s->acks_coalesced, 0u);
    EXPECT_EQ(s->depth_shrinks + s->depth_grows, 0u);
  }
  // ... while the observability census still sees the protocol.
  EXPECT_EQ(res.sender.ctrl_by_kind[core::kRts], 4u);
  EXPECT_GT(res.receiver.ctrl_by_kind[core::kChunkAck], 0u);
  EXPECT_GT(res.receiver.ctrl_by_kind[core::kCts], 0u);
}

TEST(Sched, CoalescingCutsAckMessagesOnTheWire) {
  // ISSUE acceptance: with ack_coalesce_window_ns > 0 the control-message
  // count per transfer drops measurably — acks ride in batches instead of
  // one message each — at identical payload correctness.
  ClusterConfig base;
  base.tunables.chunk_select = core::ChunkSelect::kFixed;
  ClusterConfig coalesced = base;
  coalesced.tunables.ack_coalesce_window_ns = 200'000;
  const ConcResult individual = run_concurrent(base, 4, 1 << 16);
  const ConcResult batched = run_concurrent(coalesced, 4, 1 << 16);
  EXPECT_EQ(individual.mismatches, 0u);
  EXPECT_EQ(batched.mismatches, 0u);
  // Baseline: every chunk ack is its own wire message.
  EXPECT_GT(individual.receiver.acks_individual, 0u);
  EXPECT_EQ(individual.receiver.ack_batches, 0u);
  // Coalesced: batches exist, and the number of ack-bearing wire messages
  // (singles + batches) shrank.
  EXPECT_GT(batched.receiver.ack_batches, 0u);
  EXPECT_GT(batched.receiver.coalesce_ratio(), 0.0);
  EXPECT_LT(batched.receiver.acks_individual + batched.receiver.ack_batches,
            individual.receiver.acks_individual);
  EXPECT_LT(batched.receiver.ctrl_total(), individual.receiver.ctrl_total());
}

TEST(Sched, CoalescedAckLossRecovers) {
  // Dropping 40% of both ack forms forces chunk retransmission; duplicate
  // fins are answered with stored-ack replays (which bypass the coalescing
  // window — recovery traffic must not idle in a batch).
  ClusterConfig cfg = fair_config();
  cfg.rng_seed = 23;
  cfg.tunables.ack_coalesce_window_ns = 100'000;
  cfg.tunables.rndv_timeout_ns = 300'000;
  cfg.tunables.rndv_max_retries = 60;
  netsim::FaultSpec ack_loss;
  ack_loss.drop_send = 0.4;
  cfg.faults.set_kind(core::kChunkAck, ack_loss);
  cfg.faults.set_kind(core::kChunkAckBatch, ack_loss);
  const ConcResult res = run_concurrent(cfg, 4, 1 << 16);
  EXPECT_EQ(res.mismatches, 0u);
  EXPECT_GT(res.sender_retries.chunk_retransmits, 0u);
  EXPECT_EQ(res.sender_retries.transfer_failures, 0u);
  EXPECT_EQ(res.receiver_retries.transfer_failures, 0u);
}

TEST(Sched, FairShrinksCompletionSpreadUnderPoolContention) {
  // Four 512 KB transfers over an 8-slot pool. Under fifo the early
  // transfers hoover the pool and the rest drain one after another; fair
  // reserves slots per transfer, so completions bunch together and no
  // transfer waits longer than the stall watchdog would tolerate.
  ClusterConfig fifo;
  fifo.tunables.chunk_select = core::ChunkSelect::kFixed;
  fifo.tunables.vbuf_count = 8;
  fifo.tunables.recv_window = 4;
  fifo.tunables.rndv_timeout_ns = 300'000;
  fifo.tunables.rndv_max_retries = 100;
  ClusterConfig fair = fifo;
  fair.tunables.sched_policy = core::SchedPolicy::kFair;
  const ConcResult f = run_concurrent(fifo, 4, 1 << 17, /*strided=*/false);
  const ConcResult q = run_concurrent(fair, 4, 1 << 17, /*strided=*/false);
  EXPECT_EQ(f.mismatches, 0u);
  EXPECT_EQ(q.mismatches, 0u);
  // The fair gate actually arbitrated (denials resolved into queue waits
  // with measurable latency) ...
  EXPECT_GT(q.sender.denials, 0u);
  EXPECT_GT(q.sender.queue_waits, 0u);
  EXPECT_GT(q.sender.avg_queue_wait_ns(), 0);
  // ... and sharing beats hogging on both fairness axes: completions bunch
  // and starvation-driven pinned-slot fallbacks do not increase.
  EXPECT_LE(q.last_done - q.first_done, f.last_done - f.first_done);
  EXPECT_LE(q.sender_retries.stall_fallbacks + q.receiver_retries.stall_fallbacks,
            f.sender_retries.stall_fallbacks + f.receiver_retries.stall_fallbacks);
}

TEST(Sched, BytesWeightedPolicyCompletesByteExact) {
  ClusterConfig cfg = fair_config();
  cfg.tunables.sched_policy = core::SchedPolicy::kBytesWeighted;
  cfg.tunables.vbuf_count = 8;
  cfg.tunables.recv_window = 4;
  const ConcResult res = run_concurrent(cfg, 4, 1 << 16);
  EXPECT_EQ(res.mismatches, 0u);
  EXPECT_EQ(res.sender_retries.transfer_failures, 0u);
}

// One contiguous device-to-device transfer of `bytes` (the D2H staging
// path, no pack kernels — so the scheduler's in-flight cap, not the pack
// engine, is what limits the stage frontier). Returns the run's elapsed
// virtual time; the payload is verified inside.
sim::SimTime run_contig(const ClusterConfig& cfg, int bytes) {
  Cluster cluster(cfg);
  std::size_t mismatches = 0;
  cluster.run([&](Context& ctx) {
    auto byte_t = committed(Datatype::byte());
    auto* dev = static_cast<std::byte*>(
        ctx.cuda->malloc(static_cast<std::size_t>(bytes)));
    if (ctx.rank == 0) {
      std::vector<std::byte> host(static_cast<std::size_t>(bytes));
      for (int i = 0; i < bytes; ++i) {
        host[static_cast<std::size_t>(i)] = pattern(
            static_cast<std::size_t>(i), 0);
      }
      ctx.cuda->memcpy(dev, host.data(), static_cast<std::size_t>(bytes));
      ctx.comm.send(dev, bytes, byte_t, 1, 0);
    } else {
      ctx.cuda->memset(dev, 0, static_cast<std::size_t>(bytes));
      ctx.comm.recv(dev, bytes, byte_t, 0, 0);
      std::vector<std::byte> out(static_cast<std::size_t>(bytes));
      ctx.cuda->memcpy(out.data(), dev, static_cast<std::size_t>(bytes));
      for (int i = 0; i < bytes; i += 2099) {
        if (out[static_cast<std::size_t>(i)] !=
            pattern(static_cast<std::size_t>(i), 0)) {
          ++mismatches;
        }
      }
    }
    ctx.comm.barrier();
    ctx.cuda->free(dev);
  });
  EXPECT_EQ(mismatches, 0u);
  expect_pools_quiesced(cluster);
  return cluster.elapsed();
}

TEST(Sched, InflightCapOneSerializesThePipeline) {
  // max_inflight_chunks = 1 degenerates the pipeline to chunk-at-a-time
  // (each chunk waits for the previous chunk's ack — the paper's n = 1
  // non-pipelined shape): still byte-exact, strictly slower than the
  // windowed pipeline.
  ClusterConfig windowed = fair_config();
  ClusterConfig capped = fair_config();
  capped.tunables.max_inflight_chunks = 1;
  const sim::SimTime fast = run_contig(windowed, 1 << 20);
  const sim::SimTime slow = run_contig(capped, 1 << 20);
  EXPECT_GT(slow, fast);
}

TEST(Sched, AdaptiveDepthShrinksUnderContentionAndGrowsBackWhenCalm) {
  // Phase 1: four contiguous 512 KB transfers fight over an 8-slot pool —
  // pool-contended denials halve the sender's pipeline depth. Phase 2
  // (same run, after a barrier): a lone 1 MB transfer sails through the
  // now-idle pool, and runs of calm grants climb the depth back up.
  ClusterConfig cfg = fair_config();
  cfg.tunables.vbuf_count = 8;
  cfg.tunables.recv_window = 4;
  cfg.tunables.rndv_timeout_ns = 300'000;
  cfg.tunables.rndv_max_retries = 100;
  Cluster cluster(cfg);
  const int transfers = 4;
  cluster.run([&](Context& ctx) {
    auto byte_t = committed(Datatype::byte());
    const int n = 1 << 19;  // 512 KB, 8 chunks
    std::vector<std::byte*> dev(static_cast<std::size_t>(transfers));
    for (auto& d : dev) {
      d = static_cast<std::byte*>(
          ctx.cuda->malloc(static_cast<std::size_t>(n)));
    }
    std::vector<mpisim::Request> reqs;
    for (int t = 0; t < transfers; ++t) {
      if (ctx.rank == 0) {
        reqs.push_back(
            ctx.comm.isend(dev[static_cast<std::size_t>(t)], n, byte_t, 1, t));
      } else {
        reqs.push_back(
            ctx.comm.irecv(dev[static_cast<std::size_t>(t)], n, byte_t, 0, t));
      }
    }
    for (auto& r : reqs) ctx.comm.wait(r);
    ctx.comm.barrier();
    // Phase 2: calm — one transfer, 16 chunks, pool to itself.
    const int big_n = 1 << 20;
    auto* big = static_cast<std::byte*>(
        ctx.cuda->malloc(static_cast<std::size_t>(big_n)));
    if (ctx.rank == 0) {
      ctx.comm.send(big, big_n, byte_t, 1, 99);
    } else {
      ctx.comm.recv(big, big_n, byte_t, 0, 99);
    }
    ctx.comm.barrier();
    ctx.cuda->free(big);
    for (auto* d : dev) ctx.cuda->free(d);
  });
  expect_pools_quiesced(cluster);
  const core::SchedStats& snd = cluster.sched_stats(0);
  EXPECT_GT(snd.denials, 0u);
  EXPECT_GT(snd.depth_shrinks, 0u);
  EXPECT_GT(snd.depth_grows, 0u);
}

TEST(Sched, EcnMarkHalvesDepthAndCleanStreakGrowsItBack) {
  // Unit-level: drive the scheduler's ECN control loop directly. Under
  // kFifo with marking armed the depth opens at the ceiling, one marked
  // ack halves it, marks within the same episode are absorbed, and
  // ecn_restore_chunks clean acks earn one step back.
  sim::Engine eng;
  netsim::Fabric fab(eng, 2, netsim::NetCostModel::qdr_ib());
  core::FabricTransport ft(fab.endpoint(0));
  core::TransportRouter router(ft);
  core::VbufPool pool(32, 64 * 1024);
  core::Tunables tun;
  tun.ecn_backlog_ns = 1000;
  tun.ecn_restore_chunks = 4;
  core::TransferScheduler sched(eng, pool, tun, router);
  ASSERT_TRUE(sched.ecn_enabled());
  sched.register_transfer(7, 1 << 20);
  const std::size_t open = sched.inflight_cap();
  EXPECT_GT(open, 1u);
  sched.note_chunk_ack(7, /*congested=*/true);
  EXPECT_EQ(sched.inflight_cap(), open / 2);
  EXPECT_EQ(sched.stats().ecn_marks, 1u);
  EXPECT_EQ(sched.stats().depth_shrinks_ecn, 1u);
  EXPECT_EQ(sched.transfer_ecn_marks(7), 1u);
  // A second mark right behind the first describes the same congestion
  // episode (rate limit: one halving per depth's worth of acks).
  sched.note_chunk_ack(7, /*congested=*/true);
  EXPECT_EQ(sched.inflight_cap(), open / 2);
  EXPECT_EQ(sched.stats().ecn_marks, 2u);
  EXPECT_EQ(sched.stats().depth_shrinks_ecn, 1u);
  // Hysteresis growth: exactly ecn_restore_chunks clean acks per step.
  for (int i = 0; i < 3; ++i) sched.note_chunk_ack(7, false);
  EXPECT_EQ(sched.inflight_cap(), open / 2);
  sched.note_chunk_ack(7, false);
  EXPECT_EQ(sched.inflight_cap(), open / 2 + 1);
  EXPECT_EQ(sched.stats().depth_grows_ecn, 1u);
}

TEST(Sched, EcnDisabledIgnoresMarkedAcks) {
  sim::Engine eng;
  netsim::Fabric fab(eng, 2, netsim::NetCostModel::qdr_ib());
  core::FabricTransport ft(fab.endpoint(0));
  core::TransportRouter router(ft);
  core::VbufPool pool(32, 64 * 1024);
  core::Tunables tun;  // ecn_backlog_ns = 0: feedback off
  core::TransferScheduler sched(eng, pool, tun, router);
  ASSERT_FALSE(sched.ecn_enabled());
  sched.register_transfer(3, 1 << 20);
  const std::size_t cap = sched.inflight_cap();
  sched.note_chunk_ack(3, /*congested=*/true);
  EXPECT_EQ(sched.inflight_cap(), cap);
  EXPECT_EQ(sched.stats().ecn_marks, 0u);
  EXPECT_EQ(sched.stats().depth_shrinks_ecn, 0u);
}

TEST(Sched, EcnFeedbackThrottlesFunneledIncastEndToEnd) {
  // Two senders on the far leaf of a one-uplink fat tree both push 1 MB at
  // rank 0: every chunk fin funnels through one shared uplink, queues past
  // the threshold, gets marked, and the echoed marks shrink the senders'
  // pipeline depth. Data must still land byte-exact.
  ClusterConfig cfg;
  cfg.ranks = 4;
  cfg.topology = netsim::FabricTopology::fat_tree(2, 2.0);  // 1 uplink/leaf
  cfg.tunables.chunk_select = core::ChunkSelect::kFixed;
  cfg.tunables.ecn_backlog_ns = 10'000;
  cfg.tunables.ecn_restore_chunks = 4;
  Cluster cluster(cfg);
  std::size_t mismatches = 0;
  cluster.run([&](Context& ctx) {
    auto byte_t = committed(Datatype::byte());
    const int n = 1 << 20;  // 16 chunks at the fixed 64 KB
    if (ctx.rank == 2 || ctx.rank == 3) {
      std::vector<std::byte> host(static_cast<std::size_t>(n));
      for (std::size_t i = 0; i < host.size(); ++i) {
        host[i] = pattern(i, ctx.rank);
      }
      auto* dev = static_cast<std::byte*>(
          ctx.cuda->malloc(static_cast<std::size_t>(n)));
      ctx.cuda->memcpy(dev, host.data(), host.size());
      ctx.comm.send(dev, n, byte_t, 0, ctx.rank);
      ctx.cuda->free(dev);
    } else if (ctx.rank == 0) {
      // Both receives posted up front so the two senders stream their
      // chunk pipelines concurrently — sequential receives would let each
      // transfer run alone and the shared links would never queue.
      std::byte* dev[2];
      std::vector<mpisim::Request> reqs;
      for (int i = 0; i < 2; ++i) {
        dev[i] = static_cast<std::byte*>(
            ctx.cuda->malloc(static_cast<std::size_t>(n)));
        ctx.cuda->memset(dev[i], 0, static_cast<std::size_t>(n));
        reqs.push_back(ctx.comm.irecv(dev[i], n, byte_t, 2 + i, 2 + i));
      }
      ctx.comm.waitall(reqs);
      for (int i = 0; i < 2; ++i) {
        std::vector<std::byte> out(static_cast<std::size_t>(n));
        ctx.cuda->memcpy(out.data(), dev[i], out.size());
        for (std::size_t j = 0; j < out.size(); j += 4099) {
          if (out[j] != pattern(j, 2 + i)) ++mismatches;
        }
        ctx.cuda->free(dev[i]);
      }
    }
    ctx.comm.barrier();
  });
  EXPECT_EQ(mismatches, 0u);
  expect_pools_quiesced(cluster);
  std::uint64_t marks = 0;
  std::uint64_t shrinks = 0;
  for (int r = 0; r < cfg.ranks; ++r) {
    marks += cluster.sched_stats(r).ecn_marks;
    shrinks += cluster.sched_stats(r).depth_shrinks_ecn;
  }
  EXPECT_GT(marks, 0u);
  EXPECT_GT(shrinks, 0u);
  // The fabric counted the same congestion the senders reacted to.
  std::uint64_t link_marks = 0;
  for (const netsim::LinkStats& l : cluster.link_stats()) {
    link_marks += l.ecn_marks;
  }
  EXPECT_GT(link_marks, 0u);
}
