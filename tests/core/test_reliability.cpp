// Reliable rendezvous under an adversarial fabric: retransmission after
// control-message loss and RDMA write errors, idempotent duplicate receipt,
// bounded failure, stall-watchdog fallback, and seeded determinism.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "mpi/cluster.hpp"

namespace mpisim = mv2gnc::mpisim;
namespace netsim = mv2gnc::netsim;
namespace core = mv2gnc::core;
namespace sim = mv2gnc::sim;
using mpisim::Cluster;
using mpisim::ClusterConfig;
using mpisim::Context;
using mpisim::Datatype;

namespace {

Datatype committed(Datatype t) {
  t.commit();
  return t;
}

// Pool-accounting invariant, asserted after every run in this suite: the
// vbuf arena's books must balance (audit() == "") and every slot still
// checked out must be parked in the graveyard — slots that failed/finished
// transfers could not release safely and that are freed only at teardown.
// Catches double-releases, leaks and free-list corruption under faults.
void expect_pools_quiesced(Cluster& cluster) {
  for (int r = 0; r < cluster.config().ranks; ++r) {
    EXPECT_EQ(cluster.vbuf_audit(r), "") << "rank " << r;
    EXPECT_EQ(cluster.vbufs_in_use(r), cluster.graveyard_slots(r))
        << "rank " << r;
  }
}

// Attach a fault spec to every rendezvous control kind (RTS/CTS/ack/dones)
// and a write-fault spec to the chunk-fin immediates. Eager traffic (used
// by barriers) stays clean: the reliability layer covers rendezvous only.
void fault_rendezvous_control(netsim::FaultModel& fm, double drop_send,
                              double drop_imm, double fail_write) {
  netsim::FaultSpec ctrl;
  ctrl.drop_send = drop_send;
  for (int kind : {core::kRts, core::kCts, core::kChunkAck, core::kRndvDone,
                   core::kSendDone, core::kRtsAck, core::kSendDoneAck,
                   core::kSendAbort}) {
    fm.set_kind(kind, ctrl);
  }
  netsim::FaultSpec data;
  data.drop_imm = drop_imm;
  data.fail_write = fail_write;
  fm.set_kind(core::kChunkFin, data);
}

struct SoakResult {
  sim::SimTime elapsed = 0;
  core::RetryStats sender;
  core::RetryStats receiver;
  std::uint64_t faults_injected = 0;
  std::size_t mismatches = 0;
};

// Pipelined strided device-to-device transfer of `rows` 4-byte rows
// (packed size = 4 * rows) from rank 0 to rank 1 on a faulty fabric,
// ending in a barrier. Returns counters and the number of byte mismatches.
SoakResult run_soak(const ClusterConfig& cfg, int rows) {
  Cluster cluster(cfg);
  SoakResult res;
  cluster.run([&](Context& ctx) {
    auto col = committed(Datatype::vector(rows, 1, 2, Datatype::float32()));
    const std::size_t span = static_cast<std::size_t>(rows) * 8 + 16;
    auto* dev = static_cast<std::byte*>(ctx.cuda->malloc(span));
    if (ctx.rank == 0) {
      std::vector<std::byte> host(span);
      for (std::size_t i = 0; i < span; ++i) {
        host[i] = static_cast<std::byte>((i * 131 + 7) & 0xFF);
      }
      ctx.cuda->memcpy(dev, host.data(), span);
      ctx.comm.send(dev, 1, col, 1, 0);
    } else {
      ctx.cuda->memset(dev, 0, span);
      ctx.comm.recv(dev, 1, col, 0, 0);
      std::vector<std::byte> out(span);
      ctx.cuda->memcpy(out.data(), dev, span);
      for (int r = 0; r < rows; ++r) {
        const std::size_t off = static_cast<std::size_t>(r) * 8;
        for (std::size_t b = 0; b < 4; ++b) {
          if (out[off + b] !=
              static_cast<std::byte>(((off + b) * 131 + 7) & 0xFF)) {
            ++res.mismatches;
          }
        }
      }
    }
    ctx.comm.barrier();
    ctx.cuda->free(dev);
  });
  expect_pools_quiesced(cluster);
  res.elapsed = cluster.elapsed();
  res.sender = cluster.retry_stats(0);
  res.receiver = cluster.retry_stats(1);
  res.faults_injected = cluster.rank_stats(0).faults_injected +
                        cluster.rank_stats(1).faults_injected;
  return res;
}

ClusterConfig lossy_config(std::uint64_t seed) {
  ClusterConfig cfg;
  cfg.rng_seed = seed;
  cfg.tunables.rndv_timeout_ns = 200'000;  // fast recovery in sim time
  cfg.tunables.rndv_max_retries = 25;
  fault_rendezvous_control(cfg.faults, /*drop_send=*/0.05,
                           /*drop_imm=*/0.05, /*fail_write=*/0.01);
  return cfg;
}

}  // namespace

TEST(Reliability, LossySoakDeliversByteIdentical) {
  // ISSUE acceptance: >= 4 MB pipelined strided device transfer across a
  // fabric dropping 5% of control messages and failing 1% of RDMA writes
  // arrives byte-identical, with nonzero retransmission counters.
  const SoakResult res = run_soak(lossy_config(2024), 1 << 20);  // 4 MB
  EXPECT_EQ(res.mismatches, 0u);
  EXPECT_GT(res.faults_injected, 0u);
  EXPECT_GT(res.sender.total_retransmits() + res.receiver.total_retransmits(),
            0u);
  EXPECT_EQ(res.sender.transfer_failures, 0u);
  EXPECT_EQ(res.receiver.transfer_failures, 0u);
}

TEST(Reliability, LossySoakIsDeterministicForFixedSeed) {
  const SoakResult a = run_soak(lossy_config(7), 1 << 19);
  const SoakResult b = run_soak(lossy_config(7), 1 << 19);
  EXPECT_EQ(a.elapsed, b.elapsed);
  EXPECT_EQ(a.faults_injected, b.faults_injected);
  EXPECT_EQ(a.sender.total_retransmits(), b.sender.total_retransmits());
  EXPECT_EQ(a.sender.timeouts, b.sender.timeouts);
  EXPECT_EQ(a.receiver.acks_resent, b.receiver.acks_resent);
  EXPECT_EQ(a.mismatches, 0u);
  EXPECT_EQ(b.mismatches, 0u);
}

TEST(Reliability, FaultFreeRunsInjectNothingAndRetransmitNothing) {
  ClusterConfig cfg;  // benign FaultModel
  const SoakResult res = run_soak(cfg, 1 << 19);
  EXPECT_EQ(res.mismatches, 0u);
  EXPECT_EQ(res.faults_injected, 0u);
  EXPECT_EQ(res.sender.total_retransmits(), 0u);
  EXPECT_EQ(res.sender.timeouts, 0u);
  EXPECT_EQ(res.receiver.duplicates_dropped, 0u);
}

TEST(Reliability, AckLossReplaysStoredAcks) {
  // Dropping half the CHUNK_ACKs forces the sender to retransmit chunks it
  // already delivered; the receiver answers the duplicate fins by replaying
  // the stored ack instead of re-landing the data.
  ClusterConfig cfg;
  cfg.rng_seed = 11;
  cfg.tunables.rndv_timeout_ns = 200'000;
  cfg.tunables.rndv_max_retries = 40;
  netsim::FaultSpec ack_loss;
  ack_loss.drop_send = 0.5;
  cfg.faults.set_kind(core::kChunkAck, ack_loss);
  const SoakResult res = run_soak(cfg, 1 << 19);  // 2 MB
  EXPECT_EQ(res.mismatches, 0u);
  EXPECT_GT(res.sender.chunk_retransmits, 0u);
  EXPECT_GT(res.receiver.acks_resent, 0u);
  EXPECT_EQ(res.sender.transfer_failures, 0u);
}

TEST(Reliability, CtsLossRecoversViaRtsRetransmit) {
  ClusterConfig cfg;
  cfg.rng_seed = 5;
  cfg.tunables.rndv_timeout_ns = 200'000;
  cfg.tunables.rndv_max_retries = 40;
  netsim::FaultSpec cts_loss;
  cts_loss.drop_send = 0.7;
  cfg.faults.set_kind(core::kCts, cts_loss);
  const SoakResult res = run_soak(cfg, 1 << 18);  // 1 MB
  EXPECT_EQ(res.mismatches, 0u);
  // The receiver replayed its stored CTS at least once for a dup RTS, or
  // a retransmitted CTS got through; either way RTS retransmits happened.
  EXPECT_GT(res.sender.rts_retransmits, 0u);
  EXPECT_EQ(res.sender.transfer_failures, 0u);
}

TEST(Reliability, ExhaustedRetriesFailTheRequestInBoundedSimTime) {
  // A black-hole path (every RTS lost) must surface RequestError at the
  // sender within the retry budget's total backoff window — not hang.
  ClusterConfig cfg;
  cfg.rng_seed = 3;
  cfg.tunables.rndv_timeout_ns = 1'000'000;  // 1 ms
  cfg.tunables.rndv_max_retries = 3;
  cfg.tunables.rndv_backoff_factor = 2.0;
  netsim::FaultSpec black_hole;
  black_hole.drop_send = 1.0;
  cfg.faults.set_pair(0, 1, black_hole);
  Cluster cluster(cfg);
  bool threw = false;
  std::string what;
  sim::SimTime failed_at = 0;
  cluster.run([&](Context& ctx) {
    if (ctx.rank != 0) return;  // rank 1 never posts; the RTS is lost anyway
    std::vector<std::byte> buf(1 << 20, std::byte{1});
    auto byte_t = committed(Datatype::byte());
    auto req = ctx.comm.isend(buf.data(), 1 << 20, byte_t, 1, 0);
    try {
      ctx.comm.wait(req);
    } catch (const mpisim::RequestError& e) {
      threw = true;
      what = e.what();
      failed_at = ctx.engine->now();
    }
  });
  expect_pools_quiesced(cluster);
  EXPECT_TRUE(threw);
  EXPECT_NE(what.find("timed out"), std::string::npos);
  // Deadlines: 1ms grace + 1+2+4+8 ms of backed-off retries, plus slack.
  EXPECT_LE(failed_at, sim::SimTime{20'000'000});
  EXPECT_GE(failed_at, sim::SimTime{4'000'000});
  EXPECT_EQ(cluster.retry_stats(0).transfer_failures, 1u);
  EXPECT_EQ(cluster.retry_stats(0).timeouts, 4u);  // max_retries + 1
}

TEST(Reliability, StallWatchdogDegradesToPinnedSlots) {
  // Two pooled vbufs, sixteen chunks, and a timeout far below the transmit
  // drain time: the stage frontier starves while both slots sit under
  // unacknowledged in-flight writes. The watchdog must grant a one-off
  // pinned slot rather than let the transfer idle until the acks return.
  ClusterConfig cfg;
  cfg.rng_seed = 1;
  cfg.tunables.vbuf_count = 2;
  cfg.tunables.recv_window = 2;
  // Pool-sized 64 KB chunks: this test exercises vbuf-pool stall recovery,
  // which model-selected (larger, pinned one-off) chunks would bypass.
  cfg.tunables.chunk_select = core::ChunkSelect::kFixed;
  cfg.tunables.rndv_timeout_ns = 3'000;  // 3 us, well under chunk tx time
  cfg.tunables.rndv_max_retries = 200;   // never fail, only stall-recover
  Cluster cluster(cfg);
  std::size_t mismatches = 0;
  cluster.run([&](Context& ctx) {
    const int n = 1 << 20;  // 1 MB contiguous device buffer, 16 chunks
    auto byte_t = committed(Datatype::byte());
    auto* dev = static_cast<std::byte*>(ctx.cuda->malloc(n));
    if (ctx.rank == 0) {
      std::vector<std::byte> host(n);
      for (int i = 0; i < n; ++i) {
        host[static_cast<std::size_t>(i)] =
            static_cast<std::byte>((i * 31) & 0xFF);
      }
      ctx.cuda->memcpy(dev, host.data(), static_cast<std::size_t>(n));
      ctx.comm.send(dev, n, byte_t, 1, 0);
    } else {
      ctx.cuda->memset(dev, 0, static_cast<std::size_t>(n));
      ctx.comm.recv(dev, n, byte_t, 0, 0);
      std::vector<std::byte> out(static_cast<std::size_t>(n));
      ctx.cuda->memcpy(out.data(), dev, static_cast<std::size_t>(n));
      for (int i = 0; i < n; i += 4097) {
        if (out[static_cast<std::size_t>(i)] !=
            static_cast<std::byte>((i * 31) & 0xFF)) {
          ++mismatches;
        }
      }
    }
    ctx.comm.barrier();
    ctx.cuda->free(dev);
  });
  expect_pools_quiesced(cluster);
  EXPECT_EQ(mismatches, 0u);
  EXPECT_GT(cluster.retry_stats(0).stall_fallbacks, 0u);
  EXPECT_EQ(cluster.retry_stats(0).transfer_failures, 0u);
}

TEST(Reliability, RgetDoneLossIsReplayedOnDuplicateRts) {
  // Receiver-driven rendezvous: the kRndvDone is the only completion signal
  // the sender gets. Losing it must be recovered by the RTS-retransmit /
  // done-replay pair.
  ClusterConfig cfg;
  cfg.rng_seed = 21;
  cfg.tunables.rget = true;
  cfg.tunables.rndv_timeout_ns = 200'000;
  cfg.tunables.rndv_max_retries = 40;
  netsim::FaultSpec done_loss;
  done_loss.drop_send = 0.8;
  cfg.faults.set_kind(core::kRndvDone, done_loss);
  Cluster cluster(cfg);
  std::size_t mismatches = 0;
  cluster.run([&](Context& ctx) {
    const int n = 1 << 20;  // host-contiguous 1 MB: the RGET-eligible shape
    auto byte_t = committed(Datatype::byte());
    std::vector<std::byte> buf(static_cast<std::size_t>(n));
    if (ctx.rank == 0) {
      for (int i = 0; i < n; ++i) {
        buf[static_cast<std::size_t>(i)] =
            static_cast<std::byte>((i * 17 + 3) & 0xFF);
      }
      ctx.comm.send(buf.data(), n, byte_t, 1, 0);
    } else {
      ctx.comm.recv(buf.data(), n, byte_t, 0, 0);
      for (int i = 0; i < n; i += 991) {
        if (buf[static_cast<std::size_t>(i)] !=
            static_cast<std::byte>((i * 17 + 3) & 0xFF)) {
          ++mismatches;
        }
      }
    }
    ctx.comm.barrier();
  });
  expect_pools_quiesced(cluster);
  EXPECT_EQ(mismatches, 0u);
  const core::RetryStats& snd = cluster.retry_stats(0);
  const core::RetryStats& rcv = cluster.retry_stats(1);
  EXPECT_GT(snd.rts_retransmits, 0u);
  EXPECT_GT(rcv.done_resent, 0u);
  EXPECT_EQ(snd.transfer_failures, 0u);
}

TEST(Reliability, LateReceiverOutlastsRetryBudget) {
  // A fault-free fabric, a sender whose whole retry budget spans ~1.4 ms,
  // and a receiver that posts the matching recv only after 50 ms. The
  // receiver's RTS_ACK must keep refreshing the sender's budget: a late
  // receiver is legal MPI, not message loss, so the transfer succeeds.
  ClusterConfig cfg;
  cfg.tunables.rndv_timeout_ns = 200'000;  // 200 us
  cfg.tunables.rndv_max_retries = 3;       // budget alone: ~1.4 ms << 50 ms
  Cluster cluster(cfg);
  std::size_t mismatches = 0;
  cluster.run([&](Context& ctx) {
    const int n = 1 << 20;
    auto byte_t = committed(Datatype::byte());
    std::vector<std::byte> buf(static_cast<std::size_t>(n));
    if (ctx.rank == 0) {
      for (int i = 0; i < n; ++i) {
        buf[static_cast<std::size_t>(i)] =
            static_cast<std::byte>((i * 7 + 1) & 0xFF);
      }
      ctx.comm.send(buf.data(), n, byte_t, 1, 0);
    } else {
      ctx.engine->delay(sim::milliseconds(50));  // RTS sits unexpected
      ctx.comm.recv(buf.data(), n, byte_t, 0, 0);
      for (int i = 0; i < n; i += 769) {
        if (buf[static_cast<std::size_t>(i)] !=
            static_cast<std::byte>((i * 7 + 1) & 0xFF)) {
          ++mismatches;
        }
      }
    }
    ctx.comm.barrier();
  });
  expect_pools_quiesced(cluster);
  EXPECT_EQ(mismatches, 0u);
  const core::RetryStats& snd = cluster.retry_stats(0);
  // The sender probed (far) past its nominal budget without giving up.
  EXPECT_GT(snd.rts_retransmits, cfg.tunables.rndv_max_retries);
  EXPECT_EQ(snd.transfer_failures, 0u);
  EXPECT_EQ(cluster.retry_stats(1).transfer_failures, 0u);
}

TEST(Reliability, SenderFailurePropagatesAbortToMatchedReceiver) {
  // Every chunk write's fin immediate is swallowed, so the sender exhausts
  // its budget with the rendezvous established. The SEND_ABORT must fail
  // the matched receive as a bounded per-request RequestError on rank 1 —
  // not leave it blocked until the engine's deadlock detector kills the
  // whole simulation.
  ClusterConfig cfg;
  cfg.rng_seed = 13;
  cfg.tunables.rndv_timeout_ns = 200'000;
  cfg.tunables.rndv_max_retries = 3;
  netsim::FaultSpec swallow;
  swallow.drop_imm = 1.0;
  cfg.faults.set_kind(core::kChunkFin, swallow);
  Cluster cluster(cfg);
  bool sender_threw = false;
  bool receiver_threw = false;
  std::string receiver_what;
  sim::SimTime receiver_failed_at = 0;
  cluster.run([&](Context& ctx) {
    const int n = 1 << 20;
    auto byte_t = committed(Datatype::byte());
    auto* dev = static_cast<std::byte*>(ctx.cuda->malloc(n));
    try {
      if (ctx.rank == 0) {
        ctx.comm.send(dev, n, byte_t, 1, 0);
      } else {
        ctx.comm.recv(dev, n, byte_t, 0, 0);
      }
    } catch (const mpisim::RequestError& e) {
      if (ctx.rank == 0) {
        sender_threw = true;
      } else {
        receiver_threw = true;
        receiver_what = e.what();
        receiver_failed_at = ctx.engine->now();
      }
    }
    ctx.cuda->free(dev);
  });
  expect_pools_quiesced(cluster);
  EXPECT_TRUE(sender_threw);
  EXPECT_TRUE(receiver_threw);
  EXPECT_NE(receiver_what.find("abort"), std::string::npos);
  // The abort arrives moments after the sender gives up (~3 ms of backed-off
  // retries) — far inside the receiver's own ~25 ms watchdog budget (twice
  // the sender's retry count).
  EXPECT_LE(receiver_failed_at, sim::SimTime{10'000'000});
  EXPECT_EQ(cluster.retry_stats(0).transfer_failures, 1u);
  EXPECT_EQ(cluster.retry_stats(1).transfer_failures, 1u);
}

TEST(Reliability, ReceiverWatchdogBoundsWaitWhenAbortIsLost) {
  // Same dead data path, but the best-effort SEND_ABORT is swallowed too.
  // The receiver's own liveness watchdog must fail the receive once the
  // sender has been silent for the whole backoff budget.
  ClusterConfig cfg;
  cfg.rng_seed = 17;
  cfg.tunables.rndv_timeout_ns = 200'000;
  cfg.tunables.rndv_max_retries = 3;
  netsim::FaultSpec swallow;
  swallow.drop_imm = 1.0;
  cfg.faults.set_kind(core::kChunkFin, swallow);
  netsim::FaultSpec black_hole;
  black_hole.drop_send = 1.0;
  cfg.faults.set_kind(core::kSendAbort, black_hole);
  Cluster cluster(cfg);
  bool receiver_threw = false;
  std::string receiver_what;
  sim::SimTime receiver_failed_at = 0;
  cluster.run([&](Context& ctx) {
    const int n = 1 << 20;
    auto byte_t = committed(Datatype::byte());
    auto* dev = static_cast<std::byte*>(ctx.cuda->malloc(n));
    try {
      if (ctx.rank == 0) {
        ctx.comm.send(dev, n, byte_t, 1, 0);
      } else {
        ctx.comm.recv(dev, n, byte_t, 0, 0);
      }
    } catch (const mpisim::RequestError& e) {
      if (ctx.rank == 1) {
        receiver_threw = true;
        receiver_what = e.what();
        receiver_failed_at = ctx.engine->now();
      }
    }
    ctx.cuda->free(dev);
  });
  expect_pools_quiesced(cluster);
  EXPECT_TRUE(receiver_threw);
  EXPECT_NE(receiver_what.find("silent"), std::string::npos);
  // The receiver's watchdog budget is twice the sender's retry count:
  // ~25 ms of backed-off silence before it fails the receive. Bounded —
  // never the deadlock detector.
  EXPECT_LE(receiver_failed_at, sim::SimTime{40'000'000});
  EXPECT_EQ(cluster.retry_stats(1).transfer_failures, 1u);
}

TEST(Reliability, DirectModeCompletionSurvivesSendDoneLoss) {
  // Host-contiguous landings go straight into the user buffer, so the
  // receive may only complete once the sender's SEND_DONE proves no
  // duplicate write can still drain into it. With 95% of SEND_DONEs lost
  // the sender must keep retransmitting (the receiver acks it) until the
  // handshake closes; the request still completes with intact data.
  ClusterConfig cfg;
  cfg.rng_seed = 29;
  cfg.tunables.rndv_timeout_ns = 200'000;
  cfg.tunables.rndv_max_retries = 25;
  netsim::FaultSpec done_loss;
  done_loss.drop_send = 0.95;
  cfg.faults.set_kind(core::kSendDone, done_loss);
  Cluster cluster(cfg);
  std::size_t mismatches = 0;
  cluster.run([&](Context& ctx) {
    const int n = 1 << 20;  // host-contiguous 1 MB: direct (kDirect) landing
    auto byte_t = committed(Datatype::byte());
    std::vector<std::byte> buf(static_cast<std::size_t>(n));
    if (ctx.rank == 0) {
      for (int i = 0; i < n; ++i) {
        buf[static_cast<std::size_t>(i)] =
            static_cast<std::byte>((i * 13 + 5) & 0xFF);
      }
      ctx.comm.send(buf.data(), n, byte_t, 1, 0);
    } else {
      ctx.comm.recv(buf.data(), n, byte_t, 0, 0);
      for (int i = 0; i < n; i += 641) {
        if (buf[static_cast<std::size_t>(i)] !=
            static_cast<std::byte>((i * 13 + 5) & 0xFF)) {
          ++mismatches;
        }
      }
    }
    ctx.comm.barrier();
  });
  expect_pools_quiesced(cluster);
  EXPECT_EQ(mismatches, 0u);
  const core::RetryStats& snd = cluster.retry_stats(0);
  EXPECT_GT(snd.send_done_retransmits, 0u);
  EXPECT_EQ(snd.transfer_failures, 0u);
  EXPECT_EQ(cluster.retry_stats(1).transfer_failures, 0u);
}

TEST(Reliability, ForceDrainCompletesDirectReceiverWhenSenderGoesSilent) {
  // Every SEND_DONE is swallowed: the direct-mode sender eventually stops
  // retransmitting (budget out, data fully acked — not a failure), and the
  // receiver's watchdog force-drains, completing the request with the
  // payload it verifiably holds. Afterwards nothing is tracked: the
  // transfer shrank to its finished-transfer record.
  ClusterConfig cfg;
  cfg.rng_seed = 31;
  cfg.tunables.rndv_timeout_ns = 200'000;
  cfg.tunables.rndv_max_retries = 4;
  netsim::FaultSpec black_hole;
  black_hole.drop_send = 1.0;
  cfg.faults.set_kind(core::kSendDone, black_hole);
  Cluster cluster(cfg);
  std::size_t mismatches = 0;
  cluster.run([&](Context& ctx) {
    const int n = 1 << 20;
    auto byte_t = committed(Datatype::byte());
    std::vector<std::byte> buf(static_cast<std::size_t>(n));
    if (ctx.rank == 0) {
      for (int i = 0; i < n; ++i) {
        buf[static_cast<std::size_t>(i)] =
            static_cast<std::byte>((i * 11 + 2) & 0xFF);
      }
      ctx.comm.send(buf.data(), n, byte_t, 1, 0);
    } else {
      ctx.comm.recv(buf.data(), n, byte_t, 0, 0);
      for (int i = 0; i < n; i += 523) {
        if (buf[static_cast<std::size_t>(i)] !=
            static_cast<std::byte>((i * 11 + 2) & 0xFF)) {
          ++mismatches;
        }
      }
    }
  });
  expect_pools_quiesced(cluster);
  EXPECT_EQ(mismatches, 0u);
  EXPECT_GT(cluster.retry_stats(1).force_drains, 0u);
  EXPECT_EQ(cluster.retry_stats(0).transfer_failures, 0u);
  EXPECT_EQ(cluster.retry_stats(1).transfer_failures, 0u);
  EXPECT_EQ(cluster.tracked_rendezvous(1), 0u);
}

TEST(Reliability, DrainedReceiversAreGarbageCollected) {
  // Issue: rts_index_ used to retain every rendezvous receiver (CTS/ack
  // payloads included) for the rank's lifetime. After a batch of finished
  // transfers the rank must track nothing — each shrinks to a few-word
  // finished-transfer record.
  ClusterConfig cfg;  // fault-free
  Cluster cluster(cfg);
  cluster.run([&](Context& ctx) {
    auto byte_t = committed(Datatype::byte());
    const int n = 1 << 18;  // 256 KB: rendezvous, staged device landings
    auto* dev = static_cast<std::byte*>(ctx.cuda->malloc(n));
    std::vector<std::byte> host(static_cast<std::size_t>(n), std::byte{5});
    for (int iter = 0; iter < 8; ++iter) {
      if (ctx.rank == 0) {
        ctx.comm.send(dev, n, byte_t, 1, iter);       // staged path
        ctx.comm.send(host.data(), n, byte_t, 1, iter);  // direct path
      } else {
        ctx.comm.recv(dev, n, byte_t, 0, iter);
        ctx.comm.recv(host.data(), n, byte_t, 0, iter);
      }
    }
    ctx.comm.barrier();
    ctx.cuda->free(dev);
  });
  expect_pools_quiesced(cluster);
  EXPECT_EQ(cluster.tracked_rendezvous(0), 0u);
  EXPECT_EQ(cluster.tracked_rendezvous(1), 0u);
}

TEST(Reliability, FaultEventsAppearInTrace) {
  ClusterConfig cfg = lossy_config(2024);
  cfg.trace_enabled = true;
  Cluster cluster(cfg);
  cluster.run([&](Context& ctx) {
    const int n = 1 << 21;  // 2 MB host-contiguous
    auto byte_t = committed(Datatype::byte());
    std::vector<std::byte> buf(static_cast<std::size_t>(n), std::byte{9});
    if (ctx.rank == 0) {
      ctx.comm.send(buf.data(), n, byte_t, 1, 0);
    } else {
      ctx.comm.recv(buf.data(), n, byte_t, 0, 0);
    }
    ctx.comm.barrier();
  });
  expect_pools_quiesced(cluster);
  const core::RetryStats& snd = cluster.retry_stats(0);
  ASSERT_GT(snd.timeouts + snd.total_retransmits(), 0u);
  std::uint64_t traced = 0;
  for (const char* cat :
       {"fault_timeout", "fault_rts_retransmit", "fault_chunk_retransmit",
        "fault_error_retransmit", "fault_ack_resent", "fault_cts_resent",
        "fault_done_resent", "fault_stall_fallback"}) {
    traced += cluster.trace().count(cat);
  }
  EXPECT_GT(traced, 0u);
}
