// cusim runtime semantics: data integrity of copies, kind
// inference/validation, blocking-call timing, memset, kernels.
#include "cuda/runtime.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

namespace cusim = mv2gnc::cusim;
namespace gpu = mv2gnc::gpu;
namespace sim = mv2gnc::sim;

namespace {

// Runs `body` as a single simulated process with a fresh device + context.
void run_sim(const std::function<void(sim::Engine&, cusim::CudaContext&)>& body,
             std::size_t capacity = 64u << 20) {
  sim::Engine eng;
  gpu::MemoryRegistry reg;
  gpu::Device dev(eng, reg, 0, gpu::GpuCostModel::tesla_c2050(), capacity);
  cusim::CudaContext ctx(dev);
  eng.spawn("test", [&] { body(eng, ctx); });
  eng.run();
}

}  // namespace

TEST(CudaRuntime, H2DThenD2HRoundTrip) {
  run_sim([](sim::Engine&, cusim::CudaContext& ctx) {
    std::vector<int> host(1024);
    std::iota(host.begin(), host.end(), 0);
    void* dev = ctx.malloc(host.size() * sizeof(int));
    ctx.memcpy(dev, host.data(), host.size() * sizeof(int),
               cusim::MemcpyKind::kHostToDevice);
    std::vector<int> back(1024, -1);
    ctx.memcpy(back.data(), dev, back.size() * sizeof(int),
               cusim::MemcpyKind::kDeviceToHost);
    EXPECT_EQ(host, back);
    ctx.free(dev);
  });
}

TEST(CudaRuntime, BlockingMemcpyAdvancesClockPerModel) {
  run_sim([](sim::Engine& eng, cusim::CudaContext& ctx) {
    const std::size_t n = 1u << 20;  // 1 MB
    std::vector<std::byte> host(n);
    void* dev = ctx.malloc(n);
    const sim::SimTime t0 = eng.now();
    ctx.memcpy(dev, host.data(), n, cusim::MemcpyKind::kHostToDevice);
    const sim::SimTime elapsed = eng.now() - t0;
    // A plain std::vector is pageable memory: the slower bandwidth applies.
    const sim::SimTime expected = ctx.device().cost().copy_time(
        n, gpu::CopyDir::kHostToDevice, /*pinned_host=*/false);
    EXPECT_EQ(elapsed, expected);
    // The same copy from pinned (cudaMallocHost) memory is faster.
    void* pinned = ctx.malloc_host(n);
    const sim::SimTime t1 = eng.now();
    ctx.memcpy(dev, pinned, n, cusim::MemcpyKind::kHostToDevice);
    const sim::SimTime pinned_elapsed = eng.now() - t1;
    EXPECT_EQ(pinned_elapsed, ctx.device().cost().copy_time(
                                  n, gpu::CopyDir::kHostToDevice, true));
    EXPECT_LT(pinned_elapsed, elapsed);
    ctx.free_host(pinned);
    ctx.free(dev);
  });
}

TEST(CudaRuntime, KindMismatchThrows) {
  run_sim([](sim::Engine&, cusim::CudaContext& ctx) {
    std::vector<std::byte> host(64);
    void* dev = ctx.malloc(64);
    EXPECT_THROW(ctx.memcpy(dev, host.data(), 64,
                            cusim::MemcpyKind::kDeviceToHost),
                 cusim::CudaError);
    ctx.free(dev);
  });
}

TEST(CudaRuntime, DefaultKindInferred) {
  run_sim([](sim::Engine&, cusim::CudaContext& ctx) {
    std::vector<int> host{1, 2, 3, 4};
    void* dev = ctx.malloc(sizeof(int) * 4);
    ctx.memcpy(dev, host.data(), sizeof(int) * 4);  // kDefault -> H2D
    std::vector<int> back(4);
    ctx.memcpy(back.data(), dev, sizeof(int) * 4);  // kDefault -> D2H
    EXPECT_EQ(host, back);
    ctx.free(dev);
  });
}

TEST(CudaRuntime, Memcpy2DStridedPackUnpack) {
  run_sim([](sim::Engine&, cusim::CudaContext& ctx) {
    // 8 rows x 16 bytes in a 64-byte-pitch matrix; pack the 16-byte column
    // block into a contiguous buffer and back into a second matrix.
    constexpr std::size_t pitch = 64, width = 16, height = 8;
    auto* mat = static_cast<std::byte*>(ctx.malloc(pitch * height));
    auto* packed = static_cast<std::byte*>(ctx.malloc(width * height));
    auto* mat2 = static_cast<std::byte*>(ctx.malloc(pitch * height));
    std::vector<std::byte> host(pitch * height);
    for (std::size_t i = 0; i < host.size(); ++i) {
      host[i] = static_cast<std::byte>(i & 0xFF);
    }
    ctx.memcpy(mat, host.data(), host.size());
    ctx.memcpy2d(packed, width, mat, pitch, width, height,
                 cusim::MemcpyKind::kDeviceToDevice);
    ctx.memcpy2d(mat2, pitch, packed, width, width, height,
                 cusim::MemcpyKind::kDeviceToDevice);
    for (std::size_t r = 0; r < height; ++r) {
      EXPECT_EQ(std::memcmp(mat2 + r * pitch, host.data() + r * pitch, width),
                0)
          << "row " << r;
    }
    ctx.free(mat);
    ctx.free(packed);
    ctx.free(mat2);
  });
}

TEST(CudaRuntime, Memcpy2DBadPitchThrows) {
  run_sim([](sim::Engine&, cusim::CudaContext& ctx) {
    void* a = ctx.malloc(256);
    void* b = ctx.malloc(256);
    EXPECT_THROW(ctx.memcpy2d(a, 8, b, 16, 16, 4,
                              cusim::MemcpyKind::kDeviceToDevice),
                 cusim::CudaError);
    ctx.free(a);
    ctx.free(b);
  });
}

TEST(CudaRuntime, MemsetFillsDeviceMemory) {
  run_sim([](sim::Engine&, cusim::CudaContext& ctx) {
    auto* dev = static_cast<std::byte*>(ctx.malloc(128));
    ctx.memset(dev, 0x5A, 128);
    for (int i = 0; i < 128; ++i) EXPECT_EQ(dev[i], std::byte{0x5A});
    ctx.free(dev);
  });
}

TEST(CudaRuntime, MemsetOnHostPointerThrows) {
  run_sim([](sim::Engine&, cusim::CudaContext& ctx) {
    std::vector<std::byte> host(64);
    EXPECT_THROW(ctx.memset(host.data(), 0, 64), cusim::CudaError);
  });
}

TEST(CudaRuntime, AsyncCopyOverlapsAcrossEngines) {
  run_sim([](sim::Engine& eng, cusim::CudaContext& ctx) {
    // A D2H copy and an H2D copy in different streams use different copy
    // engines, so the pair should finish in ~max time, not ~sum.
    const std::size_t n = 4u << 20;
    auto* h1 = ctx.malloc_host(n);
    auto* h2 = ctx.malloc_host(n);
    void* d1 = ctx.malloc(n);
    void* d2 = ctx.malloc(n);
    auto s1 = ctx.create_stream();
    auto s2 = ctx.create_stream();
    const sim::SimTime t0 = eng.now();
    ctx.memcpy_async(h1, d1, n, cusim::MemcpyKind::kDeviceToHost, s1);
    ctx.memcpy_async(d2, h2, n, cusim::MemcpyKind::kHostToDevice, s2);
    s1.synchronize();
    s2.synchronize();
    const sim::SimTime both = eng.now() - t0;
    const sim::SimTime one =
        ctx.device().cost().copy_time(n, gpu::CopyDir::kDeviceToHost);
    EXPECT_LT(both, one + one / 2);  // clearly overlapped
    ctx.free_host(h1);
    ctx.free_host(h2);
    ctx.free(d1);
    ctx.free(d2);
  });
}

TEST(CudaRuntime, SameStreamOpsSerializeAcrossEngines) {
  run_sim([](sim::Engine& eng, cusim::CudaContext& ctx) {
    const std::size_t n = 4u << 20;
    std::vector<std::byte> host(n);
    void* d1 = ctx.malloc(n);
    void* d2 = ctx.malloc(n);
    auto s = ctx.create_stream();
    const sim::SimTime t0 = eng.now();
    // D2D then D2H in one stream: the D2H may not start before the D2D
    // completes even though they run on different engines.
    ctx.memcpy_async(d2, d1, n, cusim::MemcpyKind::kDeviceToDevice, s);
    ctx.memcpy_async(host.data(), d2, n, cusim::MemcpyKind::kDeviceToHost, s);
    s.synchronize();
    const sim::SimTime elapsed = eng.now() - t0;
    const auto& cost = ctx.device().cost();
    const sim::SimTime serial =
        cost.copy_time(n, gpu::CopyDir::kDeviceToDevice) +
        cost.copy_time(n, gpu::CopyDir::kDeviceToHost);
    EXPECT_GE(elapsed, serial);
    ctx.free(d1);
    ctx.free(d2);
  });
}

TEST(CudaRuntime, StreamQueryReflectsProgress) {
  run_sim([](sim::Engine& eng, cusim::CudaContext& ctx) {
    const std::size_t n = 1u << 20;
    std::vector<std::byte> host(n);
    void* dev = ctx.malloc(n);
    auto s = ctx.create_stream();
    EXPECT_TRUE(s.query());  // empty stream is done
    ctx.memcpy_async(dev, host.data(), n, cusim::MemcpyKind::kHostToDevice, s);
    EXPECT_FALSE(s.query());
    eng.delay(sim::milliseconds(10));  // far beyond the copy duration
    EXPECT_TRUE(s.query());
    ctx.free(dev);
  });
}

TEST(CudaRuntime, EventCapturesPointInStream) {
  run_sim([](sim::Engine&, cusim::CudaContext& ctx) {
    const std::size_t n = 1u << 20;
    std::vector<std::byte> host(n);
    void* dev = ctx.malloc(n);
    auto s = ctx.create_stream();
    ctx.memcpy_async(dev, host.data(), n, cusim::MemcpyKind::kHostToDevice, s);
    auto ev = ctx.record_event(s);
    ctx.memcpy_async(dev, host.data(), n, cusim::MemcpyKind::kHostToDevice, s);
    EXPECT_FALSE(ev.query());
    ev.synchronize();
    EXPECT_TRUE(ev.query());
    EXPECT_FALSE(s.query());  // second copy still in flight
    s.synchronize();
    ctx.free(dev);
  });
}

TEST(CudaRuntime, StreamWakeupNotifierFires) {
  run_sim([](sim::Engine& eng, cusim::CudaContext& ctx) {
    sim::Notifier n(eng);
    auto s = ctx.create_stream();
    s.set_wakeup(&n);
    std::vector<std::byte> host(1024);
    void* dev = ctx.malloc(1024);
    ctx.memcpy_async(dev, host.data(), 1024,
                     cusim::MemcpyKind::kHostToDevice, s);
    n.wait();  // completion must poke the notifier
    EXPECT_TRUE(s.query());
    ctx.free(dev);
  });
}

TEST(CudaRuntime, KernelBodyRunsAtCompletion) {
  run_sim([](sim::Engine& eng, cusim::CudaContext& ctx) {
    auto s = ctx.create_stream();
    bool ran = false;
    const sim::SimTime t0 = eng.now();
    ctx.launch_kernel(s, 1'000'000, false, [&] { ran = true; });
    EXPECT_FALSE(ran);  // async: body deferred to completion
    s.synchronize();
    EXPECT_TRUE(ran);
    const sim::SimTime expected =
        ctx.device().cost().kernel_time(1'000'000, false) +
        ctx.device().cost().async_submit_ns;
    EXPECT_EQ(eng.now() - t0, expected);
  });
}

TEST(CudaRuntime, DeviceSynchronizeWaitsAllStreams) {
  run_sim([](sim::Engine&, cusim::CudaContext& ctx) {
    auto s1 = ctx.create_stream();
    auto s2 = ctx.create_stream();
    int done = 0;
    ctx.launch_kernel_timed(s1, sim::microseconds(50), [&] { ++done; });
    ctx.launch_kernel_timed(s2, sim::microseconds(90), [&] { ++done; });
    ctx.device_synchronize();
    EXPECT_EQ(done, 2);
    EXPECT_TRUE(s1.query());
    EXPECT_TRUE(s2.query());
  });
}

TEST(CudaRuntime, NullStreamOperationsThrow) {
  run_sim([](sim::Engine&, cusim::CudaContext&) {
    cusim::Stream s;  // null handle
    EXPECT_THROW(s.query(), cusim::CudaError);
    EXPECT_THROW(s.synchronize(), cusim::CudaError);
    cusim::Event e;
    EXPECT_THROW(e.query(), cusim::CudaError);
  });
}

// ---------------------------------------------------------------------------
// CUDA IPC handles (intra-node transport handshake).
// ---------------------------------------------------------------------------

TEST(CudaIpc, HandleRoundTripsThroughOpen) {
  run_sim([](sim::Engine&, cusim::CudaContext& ctx) {
    void* dev = ctx.malloc(4096);
    const cusim::IpcMemHandle h = ctx.ipc_get_mem_handle(dev);
    EXPECT_EQ(h.offset, 0u);
    EXPECT_EQ(h.size, 4096u);
    void* mapped = ctx.ipc_open_mem_handle(h);
    EXPECT_EQ(mapped, dev);
    EXPECT_EQ(ctx.open_ipc_handles(), 1u);
    ctx.ipc_close_mem_handle(mapped);
    EXPECT_EQ(ctx.open_ipc_handles(), 0u);
    ctx.free(dev);
  });
}

TEST(CudaIpc, InteriorPointerKeepsOffset) {
  run_sim([](sim::Engine&, cusim::CudaContext& ctx) {
    auto* dev = static_cast<std::byte*>(ctx.malloc(4096));
    const cusim::IpcMemHandle h = ctx.ipc_get_mem_handle(dev + 100);
    EXPECT_EQ(h.offset, 100u);
    void* mapped = ctx.ipc_open_mem_handle(h);
    EXPECT_EQ(mapped, dev + 100);
    ctx.ipc_close_mem_handle(mapped);
    ctx.free(dev);
  });
}

TEST(CudaIpc, HostPointerRejected) {
  run_sim([](sim::Engine&, cusim::CudaContext& ctx) {
    std::vector<std::byte> host(64);
    EXPECT_THROW(ctx.ipc_get_mem_handle(host.data()), cusim::CudaError);
  });
}

TEST(CudaIpc, StaleHandleRejected) {
  run_sim([](sim::Engine&, cusim::CudaContext& ctx) {
    void* dev = ctx.malloc(4096);
    const cusim::IpcMemHandle h = ctx.ipc_get_mem_handle(dev);
    ctx.free(dev);
    // The allocation the handle names is gone; opening it must fail even if
    // a new allocation happens to reuse the address range.
    EXPECT_THROW(ctx.ipc_open_mem_handle(h), cusim::CudaError);
  });
}

TEST(CudaIpc, CloseOfUnknownMappingThrows) {
  run_sim([](sim::Engine&, cusim::CudaContext& ctx) {
    void* dev = ctx.malloc(64);
    EXPECT_THROW(ctx.ipc_close_mem_handle(dev), cusim::CudaError);
    ctx.free(dev);
  });
}

TEST(CudaIpc, OpenIsRefcounted) {
  run_sim([](sim::Engine&, cusim::CudaContext& ctx) {
    void* dev = ctx.malloc(256);
    const cusim::IpcMemHandle h = ctx.ipc_get_mem_handle(dev);
    void* a = ctx.ipc_open_mem_handle(h);
    void* b = ctx.ipc_open_mem_handle(h);
    EXPECT_EQ(a, b);
    EXPECT_EQ(ctx.open_ipc_handles(), 1u);  // one mapping, two refs
    ctx.ipc_close_mem_handle(a);
    EXPECT_EQ(ctx.open_ipc_handles(), 1u);
    ctx.ipc_close_mem_handle(b);
    EXPECT_EQ(ctx.open_ipc_handles(), 0u);
    ctx.free(dev);
  });
}
