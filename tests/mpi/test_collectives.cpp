// Collectives built on the p2p layer: barrier, bcast, allreduce.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpi/cluster.hpp"

namespace mpisim = mv2gnc::mpisim;
namespace sim = mv2gnc::sim;
using mpisim::Cluster;
using mpisim::ClusterConfig;
using mpisim::Context;
using mpisim::Datatype;

namespace {

Datatype committed(Datatype t) {
  t.commit();
  return t;
}

}  // namespace

class CollectivesBySize : public ::testing::TestWithParam<int> {};

TEST_P(CollectivesBySize, BarrierSynchronizesRanks) {
  const int ranks = GetParam();
  Cluster cluster(ClusterConfig{.ranks = ranks});
  std::vector<sim::SimTime> after(static_cast<std::size_t>(ranks));
  cluster.run([&](Context& ctx) {
    // Stagger arrival: rank r arrives at r*100us.
    ctx.engine->delay(sim::microseconds(100) * ctx.rank);
    ctx.comm.barrier();
    after[static_cast<std::size_t>(ctx.rank)] = ctx.engine->now();
  });
  // Nobody may leave the barrier before the last arrival.
  const sim::SimTime last_arrival = sim::microseconds(100) * (ranks - 1);
  for (int r = 0; r < ranks; ++r) {
    EXPECT_GE(after[static_cast<std::size_t>(r)], last_arrival) << "rank " << r;
  }
}

TEST_P(CollectivesBySize, BcastFromEveryRoot) {
  const int ranks = GetParam();
  for (int root = 0; root < ranks; ++root) {
    Cluster cluster(ClusterConfig{.ranks = ranks});
    cluster.run([&, root](Context& ctx) {
      auto ints = committed(Datatype::int32());
      std::vector<int> buf(256, -1);
      if (ctx.rank == root) std::iota(buf.begin(), buf.end(), root * 1000);
      ctx.comm.bcast(buf.data(), 256, ints, root);
      EXPECT_EQ(buf[0], root * 1000);
      EXPECT_EQ(buf[255], root * 1000 + 255);
    });
  }
}

TEST_P(CollectivesBySize, AllreduceSum) {
  const int ranks = GetParam();
  Cluster cluster(ClusterConfig{.ranks = ranks});
  cluster.run([&](Context& ctx) {
    std::vector<double> in{static_cast<double>(ctx.rank), 1.0};
    std::vector<double> out(2, 0.0);
    ctx.comm.allreduce_sum(in.data(), out.data(), 2);
    EXPECT_DOUBLE_EQ(out[0], ranks * (ranks - 1) / 2.0);
    EXPECT_DOUBLE_EQ(out[1], static_cast<double>(ranks));
  });
}

TEST_P(CollectivesBySize, AllreduceMax) {
  const int ranks = GetParam();
  Cluster cluster(ClusterConfig{.ranks = ranks});
  cluster.run([&](Context& ctx) {
    double in = (ctx.rank == ranks / 2) ? 99.5 : static_cast<double>(ctx.rank);
    double out = 0;
    ctx.comm.allreduce_max(&in, &out, 1);
    EXPECT_DOUBLE_EQ(out, 99.5);
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectivesBySize,
                         ::testing::Values(1, 2, 3, 4, 7, 8));

TEST(Collectives, LargeBcastUsesRendezvous) {
  Cluster cluster(ClusterConfig{.ranks = 4});
  cluster.run([](Context& ctx) {
    auto ints = committed(Datatype::int32());
    const int n = 1 << 18;  // 1 MB
    std::vector<int> buf(n, -1);
    if (ctx.rank == 2) std::iota(buf.begin(), buf.end(), 0);
    ctx.comm.bcast(buf.data(), n, ints, 2);
    EXPECT_EQ(buf[n - 1], n - 1);
  });
}

TEST(Collectives, BarrierDoesNotStealWildcardTraffic) {
  // A wildcard receive posted before a barrier must not match the
  // barrier's internal messages.
  Cluster cluster(ClusterConfig{.ranks = 2});
  cluster.run([](Context& ctx) {
    auto ints = committed(Datatype::int32());
    if (ctx.rank == 0) {
      int got = 0;
      auto req = ctx.comm.irecv(&got, 1, ints, mpisim::kAnySource,
                                mpisim::kAnyTag);
      ctx.comm.barrier();
      ctx.comm.wait(req);
      EXPECT_EQ(got, 777);
    } else {
      ctx.comm.barrier();
      int v = 777;
      ctx.comm.send(&v, 1, ints, 0, 5);
    }
  });
}
