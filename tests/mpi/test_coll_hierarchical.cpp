// Two-level (topology-aware) collectives over the transport seam: the
// hierarchical variants must deliver byte-identical results to the flat
// algorithms on split communicators across ranks_per_node topologies, on
// clean and on faulty fabrics, and the co-located intra-node leg must
// actually be modeled cheaper than the fabric path it replaces.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "mpi/cluster.hpp"
#include "mpi/coll.hpp"

namespace mpisim = mv2gnc::mpisim;
namespace netsim = mv2gnc::netsim;
namespace core = mv2gnc::core;
namespace sim = mv2gnc::sim;
using mpisim::Cluster;
using mpisim::ClusterConfig;
using mpisim::Context;
using mpisim::Datatype;

namespace {

Datatype committed(Datatype t) {
  t.commit();
  return t;
}

// Same adversarial fabric the reliability suite uses: every rendezvous
// control kind lossy, chunk fins occasionally dropped or failed. Eager
// traffic stays clean (the reliability layer covers rendezvous only).
void fault_rendezvous_control(netsim::FaultModel& fm, double drop_send,
                              double drop_imm, double fail_write) {
  netsim::FaultSpec ctrl;
  ctrl.drop_send = drop_send;
  for (int kind : {core::kRts, core::kCts, core::kChunkAck, core::kRndvDone,
                   core::kSendDone, core::kRtsAck, core::kSendDoneAck,
                   core::kSendAbort}) {
    fm.set_kind(kind, ctrl);
  }
  netsim::FaultSpec data;
  data.drop_imm = drop_imm;
  data.fail_write = fail_write;
  fm.set_kind(core::kChunkFin, data);
}

void append(std::vector<std::byte>& sink, const void* data,
            std::size_t bytes) {
  const auto* p = static_cast<const std::byte*>(data);
  sink.insert(sink.end(), p, p + bytes);
}

// Exercise every collective on two split communicators (even/odd ranks
// with reversed key order, and blocked halves) plus the world comm, at an
// eager and a rendezvous payload size. Each rank's observed bytes are
// concatenated into one trace; the traces must be invariant under the
// coll_select choice. All doubles are integer-valued so any reduction
// association yields the same bits.
std::vector<std::vector<std::byte>> run_workload(const ClusterConfig& cfg) {
  Cluster cluster(cfg);
  std::vector<std::vector<std::byte>> traces(
      static_cast<std::size_t>(cfg.ranks));
  cluster.run([&](Context& ctx) {
    auto ints = committed(Datatype::int32());
    auto doubles = committed(Datatype::float64());
    std::vector<std::byte>& trace = traces[static_cast<std::size_t>(ctx.rank)];

    auto exercise = [&](mpisim::Communicator& comm, int salt) {
      const int p = comm.size();
      const int me = comm.rank();
      for (const int count : {64, 4096}) {  // 256 B eager / 16 KB rendezvous
        // allgather
        std::vector<std::int32_t> mine(static_cast<std::size_t>(count));
        for (int i = 0; i < count; ++i) {
          mine[static_cast<std::size_t>(i)] = salt * 1000003 + me * 131 + i;
        }
        std::vector<std::int32_t> gathered(
            static_cast<std::size_t>(p * count));
        comm.allgather(mine.data(), count, ints, gathered.data());
        append(trace, gathered.data(), gathered.size() * 4);
        // alltoall
        std::vector<std::int32_t> a2a_in(static_cast<std::size_t>(p * count));
        for (std::size_t i = 0; i < a2a_in.size(); ++i) {
          a2a_in[i] = salt * 7 + me * 100000 + static_cast<int>(i);
        }
        std::vector<std::int32_t> a2a_out(static_cast<std::size_t>(p * count));
        comm.alltoall(a2a_in.data(), a2a_out.data(), count, ints);
        append(trace, a2a_out.data(), a2a_out.size() * 4);
        // bcast from the last rank (exercises non-zero roots)
        std::vector<std::int32_t> bc(static_cast<std::size_t>(count));
        if (me == p - 1) {
          std::iota(bc.begin(), bc.end(), salt * 17);
        }
        comm.bcast(bc.data(), count, ints, p - 1);
        append(trace, bc.data(), bc.size() * 4);
      }
      // allreduce (integer-valued doubles: exact under any association)
      std::vector<double> in(257);
      for (std::size_t i = 0; i < in.size(); ++i) {
        in[i] = static_cast<double>((me + 1) * 3 + static_cast<int>(i) + salt);
      }
      std::vector<double> out(in.size(), 0.0);
      comm.allreduce_sum(in.data(), out.data(), static_cast<int>(in.size()));
      append(trace, out.data(), out.size() * 8);
      comm.allreduce_max(in.data(), out.data(), static_cast<int>(in.size()));
      append(trace, out.data(), out.size() * 8);
      comm.barrier();
    };

    exercise(ctx.comm, 1);
    // Even/odd ranks, reversed rank order within each half.
    auto striped = ctx.comm.split(ctx.rank % 2, ctx.size - ctx.rank);
    exercise(striped, 2);
    // Blocked halves (consecutive ranks stay together -> co-located).
    auto blocked = ctx.comm.split(ctx.rank / (ctx.size / 2), ctx.rank);
    exercise(blocked, 3);
    // Uneven 3/5 split: at rpn = 2 this leaves ragged groups (a 2+1 node
    // layout and a 1+2+2 one), where every rank must still reach the same
    // flat-vs-hier verdict despite sitting on differently-sized nodes.
    auto ragged = ctx.comm.split(ctx.rank < 3 ? 0 : 1, ctx.rank);
    exercise(ragged, 4);
  });
  return traces;
}

ClusterConfig workload_config(int ranks, int rpn, core::CollSelect select) {
  ClusterConfig cfg;
  cfg.ranks = ranks;
  cfg.tunables.ranks_per_node = static_cast<std::size_t>(rpn);
  cfg.tunables.coll_select = select;
  return cfg;
}

}  // namespace

class HierCollByTopology : public ::testing::TestWithParam<int> {};

TEST_P(HierCollByTopology, FlatAndHierarchicalAgreeByteForByte) {
  const int rpn = GetParam();
  const auto flat =
      run_workload(workload_config(8, rpn, core::CollSelect::kFlat));
  const auto hier =
      run_workload(workload_config(8, rpn, core::CollSelect::kHier));
  const auto aut =
      run_workload(workload_config(8, rpn, core::CollSelect::kAuto));
  for (int r = 0; r < 8; ++r) {
    const auto i = static_cast<std::size_t>(r);
    EXPECT_EQ(flat[i], hier[i]) << "flat vs hier, rank " << r;
    EXPECT_EQ(flat[i], aut[i]) << "flat vs auto, rank " << r;
  }
}

TEST_P(HierCollByTopology, AgreementSurvivesLossyFabric) {
  const int rpn = GetParam();
  for (const auto select : {core::CollSelect::kFlat, core::CollSelect::kHier}) {
    ClusterConfig cfg = workload_config(8, rpn, select);
    cfg.rng_seed = 20260807;
    cfg.tunables.rndv_timeout_ns = 200'000;
    cfg.tunables.rndv_max_retries = 25;
    fault_rendezvous_control(cfg.faults, /*drop_send=*/0.03,
                             /*drop_imm=*/0.03, /*fail_write=*/0.01);
    const auto lossy = run_workload(cfg);
    ClusterConfig clean_cfg = workload_config(8, rpn, select);
    const auto clean = run_workload(clean_cfg);
    for (int r = 0; r < 8; ++r) {
      const auto i = static_cast<std::size_t>(r);
      EXPECT_EQ(lossy[i], clean[i])
          << "lossy vs clean, rank " << r << ", select "
          << (select == core::CollSelect::kFlat ? "flat" : "hier");
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RanksPerNode, HierCollByTopology,
                         ::testing::Values(1, 2, 4));

TEST(HierColl, TwoLevelPathEngagesOnlyWhenCoLocated) {
  // rpn=1: every node hosts one rank, so kHier must quietly stay flat.
  {
    Cluster cluster(workload_config(4, 1, core::CollSelect::kHier));
    cluster.run([](Context& ctx) { ctx.comm.barrier(); });
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(cluster.coll_stats(r).barrier.hier_calls, 0u);
      EXPECT_EQ(cluster.coll_stats(r).barrier.calls, 1u);
    }
  }
  // rpn=2, auto, bandwidth-regime payload: co-located topology + default
  // cost models -> the striped two-level path, where every member runs
  // two intra phases (reduce-scatter + allgather) and carries its own
  // stripe through the inter-node butterfly.
  {
    Cluster cluster(workload_config(4, 2, core::CollSelect::kAuto));
    cluster.run([](Context& ctx) {
      std::vector<double> in(32768, static_cast<double>(ctx.rank));
      std::vector<double> out(32768);
      ctx.comm.allreduce_sum(in.data(), out.data(), 32768);
    });
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(cluster.coll_stats(r).allreduce.hier_calls, 1u) << "rank " << r;
      EXPECT_GT(cluster.coll_stats(r).allreduce.intra_phases, 0u);
      EXPECT_GT(cluster.coll_stats(r).allreduce.leader_phases, 0u);
    }
  }
  // rpn=2, auto, latency-regime payload: for a handful of doubles the two
  // extra intra phases cost more than they save, so auto stays flat.
  {
    Cluster cluster(workload_config(4, 2, core::CollSelect::kAuto));
    cluster.run([](Context& ctx) {
      std::vector<double> in(8, static_cast<double>(ctx.rank));
      std::vector<double> out(8);
      ctx.comm.allreduce_sum(in.data(), out.data(), 8);
    });
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(cluster.coll_stats(r).allreduce.hier_calls, 0u) << "rank " << r;
    }
  }
  // Ragged topology (3 ranks at rpn=2: one full node + a singleton) takes
  // the leader-based fallback: leader phases only on node leaders.
  {
    Cluster cluster(workload_config(3, 2, core::CollSelect::kHier));
    cluster.run([](Context& ctx) {
      std::vector<double> in(8, static_cast<double>(ctx.rank));
      std::vector<double> out(8);
      ctx.comm.allreduce_sum(in.data(), out.data(), 8);
    });
    for (int r = 0; r < 3; ++r) {
      EXPECT_EQ(cluster.coll_stats(r).allreduce.hier_calls, 1u) << "rank " << r;
    }
    EXPECT_GT(cluster.coll_stats(1).allreduce.intra_phases, 0u);
    EXPECT_GT(cluster.coll_stats(0).allreduce.leader_phases, 0u);
    EXPECT_EQ(cluster.coll_stats(1).allreduce.leader_phases, 0u);
  }
  // Forced fabric: no IPC channel exists, so auto must not split.
  {
    ClusterConfig cfg = workload_config(4, 2, core::CollSelect::kAuto);
    cfg.tunables.transport_select = core::TransportSelect::kFabric;
    Cluster cluster(cfg);
    cluster.run([](Context& ctx) { ctx.comm.barrier(); });
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(cluster.coll_stats(r).barrier.hier_calls, 0u);
    }
  }
}

TEST(HierColl, AutoIsRankInvariantOnRaggedTopology) {
  // Regression: a 2+1 ragged comm at a bandwidth-regime payload. The old
  // auto sketch read the caller's own node size, so the 2-rank node chose
  // hier while the singleton chose flat -> mismatched algorithms/tags and
  // a deadlock. The decision is now a pure function of the (identical)
  // node map: on ragged topologies auto must stay flat on every rank and
  // the collectives must complete with correct results.
  Cluster cluster(workload_config(3, 2, core::CollSelect::kAuto));
  cluster.run([](Context& ctx) {
    std::vector<double> in(4096, static_cast<double>(ctx.rank + 1));
    std::vector<double> out(4096);
    ctx.comm.allreduce_sum(in.data(), out.data(), 4096);
    for (double v : out) ASSERT_EQ(v, 6.0);  // 1 + 2 + 3

    auto ints = committed(Datatype::int32());
    std::vector<std::int32_t> mine(4096, ctx.rank);
    std::vector<std::int32_t> all(3 * 4096);
    ctx.comm.allgather(mine.data(), 4096, ints, all.data());
    for (int r = 0; r < 3; ++r) {
      ASSERT_EQ(all[static_cast<std::size_t>(r) * 4096], r);
    }

    std::vector<std::int32_t> a2a_in(3 * 4096, ctx.rank);
    std::vector<std::int32_t> a2a_out(3 * 4096);
    ctx.comm.alltoall(a2a_in.data(), a2a_out.data(), 4096, ints);
    for (int r = 0; r < 3; ++r) {
      ASSERT_EQ(a2a_out[static_cast<std::size_t>(r) * 4096], r);
    }
  });
  for (int r = 0; r < 3; ++r) {
    EXPECT_EQ(cluster.coll_stats(r).allreduce.hier_calls, 0u) << "rank " << r;
    EXPECT_EQ(cluster.coll_stats(r).allgather.hier_calls, 0u) << "rank " << r;
    EXPECT_EQ(cluster.coll_stats(r).alltoall.hier_calls, 0u) << "rank " << r;
  }
}

TEST(HierColl, CostHintsMirrorIpcModelSizeSplit) {
  // The auto sketch must see both in-node copy rates and the shm/CMA
  // threshold the IPC channel actually models, not just the large-copy
  // rate (which overestimates sub-threshold payloads by ~2.3x).
  ClusterConfig cfg;
  cfg.ranks = 2;
  cfg.tunables.ranks_per_node = 2;
  cfg.gpu_cost.shm_host_bw = 3.0;
  cfg.gpu_cost.cma_host_bw = 9.0;
  cfg.gpu_cost.shm_cma_threshold = 4096;
  Cluster cluster(cfg);
  const mpisim::detail::CollCostHints& h = cluster.coll_cost_hints(0);
  EXPECT_EQ(h.ipc_shm_bw, 3.0);
  EXPECT_EQ(h.ipc_cma_bw, 9.0);
  EXPECT_EQ(h.ipc_cma_threshold, 4096u);
  EXPECT_EQ(h.ipc_host_bw(4095), 3.0);
  EXPECT_EQ(h.ipc_host_bw(4096), 9.0);
}

TEST(HierColl, IntraNodeTrafficRidesIpcChannel) {
  Cluster cluster(workload_config(4, 2, core::CollSelect::kHier));
  cluster.run([](Context& ctx) {
    auto ints = committed(Datatype::int32());
    std::vector<std::int32_t> mine(1024, ctx.rank);
    std::vector<std::int32_t> all(4 * 1024);
    ctx.comm.allgather(mine.data(), 1024, ints, all.data());
    for (int r = 0; r < 4; ++r) {
      EXPECT_EQ(all[static_cast<std::size_t>(r) * 1024], r);
    }
  });
  std::uint64_t ipc_msgs = 0;
  for (int r = 0; r < 4; ++r) {
    ipc_msgs += cluster.rank_stats(r).ipc_messages_sent;
  }
  EXPECT_GT(ipc_msgs, 0u);
}

TEST(HierColl, CoLocatedHostRendezvousBeatsForcedFabric) {
  // The CMA/shm cost term: a 1 MB host->host rendezvous between two ranks
  // on one node must be modeled faster over the IPC channel (single-copy
  // cross-memory attach) than the same pair forced onto the QDR fabric.
  auto timed_send = [](core::TransportSelect select) {
    ClusterConfig cfg;
    cfg.ranks = 2;
    cfg.tunables.ranks_per_node = 2;
    cfg.tunables.transport_select = select;
    Cluster cluster(cfg);
    cluster.run([](Context& ctx) {
      auto bytes = committed(Datatype::byte());
      std::vector<std::byte> buf(1 << 20);
      if (ctx.rank == 0) {
        ctx.comm.send(buf.data(), static_cast<int>(buf.size()), bytes, 1, 0);
      } else {
        ctx.comm.recv(buf.data(), static_cast<int>(buf.size()), bytes, 0, 0);
      }
    });
    return cluster.elapsed();
  };
  const sim::SimTime ipc = timed_send(core::TransportSelect::kAuto);
  const sim::SimTime fabric = timed_send(core::TransportSelect::kFabric);
  EXPECT_LT(ipc, fabric);
}

TEST(HierColl, SmallHostCopiesUseShmBelowCmaThreshold) {
  // The size split is observable end to end: speeding up only the shm term
  // must speed up a sub-threshold host rendezvous and leave a 1 MB one
  // (which rides CMA) untouched.
  auto timed_send = [](std::size_t n, double shm_bw) {
    ClusterConfig cfg;
    cfg.ranks = 2;
    cfg.tunables.ranks_per_node = 2;
    cfg.tunables.eager_threshold = 1024;  // force rendezvous even at 4 KB
    cfg.gpu_cost.shm_host_bw = shm_bw;
    Cluster cluster(cfg);
    cluster.run([n](Context& ctx) {
      auto bytes = committed(Datatype::byte());
      std::vector<std::byte> buf(n);
      if (ctx.rank == 0) {
        ctx.comm.send(buf.data(), static_cast<int>(n), bytes, 1, 0);
      } else {
        ctx.comm.recv(buf.data(), static_cast<int>(n), bytes, 0, 0);
      }
    });
    return cluster.elapsed();
  };
  EXPECT_LT(timed_send(4096, /*shm_bw=*/50.0), timed_send(4096, 2.0));
  EXPECT_EQ(timed_send(1 << 20, /*shm_bw=*/50.0), timed_send(1 << 20, 2.0));
}
