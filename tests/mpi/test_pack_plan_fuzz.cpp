// Seeded fuzz: random datatype trees x random chunk splits.
//
// Invariants checked per (tree, count, split):
//   * concat(chunked pack_bytes) == whole-message pack, byte-exact;
//   * cursor-resumed pack_bytes_from == offset-based pack_bytes;
//   * chunked unpack round-trips byte-exact (repack == packed stream);
//   * plans fetched from the process-wide cache produce results identical
//     to uncached plans (cursor tables and segment counts included);
//   * the device path (submit_device_pack/unpack: 2-D, batched sub-pattern
//     and generalized kernels) moves the same bytes as the host pack.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <functional>
#include <random>
#include <vector>

#include "core/gpu_staging.hpp"
#include "core/msg_view.hpp"
#include "core/pack_plan.hpp"
#include "cuda/runtime.hpp"
#include "gpu/device.hpp"
#include "mpi/datatype.hpp"
#include "sim/engine.hpp"

namespace core = mv2gnc::core;
namespace cusim = mv2gnc::cusim;
namespace gpu = mv2gnc::gpu;
namespace sim = mv2gnc::sim;
using mv2gnc::mpisim::Datatype;
using mv2gnc::mpisim::PackCursor;

namespace {

// Random committed tree with non-negative offsets (device-allocatable) and
// non-overlapping segments (unpack round-trips must be well-defined).
Datatype random_tree(std::mt19937& rng, int depth) {
  const auto pick = [&](int n) { return static_cast<int>(rng() % n); };
  if (depth <= 0 || pick(4) == 0) {
    switch (pick(3)) {
      case 0: return Datatype::byte();
      case 1: return Datatype::int32();
      default: return Datatype::float64();
    }
  }
  Datatype child = random_tree(rng, depth - 1);
  switch (pick(5)) {
    case 0:
      return Datatype::contiguous(1 + pick(4), child);
    case 1: {
      const int blocklen = 1 + pick(3);
      const int stride = blocklen + pick(4);
      return Datatype::vector(1 + pick(5), blocklen, stride, child);
    }
    case 2: {
      const int blocklen = 1 + pick(3);
      const std::int64_t stride =
          static_cast<std::int64_t>(blocklen) * child.extent() +
          static_cast<std::int64_t>(pick(24));
      return Datatype::hvector(1 + pick(5), blocklen, stride, child);
    }
    case 3: {
      const int n = 1 + pick(4);
      std::vector<int> lens, displs;
      int at = pick(3);
      for (int i = 0; i < n; ++i) {
        const int len = 1 + pick(3);
        lens.push_back(len);
        displs.push_back(at);
        at += len + pick(3);
      }
      return Datatype::indexed(lens, displs, child);
    }
    default:
      // Keep the child's lb and only grow the extent, so data always
      // stays inside [lb, ub] and span_bytes() below is an upper bound.
      return Datatype::resized(child, child.lower_bound(),
                               child.extent() + pick(16));
  }
}

// Bytes a send/recv buffer must cover: element i occupies
// [i*extent + lb, i*extent + ub], and lb >= 0 for every generated tree.
std::size_t span_bytes(const Datatype& t, int count) {
  return static_cast<std::size_t>(
      static_cast<std::int64_t>(count - 1) * t.extent() + t.upper_bound());
}

// Random split of [0, total) into contiguous chunks.
std::vector<std::size_t> random_splits(std::mt19937& rng, std::size_t total) {
  std::vector<std::size_t> cuts{0, total};
  const int extra = static_cast<int>(rng() % 6);
  for (int i = 0; i < extra; ++i) cuts.push_back(rng() % (total + 1));
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());
  return cuts;
}

std::vector<std::byte> random_bytes(std::mt19937& rng, std::size_t n) {
  std::vector<std::byte> v(n);
  for (auto& b : v) b = static_cast<std::byte>(rng() & 0xFF);
  return v;
}

}  // namespace

TEST(PackPlanFuzz, HostChunkedPackMatchesWholeAndRoundTrips) {
  std::mt19937 rng(20260806);
  for (int iter = 0; iter < 60; ++iter) {
    Datatype t = random_tree(rng, 3);
    t.commit();
    const int count = 1 + static_cast<int>(rng() % 3);
    const std::size_t packed = t.size() * static_cast<std::size_t>(count);
    if (packed == 0) continue;
    const std::size_t span = span_bytes(t, count);
    const std::vector<std::byte> src = random_bytes(rng, span);

    std::vector<std::byte> whole(packed);
    t.pack(src.data(), count, whole.data());

    // Chunked pack, offset-based and cursor-resumed, must concat to whole.
    const auto cuts = random_splits(rng, packed);
    std::vector<std::byte> chunked(packed, std::byte{0xEE});
    std::vector<std::byte> cursored(packed, std::byte{0xEE});
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
      const std::size_t off = cuts[i];
      const std::size_t len = cuts[i + 1] - cuts[i];
      t.pack_bytes(src.data(), count, off, len, chunked.data() + off);
      const PackCursor cur = t.cursor_at(count, off);
      t.pack_bytes_from(cur, src.data(), count, len, cursored.data() + off);
    }
    ASSERT_EQ(whole, chunked) << "iter " << iter << ": " << t.describe();
    ASSERT_EQ(whole, cursored) << "iter " << iter << ": " << t.describe();

    // Chunked unpack into a scratch buffer, then repack: byte-exact.
    std::vector<std::byte> scratch(span, std::byte{0x5A});
    for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
      const std::size_t off = cuts[i];
      const std::size_t len = cuts[i + 1] - cuts[i];
      const PackCursor cur = t.cursor_at(count, off);
      t.unpack_bytes_from(cur, whole.data() + off, count, len,
                          scratch.data());
    }
    std::vector<std::byte> repacked(packed);
    t.pack(scratch.data(), count, repacked.data());
    ASSERT_EQ(whole, repacked) << "iter " << iter << ": " << t.describe();
  }
}

TEST(PackPlanFuzz, CachedPlansMatchUncached) {
  std::mt19937 rng(987654);
  auto& cache = core::PlanCache::instance();
  cache.reset();
  for (int iter = 0; iter < 40; ++iter) {
    Datatype t = random_tree(rng, 3);
    t.commit();
    const int count = 1 + static_cast<int>(rng() % 3);
    if (t.size() == 0) continue;
    auto cached = cache.get(t, count);
    auto uncached = core::PackPlan::build(t, count);
    ASSERT_EQ(cached->signature(), uncached->signature());
    ASSERT_EQ(cached->packed_bytes(), uncached->packed_bytes());
    ASSERT_EQ(cached->total_segments(), uncached->total_segments());
    ASSERT_EQ(cached->layout(), uncached->layout());
    ASSERT_EQ(cached->subpatterns().size(), uncached->subpatterns().size());
    const std::size_t chunk = 1 + rng() % cached->packed_bytes();
    auto ct = cached->chunk_cursors(chunk);
    auto ut = uncached->chunk_cursors(chunk);
    ASSERT_EQ(ct->count, ut->count);
    ASSERT_EQ(ct->cursors, ut->cursors);
    ASSERT_EQ(ct->segments, ut->segments);
    // A second fetch is a hit returning the identical plan object.
    ASSERT_EQ(cache.get(t, count).get(), cached.get());
  }
  EXPECT_GT(cache.stats().hits, 0u);
}

TEST(PackPlanFuzz, DeviceChunkedPackMatchesHostPack) {
  std::mt19937 rng(424242);
  for (int iter = 0; iter < 12; ++iter) {
    Datatype t = random_tree(rng, 3);
    t.commit();
    const int count = 1 + static_cast<int>(rng() % 2);
    const std::size_t packed = t.size() * static_cast<std::size_t>(count);
    if (packed == 0) continue;
    const std::size_t span = span_bytes(t, count);

    sim::Engine eng;
    gpu::MemoryRegistry reg;
    gpu::Device dev{eng, reg, 0, gpu::GpuCostModel::tesla_c2050(), 512u << 20};
    cusim::CudaContext ctx{dev};
    const std::vector<std::byte> src = random_bytes(rng, span);
    std::vector<std::byte> expect(packed);
    t.pack(src.data(), count, expect.data());
    const auto cuts = random_splits(rng, packed);

    std::vector<std::byte> dev_packed(packed);
    std::vector<std::byte> dev_unpacked(packed);
    eng.spawn("fuzz", [&] {
      auto* buf = static_cast<std::byte*>(ctx.malloc(span));
      auto* tbuf = static_cast<std::byte*>(ctx.malloc(packed));
      ctx.memcpy(buf, src.data(), span, cusim::MemcpyKind::kHostToDevice);
      auto msg = core::MsgView::make(buf, count, t, reg);
      for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
        core::submit_device_pack(ctx, ctx.default_stream(), msg, cuts[i],
                                 cuts[i + 1] - cuts[i], tbuf + cuts[i]);
      }
      ctx.device_synchronize();
      ctx.memcpy(dev_packed.data(), tbuf, packed,
                 cusim::MemcpyKind::kDeviceToHost);
      // Scatter back into a scrubbed buffer, then gather again.
      ctx.memset(buf, 0xA5, span);
      for (std::size_t i = 0; i + 1 < cuts.size(); ++i) {
        core::submit_device_unpack(ctx, ctx.default_stream(), msg, cuts[i],
                                   cuts[i + 1] - cuts[i], tbuf + cuts[i]);
      }
      ctx.device_synchronize();
      core::submit_device_pack(ctx, ctx.default_stream(), msg, 0, packed,
                               tbuf);
      ctx.device_synchronize();
      ctx.memcpy(dev_unpacked.data(), tbuf, packed,
                 cusim::MemcpyKind::kDeviceToHost);
      ctx.free(tbuf);
      ctx.free(buf);
    });
    eng.run();
    ASSERT_EQ(expect, dev_packed) << "iter " << iter << ": " << t.describe();
    ASSERT_EQ(expect, dev_unpacked) << "iter " << iter << ": " << t.describe();
  }
}
