// Extended MPI surface: probe/iprobe, Status::count, explicit pack/unpack
// (including the GPU-aware variants), gather/scatter/allgather/alltoall —
// with host and device buffers.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpi/cluster.hpp"

namespace mpisim = mv2gnc::mpisim;
namespace sim = mv2gnc::sim;
using mpisim::Cluster;
using mpisim::ClusterConfig;
using mpisim::Context;
using mpisim::Datatype;

namespace {

Datatype committed(Datatype t) {
  t.commit();
  return t;
}

}  // namespace

// ---------------------------------------------------------------------------
// Probe
// ---------------------------------------------------------------------------

TEST(Probe, IprobeSeesPendingEager) {
  Cluster cluster(ClusterConfig{.ranks = 2});
  cluster.run([](Context& ctx) {
    auto ints = committed(Datatype::int32());
    if (ctx.rank == 0) {
      std::vector<int> v(10, 3);
      ctx.comm.send(v.data(), 10, ints, 1, 5);
    } else {
      EXPECT_FALSE(ctx.comm.iprobe(0, 5));  // nothing yet
      ctx.engine->delay(sim::milliseconds(1));
      mpisim::Status st;
      EXPECT_TRUE(ctx.comm.iprobe(0, 5, &st));
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 5);
      EXPECT_EQ(st.bytes, 40u);
      // Probing does not consume: the receive still matches.
      std::vector<int> got(10, -1);
      ctx.comm.recv(got.data(), 10, ints, 0, 5);
      EXPECT_EQ(got[9], 3);
      EXPECT_FALSE(ctx.comm.iprobe(0, 5));  // consumed now
    }
  });
}

TEST(Probe, BlockingProbeThenSizedRecv) {
  // The classic probe pattern: learn the size, allocate, then receive.
  Cluster cluster(ClusterConfig{.ranks = 2});
  cluster.run([](Context& ctx) {
    auto ints = committed(Datatype::int32());
    if (ctx.rank == 0) {
      std::vector<int> v(7777);
      std::iota(v.begin(), v.end(), 0);
      ctx.engine->delay(sim::microseconds(500));
      ctx.comm.send(v.data(), 7777, ints, 1, 9);
    } else {
      mpisim::Status st;
      ctx.comm.probe(0, 9, &st);
      auto n = st.count(ints);
      ASSERT_TRUE(n.has_value());
      EXPECT_EQ(*n, 7777);
      std::vector<int> got(static_cast<std::size_t>(*n));
      ctx.comm.recv(got.data(), *n, ints, 0, 9);
      EXPECT_EQ(got[7776], 7776);
    }
  });
}

TEST(Probe, ProbeSeesRendezvousToo) {
  Cluster cluster(ClusterConfig{.ranks = 2});
  cluster.run([](Context& ctx) {
    auto bytes = committed(Datatype::byte());
    const std::size_t n = 256 * 1024;
    if (ctx.rank == 0) {
      std::vector<std::byte> v(n, std::byte{1});
      ctx.comm.send(v.data(), static_cast<int>(n), bytes, 1, 2);
    } else {
      mpisim::Status st;
      ctx.comm.probe(0, 2, &st);
      EXPECT_EQ(st.bytes, n);  // size known from the RTS
      std::vector<std::byte> got(n);
      ctx.comm.recv(got.data(), static_cast<int>(n), bytes, 0, 2);
      EXPECT_EQ(got[n - 1], std::byte{1});
    }
  });
}

TEST(Probe, WildcardProbe) {
  Cluster cluster(ClusterConfig{.ranks = 3});
  cluster.run([](Context& ctx) {
    auto ints = committed(Datatype::int32());
    if (ctx.rank == 0) {
      mpisim::Status st;
      ctx.comm.probe(mpisim::kAnySource, mpisim::kAnyTag, &st);
      EXPECT_EQ(st.source, 2);
      EXPECT_EQ(st.tag, 4);
      int v = 0;
      ctx.comm.recv(&v, 1, ints, st.source, st.tag);
      EXPECT_EQ(v, 99);
    } else if (ctx.rank == 2) {
      int v = 99;
      ctx.comm.send(&v, 1, ints, 0, 4);
    }
  });
}

// ---------------------------------------------------------------------------
// Status::count
// ---------------------------------------------------------------------------

TEST(StatusCount, WholeAndPartialElements) {
  mpisim::Status st;
  st.bytes = 40;
  auto ints = committed(Datatype::int32());
  EXPECT_EQ(st.count(ints), 10);
  st.bytes = 42;  // not a whole number of ints
  EXPECT_EQ(st.count(ints), std::nullopt);
  st.bytes = 0;
  EXPECT_EQ(st.count(ints), 0);
  EXPECT_THROW(st.count(Datatype{}), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Explicit pack/unpack
// ---------------------------------------------------------------------------

TEST(PackUnpack, HostRoundTripWithPosition) {
  Cluster cluster(ClusterConfig{.ranks = 1});
  cluster.run([](Context& ctx) {
    auto vec = committed(Datatype::vector(8, 1, 3, Datatype::int32()));
    auto ints = committed(Datatype::int32());
    std::vector<int> strided(24);
    std::iota(strided.begin(), strided.end(), 0);
    std::vector<int> extra{100, 200};
    std::vector<std::byte> wire(ctx.comm.pack_size(1, vec) +
                                ctx.comm.pack_size(2, ints));
    std::size_t pos = 0;
    ctx.comm.pack(strided.data(), 1, vec, wire.data(), wire.size(), pos);
    ctx.comm.pack(extra.data(), 2, ints, wire.data(), wire.size(), pos);
    EXPECT_EQ(pos, wire.size());

    std::vector<int> strided_out(24, -1);
    std::vector<int> extra_out(2, -1);
    pos = 0;
    ctx.comm.unpack(wire.data(), wire.size(), pos, strided_out.data(), 1,
                    vec);
    ctx.comm.unpack(wire.data(), wire.size(), pos, extra_out.data(), 2, ints);
    EXPECT_EQ(strided_out[0], 0);
    EXPECT_EQ(strided_out[21], 21);
    EXPECT_EQ(strided_out[1], -1);  // hole untouched
    EXPECT_EQ(extra_out[1], 200);
  });
}

TEST(PackUnpack, GpuAwarePackUsesOffload) {
  Cluster cluster(ClusterConfig{.ranks = 1});
  cluster.run([](Context& ctx) {
    auto vec = committed(Datatype::vector(5000, 1, 2, Datatype::float32()));
    const std::size_t span = 5000ull * 8 + 16;
    auto* dev = static_cast<std::byte*>(ctx.cuda->malloc(span));
    std::vector<std::byte> init(span);
    for (std::size_t i = 0; i < span; ++i) {
      init[i] = static_cast<std::byte>(i * 11 & 0xFF);
    }
    ctx.cuda->memcpy(dev, init.data(), span);
    std::vector<std::byte> wire(ctx.comm.pack_size(1, vec));
    std::size_t pos = 0;
    ctx.comm.pack(dev, 1, vec, wire.data(), wire.size(), pos);
    // Compare with a host-side reference pack.
    std::vector<std::byte> want(wire.size());
    vec.pack(init.data(), 1, want.data());
    EXPECT_EQ(wire, want);
    // And unpack back into a scrubbed device buffer.
    auto* dev2 = static_cast<std::byte*>(ctx.cuda->malloc(span));
    ctx.cuda->memset(dev2, 0, span);
    pos = 0;
    ctx.comm.unpack(wire.data(), wire.size(), pos, dev2, 1, vec);
    std::vector<std::byte> out(span);
    ctx.cuda->memcpy(out.data(), dev2, span);
    EXPECT_EQ(out[0], init[0]);
    EXPECT_EQ(out[4999 * 8], init[4999 * 8]);
    ctx.cuda->free(dev);
    ctx.cuda->free(dev2);
  });
}

TEST(PackUnpack, BufferOverrunThrows) {
  Cluster cluster(ClusterConfig{.ranks = 1});
  cluster.run([](Context& ctx) {
    auto ints = committed(Datatype::int32());
    std::vector<int> v(10);
    std::vector<std::byte> wire(8);  // too small for 10 ints
    std::size_t pos = 0;
    EXPECT_THROW(
        ctx.comm.pack(v.data(), 10, ints, wire.data(), wire.size(), pos),
        std::invalid_argument);
    pos = 0;
    EXPECT_THROW(ctx.comm.unpack(wire.data(), wire.size(), pos, v.data(), 10,
                                 ints),
                 std::invalid_argument);
  });
}

// ---------------------------------------------------------------------------
// Persistent requests
// ---------------------------------------------------------------------------

TEST(Persistent, IterativeExchange) {
  Cluster cluster(ClusterConfig{.ranks = 2});
  cluster.run([](Context& ctx) {
    auto ints = committed(Datatype::int32());
    const int peer = 1 - ctx.rank;
    const int n = 50'000;  // rendezvous-sized, exercises the pipeline
    std::vector<int> out(n), in(n, -1);
    auto sreq = ctx.comm.send_init(out.data(), n, ints, peer, 4);
    auto rreq = ctx.comm.recv_init(in.data(), n, ints, peer, 4);
    for (int it = 0; it < 5; ++it) {
      std::fill(out.begin(), out.end(), ctx.rank * 1000 + it);
      rreq.start();
      sreq.start();
      sreq.wait();
      mpisim::Status st;
      rreq.wait(&st);
      EXPECT_EQ(in[0], peer * 1000 + it);
      EXPECT_EQ(in[n - 1], peer * 1000 + it);
      EXPECT_EQ(st.bytes, static_cast<std::size_t>(n) * 4);
    }
  });
}

TEST(Persistent, StartallWaitall) {
  Cluster cluster(ClusterConfig{.ranks = 2});
  cluster.run([](Context& ctx) {
    auto ints = committed(Datatype::int32());
    const int peer = 1 - ctx.rank;
    std::vector<int> a(100, ctx.rank), b(100, ctx.rank + 10);
    std::vector<int> ra(100), rb(100);
    std::vector<mpisim::PersistentRequest> reqs;
    reqs.push_back(ctx.comm.recv_init(ra.data(), 100, ints, peer, 1));
    reqs.push_back(ctx.comm.recv_init(rb.data(), 100, ints, peer, 2));
    reqs.push_back(ctx.comm.send_init(a.data(), 100, ints, peer, 1));
    reqs.push_back(ctx.comm.send_init(b.data(), 100, ints, peer, 2));
    for (int it = 0; it < 3; ++it) {
      ctx.comm.startall(reqs);
      ctx.comm.waitall_persistent(reqs);
      EXPECT_EQ(ra[0], peer);
      EXPECT_EQ(rb[0], peer + 10);
    }
  });
}

TEST(Persistent, MisuseThrows) {
  Cluster cluster(ClusterConfig{.ranks = 2});
  cluster.run([](Context& ctx) {
    auto ints = committed(Datatype::int32());
    if (ctx.rank == 0) {
      int v = 0;
      auto req = ctx.comm.send_init(&v, 1, ints, 1, 0);
      EXPECT_THROW(req.wait(), std::logic_error);  // not started
      req.start();
      EXPECT_THROW(req.start(), std::logic_error);  // double start
      req.wait();
      req.start();  // restart after completion is fine
      req.wait();
      mpisim::PersistentRequest null_req;
      EXPECT_THROW(null_req.start(), std::logic_error);
    } else {
      int v = 0;
      ctx.comm.recv(&v, 1, ints, 0, 0);
      ctx.comm.recv(&v, 1, ints, 0, 0);
    }
  });
}

// ---------------------------------------------------------------------------
// Collectives (host and device)
// ---------------------------------------------------------------------------

class CollectiveRanks : public ::testing::TestWithParam<int> {};

TEST_P(CollectiveRanks, GatherScatterRoundTrip) {
  const int ranks = GetParam();
  Cluster cluster(ClusterConfig{.ranks = ranks});
  cluster.run([&](Context& ctx) {
    auto ints = committed(Datatype::int32());
    const int n = 100;
    std::vector<int> mine(n, ctx.rank * 10);
    std::vector<int> all(static_cast<std::size_t>(n) * ranks, -1);
    ctx.comm.gather(mine.data(), n, ints, all.data(), ranks - 1);
    if (ctx.rank == ranks - 1) {
      for (int i = 0; i < ranks; ++i) {
        EXPECT_EQ(all[static_cast<std::size_t>(i) * n], i * 10);
        EXPECT_EQ(all[static_cast<std::size_t>(i) * n + n - 1], i * 10);
      }
    }
    // Scatter it back out.
    std::vector<int> back(n, -1);
    ctx.comm.scatter(all.data(), back.data(), n, ints, ranks - 1);
    EXPECT_EQ(back[0], ctx.rank * 10);
  });
}

TEST_P(CollectiveRanks, AllgatherEveryoneSeesAll) {
  const int ranks = GetParam();
  Cluster cluster(ClusterConfig{.ranks = ranks});
  cluster.run([&](Context& ctx) {
    auto ints = committed(Datatype::int32());
    int mine = ctx.rank + 1;
    std::vector<int> all(static_cast<std::size_t>(ranks), -1);
    ctx.comm.allgather(&mine, 1, ints, all.data());
    for (int i = 0; i < ranks; ++i) EXPECT_EQ(all[i], i + 1);
  });
}

TEST_P(CollectiveRanks, AlltoallPermutesBlocks) {
  const int ranks = GetParam();
  Cluster cluster(ClusterConfig{.ranks = ranks});
  cluster.run([&](Context& ctx) {
    auto ints = committed(Datatype::int32());
    const int n = 50;
    std::vector<int> out(static_cast<std::size_t>(n) * ranks);
    for (int j = 0; j < ranks; ++j) {
      std::fill_n(out.begin() + static_cast<std::size_t>(j) * n, n,
                  ctx.rank * 100 + j);
    }
    std::vector<int> in(static_cast<std::size_t>(n) * ranks, -1);
    ctx.comm.alltoall(out.data(), in.data(), n, ints);
    for (int i = 0; i < ranks; ++i) {
      // Block i must hold what rank i addressed to us.
      EXPECT_EQ(in[static_cast<std::size_t>(i) * n], i * 100 + ctx.rank);
    }
  });
}

INSTANTIATE_TEST_SUITE_P(Sizes, CollectiveRanks, ::testing::Values(1, 2, 4, 8));

TEST(DeviceCollectives, BcastFromDeviceMemory) {
  Cluster cluster(ClusterConfig{.ranks = 4});
  cluster.run([](Context& ctx) {
    auto ints = committed(Datatype::int32());
    const int n = 60'000;  // rendezvous-sized
    auto* dev = static_cast<int*>(ctx.cuda->malloc(n * sizeof(int)));
    if (ctx.rank == 1) {
      std::vector<int> v(n);
      std::iota(v.begin(), v.end(), 0);
      ctx.cuda->memcpy(dev, v.data(), n * sizeof(int));
    } else {
      ctx.cuda->memset(dev, 0, n * sizeof(int));
    }
    ctx.comm.bcast(dev, n, ints, 1);
    std::vector<int> got(n);
    ctx.cuda->memcpy(got.data(), dev, n * sizeof(int));
    EXPECT_EQ(got[0], 0);
    EXPECT_EQ(got[n - 1], n - 1);
    ctx.cuda->free(dev);
  });
}

TEST(DeviceCollectives, AlltoallWithDeviceBuffers) {
  Cluster cluster(ClusterConfig{.ranks = 4});
  cluster.run([](Context& ctx) {
    auto ints = committed(Datatype::int32());
    const int n = 30'000;
    const std::size_t total = static_cast<std::size_t>(n) * 4;
    auto* out = static_cast<int*>(ctx.cuda->malloc(total * sizeof(int)));
    auto* in = static_cast<int*>(ctx.cuda->malloc(total * sizeof(int)));
    std::vector<int> host(total);
    for (int j = 0; j < 4; ++j) {
      std::fill_n(host.begin() + static_cast<std::size_t>(j) * n, n,
                  ctx.rank * 10 + j);
    }
    ctx.cuda->memcpy(out, host.data(), total * sizeof(int));
    ctx.comm.alltoall(out, in, n, ints);
    ctx.cuda->memcpy(host.data(), in, total * sizeof(int));
    for (int i = 0; i < 4; ++i) {
      EXPECT_EQ(host[static_cast<std::size_t>(i) * n], i * 10 + ctx.rank);
    }
    ctx.cuda->free(out);
    ctx.cuda->free(in);
  });
}
