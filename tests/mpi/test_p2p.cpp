// End-to-end point-to-point semantics over the simulated cluster: eager and
// rendezvous protocols, host and device buffers, contiguous and strided
// datatypes, matching rules, wildcards, unexpected messages, truncation.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "mpi/cluster.hpp"

namespace mpisim = mv2gnc::mpisim;
namespace sim = mv2gnc::sim;
using mpisim::Cluster;
using mpisim::ClusterConfig;
using mpisim::Context;
using mpisim::Datatype;

namespace {

Datatype committed(Datatype t) {
  t.commit();
  return t;
}

std::vector<int> iota_ints(std::size_t n, int start = 0) {
  std::vector<int> v(n);
  std::iota(v.begin(), v.end(), start);
  return v;
}

}  // namespace

TEST(P2P, EagerHostToHost) {
  Cluster cluster(ClusterConfig{.ranks = 2});
  cluster.run([](Context& ctx) {
    auto ints = committed(Datatype::int32());
    if (ctx.rank == 0) {
      auto data = iota_ints(64);
      ctx.comm.send(data.data(), 64, ints, 1, 7);
    } else {
      std::vector<int> got(64, -1);
      mpisim::Status st;
      ctx.comm.recv(got.data(), 64, ints, 0, 7, &st);
      EXPECT_EQ(got, iota_ints(64));
      EXPECT_EQ(st.source, 0);
      EXPECT_EQ(st.tag, 7);
      EXPECT_EQ(st.bytes, 256u);
    }
  });
}

TEST(P2P, RendezvousHostToHostContiguous) {
  Cluster cluster(ClusterConfig{.ranks = 2});
  cluster.run([](Context& ctx) {
    auto ints = committed(Datatype::int32());
    const int n = 1 << 20;  // 4 MB: far beyond eager
    if (ctx.rank == 0) {
      auto data = iota_ints(n);
      ctx.comm.send(data.data(), n, ints, 1, 0);
    } else {
      std::vector<int> got(n, -1);
      ctx.comm.recv(got.data(), n, ints, 0, 0);
      EXPECT_EQ(got, iota_ints(n));
    }
  });
}

TEST(P2P, RendezvousHostStridedBothSides) {
  Cluster cluster(ClusterConfig{.ranks = 2});
  cluster.run([](Context& ctx) {
    // 64K rows of 4 bytes out of a 16-byte-pitch matrix: 256 KB payload.
    const int rows = 65536;
    auto col = committed(Datatype::vector(rows, 1, 4, Datatype::int32()));
    std::vector<int> mat(static_cast<std::size_t>(rows) * 4, -1);
    if (ctx.rank == 0) {
      for (int r = 0; r < rows; ++r) mat[static_cast<std::size_t>(r) * 4] = r;
      ctx.comm.send(mat.data(), 1, col, 1, 3);
    } else {
      ctx.comm.recv(mat.data(), 1, col, 0, 3);
      for (int r = 0; r < rows; r += 1023) {
        EXPECT_EQ(mat[static_cast<std::size_t>(r) * 4], r);
      }
      EXPECT_EQ(mat[1], -1);  // holes untouched
    }
  });
}

TEST(P2P, DeviceContiguousLarge) {
  Cluster cluster(ClusterConfig{.ranks = 2});
  cluster.run([](Context& ctx) {
    auto bytes = committed(Datatype::byte());
    const std::size_t n = 1 << 20;
    auto* dev = static_cast<std::byte*>(ctx.cuda->malloc(n));
    if (ctx.rank == 0) {
      std::vector<std::byte> host(n);
      for (std::size_t i = 0; i < n; ++i) {
        host[i] = static_cast<std::byte>(i * 13 & 0xFF);
      }
      ctx.cuda->memcpy(dev, host.data(), n);
      ctx.comm.send(dev, static_cast<int>(n), bytes, 1, 1);
    } else {
      ctx.comm.recv(dev, static_cast<int>(n), bytes, 0, 1);
      std::vector<std::byte> host(n);
      ctx.cuda->memcpy(host.data(), dev, n);
      for (std::size_t i = 0; i < n; i += 4097) {
        EXPECT_EQ(host[i], static_cast<std::byte>(i * 13 & 0xFF)) << i;
      }
    }
    ctx.cuda->free(dev);
  });
}

// The paper's headline path: GPU-to-GPU vector datatype through the
// 5-stage pipeline, verified bit-exactly.
TEST(P2P, DeviceVectorToDeviceVectorPipeline) {
  Cluster cluster(ClusterConfig{.ranks = 2});
  cluster.run([](Context& ctx) {
    const int rows = 1 << 18;  // 1 MB payload over 64K chunks
    const int pitch_elems = 8;
    auto col = committed(
        Datatype::vector(rows, 1, pitch_elems, Datatype::float32()));
    const std::size_t span = static_cast<std::size_t>(rows) * pitch_elems;
    auto* dev = static_cast<float*>(ctx.cuda->malloc(span * sizeof(float)));
    std::vector<float> host(span, -1.f);
    if (ctx.rank == 0) {
      for (int r = 0; r < rows; ++r) {
        host[static_cast<std::size_t>(r) * pitch_elems] = r * 0.5f;
      }
      ctx.cuda->memcpy(dev, host.data(), span * sizeof(float));
      ctx.comm.send(dev, 1, col, 1, 9);
    } else {
      ctx.cuda->memcpy(dev, host.data(), span * sizeof(float));  // -1 fill
      ctx.comm.recv(dev, 1, col, 0, 9);
      std::vector<float> out(span);
      ctx.cuda->memcpy(out.data(), dev, span * sizeof(float));
      for (int r = 0; r < rows; r += 509) {
        EXPECT_EQ(out[static_cast<std::size_t>(r) * pitch_elems], r * 0.5f);
      }
      EXPECT_EQ(out[1], -1.f);  // strided holes untouched
    }
    ctx.cuda->free(dev);
  });
}

TEST(P2P, DeviceToHostAndHostToDevice) {
  Cluster cluster(ClusterConfig{.ranks = 2});
  cluster.run([](Context& ctx) {
    auto ints = committed(Datatype::int32());
    const int n = 100'000;  // 400 KB
    if (ctx.rank == 0) {
      auto* dev = static_cast<int*>(ctx.cuda->malloc(n * sizeof(int)));
      auto data = iota_ints(n);
      ctx.cuda->memcpy(dev, data.data(), n * sizeof(int));
      ctx.comm.send(dev, n, ints, 1, 0);       // device -> host
      ctx.comm.recv(dev, n, ints, 1, 1);       // host -> device
      std::vector<int> back(n);
      ctx.cuda->memcpy(back.data(), dev, n * sizeof(int));
      for (int i = 0; i < n; i += 997) EXPECT_EQ(back[i], i + 1);
      ctx.cuda->free(dev);
    } else {
      std::vector<int> got(n, -1);
      ctx.comm.recv(got.data(), n, ints, 0, 0);
      EXPECT_EQ(got[12345], 12345);
      for (auto& v : got) ++v;
      ctx.comm.send(got.data(), n, ints, 0, 1);
    }
  });
}

TEST(P2P, DeviceStridedToHostStrided) {
  Cluster cluster(ClusterConfig{.ranks = 2});
  cluster.run([](Context& ctx) {
    const int rows = 50'000;
    auto col = committed(Datatype::vector(rows, 2, 6, Datatype::int32()));
    const std::size_t span = static_cast<std::size_t>(col.extent()) / 4 + 16;
    if (ctx.rank == 0) {
      std::vector<int> host(span);
      std::iota(host.begin(), host.end(), 0);
      auto* dev = static_cast<int*>(ctx.cuda->malloc(span * sizeof(int)));
      ctx.cuda->memcpy(dev, host.data(), span * sizeof(int));
      ctx.comm.send(dev, 1, col, 1, 2);
      ctx.cuda->free(dev);
    } else {
      std::vector<int> got(span, -1);
      ctx.comm.recv(got.data(), 1, col, 0, 2);
      for (int r = 0; r < rows; r += 499) {
        EXPECT_EQ(got[static_cast<std::size_t>(r) * 6], r * 6);
        EXPECT_EQ(got[static_cast<std::size_t>(r) * 6 + 1], r * 6 + 1);
      }
      EXPECT_EQ(got[2], -1);
    }
  });
}

TEST(P2P, IrregularIndexedDeviceType) {
  // No vector pattern: exercises the generalized device pack kernel.
  Cluster cluster(ClusterConfig{.ranks = 2});
  cluster.run([](Context& ctx) {
    const std::array<int, 4> lens{3, 1, 4, 2};
    const std::array<int, 4> displs{0, 7, 11, 29};
    auto t = committed(
        Datatype::indexed(lens, displs, Datatype::int32()));
    ASSERT_FALSE(t.vector_pattern(1).has_value());
    const int count = 9000;  // ~360 KB packed: rendezvous
    const std::size_t span =
        static_cast<std::size_t>(t.extent()) / 4 * count + 32;
    if (ctx.rank == 0) {
      std::vector<int> host(span);
      std::iota(host.begin(), host.end(), 0);
      auto* dev = static_cast<int*>(ctx.cuda->malloc(span * sizeof(int)));
      ctx.cuda->memcpy(dev, host.data(), span * sizeof(int));
      ctx.comm.send(dev, count, t, 1, 5);
      ctx.cuda->free(dev);
    } else {
      auto* dev = static_cast<int*>(ctx.cuda->malloc(span * sizeof(int)));
      ctx.cuda->memset(dev, 0, span * sizeof(int));
      ctx.comm.recv(dev, count, t, 0, 5);
      std::vector<int> got(span);
      ctx.cuda->memcpy(got.data(), dev, span * sizeof(int));
      const int ext_ints = static_cast<int>(t.extent()) / 4;
      for (int e = 0; e < count; e += 701) {
        EXPECT_EQ(got[static_cast<std::size_t>(e) * ext_ints + 7],
                  e * ext_ints + 7);
        EXPECT_EQ(got[static_cast<std::size_t>(e) * ext_ints + 30],
                  e * ext_ints + 30);
      }
      ctx.cuda->free(dev);
    }
  });
}

TEST(P2P, AnySourceAnyTag) {
  Cluster cluster(ClusterConfig{.ranks = 3});
  cluster.run([](Context& ctx) {
    auto ints = committed(Datatype::int32());
    if (ctx.rank == 0) {
      int sum = 0;
      for (int i = 0; i < 2; ++i) {
        int v = 0;
        mpisim::Status st;
        ctx.comm.recv(&v, 1, ints, mpisim::kAnySource, mpisim::kAnyTag, &st);
        EXPECT_EQ(v, st.source * 100 + st.tag);
        sum += v;
      }
      EXPECT_EQ(sum, 101 + 202);
    } else {
      int v = ctx.rank * 100 + ctx.rank;
      ctx.comm.send(&v, 1, ints, 0, ctx.rank);
    }
  });
}

TEST(P2P, UnexpectedEagerBuffered) {
  Cluster cluster(ClusterConfig{.ranks = 2});
  cluster.run([](Context& ctx) {
    auto ints = committed(Datatype::int32());
    if (ctx.rank == 0) {
      int v = 42;
      ctx.comm.send(&v, 1, ints, 1, 0);
    } else {
      // Let the message arrive long before the recv is posted.
      ctx.engine->delay(sim::milliseconds(5));
      int got = 0;
      ctx.comm.recv(&got, 1, ints, 0, 0);
      EXPECT_EQ(got, 42);
    }
  });
}

TEST(P2P, UnexpectedRendezvousMatchesLater) {
  Cluster cluster(ClusterConfig{.ranks = 2});
  cluster.run([](Context& ctx) {
    auto ints = committed(Datatype::int32());
    const int n = 1 << 18;
    if (ctx.rank == 0) {
      auto data = iota_ints(n);
      ctx.comm.send(data.data(), n, ints, 1, 0);
    } else {
      ctx.engine->delay(sim::milliseconds(2));  // RTS sits unexpected
      std::vector<int> got(n, -1);
      ctx.comm.recv(got.data(), n, ints, 0, 0);
      EXPECT_EQ(got[n - 1], n - 1);
    }
  });
}

TEST(P2P, TagMatchingSelectsCorrectMessage) {
  Cluster cluster(ClusterConfig{.ranks = 2});
  cluster.run([](Context& ctx) {
    auto ints = committed(Datatype::int32());
    if (ctx.rank == 0) {
      int a = 1, b = 2;
      ctx.comm.send(&a, 1, ints, 1, 10);
      ctx.comm.send(&b, 1, ints, 1, 20);
    } else {
      int x = 0, y = 0;
      // Post in reverse tag order: matching must be by tag, not arrival.
      ctx.comm.recv(&y, 1, ints, 0, 20);
      ctx.comm.recv(&x, 1, ints, 0, 10);
      EXPECT_EQ(x, 1);
      EXPECT_EQ(y, 2);
    }
  });
}

TEST(P2P, NonOvertakingSameTag) {
  Cluster cluster(ClusterConfig{.ranks = 2});
  cluster.run([](Context& ctx) {
    auto ints = committed(Datatype::int32());
    if (ctx.rank == 0) {
      for (int i = 0; i < 8; ++i) ctx.comm.send(&i, 1, ints, 1, 0);
    } else {
      for (int i = 0; i < 8; ++i) {
        int v = -1;
        ctx.comm.recv(&v, 1, ints, 0, 0);
        EXPECT_EQ(v, i);
      }
    }
  });
}

TEST(P2P, IsendIrecvWaitall) {
  Cluster cluster(ClusterConfig{.ranks = 2});
  cluster.run([](Context& ctx) {
    auto ints = committed(Datatype::int32());
    constexpr int kMsgs = 4;
    std::vector<std::vector<int>> bufs(kMsgs, std::vector<int>(5000, -1));
    std::vector<mpisim::Request> reqs;
    if (ctx.rank == 0) {
      for (int m = 0; m < kMsgs; ++m) {
        std::iota(bufs[m].begin(), bufs[m].end(), m * 10000);
        reqs.push_back(ctx.comm.isend(bufs[m].data(), 5000, ints, 1, m));
      }
    } else {
      for (int m = 0; m < kMsgs; ++m) {
        reqs.push_back(ctx.comm.irecv(bufs[m].data(), 5000, ints, 0, m));
      }
    }
    ctx.comm.waitall(reqs);
    if (ctx.rank == 1) {
      for (int m = 0; m < kMsgs; ++m) {
        EXPECT_EQ(bufs[m][4999], m * 10000 + 4999);
      }
    }
  });
}

TEST(P2P, TestPollsWithoutBlocking) {
  Cluster cluster(ClusterConfig{.ranks = 2});
  cluster.run([](Context& ctx) {
    auto ints = committed(Datatype::int32());
    if (ctx.rank == 0) {
      ctx.engine->delay(sim::microseconds(500));
      int v = 5;
      ctx.comm.send(&v, 1, ints, 1, 0);
    } else {
      int got = 0;
      auto req = ctx.comm.irecv(&got, 1, ints, 0, 0);
      int polls = 0;
      while (!ctx.comm.test(req)) {
        ++polls;
        ctx.engine->delay(sim::microseconds(50));
      }
      EXPECT_GT(polls, 3);
      EXPECT_EQ(got, 5);
    }
  });
}

TEST(P2P, ZeroByteMessage) {
  Cluster cluster(ClusterConfig{.ranks = 2});
  cluster.run([](Context& ctx) {
    auto ints = committed(Datatype::int32());
    if (ctx.rank == 0) {
      ctx.comm.send(nullptr, 0, ints, 1, 0);
    } else {
      mpisim::Status st;
      ctx.comm.recv(nullptr, 0, ints, 0, 0, &st);
      EXPECT_EQ(st.bytes, 0u);
    }
  });
}

TEST(P2P, RecvLargerBufferReportsActualBytes) {
  Cluster cluster(ClusterConfig{.ranks = 2});
  cluster.run([](Context& ctx) {
    auto ints = committed(Datatype::int32());
    if (ctx.rank == 0) {
      auto v = iota_ints(10);
      ctx.comm.send(v.data(), 10, ints, 1, 0);
    } else {
      std::vector<int> got(100, -1);
      mpisim::Status st;
      ctx.comm.recv(got.data(), 100, ints, 0, 0, &st);
      EXPECT_EQ(st.bytes, 40u);
      EXPECT_EQ(got[9], 9);
      EXPECT_EQ(got[10], -1);
    }
  });
}

TEST(P2P, TruncationThrows) {
  Cluster cluster(ClusterConfig{.ranks = 2});
  EXPECT_THROW(
      cluster.run([](Context& ctx) {
        auto ints = committed(Datatype::int32());
        if (ctx.rank == 0) {
          auto v = iota_ints(100);
          ctx.comm.send(v.data(), 100, ints, 1, 0);
        } else {
          std::vector<int> got(10);
          ctx.comm.recv(got.data(), 10, ints, 0, 0);
        }
      }),
      mpisim::TruncationError);
}

TEST(P2P, NegativeUserTagRejected) {
  Cluster cluster(ClusterConfig{.ranks = 2});
  EXPECT_THROW(cluster.run([](Context& ctx) {
                 auto ints = committed(Datatype::int32());
                 int v = 0;
                 if (ctx.rank == 0) ctx.comm.send(&v, 1, ints, 1, -5);
                 else ctx.comm.recv(&v, 1, ints, 0, -5);
               }),
               std::invalid_argument);
}

TEST(P2P, SendrecvExchanges) {
  Cluster cluster(ClusterConfig{.ranks = 2});
  cluster.run([](Context& ctx) {
    auto ints = committed(Datatype::int32());
    const int peer = 1 - ctx.rank;
    int mine = ctx.rank + 100;
    int theirs = -1;
    ctx.comm.sendrecv(&mine, 1, ints, peer, 0, &theirs, 1, ints, peer, 0);
    EXPECT_EQ(theirs, peer + 100);
  });
}

TEST(P2P, SimultaneousLargeExchangeBothDirections) {
  // Both ranks send large device messages to each other at once — the
  // pipeline must not deadlock over shared vbuf pools.
  Cluster cluster(ClusterConfig{.ranks = 2});
  cluster.run([](Context& ctx) {
    auto bytes = committed(Datatype::byte());
    const std::size_t n = 2u << 20;
    auto* dev_out = static_cast<std::byte*>(ctx.cuda->malloc(n));
    auto* dev_in = static_cast<std::byte*>(ctx.cuda->malloc(n));
    std::vector<std::byte> host(n, static_cast<std::byte>(ctx.rank + 1));
    ctx.cuda->memcpy(dev_out, host.data(), n);
    const int peer = 1 - ctx.rank;
    auto rr = ctx.comm.irecv(dev_in, static_cast<int>(n), bytes, peer, 0);
    auto sr = ctx.comm.isend(dev_out, static_cast<int>(n), bytes, peer, 0);
    ctx.comm.wait(sr);
    ctx.comm.wait(rr);
    std::vector<std::byte> got(n);
    ctx.cuda->memcpy(got.data(), dev_in, n);
    EXPECT_EQ(got[0], static_cast<std::byte>(peer + 1));
    EXPECT_EQ(got[n - 1], static_cast<std::byte>(peer + 1));
    ctx.cuda->free(dev_out);
    ctx.cuda->free(dev_in);
  });
}

TEST(P2P, WtimeAdvances) {
  Cluster cluster(ClusterConfig{.ranks = 2});
  cluster.run([](Context& ctx) {
    const double t0 = ctx.comm.wtime();
    ctx.engine->delay(sim::milliseconds(3));
    EXPECT_NEAR(ctx.comm.wtime() - t0, 0.003, 1e-9);
  });
}
