// Datatype engine: type-map algebra (size/extent/lb), flattening, pattern
// detection, and pack/unpack correctness for every constructor.
#include "mpi/datatype.hpp"

#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <numeric>
#include <random>
#include <vector>

using mv2gnc::mpisim::ArrayOrder;
using mv2gnc::mpisim::Datatype;
using mv2gnc::mpisim::Segment;
using mv2gnc::mpisim::VectorPattern;

namespace {

Datatype committed(Datatype t) {
  t.commit();
  return t;
}

std::vector<std::byte> pattern_bytes(std::size_t n, unsigned seed = 1) {
  std::vector<std::byte> v(n);
  std::mt19937 rng(seed);
  for (auto& b : v) b = static_cast<std::byte>(rng() & 0xFF);
  return v;
}

}  // namespace

// ---------------------------------------------------------------------------
// Predefined types
// ---------------------------------------------------------------------------

TEST(Datatype, PredefinedSizes) {
  EXPECT_EQ(Datatype::byte().size(), 1u);
  EXPECT_EQ(Datatype::int32().size(), 4u);
  EXPECT_EQ(Datatype::int64().size(), 8u);
  EXPECT_EQ(Datatype::float32().size(), 4u);
  EXPECT_EQ(Datatype::float64().size(), 8u);
  EXPECT_EQ(Datatype::float64().extent(), 8);
  EXPECT_EQ(Datatype::float64().lower_bound(), 0);
}

TEST(Datatype, PredefinedAreContiguousAndShared) {
  EXPECT_TRUE(Datatype::float32().is_contiguous());
  EXPECT_EQ(Datatype::float32(), Datatype::float32());  // same handle
}

TEST(Datatype, NullHandleThrows) {
  Datatype t;
  EXPECT_FALSE(t.valid());
  EXPECT_THROW(t.size(), std::logic_error);
  EXPECT_THROW(t.commit(), std::logic_error);
}

TEST(Datatype, UncommittedPackThrows) {
  auto t = Datatype::vector(2, 1, 2, Datatype::int32());
  std::vector<std::byte> a(64), b(64);
  EXPECT_THROW(t.pack(a.data(), 1, b.data()), std::logic_error);
  EXPECT_THROW(t.segments(), std::logic_error);
}

// ---------------------------------------------------------------------------
// Contiguous
// ---------------------------------------------------------------------------

TEST(Datatype, ContiguousSizeExtent) {
  auto t = Datatype::contiguous(10, Datatype::float64());
  EXPECT_EQ(t.size(), 80u);
  EXPECT_EQ(t.extent(), 80);
  EXPECT_TRUE(t.is_contiguous());
}

TEST(Datatype, ContiguousOfVectorKeepsHoles) {
  auto v = Datatype::vector(2, 1, 2, Datatype::int32());  // 2 ints, hole
  auto t = committed(Datatype::contiguous(3, v));
  EXPECT_EQ(t.size(), 3u * 8u);
  EXPECT_FALSE(t.is_contiguous());
}

TEST(Datatype, ContiguousZeroCount) {
  auto t = committed(Datatype::contiguous(0, Datatype::int32()));
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.extent(), 0);
}

TEST(Datatype, ContiguousMergesChildren) {
  auto t = committed(Datatype::contiguous(16, Datatype::int32()));
  ASSERT_EQ(t.segments().size(), 1u);
  EXPECT_EQ(t.segments()[0], (Segment{0, 64}));
}

TEST(Datatype, NegativeCountThrows) {
  EXPECT_THROW(Datatype::contiguous(-1, Datatype::int32()),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Vector / hvector
// ---------------------------------------------------------------------------

TEST(Datatype, VectorTypeMap) {
  // 3 blocks of 2 floats every 4 floats: [XX..XX..XX] (dots = holes)
  auto t = committed(Datatype::vector(3, 2, 4, Datatype::float32()));
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.extent(), 2 * 16 + 8);  // last block start + block bytes
  EXPECT_EQ(t.lower_bound(), 0);
  ASSERT_EQ(t.segments().size(), 3u);
  EXPECT_EQ(t.segments()[0], (Segment{0, 8}));
  EXPECT_EQ(t.segments()[1], (Segment{16, 8}));
  EXPECT_EQ(t.segments()[2], (Segment{32, 8}));
}

TEST(Datatype, VectorStrideEqualBlockIsContiguous) {
  auto t = committed(Datatype::vector(4, 2, 2, Datatype::int32()));
  EXPECT_TRUE(t.is_contiguous());
  EXPECT_EQ(t.segments().size(), 1u);
}

TEST(Datatype, HvectorByteStride) {
  auto t = committed(Datatype::hvector(2, 1, 10, Datatype::int32()));
  ASSERT_EQ(t.segments().size(), 2u);
  EXPECT_EQ(t.segments()[1].offset, 10);
  EXPECT_EQ(t.extent(), 14);
}

TEST(Datatype, VectorNegativeStride) {
  auto t = committed(Datatype::vector(3, 1, -2, Datatype::int32()));
  EXPECT_EQ(t.lower_bound(), -16);
  EXPECT_EQ(t.extent(), 20);  // from -16 to +4
  EXPECT_EQ(t.size(), 12u);
}

TEST(Datatype, VectorPackUnpackRoundTrip) {
  // The paper's east/west halo: one float column of a pitched matrix.
  constexpr int rows = 64, cols = 16;
  auto col = committed(Datatype::vector(rows, 1, cols, Datatype::float32()));
  std::vector<float> mat(rows * cols);
  std::iota(mat.begin(), mat.end(), 0.f);
  std::vector<float> packed(rows, -1.f);
  col.pack(mat.data() + 5, 1, packed.data());  // column 5
  for (int r = 0; r < rows; ++r) {
    EXPECT_EQ(packed[r], static_cast<float>(r * cols + 5));
  }
  std::vector<float> mat2(rows * cols, 0.f);
  col.unpack(packed.data(), 1, mat2.data() + 5);
  for (int r = 0; r < rows; ++r) {
    EXPECT_EQ(mat2[r * cols + 5], static_cast<float>(r * cols + 5));
  }
}

// ---------------------------------------------------------------------------
// Indexed / hindexed / indexed_block
// ---------------------------------------------------------------------------

TEST(Datatype, IndexedTypeMap) {
  const std::array<int, 3> lens{2, 1, 3};
  const std::array<int, 3> displs{0, 4, 8};
  auto t = committed(Datatype::indexed(lens, displs, Datatype::int32()));
  EXPECT_EQ(t.size(), 24u);
  ASSERT_EQ(t.segments().size(), 3u);
  EXPECT_EQ(t.segments()[0], (Segment{0, 8}));
  EXPECT_EQ(t.segments()[1], (Segment{16, 4}));
  EXPECT_EQ(t.segments()[2], (Segment{32, 12}));
  EXPECT_EQ(t.extent(), 44);
}

TEST(Datatype, IndexedAdjacentBlocksMerge) {
  const std::array<int, 2> lens{2, 2};
  const std::array<int, 2> displs{0, 2};
  auto t = committed(Datatype::indexed(lens, displs, Datatype::int32()));
  ASSERT_EQ(t.segments().size(), 1u);
  EXPECT_EQ(t.segments()[0].length, 16u);
  EXPECT_TRUE(t.is_contiguous());
}

TEST(Datatype, IndexedMismatchedSpansThrow) {
  const std::array<int, 2> lens{1, 1};
  const std::array<int, 1> displs{0};
  EXPECT_THROW(Datatype::indexed(lens, displs, Datatype::int32()),
               std::invalid_argument);
}

TEST(Datatype, HindexedByteDisplacements) {
  const std::array<int, 2> lens{1, 1};
  const std::array<std::int64_t, 2> displs{0, 7};
  auto t = committed(Datatype::hindexed(lens, displs, Datatype::int32()));
  ASSERT_EQ(t.segments().size(), 2u);
  EXPECT_EQ(t.segments()[1].offset, 7);
}

TEST(Datatype, IndexedBlockEqualLengths) {
  const std::array<int, 3> displs{0, 3, 9};
  auto t =
      committed(Datatype::indexed_block(2, displs, Datatype::float64()));
  EXPECT_EQ(t.size(), 48u);
  ASSERT_EQ(t.segments().size(), 3u);
  for (const auto& s : t.segments()) EXPECT_EQ(s.length, 16u);
}

TEST(Datatype, IndexedPackUnpackRoundTrip) {
  const std::array<int, 3> lens{1, 3, 2};
  const std::array<int, 3> displs{9, 0, 5};  // note: out of address order
  auto t = committed(Datatype::indexed(lens, displs, Datatype::int32()));
  std::vector<int> src(12);
  std::iota(src.begin(), src.end(), 100);
  std::vector<int> packed(6, -1);
  t.pack(src.data(), 1, packed.data());
  // Pack order follows the type map, not address order.
  EXPECT_EQ(packed[0], 109);
  EXPECT_EQ(packed[1], 100);
  EXPECT_EQ(packed[2], 101);
  EXPECT_EQ(packed[3], 102);
  EXPECT_EQ(packed[4], 105);
  EXPECT_EQ(packed[5], 106);
  std::vector<int> dst(12, 0);
  t.unpack(packed.data(), 1, dst.data());
  EXPECT_EQ(dst[9], 109);
  EXPECT_EQ(dst[0], 100);
  EXPECT_EQ(dst[6], 106);
  EXPECT_EQ(dst[3], 0);  // hole untouched
}

// ---------------------------------------------------------------------------
// Struct
// ---------------------------------------------------------------------------

TEST(Datatype, StructHeterogeneous) {
  // struct { int32 a; double b[2]; } with a hole after `a`.
  const std::array<int, 2> lens{1, 2};
  const std::array<std::int64_t, 2> displs{0, 8};
  const std::array<Datatype, 2> types{Datatype::int32(), Datatype::float64()};
  auto t = committed(Datatype::create_struct(lens, displs, types));
  EXPECT_EQ(t.size(), 20u);
  EXPECT_EQ(t.extent(), 24);
  ASSERT_EQ(t.segments().size(), 2u);
  EXPECT_EQ(t.segments()[0], (Segment{0, 4}));
  EXPECT_EQ(t.segments()[1], (Segment{8, 16}));
}

TEST(Datatype, StructPackRoundTrip) {
  struct Particle {
    std::int32_t id;
    std::int32_t pad;
    double x, y;
  };
  const std::array<int, 2> lens{1, 2};
  const std::array<std::int64_t, 2> displs{offsetof(Particle, id),
                                           offsetof(Particle, x)};
  const std::array<Datatype, 2> types{Datatype::int32(), Datatype::float64()};
  auto t = committed(Datatype::create_struct(lens, displs, types));
  t = committed(Datatype::resized(t, 0, sizeof(Particle)));
  std::vector<Particle> ps(4);
  for (int i = 0; i < 4; ++i) ps[i] = {i, -1, i * 1.5, i * 2.5};
  std::vector<std::byte> packed(t.size() * 4);
  t.pack(ps.data(), 4, packed.data());
  std::vector<Particle> out(4, Particle{-9, -9, 0, 0});
  t.unpack(packed.data(), 4, out.data());
  for (int i = 0; i < 4; ++i) {
    EXPECT_EQ(out[i].id, i);
    EXPECT_EQ(out[i].pad, -9);  // hole preserved
    EXPECT_DOUBLE_EQ(out[i].x, i * 1.5);
    EXPECT_DOUBLE_EQ(out[i].y, i * 2.5);
  }
}

// ---------------------------------------------------------------------------
// Subarray
// ---------------------------------------------------------------------------

TEST(Datatype, Subarray2DCOrder) {
  // 4x6 array of ints, take the 2x3 block at (1,2).
  const std::array<int, 2> sizes{4, 6};
  const std::array<int, 2> subsizes{2, 3};
  const std::array<int, 2> starts{1, 2};
  auto t = committed(Datatype::subarray(sizes, subsizes, starts,
                                        ArrayOrder::kC, Datatype::int32()));
  EXPECT_EQ(t.size(), 24u);
  EXPECT_EQ(t.extent(), 4 * 6 * 4);  // whole-array extent
  ASSERT_EQ(t.segments().size(), 2u);
  EXPECT_EQ(t.segments()[0], (Segment{(1 * 6 + 2) * 4, 12}));
  EXPECT_EQ(t.segments()[1], (Segment{(2 * 6 + 2) * 4, 12}));
}

TEST(Datatype, Subarray2DFortranOrder) {
  // Fortran order: first dimension is contiguous.
  const std::array<int, 2> sizes{4, 6};
  const std::array<int, 2> subsizes{2, 3};
  const std::array<int, 2> starts{1, 2};
  auto t = committed(Datatype::subarray(sizes, subsizes, starts,
                                        ArrayOrder::kFortran,
                                        Datatype::int32()));
  EXPECT_EQ(t.size(), 24u);
  ASSERT_EQ(t.segments().size(), 3u);  // 3 columns of 2 contiguous elements
  EXPECT_EQ(t.segments()[0], (Segment{(2 * 4 + 1) * 4, 8}));
}

TEST(Datatype, Subarray3DPackRoundTrip) {
  const std::array<int, 3> sizes{4, 5, 6};
  const std::array<int, 3> subsizes{2, 2, 3};
  const std::array<int, 3> starts{1, 2, 1};
  auto t = committed(Datatype::subarray(sizes, subsizes, starts,
                                        ArrayOrder::kC, Datatype::int32()));
  std::vector<int> arr(4 * 5 * 6);
  std::iota(arr.begin(), arr.end(), 0);
  std::vector<int> packed(t.size() / 4, -1);
  t.pack(arr.data(), 1, packed.data());
  int k = 0;
  for (int i = 1; i < 3; ++i) {
    for (int j = 2; j < 4; ++j) {
      for (int l = 1; l < 4; ++l) {
        EXPECT_EQ(packed[k++], (i * 5 + j) * 6 + l);
      }
    }
  }
  std::vector<int> arr2(arr.size(), 0);
  t.unpack(packed.data(), 1, arr2.data());
  EXPECT_EQ(arr2[(1 * 5 + 2) * 6 + 1], (1 * 5 + 2) * 6 + 1);
  EXPECT_EQ(arr2[0], 0);
}

TEST(Datatype, SubarrayValidation) {
  const std::array<int, 2> sizes{4, 4};
  const std::array<int, 2> bad_sub{5, 1};
  const std::array<int, 2> starts{0, 0};
  EXPECT_THROW(Datatype::subarray(sizes, bad_sub, starts, ArrayOrder::kC,
                                  Datatype::int32()),
               std::invalid_argument);
  const std::array<int, 2> sub{2, 2};
  const std::array<int, 2> bad_start{3, 0};
  EXPECT_THROW(Datatype::subarray(sizes, sub, bad_start, ArrayOrder::kC,
                                  Datatype::int32()),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Resized
// ---------------------------------------------------------------------------

TEST(Datatype, ResizedOverridesExtent) {
  auto t = Datatype::resized(Datatype::int32(), -2, 16);
  EXPECT_EQ(t.size(), 4u);
  EXPECT_EQ(t.lower_bound(), -2);
  EXPECT_EQ(t.extent(), 16);
  t.commit();
  // Packing 3 elements walks in 16-byte extents.
  std::vector<std::byte> src(64);
  for (std::size_t i = 0; i < src.size(); ++i) {
    src[i] = static_cast<std::byte>(i);
  }
  std::vector<std::byte> packed(12);
  t.pack(src.data(), 3, packed.data());
  EXPECT_EQ(packed[0], std::byte{0});
  EXPECT_EQ(packed[4], std::byte{16});
  EXPECT_EQ(packed[8], std::byte{32});
}

// ---------------------------------------------------------------------------
// Vector pattern detection (drives the GPU 2-D copy offload)
// ---------------------------------------------------------------------------

TEST(DatatypePattern, SimpleVector) {
  auto t = committed(Datatype::vector(64, 1, 16, Datatype::float32()));
  auto p = t.vector_pattern(1);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (VectorPattern{64, 4, 64}));
}

TEST(DatatypePattern, VectorAcrossMultipleElements) {
  // count=2 elements of a 4-row vector whose seam stride matches.
  auto t = committed(Datatype::hvector(4, 1, 16, Datatype::int32()));
  // extent = 3*16+4 = 52; seam = (0 + 52) - 48 = 4 != 16 -> no pattern.
  EXPECT_FALSE(t.vector_pattern(2).has_value());
  EXPECT_TRUE(t.vector_pattern(1).has_value());
  // Resize so the seam equals the stride: extent 64.
  auto r = committed(Datatype::resized(t, 0, 64));
  auto p = r.vector_pattern(2);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (VectorPattern{8, 4, 16}));
}

TEST(DatatypePattern, ContiguousGivesSingleRowPattern) {
  auto t = committed(Datatype::contiguous(8, Datatype::float64()));
  auto p = t.vector_pattern(1);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->count, 1u);
  EXPECT_EQ(p->block_bytes, 64u);
}

TEST(DatatypePattern, ContiguousMultiElementPattern) {
  auto t = committed(Datatype::contiguous(4, Datatype::int32()));
  auto p = t.vector_pattern(3);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->count, 3u);
  EXPECT_EQ(p->block_bytes, 16u);
  EXPECT_EQ(p->stride_bytes, 16);
}

TEST(DatatypePattern, IrregularIndexedHasNoPattern) {
  const std::array<int, 3> lens{1, 1, 1};
  const std::array<int, 3> displs{0, 3, 4};  // non-uniform stride
  auto t = committed(Datatype::indexed(lens, displs, Datatype::int32()));
  EXPECT_FALSE(t.vector_pattern(1).has_value());
}

TEST(DatatypePattern, UniformIndexedDetected) {
  const std::array<int, 3> lens{2, 2, 2};
  const std::array<int, 3> displs{0, 4, 8};
  auto t = committed(Datatype::indexed(lens, displs, Datatype::int32()));
  auto p = t.vector_pattern(1);
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(*p, (VectorPattern{3, 8, 16}));
}

TEST(DatatypePattern, MixedBlockLengthsRejected) {
  const std::array<int, 2> lens{1, 2};
  const std::array<int, 2> displs{0, 4};
  auto t = committed(Datatype::indexed(lens, displs, Datatype::int32()));
  EXPECT_FALSE(t.vector_pattern(1).has_value());
}

// ---------------------------------------------------------------------------
// total_segments
// ---------------------------------------------------------------------------

TEST(Datatype, TotalSegmentsCounts) {
  auto v = committed(Datatype::vector(8, 1, 4, Datatype::int32()));
  EXPECT_EQ(v.total_segments(1), 8u);
  // The natural extent ends right after the last block, so consecutive
  // elements merge at the seam: 8*3 - 2 = 22 runs.
  EXPECT_EQ(v.total_segments(3), 22u);
  // With the extent padded out to the full stride there is no seam merge.
  auto vp = committed(Datatype::resized(v, 0, 8 * 16));
  EXPECT_EQ(vp.total_segments(3), 24u);
  auto c = committed(Datatype::contiguous(8, Datatype::int32()));
  EXPECT_EQ(c.total_segments(1), 1u);
  EXPECT_EQ(c.total_segments(5), 1u);  // seam merges
  EXPECT_EQ(c.total_segments(0), 0u);
}

// ---------------------------------------------------------------------------
// Ranged pack/unpack (the 64 KB pipeline slice operation)
// ---------------------------------------------------------------------------

TEST(DatatypeRanged, SliceEqualsFullPack) {
  auto t = committed(Datatype::vector(37, 3, 7, Datatype::int32()));
  const int count = 5;
  const std::size_t total = t.size() * count;
  std::vector<std::byte> src(static_cast<std::size_t>(t.extent()) * count +
                             64);
  auto bytes = pattern_bytes(src.size());
  std::copy(bytes.begin(), bytes.end(), src.begin());
  std::vector<std::byte> full(total);
  t.pack(src.data(), count, full.data());
  // Reassemble from odd-sized slices.
  std::vector<std::byte> sliced(total, std::byte{0});
  const std::size_t chunk = 97;  // deliberately unaligned
  for (std::size_t off = 0; off < total; off += chunk) {
    const std::size_t n = std::min(chunk, total - off);
    t.pack_bytes(src.data(), count, off, n, sliced.data() + off);
  }
  EXPECT_EQ(full, sliced);
}

TEST(DatatypeRanged, SliceUnpackEqualsFullUnpack) {
  auto t = committed(Datatype::vector(23, 2, 5, Datatype::float32()));
  const int count = 4;
  const std::size_t total = t.size() * count;
  auto packed = pattern_bytes(total, 7);
  const std::size_t bufsz = static_cast<std::size_t>(t.extent()) * count + 64;
  std::vector<std::byte> a(bufsz, std::byte{0});
  std::vector<std::byte> b(bufsz, std::byte{0});
  t.unpack(packed.data(), count, a.data());
  const std::size_t chunk = 61;
  for (std::size_t off = 0; off < total; off += chunk) {
    const std::size_t n = std::min(chunk, total - off);
    t.unpack_bytes(packed.data() + off, count, off, n, b.data());
  }
  EXPECT_EQ(a, b);
}

TEST(DatatypeRanged, OutOfRangeThrows) {
  auto t = committed(Datatype::contiguous(4, Datatype::int32()));
  std::vector<std::byte> buf(64);
  EXPECT_THROW(t.pack_bytes(buf.data(), 1, 10, 10, buf.data()),
               std::out_of_range);
  EXPECT_THROW(t.unpack_bytes(buf.data(), 1, 0, 17, buf.data()),
               std::out_of_range);
}

TEST(DatatypeRanged, ZeroByteSliceIsNoop) {
  auto t = committed(Datatype::contiguous(4, Datatype::int32()));
  std::vector<std::byte> src(16), dst(16, std::byte{0xEE});
  t.pack_bytes(src.data(), 1, 8, 0, dst.data());
  EXPECT_EQ(dst[0], std::byte{0xEE});
}

// ---------------------------------------------------------------------------
// Property-style sweep: pack-then-unpack restores data for many shapes
// ---------------------------------------------------------------------------

struct ShapeParam {
  int count, blocklen, stride, elements;
};

class PackRoundTrip : public ::testing::TestWithParam<ShapeParam> {};

TEST_P(PackRoundTrip, VectorRestoresOriginal) {
  const auto p = GetParam();
  auto t = committed(
      Datatype::vector(p.count, p.blocklen, p.stride, Datatype::int32()));
  const std::size_t span =
      static_cast<std::size_t>(t.extent()) * p.elements + 64;
  auto src = pattern_bytes(span, 11);
  std::vector<std::byte> packed(t.size() * p.elements);
  t.pack(src.data(), p.elements, packed.data());
  std::vector<std::byte> dst = src;  // holes must remain identical
  // Scrub the data positions so unpack provably writes them.
  for (int e = 0; e < p.elements; ++e) {
    for (const auto& s : t.segments()) {
      std::memset(dst.data() + e * t.extent() + s.offset, 0, s.length);
    }
  }
  t.unpack(packed.data(), p.elements, dst.data());
  EXPECT_EQ(src, dst);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PackRoundTrip,
    ::testing::Values(ShapeParam{1, 1, 1, 1}, ShapeParam{4, 1, 2, 1},
                      ShapeParam{16, 3, 5, 2}, ShapeParam{7, 2, 9, 3},
                      ShapeParam{64, 1, 64, 4}, ShapeParam{2, 8, 8, 5},
                      ShapeParam{128, 4, 6, 2}, ShapeParam{3, 1, 17, 7}));

TEST(Datatype, DescribeProducesReadableTree) {
  auto t = Datatype::vector(4, 1, 8, Datatype::float32());
  const std::string d = t.describe();
  EXPECT_NE(d.find("hvector"), std::string::npos);
  EXPECT_NE(d.find("MPI_FLOAT"), std::string::npos);
}

TEST(Datatype, NestedVectorOfVector) {
  // vector of vectors: 2-D tile out of a 3-D brick.
  auto row = committed(Datatype::vector(4, 1, 3, Datatype::int32()));
  auto r = Datatype::resized(row, 0, 12 * 4);
  auto tile = committed(Datatype::vector(2, 1, 2, r));
  EXPECT_EQ(tile.size(), 2u * 16u);
  std::vector<int> src(64);
  std::iota(src.begin(), src.end(), 0);
  std::vector<int> packed(8, -1);
  tile.pack(src.data(), 1, packed.data());
  EXPECT_EQ(packed[0], 0);
  EXPECT_EQ(packed[1], 3);
  EXPECT_EQ(packed[2], 6);
  EXPECT_EQ(packed[3], 9);
  EXPECT_EQ(packed[4], 24);
  EXPECT_EQ(packed[5], 27);
}
