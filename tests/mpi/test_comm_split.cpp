// Communicator management: split/dup semantics, context isolation,
// sub-communicator collectives, rank translation in Status.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "mpi/cluster.hpp"

namespace mpisim = mv2gnc::mpisim;
namespace sim = mv2gnc::sim;
using mpisim::Cluster;
using mpisim::ClusterConfig;
using mpisim::Communicator;
using mpisim::Context;
using mpisim::Datatype;

namespace {

Datatype committed(Datatype t) {
  t.commit();
  return t;
}

}  // namespace

TEST(CommSplit, OddEvenGroups) {
  Cluster cluster(ClusterConfig{.ranks = 6});
  cluster.run([](Context& ctx) {
    Communicator sub = ctx.comm.split(ctx.rank % 2);
    ASSERT_TRUE(sub.valid());
    EXPECT_EQ(sub.size(), 3);
    EXPECT_EQ(sub.rank(), ctx.rank / 2);
    // Communicate within the subgroup using subgroup ranks.
    auto ints = committed(Datatype::int32());
    int token = ctx.rank;
    if (sub.rank() == 0) {
      mpisim::Status st;
      int got = -1;
      sub.recv(&got, 1, ints, 2, 0, &st);
      EXPECT_EQ(got, (ctx.rank % 2) + 4);  // world rank 4 or 5
      EXPECT_EQ(st.source, 2);             // reported in subgroup ranks
    } else if (sub.rank() == 2) {
      sub.send(&token, 1, ints, 0, 0);
    }
  });
}

TEST(CommSplit, KeyControlsOrdering) {
  Cluster cluster(ClusterConfig{.ranks = 4});
  cluster.run([](Context& ctx) {
    // Reverse the ordering with descending keys.
    Communicator sub = ctx.comm.split(0, /*key=*/ctx.size - ctx.rank);
    EXPECT_EQ(sub.size(), 4);
    EXPECT_EQ(sub.rank(), ctx.size - 1 - ctx.rank);
  });
}

TEST(CommSplit, UndefinedColorGivesNullComm) {
  Cluster cluster(ClusterConfig{.ranks = 4});
  cluster.run([](Context& ctx) {
    const int color =
        (ctx.rank < 2) ? 7 : Communicator::kUndefinedColor;
    Communicator sub = ctx.comm.split(color);
    if (ctx.rank < 2) {
      ASSERT_TRUE(sub.valid());
      EXPECT_EQ(sub.size(), 2);
    } else {
      EXPECT_FALSE(sub.valid());
      EXPECT_THROW(sub.rank(), std::logic_error);
    }
  });
}

TEST(CommSplit, ContextIsolatesTraffic) {
  // Same (source, tag) posted on two communicators: each message must
  // match its own communicator, never the sibling.
  Cluster cluster(ClusterConfig{.ranks = 2});
  cluster.run([](Context& ctx) {
    Communicator dup = ctx.comm.dup();
    auto ints = committed(Datatype::int32());
    if (ctx.rank == 0) {
      int a = 111, b = 222;
      ctx.comm.send(&a, 1, ints, 1, 5);
      dup.send(&b, 1, ints, 1, 5);
    } else {
      // Post the dup receive FIRST; it must not steal the world message.
      int from_dup = 0, from_world = 0;
      auto rd = dup.irecv(&from_dup, 1, ints, 0, 5);
      ctx.engine->delay(sim::microseconds(200));  // both messages arrive
      auto rw = ctx.comm.irecv(&from_world, 1, ints, 0, 5);
      dup.wait(rd);
      ctx.comm.wait(rw);
      EXPECT_EQ(from_world, 111);
      EXPECT_EQ(from_dup, 222);
    }
  });
}

TEST(CommSplit, SubgroupCollectives) {
  Cluster cluster(ClusterConfig{.ranks = 8});
  cluster.run([](Context& ctx) {
    Communicator sub = ctx.comm.split(ctx.rank / 4);  // two groups of 4
    auto ints = committed(Datatype::int32());
    // Bcast from subgroup root.
    int v = (sub.rank() == 0) ? ctx.rank + 100 : -1;
    sub.bcast(&v, 1, ints, 0);
    EXPECT_EQ(v, (ctx.rank / 4) * 4 + 100);  // world rank of subgroup root
    // Allreduce within the subgroup.
    double mine = ctx.rank;
    double sum = 0;
    sub.allreduce_sum(&mine, &sum, 1);
    const double base = (ctx.rank / 4) * 4.0;
    EXPECT_DOUBLE_EQ(sum, base * 4 + 0 + 1 + 2 + 3);
    // Barrier within the subgroup.
    sub.barrier();
    // Alltoall within the subgroup.
    std::vector<int> out(4, sub.rank());
    std::vector<int> in(4, -1);
    sub.alltoall(out.data(), in.data(), 1, ints);
    for (int i = 0; i < 4; ++i) EXPECT_EQ(in[i], i);
  });
}

TEST(CommSplit, NestedSplits) {
  Cluster cluster(ClusterConfig{.ranks = 8});
  cluster.run([](Context& ctx) {
    Communicator half = ctx.comm.split(ctx.rank / 4);
    Communicator quarter = half.split(half.rank() / 2);
    EXPECT_EQ(quarter.size(), 2);
    auto ints = committed(Datatype::int32());
    int token = ctx.rank;
    int got = -1;
    const int peer = 1 - quarter.rank();
    auto r = quarter.irecv(&got, 1, ints, peer, 0);
    quarter.send(&token, 1, ints, peer, 0);
    quarter.wait(r);
    // My pair partner in the world: flip the lowest bit within the pair.
    EXPECT_EQ(got, (ctx.rank % 2 == 0) ? ctx.rank + 1 : ctx.rank - 1);
  });
}

TEST(CommSplit, DupSupportsDeviceRendezvous) {
  Cluster cluster(ClusterConfig{.ranks = 2});
  cluster.run([](Context& ctx) {
    Communicator dup = ctx.comm.dup();
    auto col = committed(Datatype::vector(40'000, 1, 2, Datatype::float32()));
    const std::size_t span = 40'000ull * 8 + 16;
    auto* dev = static_cast<std::byte*>(ctx.cuda->malloc(span));
    if (ctx.rank == 0) {
      std::vector<std::byte> host(span, std::byte{0x7E});
      ctx.cuda->memcpy(dev, host.data(), span);
      dup.send(dev, 1, col, 1, 0);
    } else {
      ctx.cuda->memset(dev, 0, span);
      dup.recv(dev, 1, col, 0, 0);
      std::vector<std::byte> got(span);
      ctx.cuda->memcpy(got.data(), dev, span);
      EXPECT_EQ(got[0], std::byte{0x7E});
      EXPECT_EQ(got[39'999 * 8], std::byte{0x7E});
    }
    ctx.cuda->free(dev);
  });
}

TEST(CommSplit, RepeatedSplitsGetFreshContexts) {
  Cluster cluster(ClusterConfig{.ranks = 2});
  cluster.run([](Context& ctx) {
    auto ints = committed(Datatype::int32());
    Communicator a = ctx.comm.dup();
    Communicator b = ctx.comm.dup();
    Communicator c = a.dup();
    // All four channels (world, a, b, c) must stay separate.
    if (ctx.rank == 0) {
      int v0 = 0, v1 = 1, v2 = 2, v3 = 3;
      c.send(&v3, 1, ints, 1, 0);
      b.send(&v2, 1, ints, 1, 0);
      a.send(&v1, 1, ints, 1, 0);
      ctx.comm.send(&v0, 1, ints, 1, 0);
    } else {
      ctx.engine->delay(sim::microseconds(300));
      int g0 = -1, g1 = -1, g2 = -1, g3 = -1;
      ctx.comm.recv(&g0, 1, ints, 0, 0);
      a.recv(&g1, 1, ints, 0, 0);
      b.recv(&g2, 1, ints, 0, 0);
      c.recv(&g3, 1, ints, 0, 0);
      EXPECT_EQ(g0, 0);
      EXPECT_EQ(g1, 1);
      EXPECT_EQ(g2, 2);
      EXPECT_EQ(g3, 3);
    }
  });
}
