#include "apps/transpose.hpp"

#include <gtest/gtest.h>

namespace apps = mv2gnc::apps;
namespace mpisim = mv2gnc::mpisim;

namespace {

apps::TransposeResult run(int ranks, int n, bool validate = true) {
  mpisim::Cluster cluster(mpisim::ClusterConfig{.ranks = ranks});
  apps::TransposeResult out;
  apps::TransposeConfig cfg;
  cfg.global_n = n;
  cfg.validate = validate;
  cluster.run([&](mpisim::Context& ctx) {
    auto r = apps::run_transpose(ctx, cfg);
    if (ctx.rank == 0) out = r;
  });
  return out;
}

}  // namespace

class TransposeGrids : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(TransposeGrids, ValidatesAgainstDefinition) {
  const auto [ranks, n] = GetParam();
  // validate=true throws on any misplaced element.
  EXPECT_NO_THROW(run(ranks, n));
}

INSTANTIATE_TEST_SUITE_P(Shapes, TransposeGrids,
                         ::testing::Values(std::pair{1, 16}, std::pair{2, 32},
                                           std::pair{4, 64}, std::pair{8, 64},
                                           std::pair{4, 252}));

TEST(Transpose, RejectsIndivisibleSize) {
  mpisim::Cluster cluster(mpisim::ClusterConfig{.ranks = 3});
  apps::TransposeConfig cfg;
  cfg.global_n = 64;  // 64 % 3 != 0
  EXPECT_THROW(cluster.run([&](mpisim::Context& ctx) {
                 apps::run_transpose(ctx, cfg);
               }),
               std::invalid_argument);
}

TEST(Transpose, ChecksumInvariantUnderRankCount) {
  // The transposed matrix (and hence checksum) must not depend on P.
  const double a = run(2, 64).checksum;
  const double b = run(4, 64).checksum;
  EXPECT_DOUBLE_EQ(a, b);
}

TEST(Transpose, LargerMatrixTakesLonger) {
  const double small = run(4, 1024, false).seconds;
  const double large = run(4, 4096, false).seconds;
  EXPECT_GT(large, small);
}
