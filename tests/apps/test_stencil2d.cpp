// Stencil2D correctness: both variants must reproduce the serial reference
// bit-for-bit (within FP tolerance), agree with each other, and the
// MV2-GPU-NC variant must be faster on communication-heavy shapes.
#include "apps/stencil2d.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace apps = mv2gnc::apps;
namespace mpisim = mv2gnc::mpisim;
using apps::StencilConfig;
using apps::StencilResult;

namespace {

StencilResult run_grid(const StencilConfig& cfg) {
  mpisim::Cluster cluster(mpisim::ClusterConfig{.ranks = cfg.ranks()});
  StencilResult out;
  cluster.run([&](mpisim::Context& ctx) {
    StencilResult r = apps::run_stencil(ctx, cfg);
    if (ctx.rank == 0) out = r;
  });
  return out;
}

StencilConfig small(StencilConfig::Variant v, int pr, int pc,
                    bool dp = false) {
  StencilConfig cfg;
  cfg.proc_rows = pr;
  cfg.proc_cols = pc;
  cfg.local_rows = 12;
  cfg.local_cols = 10;
  cfg.iterations = 4;
  cfg.variant = v;
  cfg.validate = true;  // throws on mismatch with the serial reference
  cfg.double_precision = dp;
  return cfg;
}

}  // namespace

TEST(StencilReference, InitialIsDeterministic) {
  EXPECT_EQ(apps::stencil_initial(3, 4), apps::stencil_initial(3, 4));
  EXPECT_GE(apps::stencil_initial(0, 0), 0.0);
  EXPECT_LT(apps::stencil_initial(100, 100), 1.0);
}

TEST(StencilReference, WeightsConserveConstantField) {
  // A constant interior with constant border must stay constant.
  const double sum = apps::kWCenter + 4 * apps::kWAdjacent +
                     4 * apps::kWDiagonal;
  EXPECT_DOUBLE_EQ(sum, 1.0);
}

struct GridParam {
  int pr, pc;
  StencilConfig::Variant variant;
  bool dp;
};

class StencilGrids : public ::testing::TestWithParam<GridParam> {};

TEST_P(StencilGrids, MatchesSerialReference) {
  const auto p = GetParam();
  // validate=true makes run_stencil throw on any divergence.
  EXPECT_NO_THROW(run_grid(small(p.variant, p.pr, p.pc, p.dp)));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, StencilGrids,
    ::testing::Values(
        GridParam{1, 1, StencilConfig::Variant::kMv2GpuNc, false},
        GridParam{1, 2, StencilConfig::Variant::kMv2GpuNc, false},
        GridParam{2, 1, StencilConfig::Variant::kMv2GpuNc, false},
        GridParam{2, 2, StencilConfig::Variant::kMv2GpuNc, false},
        GridParam{2, 4, StencilConfig::Variant::kMv2GpuNc, false},
        GridParam{1, 2, StencilConfig::Variant::kDef, false},
        GridParam{2, 2, StencilConfig::Variant::kDef, false},
        GridParam{2, 4, StencilConfig::Variant::kDef, false},
        GridParam{2, 2, StencilConfig::Variant::kMv2GpuNc, true},
        GridParam{2, 2, StencilConfig::Variant::kDef, true}));

TEST(Stencil2D, VariantsProduceIdenticalChecksums) {
  auto def = run_grid(small(StencilConfig::Variant::kDef, 2, 2));
  auto nc = run_grid(small(StencilConfig::Variant::kMv2GpuNc, 2, 2));
  EXPECT_NE(def.checksum, 0.0);
  EXPECT_NEAR(def.checksum, nc.checksum, 1e-6 * std::abs(def.checksum));
}

TEST(Stencil2D, NcVariantFasterOnNonContiguousHeavyGrid) {
  // 1x4 grid: all communication is east-west (non-contiguous). Use a tall
  // matrix so halos are large; validate off so the kernel is cost-model
  // driven on both sides equally.
  StencilConfig cfg;
  cfg.proc_rows = 1;
  cfg.proc_cols = 4;
  cfg.local_rows = 16384;
  cfg.local_cols = 256;
  cfg.iterations = 3;
  cfg.variant = StencilConfig::Variant::kDef;
  const double def_s = run_grid(cfg).seconds;
  cfg.variant = StencilConfig::Variant::kMv2GpuNc;
  const double nc_s = run_grid(cfg).seconds;
  EXPECT_LT(nc_s, def_s);
  // The paper's shape: double-digit percentage improvement.
  EXPECT_GT((def_s - nc_s) / def_s, 0.10);
}

TEST(Stencil2D, TraceBreakdownRecordsDirections) {
  StencilConfig cfg;
  cfg.proc_rows = 2;
  cfg.proc_cols = 4;
  cfg.local_rows = 512;
  cfg.local_cols = 512;
  cfg.iterations = 2;
  cfg.variant = StencilConfig::Variant::kDef;
  cfg.trace_dirs = true;
  mpisim::Cluster cluster(
      mpisim::ClusterConfig{.ranks = cfg.ranks(), .trace_enabled = true});
  cluster.run([&](mpisim::Context& ctx) { apps::run_stencil(ctx, cfg); });
  // Rank 1 (top row, interior column) has south, west and east neighbours
  // but no north — exactly the paper's Figure 6 subject.
  auto& tr = cluster.trace();
  EXPECT_GT(tr.total(1, "south_mpi"), 0);
  EXPECT_GT(tr.total(1, "south_cuda"), 0);
  EXPECT_GT(tr.total(1, "west_cuda"), 0);
  EXPECT_GT(tr.total(1, "east_cuda"), 0);
  EXPECT_EQ(tr.total(1, "north_mpi"), 0);
  EXPECT_EQ(tr.total(1, "north_cuda"), 0);
  // Non-contiguous (east/west) staging dominates contiguous (south).
  EXPECT_GT(tr.total(1, "east_cuda"), tr.total(1, "south_cuda"));
}

TEST(Stencil2D, RejectsWrongClusterSize) {
  mpisim::Cluster cluster(mpisim::ClusterConfig{.ranks = 2});
  StencilConfig cfg;
  cfg.proc_rows = 2;
  cfg.proc_cols = 2;  // needs 4 ranks
  EXPECT_THROW(cluster.run([&](mpisim::Context& ctx) {
                 apps::run_stencil(ctx, cfg);
               }),
               std::invalid_argument);
}
