// The three Fig. 4/5 transports: all must deliver, and their latency
// ordering must reproduce the paper's shape (MV2-GPU-NC ~ hand pipeline
// << blocking Cpy2D+Send for large vectors).
#include "apps/vector_bench.hpp"

#include <gtest/gtest.h>

namespace apps = mv2gnc::apps;
namespace mpisim = mv2gnc::mpisim;
namespace sim = mv2gnc::sim;
using apps::VectorMethod;

namespace {

sim::SimTime latency(VectorMethod m, std::size_t rows, int iters = 3) {
  // Fig. 4/5 reproduction: the paper's library ran with the configured
  // 64 KB chunk, matching the hand pipeline's block size.
  mpisim::ClusterConfig cfg;
  cfg.tunables.chunk_select = mv2gnc::core::ChunkSelect::kFixed;
  return apps::measure_vector_latency(m, rows, iters, cfg);
}

}  // namespace

TEST(VectorBench, MethodNames) {
  EXPECT_STREQ(apps::method_name(VectorMethod::kCpy2DSend), "Cpy2D+Send");
  EXPECT_STREQ(apps::method_name(VectorMethod::kCpy2DAsyncIsend),
               "Cpy2DAsync+CpyAsync+Isend");
  EXPECT_STREQ(apps::method_name(VectorMethod::kMv2GpuNc), "MV2-GPU-NC");
}

TEST(VectorBench, AllMethodsCompleteSmall) {
  for (auto m : {VectorMethod::kCpy2DSend, VectorMethod::kCpy2DAsyncIsend,
                 VectorMethod::kMv2GpuNc}) {
    const sim::SimTime t = latency(m, 64);  // 256 B message
    EXPECT_GT(t, 0) << apps::method_name(m);
    EXPECT_LT(sim::to_us(t), 2000.0) << apps::method_name(m);
  }
}

TEST(VectorBench, LatencyIsDeterministic) {
  const sim::SimTime a = latency(VectorMethod::kMv2GpuNc, 4096);
  const sim::SimTime b = latency(VectorMethod::kMv2GpuNc, 4096);
  EXPECT_EQ(a, b);
}

TEST(VectorBench, Paper4MBImprovementShape) {
  // Fig. 5(b) at 4 MB: MV2-GPU-NC achieves ~88% improvement over
  // Cpy2D+Send. Accept the shape: > 75% improvement.
  const std::size_t rows = 1u << 20;  // 4 MB of 4-byte rows
  const sim::SimTime blocking = latency(VectorMethod::kCpy2DSend, rows, 2);
  const sim::SimTime nc = latency(VectorMethod::kMv2GpuNc, rows, 2);
  const double improvement =
      1.0 - static_cast<double>(nc) / static_cast<double>(blocking);
  EXPECT_GT(improvement, 0.75);
}

TEST(VectorBench, HandPipelineCloseToLibrary) {
  // Fig. 5: "Cpy2DAsync+CpyAsync+Isend and MV2-GPU-NC show similar
  // performance". Allow the hand pipeline within 2x of the library.
  const std::size_t rows = 1u << 18;  // 1 MB
  const sim::SimTime hand = latency(VectorMethod::kCpy2DAsyncIsend, rows, 2);
  const sim::SimTime nc = latency(VectorMethod::kMv2GpuNc, rows, 2);
  EXPECT_LT(static_cast<double>(hand) / static_cast<double>(nc), 2.0);
  EXPECT_LT(static_cast<double>(nc) / static_cast<double>(hand), 2.0);
}

TEST(VectorBench, LatencyMonotoneInSize) {
  sim::SimTime prev = 0;
  for (std::size_t rows : {256u, 4096u, 65536u, 262144u}) {
    const sim::SimTime t = latency(VectorMethod::kMv2GpuNc, rows, 2);
    EXPECT_GT(t, prev);
    prev = t;
  }
}
