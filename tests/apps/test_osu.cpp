#include "apps/osu.hpp"

#include <gtest/gtest.h>

namespace apps = mv2gnc::apps;
namespace mpisim = mv2gnc::mpisim;
namespace sim = mv2gnc::sim;
using apps::BufferPlacement;

TEST(Osu, PlacementNames) {
  EXPECT_STREQ(apps::placement_name(BufferPlacement::kHost), "H-H");
  EXPECT_STREQ(apps::placement_name(BufferPlacement::kDevice), "D-D");
}

TEST(Osu, LatencyMonotoneInSize) {
  sim::SimTime prev = 0;
  for (std::size_t b : {64u, 4096u, 65536u, 1048576u}) {
    const sim::SimTime t =
        apps::osu_latency(BufferPlacement::kDevice, b, 3, {});
    EXPECT_GT(t, prev) << b;
    prev = t;
  }
}

TEST(Osu, DeviceLatencyAboveHostLatency) {
  // Device buffers add PCIe staging on both ends.
  const std::size_t b = 256 * 1024;
  const sim::SimTime host = apps::osu_latency(BufferPlacement::kHost, b, 3, {});
  const sim::SimTime dev = apps::osu_latency(BufferPlacement::kDevice, b, 3, {});
  EXPECT_GT(dev, host);
}

TEST(Osu, BandwidthApproachesLinkRateForLargeHostMessages) {
  // QDR model: 3.2 GB/s. Streaming 1 MB host messages should get close.
  const double mbps =
      apps::osu_bandwidth(BufferPlacement::kHost, 1u << 20, 8, 3, {});
  EXPECT_GT(mbps, 2500.0);
  EXPECT_LT(mbps, 3300.0);
}

TEST(Osu, DeviceBandwidthBelowHostBandwidth) {
  const double host =
      apps::osu_bandwidth(BufferPlacement::kHost, 1u << 20, 4, 2, {});
  const double dev =
      apps::osu_bandwidth(BufferPlacement::kDevice, 1u << 20, 4, 2, {});
  EXPECT_LT(dev, host * 1.05);
  EXPECT_GT(dev, 1000.0);  // but pipelining keeps it respectable
}

TEST(Osu, BidirectionalExceedsUnidirectional) {
  const double uni =
      apps::osu_bandwidth(BufferPlacement::kHost, 512u << 10, 4, 2, {});
  const double bi =
      apps::osu_bibandwidth(BufferPlacement::kHost, 512u << 10, 4, 2, {});
  EXPECT_GT(bi, uni * 1.3);  // full-duplex links
}

TEST(Osu, WindowingImprovesThroughput) {
  const double w1 =
      apps::osu_bandwidth(BufferPlacement::kDevice, 256u << 10, 1, 3, {});
  const double w8 =
      apps::osu_bandwidth(BufferPlacement::kDevice, 256u << 10, 8, 3, {});
  EXPECT_GT(w8, w1);
}

TEST(Osu, Deterministic) {
  const double a =
      apps::osu_bandwidth(BufferPlacement::kDevice, 128u << 10, 2, 2, {});
  const double b =
      apps::osu_bandwidth(BufferPlacement::kDevice, 128u << 10, 2, 2, {});
  EXPECT_DOUBLE_EQ(a, b);
}
