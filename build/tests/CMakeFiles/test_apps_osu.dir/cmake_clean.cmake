file(REMOVE_RECURSE
  "CMakeFiles/test_apps_osu.dir/apps/test_osu.cpp.o"
  "CMakeFiles/test_apps_osu.dir/apps/test_osu.cpp.o.d"
  "test_apps_osu"
  "test_apps_osu.pdb"
  "test_apps_osu[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_osu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
