# Empty dependencies file for test_apps_osu.
# This may be replaced when dependencies are built.
