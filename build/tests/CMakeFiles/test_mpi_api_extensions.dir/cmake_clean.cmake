file(REMOVE_RECURSE
  "CMakeFiles/test_mpi_api_extensions.dir/mpi/test_api_extensions.cpp.o"
  "CMakeFiles/test_mpi_api_extensions.dir/mpi/test_api_extensions.cpp.o.d"
  "test_mpi_api_extensions"
  "test_mpi_api_extensions.pdb"
  "test_mpi_api_extensions[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi_api_extensions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
