# Empty compiler generated dependencies file for test_mpi_api_extensions.
# This may be replaced when dependencies are built.
