file(REMOVE_RECURSE
  "CMakeFiles/test_gpu_device.dir/gpu/test_device.cpp.o"
  "CMakeFiles/test_gpu_device.dir/gpu/test_device.cpp.o.d"
  "test_gpu_device"
  "test_gpu_device.pdb"
  "test_gpu_device[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
