file(REMOVE_RECURSE
  "CMakeFiles/test_core_vbuf_pool.dir/core/test_vbuf_pool.cpp.o"
  "CMakeFiles/test_core_vbuf_pool.dir/core/test_vbuf_pool.cpp.o.d"
  "test_core_vbuf_pool"
  "test_core_vbuf_pool.pdb"
  "test_core_vbuf_pool[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_vbuf_pool.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
