# Empty compiler generated dependencies file for test_core_vbuf_pool.
# This may be replaced when dependencies are built.
