
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_vbuf_pool.cpp" "tests/CMakeFiles/test_core_vbuf_pool.dir/core/test_vbuf_pool.cpp.o" "gcc" "tests/CMakeFiles/test_core_vbuf_pool.dir/core/test_vbuf_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mv2gnc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/mv2gnc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mpi/CMakeFiles/mv2gnc_dtype.dir/DependInfo.cmake"
  "/root/repo/build/src/cuda/CMakeFiles/mv2gnc_cuda.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/mv2gnc_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mv2gnc_net.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
