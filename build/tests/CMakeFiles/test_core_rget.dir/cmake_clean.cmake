file(REMOVE_RECURSE
  "CMakeFiles/test_core_rget.dir/core/test_rget.cpp.o"
  "CMakeFiles/test_core_rget.dir/core/test_rget.cpp.o.d"
  "test_core_rget"
  "test_core_rget.pdb"
  "test_core_rget[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_rget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
