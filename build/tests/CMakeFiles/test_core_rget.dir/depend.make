# Empty dependencies file for test_core_rget.
# This may be replaced when dependencies are built.
