file(REMOVE_RECURSE
  "CMakeFiles/test_net_fabric.dir/net/test_fabric.cpp.o"
  "CMakeFiles/test_net_fabric.dir/net/test_fabric.cpp.o.d"
  "test_net_fabric"
  "test_net_fabric.pdb"
  "test_net_fabric[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_net_fabric.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
