# Empty dependencies file for test_net_fabric.
# This may be replaced when dependencies are built.
