# Empty dependencies file for test_core_msg_view.
# This may be replaced when dependencies are built.
