file(REMOVE_RECURSE
  "CMakeFiles/test_core_msg_view.dir/core/test_msg_view.cpp.o"
  "CMakeFiles/test_core_msg_view.dir/core/test_msg_view.cpp.o.d"
  "test_core_msg_view"
  "test_core_msg_view.pdb"
  "test_core_msg_view[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_msg_view.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
