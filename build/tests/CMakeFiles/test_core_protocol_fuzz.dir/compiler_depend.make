# Empty compiler generated dependencies file for test_core_protocol_fuzz.
# This may be replaced when dependencies are built.
