file(REMOVE_RECURSE
  "CMakeFiles/test_core_protocol_fuzz.dir/core/test_protocol_fuzz.cpp.o"
  "CMakeFiles/test_core_protocol_fuzz.dir/core/test_protocol_fuzz.cpp.o.d"
  "test_core_protocol_fuzz"
  "test_core_protocol_fuzz.pdb"
  "test_core_protocol_fuzz[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_protocol_fuzz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
