file(REMOVE_RECURSE
  "CMakeFiles/test_cluster_integration.dir/integration/test_cluster_integration.cpp.o"
  "CMakeFiles/test_cluster_integration.dir/integration/test_cluster_integration.cpp.o.d"
  "test_cluster_integration"
  "test_cluster_integration.pdb"
  "test_cluster_integration[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cluster_integration.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
