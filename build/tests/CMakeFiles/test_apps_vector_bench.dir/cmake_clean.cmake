file(REMOVE_RECURSE
  "CMakeFiles/test_apps_vector_bench.dir/apps/test_vector_bench.cpp.o"
  "CMakeFiles/test_apps_vector_bench.dir/apps/test_vector_bench.cpp.o.d"
  "test_apps_vector_bench"
  "test_apps_vector_bench.pdb"
  "test_apps_vector_bench[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_vector_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
