# Empty compiler generated dependencies file for test_apps_vector_bench.
# This may be replaced when dependencies are built.
