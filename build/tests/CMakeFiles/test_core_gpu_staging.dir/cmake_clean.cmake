file(REMOVE_RECURSE
  "CMakeFiles/test_core_gpu_staging.dir/core/test_gpu_staging.cpp.o"
  "CMakeFiles/test_core_gpu_staging.dir/core/test_gpu_staging.cpp.o.d"
  "test_core_gpu_staging"
  "test_core_gpu_staging.pdb"
  "test_core_gpu_staging[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_gpu_staging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
