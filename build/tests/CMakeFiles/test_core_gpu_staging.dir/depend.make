# Empty dependencies file for test_core_gpu_staging.
# This may be replaced when dependencies are built.
