file(REMOVE_RECURSE
  "CMakeFiles/test_apps_transpose.dir/apps/test_transpose.cpp.o"
  "CMakeFiles/test_apps_transpose.dir/apps/test_transpose.cpp.o.d"
  "test_apps_transpose"
  "test_apps_transpose.pdb"
  "test_apps_transpose[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_transpose.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
