# Empty dependencies file for test_apps_transpose.
# This may be replaced when dependencies are built.
