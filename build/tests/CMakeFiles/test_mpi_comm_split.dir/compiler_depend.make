# Empty compiler generated dependencies file for test_mpi_comm_split.
# This may be replaced when dependencies are built.
