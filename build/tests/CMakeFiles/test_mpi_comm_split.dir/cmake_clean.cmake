file(REMOVE_RECURSE
  "CMakeFiles/test_mpi_comm_split.dir/mpi/test_comm_split.cpp.o"
  "CMakeFiles/test_mpi_comm_split.dir/mpi/test_comm_split.cpp.o.d"
  "test_mpi_comm_split"
  "test_mpi_comm_split.pdb"
  "test_mpi_comm_split[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mpi_comm_split.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
