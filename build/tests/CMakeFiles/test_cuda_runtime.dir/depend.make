# Empty dependencies file for test_cuda_runtime.
# This may be replaced when dependencies are built.
