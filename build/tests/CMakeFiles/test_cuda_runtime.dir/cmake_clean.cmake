file(REMOVE_RECURSE
  "CMakeFiles/test_cuda_runtime.dir/cuda/test_runtime.cpp.o"
  "CMakeFiles/test_cuda_runtime.dir/cuda/test_runtime.cpp.o.d"
  "test_cuda_runtime"
  "test_cuda_runtime.pdb"
  "test_cuda_runtime[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cuda_runtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
