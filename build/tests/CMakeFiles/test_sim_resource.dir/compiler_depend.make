# Empty compiler generated dependencies file for test_sim_resource.
# This may be replaced when dependencies are built.
