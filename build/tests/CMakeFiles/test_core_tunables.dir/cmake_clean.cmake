file(REMOVE_RECURSE
  "CMakeFiles/test_core_tunables.dir/core/test_tunables.cpp.o"
  "CMakeFiles/test_core_tunables.dir/core/test_tunables.cpp.o.d"
  "test_core_tunables"
  "test_core_tunables.pdb"
  "test_core_tunables[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core_tunables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
