# Empty dependencies file for test_core_tunables.
# This may be replaced when dependencies are built.
