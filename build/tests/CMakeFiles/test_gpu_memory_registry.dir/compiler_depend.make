# Empty compiler generated dependencies file for test_gpu_memory_registry.
# This may be replaced when dependencies are built.
