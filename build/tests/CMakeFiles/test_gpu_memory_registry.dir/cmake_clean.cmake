file(REMOVE_RECURSE
  "CMakeFiles/test_gpu_memory_registry.dir/gpu/test_memory_registry.cpp.o"
  "CMakeFiles/test_gpu_memory_registry.dir/gpu/test_memory_registry.cpp.o.d"
  "test_gpu_memory_registry"
  "test_gpu_memory_registry.pdb"
  "test_gpu_memory_registry[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_gpu_memory_registry.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
