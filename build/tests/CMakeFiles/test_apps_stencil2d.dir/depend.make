# Empty dependencies file for test_apps_stencil2d.
# This may be replaced when dependencies are built.
