file(REMOVE_RECURSE
  "CMakeFiles/test_apps_stencil2d.dir/apps/test_stencil2d.cpp.o"
  "CMakeFiles/test_apps_stencil2d.dir/apps/test_stencil2d.cpp.o.d"
  "test_apps_stencil2d"
  "test_apps_stencil2d.pdb"
  "test_apps_stencil2d[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_apps_stencil2d.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
