# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_sim_engine[1]_include.cmake")
include("/root/repo/build/tests/test_sim_channel[1]_include.cmake")
include("/root/repo/build/tests/test_sim_resource[1]_include.cmake")
include("/root/repo/build/tests/test_sim_trace[1]_include.cmake")
include("/root/repo/build/tests/test_sim_engine_stress[1]_include.cmake")
include("/root/repo/build/tests/test_gpu_cost_model[1]_include.cmake")
include("/root/repo/build/tests/test_gpu_memory_registry[1]_include.cmake")
include("/root/repo/build/tests/test_gpu_device[1]_include.cmake")
include("/root/repo/build/tests/test_cuda_runtime[1]_include.cmake")
include("/root/repo/build/tests/test_net_fabric[1]_include.cmake")
include("/root/repo/build/tests/test_mpi_datatype[1]_include.cmake")
include("/root/repo/build/tests/test_core_tunables[1]_include.cmake")
include("/root/repo/build/tests/test_core_vbuf_pool[1]_include.cmake")
include("/root/repo/build/tests/test_core_msg_view[1]_include.cmake")
include("/root/repo/build/tests/test_core_gpu_staging[1]_include.cmake")
include("/root/repo/build/tests/test_core_rndv_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_core_protocol_fuzz[1]_include.cmake")
include("/root/repo/build/tests/test_core_rget[1]_include.cmake")
include("/root/repo/build/tests/test_mpi_p2p[1]_include.cmake")
include("/root/repo/build/tests/test_mpi_collectives[1]_include.cmake")
include("/root/repo/build/tests/test_mpi_comm_split[1]_include.cmake")
include("/root/repo/build/tests/test_mpi_api_extensions[1]_include.cmake")
include("/root/repo/build/tests/test_cluster_integration[1]_include.cmake")
include("/root/repo/build/tests/test_apps_stencil2d[1]_include.cmake")
include("/root/repo/build/tests/test_apps_vector_bench[1]_include.cmake")
include("/root/repo/build/tests/test_apps_osu[1]_include.cmake")
include("/root/repo/build/tests/test_apps_transpose[1]_include.cmake")
