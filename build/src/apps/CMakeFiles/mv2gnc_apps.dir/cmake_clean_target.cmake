file(REMOVE_RECURSE
  "libmv2gnc_apps.a"
)
