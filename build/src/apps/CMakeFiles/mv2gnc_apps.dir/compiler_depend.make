# Empty compiler generated dependencies file for mv2gnc_apps.
# This may be replaced when dependencies are built.
