file(REMOVE_RECURSE
  "CMakeFiles/mv2gnc_apps.dir/osu.cpp.o"
  "CMakeFiles/mv2gnc_apps.dir/osu.cpp.o.d"
  "CMakeFiles/mv2gnc_apps.dir/reporting.cpp.o"
  "CMakeFiles/mv2gnc_apps.dir/reporting.cpp.o.d"
  "CMakeFiles/mv2gnc_apps.dir/stencil2d.cpp.o"
  "CMakeFiles/mv2gnc_apps.dir/stencil2d.cpp.o.d"
  "CMakeFiles/mv2gnc_apps.dir/transpose.cpp.o"
  "CMakeFiles/mv2gnc_apps.dir/transpose.cpp.o.d"
  "CMakeFiles/mv2gnc_apps.dir/vector_bench.cpp.o"
  "CMakeFiles/mv2gnc_apps.dir/vector_bench.cpp.o.d"
  "libmv2gnc_apps.a"
  "libmv2gnc_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv2gnc_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
