# Empty dependencies file for mv2gnc_mpi.
# This may be replaced when dependencies are built.
