file(REMOVE_RECURSE
  "CMakeFiles/mv2gnc_mpi.dir/cluster.cpp.o"
  "CMakeFiles/mv2gnc_mpi.dir/cluster.cpp.o.d"
  "CMakeFiles/mv2gnc_mpi.dir/comm.cpp.o"
  "CMakeFiles/mv2gnc_mpi.dir/comm.cpp.o.d"
  "CMakeFiles/mv2gnc_mpi.dir/rank_comm.cpp.o"
  "CMakeFiles/mv2gnc_mpi.dir/rank_comm.cpp.o.d"
  "libmv2gnc_mpi.a"
  "libmv2gnc_mpi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv2gnc_mpi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
