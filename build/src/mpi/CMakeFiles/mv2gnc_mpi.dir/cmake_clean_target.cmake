file(REMOVE_RECURSE
  "libmv2gnc_mpi.a"
)
