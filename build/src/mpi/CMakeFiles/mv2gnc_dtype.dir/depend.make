# Empty dependencies file for mv2gnc_dtype.
# This may be replaced when dependencies are built.
