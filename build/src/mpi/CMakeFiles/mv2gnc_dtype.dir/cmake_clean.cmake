file(REMOVE_RECURSE
  "CMakeFiles/mv2gnc_dtype.dir/datatype.cpp.o"
  "CMakeFiles/mv2gnc_dtype.dir/datatype.cpp.o.d"
  "libmv2gnc_dtype.a"
  "libmv2gnc_dtype.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv2gnc_dtype.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
