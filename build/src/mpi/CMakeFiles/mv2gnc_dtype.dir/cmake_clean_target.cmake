file(REMOVE_RECURSE
  "libmv2gnc_dtype.a"
)
