# Empty dependencies file for mv2gnc_gpu.
# This may be replaced when dependencies are built.
