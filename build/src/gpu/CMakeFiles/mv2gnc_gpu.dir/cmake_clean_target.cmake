file(REMOVE_RECURSE
  "libmv2gnc_gpu.a"
)
