file(REMOVE_RECURSE
  "CMakeFiles/mv2gnc_gpu.dir/cost_model.cpp.o"
  "CMakeFiles/mv2gnc_gpu.dir/cost_model.cpp.o.d"
  "CMakeFiles/mv2gnc_gpu.dir/device.cpp.o"
  "CMakeFiles/mv2gnc_gpu.dir/device.cpp.o.d"
  "CMakeFiles/mv2gnc_gpu.dir/memory_registry.cpp.o"
  "CMakeFiles/mv2gnc_gpu.dir/memory_registry.cpp.o.d"
  "libmv2gnc_gpu.a"
  "libmv2gnc_gpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv2gnc_gpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
