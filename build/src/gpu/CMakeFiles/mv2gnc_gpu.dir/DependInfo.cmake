
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/gpu/cost_model.cpp" "src/gpu/CMakeFiles/mv2gnc_gpu.dir/cost_model.cpp.o" "gcc" "src/gpu/CMakeFiles/mv2gnc_gpu.dir/cost_model.cpp.o.d"
  "/root/repo/src/gpu/device.cpp" "src/gpu/CMakeFiles/mv2gnc_gpu.dir/device.cpp.o" "gcc" "src/gpu/CMakeFiles/mv2gnc_gpu.dir/device.cpp.o.d"
  "/root/repo/src/gpu/memory_registry.cpp" "src/gpu/CMakeFiles/mv2gnc_gpu.dir/memory_registry.cpp.o" "gcc" "src/gpu/CMakeFiles/mv2gnc_gpu.dir/memory_registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/mv2gnc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
