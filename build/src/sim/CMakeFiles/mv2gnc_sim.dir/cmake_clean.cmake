file(REMOVE_RECURSE
  "CMakeFiles/mv2gnc_sim.dir/engine.cpp.o"
  "CMakeFiles/mv2gnc_sim.dir/engine.cpp.o.d"
  "CMakeFiles/mv2gnc_sim.dir/resource.cpp.o"
  "CMakeFiles/mv2gnc_sim.dir/resource.cpp.o.d"
  "CMakeFiles/mv2gnc_sim.dir/trace.cpp.o"
  "CMakeFiles/mv2gnc_sim.dir/trace.cpp.o.d"
  "libmv2gnc_sim.a"
  "libmv2gnc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv2gnc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
