# Empty dependencies file for mv2gnc_sim.
# This may be replaced when dependencies are built.
