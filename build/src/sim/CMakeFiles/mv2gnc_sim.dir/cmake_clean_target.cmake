file(REMOVE_RECURSE
  "libmv2gnc_sim.a"
)
