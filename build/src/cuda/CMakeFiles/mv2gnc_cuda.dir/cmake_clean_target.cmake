file(REMOVE_RECURSE
  "libmv2gnc_cuda.a"
)
