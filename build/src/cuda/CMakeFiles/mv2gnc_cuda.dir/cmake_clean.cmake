file(REMOVE_RECURSE
  "CMakeFiles/mv2gnc_cuda.dir/runtime.cpp.o"
  "CMakeFiles/mv2gnc_cuda.dir/runtime.cpp.o.d"
  "libmv2gnc_cuda.a"
  "libmv2gnc_cuda.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv2gnc_cuda.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
