# Empty dependencies file for mv2gnc_cuda.
# This may be replaced when dependencies are built.
