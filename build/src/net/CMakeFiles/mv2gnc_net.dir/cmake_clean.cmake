file(REMOVE_RECURSE
  "CMakeFiles/mv2gnc_net.dir/fabric.cpp.o"
  "CMakeFiles/mv2gnc_net.dir/fabric.cpp.o.d"
  "libmv2gnc_net.a"
  "libmv2gnc_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv2gnc_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
