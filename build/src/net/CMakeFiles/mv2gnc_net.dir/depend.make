# Empty dependencies file for mv2gnc_net.
# This may be replaced when dependencies are built.
