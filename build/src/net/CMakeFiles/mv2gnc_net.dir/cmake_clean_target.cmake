file(REMOVE_RECURSE
  "libmv2gnc_net.a"
)
