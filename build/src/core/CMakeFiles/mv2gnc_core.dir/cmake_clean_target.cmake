file(REMOVE_RECURSE
  "libmv2gnc_core.a"
)
