
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/gpu_staging.cpp" "src/core/CMakeFiles/mv2gnc_core.dir/gpu_staging.cpp.o" "gcc" "src/core/CMakeFiles/mv2gnc_core.dir/gpu_staging.cpp.o.d"
  "/root/repo/src/core/msg_view.cpp" "src/core/CMakeFiles/mv2gnc_core.dir/msg_view.cpp.o" "gcc" "src/core/CMakeFiles/mv2gnc_core.dir/msg_view.cpp.o.d"
  "/root/repo/src/core/rndv.cpp" "src/core/CMakeFiles/mv2gnc_core.dir/rndv.cpp.o" "gcc" "src/core/CMakeFiles/mv2gnc_core.dir/rndv.cpp.o.d"
  "/root/repo/src/core/tunables.cpp" "src/core/CMakeFiles/mv2gnc_core.dir/tunables.cpp.o" "gcc" "src/core/CMakeFiles/mv2gnc_core.dir/tunables.cpp.o.d"
  "/root/repo/src/core/vbuf_pool.cpp" "src/core/CMakeFiles/mv2gnc_core.dir/vbuf_pool.cpp.o" "gcc" "src/core/CMakeFiles/mv2gnc_core.dir/vbuf_pool.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mpi/CMakeFiles/mv2gnc_dtype.dir/DependInfo.cmake"
  "/root/repo/build/src/cuda/CMakeFiles/mv2gnc_cuda.dir/DependInfo.cmake"
  "/root/repo/build/src/net/CMakeFiles/mv2gnc_net.dir/DependInfo.cmake"
  "/root/repo/build/src/gpu/CMakeFiles/mv2gnc_gpu.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/mv2gnc_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
