# Empty compiler generated dependencies file for mv2gnc_core.
# This may be replaced when dependencies are built.
