file(REMOVE_RECURSE
  "CMakeFiles/mv2gnc_core.dir/gpu_staging.cpp.o"
  "CMakeFiles/mv2gnc_core.dir/gpu_staging.cpp.o.d"
  "CMakeFiles/mv2gnc_core.dir/msg_view.cpp.o"
  "CMakeFiles/mv2gnc_core.dir/msg_view.cpp.o.d"
  "CMakeFiles/mv2gnc_core.dir/rndv.cpp.o"
  "CMakeFiles/mv2gnc_core.dir/rndv.cpp.o.d"
  "CMakeFiles/mv2gnc_core.dir/tunables.cpp.o"
  "CMakeFiles/mv2gnc_core.dir/tunables.cpp.o.d"
  "CMakeFiles/mv2gnc_core.dir/vbuf_pool.cpp.o"
  "CMakeFiles/mv2gnc_core.dir/vbuf_pool.cpp.o.d"
  "libmv2gnc_core.a"
  "libmv2gnc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mv2gnc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
