file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_stencil_single.dir/bench_table2_stencil_single.cpp.o"
  "CMakeFiles/bench_table2_stencil_single.dir/bench_table2_stencil_single.cpp.o.d"
  "bench_table2_stencil_single"
  "bench_table2_stencil_single.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_stencil_single.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
