# Empty compiler generated dependencies file for bench_fig6_stencil_breakdown.
# This may be replaced when dependencies are built.
