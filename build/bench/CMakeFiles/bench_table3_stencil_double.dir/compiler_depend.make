# Empty compiler generated dependencies file for bench_table3_stencil_double.
# This may be replaced when dependencies are built.
