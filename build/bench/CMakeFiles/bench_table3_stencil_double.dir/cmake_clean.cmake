file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_stencil_double.dir/bench_table3_stencil_double.cpp.o"
  "CMakeFiles/bench_table3_stencil_double.dir/bench_table3_stencil_double.cpp.o.d"
  "bench_table3_stencil_double"
  "bench_table3_stencil_double.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_stencil_double.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
