# Empty dependencies file for bench_scaling_stencil.
# This may be replaced when dependencies are built.
