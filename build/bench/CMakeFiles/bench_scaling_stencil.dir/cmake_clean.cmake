file(REMOVE_RECURSE
  "CMakeFiles/bench_scaling_stencil.dir/bench_scaling_stencil.cpp.o"
  "CMakeFiles/bench_scaling_stencil.dir/bench_scaling_stencil.cpp.o.d"
  "bench_scaling_stencil"
  "bench_scaling_stencil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_scaling_stencil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
