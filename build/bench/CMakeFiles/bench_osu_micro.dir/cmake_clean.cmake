file(REMOVE_RECURSE
  "CMakeFiles/bench_osu_micro.dir/bench_osu_micro.cpp.o"
  "CMakeFiles/bench_osu_micro.dir/bench_osu_micro.cpp.o.d"
  "bench_osu_micro"
  "bench_osu_micro.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_osu_micro.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
