# Empty dependencies file for bench_osu_micro.
# This may be replaced when dependencies are built.
