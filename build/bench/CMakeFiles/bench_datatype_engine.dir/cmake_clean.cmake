file(REMOVE_RECURSE
  "CMakeFiles/bench_datatype_engine.dir/bench_datatype_engine.cpp.o"
  "CMakeFiles/bench_datatype_engine.dir/bench_datatype_engine.cpp.o.d"
  "bench_datatype_engine"
  "bench_datatype_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_datatype_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
