# Empty dependencies file for bench_datatype_engine.
# This may be replaced when dependencies are built.
