# Empty compiler generated dependencies file for bench_fig2_pack_schemes.
# This may be replaced when dependencies are built.
