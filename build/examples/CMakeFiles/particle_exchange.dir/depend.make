# Empty dependencies file for particle_exchange.
# This may be replaced when dependencies are built.
