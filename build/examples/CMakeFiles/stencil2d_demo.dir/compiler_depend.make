# Empty compiler generated dependencies file for stencil2d_demo.
# This may be replaced when dependencies are built.
