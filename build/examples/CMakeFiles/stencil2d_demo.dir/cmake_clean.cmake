file(REMOVE_RECURSE
  "CMakeFiles/stencil2d_demo.dir/stencil2d_demo.cpp.o"
  "CMakeFiles/stencil2d_demo.dir/stencil2d_demo.cpp.o.d"
  "stencil2d_demo"
  "stencil2d_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stencil2d_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
