// particle_exchange: heterogeneous struct datatypes over GPU memory.
//
// A small molecular-dynamics-style scenario: each rank keeps an array of
// particle records in device memory and ships a subset of *fields* (id and
// position, not velocity or padding) to its neighbour using a struct
// datatype with a resized extent. Demonstrates that the datatype engine's
// struct/resized constructors compose with the GPU path (via the
// generalized pack kernel — structs have no uniform 2-D pattern).
//
// Build & run:  ./examples/particle_exchange
#include <array>
#include <cstdint>
#include <cstdio>
#include <vector>

#include "mpi/cluster.hpp"

using namespace mv2gnc;
using mpisim::Datatype;

namespace {

struct Particle {
  std::int32_t id;
  std::int32_t cell;     // not communicated
  double x, y, z;
  double vx, vy, vz;     // not communicated
};

Datatype particle_wire_type() {
  // id + (x, y, z), holes for cell and velocity.
  const std::array<int, 2> lens{1, 3};
  const std::array<std::int64_t, 2> displs{offsetof(Particle, id),
                                           offsetof(Particle, x)};
  const std::array<Datatype, 2> types{Datatype::int32(),
                                      Datatype::float64()};
  auto body = Datatype::create_struct(lens, displs, types);
  auto t = Datatype::resized(body, 0, sizeof(Particle));
  t.commit();
  return t;
}

}  // namespace

int main() {
  mpisim::Cluster cluster(mpisim::ClusterConfig{.ranks = 2});
  cluster.run([](mpisim::Context& ctx) {
    constexpr int kCount = 20'000;  // ~560 KB of records on the wire
    auto wire = particle_wire_type();
    auto* particles = static_cast<Particle*>(
        ctx.cuda->malloc(sizeof(Particle) * kCount));

    if (ctx.rank == 0) {
      std::vector<Particle> host(kCount);
      for (int i = 0; i < kCount; ++i) {
        host[i] = Particle{i, -1, i * 0.5, i * 0.25, i * 0.125,
                           9e9, 9e9, 9e9};
      }
      ctx.cuda->memcpy(particles, host.data(), sizeof(Particle) * kCount);
      const double t0 = ctx.comm.wtime();
      ctx.comm.send(particles, kCount, wire, 1, 3);
      std::printf("[rank 0] sent %d particles (id+position only) from GPU "
                  "memory in %.2f ms\n",
                  kCount, (ctx.comm.wtime() - t0) * 1e3);
    } else {
      // Pre-fill so the holes (cell, velocity) are provably untouched.
      std::vector<Particle> host(kCount,
                                 Particle{-7, 42, 0, 0, 0, 1.5, 2.5, 3.5});
      ctx.cuda->memcpy(particles, host.data(), sizeof(Particle) * kCount);
      ctx.comm.recv(particles, kCount, wire, 0, 3);
      ctx.cuda->memcpy(host.data(), particles, sizeof(Particle) * kCount);
      bool ok = true;
      for (int i = 0; i < kCount && ok; ++i) {
        ok = host[i].id == i && host[i].x == i * 0.5 &&
             host[i].cell == 42 && host[i].vx == 1.5;  // holes preserved
      }
      std::printf("[rank 1] received particle fields into GPU memory: %s\n",
                  ok ? "ids/positions verified, local fields untouched"
                     : "CORRUPT");
    }
    ctx.cuda->free(particles);
  });
  return 0;
}
