// Quickstart: send a non-contiguous (strided) vector that lives in GPU
// device memory from one rank to another — with nothing but MPI calls.
//
// This is the paper's Figure 4(c): create the vector datatype, commit it,
// and pass device pointers straight to send/recv. The library detects the
// device residency, offloads the pack/unpack onto the GPU, and pipelines
// the transfer stages.
//
// Build & run:  ./examples/quickstart
#include <cstdio>
#include <numeric>
#include <vector>

#include "mpi/cluster.hpp"

using namespace mv2gnc;

int main() {
  // A simulated 2-node cluster: one CPU process + one Tesla-C2050-class
  // GPU + one QDR HCA per node.
  mpisim::Cluster cluster(mpisim::ClusterConfig{.ranks = 2});

  cluster.run([](mpisim::Context& ctx) {
    // One float column of a 1024 x 256 row-major matrix: 1024 elements,
    // each 256 floats apart — classic east/west halo layout.
    constexpr int kRows = 1024, kCols = 256;
    auto column = mpisim::Datatype::vector(kRows, 1, kCols,
                                           mpisim::Datatype::float32());
    column.commit();

    // The matrix lives in GPU device memory.
    auto* matrix = static_cast<float*>(
        ctx.cuda->malloc(sizeof(float) * kRows * kCols));

    if (ctx.rank == 0) {
      // Fill column 0 on the host, upload, and send it — directly from
      // device memory.
      std::vector<float> host(kRows * kCols, 0.f);
      for (int r = 0; r < kRows; ++r) host[r * kCols] = static_cast<float>(r);
      ctx.cuda->memcpy(matrix, host.data(), host.size() * sizeof(float));

      const double t0 = ctx.comm.wtime();
      ctx.comm.send(matrix, 1, column, /*dst=*/1, /*tag=*/0);
      std::printf("[rank 0] sent a %d-element strided column from GPU "
                  "memory in %.1f us (virtual)\n",
                  kRows, (ctx.comm.wtime() - t0) * 1e6);
    } else {
      ctx.comm.recv(matrix, 1, column, /*src=*/0, /*tag=*/0);
      std::vector<float> host(kRows * kCols);
      ctx.cuda->memcpy(host.data(), matrix, host.size() * sizeof(float));
      bool ok = true;
      for (int r = 0; r < kRows; ++r) {
        if (host[r * kCols] != static_cast<float>(r)) ok = false;
      }
      std::printf("[rank 1] received the column into GPU memory: %s\n",
                  ok ? "payload verified" : "CORRUPT");
    }
    ctx.cuda->free(matrix);
  });
  return 0;
}
