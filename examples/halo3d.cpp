// halo3d: 3-D halo exchange with subarray datatypes on GPU memory.
//
// Goes beyond the paper's vector types: each rank owns a 3-D brick in
// device memory and exchanges six face halos described with
// MPI_Type_create_subarray-style datatypes. The X faces are fully
// contiguous planes, the Y and Z faces are strided — the Z face is a
// uniform 2-D pattern (offloaded as a cudaMemcpy2D), while the Y face is
// an irregular gather handled by the generalized device pack kernel.
//
// Build & run:  ./examples/halo3d
#include <array>
#include <cstdio>
#include <numeric>
#include <vector>

#include "mpi/cluster.hpp"

using namespace mv2gnc;
using mpisim::ArrayOrder;
using mpisim::Datatype;

namespace {

// Local brick: (NZ+2) x (NY+2) x (NX+2) doubles, C order (x fastest).
constexpr int kNx = 64, kNy = 48, kNz = 32;
constexpr std::array<int, 3> kSizes{kNz + 2, kNy + 2, kNx + 2};

Datatype face(int dim, int index) {
  // Interior-sized face at the given index along `dim`.
  std::array<int, 3> subsizes{kNz, kNy, kNx};
  std::array<int, 3> starts{1, 1, 1};
  subsizes[dim] = 1;
  starts[dim] = index;
  auto t = Datatype::subarray(kSizes, subsizes, starts, ArrayOrder::kC,
                              Datatype::float64());
  t.commit();
  return t;
}

}  // namespace

int main() {
  // 1-D decomposition along Z across 4 ranks (periodic ring).
  mpisim::Cluster cluster(mpisim::ClusterConfig{.ranks = 4});
  cluster.run([](mpisim::Context& ctx) {
    const std::size_t cells = static_cast<std::size_t>(kSizes[0]) *
                              kSizes[1] * kSizes[2];
    auto* brick = static_cast<double*>(
        ctx.cuda->malloc(cells * sizeof(double)));
    std::vector<double> host(cells, 0.0);
    for (std::size_t i = 0; i < cells; ++i) {
      host[i] = ctx.rank * 1000.0 + static_cast<double>(i % 997);
    }
    ctx.cuda->memcpy(brick, host.data(), cells * sizeof(double));

    const int up = (ctx.rank + 1) % ctx.size;
    const int down = (ctx.rank + ctx.size - 1) % ctx.size;

    // Send my top interior Z-plane up; receive my bottom halo from below.
    auto send_face = face(0, kNz);   // interior plane: strided subarray
    auto recv_face = face(0, 0);     // halo plane
    const double t0 = ctx.comm.wtime();
    mpisim::Request r =
        ctx.comm.irecv(brick, 1, recv_face, down, 7);
    ctx.comm.send(brick, 1, send_face, up, 7);
    ctx.comm.wait(r);
    const double ms = (ctx.comm.wtime() - t0) * 1e3;

    // Verify: my bottom halo must hold `down`'s top interior plane.
    ctx.cuda->memcpy(host.data(), brick, cells * sizeof(double));
    const std::size_t plane = static_cast<std::size_t>(kSizes[1]) * kSizes[2];
    bool ok = true;
    for (int y = 1; y <= kNy && ok; ++y) {
      for (int x = 1; x <= kNx && ok; ++x) {
        const std::size_t halo_idx =
            0 * plane + static_cast<std::size_t>(y) * kSizes[2] + x;
        const std::size_t src_idx =
            static_cast<std::size_t>(kNz) * plane +
            static_cast<std::size_t>(y) * kSizes[2] + x;
        const double expect = down * 1000.0 + static_cast<double>(src_idx % 997);
        if (host[halo_idx] != expect) ok = false;
      }
    }
    std::printf("[rank %d] Z-face halo exchange (%d x %d doubles) in "
                "%.2f ms: %s\n",
                ctx.rank, kNy, kNx, ms, ok ? "verified" : "CORRUPT");
    ctx.cuda->free(brick);
  });
  return 0;
}
