// Stencil2D demo: the paper's §V-B application on a 2x2 process grid,
// running the real nine-point arithmetic with validation against the
// serial reference, then comparing both communication variants.
//
// Build & run:  ./examples/stencil2d_demo
#include <cstdio>

#include "apps/stencil2d.hpp"

using namespace mv2gnc;

namespace {

double run_variant(apps::StencilConfig::Variant variant, const char* name) {
  apps::StencilConfig cfg;
  cfg.proc_rows = 2;
  cfg.proc_cols = 2;
  cfg.local_rows = 2048;
  cfg.local_cols = 2048;
  cfg.iterations = 10;
  cfg.variant = variant;
  cfg.validate = false;  // big enough that we want model-driven timing

  mpisim::Cluster cluster(mpisim::ClusterConfig{.ranks = cfg.ranks()});
  double seconds = 0;
  cluster.run([&](mpisim::Context& ctx) {
    auto res = apps::run_stencil(ctx, cfg);
    if (ctx.rank == 0) seconds = res.seconds;
  });
  std::printf("  %-22s %8.3f ms for %d iterations\n", name, seconds * 1e3,
              cfg.iterations);
  return seconds;
}

}  // namespace

int main() {
  std::printf("Validating numerics on a small grid (throws on mismatch)...\n");
  {
    apps::StencilConfig cfg;
    cfg.proc_rows = 2;
    cfg.proc_cols = 2;
    cfg.local_rows = 24;
    cfg.local_cols = 20;
    cfg.iterations = 6;
    cfg.variant = apps::StencilConfig::Variant::kMv2GpuNc;
    cfg.validate = true;
    mpisim::Cluster cluster(mpisim::ClusterConfig{.ranks = cfg.ranks()});
    double checksum = 0;
    cluster.run([&](mpisim::Context& ctx) {
      auto res = apps::run_stencil(ctx, cfg);
      if (ctx.rank == 0) checksum = res.checksum;
    });
    std::printf("  OK, checksum = %.6f\n\n", checksum);
  }

  std::printf("Timing both variants on 2x2 x (2K x 2K) single precision:\n");
  const double def_s = run_variant(apps::StencilConfig::Variant::kDef,
                                   "Stencil2D-Def");
  const double nc_s = run_variant(apps::StencilConfig::Variant::kMv2GpuNc,
                                  "Stencil2D-MV2-GPU-NC");
  std::printf("  improvement: %.0f%%\n", (def_s - nc_s) / def_s * 100.0);
  return 0;
}
