// Distributed matrix transpose on GPU memory — subarray datatypes sent
// straight from device buffers, the FFT-style all-to-all exchange.
//
// Build & run:  ./examples/transpose
#include <cstdio>
#include <iostream>

#include "apps/transpose.hpp"
#include "mpi/cluster.hpp"

using namespace mv2gnc;

int main() {
  std::printf("Validated transpose of a 256 x 256 matrix over 4 GPUs...\n");
  {
    mpisim::Cluster cluster(mpisim::ClusterConfig{.ranks = 4});
    apps::TransposeConfig cfg;
    cfg.global_n = 256;
    cfg.validate = true;  // throws on any misplaced element
    double checksum = 0;
    cluster.run([&](mpisim::Context& ctx) {
      auto res = apps::run_transpose(ctx, cfg);
      if (ctx.rank == 0) checksum = res.checksum;
    });
    std::printf("  OK, checksum = %.0f\n\n", checksum);
  }

  std::printf("Timing an 8K x 8K transpose over 8 GPUs (model-driven)...\n");
  {
    mpisim::Cluster cluster(mpisim::ClusterConfig{.ranks = 8});
    apps::TransposeConfig cfg;
    cfg.global_n = 8192;
    double seconds = 0;
    cluster.run([&](mpisim::Context& ctx) {
      auto res = apps::run_transpose(ctx, cfg);
      if (ctx.rank == 0) seconds = res.seconds;
    });
    std::printf("  %.2f ms virtual time (%.1f MB per rank exchanged)\n",
                seconds * 1e3, 8192.0 * 8192 / 8 * 8 / 1e6);
    cluster.print_stats(std::cout);
  }
  return 0;
}
