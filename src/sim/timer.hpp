// One-shot re-armable deadline on virtual time.
//
// Thin RAII wrapper over Engine::schedule_timer/cancel_timer for protocol
// retransmission deadlines: arm() replaces any previous deadline, cancel()
// guarantees the callback will never run, and destruction cancels. The
// callback executes on the scheduler thread, so it must only do wake-up
// work (typically Notifier::notify) — never blocking calls, and never the
// retransmission itself.
#pragma once

#include <functional>
#include <utility>

#include "sim/engine.hpp"
#include "sim/time.hpp"

namespace mv2gnc::sim {

class DeadlineTimer {
 public:
  explicit DeadlineTimer(Engine& engine) : engine_(engine) {}
  ~DeadlineTimer() { cancel(); }
  DeadlineTimer(const DeadlineTimer&) = delete;
  DeadlineTimer& operator=(const DeadlineTimer&) = delete;

  /// Arm (or re-arm) the deadline at absolute virtual time `at`. A previous
  /// pending deadline is canceled first, so at most one is outstanding.
  void arm(SimTime at, std::function<void()> on_expire) {
    cancel();
    deadline_ = at;
    fired_ = false;
    id_ = engine_.schedule_timer(at, [this, cb = std::move(on_expire)] {
      fired_ = true;
      cb();
    });
  }

  /// Cancel the pending deadline, if any. Safe to call repeatedly.
  void cancel() {
    if (id_ != 0) {
      engine_.cancel_timer(id_);
      id_ = 0;
    }
  }

  /// True while a deadline is scheduled and has not fired or been canceled.
  bool armed() const { return id_ != 0 && !fired_; }

  /// True once the most recently armed deadline's callback has run.
  bool fired() const { return fired_; }

  /// The absolute time of the most recently armed deadline.
  SimTime deadline() const { return deadline_; }

 private:
  Engine& engine_;
  TimerId id_ = 0;
  SimTime deadline_ = 0;
  bool fired_ = false;
};

}  // namespace mv2gnc::sim
