#include "sim/trace.hpp"

#include <algorithm>

namespace mv2gnc::sim {

std::uint64_t TraceRecorder::count(int rank,
                                   std::string_view category) const {
  std::uint64_t n = 0;
  for (const TraceRecord& r : records_) {
    if (r.rank == rank && r.category == category) ++n;
  }
  return n;
}

std::uint64_t TraceRecorder::count(std::string_view category) const {
  std::uint64_t n = 0;
  for (const TraceRecord& r : records_) {
    if (r.category == category) ++n;
  }
  return n;
}

SimTime TraceRecorder::total(int rank, std::string_view category) const {
  SimTime sum = 0;
  for (const TraceRecord& r : records_) {
    if (r.rank == rank && r.category == category) sum += r.duration();
  }
  return sum;
}

SimTime TraceRecorder::total(std::string_view category) const {
  SimTime sum = 0;
  for (const TraceRecord& r : records_) {
    if (r.category == category) sum += r.duration();
  }
  return sum;
}

std::vector<std::string> TraceRecorder::categories(int rank) const {
  std::vector<std::string> out;
  for (const TraceRecord& r : records_) {
    if (r.rank != rank) continue;
    if (std::find(out.begin(), out.end(), r.category) == out.end()) {
      out.push_back(r.category);
    }
  }
  return out;
}

}  // namespace mv2gnc::sim
