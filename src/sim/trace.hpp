// Lightweight interval tracing for communication breakdowns (paper Fig. 6).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "sim/time.hpp"

namespace mv2gnc::sim {

/// One traced interval: [begin, end) of virtual time, tagged with the rank
/// that incurred it and a category like "east_cuda" or "west_mpi".
struct TraceRecord {
  int rank = -1;
  std::string category;
  SimTime begin = 0;
  SimTime end = 0;

  SimTime duration() const { return end - begin; }
};

/// Accumulates TraceRecords. Disabled by default so the hot paths stay
/// cheap; benchmarks that need breakdowns flip `set_enabled(true)`.
class TraceRecorder {
 public:
  void set_enabled(bool enabled) { enabled_ = enabled; }
  bool enabled() const { return enabled_; }

  /// Record an interval. No-op while disabled — and genuinely free: the
  /// string_view signature plus the inline enabled check mean a disabled
  /// call site constructs no std::string temporary and pays one branch.
  void record(int rank, std::string_view category, SimTime begin,
              SimTime end) {
    if (!enabled_) return;
    records_.push_back(TraceRecord{rank, std::string(category), begin, end});
  }

  /// Record a point event — a zero-duration record at `at`. Used for fault,
  /// retransmit, and stall occurrences where only the count and timestamp
  /// matter, not a duration.
  void event(int rank, std::string_view category, SimTime at) {
    if (!enabled_) return;
    records_.push_back(TraceRecord{rank, std::string(category), at, at});
  }

  /// Number of records (intervals and events) for (rank, category).
  std::uint64_t count(int rank, std::string_view category) const;

  /// Number of records for a category across all ranks.
  std::uint64_t count(std::string_view category) const;

  /// Sum of durations for (rank, category).
  SimTime total(int rank, std::string_view category) const;

  /// Sum of durations for a category across all ranks.
  SimTime total(std::string_view category) const;

  /// Distinct categories seen for `rank`, in first-seen order.
  std::vector<std::string> categories(int rank) const;

  const std::vector<TraceRecord>& records() const { return records_; }

  void clear() { records_.clear(); }

 private:
  bool enabled_ = false;
  std::vector<TraceRecord> records_;
};

}  // namespace mv2gnc::sim
