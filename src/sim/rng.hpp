// Deterministic pseudo-randomness for the simulation.
//
// Everything random in a run (fault injection, delivery jitter) must come
// from one seeded generator owned by the engine, never from wall-clock or
// hardware entropy: a fixed seed then reproduces the exact event order,
// which is what makes lossy-fabric tests replayable bit-for-bit.
#pragma once

#include <cstdint>

namespace mv2gnc::sim {

/// splitmix64 (Steele/Lea/Flood): tiny, fast, passes BigCrush, and — unlike
/// std::mt19937 — guaranteed to produce the identical stream on every
/// platform and standard library.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed = 1) : state_(seed) {}

  void seed(std::uint64_t s) { state_ = s; }

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform draw in [0, bound). A zero bound has an empty range: return 0
  /// rather than dividing by it. The slight modulo bias is irrelevant for
  /// jitter sampling.
  std::uint64_t below(std::uint64_t bound) { return bound ? next() % bound : 0; }

 private:
  std::uint64_t state_;
};

}  // namespace mv2gnc::sim
