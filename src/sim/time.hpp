// Virtual-time primitives for the discrete-event engine.
//
// All simulated latencies in this project are carried as integer
// nanoseconds (SimTime). Integer time keeps the event queue totally
// ordered without floating-point ties, which is what makes runs
// bit-reproducible.
#pragma once

#include <cstdint>
#include <string>

namespace mv2gnc::sim {

/// Virtual time in nanoseconds since the start of the simulation.
using SimTime = std::int64_t;

/// Sentinel for "no deadline / never happens".
inline constexpr SimTime kNever = INT64_MAX;

/// Construct a SimTime from nanoseconds (identity, for readability).
constexpr SimTime nanoseconds(std::int64_t ns) noexcept { return ns; }

/// Construct a SimTime from microseconds.
constexpr SimTime microseconds(std::int64_t us) noexcept { return us * 1000; }

/// Construct a SimTime from milliseconds.
constexpr SimTime milliseconds(std::int64_t ms) noexcept {
  return ms * 1'000'000;
}

/// Construct a SimTime from seconds.
constexpr SimTime seconds(std::int64_t s) noexcept { return s * 1'000'000'000; }

/// Convert to (fractional) microseconds for reporting.
constexpr double to_us(SimTime t) noexcept {
  return static_cast<double>(t) / 1e3;
}

/// Convert to (fractional) milliseconds for reporting.
constexpr double to_ms(SimTime t) noexcept {
  return static_cast<double>(t) / 1e6;
}

/// Convert to (fractional) seconds for reporting.
constexpr double to_sec(SimTime t) noexcept {
  return static_cast<double>(t) / 1e9;
}

/// Human-readable rendering with an auto-selected unit, e.g. "12.3 us".
std::string format_time(SimTime t);

}  // namespace mv2gnc::sim
