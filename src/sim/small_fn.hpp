// SmallFn: a move-only callable for the engine's hot paths.
//
// Every scheduled event and every FifoResource completion used to be a
// std::function<void()>, and almost every one of them captures more than
// std::function's tiny inline buffer holds — so a 256-rank run paid one
// heap allocation (and one free) per event. SmallFn keeps 72 bytes of
// inline storage, enough for every capture the simulator creates (a this
// pointer, a few ints, a unique_ptr or two), and only falls back to the
// heap for oversized or alignment-exotic callables. Being move-only is the
// point, not a limitation: it lets completion lambdas own their payload
// via unique_ptr instead of the shared_ptr churn std::function's
// copyability used to force.
#pragma once

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace mv2gnc::sim {

class SmallFn {
 public:
  /// Inline capture budget. 72 + the 8-byte ops pointer keeps sizeof
  /// (SmallFn) at 80, so a ScheduledEvent stays within two cache lines.
  static constexpr std::size_t kInlineBytes = 72;

  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, SmallFn> &&
                std::is_invocable_r_v<void, std::decay_t<F>&>>>
  SmallFn(F&& fn) {  // NOLINT(google-explicit-constructor)
    using Fn = std::decay_t<F>;
    if constexpr (fits_inline<Fn>()) {
      ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(fn));
      ops_ = &kOps<Fn, true>;
    } else {
      ::new (static_cast<void*>(buf_)) Fn*(new Fn(std::forward<F>(fn)));
      ops_ = &kOps<Fn, false>;
    }
  }

  SmallFn(SmallFn&& other) noexcept { move_from(other); }
  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      reset();
      move_from(other);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;
  ~SmallFn() { reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  /// Invoke. Undefined on an empty SmallFn (like std::function, minus the
  /// bad_function_call ceremony the engine never relied on).
  void operator()() { ops_->call(buf_); }

 private:
  struct Ops {
    void (*call)(void*);
    // Move-construct dst's buffer from src's and end src's lifetime —
    // one vtable hop instead of separate move + destroy.
    void (*relocate)(void* dst, void* src);
    void (*destroy)(void*);
  };

  template <typename Fn>
  static constexpr bool fits_inline() {
    return sizeof(Fn) <= kInlineBytes &&
           alignof(Fn) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<Fn>;
  }

  template <typename Fn, bool Inline>
  static constexpr Ops kOps = {
      [](void* b) {
        if constexpr (Inline) {
          (*std::launder(reinterpret_cast<Fn*>(b)))();
        } else {
          (**std::launder(reinterpret_cast<Fn**>(b)))();
        }
      },
      [](void* dst, void* src) {
        if constexpr (Inline) {
          Fn* s = std::launder(reinterpret_cast<Fn*>(src));
          ::new (dst) Fn(std::move(*s));
          s->~Fn();
        } else {
          // Heap-backed: steal the pointer.
          ::new (dst) Fn*(*std::launder(reinterpret_cast<Fn**>(src)));
        }
      },
      [](void* b) {
        if constexpr (Inline) {
          std::launder(reinterpret_cast<Fn*>(b))->~Fn();
        } else {
          delete *std::launder(reinterpret_cast<Fn**>(b));
        }
      },
  };

  void move_from(SmallFn& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(buf_, other.buf_);
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace mv2gnc::sim
