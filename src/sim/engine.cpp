#include "sim/engine.hpp"

#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <sstream>
#include <utility>

namespace mv2gnc::sim {

std::string format_time(SimTime t) {
  char buf[64];
  if (t < 10'000) {
    std::snprintf(buf, sizeof(buf), "%" PRId64 " ns", t);
  } else if (t < 10'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2f us", to_us(t));
  } else if (t < 10'000'000'000LL) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", to_ms(t));
  } else {
    std::snprintf(buf, sizeof(buf), "%.3f s", to_sec(t));
  }
  return buf;
}

// ---------------------------------------------------------------------------
// EventFlag
// ---------------------------------------------------------------------------

bool EventFlag::is_set() const {
  std::lock_guard<std::mutex> lock(engine_.mu_);
  return set_;
}

void EventFlag::trigger() {
  std::lock_guard<std::mutex> lock(engine_.mu_);
  if (set_) return;
  set_ = true;
  for (detail::Process* p : waiters_) engine_.make_ready_locked(p);
  waiters_.clear();
}

void EventFlag::reset() {
  std::lock_guard<std::mutex> lock(engine_.mu_);
  set_ = false;
}

void EventFlag::wait(const std::string& reason) {
  std::unique_lock<std::mutex> lock(engine_.mu_);
  while (!set_) {
    detail::Process* self = engine_.current_locked();
    waiters_.push_back(self);
    engine_.block_current_locked(lock, reason);
  }
}

// ---------------------------------------------------------------------------
// Notifier
// ---------------------------------------------------------------------------

void Notifier::notify() {
  std::lock_guard<std::mutex> lock(engine_.mu_);
  ++pending_;
  if (waiter_ != nullptr) {
    engine_.make_ready_locked(waiter_);
    waiter_ = nullptr;
  }
}

void Notifier::wait(const std::string& reason) {
  std::unique_lock<std::mutex> lock(engine_.mu_);
  while (pending_ == 0) {
    detail::Process* self = engine_.current_locked();
    if (waiter_ != nullptr && waiter_ != self) {
      throw std::logic_error("Notifier: more than one concurrent waiter");
    }
    waiter_ = self;
    engine_.block_current_locked(lock, reason);
  }
  pending_ = 0;
}

bool Notifier::try_consume() {
  std::lock_guard<std::mutex> lock(engine_.mu_);
  if (pending_ == 0) return false;
  pending_ = 0;
  return true;
}

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

Engine::Engine() = default;

Engine::~Engine() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!aborting_) abort_all_locked(lock);
  }
  join_all();
}

SimTime Engine::now() const {
  // Lock-free: the clock only moves in dispatch, and the reader is almost
  // always the token-holding process, which cannot race the dispatcher.
  return now_.load(std::memory_order_relaxed);
}

void Engine::spawn(std::string name, std::function<void()> body) {
  std::lock_guard<std::mutex> lock(mu_);
  auto proc = std::make_unique<detail::Process>();
  proc->name = std::move(name);
  proc->body = std::move(body);
  proc->state = detail::ProcState::kReady;
  detail::Process* p = proc.get();
  processes_.push_back(std::move(proc));
  ready_.push_back(p);
  p->thread = std::thread([this, p] { trampoline(p); });
}

void Engine::schedule_at(SimTime at, SmallFn action) {
  std::lock_guard<std::mutex> lock(mu_);
  const SimTime t = now_.load(std::memory_order_relaxed);
  if (at < t) at = t;
  queue_.push(detail::ScheduledEvent{at, seq_++, std::move(action)});
}

void Engine::schedule_after(SimTime delay, SmallFn action) {
  std::lock_guard<std::mutex> lock(mu_);
  const SimTime t = now_.load(std::memory_order_relaxed);
  const SimTime at = (delay < 0) ? t : t + delay;
  queue_.push(detail::ScheduledEvent{at, seq_++, std::move(action)});
}

TimerId Engine::schedule_timer(SimTime at, SmallFn action) {
  std::lock_guard<std::mutex> lock(mu_);
  const SimTime t = now_.load(std::memory_order_relaxed);
  if (at < t) at = t;
  TimerId id = next_timer_id_++;
  pending_timers_.insert(id);
  queue_.push(detail::ScheduledEvent{at, seq_++, std::move(action), id});
  return id;
}

bool Engine::cancel_timer(TimerId id) {
  std::lock_guard<std::mutex> lock(mu_);
  return pending_timers_.erase(id) > 0;
}

void Engine::seed_rng(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_.seed(seed);
}

std::uint64_t Engine::rand_u64() {
  std::lock_guard<std::mutex> lock(mu_);
  return rng_.next();
}

double Engine::rand_uniform() {
  std::lock_guard<std::mutex> lock(mu_);
  return rng_.uniform();
}

std::uint64_t Engine::rand_below(std::uint64_t bound) {
  std::lock_guard<std::mutex> lock(mu_);
  return rng_.below(bound);
}

void Engine::delay(SimTime d) {
  std::unique_lock<std::mutex> lock(mu_);
  detail::Process* self = current_locked();
  const SimTime at =
      now_.load(std::memory_order_relaxed) + (d < 0 ? 0 : d);
  // The action runs in scheduler context without the lock held.
  queue_.push(detail::ScheduledEvent{at, seq_++, [this, self] {
                                       std::lock_guard<std::mutex> l(mu_);
                                       make_ready_locked(self);
                                     }});
  block_current_locked(lock, "delay");
}

std::string Engine::current_process_name() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_ != nullptr ? running_->name : std::string{};
}

detail::Process* Engine::current_locked() const {
  if (running_ == nullptr ||
      running_->thread.get_id() != std::this_thread::get_id()) {
    throw std::logic_error(
        "engine blocking primitive called outside a simulated process");
  }
  return running_;
}

void Engine::make_ready_locked(detail::Process* p) {
  if (p->state == detail::ProcState::kFinished) return;
  if (p->state == detail::ProcState::kReady) return;  // already queued
  p->state = detail::ProcState::kReady;
  ready_.push_back(p);
}

void Engine::block_current_locked(std::unique_lock<std::mutex>& lock,
                                  const std::string& reason) {
  detail::Process* self = running_;
  self->state = detail::ProcState::kBlocked;
  self->wait_reason = reason;
  running_ = nullptr;
  // Dispatch inline: this thread runs due events and hands the token on
  // before it sleeps. If an event makes `self` ready again, the token comes
  // straight back (resume_token already set) and the cv wait never blocks —
  // zero OS context switches for the common block-then-wake-at-once cycle.
  dispatch_locked(lock, self);
  self->cv.wait(lock, [self] { return self->resume_token; });
  self->resume_token = false;
  self->state = detail::ProcState::kRunning;
  running_ = self;
  if (aborting_) throw ProcessAborted{};
}

void Engine::dispatch_locked(std::unique_lock<std::mutex>& lock,
                             detail::Process* self) {
  // Precondition: the token is free (running_ == nullptr) and this thread
  // holds the lock. Exactly one thread can be here at a time, because only
  // the thread that released the token (or run(), when nothing holds it)
  // calls dispatch.
  for (;;) {
    if (aborting_ || first_error_) {
      // Teardown owns scheduling from here; wake run()/abort_all.
      main_cv_.notify_all();
      return;
    }
    if (!ready_.empty()) {
      detail::Process* p = ready_.front();
      ready_.pop_front();
      if (p->state != detail::ProcState::kReady) continue;
      p->state = detail::ProcState::kRunning;
      running_ = p;
      p->resume_token = true;
      // Handing the token back to the dispatching process itself needs no
      // notify: its upcoming cv.wait sees resume_token and returns at once.
      if (p != self) p->cv.notify_one();
      return;
    }
    if (!queue_.empty()) {
      detail::ScheduledEvent ev =
          std::move(const_cast<detail::ScheduledEvent&>(queue_.top()));
      queue_.pop();
      if (ev.timer_id != 0) {
        // Canceled timers are discarded without touching the clock: a
        // retransmission timer armed far in the future must not stretch
        // the fault-free run's elapsed time after its transfer completed.
        if (pending_timers_.erase(ev.timer_id) == 0) continue;
      }
      now_.store(ev.at, std::memory_order_relaxed);
      ++events_executed_;
      // Actions run without the lock so they may freely use the public
      // API (trigger flags, notify, schedule). Nothing else is runnable
      // while an action executes (the token is free and every process is
      // blocked or waiting), so this is race-free.
      lock.unlock();
      ev.action();
      lock.lock();
      continue;
    }
    // No runnable process and no pending event: the simulation is over —
    // run() decides whether that means "finished" or "deadlocked".
    sim_stopped_ = true;
    main_cv_.notify_all();
    return;
  }
}

void Engine::trampoline(detail::Process* p) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    p->cv.wait(lock, [p] { return p->resume_token; });
    p->resume_token = false;
    if (aborting_) {
      p->state = detail::ProcState::kFinished;
      running_ = nullptr;
      main_cv_.notify_all();
      return;
    }
    p->state = detail::ProcState::kRunning;
    running_ = p;
  }
  try {
    p->body();
  } catch (const ProcessAborted&) {
    // Expected during teardown; fall through to finish bookkeeping.
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!first_error_) first_error_ = std::current_exception();
  }
  std::unique_lock<std::mutex> lock(mu_);
  p->state = detail::ProcState::kFinished;
  if (running_ == p) running_ = nullptr;
  if (aborting_ || first_error_) {
    // Teardown (or a sibling's exception) is in charge; just report in.
    main_cv_.notify_all();
    return;
  }
  // Keep the simulation moving: the finishing thread dispatches onward.
  dispatch_locked(lock, nullptr);
}

void Engine::run() {
  const auto wall_start = std::chrono::steady_clock::now();
  std::unique_lock<std::mutex> lock(mu_);
  if (in_run_) throw std::logic_error("Engine::run() is not reentrant");
  in_run_ = true;
  sim_stopped_ = false;
  const auto accumulate_wall = [&] {
    wall_seconds_ += std::chrono::duration<double>(
                         std::chrono::steady_clock::now() - wall_start)
                         .count();
  };
  // Kick the simulation off, then sleep until it stops: the processes
  // themselves keep the dispatch loop running between here and there.
  dispatch_locked(lock, nullptr);
  main_cv_.wait(lock, [this] { return sim_stopped_ || first_error_; });
  if (first_error_) {
    abort_all_locked(lock);
    in_run_ = false;
    accumulate_wall();
    std::exception_ptr err = first_error_;
    first_error_ = nullptr;
    lock.unlock();
    join_all();
    std::rethrow_exception(err);
  }
  // Quiescent: everything finished, or every live process is stuck.
  bool any_blocked = false;
  std::ostringstream diag;
  for (const auto& p : processes_) {
    if (p->state == detail::ProcState::kBlocked) {
      any_blocked = true;
      diag << "\n  process '" << p->name << "' blocked on: "
           << p->wait_reason;
    }
  }
  if (any_blocked) {
    abort_all_locked(lock);
    in_run_ = false;
    accumulate_wall();
    throw DeadlockError(
        "simulation deadlock at t=" +
        format_time(now_.load(std::memory_order_relaxed)) + diag.str());
  }
  in_run_ = false;
  accumulate_wall();
}

void Engine::abort_all_locked(std::unique_lock<std::mutex>& lock) {
  aborting_ = true;
  for (;;) {
    bool any_alive = false;
    for (const auto& p : processes_) {
      if (p->state == detail::ProcState::kBlocked ||
          p->state == detail::ProcState::kReady) {
        any_alive = true;
        p->resume_token = true;
        p->cv.notify_one();
      }
    }
    if (!any_alive) break;
    main_cv_.wait_for(lock, std::chrono::milliseconds(1));
  }
}

void Engine::join_all() {
  for (auto& p : processes_) {
    if (p->thread.joinable()) p->thread.join();
  }
}

}  // namespace mv2gnc::sim
