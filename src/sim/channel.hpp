// Unbounded FIFO message channel between simulated processes.
#pragma once

#include <deque>
#include <string>
#include <utility>
#include <vector>

#include "sim/engine.hpp"

namespace mv2gnc::sim {

/// A typed mailbox. send() never blocks; recv() blocks the calling process
/// until a message is available. Any number of senders and receivers may
/// use the channel; same-time wake-ups preserve FIFO order because the
/// engine's ready queue is FIFO.
template <typename T>
class Channel {
 public:
  explicit Channel(Engine& engine, std::string name = "channel")
      : engine_(engine), name_(std::move(name)) {}
  Channel(const Channel&) = delete;
  Channel& operator=(const Channel&) = delete;

  /// Deposit a message (usable from process or scheduler-action context).
  void send(T value) {
    std::lock_guard<std::mutex> lock(engine_.mu_);
    items_.push_back(std::move(value));
    for (detail::Process* p : waiters_) engine_.make_ready_locked(p);
    waiters_.clear();
  }

  /// Block until a message is available, then return it.
  T recv() {
    std::unique_lock<std::mutex> lock(engine_.mu_);
    while (items_.empty()) {
      detail::Process* self = engine_.current_locked();
      waiters_.push_back(self);
      engine_.block_current_locked(lock, "Channel(" + name_ + ")::recv");
    }
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  /// Non-blocking receive; returns false if the channel is empty.
  bool try_recv(T& out) {
    std::lock_guard<std::mutex> lock(engine_.mu_);
    if (items_.empty()) return false;
    out = std::move(items_.front());
    items_.pop_front();
    return true;
  }

  /// Number of queued messages.
  std::size_t size() const {
    std::lock_guard<std::mutex> lock(engine_.mu_);
    return items_.size();
  }

  /// True if no messages are queued.
  bool empty() const { return size() == 0; }

 private:
  Engine& engine_;
  std::string name_;
  std::deque<T> items_;
  std::vector<detail::Process*> waiters_;
};

}  // namespace mv2gnc::sim
