#include "sim/resource.hpp"

#include <algorithm>
#include <utility>

#include "sim/engine.hpp"

namespace mv2gnc::sim {

FifoResource::FifoResource(Engine& engine, std::string name)
    : engine_(engine), name_(std::move(name)) {}

SimTime FifoResource::submit(SimTime duration, SmallFn on_complete) {
  return submit_after(0, duration, std::move(on_complete));
}

SimTime FifoResource::submit_after(SimTime earliest_start, SimTime duration,
                                   SmallFn on_complete) {
  if (duration < 0) duration = 0;
  const SimTime start =
      std::max({engine_.now(), busy_until_, earliest_start});
  const SimTime done = start + duration;
  busy_until_ = done;
  total_busy_ += duration;
  ++ops_;
  if (on_complete) {
    engine_.schedule_at(done, std::move(on_complete));
  }
  return done;
}

}  // namespace mv2gnc::sim
