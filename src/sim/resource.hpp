// Serial FIFO server: the building block for DMA engines and NIC ports.
#pragma once

#include <cstdint>
#include <string>

#include "sim/small_fn.hpp"
#include "sim/time.hpp"

namespace mv2gnc::sim {

class Engine;

/// Models a device that services operations one at a time in submission
/// order (a GPU copy engine, a NIC transmit pipeline, a PCIe DMA channel).
///
/// submit() charges `duration` of service time starting when the previous
/// operation drains, and runs `on_complete` at the completion instant (in
/// scheduler context, engine lock not held). The caller gets the absolute
/// completion time back, so it can e.g. trigger an EventFlag from
/// on_complete and wait on it.
///
/// Thread-safety: relies on the engine's one-runnable-at-a-time invariant;
/// do not touch a FifoResource from outside the simulation.
class FifoResource {
 public:
  FifoResource(Engine& engine, std::string name);

  /// Enqueue an operation. Returns its absolute completion time.
  SimTime submit(SimTime duration, SmallFn on_complete = {});

  /// Enqueue an operation that may not start before `earliest_start`
  /// (used to express cross-resource ordering, e.g. CUDA stream order when
  /// consecutive stream operations land on different engines).
  SimTime submit_after(SimTime earliest_start, SimTime duration,
                       SmallFn on_complete = {});

  /// Time at which the queue drains (>= now when busy).
  SimTime busy_until() const { return busy_until_; }

  /// Accumulated service time across all submitted operations.
  SimTime total_busy_time() const { return total_busy_; }

  /// Number of operations submitted.
  std::uint64_t operations() const { return ops_; }

  const std::string& name() const { return name_; }

 private:
  Engine& engine_;
  std::string name_;
  SimTime busy_until_ = 0;
  SimTime total_busy_ = 0;
  std::uint64_t ops_ = 0;
};

}  // namespace mv2gnc::sim
