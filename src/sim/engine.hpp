// Deterministic discrete-event engine with cooperative processes.
//
// A simulated process is an OS thread that runs *exclusively*: the engine
// hands a single run token to exactly one process at a time, and a process
// gives the token back whenever it blocks on virtual time (delay) or on a
// condition (EventFlag / Notifier / Channel). Between process slices the
// engine pops the earliest pending event and advances the virtual clock.
//
// Scheduling is dispatch-inline: there is no separate scheduler thread.
// Whichever thread gives the token back (a blocking process, a finishing
// process, or run() itself at the start) runs the dispatch loop in place —
// executing due events and handing the token straight to the next ready
// process. That halves the OS context switches per process slice compared
// to bouncing through a dedicated scheduler thread, which is what makes
// many-hundred-rank clusters tractable on the virtual clock (see
// docs/SIMULATION.md). The dispatch order (ready FIFO first, then the
// earliest event, seq-ordered within a timestamp) is exactly the order the
// former scheduler-thread loop used, so virtual timings are unchanged.
//
// The payoff is that code written against the simulated CUDA/MPI APIs looks
// like ordinary blocking code, while the whole run is bit-deterministic:
// same inputs => same event order => same virtual timings.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include <unordered_set>

#include "sim/rng.hpp"
#include "sim/small_fn.hpp"
#include "sim/time.hpp"

namespace mv2gnc::sim {

class Engine;

/// Handle for a cancellable timer (see Engine::schedule_timer). 0 is never a
/// valid id, so value-initialized handles are safely inert.
using TimerId = std::uint64_t;

/// Thrown by Engine::run() when every live process is blocked and no event
/// can ever wake one of them. The message lists each stuck process and the
/// reason string it supplied when it blocked.
class DeadlockError : public std::runtime_error {
 public:
  explicit DeadlockError(const std::string& what) : std::runtime_error(what) {}
};

/// Thrown inside process threads when the engine is tearing down early
/// (e.g. after a deadlock or a sibling process threw). User code should not
/// catch it; the process trampoline swallows it after unwinding.
class ProcessAborted {};

namespace detail {

enum class ProcState { kReady, kRunning, kBlocked, kFinished };

struct Process {
  std::string name;
  ProcState state = ProcState::kReady;
  bool resume_token = false;
  std::string wait_reason;
  std::condition_variable cv;
  std::thread thread;
  std::function<void()> body;
};

struct ScheduledEvent {
  SimTime at;
  std::uint64_t seq;  // FIFO tie-break for same-time events
  SmallFn action;     // inline storage: no heap allocation per event
  TimerId timer_id = 0;  // nonzero only for cancellable timers
};

struct EventOrder {
  bool operator()(const ScheduledEvent& a, const ScheduledEvent& b) const {
    if (a.at != b.at) return a.at > b.at;
    return a.seq > b.seq;
  }
};

}  // namespace detail

/// A one-shot (resettable) condition a process can wait on.
///
/// trigger() may run from another process slice or from a scheduled event;
/// every waiter becomes runnable at the current virtual time. Once set,
/// wait() returns immediately until reset() is called.
class EventFlag {
 public:
  explicit EventFlag(Engine& engine) : engine_(engine) {}
  EventFlag(const EventFlag&) = delete;
  EventFlag& operator=(const EventFlag&) = delete;

  /// True once trigger() has been called (and reset() has not).
  bool is_set() const;
  /// Set the flag and make all current waiters runnable.
  void trigger();
  /// Clear the flag so future wait() calls block again.
  void reset();
  /// Block the calling process until the flag is set.
  void wait(const std::string& reason = "EventFlag::wait");

 private:
  friend class Engine;
  Engine& engine_;
  bool set_ = false;
  std::vector<detail::Process*> waiters_;
};

/// A counting wake-up: notify() deposits a token, wait() consumes all
/// pending tokens or blocks until one arrives. This is the "progress engine
/// has new work" primitive: MPI ranks block on their Notifier while idle and
/// the fabric/DMA completion events notify it.
class Notifier {
 public:
  explicit Notifier(Engine& engine) : engine_(engine) {}
  Notifier(const Notifier&) = delete;
  Notifier& operator=(const Notifier&) = delete;

  /// Deposit a token and wake the waiter (if any).
  void notify();
  /// Consume all pending tokens, blocking until at least one exists.
  void wait(const std::string& reason = "Notifier::wait");
  /// Consume pending tokens without blocking; returns false if none.
  bool try_consume();

 private:
  friend class Engine;
  Engine& engine_;
  std::uint64_t pending_ = 0;
  detail::Process* waiter_ = nullptr;
};

/// The engine: virtual clock + event queue + cooperative scheduler.
class Engine {
 public:
  Engine();
  ~Engine();
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Current virtual time. Callable from anywhere.
  SimTime now() const;

  /// Create a process. Its body starts running once run() is called (or at
  /// the next scheduling point if spawned from a running process).
  void spawn(std::string name, std::function<void()> body);

  /// Run until all processes finish. Throws DeadlockError if the system
  /// wedges, or rethrows the first exception escaping a process body.
  void run();

  /// Schedule `action` at absolute virtual time `at` (must be >= now()).
  /// Actions run in scheduler context (no process holds the run token while
  /// one executes); they must be short and must not block.
  void schedule_at(SimTime at, SmallFn action);

  /// Schedule `action` after a relative delay.
  void schedule_after(SimTime delay, SmallFn action);

  /// Schedule a cancellable action at absolute virtual time `at`; returns a
  /// handle for cancel_timer(). Like schedule_at, the action runs in
  /// scheduler context and must be short and non-blocking — retransmission
  /// timers only notify() a progress loop, they never retransmit in place.
  TimerId schedule_timer(SimTime at, SmallFn action);

  /// Cancel a timer created by schedule_timer. Returns true if the timer was
  /// still pending (and will now never fire). A canceled timer is skipped
  /// without advancing the virtual clock, so canceled-but-unpopped timers do
  /// not inflate the run's elapsed time.
  bool cancel_timer(TimerId id);

  /// Seed the engine-owned deterministic RNG (fault injection, jitter).
  void seed_rng(std::uint64_t seed);

  /// Next raw 64-bit draw from the engine RNG.
  std::uint64_t rand_u64();

  /// Uniform double in [0, 1) from the engine RNG.
  double rand_uniform();

  /// Uniform integer in [0, bound) from the engine RNG (bound > 0).
  std::uint64_t rand_below(std::uint64_t bound);

  /// Block the calling process for `d` virtual nanoseconds.
  void delay(SimTime d);

  /// Name of the currently running process ("" if called off-process).
  std::string current_process_name() const;

  /// Total number of events executed so far (diagnostic).
  std::uint64_t events_executed() const { return events_executed_; }

  /// Wall-clock seconds spent inside run() so far (real time — the only
  /// place the simulator looks at a wall clock; diagnostics only).
  double run_wall_seconds() const { return wall_seconds_; }

  /// Engine throughput: events executed per wall-clock second inside
  /// run(). 0 before the first run() returns.
  double events_per_wall_second() const {
    return wall_seconds_ > 0.0
               ? static_cast<double>(events_executed_) / wall_seconds_
               : 0.0;
  }

  /// Wall-clock seconds burned per simulated (virtual) second — the
  /// scale-out cost metric bench_scaleout tracks. 0 until the clock moves.
  double wall_per_virtual_second() const {
    const double virt = to_sec(now());
    return virt > 0.0 ? wall_seconds_ / virt : 0.0;
  }

 private:
  friend class EventFlag;
  friend class Notifier;
  template <typename T>
  friend class Channel;

  detail::Process* current_locked() const;
  void make_ready_locked(detail::Process* p);
  // Blocks the calling process; `reason` shows up in deadlock reports.
  void block_current_locked(std::unique_lock<std::mutex>& lock,
                            const std::string& reason);
  // The dispatch loop: run due events and hand the token to the next ready
  // process, or declare the simulation stopped (quiescent). Called by
  // whichever thread just released the token; `self` is the calling
  // process (nullptr from run() or a finished process) so a self-handoff
  // can skip the condition-variable round trip.
  void dispatch_locked(std::unique_lock<std::mutex>& lock,
                       detail::Process* self);
  void trampoline(detail::Process* p);
  void abort_all_locked(std::unique_lock<std::mutex>& lock);
  void join_all();

  mutable std::mutex mu_;
  std::condition_variable main_cv_;  // run()/abort wait here for progress
  std::vector<std::unique_ptr<detail::Process>> processes_;
  std::deque<detail::Process*> ready_;
  std::priority_queue<detail::ScheduledEvent, std::vector<detail::ScheduledEvent>,
                      detail::EventOrder>
      queue_;
  detail::Process* running_ = nullptr;
  // Written only in dispatch (under mu_); read lock-free by now() from the
  // token-holding process, so ordinary loads suffice.
  std::atomic<SimTime> now_{0};
  std::uint64_t seq_ = 0;
  TimerId next_timer_id_ = 1;
  std::unordered_set<TimerId> pending_timers_;
  SplitMix64 rng_;
  std::uint64_t events_executed_ = 0;
  double wall_seconds_ = 0.0;
  bool aborting_ = false;
  bool in_run_ = false;
  bool sim_stopped_ = false;  // dispatch found nothing left to run
  std::exception_ptr first_error_;
};

}  // namespace mv2gnc::sim
