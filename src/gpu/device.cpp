#include "gpu/device.hpp"

#include <string>

namespace mv2gnc::gpu {

Device::Device(sim::Engine& engine, MemoryRegistry& registry, int id,
               GpuCostModel cost, std::size_t mem_capacity)
    : engine_(engine),
      registry_(registry),
      id_(id),
      cost_(cost),
      capacity_(mem_capacity),
      d2h_engine_(engine, "gpu" + std::to_string(id) + ".d2h"),
      h2d_engine_(engine, "gpu" + std::to_string(id) + ".h2d"),
      d2d_engine_(engine, "gpu" + std::to_string(id) + ".d2d"),
      kernel_engine_(engine, "gpu" + std::to_string(id) + ".kernel") {}

Device::~Device() {
  // Unregister any leaked allocations so the registry stays consistent
  // across sequentially constructed clusters in one OS process.
  for (const auto& [ptr, buf] : allocations_) {
    registry_.unregister_range(ptr);
  }
}

void* Device::allocate(std::size_t bytes) {
  if (bytes == 0) bytes = 1;  // CUDA returns a unique pointer for 0 bytes
  if (bytes_allocated_ + bytes > capacity_) {
    throw DeviceError("device " + std::to_string(id_) +
                      " out of memory: requested " + std::to_string(bytes) +
                      " bytes, " + std::to_string(capacity_ - bytes_allocated_) +
                      " free of " + std::to_string(capacity_));
  }
  // for_overwrite: device memory contents are indeterminate after
  // cudaMalloc (and zero-filling multi-GB benchmarks would dominate
  // wall-clock time).
  auto buf = std::make_unique_for_overwrite<std::byte[]>(bytes);
  void* ptr = buf.get();
  registry_.register_range(ptr, bytes, id_);
  allocations_.emplace(ptr, std::move(buf));
  allocation_sizes_.emplace(ptr, bytes);
  bytes_allocated_ += bytes;
  return ptr;
}

void Device::deallocate(void* ptr) {
  if (ptr == nullptr) return;  // cudaFree(nullptr) is a no-op
  auto it = allocations_.find(ptr);
  if (it == allocations_.end()) {
    throw DeviceError("cudaFree of pointer not allocated on device " +
                      std::to_string(id_));
  }
  registry_.unregister_range(ptr);
  bytes_allocated_ -= allocation_sizes_.at(ptr);
  allocation_sizes_.erase(ptr);
  allocations_.erase(it);
}

}  // namespace mv2gnc::gpu
