#include "gpu/cost_model.hpp"

#include <algorithm>

namespace mv2gnc::gpu {

namespace {

double bandwidth_for(const GpuCostModel& m, CopyDir dir, bool pinned_host) {
  switch (dir) {
    case CopyDir::kHostToDevice:
      return pinned_host ? m.h2d_bw : m.h2d_pageable_bw;
    case CopyDir::kDeviceToHost:
      return pinned_host ? m.d2h_bw : m.d2h_pageable_bw;
    case CopyDir::kDeviceToDevice: return m.d2d_bw;
    case CopyDir::kHostToHost: return 8.0;  // plain host memcpy
  }
  return 1.0;
}

}  // namespace

sim::SimTime GpuCostModel::transfer_time(std::size_t bytes, CopyDir dir,
                                         bool pinned_host) const {
  return static_cast<sim::SimTime>(
      static_cast<double>(bytes) / bandwidth_for(*this, dir, pinned_host));
}

sim::SimTime GpuCostModel::copy_time(std::size_t bytes, CopyDir dir,
                                     bool pinned_host) const {
  return copy_launch_ns + transfer_time(bytes, dir, pinned_host);
}

sim::SimTime GpuCostModel::copy2d_time(std::size_t width, std::size_t height,
                                       CopyDir dir, Layout2D layout,
                                       bool rows_contiguous,
                                       bool pinned_host) const {
  const std::size_t bytes = width * height;
  if (rows_contiguous || height <= 1) {
    // Degenerate: one contiguous block; 2-D machinery adds nothing.
    return copy_time(bytes, dir, pinned_host);
  }
  const auto h = static_cast<std::int64_t>(height);
  double row_cost_ns = 0.0;
  sim::SimTime setup = copy_launch_ns;
  if (dir == CopyDir::kDeviceToDevice) {
    const std::int64_t first = std::min(h, d2d_row_knee);
    const std::int64_t steady = h - first;
    row_cost_ns = static_cast<double>(first) * d2d_row_first_ns +
                  static_cast<double>(steady) * d2d_row_steady_ns;
    setup += d2d_2d_setup_ns;
  } else {
    // PCIe-crossing strided copy: every row is its own DMA transaction.
    const double per_row =
        (layout == Layout2D::kSameLayout) ? pcie_row_same_ns
                                          : pcie_row_pack_ns;
    row_cost_ns = static_cast<double>(h) * per_row;
  }
  return setup + static_cast<sim::SimTime>(row_cost_ns) +
         transfer_time(bytes, dir, pinned_host);
}

sim::SimTime GpuCostModel::kernel_time(std::uint64_t points,
                                       bool double_precision) const {
  const double per_point =
      double_precision ? kernel_point_ns_dp : kernel_point_ns_sp;
  return kernel_launch_ns +
         static_cast<sim::SimTime>(static_cast<double>(points) * per_point);
}

sim::SimTime GpuCostModel::reduce_time(std::size_t bytes) const {
  return kernel_launch_ns +
         static_cast<sim::SimTime>(static_cast<double>(bytes) / reduce_bw);
}

GpuCostModel GpuCostModel::tesla_c2050() {
  // Calibration targets (paper values in parentheses):
  //  * §I-A, 4 KB vector / 4 B rows: nc2nc ~200 us (200), nc2c ~281 us
  //    (281), device pack + D2H ~35-40 us (35).
  //  * Fig. 2(b), 4 MB vector: D2D2H ~= 4.8% of D2H-nc2nc.
  //  * Contiguous PCIe ~5.5 GB/s, D2D ~80 GB/s, QDR-era launch ~4 us.
  return GpuCostModel{};
}

}  // namespace mv2gnc::gpu
