// Pointer-domain registry: the simulation's stand-in for CUDA 4.0 UVA.
//
// MVAPICH2's GPU path hinges on being able to ask "is this buffer in device
// memory, and on which device?" (cuPointerGetAttribute under UVA). Every
// simulated device allocation registers its range here; anything unknown is
// host memory.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>

namespace mv2gnc::gpu {

/// Attributes of a registered device allocation.
struct PointerInfo {
  int device_id = -1;
  const void* base = nullptr;
  std::size_t size = 0;
};

/// Range map from raw pointers to owning device. One registry per cluster.
class MemoryRegistry {
 public:
  /// Register [ptr, ptr+size) as belonging to `device_id`.
  /// Throws std::invalid_argument on overlap with an existing range.
  void register_range(const void* ptr, std::size_t size, int device_id);

  /// Remove a previously registered range (must match a base pointer).
  /// Throws std::invalid_argument if `ptr` is not a registered base.
  void unregister_range(const void* ptr);

  /// Classify a pointer. Returns nullopt for host memory. A pointer
  /// strictly inside a registered range classifies to that range.
  std::optional<PointerInfo> query(const void* ptr) const;

  /// Convenience: true iff `ptr` lies in some device allocation.
  bool is_device_pointer(const void* ptr) const { return query(ptr).has_value(); }

  /// Handle export (the CUDA-IPC analogue): the registered range containing
  /// `ptr`. Unlike query(), an unknown pointer is an error — host memory
  /// has no exportable handle.
  /// Throws std::invalid_argument when `ptr` is not device memory.
  PointerInfo ipc_export(const void* ptr) const;

  /// Number of live registered ranges.
  std::size_t live_ranges() const { return ranges_.size(); }

  // -- pinned (page-locked) host memory -----------------------------------
  // cudaMallocHost / ibv_reg_mr equivalents: DMA engines reach pinned host
  // memory at full PCIe bandwidth, while pageable memory pays the driver's
  // internal staging penalty.

  /// Mark [ptr, ptr+size) as pinned host memory.
  void register_pinned_host(const void* ptr, std::size_t size);
  /// Remove a pinned registration (must match a base pointer).
  void unregister_pinned_host(const void* ptr);
  /// True iff `ptr` lies inside a pinned host range.
  bool is_pinned_host(const void* ptr) const;

 private:
  // Keyed by base address; lookup uses upper_bound - 1.
  std::map<std::uintptr_t, PointerInfo> ranges_;
  std::map<std::uintptr_t, std::size_t> pinned_;
};

}  // namespace mv2gnc::gpu
