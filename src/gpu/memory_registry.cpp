#include "gpu/memory_registry.hpp"

#include <stdexcept>

namespace mv2gnc::gpu {

void MemoryRegistry::register_range(const void* ptr, std::size_t size,
                                    int device_id) {
  if (ptr == nullptr || size == 0) {
    throw std::invalid_argument("register_range: null or empty range");
  }
  const auto base = reinterpret_cast<std::uintptr_t>(ptr);
  // Check the neighbour below and above for overlap.
  auto next = ranges_.lower_bound(base);
  if (next != ranges_.end() && next->first < base + size) {
    throw std::invalid_argument("register_range: overlaps existing range");
  }
  if (next != ranges_.begin()) {
    auto prev = std::prev(next);
    if (prev->first + prev->second.size > base) {
      throw std::invalid_argument("register_range: overlaps existing range");
    }
  }
  ranges_.emplace(base, PointerInfo{device_id, ptr, size});
}

void MemoryRegistry::unregister_range(const void* ptr) {
  const auto base = reinterpret_cast<std::uintptr_t>(ptr);
  auto it = ranges_.find(base);
  if (it == ranges_.end()) {
    throw std::invalid_argument("unregister_range: not a registered base");
  }
  ranges_.erase(it);
}

void MemoryRegistry::register_pinned_host(const void* ptr, std::size_t size) {
  if (ptr == nullptr || size == 0) {
    throw std::invalid_argument("register_pinned_host: null or empty range");
  }
  pinned_.emplace(reinterpret_cast<std::uintptr_t>(ptr), size);
}

void MemoryRegistry::unregister_pinned_host(const void* ptr) {
  auto it = pinned_.find(reinterpret_cast<std::uintptr_t>(ptr));
  if (it == pinned_.end()) {
    throw std::invalid_argument(
        "unregister_pinned_host: not a registered base");
  }
  pinned_.erase(it);
}

bool MemoryRegistry::is_pinned_host(const void* ptr) const {
  if (ptr == nullptr || pinned_.empty()) return false;
  const auto addr = reinterpret_cast<std::uintptr_t>(ptr);
  auto it = pinned_.upper_bound(addr);
  if (it == pinned_.begin()) return false;
  --it;
  return addr < it->first + it->second;
}

std::optional<PointerInfo> MemoryRegistry::query(const void* ptr) const {
  if (ptr == nullptr || ranges_.empty()) return std::nullopt;
  const auto addr = reinterpret_cast<std::uintptr_t>(ptr);
  auto it = ranges_.upper_bound(addr);
  if (it == ranges_.begin()) return std::nullopt;
  --it;
  if (addr < it->first + it->second.size) return it->second;
  return std::nullopt;
}

PointerInfo MemoryRegistry::ipc_export(const void* ptr) const {
  const auto info = query(ptr);
  if (!info) {
    throw std::invalid_argument(
        "MemoryRegistry::ipc_export: pointer is not in a registered device "
        "allocation");
  }
  return *info;
}

}  // namespace mv2gnc::gpu
