// Calibrated latency model for GPU memory operations.
//
// Every constant below is tied to a measurement the paper reports for an
// NVIDIA Tesla C2050 (Fermi) on PCIe 2.0 x16; see the tesla_c2050() factory
// for the calibration notes. The model is intentionally simple —
//   copy = launch + rows * per_row + bytes / bandwidth
// with a two-regime per-row cost for device-internal 2-D copies (the DMA
// engine amortizes descriptor processing once a copy is long enough, which
// is what makes the paper's Figure 2 strongly sub-linear for D2D2H).
#pragma once

#include <cstddef>
#include <cstdint>

#include "sim/time.hpp"

namespace mv2gnc::gpu {

/// Direction of a memory copy relative to the device.
enum class CopyDir { kHostToDevice, kDeviceToHost, kDeviceToDevice,
                     kHostToHost };

/// Layout relationship of a 2-D (strided) copy.
enum class Layout2D {
  kSameLayout,   // src and dst both strided (nc -> nc), Fig. 1(a)
  kPack,         // strided src -> contiguous dst (nc -> c), Fig. 1(b)/(c)
  kUnpack,       // contiguous src -> strided dst (c -> nc)
};

/// All tunable constants of the GPU timing model.
struct GpuCostModel {
  // Effective contiguous bandwidths, in bytes per nanosecond (== GB/s).
  double d2h_bw = 5.5;   // pinned D2H over PCIe 2.0 x16
  double h2d_bw = 5.7;   // pinned H2D over PCIe 2.0 x16
  double d2d_bw = 80.0;  // device-internal copy (C2050 DRAM ~144 GB/s peak)

  // GPU-to-GPU copy between two devices behind the same PCIe root complex
  // (cudaMemcpyPeer / CUDA-IPC): bounded by one PCIe 2.0 traversal, not by
  // device DRAM. Consumed by the intra-node IPC transport's cost model.
  double peer_d2d_bw = 6.0;

  // Host<->host copies between *co-located processes* (the intra-node IPC
  // transport's host leg). Small transfers bounce through a double-buffered
  // shared-memory segment — two memcpys, so roughly half the single-stream
  // copy rate — while transfers at or above shm_cma_threshold use a
  // single-copy cross-memory attach (CMA: process_vm_readv / KNEM) that
  // runs at one DRAM stream. Westmere-era measurements put the pair near
  // 4.8 / 11 GB/s with the switch-over at the usual 64 KB pipeline block.
  double shm_host_bw = 4.8;
  double cma_host_bw = 11.0;
  std::size_t shm_cma_threshold = 64 * 1024;

  // PCIe copies touching *pageable* host memory go through the driver's
  // internal staging buffers at roughly half bandwidth (measured behaviour
  // of CUDA 4.0-era cudaMemcpy on non-page-locked memory).
  double d2h_pageable_bw = 2.8;
  double h2d_pageable_bw = 3.0;

  // Fixed per-API-call cost charged to the copy operation itself.
  sim::SimTime copy_launch_ns = 4'000;  // sync/async copy kickoff ~4 us

  // CPU-side cost of queueing an asynchronous operation (charged to the
  // calling process; the operation itself runs on a copy engine).
  sim::SimTime async_submit_ns = 600;

  // Per-row descriptor cost for 2-D copies crossing PCIe. Calibrated so a
  // 4 KB vector of 4-byte rows (1024 rows) costs ~200 us same-layout and
  // ~281 us packing (paper §I-A options (a)/(b)).
  double pcie_row_same_ns = 190.0;
  double pcie_row_pack_ns = 268.0;

  // Per-row cost for device-internal 2-D copies, two-regime: the first
  // `d2d_row_knee` rows cost `d2d_row_first_ns`, the rest cost
  // `d2d_row_steady_ns`. Calibrated against §I-A option (c) (35 us at
  // 1024 rows) and Fig. 2(b) (D2D2H ~= 4.8% of nc2nc at 4 MB / 1M rows).
  double d2d_row_first_ns = 24.0;
  double d2d_row_steady_ns = 11.0;
  std::int64_t d2d_row_knee = 4096;
  sim::SimTime d2d_2d_setup_ns = 7'000;  // fixed setup of a device 2-D copy

  // Kernel launch + per-point compute cost for the modeled stencil kernel.
  // Calibrated so the Stencil2D 2x4/8Kx8K improvement of Tables II/III
  // lands near the paper's 27%/26% given the measured halo costs.
  sim::SimTime kernel_launch_ns = 7'000;
  double kernel_point_ns_sp = 0.29;  // single precision, 9-pt stencil
  double kernel_point_ns_dp = 0.33;  // double precision

  // Effective bandwidth of an elementwise reduction kernel (acc op= in):
  // two streamed reads plus one write against C2050 DRAM (~144 GB/s peak,
  // ~55% achievable on Fermi for a bandwidth-bound kernel), counted per
  // *input* byte. Consumed by the device-buffer collectives' fold stage.
  double reduce_bw = 26.0;

  /// Duration of a contiguous 1-D copy of `bytes` in direction `dir`
  /// (excludes launch cost; see copy_time()). `pinned_host` selects the
  /// page-locked vs pageable PCIe bandwidth (ignored for D2D).
  sim::SimTime transfer_time(std::size_t bytes, CopyDir dir,
                             bool pinned_host = true) const;

  /// Full modeled duration of a 1-D copy, launch included.
  sim::SimTime copy_time(std::size_t bytes, CopyDir dir,
                         bool pinned_host = true) const;

  /// Full modeled duration of a 2-D copy of `height` rows x `width` bytes.
  /// `layout` distinguishes same-layout/pack/unpack; a 2-D copy whose rows
  /// are contiguous on both sides (pitch == width) degrades to a 1-D copy.
  sim::SimTime copy2d_time(std::size_t width, std::size_t height,
                           CopyDir dir, Layout2D layout,
                           bool rows_contiguous,
                           bool pinned_host = true) const;

  /// Modeled duration of a kernel over `points` grid points.
  sim::SimTime kernel_time(std::uint64_t points, bool double_precision) const;

  /// Modeled duration of an elementwise device reduction folding `bytes`
  /// of input into an accumulator (launch included).
  sim::SimTime reduce_time(std::size_t bytes) const;

  /// Calibration for the paper's testbed (Tesla C2050, PCIe 2.0 x16).
  static GpuCostModel tesla_c2050();
};

}  // namespace mv2gnc::gpu
