// Simulated GPU device: memory heap + DMA copy engines + kernel engine.
//
// Device memory is backed by real host allocations so simulated copies move
// real bytes (correctness is byte-testable); the engines are FIFO servers
// on the virtual clock so timing follows the calibrated cost model.
//
// Engine topology mirrors Fermi-class hardware as the paper's pipeline
// requires: one PCIe copy engine per direction (C2050 has two copy
// engines), a device-internal copy path, and a compute engine. This is
// exactly the concurrency the paper's 5-stage pipeline exploits — a D2D
// pack can run while the previous chunk crosses PCIe.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <unordered_map>

#include "gpu/cost_model.hpp"
#include "gpu/memory_registry.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace mv2gnc::gpu {

/// Thrown on allocation failures and invalid frees.
class DeviceError : public std::runtime_error {
 public:
  explicit DeviceError(const std::string& what) : std::runtime_error(what) {}
};

class Device {
 public:
  /// `mem_capacity` models the device DRAM limit (the paper's C2050 has
  /// 3 GB and the authors explicitly hit this bound in §V-B3).
  Device(sim::Engine& engine, MemoryRegistry& registry, int id,
         GpuCostModel cost, std::size_t mem_capacity);
  ~Device();
  Device(const Device&) = delete;
  Device& operator=(const Device&) = delete;

  /// Allocate device memory (cudaMalloc). Throws DeviceError when the
  /// modeled DRAM capacity would be exceeded.
  void* allocate(std::size_t bytes);

  /// Free device memory (cudaFree). Throws DeviceError on unknown pointer.
  void deallocate(void* ptr);

  int id() const { return id_; }
  const GpuCostModel& cost() const { return cost_; }
  sim::Engine& engine() { return engine_; }
  MemoryRegistry& registry() { return registry_; }

  std::size_t bytes_allocated() const { return bytes_allocated_; }
  std::size_t capacity() const { return capacity_; }
  std::size_t live_allocations() const { return allocations_.size(); }

  /// DMA engine moving data device -> host (one of the two copy engines).
  sim::FifoResource& d2h_engine() { return d2h_engine_; }
  /// DMA engine moving data host -> device.
  sim::FifoResource& h2d_engine() { return h2d_engine_; }
  /// Device-internal copy path (used by the pack/unpack offload).
  sim::FifoResource& d2d_engine() { return d2d_engine_; }
  /// Compute (kernel) engine.
  sim::FifoResource& kernel_engine() { return kernel_engine_; }

 private:
  sim::Engine& engine_;
  MemoryRegistry& registry_;
  int id_;
  GpuCostModel cost_;
  std::size_t capacity_;
  std::size_t bytes_allocated_ = 0;
  std::unordered_map<void*, std::unique_ptr<std::byte[]>> allocations_;
  std::unordered_map<void*, std::size_t> allocation_sizes_;
  sim::FifoResource d2h_engine_;
  sim::FifoResource h2d_engine_;
  sim::FifoResource d2d_engine_;
  sim::FifoResource kernel_engine_;
};

}  // namespace mv2gnc::gpu
