#include "core/vbuf_pool.hpp"

#include <algorithm>
#include <stdexcept>

namespace mv2gnc::core {

VbufPool::VbufPool(std::size_t count, std::size_t bytes_each)
    : capacity_(count), bytes_each_(bytes_each) {
  if (count == 0 || bytes_each == 0) {
    throw std::invalid_argument("VbufPool: zero count or buffer size");
  }
  arena_ = std::make_unique_for_overwrite<std::byte[]>(count * bytes_each);
  free_.reserve(count);
  taken_.assign(count, false);
  // Hand out in address order (LIFO over this vector keeps reuse warm).
  for (std::size_t i = count; i-- > 0;) {
    free_.push_back(arena_.get() + i * bytes_each);
  }
}

std::byte* VbufPool::try_acquire() {
  if (free_.empty()) return nullptr;
  std::byte* buf = free_.back();
  free_.pop_back();
  taken_[static_cast<std::size_t>(buf - arena_.get()) / bytes_each_] = true;
  high_water_ = std::max(high_water_, in_use());
  return buf;
}

void VbufPool::release(std::byte* buf) {
  if (buf == nullptr) throw std::invalid_argument("VbufPool: null release");
  const auto delta = buf - arena_.get();
  if (delta < 0 ||
      static_cast<std::size_t>(delta) >= capacity_ * bytes_each_ ||
      static_cast<std::size_t>(delta) % bytes_each_ != 0) {
    throw std::invalid_argument("VbufPool: foreign pointer released");
  }
  const std::size_t idx = static_cast<std::size_t>(delta) / bytes_each_;
  if (!taken_[idx]) {
    throw std::invalid_argument("VbufPool: double release");
  }
  taken_[idx] = false;
  free_.push_back(buf);
}

std::string VbufPool::audit() const {
  std::size_t taken_count = 0;
  for (bool t : taken_) taken_count += t ? 1 : 0;
  if (taken_count + free_.size() != capacity_) {
    return "free list (" + std::to_string(free_.size()) +
           ") + taken bitmap (" + std::to_string(taken_count) +
           ") do not partition capacity " + std::to_string(capacity_);
  }
  std::vector<bool> on_free_list(capacity_, false);
  for (std::byte* buf : free_) {
    const auto delta = buf - arena_.get();
    if (delta < 0 ||
        static_cast<std::size_t>(delta) >= capacity_ * bytes_each_ ||
        static_cast<std::size_t>(delta) % bytes_each_ != 0) {
      return "foreign pointer on the free list";
    }
    const std::size_t idx = static_cast<std::size_t>(delta) / bytes_each_;
    if (on_free_list[idx]) {
      return "buffer " + std::to_string(idx) + " on the free list twice";
    }
    if (taken_[idx]) {
      return "buffer " + std::to_string(idx) +
             " both free-listed and marked taken";
    }
    on_free_list[idx] = true;
  }
  return {};
}

}  // namespace mv2gnc::core
