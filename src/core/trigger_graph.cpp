#include "core/trigger_graph.hpp"

namespace mv2gnc::core {

int TriggerGraph::add_chain(ChainKind kind, Gate enabled) {
  Chain c;
  c.kind = kind;
  c.enabled = std::move(enabled);
  chains_.push_back(std::move(c));
  return static_cast<int>(chains_.size()) - 1;
}

void TriggerGraph::add_node(int chain, Gate gate, Action action) {
  chains_[static_cast<std::size_t>(chain)].nodes.push_back(
      Node{std::move(gate), std::move(action), false});
}

void TriggerGraph::set_epilogue(int chain, Action epilogue) {
  chains_[static_cast<std::size_t>(chain)].epilogue = std::move(epilogue);
}

void TriggerGraph::fire() {
  for (auto& chain : chains_) {
    if (chain.enabled && !chain.enabled()) continue;
    if (chain.kind == ChainKind::kFrontier) {
      while (chain.frontier < chain.nodes.size()) {
        Node& node = chain.nodes[chain.frontier];
        if (node.gate && !node.gate()) break;
        node.fired = true;
        ++chain.frontier;
        ++chain.fired;
        ++nodes_fired_;
        if (stats_ != nullptr) ++stats_->triggers_fired;
        if (node.action) node.action();
      }
    } else {
      for (auto& node : chain.nodes) {
        if (node.fired) continue;
        if (node.gate && !node.gate()) continue;
        node.fired = true;
        ++chain.fired;
        ++nodes_fired_;
        if (stats_ != nullptr) ++stats_->triggers_fired;
        if (node.action) node.action();
      }
    }
    if (chain.epilogue) chain.epilogue();
  }
}

bool TriggerGraph::complete() const {
  for (const auto& chain : chains_) {
    if (chain.fired < chain.nodes.size()) return false;
  }
  return true;
}

void TriggerGraph::reset() {
  nodes_fired_ = 0;
  for (auto& chain : chains_) {
    chain.frontier = 0;
    chain.fired = 0;
    for (auto& node : chain.nodes) node.fired = false;
  }
}

void TriggerGraph::clear() {
  chains_.clear();
  nodes_fired_ = 0;
}

}  // namespace mv2gnc::core
