// MsgView: everything the transfer engine needs to know about one side of
// a message — base pointer, datatype, element count, and the derived facts
// that drive protocol selection (device residency, contiguity, packed size,
// 2-D pattern).
#pragma once

#include <cstddef>
#include <memory>
#include <optional>

#include "core/pack_plan.hpp"
#include "gpu/memory_registry.hpp"
#include "mpi/datatype.hpp"

namespace mv2gnc::core {

struct MsgView {
  void* base = nullptr;
  int count = 0;
  mpisim::Datatype dtype;

  bool on_device = false;
  int device_id = -1;
  bool contiguous = false;            // dense: pack step unnecessary
  std::size_t packed_bytes = 0;       // count * dtype.size()
  std::optional<mpisim::VectorPattern> pattern;  // across all `count` elems
  std::shared_ptr<const PackPlan> plan;          // cached transfer plan

  /// Build a view; classifies `base` against `registry` and requires a
  /// committed datatype (throws std::logic_error otherwise).
  static MsgView make(void* base, int count, const mpisim::Datatype& dtype,
                      const gpu::MemoryRegistry& registry);

  /// Address of the first data byte of the packed stream's first segment.
  std::byte* first_segment_ptr() const;
};

}  // namespace mv2gnc::core
