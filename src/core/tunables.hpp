// Runtime tunables of the MV2-GPU-NC communication layer.
//
// The paper stresses that the pipeline block size is a *configurable
// parameter* detected once per cluster with micro-benchmarks and stored in
// a configuration file (§IV-B); 64 KB was optimal on their testbed. This
// struct carries that knob plus the thresholds and pool sizes of the
// protocol, and can be loaded from exactly such a config file.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>

#include "sim/time.hpp"

namespace mv2gnc::core {

/// How the pipeline chunk size is chosen per message.
enum class ChunkSelect {
  kModel,  // minimize the §IV-B latency model (n+2)·T_stage(N/n)
  kFixed,  // always use chunk_bytes (the paper's configured 64 KB)
};

/// How the GPU pack scheme (nc2c vs nc2c2c) is chosen per message.
enum class SchemeSelect {
  kModel,    // compare modeled PCIe-2D vs device-pack+contiguous-D2H cost
  kTunable,  // follow the gpu_offload flag unconditionally
};

/// How the wire path to each peer is chosen (see docs/SIMULATION.md,
/// "Node topology and transport selection").
enum class TransportSelect {
  kAuto,    // co-located ranks use the intra-node IPC channel, others fabric
  kFabric,  // force every peer over the HCA (ablation / debugging)
};

/// How collective algorithms are chosen per call (see docs/COLLECTIVES.md).
enum class CollSelect {
  kAuto,  // two-level when the topology co-locates ranks and the cost model
          // favors the intra-node leg (mirrors scheme_select = model)
  kFlat,  // force single-level algorithms (the one-process-per-node paper era)
  kHier,  // force the two-level path wherever a comm spans >1 rank on a node
};

/// How concurrent transfers of one rank share the vbuf pool and the wire
/// (see docs/CONCURRENCY.md).
enum class SchedPolicy {
  kFifo,           // first-grabber-wins vbuf acquisition (legacy behavior)
  kFair,           // round-robin turns + per-transfer vbuf reservations
  kBytesWeighted,  // like kFair, but larger transfers get overflow priority
};

/// How messages pick among the parallel shared links of a multi-path
/// fabric (mirrors netsim::RouteSelect; see docs/SIMULATION.md, "Switch
/// topology, routing and link contention"). A no-op on the crossbar,
/// which has no shared links to choose between.
enum class RouteSelect {
  kDmodK,     // static dst-indexed spine choice (byte-identical default)
  kHash,      // deterministic (src, dst, transfer) hash across paths
  kAdaptive,  // least-backlogged path at injection time, index-order ties
};

/// How collectives handle device-resident buffers (see docs/COLLECTIVES.md,
/// "Device-buffer collectives").
enum class CollDevice {
  kStaged,     // synchronous full-size D2H, host collective, full-size H2D
               // (the legacy CUDA-aware-MPI behavior; byte-identical default)
  kPipelined,  // sliced D2H / wire / reduce / H2D pipeline through the
               // staging pools; intra-node legs stay device-resident over
               // the IPC peer-copy path
  kAuto,       // cost sketch picks staged vs pipelined per call
};

/// How stream-attached sends/recvs (isend_on / irecv_on / start_on) couple
/// to the cusim stream (see docs/STREAMS.md).
enum class TriggerMode {
  kPolled,  // synchronize the stream, then post: the CPU-driven baseline
  kStream,  // enqueue trigger/wait ops on the stream; RTS fires when prior
            // stream work drains and completion gates later stream work
};

struct Tunables {
  /// Messages at or below this size use the eager protocol.
  std::size_t eager_threshold = 8 * 1024;

  /// Pipeline block size (the paper's 64 KB optimum).
  std::size_t chunk_bytes = 64 * 1024;

  /// Chunked pipelining activates for messages larger than this
  /// ("the proposed pipelining schemes get activated beyond 64 KB", §V-B3).
  std::size_t pipeline_threshold = 64 * 1024;

  /// Host staging (vbuf) pool: buffers per rank, each chunk_bytes large.
  std::size_t vbuf_count = 32;

  /// Receive-side chunk window: how many landing vbufs a CTS advertises
  /// before credits take over.
  std::size_t recv_window = 8;

  /// Ablation lever: offload datatype pack/unpack to the GPU (D2D2H
  /// nc2c2c). When false, strided data crosses PCIe with cudaMemcpy2D
  /// directly (D2H nc2c), the paper's non-offloaded alternative.
  /// Consulted when scheme_select == kTunable, and as the preference when
  /// the model considers both schemes equivalent.
  bool gpu_offload = true;

  /// Per-message pipeline chunk-size policy. kModel picks the chunk that
  /// minimizes (n+2)·T_stage(N/n) from the GPU cost model; kFixed forces
  /// chunk_bytes. The detected-per-cluster config file of §IV-B maps to
  /// kFixed with a measured chunk_bytes.
  ChunkSelect chunk_select = ChunkSelect::kModel;

  /// Per-message pack-scheme policy (see SchemeSelect).
  SchemeSelect scheme_select = SchemeSelect::kModel;

  /// Ablation lever: overlap the transfer stages. When false the message
  /// moves as a single block (n = 1 in the paper's (n+2) model).
  bool pipelining = true;

  // -- concurrency scaling (docs/CONCURRENCY.md) -------------------------
  /// How concurrent transfers share the vbuf pool. kFifo reproduces the
  /// single-transfer-era behavior exactly (the ablation baseline); kFair
  /// adds per-transfer reservations, round-robin overflow turns and
  /// adaptive pipeline depth.
  SchedPolicy sched_policy = SchedPolicy::kFifo;

  /// Fair policies: pooled vbufs held back for each active transfer so one
  /// large transfer cannot starve the pool (shrinks automatically when
  /// active transfers outnumber capacity / reserve).
  std::size_t vbuf_reserve_per_transfer = 2;

  /// Upper bound on staged-but-unacknowledged chunks per sending transfer.
  /// 0 defers to recv_window under fair policies and means "unbounded"
  /// under kFifo (legacy). Fair policies adapt the effective depth between
  /// 1 and this bound as the pool fills and drains.
  std::size_t max_inflight_chunks = 0;

  /// CHUNK_ACK/credit coalescing window: acks accumulated for this many
  /// virtual nanoseconds are batched into one control message (and flushed
  /// early by any outgoing control message to the same peer). 0 sends
  /// every ack individually (legacy).
  sim::SimTime ack_coalesce_window_ns = 0;

  /// Receiver-driven rendezvous (RGET): for host-contiguous send buffers,
  /// the RTS advertises the source address and a host-contiguous receiver
  /// RDMA-READs the data directly, skipping the CTS leg. Mirrors
  /// MVAPICH2's RPUT/RGET protocol selection. Off by default (RPUT).
  bool rget = false;

  // -- node topology / transport selection -------------------------------
  /// Processes per simulated node. Ranks r with the same r / ranks_per_node
  /// share one node (blocked placement, like mpirun -ppn). The default of 1
  /// reproduces the paper's one-process-per-node testbed exactly: no IPC
  /// channel exists and every byte crosses the HCA.
  std::size_t ranks_per_node = 1;

  /// Wire-path policy for co-located ranks. kAuto routes them over the
  /// in-node IPC channel (peer D2D copies, no HCA); kFabric forces the
  /// inter-node path everywhere, which isolates the transport's effect.
  TransportSelect transport_select = TransportSelect::kAuto;

  /// Collective-algorithm policy: flat single-level algorithms vs MVAPICH2
  /// style two-level (intra-node leg over the IPC transport, leader leg
  /// over the fabric). kAuto consults the topology and the cost hints the
  /// cluster derives from its GPU/IPC models (docs/COLLECTIVES.md).
  CollSelect coll_select = CollSelect::kAuto;

  /// Device-resident collective buffers: legacy synchronous staging vs the
  /// sliced D2H/wire/reduce/H2D pipeline (docs/COLLECTIVES.md). kStaged is
  /// the byte-identical default; kAuto consults the cost sketch per call.
  CollDevice coll_device = CollDevice::kStaged;

  /// Pipeline slice size of a device-buffer collective, in bytes. 0 picks
  /// the slice per call by minimizing the (S+2)-stage pipeline model over
  /// power-of-two candidates (mirroring chunk_select = model). Nonzero
  /// values must be multiples of 8 (the reduction element size).
  std::size_t coll_slice_bytes = 0;

  // -- congestion-adaptive routing + ECN feedback (docs/SIMULATION.md,
  //    docs/CONCURRENCY.md) ----------------------------------------------
  /// Link-selection policy on a multi-path fabric (fat tree: which spine;
  /// dragonfly: minimal vs Valiant/UGAL global route). kDmodK reproduces
  /// the static-routing behavior bit-for-bit; on a crossbar every value is
  /// an accepted no-op.
  RouteSelect route_select = RouteSelect::kDmodK;

  /// ECN-style congestion feedback: a chunk whose fabric traversal queued
  /// behind more than this much backlog on one shared link carries a
  /// congestion mark; the receiver echoes the mark on the chunk ack and
  /// the sender's scheduler halves its in-flight depth (like pool
  /// contention). 0 disables marking entirely — the byte-identical
  /// default.
  sim::SimTime ecn_backlog_ns = 0;

  /// Hysteresis on the recovery side of ECN feedback: this many
  /// consecutive unmarked chunk acks before the depth grows back one step.
  std::size_t ecn_restore_chunks = 16;

  // -- stream-triggered communication (docs/STREAMS.md) ------------------
  /// How the *_on(stream, ...) entry points behave. kPolled keeps the CPU
  /// in the loop (synchronize + post — byte-identical to not using the
  /// stream API at all); kStream enqueues host-trigger / wait-flag ops so
  /// the transfer starts and completes in stream order with no host
  /// turnaround.
  TriggerMode trigger_mode = TriggerMode::kPolled;

  /// Persistent requests (send_init/recv_init + start) cache the path
  /// decision, pack plan and chunk table on first use and re-fire them on
  /// every restart, skipping plan lookup and cost-model calls on the hot
  /// path. Off by default: every start re-derives the plan exactly like a
  /// fresh isend/irecv.
  bool persistent_plan_cache = false;

  // -- reliability -------------------------------------------------------
  /// Base retransmission timeout for rendezvous control messages: if a
  /// transfer makes no progress for this long, its oldest unacknowledged
  /// message is resent. Must exceed any injected delivery jitter.
  sim::SimTime rndv_timeout_ns = 5'000'000;

  /// Retransmission attempts per transfer before it is failed with a
  /// request error (0 disables retransmission entirely).
  std::size_t rndv_max_retries = 6;

  /// Timeout multiplier applied after each retry (exponential backoff).
  double rndv_backoff_factor = 2.0;

  // -- fault injection / failover (docs/RELIABILITY.md) ------------------
  /// Startup skew: each rank delays a seeded uniform [0, rank_skew_ns]
  /// before entering its body — models non-synchronized process launch.
  sim::SimTime rank_skew_ns = 0;

  /// Per-progress-iteration stall probability: with this probability a
  /// rank pauses for a seeded uniform [0, rank_stall_ns] inside its
  /// progress loop — models OS noise / a late CPU. 0 disables (and skips
  /// all RNG draws, keeping fault-free runs bit-exact).
  double rank_stall_prob = 0.0;

  /// Upper bound of one injected stall window.
  sim::SimTime rank_stall_ns = 0;

  /// Transport failover: demote a routed (IPC) peer to the fabric after
  /// this many consecutive transfer failures. 0 disables failover (the
  /// default — route tables never change at runtime).
  std::size_t transport_failover_threshold = 0;

  /// Consecutive successful transfers (over any path) before a demoted
  /// peer's routed path is optimistically restored.
  std::size_t transport_restore_threshold = 3;

  /// Collective liveness watchdog: each blocking wait inside a collective
  /// gets a deadline of this factor times the p2p layer's worst-case
  /// retry budget. Expiry aborts the collective instead of hanging.
  double coll_watchdog_factor = 4.0;

  // -- host datatype-processing cost model -------------------------------
  /// Effective bandwidth of a strided host-side pack/unpack (GB/s).
  double host_pack_bw = 3.0;
  /// Fixed cost per contiguous run during host pack/unpack.
  double host_seg_overhead_ns = 15.0;

  /// Modeled CPU time to pack/unpack `bytes` spread over `segments` runs.
  sim::SimTime host_pack_time(std::size_t bytes, std::size_t segments) const;

  /// Throws std::invalid_argument when a setting is out of range.
  void validate() const;

  /// Parse "key = value" lines ('#' comments, blank lines allowed);
  /// unknown keys are an error. Returns defaults overlaid with the file.
  static Tunables from_stream(std::istream& in);
  static Tunables from_file(const std::string& path);

  /// Render in the same config format from_stream accepts.
  std::string to_config_string() const;
};

}  // namespace mv2gnc::core
