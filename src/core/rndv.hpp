// The MV2-GPU-NC rendezvous pipeline (paper §IV-B, Figure 3), hardened
// against a lossy fabric.
//
// A large message moves through five stages, chunked at the configured
// block size and fully overlapped:
//
//   sender                                   receiver
//   ------                                   --------
//   D2D nc2c   pack chunk into device tbuf
//   D2H c2c    tbuf chunk -> host vbuf
//   RDMA       vbuf -> advertised remote slot ... per-chunk "fin" immediate
//                                             H2D c2c  slot -> device rtbuf
//                                             D2D c2nc rtbuf -> user buffer
//
// The same machinery degrades gracefully for every buffer combination the
// MPI layer can present:
//   * device contiguous        -> stages 1/5 drop out (3-stage pipeline,
//                                 the prior-work MVAPICH2-GPU design [3])
//   * device strided, offload
//     disabled                 -> stage 1 merges into stage 2 as a strided
//                                 PCIe copy (D2H nc2c), the paper's
//                                 non-offloaded alternative
//   * host strided             -> pack/unpack run on the CPU into vbufs
//   * host contiguous          -> zero staging; single direct RDMA write
//
// Flow control follows the paper: the CTS advertises a window of landing
// vbufs; each slot is re-advertised as the receiver drains it, piggybacked
// on the per-chunk CHUNK_ACK.
//
// Reliability (docs/RELIABILITY.md): every control message may be lost or
// duplicated, and RDMA writes may fail with an error completion. The
// sender owns recovery — a per-transfer deadline timer retransmits the
// oldest unacknowledged state (RTS before the CTS arrives, unacked chunk
// writes after) with exponential backoff, bounded by rndv_max_retries and
// then failing the transfer cleanly (a best-effort SEND_ABORT tells the
// peer). An RTS that arrives before its receive is posted is answered
// with RTS_ACK, which refreshes the sender's budget: a late receiver is
// not loss. The receiver answers idempotently — duplicate RTS re-elicits
// the stored CTS, duplicate fins re-elicit the stored ack — and landing
// slots are retained until the sender's SEND_DONE so a late retransmitted
// write can never land in recycled memory; its own watchdog timer bounds
// how long an established rendezvous may sit in total silence before the
// receive fails (payload missing) or force-drains (payload complete).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/gpu_staging.hpp"
#include "core/msg_view.hpp"
#include "core/protocol.hpp"
#include "core/transport.hpp"
#include "core/trigger_graph.hpp"
#include "core/tunables.hpp"
#include "core/vbuf_pool.hpp"
#include "cuda/runtime.hpp"
#include "sim/engine.hpp"
#include "sim/timer.hpp"
#include "sim/trace.hpp"

namespace mv2gnc::core {

class TransferScheduler;

/// Per-rank reliability counters, aggregated across all transfers of the
/// rank. Zero across the board on a perfect fabric.
struct RetryStats {
  std::uint64_t rts_retransmits = 0;     // RTS resent on timeout
  std::uint64_t chunk_retransmits = 0;   // chunk writes resent on timeout
  std::uint64_t error_retransmits = 0;   // chunk writes resent after kError
  std::uint64_t cts_resent = 0;          // stored CTS replayed on dup RTS
  std::uint64_t acks_resent = 0;         // stored ack replayed on dup fin
  std::uint64_t done_resent = 0;         // RGET done replayed on dup RTS
  std::uint64_t send_done_retransmits = 0;  // direct-mode SEND_DONE resent
  std::uint64_t timeouts = 0;            // deadline expiries counted as retry
  std::uint64_t stall_fallbacks = 0;     // vbuf-starvation watchdog firings
  std::uint64_t duplicates_dropped = 0;  // redundant control msgs ignored
  std::uint64_t transfer_failures = 0;   // transfers failed after max retries
  std::uint64_t force_drains = 0;        // receivers drained by the watchdog
                                         // after the peer went silent

  std::uint64_t total_retransmits() const {
    return rts_retransmits + chunk_retransmits + error_retransmits +
           cts_resent + acks_resent + done_resent + send_done_retransmits;
  }
};

namespace detail {

/// A staging buffer that is either a pooled vbuf or (for oversized chunks,
/// e.g. with pipelining disabled) a one-off pinned host allocation
/// (cudaMallocHost equivalent).
struct StagingSlot {
  std::byte* ptr = nullptr;
  bool from_pool = false;
  cusim::CudaContext* host_owner = nullptr;  // set for one-off allocations
  /// Set when `ptr` is *device* memory parked in the slot graveyard (an IPC
  /// pack/landing buffer a failed transfer could not free: a queued peer
  /// copy may still reference it). Freed with cudaFree at rank teardown.
  cusim::CudaContext* device_owner = nullptr;

  bool valid() const { return ptr != nullptr; }
};

StagingSlot acquire_slot(VbufPool& pool, cusim::CudaContext& cuda,
                         std::size_t bytes);
void release_slot(VbufPool& pool, StagingSlot& slot);
StagingSlot pinned_slot(cusim::CudaContext& cuda, std::size_t bytes);

}  // namespace detail

/// Per-rank resources shared by all transfers of that rank. The four CUDA
/// streams mirror the concurrency structure of Figure 3: packing, D2H
/// staging, H2D staging and unpacking progress independently.
struct RankResources {
  sim::Engine* engine = nullptr;
  cusim::CudaContext* cuda = nullptr;
  /// Per-peer wire path (fabric, or the intra-node IPC channel for
  /// co-located ranks). The rendezvous never sees a concrete transport.
  TransportRouter* net = nullptr;
  VbufPool* vbufs = nullptr;
  const Tunables* tun = nullptr;
  cusim::Stream pack_stream;
  cusim::Stream d2h_stream;
  cusim::Stream h2d_stream;
  cusim::Stream unpack_stream;

  // -- reliability plumbing (all optional; null disables the feature) ----
  /// Woken by retransmission deadline expiry so the rank's progress loop
  /// runs; the timer callback itself never retransmits.
  sim::Notifier* notifier = nullptr;
  /// Aggregated retry/fault counters for this rank.
  RetryStats* retries = nullptr;
  /// Point-event sink for fault/retry/stall occurrences.
  sim::TraceRecorder* trace = nullptr;
  int rank = -1;
  /// Staging slots a *failed* transfer could not safely release (an RDMA
  /// write referencing them may still be queued in the transmit pipeline);
  /// the owning RankComm frees them at destruction, after the engine has
  /// drained every event.
  std::vector<detail::StagingSlot>* slot_graveyard = nullptr;
  /// Multi-transfer progress scheduler (docs/CONCURRENCY.md): vbuf QoS and
  /// fairness gating, adaptive pipeline depth, ack/credit coalescing and
  /// the control-message census. Null disables all of it (legacy behavior,
  /// identical to sched_policy=fifo with coalescing off).
  TransferScheduler* sched = nullptr;
  /// Trigger-graph / stream-op observability counters (docs/STREAMS.md).
  /// Null disables counting.
  TriggerStats* trig = nullptr;
};

/// Chunk geometry shared by both sides (the RTS carries the sender's
/// chunk size so the receiver derives the identical split).
struct ChunkPlan {
  std::size_t total = 0;
  std::size_t chunk = 0;
  std::size_t count = 0;

  std::size_t offset_of(std::size_t i) const { return i * chunk; }
  std::size_t bytes_of(std::size_t i) const {
    const std::size_t off = offset_of(i);
    return (off + chunk <= total) ? chunk : total - off;
  }

  /// Throws std::invalid_argument on a zero total or zero chunk size; a
  /// chunk larger than the message is coerced to a single-chunk plan.
  static ChunkPlan make(std::size_t total, std::size_t chunk);
};

/// Persistent-request plan cache (docs/STREAMS.md): the path decision,
/// chunk geometry and pack cursors a transfer derived once, stored so the
/// next start() of the same frozen argument list re-fires them without
/// plan lookup or cost-model calls. The cache is validated against the
/// inputs that can legitimately change between rounds (transport failover
/// flips device_direct; the sender's RTS dictates the receiver's chunk) —
/// a mismatch falls back to a fresh derivation and refills the entry.
/// Owned by the PersistentRequest; transfers hold a non-owning pointer.
struct RndvCache {
  // Sender side.
  bool send_valid = false;
  bool send_ipc = false;  // device_direct(dst) held when the entry was filled
  int send_path = 0;
  ChunkPlan send_plan;
  std::shared_ptr<const PackPlan::ChunkCursors> send_cursors;
  // Receiver side.
  bool recv_valid = false;
  bool recv_ipc = false;
  bool recv_rget = false;
  int recv_path = 0;
  std::size_t recv_chunk = 0;  // sender chunk the cursors were cut for
  std::shared_ptr<const PackPlan::ChunkCursors> recv_cursors;
};

/// Sender-side state machine. Drive with on_*() from the progress engine
/// and call advance() after every event; done() flips once every chunk has
/// been acknowledged by the receiver (or the RGET done arrived), failed()
/// once the retry budget is exhausted.
///
/// Internally the stage transitions (pack-done -> D2H -> vbuf acquire ->
/// RDMA -> ack) form a TriggerGraph: each advance() is one firing pass over
/// declared dependency gates. The graph shapes reproduce the historical
/// frontier loops exactly — scheduling is byte-identical to the pre-graph
/// state machine (see core/trigger_graph.hpp).
class RndvSend {
 public:
  RndvSend(RankResources& res, MsgView msg, int dst_node,
           std::uint64_t my_req_id, RndvCache* cache = nullptr);
  ~RndvSend();
  RndvSend(const RndvSend&) = delete;
  RndvSend& operator=(const RndvSend&) = delete;

  /// Stream-triggered mode: gate the data-touching stages on `gate` (an
  /// event recorded on the application stream behind the kernels that
  /// produce the send buffer). The RTS still leaves immediately — the
  /// handshake overlaps the compute — but no byte of the user buffer is
  /// read before the gate fires. Call before start().
  void set_data_gate(cusim::Event gate) { data_gate_ = std::move(gate); }

  /// Send the RTS and (device path) start packing immediately — packing
  /// overlaps the handshake, as in Figure 3. Arms the retransmission
  /// deadline.
  void start(std::uint64_t tag_word);

  void on_cts(const netsim::WireMessage& msg);
  void on_chunk_ack(const netsim::WireMessage& msg);
  /// One coalesced ack out of a kChunkAckBatch (or the fields of an
  /// individual kChunkAck) — the shared entry point both paths reduce to.
  void apply_chunk_ack(const AckBatchEntry& e);
  /// The peer received our RTS but has no matching receive posted yet.
  /// Refreshes the retry budget: an unanswered handshake whose RTS is known
  /// delivered is a late receiver, not a lost message, and legal MPI
  /// programs may post the matching recv arbitrarily late.
  void on_rts_ack();
  /// Direct mode: the receiver confirmed our SEND_DONE; stop resending it.
  void on_send_done_ack();
  /// Returns true when the completion belonged to this transfer.
  bool on_rdma_complete(std::uint64_t wr_id);
  /// A posted write failed in transport (CqType::kError): retransmit the
  /// chunk, bounded per chunk by rndv_max_retries. Returns true when the
  /// wr_id belonged to this transfer.
  bool on_rdma_error(std::uint64_t wr_id);
  /// RGET: the receiver pulled the data and sent kRndvDone (h1 carries the
  /// receiver's request id so the SEND_DONE can be addressed back).
  void on_rget_done(const netsim::WireMessage& msg);
  void advance();

  bool done() const { return complete_; }
  bool failed() const { return failed_; }
  /// No protocol duties remain. In direct mode completion leaves the
  /// SEND_DONE handshake still running (the receiver's request hinges on
  /// it); the owning RankComm keeps the transfer live until drained.
  bool drained() const {
    return failed_ ||
           (complete_ && (!done_owed_ || done_acked_ || done_given_up_));
  }
  const std::string& error() const { return error_; }
  std::uint64_t req_id() const { return req_id_; }
  const ChunkPlan& plan() const { return plan_; }

  /// Abandon the transfer without charging the path's failover health or
  /// the failure counters: the owner no longer wants the data (an aborted
  /// collective). Sends a best-effort SEND_ABORT retraction so the peer
  /// drops anything it holds for this transfer — including an unmatched
  /// RTS in its unexpected queue, whose periodic re-ack would otherwise
  /// keep this sender's retry budget resetting forever.
  void cancel(const std::string& reason);

 private:
  // kDeviceIpc* are the intra-node collapsed pipeline (docs/SIMULATION.md):
  // the peer copy reads device memory directly, so the D2H staging stage
  // (and its vbuf slots) drop out entirely.
  enum class Path { kDeviceOffload, kDevicePcie, kDeviceContig, kHostPack,
                    kHostContig, kDeviceIpcOffload, kDeviceIpcContig };

  /// False for the paths whose chunks leave straight from device (or user)
  /// memory and therefore never hold a host staging slot.
  bool uses_staging() const {
    return path_ != Path::kHostContig && path_ != Path::kDeviceIpcOffload &&
           path_ != Path::kDeviceIpcContig;
  }

  /// Declare the trigger chains (pack gate -> stage frontier -> RDMA
  /// frontier); advance() then only fires the graph.
  void build_graph();
  /// Dependency gate of stage node i: depth cap, pack completion, data
  /// gate, staging-slot acquisition (the acquisition is the side effect
  /// that historically lived in the advance() loop body).
  bool stage_gate(std::size_t i);
  /// Dependency gate of RDMA node i: chunk staged, D2H drained, data gate
  /// (zero-staging paths), landing address available.
  bool rdma_gate(std::size_t i);
  /// True once the stream data gate (if any) has fired.
  bool data_ready() const {
    return !data_gate_.valid() || data_gate_.query();
  }
  void submit_stage(std::size_t i);
  void post_chunk_rdma(std::size_t i, bool retransmit);
  /// Stamp, census-count, piggyback pending credits for dst_, then post.
  void post_ctrl(netsim::WireMessage msg);
  void maybe_release_slot(std::size_t i);
  /// Complete once every chunk is acked and no write is still queued in
  /// the transmit pipeline; returns true when the transfer completed.
  bool maybe_complete();
  void note_progress() { ++progress_epoch_; }
  void arm_timer();
  void handle_timeout();
  void retransmit_unacked();
  void complete_transfer();
  void fail(const std::string& reason);
  void abandon(const std::string& reason);
  void trace_event(const char* category);

  RankResources& res_;
  MsgView msg_;
  int dst_;
  std::uint64_t req_id_;
  Path path_;
  ChunkPlan plan_;
  /// Precomputed per-chunk resumable cursors (kHostPack); shared with the
  /// plan cache, so retransmissions and repeated sends reuse them verbatim.
  std::shared_ptr<const PackPlan::ChunkCursors> cursors_;
  /// Stream data gate (invalid unless set_data_gate was called).
  cusim::Event data_gate_;
  /// The stage/RDMA dependency graph; rebuilt per transfer, fired by
  /// advance().
  TriggerGraph graph_;

  std::byte* tbuf_ = nullptr;  // device pack buffer (kDeviceOffload)
  std::vector<cusim::Event> pack_events_;
  std::vector<cusim::Event> stage_events_;
  std::vector<detail::StagingSlot> slots_;
  std::vector<bool> stage_submitted_;

  bool cts_received_ = false;
  CtsMode mode_ = CtsMode::kStaged;
  std::uint64_t peer_req_ = 0;
  std::byte* direct_base_ = nullptr;
  bool ipc_mapped_ = false;  // direct_base_ came from ipc_open_mem_handle
  std::deque<std::pair<std::uint64_t, void*>> remote_slots_;

  std::size_t next_stage_ = 0;
  std::size_t next_rdma_ = 0;
  std::size_t rdma_done_ = 0;  // local write completions (diagnostic)
  std::unordered_map<std::uint64_t, std::size_t> wr_to_chunk_;

  // -- reliability state -------------------------------------------------
  netsim::WireMessage rts_;            // stored for retransmission
  netsim::WireMessage done_;           // SEND_DONE, stored for retransmission
  bool done_owed_ = false;             // direct mode: peer waits on SEND_DONE
  bool done_acked_ = false;
  bool done_given_up_ = false;         // SEND_DONE retry budget exhausted
  sim::DeadlineTimer timer_;
  std::uint64_t ctrl_seq_ = 0;         // stamps outgoing control messages
  std::size_t retries_ = 0;
  std::uint64_t progress_epoch_ = 1;
  std::uint64_t armed_epoch_ = 0;
  std::vector<bool> posted_;           // write posted at least once
  std::vector<bool> acked_;
  std::size_t acked_count_ = 0;
  std::vector<int> inflight_;          // posted writes without local cqe
  std::vector<std::size_t> write_errors_;  // kError count per chunk
  std::vector<std::uint64_t> remote_slot_idx_;  // landing slot per chunk
  std::vector<void*> remote_addr_;              // landing address per chunk
  bool force_pinned_ = false;          // stall watchdog verdict
  bool rget_done_ = false;
  bool complete_ = false;
  bool failed_ = false;
  std::string error_;
};

/// Receiver-side state machine, created when an RTS matches a posted
/// receive. Sends the CTS, lands chunks, unpacks, acks each chunk (with
/// the freed slot's re-advertisement piggybacked). All loss recovery is
/// driven by the sender's retransmissions, which this side answers
/// idempotently; the receiver never retransmits data. Its one timer is a
/// liveness watchdog: once the rendezvous is established the sender is
/// actively driving, so prolonged total silence means the sender failed
/// (or the path died) and the receive must fail bounded instead of
/// waiting out the engine's deadlock detector.
class RndvRecv {
 public:
  /// `rget_src` is the sender's advertised source address (from the RTS)
  /// when the sender is RGET-eligible, or nullptr.
  RndvRecv(RankResources& res, MsgView msg, int src_node,
           std::uint64_t sender_req, std::uint64_t my_req_id,
           std::size_t incoming_bytes, std::size_t sender_chunk,
           const std::byte* rget_src = nullptr, RndvCache* cache = nullptr);
  ~RndvRecv();
  RndvRecv(const RndvRecv&) = delete;
  RndvRecv& operator=(const RndvRecv&) = delete;

  /// Decide the landing mode, allocate buffers, send the CTS.
  void start();

  void on_chunk_fin(const netsim::WireMessage& msg);
  /// Returns true when the read completion belonged to this transfer.
  bool on_rdma_read_complete(std::uint64_t wr_id);
  /// The sender saw every ack (or the RGET done): release retained landing
  /// slots and, in direct mode, complete the request.
  void on_send_done();
  /// A retransmitted RTS for this transfer arrived: replay the stored CTS
  /// (or the RGET done) so a lost handshake message is recovered.
  void on_duplicate_rts();
  /// Best-effort notice that the sender failed the transfer permanently:
  /// fail the receive now rather than waiting out the watchdog.
  void on_send_abort();
  void advance();

  /// The receive request may complete: all payload data has landed and
  /// unpacked into the user buffer. Direct (user-buffer) landings
  /// additionally wait for SEND_DONE — only then is it proven that no
  /// retransmitted duplicate write can still drain into a buffer the
  /// application owns again (or has already freed).
  bool request_complete() const;
  /// The transfer failed permanently (sender abort, or watchdog expiry
  /// with payload still missing).
  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }
  /// Nothing retained and no replay obligations remain; the owning
  /// RankComm may drop this object (keeping only its finished-transfer
  /// key so very late duplicate RTSes stay recognizable).
  bool drained() const;

  /// Abandon the receive without charging failover health or the failure
  /// counters (an aborted collective no longer wants the payload). The
  /// peer's own cancel/abort — or its retry budget — bounds its side.
  void cancel(const std::string& reason);

  std::uint64_t req_id() const { return req_id_; }
  std::uint64_t sender_req() const { return sender_req_; }
  int src_node() const { return src_; }
  std::size_t incoming_bytes() const { return plan_.total; }

 private:
  // kDeviceIpcDirect: a co-located sender peer-copies straight into the
  // contiguous user buffer. kDeviceIpcOffload: it peer-copies into a device
  // landing buffer (rtbuf_) that a D2D c2nc unpack scatters from — the
  // intra-node collapsed pipeline; no host staging slot ever exists.
  enum class Path { kDeviceOffload, kDevicePcie, kDeviceContig, kHostUnpack,
                    kHostDirect, kHostRget, kDeviceIpcOffload,
                    kDeviceIpcDirect };

  /// Landings where the sender writes a buffer this side advertised whole
  /// (no per-chunk slots, no credits; SEND_DONE is answered reliably).
  bool direct_landing() const {
    return path_ == Path::kHostDirect || path_ == Path::kDeviceIpcDirect ||
           path_ == Path::kDeviceIpcOffload;
  }

  /// Declare the landing pipeline of path_ (arrival -> H2D -> unpack ->
  /// ack) as trigger chains; advance() then only fires the graph.
  void build_graph();
  void ack_chunk(std::size_t chunk_idx);
  void resend_ack(std::size_t chunk_idx);
  void post_ctrl(netsim::WireMessage msg);
  void trace_event(const char* category);
  void note_progress() { ++progress_epoch_; }
  void arm_timer();
  void handle_timeout();
  /// The peer has been silent for the whole backoff budget: release what
  /// is retained and stop tracking. Slots go back to the pool — by now any
  /// write the sender ever posted has long drained, the quiet period being
  /// orders of magnitude above wire latency plus jitter.
  void force_drain();
  void fail(const std::string& reason);
  void abandon(const std::string& reason);

  RankResources& res_;
  MsgView msg_;
  int src_;
  std::uint64_t sender_req_;
  std::uint64_t req_id_;
  Path path_;
  ChunkPlan plan_;
  /// Per-chunk resumable cursors for kHostUnpack (see RndvSend::cursors_).
  std::shared_ptr<const PackPlan::ChunkCursors> cursors_;
  /// The landing dependency graph (see RndvSend::graph_).
  TriggerGraph graph_;
  const std::byte* rget_src_ = nullptr;
  std::uint64_t rget_wr_ = 0;

  std::byte* rtbuf_ = nullptr;  // device landing buffer (kDeviceOffload)
  std::vector<detail::StagingSlot> slots_;  // landing slots (staged modes)
  std::size_t slots_advertised_ = 0;

  struct ChunkState {
    bool arrived = false;
    bool ecn = false;  // the chunk's fin carried a fabric congestion mark
    std::uint64_t slot = 0;
    cusim::Event h2d_done;
    bool h2d_submitted = false;
    cusim::Event unpack_done;
    bool unpack_submitted = false;
  };
  std::vector<ChunkState> chunks_;
  std::size_t arrived_count_ = 0;
  std::size_t next_h2d_ = 0;
  std::size_t next_unpack_ = 0;
  std::size_t completed_ = 0;

  // -- reliability state -------------------------------------------------
  netsim::WireMessage cts_;            // stored for replay on dup RTS
  bool cts_sent_ = false;
  netsim::WireMessage done_msg_;       // RGET done, stored for replay
  bool done_sent_ = false;
  std::vector<netsim::WireMessage> acks_;  // stored per chunk once drained
  std::vector<bool> drained_chunk_;
  std::size_t drained_acks_ = 0;  // chunks acked at least once
  bool send_done_ = false;
  std::uint64_t credit_seq_ = 0;
  std::uint64_t ctrl_seq_ = 0;
  sim::DeadlineTimer timer_;           // liveness watchdog, never retransmits
  std::size_t retries_ = 0;
  std::uint64_t progress_epoch_ = 1;
  std::uint64_t armed_epoch_ = 0;
  bool failed_ = false;
  std::string error_;
};

}  // namespace mv2gnc::core
