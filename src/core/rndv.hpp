// The MV2-GPU-NC rendezvous pipeline (paper §IV-B, Figure 3).
//
// A large message moves through five stages, chunked at the configured
// block size and fully overlapped:
//
//   sender                                   receiver
//   ------                                   --------
//   D2D nc2c   pack chunk into device tbuf
//   D2H c2c    tbuf chunk -> host vbuf
//   RDMA       vbuf -> advertised remote slot ... per-chunk "fin" immediate
//                                             H2D c2c  slot -> device rtbuf
//                                             D2D c2nc rtbuf -> user buffer
//
// The same machinery degrades gracefully for every buffer combination the
// MPI layer can present:
//   * device contiguous        -> stages 1/5 drop out (3-stage pipeline,
//                                 the prior-work MVAPICH2-GPU design [3])
//   * device strided, offload
//     disabled                 -> stage 1 merges into stage 2 as a strided
//                                 PCIe copy (D2H nc2c), the paper's
//                                 non-offloaded alternative
//   * host strided             -> pack/unpack run on the CPU into vbufs
//   * host contiguous          -> zero staging; single direct RDMA write
//
// Flow control follows the paper: the CTS advertises a window of landing
// vbufs; CREDIT messages re-advertise each slot as the receiver drains it.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/gpu_staging.hpp"
#include "core/msg_view.hpp"
#include "core/protocol.hpp"
#include "core/tunables.hpp"
#include "core/vbuf_pool.hpp"
#include "cuda/runtime.hpp"
#include "net/fabric.hpp"
#include "sim/engine.hpp"

namespace mv2gnc::core {

/// Per-rank resources shared by all transfers of that rank. The four CUDA
/// streams mirror the concurrency structure of Figure 3: packing, D2H
/// staging, H2D staging and unpacking progress independently.
struct RankResources {
  sim::Engine* engine = nullptr;
  cusim::CudaContext* cuda = nullptr;
  netsim::Endpoint* endpoint = nullptr;
  VbufPool* vbufs = nullptr;
  const Tunables* tun = nullptr;
  cusim::Stream pack_stream;
  cusim::Stream d2h_stream;
  cusim::Stream h2d_stream;
  cusim::Stream unpack_stream;
};

namespace detail {

/// A staging buffer that is either a pooled vbuf or (for oversized chunks,
/// e.g. with pipelining disabled) a one-off pinned host allocation
/// (cudaMallocHost equivalent).
struct StagingSlot {
  std::byte* ptr = nullptr;
  bool from_pool = false;
  cusim::CudaContext* host_owner = nullptr;  // set for one-off allocations

  bool valid() const { return ptr != nullptr; }
};

StagingSlot acquire_slot(VbufPool& pool, cusim::CudaContext& cuda,
                         std::size_t bytes);
void release_slot(VbufPool& pool, StagingSlot& slot);
StagingSlot pinned_slot(cusim::CudaContext& cuda, std::size_t bytes);

}  // namespace detail

/// Chunk geometry shared by both sides (the RTS carries the sender's
/// chunk size so the receiver derives the identical split).
struct ChunkPlan {
  std::size_t total = 0;
  std::size_t chunk = 0;
  std::size_t count = 0;

  std::size_t offset_of(std::size_t i) const { return i * chunk; }
  std::size_t bytes_of(std::size_t i) const {
    const std::size_t off = offset_of(i);
    return (off + chunk <= total) ? chunk : total - off;
  }

  static ChunkPlan make(std::size_t total, std::size_t chunk);
};

/// Sender-side state machine. Drive with on_*() from the progress engine
/// and call advance() after every event; done() flips once all data has
/// left this node.
class RndvSend {
 public:
  RndvSend(RankResources& res, MsgView msg, int dst_node,
           std::uint64_t my_req_id);
  ~RndvSend();
  RndvSend(const RndvSend&) = delete;
  RndvSend& operator=(const RndvSend&) = delete;

  /// Send the RTS and (device path) start packing immediately — packing
  /// overlaps the handshake, as in Figure 3.
  void start(std::uint64_t tag_word);

  void on_cts(const netsim::WireMessage& msg);
  void on_credit(const netsim::WireMessage& msg);
  /// Returns true when the completion belonged to this transfer.
  bool on_rdma_complete(std::uint64_t wr_id);
  /// RGET: the receiver pulled the data and sent kRndvDone.
  void on_rget_done() { rdma_done_ = plan_.count; }
  void advance();

  bool done() const { return rdma_done_ == plan_.count; }
  std::uint64_t req_id() const { return req_id_; }
  const ChunkPlan& plan() const { return plan_; }

 private:
  enum class Path { kDeviceOffload, kDevicePcie, kDeviceContig, kHostPack,
                    kHostContig };

  void submit_stage(std::size_t i);
  void post_chunk_rdma(std::size_t i);

  RankResources& res_;
  MsgView msg_;
  int dst_;
  std::uint64_t req_id_;
  Path path_;
  ChunkPlan plan_;

  std::byte* tbuf_ = nullptr;  // device pack buffer (kDeviceOffload)
  std::vector<cusim::Event> pack_events_;
  std::vector<cusim::Event> stage_events_;
  std::vector<detail::StagingSlot> slots_;
  std::vector<bool> stage_submitted_;

  bool cts_received_ = false;
  CtsMode mode_ = CtsMode::kStaged;
  std::uint64_t peer_req_ = 0;
  std::byte* direct_base_ = nullptr;
  std::deque<std::pair<std::uint64_t, void*>> remote_slots_;

  std::size_t next_stage_ = 0;
  std::size_t next_rdma_ = 0;
  std::size_t rdma_done_ = 0;
  std::unordered_map<std::uint64_t, std::size_t> wr_to_chunk_;
};

/// Receiver-side state machine, created when an RTS matches a posted
/// receive. Sends the CTS, lands chunks, unpacks, credits slots back.
class RndvRecv {
 public:
  /// `rget_src` is the sender's advertised source address (from the RTS)
  /// when the sender is RGET-eligible, or nullptr.
  RndvRecv(RankResources& res, MsgView msg, int src_node,
           std::uint64_t sender_req, std::uint64_t my_req_id,
           std::size_t incoming_bytes, std::size_t sender_chunk,
           const std::byte* rget_src = nullptr);
  ~RndvRecv();
  RndvRecv(const RndvRecv&) = delete;
  RndvRecv& operator=(const RndvRecv&) = delete;

  /// Decide the landing mode, allocate buffers, send the CTS.
  void start();

  void on_chunk_fin(const netsim::WireMessage& msg);
  /// Returns true when the read completion belonged to this transfer.
  bool on_rdma_read_complete(std::uint64_t wr_id);
  void advance();

  bool done() const { return completed_ == plan_.count; }
  std::uint64_t req_id() const { return req_id_; }
  std::size_t incoming_bytes() const { return plan_.total; }

 private:
  enum class Path { kDeviceOffload, kDevicePcie, kDeviceContig, kHostUnpack,
                    kHostDirect, kHostRget };

  void advertise_slot(std::size_t slot_idx, bool initial);
  void finish_chunk_slot(std::size_t slot_idx);

  RankResources& res_;
  MsgView msg_;
  int src_;
  std::uint64_t sender_req_;
  std::uint64_t req_id_;
  Path path_;
  ChunkPlan plan_;
  const std::byte* rget_src_ = nullptr;
  std::uint64_t rget_wr_ = 0;

  std::byte* rtbuf_ = nullptr;  // device landing buffer (kDeviceOffload)
  std::vector<detail::StagingSlot> slots_;  // landing slots (staged modes)
  std::size_t slots_advertised_ = 0;

  struct ChunkState {
    bool arrived = false;
    std::uint64_t slot = 0;
    cusim::Event h2d_done;
    bool h2d_submitted = false;
    cusim::Event unpack_done;
    bool unpack_submitted = false;
  };
  std::vector<ChunkState> chunks_;
  std::size_t fin_count_ = 0;
  std::size_t next_h2d_ = 0;
  std::size_t next_unpack_ = 0;
  std::size_t completed_ = 0;
};

}  // namespace mv2gnc::core
