// Host staging-buffer (vbuf) pool.
//
// MVAPICH2 stages GPU data through a pool of pre-registered, chunk-sized
// host buffers ("the sender will get a chunk sized buffer called vbuf from
// host memory buffer pool", paper §IV-B). The pool is fixed-size; when
// it drains, the pipeline stalls until a buffer is released — that
// back-pressure is part of the protocol and is tested explicitly.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

namespace mv2gnc::core {

class VbufPool {
 public:
  /// `count` buffers of `bytes_each` (pre-registered at init time, so no
  /// registration cost is charged per use — matching MVAPICH2).
  VbufPool(std::size_t count, std::size_t bytes_each);
  VbufPool(const VbufPool&) = delete;
  VbufPool& operator=(const VbufPool&) = delete;

  /// Take a buffer, or nullptr when the pool is exhausted.
  std::byte* try_acquire();

  /// Return a buffer obtained from try_acquire().
  /// Throws std::invalid_argument for foreign or double-released pointers.
  void release(std::byte* buf);

  std::size_t capacity() const { return capacity_; }
  std::size_t buffer_bytes() const { return bytes_each_; }
  std::size_t in_use() const { return capacity_ - free_.size(); }
  std::size_t available() const { return free_.size(); }
  /// High-water mark of simultaneously acquired buffers.
  std::size_t high_water() const { return high_water_; }

  /// Cross-check the internal accounting: free list and taken bitmap must
  /// partition the arena exactly (no leak, no double-entry, no foreign
  /// pointer). Returns "" when consistent, else a description of the first
  /// violation. Reliability tests assert this after every quiesce.
  std::string audit() const;

  /// Backing arena (for registration as pinned/registered memory).
  std::byte* arena() const { return arena_.get(); }
  std::size_t arena_bytes() const { return capacity_ * bytes_each_; }

 private:
  std::size_t capacity_;
  std::size_t bytes_each_;
  std::unique_ptr<std::byte[]> arena_;
  std::vector<std::byte*> free_;
  std::vector<bool> taken_;
  std::size_t high_water_ = 0;
};

}  // namespace mv2gnc::core
