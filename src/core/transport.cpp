#include "core/transport.hpp"

#include <utility>

#include "net/fabric.hpp"
#include "net/ipc.hpp"

namespace mv2gnc::core {

// ===========================================================================
// FabricTransport
// ===========================================================================

FabricTransport::FabricTransport(netsim::Endpoint& endpoint)
    : endpoint_(endpoint) {}

std::uint64_t FabricTransport::post_send(int dst, netsim::WireMessage msg) {
  return endpoint_.post_send(dst, std::move(msg));
}

std::uint64_t FabricTransport::post_rdma_write(
    int dst, const void* local, void* remote, std::size_t bytes,
    std::optional<netsim::WireMessage> imm) {
  return endpoint_.post_rdma_write(dst, local, remote, bytes, std::move(imm));
}

std::uint64_t FabricTransport::post_rdma_read(int src, void* local,
                                              const void* remote,
                                              std::size_t bytes) {
  return endpoint_.post_rdma_read(src, local, remote, bytes);
}

bool FabricTransport::poll(netsim::Completion& out) {
  return endpoint_.poll(out);
}

void FabricTransport::set_wakeup(sim::Notifier* n) {
  endpoint_.set_wakeup(n);
}

TransportStats FabricTransport::stats() const {
  TransportStats s;
  s.messages_sent = endpoint_.messages_sent();
  s.bytes_sent = endpoint_.bytes_sent();
  s.rdma_writes = endpoint_.rdma_writes();
  s.rdma_reads = endpoint_.rdma_reads();
  s.busy_time = endpoint_.tx_busy_time();
  return s;
}

// ===========================================================================
// IpcTransport
// ===========================================================================

IpcTransport::IpcTransport(netsim::IpcPort& port) : port_(port) {}

std::uint64_t IpcTransport::post_send(int dst, netsim::WireMessage msg) {
  return port_.post_send(dst, std::move(msg));
}

std::uint64_t IpcTransport::post_rdma_write(
    int dst, const void* local, void* remote, std::size_t bytes,
    std::optional<netsim::WireMessage> imm) {
  return port_.post_rdma_write(dst, local, remote, bytes, std::move(imm));
}

std::uint64_t IpcTransport::post_rdma_read(int src, void* local,
                                           const void* remote,
                                           std::size_t bytes) {
  return port_.post_rdma_read(src, local, remote, bytes);
}

bool IpcTransport::poll(netsim::Completion& out) { return port_.poll(out); }

void IpcTransport::set_wakeup(sim::Notifier* n) { port_.set_wakeup(n); }

TransportStats IpcTransport::stats() const {
  TransportStats s;
  s.messages_sent = port_.messages_sent();
  s.bytes_sent = port_.bytes_sent();
  s.rdma_writes = port_.rdma_writes();
  s.rdma_reads = port_.rdma_reads();
  s.busy_time = port_.tx_busy_time();
  return s;
}

// ===========================================================================
// TransportRouter
// ===========================================================================

TransportRouter::TransportRouter(Transport& fallback) : fallback_(fallback) {
  transports_.push_back(&fallback);
}

void TransportRouter::add_route(int peer, Transport& t) {
  routes_[peer] = &t;
  for (Transport* known : transports_) {
    if (known == &t) return;
  }
  transports_.push_back(&t);
}

void TransportRouter::set_failover(std::uint64_t demote_after,
                                   std::uint64_t restore_after) {
  demote_after_ = demote_after;
  restore_after_ = restore_after;
}

void TransportRouter::note_failure(int peer) {
  if (demote_after_ == 0) return;
  if (routes_.find(peer) == routes_.end()) return;  // fallback-only peer
  PeerHealth& h = health_[peer];
  h.successes = 0;
  ++h.failures;
  if (!h.demoted && h.failures >= demote_after_) {
    h.demoted = true;
    h.failures = 0;
    ++h.demotions;
  }
}

void TransportRouter::note_success(int peer) {
  if (demote_after_ == 0) return;
  if (routes_.find(peer) == routes_.end()) return;
  PeerHealth& h = health_[peer];
  h.failures = 0;
  if (!h.demoted) return;
  ++h.successes;
  if (h.successes >= restore_after_) {
    h.demoted = false;
    h.successes = 0;
    ++h.restores;
  }
}

Transport& TransportRouter::route(int peer) const {
  const auto it = routes_.find(peer);
  if (it == routes_.end()) return fallback_;
  if (demote_after_ != 0) {
    const auto hit = health_.find(peer);
    if (hit != health_.end() && hit->second.demoted) return fallback_;
  }
  return *it->second;
}

bool TransportRouter::poll(netsim::Completion& out) {
  for (Transport* t : transports_) {
    if (t->poll(out)) return true;
  }
  return false;
}

void TransportRouter::set_wakeup(sim::Notifier* n) {
  for (Transport* t : transports_) t->set_wakeup(n);
}

}  // namespace mv2gnc::core
