// A small dependency/trigger graph for the rendezvous engine.
//
// The rndv state machines used to be hand-interleaved `while` loops inside
// advance() — the CPU-polled structure of the paper's Fig. 4(b). The graph
// factors every stage transition (pack-done -> D2H -> vbuf acquire -> RDMA
// -> ack -> unpack) into *trigger nodes* with declared dependencies, so
// advance() becomes graph firing and each transfer path is a graph shape
// (docs/STREAMS.md).
//
// The design constraint is byte-identical scheduling with the legacy loops:
//
//   * A chain is an ordered sequence of one-shot nodes. A kFrontier chain
//     fires nodes strictly in order and stops at the first node whose gate
//     refuses — exactly a `while (cond) { body; ++i; }` frontier loop. A
//     kSparse chain tries every unfired node each pass — exactly a
//     `for (i) if (ready[i] && !done[i])` sweep.
//   * fire() walks the chains in declaration order, once per call, which
//     reproduces the sequential loop layout of the legacy advance().
//   * Gates may have side effects (the legacy break arms withdraw scheduler
//     turns, acquire staging slots, fall back to pinned buffers); they run
//     at most once per pass per considered node, exactly like the loop
//     conditions they replace.
//
// Gates poll sim::EventFlag / cusim::Event state; external events re-drive
// the owner's progress loop, which calls fire() again. Nodes whose gates
// depend on a cusim stream event compose with the stream-triggered ops in
// cuda/runtime.hpp (launch_host_trigger / stream_wait_flag).
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

namespace mv2gnc::core {

/// Per-rank counters for the trigger/stream engine, surfaced by
/// Cluster::print_stats when the stream knobs are active. Aggregated across
/// every transfer and persistent request of the rank.
struct TriggerStats {
  std::uint64_t triggers_fired = 0;      // graph nodes whose action ran
  std::uint64_t graphs_built = 0;        // transfer graphs constructed
  std::uint64_t stream_ops = 0;          // trigger/wait ops enqueued on streams
  std::uint64_t stream_sends = 0;        // isend_on posted
  std::uint64_t stream_recvs = 0;        // irecv_on posted
  std::uint64_t persistent_starts = 0;   // persistent request re-fires
  std::uint64_t plan_cache_hits = 0;     // starts that reused a cached plan
};

class TriggerGraph {
 public:
  /// kFrontier: nodes fire strictly in order; the first refusing gate ends
  /// the pass over the chain. kSparse: every unfired node is offered each
  /// pass, in index order.
  enum class ChainKind { kFrontier, kSparse };

  /// Node readiness predicate. May have side effects (slot acquisition,
  /// scheduler withdrawal); evaluated at most once per node per pass.
  using Gate = std::function<bool()>;
  using Action = std::function<void()>;

  explicit TriggerGraph(TriggerStats* stats = nullptr) : stats_(stats) {}

  /// Append a chain; returns its id. `enabled` (optional) gates the whole
  /// chain each pass — a disabled chain is skipped, epilogue included.
  int add_chain(ChainKind kind, Gate enabled = {});

  /// Append a node to `chain`. An empty gate means always-ready.
  void add_node(int chain, Gate gate, Action action);

  /// Install a per-pass epilogue for `chain`: runs after every pass over
  /// the chain (fired or not), mirroring the post-loop statements of the
  /// legacy advance().
  void set_epilogue(int chain, Action epilogue);

  /// One pass: walk chains in declaration order, firing ready nodes.
  void fire();

  /// Every node in every chain has fired.
  bool complete() const;

  /// Re-arm every node for another firing round (persistent re-fires).
  void reset();

  std::size_t nodes_fired() const { return nodes_fired_; }
  bool empty() const { return chains_.empty(); }
  void clear();

 private:
  struct Node {
    Gate gate;
    Action action;
    bool fired = false;
  };
  struct Chain {
    ChainKind kind = ChainKind::kFrontier;
    Gate enabled;
    Action epilogue;
    std::vector<Node> nodes;
    std::size_t frontier = 0;  // kFrontier: first unfired node
    std::size_t fired = 0;
  };

  std::vector<Chain> chains_;
  std::size_t nodes_fired_ = 0;
  TriggerStats* stats_ = nullptr;
};

}  // namespace mv2gnc::core
