#include "core/sched.hpp"

#include <algorithm>

namespace mv2gnc::core {

namespace {

// Consecutive uncontended grants before the adaptive depth grows a step.
constexpr std::size_t kGrowStreak = 8;

}  // namespace

TransferScheduler::TransferScheduler(sim::Engine& engine, VbufPool& pool,
                                     const Tunables& tun,
                                     TransportRouter& net)
    : engine_(engine),
      pool_(pool),
      tun_(tun),
      net_(net),
      ack_timer_(engine) {
  // Start at the receive window, not the optimistic ceiling: the first
  // transfer of a burst stages before its siblings register, and an
  // opening hoard of the whole pool is exactly what the QoS gate exists
  // to prevent. Calm-time grows earn the extra prefetch depth instead.
  //
  // ECN-only mode (kFifo + ecn_backlog_ns > 0) instead opens at the
  // ceiling: with no QoS gate running, an unmarked pipeline should behave
  // like legacy kFifo, and only fabric marks pull the depth down.
  depth_ = (fair() || !ecn_enabled()) ? depth_init() : depth_max();
}

// ===========================================================================
// Transfer registry
// ===========================================================================

void TransferScheduler::register_transfer(std::uint64_t id,
                                          std::size_t total_bytes) {
  Xfer& x = xfers_[id];
  x.total_bytes = total_bytes;
  x.last_ask = ask_clock_;
  stats_.active_high_water = std::max(stats_.active_high_water, xfers_.size());
}

void TransferScheduler::unregister_transfer(std::uint64_t id) {
  xfers_.erase(id);
  waiting_.erase(std::remove(waiting_.begin(), waiting_.end(), id),
                 waiting_.end());
}

bool TransferScheduler::is_waiting(std::uint64_t id) const {
  const auto it = xfers_.find(id);
  return it != xfers_.end() && it->second.waiting;
}

void TransferScheduler::withdraw(std::uint64_t id) {
  const auto it = xfers_.find(id);
  if (it == xfers_.end() || !it->second.waiting) return;
  it->second.waiting = false;
  waiting_.erase(std::remove(waiting_.begin(), waiting_.end(), id),
                 waiting_.end());
}

// ===========================================================================
// vbuf QoS + fair acquisition
// ===========================================================================

std::size_t TransferScheduler::reserve_effective() const {
  std::size_t r = tun_.vbuf_reserve_per_transfer;
  if (!xfers_.empty()) {
    r = std::min(r, pool_.capacity() / xfers_.size());
  }
  return r;
}

std::size_t TransferScheduler::unmet_reserve_excluding(
    std::uint64_t id) const {
  const std::size_t r = reserve_effective();
  std::size_t unmet = 0;
  for (const auto& [xid, x] : xfers_) {
    if (xid != id && x.held < r) unmet += r - x.held;
  }
  return unmet;
}

void TransferScheduler::prune_waiting() {
  // A transfer that stopped asking moved past its acquisition (acks freed
  // its own slots, or it finished); its queue entry must not gate live
  // claimants. The window is generous — every active transfer re-asks on
  // each progress pass, so a live waiter's stamp stays recent.
  const std::uint64_t window = 4 * xfers_.size() + 16;
  for (auto it = waiting_.begin(); it != waiting_.end();) {
    auto xit = xfers_.find(*it);
    if (xit == xfers_.end() || !xit->second.waiting ||
        ask_clock_ - xit->second.last_ask > window) {
      if (xit != xfers_.end()) xit->second.waiting = false;
      it = waiting_.erase(it);
    } else {
      ++it;
    }
  }
}

std::uint64_t TransferScheduler::overflow_head() const {
  if (tun_.sched_policy == SchedPolicy::kBytesWeighted) {
    std::uint64_t best = waiting_.front();
    std::size_t best_bytes = 0;
    for (const std::uint64_t id : waiting_) {
      const auto it = xfers_.find(id);
      const std::size_t b = (it != xfers_.end()) ? it->second.total_bytes : 0;
      if (b > best_bytes) {
        best = id;
        best_bytes = b;
      }
    }
    return best;
  }
  return waiting_.front();  // kFair: strict round-robin turn order
}

void TransferScheduler::grant(std::uint64_t id, Xfer& x, bool from_reserve) {
  if (x.waiting) {
    stats_.queue_waits += 1;
    stats_.queue_wait_ns += engine_.now() - x.wait_since;
    x.waiting = false;
    waiting_.erase(std::remove(waiting_.begin(), waiting_.end(), id),
                   waiting_.end());
  }
  if (from_reserve) ++stats_.grants_reserve;
  else ++stats_.grants_overflow;
  // Adaptive depth, grow side: sustained grants with most of the pool free
  // and nobody queued mean the contention that shrank us has passed.
  if (waiting_.empty() && pool_.available() * 2 > pool_.capacity()) {
    if (++calm_streak_ >= kGrowStreak && depth_ < depth_max()) {
      ++depth_;
      ++stats_.depth_grows;
      calm_streak_ = 0;
    }
  } else {
    calm_streak_ = 0;
  }
}

void TransferScheduler::deny(std::uint64_t id, Xfer& x, bool pool_contended) {
  ++stats_.denials;
  calm_streak_ = 0;
  if (!x.waiting) {
    x.waiting = true;
    x.wait_since = engine_.now();
    waiting_.push_back(id);
  }
  // Adaptive depth, shrink side: the pool (or the reserves carved from it)
  // cannot cover current demand — halve every transfer's pipeline depth so
  // in-flight chunks, and the slots pinned under them, thin out. Floor at
  // the pool's fair share (capacity / active transfers), but never below 2
  // (double buffering): below the share the shrink cannot relieve
  // contention, it only idles pool slots, and depth 1 serializes staging
  // with transmission — hoarding is the QoS gate's problem, not depth's.
  // Rate limited to one shrink per sweep of the active set, else a single
  // drained-pool episode would collapse depth to the floor in one pass.
  const std::size_t floor = std::max<std::size_t>(
      2, pool_.capacity() / std::max<std::size_t>(1, xfers_.size()));
  if (pool_contended && depth_ > floor &&
      ask_clock_ - last_shrink_ask_ > xfers_.size()) {
    depth_ = std::max(floor, depth_ / 2);
    ++stats_.depth_shrinks;
    last_shrink_ask_ = ask_clock_;
  }
}

bool TransferScheduler::may_acquire(std::uint64_t id) {
  if (!fair()) return true;
  const auto it = xfers_.find(id);
  if (it == xfers_.end()) return true;  // unregistered caller: legacy rules
  Xfer& x = it->second;
  x.last_ask = ++ask_clock_;
  const std::size_t avail = pool_.available();
  if (avail == 0) {
    deny(id, x, /*pool_contended=*/true);
    return false;
  }
  // Reserve region: below its guaranteed minimum a transfer always gets
  // the slot (reserves cannot collide — their sum is bounded by capacity).
  const std::size_t r = reserve_effective();
  if (x.held < r) {
    grant(id, x, /*from_reserve=*/true);
    return true;
  }
  // Overflow region: never dip into slots other transfers' unmet reserves
  // are entitled to, and hand out scarce spare slots in policy order.
  const std::size_t unmet = unmet_reserve_excluding(id);
  if (avail <= unmet) {
    deny(id, x, /*pool_contended=*/true);
    return false;
  }
  const std::size_t spare = avail - unmet;
  prune_waiting();
  if (!waiting_.empty() && spare <= waiting_.size() && overflow_head() != id) {
    deny(id, x, /*pool_contended=*/false);
    return false;
  }
  grant(id, x, /*from_reserve=*/false);
  return true;
}

void TransferScheduler::note_acquired(std::uint64_t id) {
  const auto it = xfers_.find(id);
  if (it != xfers_.end()) ++it->second.held;
}

void TransferScheduler::note_released(std::uint64_t id) {
  const auto it = xfers_.find(id);
  if (it != xfers_.end() && it->second.held > 0) --it->second.held;
}

// ===========================================================================
// Adaptive pipeline depth
// ===========================================================================

std::size_t TransferScheduler::depth_max() const {
  // Staging ahead of the receiver's window is useful prefetch (D2H of
  // later chunks overlaps RDMA of earlier ones), so the optimistic ceiling
  // is the larger of the window and the pool — an uncontended transfer may
  // fill the pool exactly as it would under kFifo; the shrink side takes
  // over when concurrency makes that hoarding.
  std::size_t cap = std::max(tun_.recv_window, pool_.capacity());
  if (tun_.max_inflight_chunks > 0) {
    cap = std::min(cap, tun_.max_inflight_chunks);
  }
  return std::max<std::size_t>(1, cap);
}

std::size_t TransferScheduler::depth_init() const {
  std::size_t cap = tun_.recv_window;
  if (tun_.max_inflight_chunks > 0) {
    cap = std::min(cap, tun_.max_inflight_chunks);
  }
  return std::max<std::size_t>(1, cap);
}

std::size_t TransferScheduler::inflight_cap() const {
  if (!fair()) {
    if (ecn_enabled()) {
      // ECN feedback drives the depth even under kFifo: fabric congestion
      // must be able to throttle the pipeline no matter the vbuf policy.
      std::size_t cap = tun_.max_inflight_chunks > 0
                            ? tun_.max_inflight_chunks
                            : std::numeric_limits<std::size_t>::max();
      return std::min(depth_, cap);
    }
    // Legacy behavior unless the explicit cap is set; no adaptation.
    return tun_.max_inflight_chunks > 0
               ? tun_.max_inflight_chunks
               : std::numeric_limits<std::size_t>::max();
  }
  // A solo transfer runs at the optimistic ceiling (fifo parity). With
  // company, the static part of the cap drops to the receive window (or
  // the pool's fair share when that is larger): newly arrived transfers
  // must not wait for the reactive shrink before early starters stop
  // pre-staging the whole pool.
  std::size_t ceiling = depth_max();
  if (xfers_.size() > 1) {
    ceiling = std::min(
        ceiling,
        std::max(tun_.recv_window, pool_.capacity() / xfers_.size()));
  }
  return std::min(depth_, ceiling);
}

// ===========================================================================
// ECN congestion feedback
// ===========================================================================

void TransferScheduler::note_chunk_ack(std::uint64_t id, bool congested) {
  if (!ecn_enabled()) return;
  ++ecn_ack_clock_;
  if (congested) {
    ++stats_.ecn_marks;
    const auto it = xfers_.find(id);
    if (it != xfers_.end()) ++it->second.ecn_marks;
    ecn_clean_streak_ = 0;
    // Multiplicative decrease, floor 1: unlike pool contention (where a
    // depth below double buffering only idles slots), a congested link is
    // an external resource — backing all the way off is the right answer
    // under persistent incast. Rate-limited to one halving per depth's
    // worth of acks: every chunk of one congested window carries a mark,
    // and they all describe the same episode.
    if (depth_ > 1 && (last_ecn_shrink_ack_ == 0 ||
                       ecn_ack_clock_ - last_ecn_shrink_ack_ > depth_)) {
      depth_ = std::max<std::size_t>(1, depth_ / 2);
      ++stats_.depth_shrinks_ecn;
      ++stats_.depth_shrinks;
      last_ecn_shrink_ack_ = ecn_ack_clock_;
    }
  } else {
    // Hysteresis growth: a full ecn_restore_chunks run of clean acks earns
    // one step back (additive increase), so a transient mark costs real
    // smoke-clearing time before the pipeline re-opens.
    if (++ecn_clean_streak_ >= tun_.ecn_restore_chunks) {
      ecn_clean_streak_ = 0;
      if (depth_ < depth_max()) {
        ++depth_;
        ++stats_.depth_grows_ecn;
        ++stats_.depth_grows;
      }
    }
  }
}

std::uint64_t TransferScheduler::transfer_ecn_marks(std::uint64_t id) const {
  const auto it = xfers_.find(id);
  return it == xfers_.end() ? 0 : it->second.ecn_marks;
}

// ===========================================================================
// Ack/credit coalescing
// ===========================================================================

void TransferScheduler::queue_ack(int peer, const AckBatchEntry& entry,
                                  std::size_t flush_after) {
  PendingAck p;
  p.peer = peer;
  p.entry = entry;
  p.deadline = engine_.now() + tun_.ack_coalesce_window_ns;
  pending_.push_back(p);
  if (flush_after > 0) {
    // Credit-flow valve: enough of this transfer's credits are pending
    // that the sender may be about to stall on them — send them now.
    std::size_t same = 0;
    for (const PendingAck& q : pending_) {
      if (q.peer == peer && q.entry.sender_req == entry.sender_req) ++same;
    }
    if (same >= flush_after) {
      flush_peer_impl(peer, /*piggyback=*/false);
      return;
    }
  }
  rearm_ack_timer();
}

void TransferScheduler::poll() {
  const sim::SimTime now = engine_.now();
  while (!pending_.empty() && pending_.front().deadline <= now) {
    // Flushing a peer takes everything pending for it, including entries
    // whose window has not expired yet — flushing a credit early is always
    // safe, and it maximizes what the one message carries.
    flush_peer_impl(pending_.front().peer, /*piggyback=*/false);
  }
  rearm_ack_timer();
}

void TransferScheduler::flush_peer_impl(int peer, bool piggyback) {
  std::vector<AckBatchEntry> batch;
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->peer == peer) {
      batch.push_back(it->entry);
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  if (batch.empty()) return;
  if (piggyback) stats_.ack_piggybacks += batch.size();
  netsim::WireMessage msg;
  msg.seq = ctrl_seq_++;
  if (batch.size() == 1) {
    // A lone ack goes out in the legacy format: no batch framing overhead,
    // and a peer predating kChunkAckBatch still understands it.
    const AckBatchEntry& e = batch.front();
    msg.kind = kChunkAck;
    msg.flow = e.sender_req;
    msg.header[0] = e.sender_req;
    msg.header[1] = e.chunk_idx;
    msg.header[2] = e.slot_idx;
    msg.header[3] = e.credit_seq;
    msg.header[4] = e.congested ? 1 : 0;
    if (e.slot_idx != kNoSlot) append_address(msg.payload, e.slot_addr);
    note_ctrl(kChunkAck);
  } else {
    msg.kind = kChunkAckBatch;
    msg.header[0] = batch.size();
    for (const AckBatchEntry& e : batch) append_ack_entry(msg.payload, e);
    ++stats_.ack_batches;
    stats_.acks_coalesced += batch.size();
    note_ctrl(kChunkAckBatch);
  }
  net_.post_send(peer, std::move(msg));
  rearm_ack_timer();
}

void TransferScheduler::drop_pending(int peer, std::uint64_t sender_req) {
  for (auto it = pending_.begin(); it != pending_.end();) {
    if (it->peer == peer && it->entry.sender_req == sender_req) {
      it = pending_.erase(it);
    } else {
      ++it;
    }
  }
  rearm_ack_timer();
}

void TransferScheduler::rearm_ack_timer() {
  if (pending_.empty()) {
    ack_timer_.cancel();
    return;
  }
  const sim::SimTime at = pending_.front().deadline;
  if (ack_timer_.armed() && ack_timer_.deadline() == at) return;
  sim::Notifier* n = notifier_;
  // Wake-up only; the flush itself runs in poll() on the progress loop.
  ack_timer_.arm(at, [n] {
    if (n != nullptr) n->notify();
  });
}

// ===========================================================================
// Observability
// ===========================================================================

void TransferScheduler::note_ctrl(int kind) {
  if (kind >= 0 && static_cast<std::size_t>(kind) < SchedStats::kMaxKind) {
    ++stats_.ctrl_by_kind[static_cast<std::size_t>(kind)];
  }
  if (kind == kChunkAck) ++stats_.acks_individual;
}

}  // namespace mv2gnc::core
