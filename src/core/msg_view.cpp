#include "core/msg_view.hpp"

#include <stdexcept>

namespace mv2gnc::core {

MsgView MsgView::make(void* base, int count, const mpisim::Datatype& dtype,
                      const gpu::MemoryRegistry& registry) {
  if (count < 0) throw std::invalid_argument("MsgView: negative count");
  if (!dtype.valid()) throw std::invalid_argument("MsgView: null datatype");
  if (!dtype.committed()) {
    throw std::logic_error("MsgView: datatype must be committed: " +
                           dtype.describe());
  }
  MsgView v;
  v.base = base;
  v.count = count;
  v.dtype = dtype;
  v.plan = PlanCache::instance().get(dtype, count);
  v.packed_bytes = v.plan->packed_bytes();
  v.contiguous = dtype.is_contiguous();
  if (auto info = registry.query(base)) {
    v.on_device = true;
    v.device_id = info->device_id;
  }
  v.pattern = v.plan->pattern();
  return v;
}

std::byte* MsgView::first_segment_ptr() const {
  const auto& segs = dtype.segments();
  if (segs.empty()) return static_cast<std::byte*>(base);
  return static_cast<std::byte*>(base) + segs.front().offset;
}

}  // namespace mv2gnc::core
