// Pack-plan engine: canonicalized, cached transfer plans for derived
// datatypes (the hot-path companion of docs/DATATYPE.md).
//
// Every send of a non-trivial datatype used to re-derive the same facts —
// contiguity, vector pattern, segment counts, chunk boundaries — from the
// committed type tree. A PackPlan computes them once per canonical
// (type, count) pair and a process-wide LRU cache (PlanCache) shares the
// result across sends, ranks and retransmissions:
//
//   * canonicalization: the plan is keyed on the *flattened* layout, so a
//     contiguous-of-contiguous tree folds into a plain contiguous plan, a
//     vector-of-vector collapses into one strided-block pattern, and two
//     structurally identical trees built through different constructor
//     sequences dedupe onto one plan (signature-level second cache tier);
//   * chunk cursors: per pipeline-chunk resumable PackCursors plus exact
//     per-chunk segment counts, so chunked host pack/unpack is O(segments
//     in range) with zero per-chunk searching, and a retransmitted chunk
//     reuses the stored plan verbatim;
//   * sub-pattern decomposition: an irregular segment list is grouped into
//     maximal uniform (block, stride, rows) runs so the device path can
//     issue a few batched 2-D copies instead of a degenerate per-row
//     gather kernel.
#pragma once

#include <cstddef>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>
#include <vector>

#include "mpi/datatype.hpp"

namespace mv2gnc::core {

/// One maximal uniform run of the flattened count-element layout: `rows`
/// blocks of `block` bytes, every `stride` bytes, starting `first_offset`
/// bytes from the message base, covering packed-stream range
/// [packed_offset, packed_offset + rows*block).
struct SubPattern {
  std::int64_t first_offset = 0;
  std::size_t rows = 0;
  std::size_t block = 0;
  std::int64_t stride = 0;  // undefined when rows == 1
  std::size_t packed_offset = 0;

  std::size_t packed_bytes() const { return rows * block; }
};

/// Shape class of the flattened layout, most to least regular.
enum class LayoutClass {
  kContiguous,    // one dense run; no pack step needed
  kSingleVector,  // whole message is one uniform 2-D pattern
  kSubPatterned,  // a few uniform sub-patterns (batched 2-D copies)
  kIrregular,     // too fragmented; generalized gather kernel
};

/// Counters of the process-wide plan cache.
struct PlanCacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;          // plans built from scratch
  std::uint64_t signature_dedups = 0;  // distinct tree, same canonical form
  std::uint64_t evictions = 0;

  std::uint64_t lookups() const { return hits + misses; }
  double hit_rate() const {
    const std::uint64_t n = lookups();
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

/// Immutable transfer plan for one canonical (type, count) message.
/// Cheap to share (held by shared_ptr in every MsgView that uses it).
class PackPlan {
 public:
  /// Cursor table for one pipeline chunk size: chunk i starts at
  /// cursors[i] and spans exactly segments[i] contiguous runs.
  struct ChunkCursors {
    std::size_t chunk = 0;
    std::size_t count = 0;
    std::vector<mpisim::PackCursor> cursors;
    std::vector<std::size_t> segments;
  };

  /// Build a plan directly (bypassing the cache); used by PlanCache and by
  /// benchmarks measuring the uncached planning cost.
  static std::shared_ptr<const PackPlan> build(const mpisim::Datatype& dtype,
                                               int count);

  /// FNV-1a over the flattened layout (+ extent): structurally identical
  /// trees hash identically regardless of constructor nesting.
  std::uint64_t signature() const { return signature_; }
  int count() const { return count_; }
  std::size_t elem_size() const { return elem_size_; }
  std::size_t packed_bytes() const { return packed_bytes_; }
  std::int64_t extent() const { return extent_; }
  bool contiguous() const { return layout_ == LayoutClass::kContiguous; }
  LayoutClass layout() const { return layout_; }
  const std::optional<mpisim::VectorPattern>& pattern() const {
    return pattern_;
  }
  /// Total contiguous runs across the whole message (memcpy-call count of a
  /// full host pack).
  std::size_t total_segments() const { return total_segments_; }
  /// Uniform sub-patterns covering the full packed stream, in packed-stream
  /// order. Empty for kContiguous and kIrregular.
  const std::vector<SubPattern>& subpatterns() const { return subpatterns_; }
  const mpisim::Datatype& dtype() const { return dtype_; }

  /// Exact number of contiguous runs touched by packed-stream range
  /// [offset, offset+bytes) — the memcpy count of a chunked host pack
  /// (seam-merged element boundaries count per element, matching the pack
  /// loop's actual copy calls). O(log nsegs).
  std::size_t segments_in_range(std::size_t offset, std::size_t bytes) const;

  /// Cursor table for `chunk`-byte pipeline chunks. Memoized per chunk
  /// size, so retransmissions and repeated sends of the same (type, count,
  /// chunk) reuse the stored table verbatim.
  std::shared_ptr<const ChunkCursors> chunk_cursors(std::size_t chunk) const;

 private:
  PackPlan() = default;

  std::uint64_t signature_ = 0;
  int count_ = 0;
  std::size_t elem_size_ = 0;
  std::size_t packed_bytes_ = 0;
  std::int64_t extent_ = 0;
  LayoutClass layout_ = LayoutClass::kIrregular;
  std::optional<mpisim::VectorPattern> pattern_;
  std::size_t total_segments_ = 0;
  std::vector<SubPattern> subpatterns_;
  mpisim::Datatype dtype_;  // pins the committed tree the cursors index

  mutable std::mutex chunk_mu_;
  mutable std::map<std::size_t, std::shared_ptr<const ChunkCursors>>
      chunk_tables_;
};

/// Process-wide LRU plan cache. Two tiers:
///   1. a pointer-keyed fast path on (type handle, count) — O(1)-ish, the
///      common repeated-send case;
///   2. a canonical-signature tier that dedupes structurally identical
///      trees built through different constructor sequences.
/// Entries pin their Datatype handles, so a pointer key can never alias a
/// recycled node address.
class PlanCache {
 public:
  static PlanCache& instance();

  /// Fetch (or build and insert) the plan for a committed (type, count).
  std::shared_ptr<const PackPlan> get(const mpisim::Datatype& dtype,
                                      int count);

  PlanCacheStats stats() const;
  std::size_t size() const;
  std::size_t capacity() const;
  void set_capacity(std::size_t cap);
  /// Drop every entry and zero the counters (tests and benchmarks).
  void reset();

 private:
  explicit PlanCache(std::size_t capacity) : capacity_(capacity) {}

  using SigKey = std::pair<std::uint64_t, int>;   // (signature, count)
  using NodeKey = std::pair<const void*, int>;    // (tree identity, count)
  struct Entry {
    SigKey key;
    std::shared_ptr<const PackPlan> plan;
    std::vector<NodeKey> aliases;          // fast-path keys pointing here
    std::vector<mpisim::Datatype> pins;    // keep aliased nodes alive
  };

  void touch(std::list<Entry>::iterator it);
  void evict_excess();

  mutable std::mutex mu_;
  std::size_t capacity_;
  std::list<Entry> lru_;  // front = most recent
  std::map<SigKey, std::list<Entry>::iterator> by_sig_;
  std::map<NodeKey, std::list<Entry>::iterator> by_node_;
  PlanCacheStats stats_;
};

}  // namespace mv2gnc::core
