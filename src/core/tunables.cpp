#include "core/tunables.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace mv2gnc::core {

sim::SimTime Tunables::host_pack_time(std::size_t bytes,
                                      std::size_t segments) const {
  return static_cast<sim::SimTime>(static_cast<double>(bytes) / host_pack_bw +
                                   static_cast<double>(segments) *
                                       host_seg_overhead_ns);
}

void Tunables::validate() const {
  if (chunk_bytes == 0) {
    throw std::invalid_argument("tunables: chunk_bytes must be > 0");
  }
  if (vbuf_count < 2) {
    throw std::invalid_argument("tunables: vbuf_count must be >= 2");
  }
  if (recv_window == 0) {
    throw std::invalid_argument("tunables: recv_window must be > 0");
  }
  if (recv_window > vbuf_count) {
    throw std::invalid_argument(
        "tunables: recv_window cannot exceed vbuf_count");
  }
  if (vbuf_reserve_per_transfer > vbuf_count) {
    throw std::invalid_argument(
        "tunables: vbuf_reserve_per_transfer cannot exceed vbuf_count");
  }
  if (ranks_per_node == 0) {
    throw std::invalid_argument("tunables: ranks_per_node must be >= 1");
  }
  if (rndv_timeout_ns <= 0) {
    throw std::invalid_argument("tunables: rndv_timeout_ns must be > 0");
  }
  if (ack_coalesce_window_ns < 0) {
    throw std::invalid_argument(
        "tunables: ack_coalesce_window_ns must be >= 0");
  }
  if (ack_coalesce_window_ns >= rndv_timeout_ns) {
    // Held acks look like silence to the sender's retransmission deadline;
    // a window at or above the timeout would retransmit every chunk.
    throw std::invalid_argument(
        "tunables: ack_coalesce_window_ns must be below rndv_timeout_ns");
  }
  if (rndv_backoff_factor < 1.0) {
    throw std::invalid_argument(
        "tunables: rndv_backoff_factor must be >= 1.0");
  }
  if (rank_skew_ns < 0) {
    throw std::invalid_argument("tunables: rank_skew_ns must be >= 0");
  }
  if (rank_stall_prob < 0.0 || rank_stall_prob > 1.0) {
    throw std::invalid_argument(
        "tunables: rank_stall_prob must be in [0, 1]");
  }
  if (rank_stall_ns < 0) {
    throw std::invalid_argument("tunables: rank_stall_ns must be >= 0");
  }
  if (ecn_backlog_ns < 0) {
    throw std::invalid_argument("tunables: ecn_backlog_ns must be >= 0");
  }
  if (ecn_restore_chunks == 0) {
    // Zero would mean "grow back immediately on any clean ack", defeating
    // the hysteresis the knob exists to provide.
    throw std::invalid_argument(
        "tunables: ecn_restore_chunks must be >= 1");
  }
  if (transport_restore_threshold == 0) {
    throw std::invalid_argument(
        "tunables: transport_restore_threshold must be >= 1");
  }
  if (coll_slice_bytes != 0 && (coll_slice_bytes % 8 != 0)) {
    throw std::invalid_argument(
        "tunables: coll_slice_bytes must be 0 (model-selected) or a "
        "multiple of 8");
  }
  if (coll_device == CollDevice::kPipelined && !gpu_offload) {
    // The pipelined path exists to overlap GPU-side staging; forcing it
    // while disavowing GPU offload is a contradiction — auto degrades to
    // staged instead.
    throw std::invalid_argument(
        "tunables: coll_device = pipelined requires gpu_offload = true");
  }
  if (coll_watchdog_factor < 1.0) {
    throw std::invalid_argument(
        "tunables: coll_watchdog_factor must be >= 1.0");
  }
  if (host_pack_bw <= 0.0) {
    throw std::invalid_argument("tunables: host_pack_bw must be positive");
  }
  if (host_seg_overhead_ns < 0.0) {
    throw std::invalid_argument(
        "tunables: host_seg_overhead_ns must be non-negative");
  }
}

namespace {

bool parse_bool(const std::string& v, const std::string& key) {
  if (v == "true" || v == "1" || v == "yes") return true;
  if (v == "false" || v == "0" || v == "no") return false;
  throw std::invalid_argument("tunables: bad boolean for " + key + ": " + v);
}

ChunkSelect parse_chunk_select(const std::string& v) {
  if (v == "model") return ChunkSelect::kModel;
  if (v == "fixed") return ChunkSelect::kFixed;
  throw std::invalid_argument(
      "tunables: chunk_select must be 'model' or 'fixed', got: " + v);
}

SchemeSelect parse_scheme_select(const std::string& v) {
  if (v == "model") return SchemeSelect::kModel;
  if (v == "tunable") return SchemeSelect::kTunable;
  throw std::invalid_argument(
      "tunables: scheme_select must be 'model' or 'tunable', got: " + v);
}

TransportSelect parse_transport_select(const std::string& v) {
  if (v == "auto") return TransportSelect::kAuto;
  if (v == "fabric") return TransportSelect::kFabric;
  throw std::invalid_argument(
      "tunables: transport_select must be 'auto' or 'fabric', got: " + v);
}

CollSelect parse_coll_select(const std::string& v) {
  if (v == "auto") return CollSelect::kAuto;
  if (v == "flat") return CollSelect::kFlat;
  if (v == "hier") return CollSelect::kHier;
  throw std::invalid_argument(
      "tunables: coll_select must be 'auto', 'flat' or 'hier', got: " + v);
}

CollDevice parse_coll_device(const std::string& v) {
  if (v == "staged") return CollDevice::kStaged;
  if (v == "pipelined") return CollDevice::kPipelined;
  if (v == "auto") return CollDevice::kAuto;
  throw std::invalid_argument(
      "tunables: coll_device must be 'staged', 'pipelined' or 'auto', got: " +
      v);
}

const char* coll_device_name(CollDevice d) {
  switch (d) {
    case CollDevice::kStaged: return "staged";
    case CollDevice::kPipelined: return "pipelined";
    case CollDevice::kAuto: return "auto";
  }
  return "staged";
}

const char* coll_select_name(CollSelect s) {
  switch (s) {
    case CollSelect::kAuto: return "auto";
    case CollSelect::kFlat: return "flat";
    case CollSelect::kHier: return "hier";
  }
  return "auto";
}

SchedPolicy parse_sched_policy(const std::string& v) {
  if (v == "fifo") return SchedPolicy::kFifo;
  if (v == "fair") return SchedPolicy::kFair;
  if (v == "bytes") return SchedPolicy::kBytesWeighted;
  throw std::invalid_argument(
      "tunables: sched_policy must be 'fifo', 'fair' or 'bytes', got: " + v);
}

RouteSelect parse_route_select(const std::string& v) {
  if (v == "dmodk") return RouteSelect::kDmodK;
  if (v == "hash") return RouteSelect::kHash;
  if (v == "adaptive") return RouteSelect::kAdaptive;
  throw std::invalid_argument(
      "tunables: route_select must be 'dmodk', 'hash' or 'adaptive', got: " +
      v);
}

const char* route_select_name(RouteSelect r) {
  switch (r) {
    case RouteSelect::kDmodK: return "dmodk";
    case RouteSelect::kHash: return "hash";
    case RouteSelect::kAdaptive: return "adaptive";
  }
  return "dmodk";
}

TriggerMode parse_trigger_mode(const std::string& v) {
  if (v == "polled") return TriggerMode::kPolled;
  if (v == "stream") return TriggerMode::kStream;
  throw std::invalid_argument(
      "tunables: trigger_mode must be 'polled' or 'stream', got: " + v);
}

const char* trigger_mode_name(TriggerMode m) {
  switch (m) {
    case TriggerMode::kPolled: return "polled";
    case TriggerMode::kStream: return "stream";
  }
  return "polled";
}

const char* sched_policy_name(SchedPolicy p) {
  switch (p) {
    case SchedPolicy::kFifo: return "fifo";
    case SchedPolicy::kFair: return "fair";
    case SchedPolicy::kBytesWeighted: return "bytes";
  }
  return "fifo";
}

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t\r");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t\r");
  return s.substr(b, e - b + 1);
}

}  // namespace

Tunables Tunables::from_stream(std::istream& in) {
  Tunables t;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    line = trim(line);
    if (line.empty()) continue;
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::invalid_argument("tunables: missing '=' on line " +
                                  std::to_string(lineno));
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    try {
      if (key == "eager_threshold") t.eager_threshold = std::stoull(value);
      else if (key == "chunk_bytes") t.chunk_bytes = std::stoull(value);
      else if (key == "pipeline_threshold") t.pipeline_threshold = std::stoull(value);
      else if (key == "vbuf_count") t.vbuf_count = std::stoull(value);
      else if (key == "recv_window") t.recv_window = std::stoull(value);
      else if (key == "gpu_offload") t.gpu_offload = parse_bool(value, key);
      else if (key == "chunk_select") t.chunk_select = parse_chunk_select(value);
      else if (key == "scheme_select") t.scheme_select = parse_scheme_select(value);
      else if (key == "pipelining") t.pipelining = parse_bool(value, key);
      else if (key == "rget") t.rget = parse_bool(value, key);
      else if (key == "sched_policy") t.sched_policy = parse_sched_policy(value);
      else if (key == "ranks_per_node") t.ranks_per_node = std::stoull(value);
      else if (key == "transport_select") t.transport_select = parse_transport_select(value);
      else if (key == "coll_select") t.coll_select = parse_coll_select(value);
      else if (key == "coll_device") t.coll_device = parse_coll_device(value);
      else if (key == "coll_slice_bytes") t.coll_slice_bytes = std::stoull(value);
      else if (key == "route_select") t.route_select = parse_route_select(value);
      else if (key == "trigger_mode") t.trigger_mode = parse_trigger_mode(value);
      else if (key == "persistent_plan_cache") t.persistent_plan_cache = parse_bool(value, key);
      else if (key == "ecn_backlog_ns") t.ecn_backlog_ns = std::stoll(value);
      else if (key == "ecn_restore_chunks") t.ecn_restore_chunks = std::stoull(value);
      else if (key == "vbuf_reserve_per_transfer") t.vbuf_reserve_per_transfer = std::stoull(value);
      else if (key == "max_inflight_chunks") t.max_inflight_chunks = std::stoull(value);
      else if (key == "ack_coalesce_window_ns") t.ack_coalesce_window_ns = std::stoll(value);
      else if (key == "rndv_timeout_ns") t.rndv_timeout_ns = std::stoll(value);
      else if (key == "rndv_max_retries") t.rndv_max_retries = std::stoull(value);
      else if (key == "rndv_backoff_factor") t.rndv_backoff_factor = std::stod(value);
      else if (key == "rank_skew_ns") t.rank_skew_ns = std::stoll(value);
      else if (key == "rank_stall_prob") t.rank_stall_prob = std::stod(value);
      else if (key == "rank_stall_ns") t.rank_stall_ns = std::stoll(value);
      else if (key == "transport_failover_threshold") t.transport_failover_threshold = std::stoull(value);
      else if (key == "transport_restore_threshold") t.transport_restore_threshold = std::stoull(value);
      else if (key == "coll_watchdog_factor") t.coll_watchdog_factor = std::stod(value);
      else if (key == "host_pack_bw") t.host_pack_bw = std::stod(value);
      else if (key == "host_seg_overhead_ns") t.host_seg_overhead_ns = std::stod(value);
      else {
        throw std::invalid_argument("tunables: unknown key '" + key +
                                    "' on line " + std::to_string(lineno));
      }
    } catch (const std::invalid_argument&) {
      throw;
    } catch (const std::exception&) {
      throw std::invalid_argument("tunables: bad value for " + key + ": " +
                                  value);
    }
  }
  t.validate();
  return t;
}

Tunables Tunables::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::invalid_argument("tunables: cannot open config file " + path);
  }
  return from_stream(in);
}

std::string Tunables::to_config_string() const {
  std::ostringstream os;
  os << "# MV2-GPU-NC tunables\n"
     << "eager_threshold = " << eager_threshold << "\n"
     << "chunk_bytes = " << chunk_bytes << "\n"
     << "pipeline_threshold = " << pipeline_threshold << "\n"
     << "vbuf_count = " << vbuf_count << "\n"
     << "recv_window = " << recv_window << "\n"
     << "gpu_offload = " << (gpu_offload ? "true" : "false") << "\n"
     << "chunk_select = "
     << (chunk_select == ChunkSelect::kModel ? "model" : "fixed") << "\n"
     << "scheme_select = "
     << (scheme_select == SchemeSelect::kModel ? "model" : "tunable") << "\n"
     << "pipelining = " << (pipelining ? "true" : "false") << "\n"
     << "rget = " << (rget ? "true" : "false") << "\n"
     << "sched_policy = " << sched_policy_name(sched_policy) << "\n"
     << "ranks_per_node = " << ranks_per_node << "\n"
     << "transport_select = "
     << (transport_select == TransportSelect::kAuto ? "auto" : "fabric")
     << "\n"
     << "coll_select = " << coll_select_name(coll_select) << "\n"
     << "coll_device = " << coll_device_name(coll_device) << "\n"
     << "coll_slice_bytes = " << coll_slice_bytes << "\n"
     << "route_select = " << route_select_name(route_select) << "\n"
     << "trigger_mode = " << trigger_mode_name(trigger_mode) << "\n"
     << "persistent_plan_cache = "
     << (persistent_plan_cache ? "true" : "false") << "\n"
     << "ecn_backlog_ns = " << ecn_backlog_ns << "\n"
     << "ecn_restore_chunks = " << ecn_restore_chunks << "\n"
     << "vbuf_reserve_per_transfer = " << vbuf_reserve_per_transfer << "\n"
     << "max_inflight_chunks = " << max_inflight_chunks << "\n"
     << "ack_coalesce_window_ns = " << ack_coalesce_window_ns << "\n"
     << "rndv_timeout_ns = " << rndv_timeout_ns << "\n"
     << "rndv_max_retries = " << rndv_max_retries << "\n"
     << "rndv_backoff_factor = " << rndv_backoff_factor << "\n"
     << "rank_skew_ns = " << rank_skew_ns << "\n"
     << "rank_stall_prob = " << rank_stall_prob << "\n"
     << "rank_stall_ns = " << rank_stall_ns << "\n"
     << "transport_failover_threshold = " << transport_failover_threshold
     << "\n"
     << "transport_restore_threshold = " << transport_restore_threshold
     << "\n"
     << "coll_watchdog_factor = " << coll_watchdog_factor << "\n"
     << "host_pack_bw = " << host_pack_bw << "\n"
     << "host_seg_overhead_ns = " << host_seg_overhead_ns << "\n";
  return os.str();
}

}  // namespace mv2gnc::core
