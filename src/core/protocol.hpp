// Wire-protocol message kinds and header layouts for the MV2-GPU-NC
// rendezvous (paper Fig. 3): RTS -> CTS(vbuf addresses) -> chunked RDMA
// writes, each followed by a "RDMA write finish" immediate, plus CHUNK_ACK
// messages that acknowledge each chunk and re-advertise landing buffers as
// the receiver drains them (the paper's CREDIT, fused with the per-chunk
// acknowledgement the reliability layer needs). An optional receiver-driven
// variant (RGET) short-circuits the CTS leg: RTS carries the source
// address, the receiver RDMA-READs, then sends kRndvDone.
//
// Every control message carries WireMessage::seq so a retransmitted copy
// arriving after the original can be recognized and dropped; receipt of any
// control message must be idempotent (see docs/RELIABILITY.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <vector>

#include "net/wire.hpp"

namespace mv2gnc::core {

/// WireMessage.kind values. User-visible eager data and every control
/// message of the rendezvous pipeline.
enum MsgKind : int {
  kEager = 1,     // h0=tag, h1=packed size; payload = packed bytes
  kRts = 2,       // h0=tag, h1=packed size, h2=sender req id
  kCts = 3,       // h0=sender req, h1=recv req, h2=mode, h3=slot count;
                  // payload = slot addresses (u64 each); direct mode: one
                  // address (the receive buffer itself)
  kChunkFin = 4,  // h0=recv req, h1=chunk idx, h2=slot idx, h3=offset,
                  // h4=bytes  — the "RDMA write finish" message
  kChunkAck = 5,  // h0=sender req, h1=acked chunk idx, h2=recycled slot idx
                  //   (kNoSlot if none), h3=credit seq, h4=ECN echo (1 when
                  //   the acked chunk's fin carried a congestion mark);
                  //   payload = recycled slot address — per-chunk ack with
                  //   the CREDIT fused in
  kRndvDone = 6,  // h0=sender req, h1=recv req — receiver-driven (RGET)
                  //   completion
  kSendDone = 7,  // h0=recv req — sender has seen every ack (or the RGET
                  //   done); the receiver may release its remaining landing
                  //   slots and forget the transfer
  kRtsAck = 8,    // h0=sender req — the RTS arrived but no matching recv is
                  //   posted yet; refreshes the sender's retry budget so an
                  //   arbitrarily late recv is never mistaken for loss
  kSendDoneAck = 9,  // h0=sender req — direct-mode receiver confirms the
                  //   SEND_DONE, ending the sender's retransmission of it
  kSendAbort = 10,   // h0=recv req — best-effort notice that the sender
                  //   failed the transfer permanently; the receiver fails
                  //   its request instead of waiting out its watchdog
  kChunkAckBatch = 11,  // h0=entry count; payload = AckBatchEntry records —
                  //   CHUNK_ACKs (credits included) coalesced within the
                  //   ack_coalesce_window_ns delivery window into one
                  //   control message, possibly spanning several transfers
                  //   bound for the same peer
  kCollAbort = 12,  // h0=communicator context, h1=collective sequence number
                  //   within that context, h2=origin world rank — the
                  //   COLL_ABORT wave (docs/RELIABILITY.md): a rank whose
                  //   collective failed tells every group member to abandon
                  //   the operation instead of blocking on it
  kInternal = 64, // first kind value available to higher layers
};

/// kChunkAck h2 value meaning "this ack recycles no landing slot".
inline constexpr std::uint64_t kNoSlot = ~std::uint64_t{0};

/// CTS landing modes.
enum class CtsMode : std::uint64_t {
  kStaged = 0,  // sender writes into advertised vbuf slots
  kDirect = 1,  // receiver buffer is host-contiguous: write straight in
};

/// Serialize an address list into a message payload.
inline void append_address(std::vector<std::byte>& payload, const void* addr) {
  const auto v = reinterpret_cast<std::uintptr_t>(addr);
  const auto* p = reinterpret_cast<const std::byte*>(&v);
  payload.insert(payload.end(), p, p + sizeof(v));
}

/// Read the i-th serialized address back out of a payload.
inline void* read_address(const std::vector<std::byte>& payload,
                          std::size_t i) {
  std::uintptr_t v = 0;
  std::memcpy(&v, payload.data() + i * sizeof(v), sizeof(v));
  return reinterpret_cast<void*>(v);
}

/// Number of addresses in a payload.
inline std::size_t address_count(const std::vector<std::byte>& payload) {
  return payload.size() / sizeof(std::uintptr_t);
}

/// One coalesced CHUNK_ACK inside a kChunkAckBatch payload: the fields of
/// an individual kChunkAck (h0..h3 + credit address), flattened.
struct AckBatchEntry {
  std::uint64_t sender_req = 0;
  std::uint64_t chunk_idx = 0;
  std::uint64_t slot_idx = kNoSlot;  // kNoSlot: no credit rides on this ack
  std::uint64_t credit_seq = 0;
  void* slot_addr = nullptr;         // recycled landing address (credit)
  bool congested = false;            // ECN echo: the acked chunk's fin
                                     // carried a fabric congestion mark
};

inline void append_ack_entry(std::vector<std::byte>& payload,
                             const AckBatchEntry& e) {
  const std::uint64_t words[6] = {
      e.sender_req, e.chunk_idx, e.slot_idx, e.credit_seq,
      static_cast<std::uint64_t>(reinterpret_cast<std::uintptr_t>(e.slot_addr)),
      e.congested ? std::uint64_t{1} : std::uint64_t{0}};
  const auto* p = reinterpret_cast<const std::byte*>(words);
  payload.insert(payload.end(), p, p + sizeof(words));
}

inline AckBatchEntry read_ack_entry(const std::vector<std::byte>& payload,
                                    std::size_t i) {
  std::uint64_t words[6];
  std::memcpy(words, payload.data() + i * sizeof(words), sizeof(words));
  AckBatchEntry e;
  e.sender_req = words[0];
  e.chunk_idx = words[1];
  e.slot_idx = words[2];
  e.credit_seq = words[3];
  e.slot_addr = reinterpret_cast<void*>(
      static_cast<std::uintptr_t>(words[4]));
  e.congested = words[5] != 0;
  return e;
}

inline std::size_t ack_entry_count(const std::vector<std::byte>& payload) {
  return payload.size() / (6 * sizeof(std::uint64_t));
}

}  // namespace mv2gnc::core
