#include "core/pack_plan.hpp"

#include <algorithm>
#include <stdexcept>

namespace mv2gnc::core {

namespace {

using mpisim::Datatype;
using mpisim::PackCursor;
using mpisim::Segment;
using mpisim::VectorPattern;

// FNV-1a over the canonical (flattened) layout. Constructor nesting that
// flattens to the same segment list hashes identically: contiguous within
// contiguous folds, vector-of-vector collapses, struct-vs-hindexed
// spellings of one layout dedupe.
std::uint64_t layout_signature(const Datatype& dtype) {
  constexpr std::uint64_t kBasis = 14695981039346656037ull;
  constexpr std::uint64_t kPrime = 1099511628211ull;
  std::uint64_t h = kBasis;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (i * 8)) & 0xff;
      h *= kPrime;
    }
  };
  mix(static_cast<std::uint64_t>(dtype.size()));
  mix(static_cast<std::uint64_t>(dtype.extent()));
  const auto& segs = dtype.segments();
  mix(segs.size());
  for (const Segment& s : segs) {
    mix(static_cast<std::uint64_t>(s.offset));
    mix(s.length);
  }
  return h;
}

// Expansion bound: beyond this many flattened runs the decomposition is
// skipped and the layout is classified kIrregular outright (the generalized
// kernel handles it; an O(runs) plan build would dwarf any win).
constexpr std::size_t kMaxExpandedRuns = std::size_t{1} << 16;

// A decomposition only beats the per-row generalized kernel when each 2-D
// copy amortizes its launch over enough rows.
constexpr std::size_t kMinAvgRowsPerSubPattern = 4;

void append_merged(std::vector<Segment>& out, std::int64_t offset,
                   std::size_t length) {
  if (length == 0) return;
  if (!out.empty() &&
      out.back().offset + static_cast<std::int64_t>(out.back().length) ==
          offset) {
    out.back().length += length;
    return;
  }
  out.push_back(Segment{offset, length});
}

// Greedy maximal grouping of the full flattened run list into uniform
// (block, stride, rows) sub-patterns, in packed-stream order.
std::vector<SubPattern> decompose(const std::vector<Segment>& full) {
  std::vector<SubPattern> subs;
  std::size_t i = 0;
  std::size_t packed = 0;
  while (i < full.size()) {
    SubPattern sp;
    sp.first_offset = full[i].offset;
    sp.block = full[i].length;
    sp.rows = 1;
    sp.stride = static_cast<std::int64_t>(full[i].length);
    sp.packed_offset = packed;
    if (i + 1 < full.size() && full[i + 1].length == sp.block) {
      const std::int64_t stride = full[i + 1].offset - full[i].offset;
      // memcpy2d legality: positive stride no smaller than the row width.
      if (stride >= static_cast<std::int64_t>(sp.block)) {
        std::size_t j = i + 1;
        while (j < full.size() && full[j].length == sp.block &&
               full[j].offset - full[j - 1].offset == stride) {
          ++j;
        }
        sp.rows = j - i;
        sp.stride = stride;
      }
    }
    packed += sp.packed_bytes();
    i += sp.rows;
    subs.push_back(sp);
  }
  return subs;
}

}  // namespace

std::shared_ptr<const PackPlan> PackPlan::build(const Datatype& dtype,
                                                int count) {
  if (!dtype.valid() || !dtype.committed()) {
    throw std::logic_error("PackPlan: datatype must be committed");
  }
  auto plan = std::shared_ptr<PackPlan>(new PackPlan());
  plan->dtype_ = dtype;
  plan->count_ = count;
  plan->elem_size_ = dtype.size();
  plan->extent_ = dtype.extent();
  plan->packed_bytes_ =
      plan->elem_size_ * static_cast<std::size_t>(std::max(count, 0));
  plan->signature_ = layout_signature(dtype);
  plan->total_segments_ = count > 0 ? dtype.total_segments(count) : 0;
  plan->pattern_ =
      count > 0 ? dtype.vector_pattern(count) : std::nullopt;

  if (dtype.is_contiguous() || plan->packed_bytes_ == 0) {
    plan->layout_ = LayoutClass::kContiguous;
    return plan;
  }
  const bool usable_pattern =
      plan->pattern_.has_value() && plan->pattern_->stride_bytes > 0 &&
      static_cast<std::size_t>(plan->pattern_->stride_bytes) >=
          plan->pattern_->block_bytes;
  if (usable_pattern) {
    plan->layout_ = LayoutClass::kSingleVector;
    SubPattern sp;
    sp.first_offset = dtype.segments().front().offset;
    sp.rows = plan->pattern_->count;
    sp.block = plan->pattern_->block_bytes;
    sp.stride = plan->pattern_->stride_bytes;
    sp.packed_offset = 0;
    plan->subpatterns_.push_back(sp);
    return plan;
  }
  if (plan->total_segments_ > kMaxExpandedRuns) {
    plan->layout_ = LayoutClass::kIrregular;
    return plan;
  }
  // Expand the flattened run list across all `count` elements (merging at
  // abutting element seams, exactly like the committed per-element list).
  std::vector<Segment> full;
  full.reserve(plan->total_segments_);
  const auto& segs = dtype.segments();
  for (int e = 0; e < count; ++e) {
    const std::int64_t base = static_cast<std::int64_t>(e) * plan->extent_;
    for (const Segment& s : segs) {
      append_merged(full, base + s.offset, s.length);
    }
  }
  std::vector<SubPattern> subs = decompose(full);
  if (subs.size() * kMinAvgRowsPerSubPattern <= full.size() ||
      subs.size() <= 2) {
    plan->layout_ = LayoutClass::kSubPatterned;
    plan->subpatterns_ = std::move(subs);
  } else {
    plan->layout_ = LayoutClass::kIrregular;
  }
  return plan;
}

std::size_t PackPlan::segments_in_range(std::size_t offset,
                                        std::size_t bytes) const {
  if (bytes == 0 || elem_size_ == 0) return 0;
  if (offset > packed_bytes_ || bytes > packed_bytes_ - offset) {
    throw std::out_of_range("PackPlan::segments_in_range: range outside");
  }
  const std::size_t nsegs = dtype_.segments().size();
  const auto run_index = [&](std::size_t off) {
    const PackCursor c = dtype_.cursor_at(count_, off);
    return c.elem * nsegs + c.seg;
  };
  return run_index(offset + bytes - 1) - run_index(offset) + 1;
}

std::shared_ptr<const PackPlan::ChunkCursors> PackPlan::chunk_cursors(
    std::size_t chunk) const {
  if (chunk == 0) throw std::invalid_argument("chunk_cursors: zero chunk");
  if (chunk > packed_bytes_) chunk = packed_bytes_;
  std::lock_guard<std::mutex> lock(chunk_mu_);
  auto it = chunk_tables_.find(chunk);
  if (it != chunk_tables_.end()) return it->second;
  auto table = std::make_shared<ChunkCursors>();
  table->chunk = chunk;
  if (packed_bytes_ > 0) {
    table->count = (packed_bytes_ + chunk - 1) / chunk;
    table->cursors.reserve(table->count);
    table->segments.reserve(table->count);
    for (std::size_t i = 0; i < table->count; ++i) {
      const std::size_t off = i * chunk;
      const std::size_t len = std::min(chunk, packed_bytes_ - off);
      table->cursors.push_back(dtype_.cursor_at(count_, off));
      table->segments.push_back(segments_in_range(off, len));
    }
  }
  chunk_tables_.emplace(chunk, table);
  return table;
}

// ---------------------------------------------------------------------------
// PlanCache
// ---------------------------------------------------------------------------

PlanCache& PlanCache::instance() {
  static PlanCache cache(256);
  return cache;
}

void PlanCache::touch(std::list<Entry>::iterator it) {
  if (it != lru_.begin()) lru_.splice(lru_.begin(), lru_, it);
}

void PlanCache::evict_excess() {
  while (lru_.size() > capacity_) {
    Entry& victim = lru_.back();
    for (const NodeKey& k : victim.aliases) by_node_.erase(k);
    by_sig_.erase(victim.key);
    lru_.pop_back();
    ++stats_.evictions;
  }
}

std::shared_ptr<const PackPlan> PlanCache::get(const mpisim::Datatype& dtype,
                                               int count) {
  std::lock_guard<std::mutex> lock(mu_);
  const NodeKey nk{dtype.node_id(), count};
  if (auto it = by_node_.find(nk); it != by_node_.end()) {
    ++stats_.hits;
    touch(it->second);
    return it->second->plan;
  }
  // Fast path missed: build once (O(nsegs)); the build carries the
  // canonical signature used for the dedupe tier.
  std::shared_ptr<const PackPlan> built = PackPlan::build(dtype, count);
  const SigKey key{built->signature(), count};
  if (auto it = by_sig_.find(key); it != by_sig_.end()) {
    ++stats_.hits;
    ++stats_.signature_dedups;
    it->second->aliases.push_back(nk);
    it->second->pins.push_back(dtype);
    by_node_.emplace(nk, it->second);
    touch(it->second);
    return it->second->plan;
  }
  ++stats_.misses;
  Entry e;
  e.key = key;
  e.plan = std::move(built);
  e.aliases.push_back(nk);
  e.pins.push_back(dtype);
  lru_.push_front(std::move(e));
  by_sig_.emplace(key, lru_.begin());
  by_node_.emplace(nk, lru_.begin());
  evict_excess();
  return lru_.front().plan;
}

PlanCacheStats PlanCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::size_t PlanCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lru_.size();
}

std::size_t PlanCache::capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return capacity_;
}

void PlanCache::set_capacity(std::size_t cap) {
  std::lock_guard<std::mutex> lock(mu_);
  capacity_ = std::max<std::size_t>(cap, 1);
  evict_excess();
}

void PlanCache::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  lru_.clear();
  by_sig_.clear();
  by_node_.clear();
  stats_ = PlanCacheStats{};
}

}  // namespace mv2gnc::core
