// Per-rank transfer progress scheduler (docs/CONCURRENCY.md).
//
// The rendezvous pipeline was engineered for one transfer at a time: vbuf
// acquisition was first-grabber-wins, every chunk cost a dedicated
// CHUNK_ACK on the wire, and nothing bounded how far one transfer's stage
// frontier could run ahead of the pool. Under N concurrent transfers that
// design head-of-line blocks: early transfers hoover the pool, late ones
// limp along on one-off pinned slots and trip the stall watchdog.
//
// This scheduler arbitrates the rank's shared resources across all active
// RndvSend/RndvRecv state machines:
//
//   * vbuf QoS — every active transfer is guaranteed a reserved minimum
//     of pooled staging slots (vbuf_reserve_per_transfer, shrinking
//     automatically when transfers outnumber capacity/reserve); the rest
//     of the pool is a shared overflow region handed out in round-robin
//     turns (SchedPolicy::kFair) or by remaining-bytes weight
//     (SchedPolicy::kBytesWeighted).
//   * adaptive pipeline depth — a per-transfer cap on staged-but-unacked
//     chunks that shrinks while the pool is contended and grows back while
//     it is idle, bounded by recv_window.
//   * CHUNK_ACK/credit coalescing — acks accumulated within
//     ack_coalesce_window_ns are batched into one kChunkAckBatch control
//     message per peer (across transfers), and any outgoing control
//     message to a peer flushes that peer's pending acks first
//     (piggybacking), so held credits never trail fresh control traffic.
//
// SchedPolicy::kFifo disables every gate and reproduces the legacy
// behavior bit-for-bit — the ablation baseline of bench_concurrency.
//
// All decisions run on the owning rank's progress loop (single-threaded,
// virtual time), so the bookkeeping needs no locks and stays
// deterministic for a fixed engine seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <limits>
#include <unordered_map>

#include "core/protocol.hpp"
#include "core/tunables.hpp"
#include "core/vbuf_pool.hpp"
#include "core/transport.hpp"
#include "sim/engine.hpp"
#include "sim/timer.hpp"

namespace mv2gnc::core {

/// Per-rank scheduler counters (aggregated across all transfers).
struct SchedStats {
  // -- vbuf QoS / fairness ----------------------------------------------
  std::uint64_t grants_reserve = 0;   // acquisitions from a reserve
  std::uint64_t grants_overflow = 0;  // acquisitions from shared overflow
  std::uint64_t denials = 0;          // gated acquisition attempts
  std::uint64_t queue_waits = 0;      // gated episodes that later resolved
  sim::SimTime queue_wait_ns = 0;     // total gated time (for the average)
  std::size_t active_high_water = 0;  // peak simultaneously active transfers

  // -- adaptive depth ----------------------------------------------------
  std::uint64_t depth_shrinks = 0;
  std::uint64_t depth_grows = 0;

  // -- ECN congestion feedback (docs/CONCURRENCY.md) --------------------
  std::uint64_t ecn_marks = 0;         // congestion-marked chunk acks seen
  std::uint64_t depth_shrinks_ecn = 0; // depth halvings triggered by marks
  std::uint64_t depth_grows_ecn = 0;   // hysteresis grow-backs after marks

  // -- ack/credit coalescing --------------------------------------------
  std::uint64_t acks_individual = 0;  // single-ack messages on the wire
  std::uint64_t acks_coalesced = 0;   // acks that shared a batch message
  std::uint64_t ack_batches = 0;      // kChunkAckBatch messages sent
  std::uint64_t ack_piggybacks = 0;   // acks flushed by outgoing ctrl msgs

  // -- control-message census (outgoing, indexed by MsgKind) -------------
  static constexpr std::size_t kMaxKind = 16;
  std::uint64_t ctrl_by_kind[kMaxKind] = {};

  std::uint64_t ctrl_total() const {
    std::uint64_t n = 0;
    for (std::uint64_t c : ctrl_by_kind) n += c;
    return n;
  }
  /// Fraction of wire acks that rode in a batch (0 when none were sent).
  double coalesce_ratio() const {
    const std::uint64_t all = acks_individual + acks_coalesced;
    return all == 0 ? 0.0
                    : static_cast<double>(acks_coalesced) /
                          static_cast<double>(all);
  }
  sim::SimTime avg_queue_wait_ns() const {
    return queue_waits == 0
               ? 0
               : queue_wait_ns / static_cast<sim::SimTime>(queue_waits);
  }
};

class TransferScheduler {
 public:
  TransferScheduler(sim::Engine& engine, VbufPool& pool, const Tunables& tun,
                    TransportRouter& net);

  /// Notifier poked when the ack-coalescing deadline expires, so the
  /// owning rank's progress loop runs and poll() flushes.
  void set_notifier(sim::Notifier* n) { notifier_ = n; }

  // -- transfer registry --------------------------------------------------
  /// A transfer (sender or receiver side) that stages through the vbuf
  /// pool became active. `total_bytes` feeds the bytes-weighted policy.
  void register_transfer(std::uint64_t id, std::size_t total_bytes);
  /// Idempotent; forgets QoS accounting (held slots return via the pool).
  void unregister_transfer(std::uint64_t id);
  std::size_t active_transfers() const { return xfers_.size(); }

  // -- vbuf QoS + fair acquisition ---------------------------------------
  /// May transfer `id` take one more pooled staging buffer now? Always
  /// true under kFifo (the pool itself is the only limit — legacy). Fair
  /// policies guarantee each active transfer its reserve, protect other
  /// transfers' unmet reserves from overflow claims, and hand scarce
  /// overflow out in policy order.
  bool may_acquire(std::uint64_t id);
  /// Bookkeeping for a pool buffer actually taken / returned by `id`.
  void note_acquired(std::uint64_t id);
  void note_released(std::uint64_t id);
  /// True while `id`'s last acquisition attempt was gated (used by the
  /// sender's stall watchdog to grant a pinned fallback slot).
  bool is_waiting(std::uint64_t id) const;
  /// `id` no longer wants a slot right now (its pipeline hit the depth
  /// cap, staging finished, or its window was advertised): give up any
  /// queued overflow turn so freed slots go to transfers that can use
  /// them immediately instead of idling reserved for a stale claim.
  void withdraw(std::uint64_t id);

  // -- adaptive pipeline depth -------------------------------------------
  /// Current cap on staged-but-unacknowledged chunks per sending
  /// transfer. Unbounded under kFifo with max_inflight_chunks = 0 —
  /// unless ECN feedback is enabled (ecn_backlog_ns > 0), which activates
  /// the adaptive depth even under kFifo so fabric congestion can throttle
  /// the pipeline.
  std::size_t inflight_cap() const;

  // -- ECN congestion feedback -------------------------------------------
  /// ECN feedback active? (tunable ecn_backlog_ns > 0)
  bool ecn_enabled() const { return tun_.ecn_backlog_ns > 0; }
  /// The sender saw a chunk ack for transfer `id` whose ECN echo says the
  /// chunk queued past the fabric's backlog threshold. A marked ack halves
  /// the shared pipeline depth (floor 1, rate-limited to one halving per
  /// depth's worth of acks so one congested burst is one response, not a
  /// collapse); ecn_restore_chunks consecutive clean acks grow it back one
  /// step — TCP-style multiplicative decrease, hysteresis increase.
  void note_chunk_ack(std::uint64_t id, bool congested);
  /// Congestion marks echoed so far for one live transfer (0 when the
  /// transfer is unknown or already unregistered).
  std::uint64_t transfer_ecn_marks(std::uint64_t id) const;

  // -- ack/credit coalescing ---------------------------------------------
  bool coalescing() const { return tun_.ack_coalesce_window_ns > 0; }
  /// Queue a CHUNK_ACK bound for `peer`; it flushes when the coalescing
  /// window expires, or earlier when any control message goes to `peer`.
  /// `flush_after` > 0 is the credit-flow valve (TCP delayed-ack style):
  /// once that many acks of the same transfer are pending, flush
  /// immediately — an ack doubles as the sender's landing-slot credit, so
  /// holding half a window's worth risks stalling the sender's pipeline
  /// on the coalescing timer. Pass max(1, advertised_window / 2).
  void queue_ack(int peer, const AckBatchEntry& entry,
                 std::size_t flush_after = 0);
  /// Flush `peer`'s pending acks now (piggyback on an outgoing control
  /// message). No-op when nothing is pending.
  void flush_peer(int peer) { flush_peer_impl(peer, /*piggyback=*/true); }
  /// Flush every pending ack whose window expired. Driven from the rank's
  /// progress loop; the internal deadline timer only wakes the notifier.
  void poll();
  /// A transfer failed or force-drained: its pending acks advertise slots
  /// about to be recycled and must never reach the wire. Keyed by peer AND
  /// sender request id — req ids are per-sender counters, so two source
  /// ranks may use the same value.
  void drop_pending(int peer, std::uint64_t sender_req);
  std::size_t pending_acks() const { return pending_.size(); }

  // -- observability ------------------------------------------------------
  /// Count an outgoing rendezvous control message (the census in
  /// print_stats). Scheduler-sent acks/batches count themselves.
  void note_ctrl(int kind);
  const SchedStats& stats() const { return stats_; }

 private:
  struct Xfer {
    std::size_t held = 0;  // pooled slots currently held
    std::size_t total_bytes = 0;
    std::uint64_t last_ask = 0;  // ask-clock stamp of the latest attempt
    std::uint64_t ecn_marks = 0;  // congestion-marked acks for this transfer
    bool waiting = false;
    sim::SimTime wait_since = 0;
  };

  bool fair() const { return tun_.sched_policy != SchedPolicy::kFifo; }
  /// Reserved slots per active transfer, shrunk when transfers outnumber
  /// capacity / reserve (can reach 0; the pinned-slot deadlock breaker in
  /// RndvSend still guarantees progress then).
  std::size_t reserve_effective() const;
  std::size_t unmet_reserve_excluding(std::uint64_t id) const;
  /// Optimistic grow ceiling: max(recv_window, pool capacity), clamped by
  /// max_inflight_chunks. Staging past the receiver's window is prefetch
  /// an uncontended transfer is welcome to.
  std::size_t depth_max() const;
  /// Opening depth: the receive window (clamped by max_inflight_chunks) —
  /// conservative so a burst's first transfer cannot hoard the pool
  /// before its siblings register.
  std::size_t depth_init() const;
  void grant(std::uint64_t id, Xfer& x, bool from_reserve);
  void deny(std::uint64_t id, Xfer& x, bool pool_contended);
  /// Drop waiting entries whose transfer unregistered or stopped asking
  /// (its frontier moved on); a stale head must not gate live claimants.
  void prune_waiting();
  /// Which waiting transfer owns the next scarce overflow slot.
  std::uint64_t overflow_head() const;

  struct PendingAck {
    int peer = -1;
    AckBatchEntry entry;
    sim::SimTime deadline = 0;
  };
  void flush_peer_impl(int peer, bool piggyback);
  void rearm_ack_timer();

  sim::Engine& engine_;
  VbufPool& pool_;
  const Tunables& tun_;
  TransportRouter& net_;
  sim::Notifier* notifier_ = nullptr;

  std::unordered_map<std::uint64_t, Xfer> xfers_;
  std::deque<std::uint64_t> waiting_;  // overflow turn order
  std::uint64_t ask_clock_ = 0;
  std::uint64_t last_shrink_ask_ = 0;
  std::size_t depth_ = 1;
  std::size_t calm_streak_ = 0;  // uncontended grants since last change

  std::uint64_t ecn_ack_clock_ = 0;       // chunk acks seen (ECN bookkeeping)
  std::uint64_t last_ecn_shrink_ack_ = 0; // ack-clock stamp of last halving
  std::size_t ecn_clean_streak_ = 0;      // unmarked acks since last mark

  std::deque<PendingAck> pending_;  // FIFO: deadlines are monotonic
  sim::DeadlineTimer ack_timer_;
  std::uint64_t ctrl_seq_ = 0;

  SchedStats stats_;
};

}  // namespace mv2gnc::core
