#include "core/rndv.hpp"

#include <algorithm>
#include <stdexcept>

namespace mv2gnc::core {

namespace detail {

StagingSlot acquire_slot(VbufPool& pool, cusim::CudaContext& cuda,
                         std::size_t bytes) {
  StagingSlot s;
  if (bytes <= pool.buffer_bytes()) {
    s.ptr = pool.try_acquire();
    s.from_pool = (s.ptr != nullptr);
    return s;  // ptr may be null: pool exhausted, caller stalls
  }
  // Oversized chunk (pipelining disabled or giant pattern blocks): one-off
  // pinned staging buffer (a cudaMallocHost of the full message).
  return pinned_slot(cuda, bytes);
}

void release_slot(VbufPool& pool, StagingSlot& slot) {
  if (slot.ptr != nullptr) {
    if (slot.from_pool) pool.release(slot.ptr);
    else if (slot.host_owner != nullptr) slot.host_owner->free_host(slot.ptr);
  }
  slot.ptr = nullptr;
  slot.from_pool = false;
  slot.host_owner = nullptr;
}

// Pinned one-off slot, also used when the pool is empty but progress must
// be guaranteed (first receive-window slot).
StagingSlot pinned_slot(cusim::CudaContext& cuda, std::size_t bytes) {
  StagingSlot s;
  s.ptr = static_cast<std::byte*>(cuda.malloc_host(bytes));
  s.host_owner = &cuda;
  return s;
}

}  // namespace detail

namespace {

bool has_usable_pattern(const MsgView& msg) {
  return msg.pattern.has_value() && msg.pattern->stride_bytes > 0 &&
         static_cast<std::size_t>(msg.pattern->stride_bytes) >=
             msg.pattern->block_bytes;
}

std::size_t segments_in_range(const MsgView& msg, std::size_t bytes) {
  const std::size_t total = msg.dtype.total_segments(msg.count);
  if (msg.packed_bytes == 0) return 0;
  const double frac =
      static_cast<double>(bytes) / static_cast<double>(msg.packed_bytes);
  return static_cast<std::size_t>(static_cast<double>(total) * frac + 0.5);
}

}  // namespace

ChunkPlan ChunkPlan::make(std::size_t total, std::size_t chunk) {
  if (total == 0) throw std::invalid_argument("ChunkPlan: empty message");
  if (chunk == 0 || chunk > total) chunk = total;
  ChunkPlan p;
  p.total = total;
  p.chunk = chunk;
  p.count = (total + chunk - 1) / chunk;
  return p;
}

// ===========================================================================
// RndvSend
// ===========================================================================

RndvSend::RndvSend(RankResources& res, MsgView msg, int dst_node,
                   std::uint64_t my_req_id)
    : res_(res), msg_(std::move(msg)), dst_(dst_node), req_id_(my_req_id) {
  const Tunables& tun = *res_.tun;
  if (msg_.on_device) {
    if (msg_.contiguous) {
      path_ = Path::kDeviceContig;
    } else if (tun.gpu_offload || !has_usable_pattern(msg_)) {
      // Irregular layouts always take the offload path: there is no single
      // cudaMemcpy2D that can walk them across PCIe.
      path_ = Path::kDeviceOffload;
    } else {
      path_ = Path::kDevicePcie;
    }
  } else {
    path_ = msg_.contiguous ? Path::kHostContig : Path::kHostPack;
  }
  std::size_t chunk;
  if (!tun.pipelining || msg_.packed_bytes <= tun.pipeline_threshold) {
    chunk = msg_.packed_bytes;  // n = 1: degenerate (unpipelined) transfer
  } else {
    chunk = align_chunk_to_pattern(msg_, tun.chunk_bytes);
  }
  plan_ = ChunkPlan::make(msg_.packed_bytes, chunk);
  pack_events_.resize(plan_.count);
  stage_events_.resize(plan_.count);
  slots_.resize(plan_.count);
  stage_submitted_.assign(plan_.count, false);
}

RndvSend::~RndvSend() {
  try {
    if (tbuf_ != nullptr) {
      res_.cuda->free(tbuf_);
      tbuf_ = nullptr;
    }
    for (auto& s : slots_) detail::release_slot(*res_.vbufs, s);
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
}

void RndvSend::start(std::uint64_t tag_word) {
  netsim::WireMessage rts;
  rts.kind = kRts;
  rts.header[0] = tag_word;
  rts.header[1] = plan_.total;
  rts.header[2] = req_id_;
  rts.header[3] = plan_.chunk;
  if (res_.tun->rget && path_ == Path::kHostContig) {
    // Advertise the source address: an RGET-capable receiver may pull the
    // data directly and skip the CTS leg.
    rts.header[4] = 1;
    rts.header[5] = reinterpret_cast<std::uintptr_t>(msg_.base);
  }
  res_.endpoint->post_send(dst_, std::move(rts));
  if (path_ == Path::kDeviceOffload) {
    // Offload the whole pack immediately; it overlaps the RTS/CTS
    // handshake ("the sender ... triggers multiple asynchronous memory
    // copies, each of which does a chunk size non-contiguous data pack").
    tbuf_ = static_cast<std::byte*>(res_.cuda->malloc(plan_.total));
    for (std::size_t i = 0; i < plan_.count; ++i) {
      pack_events_[i] = submit_device_pack(
          *res_.cuda, res_.pack_stream, msg_, plan_.offset_of(i),
          plan_.bytes_of(i), tbuf_ + plan_.offset_of(i));
    }
  }
  advance();
}

void RndvSend::submit_stage(std::size_t i) {
  const std::size_t off = plan_.offset_of(i);
  const std::size_t bytes = plan_.bytes_of(i);
  switch (path_) {
    case Path::kDeviceOffload:
      res_.cuda->memcpy_async(slots_[i].ptr, tbuf_ + off, bytes,
                              cusim::MemcpyKind::kDeviceToHost,
                              res_.d2h_stream);
      stage_events_[i] = res_.cuda->record_event(res_.d2h_stream);
      break;
    case Path::kDevicePcie:
      stage_events_[i] = submit_pcie_pack_to_host(
          *res_.cuda, res_.d2h_stream, msg_, off, bytes, slots_[i].ptr);
      break;
    case Path::kDeviceContig:
      res_.cuda->memcpy_async(slots_[i].ptr,
                              static_cast<std::byte*>(msg_.base) + off, bytes,
                              cusim::MemcpyKind::kDeviceToHost,
                              res_.d2h_stream);
      stage_events_[i] = res_.cuda->record_event(res_.d2h_stream);
      break;
    case Path::kHostPack:
      // Host packing occupies the CPU (the cost the paper's offload dodges).
      res_.engine->delay(res_.tun->host_pack_time(
          bytes, segments_in_range(msg_, bytes)));
      msg_.dtype.pack_bytes(msg_.base, msg_.count, off, bytes, slots_[i].ptr);
      break;
    case Path::kHostContig:
      break;  // zero-copy: the RDMA reads straight from the user buffer
  }
  stage_submitted_[i] = true;
}

void RndvSend::post_chunk_rdma(std::size_t i) {
  const std::size_t off = plan_.offset_of(i);
  const std::size_t bytes = plan_.bytes_of(i);
  const std::byte* src = (slots_[i].valid())
                             ? slots_[i].ptr
                             : static_cast<std::byte*>(msg_.base) + off;
  void* remote = nullptr;
  std::uint64_t slot_idx = UINT64_MAX;
  if (mode_ == CtsMode::kDirect) {
    remote = direct_base_ + off;
  } else {
    auto [idx, addr] = remote_slots_.front();
    remote_slots_.pop_front();
    slot_idx = idx;
    remote = addr;
  }
  netsim::WireMessage fin;
  fin.kind = kChunkFin;
  fin.header[0] = peer_req_;
  fin.header[1] = i;
  fin.header[2] = slot_idx;
  fin.header[3] = off;
  fin.header[4] = bytes;
  const std::uint64_t wr =
      res_.endpoint->post_rdma_write(dst_, src, remote, bytes, std::move(fin));
  wr_to_chunk_.emplace(wr, i);
}

void RndvSend::advance() {
  // Stage frontier: pack (if any) must have completed; a staging slot must
  // be available. Staging runs regardless of CTS — it overlaps the
  // handshake.
  while (next_stage_ < plan_.count) {
    const std::size_t i = next_stage_;
    if (path_ == Path::kDeviceOffload && !pack_events_[i].query()) break;
    const bool needs_slot = (path_ != Path::kHostContig);
    if (needs_slot && !slots_[i].valid()) {
      slots_[i] =
          detail::acquire_slot(*res_.vbufs, *res_.cuda, plan_.bytes_of(i));
      if (!slots_[i].valid()) {
        // Pool drained. If this transfer has chunks in flight their
        // completion frees slots and re-drives us — stall. If it holds
        // nothing, no event of ours will ever wake us: take a one-off
        // pinned slot so every transfer is guaranteed to progress (this
        // breaks the circular wait when concurrent receive windows have
        // consumed the whole pool).
        const std::size_t in_flight = next_stage_ - rdma_done_;
        if (in_flight > 0) break;
        slots_[i] = detail::pinned_slot(*res_.cuda, plan_.bytes_of(i));
      }
    }
    submit_stage(i);
    ++next_stage_;
  }
  // RDMA frontier: needs the CTS (remote landing addresses) and the
  // staged chunk data sitting in host memory.
  if (!cts_received_) return;
  while (next_rdma_ < plan_.count) {
    const std::size_t i = next_rdma_;
    if (!stage_submitted_[i]) break;
    if (stage_events_[i].valid() && !stage_events_[i].query()) break;
    if (mode_ == CtsMode::kStaged && remote_slots_.empty()) break;
    post_chunk_rdma(i);
    ++next_rdma_;
  }
}

void RndvSend::on_cts(const netsim::WireMessage& m) {
  if (cts_received_) throw std::logic_error("RndvSend: duplicate CTS");
  cts_received_ = true;
  peer_req_ = m.header[1];
  mode_ = static_cast<CtsMode>(m.header[2]);
  if (mode_ == CtsMode::kDirect) {
    direct_base_ = static_cast<std::byte*>(read_address(m.payload, 0));
  } else {
    const std::size_t n = address_count(m.payload);
    for (std::size_t i = 0; i < n; ++i) {
      remote_slots_.emplace_back(i, read_address(m.payload, i));
    }
  }
  advance();
}

void RndvSend::on_credit(const netsim::WireMessage& m) {
  remote_slots_.emplace_back(m.header[1], read_address(m.payload, 0));
  advance();
}

bool RndvSend::on_rdma_complete(std::uint64_t wr_id) {
  auto it = wr_to_chunk_.find(wr_id);
  if (it == wr_to_chunk_.end()) return false;
  const std::size_t i = it->second;
  wr_to_chunk_.erase(it);
  detail::release_slot(*res_.vbufs, slots_[i]);
  ++rdma_done_;
  if (done() && tbuf_ != nullptr) {
    res_.cuda->free(tbuf_);
    tbuf_ = nullptr;
  }
  advance();
  return true;
}

// ===========================================================================
// RndvRecv
// ===========================================================================

RndvRecv::RndvRecv(RankResources& res, MsgView msg, int src_node,
                   std::uint64_t sender_req, std::uint64_t my_req_id,
                   std::size_t incoming_bytes, std::size_t sender_chunk,
                   const std::byte* rget_src)
    : res_(res),
      msg_(std::move(msg)),
      src_(src_node),
      sender_req_(sender_req),
      req_id_(my_req_id),
      rget_src_(rget_src) {
  const Tunables& tun = *res_.tun;
  if (tun.rget && rget_src_ != nullptr && !msg_.on_device &&
      msg_.contiguous) {
    path_ = Path::kHostRget;
    plan_ = ChunkPlan::make(incoming_bytes, sender_chunk);
    chunks_.resize(plan_.count);
    return;
  }
  if (msg_.on_device) {
    if (msg_.contiguous) {
      path_ = Path::kDeviceContig;
    } else if (tun.gpu_offload || !has_usable_pattern(msg_)) {
      path_ = Path::kDeviceOffload;
    } else {
      path_ = Path::kDevicePcie;
    }
  } else {
    path_ = msg_.contiguous ? Path::kHostDirect : Path::kHostUnpack;
  }
  plan_ = ChunkPlan::make(incoming_bytes, sender_chunk);
  chunks_.resize(plan_.count);
}

RndvRecv::~RndvRecv() {
  // Destructors must not throw, even when tearing down a transfer that an
  // engine abort interrupted mid-flight.
  try {
    if (rtbuf_ != nullptr) {
      res_.cuda->free(rtbuf_);
      rtbuf_ = nullptr;
    }
    for (auto& s : slots_) detail::release_slot(*res_.vbufs, s);
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
}

void RndvRecv::start() {
  if (path_ == Path::kHostRget) {
    // Receiver-driven: pull the whole message in one RDMA READ; no CTS.
    rget_wr_ = res_.endpoint->post_rdma_read(src_, msg_.base, rget_src_,
                                             plan_.total);
    return;
  }
  netsim::WireMessage cts;
  cts.kind = kCts;
  cts.header[0] = sender_req_;
  cts.header[1] = req_id_;
  if (path_ == Path::kHostDirect) {
    cts.header[2] = static_cast<std::uint64_t>(CtsMode::kDirect);
    cts.header[3] = 1;
    append_address(cts.payload, msg_.base);
    res_.endpoint->post_send(src_, std::move(cts));
    return;
  }
  if (path_ == Path::kDeviceOffload) {
    rtbuf_ = static_cast<std::byte*>(res_.cuda->malloc(plan_.total));
  }
  // Advertise a window of landing slots. The first slot falls back to a
  // pinned one-off buffer when the pool is drained, so a CTS can always be
  // sent (guaranteed progress). Beyond the first slot, a receive window
  // may only use the pool while at least half of it stays free — landing
  // windows of concurrent receives must not starve the send side (which
  // would close a circular wait across ranks).
  const std::size_t want = std::min<std::size_t>(plan_.count,
                                                 res_.tun->recv_window);
  for (std::size_t i = 0; i < want; ++i) {
    detail::StagingSlot s;
    const bool pool_allowed =
        (i == 0) || res_.vbufs->available() * 2 > res_.vbufs->capacity();
    if (pool_allowed) {
      s = detail::acquire_slot(*res_.vbufs, *res_.cuda, plan_.chunk);
    }
    if (!s.valid()) {
      if (i == 0) s = detail::pinned_slot(*res_.cuda, plan_.chunk);
      else break;
    }
    slots_.push_back(std::move(s));
  }
  cts.header[2] = static_cast<std::uint64_t>(CtsMode::kStaged);
  cts.header[3] = slots_.size();
  for (const auto& s : slots_) append_address(cts.payload, s.ptr);
  slots_advertised_ = slots_.size();
  res_.endpoint->post_send(src_, std::move(cts));
}

void RndvRecv::on_chunk_fin(const netsim::WireMessage& m) {
  const std::size_t idx = m.header[1];
  if (idx >= plan_.count) throw std::logic_error("RndvRecv: bad chunk index");
  if (idx != fin_count_) {
    throw std::logic_error("RndvRecv: out-of-order chunk fin");
  }
  if (m.header[3] != plan_.offset_of(idx) ||
      m.header[4] != plan_.bytes_of(idx)) {
    throw std::logic_error("RndvRecv: chunk geometry mismatch");
  }
  chunks_[idx].arrived = true;
  chunks_[idx].slot = m.header[2];
  ++fin_count_;
  advance();
}

void RndvRecv::advertise_slot(std::size_t slot_idx, bool /*initial*/) {
  if (slots_advertised_ < plan_.count) {
    netsim::WireMessage credit;
    credit.kind = kCredit;
    credit.header[0] = sender_req_;
    credit.header[1] = slot_idx;
    append_address(credit.payload, slots_[slot_idx].ptr);
    res_.endpoint->post_send(src_, std::move(credit));
    ++slots_advertised_;
  } else {
    detail::release_slot(*res_.vbufs, slots_[slot_idx]);
  }
}

void RndvRecv::finish_chunk_slot(std::size_t slot_idx) {
  advertise_slot(slot_idx, false);
}

bool RndvRecv::on_rdma_read_complete(std::uint64_t wr_id) {
  if (path_ != Path::kHostRget || wr_id != rget_wr_ || done()) return false;
  completed_ = plan_.count;
  netsim::WireMessage fin;
  fin.kind = kRndvDone;
  fin.header[0] = sender_req_;
  res_.endpoint->post_send(src_, std::move(fin));
  return true;
}

void RndvRecv::advance() {
  switch (path_) {
    case Path::kHostRget:
      return;  // driven entirely by on_rdma_read_complete
    case Path::kHostDirect:
      // The RDMA already landed in the user buffer; fins are completions.
      completed_ = fin_count_;
      return;
    case Path::kHostUnpack:
      while (completed_ < plan_.count && chunks_[completed_].arrived) {
        const std::size_t i = completed_;
        const std::size_t off = plan_.offset_of(i);
        const std::size_t bytes = plan_.bytes_of(i);
        res_.engine->delay(res_.tun->host_pack_time(
            bytes, segments_in_range(msg_, bytes)));
        msg_.dtype.unpack_bytes(slots_[chunks_[i].slot].ptr, msg_.count, off,
                                bytes, msg_.base);
        finish_chunk_slot(chunks_[i].slot);
        ++completed_;
      }
      return;
    case Path::kDeviceContig:
    case Path::kDevicePcie:
      while (next_h2d_ < plan_.count && chunks_[next_h2d_].arrived) {
        const std::size_t i = next_h2d_;
        const std::size_t off = plan_.offset_of(i);
        const std::size_t bytes = plan_.bytes_of(i);
        const std::byte* slot_ptr = slots_[chunks_[i].slot].ptr;
        if (path_ == Path::kDeviceContig) {
          res_.cuda->memcpy_async(static_cast<std::byte*>(msg_.base) + off,
                                  slot_ptr, bytes,
                                  cusim::MemcpyKind::kHostToDevice,
                                  res_.h2d_stream);
          chunks_[i].h2d_done = res_.cuda->record_event(res_.h2d_stream);
        } else {
          chunks_[i].h2d_done = submit_pcie_unpack_from_host(
              *res_.cuda, res_.h2d_stream, msg_, off, bytes, slot_ptr);
        }
        chunks_[i].h2d_submitted = true;
        ++next_h2d_;
      }
      while (completed_ < plan_.count && chunks_[completed_].h2d_submitted &&
             chunks_[completed_].h2d_done.query()) {
        finish_chunk_slot(chunks_[completed_].slot);
        ++completed_;
      }
      return;
    case Path::kDeviceOffload:
      while (next_h2d_ < plan_.count && chunks_[next_h2d_].arrived) {
        const std::size_t i = next_h2d_;
        const std::size_t off = plan_.offset_of(i);
        res_.cuda->memcpy_async(rtbuf_ + off, slots_[chunks_[i].slot].ptr,
                                plan_.bytes_of(i),
                                cusim::MemcpyKind::kHostToDevice,
                                res_.h2d_stream);
        chunks_[i].h2d_done = res_.cuda->record_event(res_.h2d_stream);
        chunks_[i].h2d_submitted = true;
        ++next_h2d_;
      }
      while (next_unpack_ < plan_.count &&
             chunks_[next_unpack_].h2d_submitted &&
             chunks_[next_unpack_].h2d_done.query()) {
        const std::size_t i = next_unpack_;
        const std::size_t off = plan_.offset_of(i);
        chunks_[i].unpack_done =
            submit_device_unpack(*res_.cuda, res_.unpack_stream, msg_, off,
                                 plan_.bytes_of(i), rtbuf_ + off);
        chunks_[i].unpack_submitted = true;
        // The host slot is free as soon as its bytes are in the rtbuf.
        finish_chunk_slot(chunks_[i].slot);
        ++next_unpack_;
      }
      while (completed_ < plan_.count &&
             chunks_[completed_].unpack_submitted &&
             chunks_[completed_].unpack_done.query()) {
        ++completed_;
      }
      if (done() && rtbuf_ != nullptr) {
        res_.cuda->free(rtbuf_);
        rtbuf_ = nullptr;
      }
      return;
  }
}

}  // namespace mv2gnc::core
