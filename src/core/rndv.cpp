#include "core/rndv.hpp"

#include <algorithm>
#include <limits>

#include "core/sched.hpp"
#include <cmath>
#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

namespace mv2gnc::core {

namespace detail {

StagingSlot acquire_slot(VbufPool& pool, cusim::CudaContext& cuda,
                         std::size_t bytes) {
  StagingSlot s;
  if (bytes <= pool.buffer_bytes()) {
    s.ptr = pool.try_acquire();
    s.from_pool = (s.ptr != nullptr);
    return s;  // ptr may be null: pool exhausted, caller stalls
  }
  // Oversized chunk (pipelining disabled or giant pattern blocks): one-off
  // pinned staging buffer (a cudaMallocHost of the full message).
  return pinned_slot(cuda, bytes);
}

void release_slot(VbufPool& pool, StagingSlot& slot) {
  if (slot.ptr != nullptr) {
    if (slot.from_pool) pool.release(slot.ptr);
    else if (slot.host_owner != nullptr) slot.host_owner->free_host(slot.ptr);
    else if (slot.device_owner != nullptr) slot.device_owner->free(slot.ptr);
  }
  slot.ptr = nullptr;
  slot.from_pool = false;
  slot.host_owner = nullptr;
  slot.device_owner = nullptr;
}

// Pinned one-off slot, also used when the pool is empty but progress must
// be guaranteed (first receive-window slot).
StagingSlot pinned_slot(cusim::CudaContext& cuda, std::size_t bytes) {
  StagingSlot s;
  s.ptr = static_cast<std::byte*>(cuda.malloc_host(bytes));
  s.host_owner = &cuda;
  return s;
}

}  // namespace detail

namespace {

// Scheduler-aware slot acquisition: the QoS/fairness gate rules first
// (unless `gated` is false — guaranteed-progress slots bypass it), then the
// pool, with the take accounted against the transfer. Oversized chunks
// never touch the pool, so they bypass the gate too.
detail::StagingSlot sched_acquire(RankResources& res, std::uint64_t id,
                                  std::size_t bytes, bool gated = true) {
  if (gated && res.sched != nullptr && bytes <= res.vbufs->buffer_bytes() &&
      !res.sched->may_acquire(id)) {
    return {};
  }
  detail::StagingSlot s = detail::acquire_slot(*res.vbufs, *res.cuda, bytes);
  if (s.from_pool && res.sched != nullptr) res.sched->note_acquired(id);
  return s;
}

// The transfer stopped wanting a slot (depth-capped, staging finished,
// window advertised): drop any queued fairness turn so freed slots are
// not held idle for it.
void sched_withdraw(RankResources& res, std::uint64_t id) {
  if (res.sched != nullptr) res.sched->withdraw(id);
}

// Release counterpart: returns the slot and updates the transfer's held
// count (a no-op for pinned one-offs and unregistered transfers).
void sched_release(RankResources& res, std::uint64_t id,
                   detail::StagingSlot& slot) {
  const bool pooled = slot.from_pool && slot.ptr != nullptr;
  detail::release_slot(*res.vbufs, slot);
  if (pooled && res.sched != nullptr) res.sched->note_released(id);
}

bool has_usable_pattern(const MsgView& msg) {
  return msg.pattern.has_value() && msg.pattern->stride_bytes > 0 &&
         static_cast<std::size_t>(msg.pattern->stride_bytes) >=
             msg.pattern->block_bytes;
}

std::size_t segments_in_range(const MsgView& msg, std::size_t bytes) {
  const std::size_t total = msg.dtype.total_segments(msg.count);
  if (msg.packed_bytes == 0) return 0;
  const double frac =
      static_cast<double>(bytes) / static_cast<double>(msg.packed_bytes);
  return static_cast<std::size_t>(static_cast<double>(total) * frac + 0.5);
}

// Exact memcpy count of chunk i ([off, off+bytes)) from the plan's cursor
// table; falls back to the legacy proportional estimate without a plan.
std::size_t chunk_segments(const MsgView& msg,
                           const PackPlan::ChunkCursors* table, std::size_t i,
                           std::size_t off, std::size_t bytes) {
  if (table != nullptr && i < table->count && off == i * table->chunk) {
    const std::size_t expect =
        std::min(table->chunk, msg.plan->packed_bytes() - off);
    if (bytes == expect) return table->segments[i];
  }
  if (msg.plan && msg.plan->packed_bytes() >= off + bytes) {
    return msg.plan->segments_in_range(off, bytes);
  }
  return segments_in_range(msg, bytes);
}

// Figure-2 scheme choice for a device-resident non-contiguous message.
bool select_offload(const RankResources& res, const MsgView& msg) {
  const Tunables& tun = *res.tun;
  // Irregular layouts always take the offload path: there is no single
  // cudaMemcpy2D that can walk them across PCIe.
  if (!has_usable_pattern(msg)) return true;
  if (tun.scheme_select == SchemeSelect::kTunable) return tun.gpu_offload;
  // Model-driven, with gpu_offload=false kept as a hard ablation override
  // (the paper's nc2c measurement runs).
  if (!tun.gpu_offload || res.cuda == nullptr) return false;
  return model_prefers_offload(res.cuda->device().cost(), msg);
}

// Pipeline chunk size (§IV-B): one degenerate chunk at or below the
// threshold, otherwise model-optimized or the fixed tunable.
std::size_t select_chunk(const RankResources& res, const MsgView& msg,
                         bool offload_path) {
  const Tunables& tun = *res.tun;
  if (!tun.pipelining || msg.packed_bytes <= tun.pipeline_threshold) {
    return msg.packed_bytes;  // n = 1: degenerate (unpipelined) transfer
  }
  if (msg.on_device && tun.chunk_select == ChunkSelect::kModel &&
      res.cuda != nullptr) {
    return select_chunk_bytes(res.cuda->device().cost(), msg, offload_path,
                              tun.chunk_bytes);
  }
  return align_chunk_to_pattern(msg, tun.chunk_bytes);
}

// A cusim IPC memory handle, flattened into a control-message payload
// (device-direct CTS: the landing address crosses as a handle, not a raw
// pointer, and the sender must open it).
void append_ipc_handle(std::vector<std::byte>& payload,
                       const cusim::IpcMemHandle& h) {
  const std::uint64_t words[4] = {h.device, h.base, h.size, h.offset};
  const auto* p = reinterpret_cast<const std::byte*>(words);
  payload.insert(payload.end(), p, p + sizeof(words));
}

cusim::IpcMemHandle read_ipc_handle(const std::vector<std::byte>& payload) {
  std::uint64_t words[4] = {};
  if (payload.size() < sizeof(words)) {
    throw std::logic_error("read_ipc_handle: truncated payload");
  }
  std::memcpy(words, payload.data(), sizeof(words));
  cusim::IpcMemHandle h;
  h.device = words[0];
  h.base = words[1];
  h.size = words[2];
  h.offset = words[3];
  return h;
}

// Absolute deadline for retry number `retries`: base timeout grown by the
// backoff factor, clamped so an extreme retry count cannot overflow SimTime
// (the cap is ~11 virtual days; transfers fail long before).
sim::SimTime backoff_deadline(const Tunables& tun, std::size_t retries,
                              sim::SimTime now) {
  const double scale =
      std::pow(tun.rndv_backoff_factor, static_cast<double>(retries));
  double delay_ns = static_cast<double>(tun.rndv_timeout_ns) * scale;
  if (!(delay_ns < 1e15)) delay_ns = 1e15;
  return now + static_cast<sim::SimTime>(delay_ns);
}

}  // namespace

ChunkPlan ChunkPlan::make(std::size_t total, std::size_t chunk) {
  if (total == 0) throw std::invalid_argument("ChunkPlan: empty message");
  if (chunk == 0) throw std::invalid_argument("ChunkPlan: zero chunk size");
  if (chunk > total) chunk = total;
  ChunkPlan p;
  p.total = total;
  p.chunk = chunk;
  p.count = (total + chunk - 1) / chunk;
  return p;
}

// ===========================================================================
// RndvSend
// ===========================================================================

RndvSend::RndvSend(RankResources& res, MsgView msg, int dst_node,
                   std::uint64_t my_req_id, RndvCache* cache)
    : res_(res),
      msg_(std::move(msg)),
      dst_(dst_node),
      req_id_(my_req_id),
      graph_(res.trig),
      timer_(*res.engine) {
  // The one path input that can change between rounds of a persistent
  // request is the transport route (failover demotes/restores IPC peers);
  // the cache is keyed on it so a stale entry falls back to a fresh
  // derivation.
  const bool ipc_direct = msg_.on_device && res_.net != nullptr &&
                          res_.net->device_direct(dst_node);
  if (cache != nullptr && cache->send_valid && cache->send_ipc == ipc_direct) {
    // Persistent re-fire: path, chunk table and pack cursors come straight
    // from the cache — no cost-model calls, no plan lookup.
    path_ = static_cast<Path>(cache->send_path);
    plan_ = cache->send_plan;
    cursors_ = cache->send_cursors;
    if (res_.trig != nullptr) ++res_.trig->plan_cache_hits;
  } else {
    if (msg_.on_device) {
      if (ipc_direct) {
        // Intra-node fast path: the peer copy reads device memory directly,
        // so the whole D2H staging stage drops out (collapsed pipeline).
        path_ = msg_.contiguous ? Path::kDeviceIpcContig
                                : Path::kDeviceIpcOffload;
      } else if (msg_.contiguous) {
        path_ = Path::kDeviceContig;
      } else if (select_offload(res_, msg_)) {
        path_ = Path::kDeviceOffload;
      } else {
        path_ = Path::kDevicePcie;
      }
    } else {
      path_ = msg_.contiguous ? Path::kHostContig : Path::kHostPack;
    }
    plan_ = ChunkPlan::make(
        msg_.packed_bytes,
        select_chunk(res_, msg_,
                     path_ == Path::kDeviceOffload ||
                         path_ == Path::kDeviceIpcOffload));
    if (path_ == Path::kHostPack && msg_.plan && msg_.packed_bytes > 0) {
      cursors_ = msg_.plan->chunk_cursors(plan_.chunk);
    }
    if (cache != nullptr) {
      cache->send_valid = true;
      cache->send_ipc = ipc_direct;
      cache->send_path = static_cast<int>(path_);
      cache->send_plan = plan_;
      cache->send_cursors = cursors_;
    }
  }
  pack_events_.resize(plan_.count);
  stage_events_.resize(plan_.count);
  slots_.resize(plan_.count);
  stage_submitted_.assign(plan_.count, false);
  posted_.assign(plan_.count, false);
  acked_.assign(plan_.count, false);
  inflight_.assign(plan_.count, 0);
  write_errors_.assign(plan_.count, 0);
  remote_slot_idx_.assign(plan_.count, kNoSlot);
  remote_addr_.assign(plan_.count, nullptr);
  if (res_.sched != nullptr) {
    res_.sched->register_transfer(req_id_, plan_.total);
  }
}

RndvSend::~RndvSend() {
  try {
    timer_.cancel();
    if (res_.sched != nullptr) res_.sched->unregister_transfer(req_id_);
    if (tbuf_ != nullptr) {
      res_.cuda->free(tbuf_);
      tbuf_ = nullptr;
    }
    if (ipc_mapped_) {
      res_.cuda->ipc_close_mem_handle(direct_base_);
      ipc_mapped_ = false;
    }
    for (auto& s : slots_) detail::release_slot(*res_.vbufs, s);
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
}

void RndvSend::trace_event(const char* category) {
  if (res_.trace != nullptr) {
    res_.trace->event(res_.rank, category, res_.engine->now());
  }
}

void RndvSend::post_ctrl(netsim::WireMessage msg) {
  msg.seq = ctrl_seq_++;
  msg.flow = req_id_;  // hashed routing keys this transfer's path on it
  if (res_.sched != nullptr) {
    res_.sched->note_ctrl(msg.kind);
    // Any control message to the peer is a free ride for credits this
    // rank's receive side is holding back for the same destination.
    res_.sched->flush_peer(dst_);
  }
  res_.net->post_send(dst_, std::move(msg));
}

void RndvSend::start(std::uint64_t tag_word) {
  rts_.kind = kRts;
  rts_.header[0] = tag_word;
  rts_.header[1] = plan_.total;
  rts_.header[2] = req_id_;
  rts_.header[3] = plan_.chunk;
  if (res_.tun->rget && path_ == Path::kHostContig) {
    // Advertise the source address: an RGET-capable receiver may pull the
    // data directly and skip the CTS leg.
    rts_.header[4] = 1;
    rts_.header[5] = reinterpret_cast<std::uintptr_t>(msg_.base);
  }
  post_ctrl(rts_);
  build_graph();
  if ((path_ == Path::kDeviceOffload || path_ == Path::kDeviceIpcOffload) &&
      !data_gate_.valid()) {
    // Offload the whole pack immediately; it overlaps the RTS/CTS
    // handshake ("the sender ... triggers multiple asynchronous memory
    // copies, each of which does a chunk size non-contiguous data pack").
    // With a stream data gate the packs are deferred to the graph's pack
    // node instead — they must not read the buffer before the gate fires.
    tbuf_ = static_cast<std::byte*>(res_.cuda->malloc(plan_.total));
    for (std::size_t i = 0; i < plan_.count; ++i) {
      pack_events_[i] = submit_device_pack(
          *res_.cuda, res_.pack_stream, msg_, plan_.offset_of(i),
          plan_.bytes_of(i), tbuf_ + plan_.offset_of(i));
    }
  }
  arm_timer();
  advance();
}

void RndvSend::build_graph() {
  graph_.clear();
  if (res_.trig != nullptr) ++res_.trig->graphs_built;
  // Gated offload pack: one node that waits for the stream data gate, then
  // submits every chunk pack. Ungated transfers pack inline in start()
  // (before the retransmission deadline is armed), exactly as before the
  // graph existed.
  if ((path_ == Path::kDeviceOffload || path_ == Path::kDeviceIpcOffload) &&
      data_gate_.valid()) {
    const int pack = graph_.add_chain(TriggerGraph::ChainKind::kFrontier);
    graph_.add_node(pack, [this] { return data_ready(); },
                    [this] {
                      tbuf_ =
                          static_cast<std::byte*>(res_.cuda->malloc(plan_.total));
                      for (std::size_t i = 0; i < plan_.count; ++i) {
                        pack_events_[i] = submit_device_pack(
                            *res_.cuda, res_.pack_stream, msg_,
                            plan_.offset_of(i), plan_.bytes_of(i),
                            tbuf_ + plan_.offset_of(i));
                      }
                    });
  }
  // Stage frontier: pack (if any) must have completed; a staging slot must
  // be available. Staging runs regardless of CTS — it overlaps the
  // handshake.
  const int stage = graph_.add_chain(TriggerGraph::ChainKind::kFrontier);
  for (std::size_t i = 0; i < plan_.count; ++i) {
    graph_.add_node(stage, [this, i] { return stage_gate(i); },
                    [this, i] {
                      submit_stage(i);
                      ++next_stage_;
                    });
  }
  // Every chunk staged: this transfer asks for nothing more.
  graph_.set_epilogue(stage, [this] {
    if (next_stage_ == plan_.count) sched_withdraw(res_, req_id_);
  });
  // RDMA frontier: needs the CTS (remote landing addresses) and the
  // staged chunk data sitting in host memory.
  const int rdma = graph_.add_chain(TriggerGraph::ChainKind::kFrontier,
                                    [this] { return cts_received_; });
  for (std::size_t i = 0; i < plan_.count; ++i) {
    graph_.add_node(rdma, [this, i] { return rdma_gate(i); },
                    [this, i] {
                      post_chunk_rdma(i, /*retransmit=*/false);
                      ++next_rdma_;
                    });
  }
}

bool RndvSend::stage_gate(std::size_t i) {
  // Pipeline-depth cap: staged-but-unacked chunks (each pinning a slot
  // and a spot in the transmit pipeline) stay within the scheduler's
  // adaptive budget; acks re-drive us as they land. Either refusal means
  // we are not slot-starved right now — withdraw any queued turn.
  const std::size_t cap = (res_.sched != nullptr)
                              ? res_.sched->inflight_cap()
                              : std::numeric_limits<std::size_t>::max();
  if (next_stage_ - acked_count_ >= cap) {
    sched_withdraw(res_, req_id_);
    return false;
  }
  if (path_ == Path::kDeviceOffload || path_ == Path::kDeviceIpcOffload) {
    if (!pack_events_[i].valid() || !pack_events_[i].query()) {
      sched_withdraw(res_, req_id_);
      return false;
    }
  }
  // Stream data gate: the paths whose staging reads the user buffer (PCIe
  // strided pack, contiguous D2H, host CPU pack) hold until the producing
  // kernels drain. The offload paths are covered by their pack node above;
  // the zero-staging paths gate at the RDMA frontier instead.
  if (data_gate_.valid() && !data_ready() &&
      (path_ == Path::kDevicePcie || path_ == Path::kDeviceContig ||
       path_ == Path::kHostPack)) {
    return false;
  }
  const bool needs_slot = uses_staging();
  if (needs_slot && !slots_[i].valid()) {
    if (force_pinned_) {
      // Stall watchdog verdict: the pool is wedged, take a pinned slot.
      slots_[i] = detail::pinned_slot(*res_.cuda, plan_.bytes_of(i));
      force_pinned_ = false;
    } else {
      slots_[i] = sched_acquire(res_, req_id_, plan_.bytes_of(i));
    }
    if (!slots_[i].valid()) {
      // No slot. If this transfer has unacked chunks holding slots,
      // their acks free slots and re-drive us — stall. If the fairness
      // gate queued us, the granted transfer's progress re-drives the
      // rank and our next ask takes its turn (the stall watchdog bounds
      // the wait). If it holds nothing and is not queued, no event of
      // ours will ever wake us: take a one-off pinned slot so every
      // transfer is guaranteed to progress (this breaks the circular
      // wait when concurrent receive windows have consumed the pool).
      const std::size_t in_flight = next_stage_ - acked_count_;
      const bool gated =
          res_.sched != nullptr && res_.sched->is_waiting(req_id_);
      if (in_flight > 0 || gated) return false;
      slots_[i] = detail::pinned_slot(*res_.cuda, plan_.bytes_of(i));
    }
  }
  return true;
}

bool RndvSend::rdma_gate(std::size_t i) {
  if (!stage_submitted_[i]) return false;
  if (stage_events_[i].valid() && !stage_events_[i].query()) return false;
  // Zero-staging paths RDMA straight out of the user buffer: the stream
  // data gate holds the write itself (staged paths gated at staging).
  if (data_gate_.valid() && !data_ready() &&
      (path_ == Path::kHostContig || path_ == Path::kDeviceIpcContig)) {
    return false;
  }
  if (mode_ == CtsMode::kStaged && remote_slots_.empty()) return false;
  return true;
}

void RndvSend::arm_timer() {
  armed_epoch_ = progress_epoch_;
  const sim::SimTime at =
      backoff_deadline(*res_.tun, retries_, res_.engine->now());
  sim::Notifier* n = res_.notifier;
  // The callback runs on the scheduler thread: wake the progress loop and
  // nothing else. The retransmission itself happens in-process, in
  // handle_timeout(), driven from the next advance().
  timer_.arm(at, [n] {
    if (n != nullptr) n->notify();
  });
}

void RndvSend::handle_timeout() {
  if (complete_) {
    // Only the direct-mode SEND_DONE handshake is still running; no data
    // event can move the epoch, so every expiry is genuine.
    ++retries_;
    if (res_.retries != nullptr) ++res_.retries->timeouts;
    trace_event("fault_timeout");
    if (retries_ > res_.tun->rndv_max_retries) {
      // Give up — the data itself was fully acked. The receiver recovers
      // on its own: its watchdog force-drains once we fall silent.
      done_given_up_ = true;
      timer_.cancel();
      return;
    }
    post_ctrl(done_);
    if (res_.retries != nullptr) ++res_.retries->send_done_retransmits;
    trace_event("fault_done_retransmit");
    arm_timer();
    return;
  }
  if (progress_epoch_ != armed_epoch_) {
    // The transfer moved since the deadline was armed; this expiry is
    // stale. Fresh deadline, retry budget restored. An RTS_ACK from a
    // receiver that has not posted the matching recv yet lands here too:
    // the handshake is alive, so waiting is not failure.
    retries_ = 0;
    arm_timer();
    return;
  }
  if (data_gate_.valid() && !data_ready()) {
    // Stream-gated transfer waiting on its own compute, not on the peer:
    // a long-running producer kernel is legal, so the quiet period does
    // not charge the retry budget. Keep probing with the RTS so the
    // peer's liveness watchdog stays fed meanwhile.
    post_ctrl(rts_);
    if (res_.retries != nullptr) ++res_.retries->rts_retransmits;
    trace_event("fault_rts_retransmit");
    retries_ = 0;
    arm_timer();
    return;
  }
  ++retries_;
  if (res_.retries != nullptr) ++res_.retries->timeouts;
  trace_event("fault_timeout");
  if (retries_ > res_.tun->rndv_max_retries) {
    fail("rendezvous " + std::to_string(req_id_) + " to rank " +
         std::to_string(dst_) + " timed out after " +
         std::to_string(res_.tun->rndv_max_retries) + " retransmissions");
    return;
  }
  retransmit_unacked();
  arm_timer();
}

void RndvSend::retransmit_unacked() {
  if (!cts_received_) {
    // Handshake not established (RTS, CTS or the RGET done was lost):
    // resend the stored RTS. The receiver dedups by (src, sender req) and
    // replays its CTS / done if it already answered.
    post_ctrl(rts_);
    if (res_.retries != nullptr) ++res_.retries->rts_retransmits;
    trace_event("fault_rts_retransmit");
    return;
  }
  bool any = false;
  for (std::size_t i = 0; i < next_rdma_; ++i) {
    if (posted_[i] && !acked_[i] && inflight_[i] == 0) {
      post_chunk_rdma(i, /*retransmit=*/true);
      if (res_.retries != nullptr) ++res_.retries->chunk_retransmits;
      trace_event("fault_chunk_retransmit");
      any = true;
    }
  }
  if (!any) {
    // Nothing unacknowledged on the wire, yet no progress: the transfer is
    // stalled locally. If the stage frontier is starved of staging slots
    // (vbuf pool exhausted, e.g. because the acks that would recycle them
    // were lost on other transfers), degrade to a one-off pinned slot so
    // this transfer keeps moving.
    const bool needs_slot = uses_staging();
    const bool gated =
        res_.sched != nullptr && res_.sched->is_waiting(req_id_);
    if (needs_slot && next_stage_ < plan_.count &&
        !slots_[next_stage_].valid() &&
        (res_.vbufs->available() == 0 || gated)) {
      // Starved of staging slots — pool drained, or the fairness gate kept
      // us queued for a full timeout (the slots it is saving us from are
      // not coming back). Either way, degrade to a one-off pinned slot.
      force_pinned_ = true;
      if (res_.retries != nullptr) ++res_.retries->stall_fallbacks;
      trace_event("fault_stall_fallback");
    }
  }
}

void RndvSend::submit_stage(std::size_t i) {
  const std::size_t off = plan_.offset_of(i);
  const std::size_t bytes = plan_.bytes_of(i);
  switch (path_) {
    case Path::kDeviceOffload:
      res_.cuda->memcpy_async(slots_[i].ptr, tbuf_ + off, bytes,
                              cusim::MemcpyKind::kDeviceToHost,
                              res_.d2h_stream);
      stage_events_[i] = res_.cuda->record_event(res_.d2h_stream);
      break;
    case Path::kDevicePcie:
      stage_events_[i] = submit_pcie_pack_to_host(
          *res_.cuda, res_.d2h_stream, msg_, off, bytes, slots_[i].ptr);
      break;
    case Path::kDeviceContig:
      res_.cuda->memcpy_async(slots_[i].ptr,
                              static_cast<std::byte*>(msg_.base) + off, bytes,
                              cusim::MemcpyKind::kDeviceToHost,
                              res_.d2h_stream);
      stage_events_[i] = res_.cuda->record_event(res_.d2h_stream);
      break;
    case Path::kHostPack:
      // Host packing occupies the CPU (the cost the paper's offload dodges).
      res_.engine->delay(res_.tun->host_pack_time(
          bytes, chunk_segments(msg_, cursors_.get(), i, off, bytes)));
      if (cursors_ && i < cursors_->count && off == i * cursors_->chunk) {
        msg_.dtype.pack_bytes_from(cursors_->cursors[i], msg_.base,
                                   msg_.count, bytes, slots_[i].ptr);
      } else {
        msg_.dtype.pack_bytes(msg_.base, msg_.count, off, bytes,
                              slots_[i].ptr);
      }
      break;
    case Path::kHostContig:
      break;  // zero-copy: the RDMA reads straight from the user buffer
    case Path::kDeviceIpcOffload:
      // No D2H staging — the peer copy reads the packed chunk straight out
      // of the device tbuf. The pack event doubles as the RDMA gate.
      stage_events_[i] = pack_events_[i];
      break;
    case Path::kDeviceIpcContig:
      break;  // zero staging: the peer copy reads the user buffer directly
  }
  stage_submitted_[i] = true;
  note_progress();
}

void RndvSend::post_chunk_rdma(std::size_t i, bool retransmit) {
  const std::size_t off = plan_.offset_of(i);
  const std::size_t bytes = plan_.bytes_of(i);
  const std::byte* src;
  if (path_ == Path::kDeviceIpcOffload) {
    src = tbuf_ + off;  // packed in place on the device; no host staging
  } else if (slots_[i].valid()) {
    src = slots_[i].ptr;
  } else {
    src = static_cast<std::byte*>(msg_.base) + off;
  }
  void* remote = nullptr;
  std::uint64_t slot_idx = kNoSlot;
  if (retransmit) {
    // Same landing address as the original write: the receiver retains the
    // slot until it has acked the chunk AND seen SEND_DONE, so the address
    // is still valid even if the original write already landed.
    remote = remote_addr_[i];
    slot_idx = remote_slot_idx_[i];
  } else if (mode_ == CtsMode::kDirect) {
    remote = direct_base_ + off;
  } else {
    auto [idx, addr] = remote_slots_.front();
    remote_slots_.pop_front();
    slot_idx = idx;
    remote = addr;
  }
  remote_addr_[i] = remote;
  remote_slot_idx_[i] = slot_idx;
  netsim::WireMessage fin;
  fin.kind = kChunkFin;
  fin.seq = ctrl_seq_++;
  fin.flow = req_id_;
  fin.header[0] = peer_req_;
  fin.header[1] = i;
  fin.header[2] = slot_idx;
  fin.header[3] = off;
  fin.header[4] = bytes;
  if (res_.sched != nullptr) res_.sched->note_ctrl(kChunkFin);
  const std::uint64_t wr =
      res_.net->post_rdma_write(dst_, src, remote, bytes, std::move(fin));
  wr_to_chunk_.emplace(wr, i);
  ++inflight_[i];
  posted_[i] = true;
  // Only a FIRST posting counts as progress. A retransmission is our own
  // doing — letting it refresh the retry budget would turn a dead data path
  // into an infinite retransmit loop instead of a bounded failure.
  if (!retransmit) note_progress();
}

void RndvSend::advance() {
  if (!failed_ && !drained() && timer_.fired()) handle_timeout();
  if (complete_ || failed_) return;
  // One firing pass over the dependency graph: each chain's frontier fires
  // every node whose gate yields, in declaration order — exactly the
  // historical frontier loops (see build_graph()).
  graph_.fire();
}

void RndvSend::on_cts(const netsim::WireMessage& m) {
  if (cts_received_ || complete_ || failed_) {
    if (res_.retries != nullptr) ++res_.retries->duplicates_dropped;
    return;
  }
  cts_received_ = true;
  peer_req_ = m.header[1];
  mode_ = static_cast<CtsMode>(m.header[2]);
  if (mode_ == CtsMode::kDirect) {
    if (m.header[4] == 1) {
      // Device-direct landing: the receiver advertised a cusim IPC handle
      // for its device buffer; open it to get a peer-copyable address.
      direct_base_ = static_cast<std::byte*>(
          res_.cuda->ipc_open_mem_handle(read_ipc_handle(m.payload)));
      ipc_mapped_ = true;
    } else {
      direct_base_ = static_cast<std::byte*>(read_address(m.payload, 0));
    }
  } else {
    const std::size_t n = address_count(m.payload);
    for (std::size_t i = 0; i < n; ++i) {
      remote_slots_.emplace_back(i, read_address(m.payload, i));
    }
  }
  note_progress();
  advance();
}

void RndvSend::on_rts_ack() {
  if (cts_received_ || complete_ || failed_) {
    if (res_.retries != nullptr) ++res_.retries->duplicates_dropped;
    return;
  }
  // The RTS is known delivered; the peer simply has no matching recv yet.
  // Moving the epoch makes the pending deadline stale, which restores the
  // retry budget — the sender keeps probing (each probe re-elicits an
  // RTS_ACK or, once matched, the CTS) but only sustained silence counts
  // toward permanent failure.
  note_progress();
}

void RndvSend::on_send_done_ack() {
  if (!done_owed_ || done_acked_) {
    if (res_.retries != nullptr) ++res_.retries->duplicates_dropped;
    return;
  }
  done_acked_ = true;
  timer_.cancel();
}

void RndvSend::on_chunk_ack(const netsim::WireMessage& m) {
  AckBatchEntry e;
  e.sender_req = m.header[0];
  e.chunk_idx = m.header[1];
  e.slot_idx = m.header[2];
  e.credit_seq = m.header[3];
  e.slot_addr = (m.header[2] != kNoSlot) ? read_address(m.payload, 0)
                                         : nullptr;
  e.congested = m.header[4] != 0;
  apply_chunk_ack(e);
}

void RndvSend::apply_chunk_ack(const AckBatchEntry& e) {
  if (complete_ || failed_) return;
  const std::size_t idx = e.chunk_idx;
  if (idx >= plan_.count) return;
  if (acked_[idx]) {
    if (res_.retries != nullptr) ++res_.retries->duplicates_dropped;
    return;
  }
  acked_[idx] = true;
  ++acked_count_;
  note_progress();
  if (res_.sched != nullptr) {
    // ECN echo: the receiver tells us whether this chunk's fin queued past
    // the fabric's backlog threshold; the scheduler turns marks into depth
    // halvings and clean streaks into growth. After the duplicate check,
    // so a replayed ack cannot double-count one congestion episode.
    res_.sched->note_chunk_ack(req_id_, e.congested);
  }
  if (e.slot_idx != kNoSlot) {
    // The freed landing slot rides on the ack (the paper's CREDIT).
    remote_slots_.emplace_back(e.slot_idx, e.slot_addr);
  }
  maybe_release_slot(idx);
  if (maybe_complete()) return;
  advance();
}

bool RndvSend::maybe_complete() {
  // Completion requires every chunk acked AND no write still queued in the
  // transmit pipeline: the fabric copies out of the source buffer when a
  // write drains, so returning control (and buffer ownership) to the
  // application earlier would let it scribble over bytes a duplicate
  // retransmission has yet to pick up. Once the last local CQE is in, any
  // still-undelivered duplicate already carries its final bytes.
  if (acked_count_ != plan_.count) return false;
  for (std::size_t i = 0; i < plan_.count; ++i) {
    if (inflight_[i] != 0) return false;
  }
  complete_transfer();
  return true;
}

void RndvSend::maybe_release_slot(std::size_t i) {
  // A staging slot may only return to the pool once the chunk is acked AND
  // no posted write still references it — the fabric copies out of the
  // buffer when the transmit drains, so releasing under an in-flight
  // (possibly retransmitted) write would hand its memory to another
  // transfer mid-read.
  if (slots_[i].valid() && acked_[i] && inflight_[i] == 0) {
    sched_release(res_, req_id_, slots_[i]);
  }
}

bool RndvSend::on_rdma_complete(std::uint64_t wr_id) {
  auto it = wr_to_chunk_.find(wr_id);
  if (it == wr_to_chunk_.end()) return false;
  const std::size_t i = it->second;
  wr_to_chunk_.erase(it);
  --inflight_[i];
  ++rdma_done_;
  // Deliberately NO note_progress(): a local transmit completion is our own
  // event, not evidence the peer is alive — retransmitted writes would
  // otherwise keep resetting the retry budget forever. Budget refresh comes
  // only from receipts (CTS, acks, RTS_ACK, the RGET done).
  maybe_release_slot(i);
  if (!complete_ && !failed_ && maybe_complete()) return true;
  advance();
  return true;
}

bool RndvSend::on_rdma_error(std::uint64_t wr_id) {
  auto it = wr_to_chunk_.find(wr_id);
  if (it == wr_to_chunk_.end()) return false;
  const std::size_t i = it->second;
  wr_to_chunk_.erase(it);
  --inflight_[i];
  if (complete_ || failed_ || acked_[i]) {
    // A stale duplicate failed; the chunk already made it.
    maybe_release_slot(i);
    if (!complete_ && !failed_) maybe_complete();
    return true;
  }
  if (++write_errors_[i] > res_.tun->rndv_max_retries) {
    fail("RDMA write for chunk " + std::to_string(i) + " of rendezvous " +
         std::to_string(req_id_) + " failed " +
         std::to_string(write_errors_[i]) + " times");
    return true;
  }
  if (res_.retries != nullptr) ++res_.retries->error_retransmits;
  trace_event("fault_error_retransmit");
  post_chunk_rdma(i, /*retransmit=*/true);
  return true;
}

void RndvSend::on_rget_done(const netsim::WireMessage& m) {
  if (complete_ || failed_) return;
  if (rget_done_) {
    if (res_.retries != nullptr) ++res_.retries->duplicates_dropped;
    return;
  }
  rget_done_ = true;
  peer_req_ = m.header[1];  // lets the SEND_DONE be addressed back
  note_progress();
  complete_transfer();
}

void RndvSend::complete_transfer() {
  complete_ = true;
  res_.net->note_success(dst_);  // failover health: the path delivered
  for (std::size_t i = 0; i < plan_.count; ++i) {
    if (!slots_[i].valid()) continue;
    if (inflight_[i] > 0 && res_.slot_graveyard != nullptr) {
      // A duplicate write still sits in the transmit pipeline and will read
      // this buffer at drain time; park it until the rank tears down.
      res_.slot_graveyard->push_back(std::move(slots_[i]));
      slots_[i] = detail::StagingSlot{};
    } else {
      sched_release(res_, req_id_, slots_[i]);
    }
  }
  // Holds no pool slots and asks for none: out of the QoS head count (a
  // direct-mode SEND_DONE handshake may still be running; it needs no
  // staging resources).
  if (res_.sched != nullptr) res_.sched->unregister_transfer(req_id_);
  if (tbuf_ != nullptr) {
    // Safe even on the IPC path, where peer copies read the tbuf directly:
    // maybe_complete() required every inflight write's local CQE, and the
    // channel copies the bytes out when the transmit drains — before the
    // CQE is delivered.
    res_.cuda->free(tbuf_);
    tbuf_ = nullptr;
  }
  if (ipc_mapped_) {
    res_.cuda->ipc_close_mem_handle(direct_base_);
    ipc_mapped_ = false;
  }
  if (cts_received_ || rget_done_) {
    // Tell the receiver no retransmission can follow, releasing its
    // retained landing slots (and, in direct mode, its request).
    done_.kind = kSendDone;
    done_.header[0] = peer_req_;
    post_ctrl(done_);
  }
  // Direct mode is the one landing where the peer's request hinges on the
  // SEND_DONE (see RndvRecv::request_complete): keep the timer running and
  // retransmit it until the receiver's SEND_DONE_ACK. Everywhere else the
  // message is a best-effort courtesy — the receiver's own watchdog
  // reclaims its state if it is lost — and the receiver is not guaranteed
  // to still be polling, so retransmitting could never terminate.
  done_owed_ = cts_received_ && mode_ == CtsMode::kDirect;
  if (done_owed_) {
    retries_ = 0;
    arm_timer();
  } else {
    timer_.cancel();
  }
}

void RndvSend::fail(const std::string& reason) {
  res_.net->note_failure(dst_);  // failover health: retry budget exhausted
  if (res_.retries != nullptr) ++res_.retries->transfer_failures;
  trace_event("fault_transfer_failed");
  if (cts_received_) {
    // Best effort: a matched receiver fails immediately instead of waiting
    // out its watchdog. If this is lost the watchdog still bounds the wait.
    netsim::WireMessage abort;
    abort.kind = kSendAbort;
    abort.header[0] = peer_req_;
    post_ctrl(std::move(abort));
    trace_event("fault_send_abort");
  }
  abandon(reason);
}

void RndvSend::cancel(const std::string& reason) {
  if (failed_ || (done() && drained())) return;
  trace_event("fault_send_canceled");
  // Retraction, best effort but always sent: a canceled send whose RTS is
  // parked unmatched in the peer's unexpected queue would otherwise be
  // re-acked on every retransmission, resetting our retry budget forever
  // (the ack legitimately means "handshake alive" for a receiver that just
  // has not posted yet). header[1] carries our request id so the peer can
  // purge the parked RTS even though it never assigned a receiver id.
  netsim::WireMessage abort;
  abort.kind = kSendAbort;
  abort.header[0] = peer_req_;  // 0 until a CTS arrived
  abort.header[1] = req_id_;
  post_ctrl(std::move(abort));
  abandon(reason);
}

// Shared terminal path of fail() and cancel(): mark failed, stop the
// watchdog, and dispose of staging state safely against late writes.
void RndvSend::abandon(const std::string& reason) {
  failed_ = true;
  error_ = reason;
  timer_.cancel();
  for (std::size_t i = 0; i < plan_.count; ++i) {
    if (!slots_[i].valid()) continue;
    if (inflight_[i] > 0 && res_.slot_graveyard != nullptr) {
      res_.slot_graveyard->push_back(std::move(slots_[i]));
      slots_[i] = detail::StagingSlot{};
    } else {
      sched_release(res_, req_id_, slots_[i]);
    }
  }
  if (tbuf_ != nullptr && path_ == Path::kDeviceIpcOffload &&
      res_.slot_graveyard != nullptr) {
    // IPC peer copies read the device tbuf at drain time; a queued write of
    // this failed transfer may still reference it. Park it like a host slot.
    bool writes_queued = false;
    for (int n : inflight_) writes_queued = writes_queued || n > 0;
    if (writes_queued) {
      detail::StagingSlot park;
      park.ptr = tbuf_;
      park.device_owner = res_.cuda;
      res_.slot_graveyard->push_back(park);
      tbuf_ = nullptr;
    }
  }
  if (ipc_mapped_) {
    res_.cuda->ipc_close_mem_handle(direct_base_);
    ipc_mapped_ = false;
  }
  if (res_.sched != nullptr) res_.sched->unregister_transfer(req_id_);
}

// ===========================================================================
// RndvRecv
// ===========================================================================

RndvRecv::RndvRecv(RankResources& res, MsgView msg, int src_node,
                   std::uint64_t sender_req, std::uint64_t my_req_id,
                   std::size_t incoming_bytes, std::size_t sender_chunk,
                   const std::byte* rget_src, RndvCache* cache)
    : res_(res),
      msg_(std::move(msg)),
      src_(src_node),
      sender_req_(sender_req),
      req_id_(my_req_id),
      graph_(res.trig),
      rget_src_(rget_src),
      timer_(*res.engine) {
  const Tunables& tun = *res_.tun;
  // Path inputs that may change between persistent rounds: the transport
  // route (failover) and the sender's per-round RGET advertisement. The
  // cache is keyed on both; the chunk table stays sender-driven (below).
  const bool rget_path = tun.rget && rget_src_ != nullptr &&
                         !msg_.on_device && msg_.contiguous;
  const bool ipc_direct = !rget_path && msg_.on_device &&
                          res_.net != nullptr &&
                          res_.net->device_direct(src_node);
  if (cache != nullptr && cache->recv_valid &&
      cache->recv_ipc == ipc_direct && cache->recv_rget == rget_path) {
    path_ = static_cast<Path>(cache->recv_path);
    if (res_.trig != nullptr) ++res_.trig->plan_cache_hits;
  } else {
    if (rget_path) {
      path_ = Path::kHostRget;
    } else if (ipc_direct) {
      // Co-located sender with a peer-copy-capable transport: the payload
      // lands in device memory directly (user buffer when contiguous, a
      // device-side reassembly buffer otherwise). No host staging window.
      path_ = msg_.contiguous ? Path::kDeviceIpcDirect
                              : Path::kDeviceIpcOffload;
    } else if (msg_.on_device) {
      if (msg_.contiguous) {
        path_ = Path::kDeviceContig;
      } else if (select_offload(res_, msg_)) {
        path_ = Path::kDeviceOffload;
      } else {
        path_ = Path::kDevicePcie;
      }
    } else {
      path_ = msg_.contiguous ? Path::kHostDirect : Path::kHostUnpack;
    }
    if (cache != nullptr) {
      cache->recv_valid = true;
      cache->recv_ipc = ipc_direct;
      cache->recv_rget = rget_path;
      cache->recv_path = static_cast<int>(path_);
    }
  }
  // Chunking is sender-driven (carried in the RTS), so both ends slice the
  // packed stream identically.
  plan_ = ChunkPlan::make(incoming_bytes, sender_chunk);
  if (path_ == Path::kHostUnpack && msg_.plan && msg_.packed_bytes > 0) {
    if (cache != nullptr && cache->recv_cursors &&
        cache->recv_chunk == plan_.chunk) {
      cursors_ = cache->recv_cursors;  // same sender chunk: cursors hold
    } else {
      cursors_ = msg_.plan->chunk_cursors(plan_.chunk);
      if (cache != nullptr) {
        cache->recv_chunk = plan_.chunk;
        cache->recv_cursors = cursors_;
      }
    }
  }
  chunks_.resize(plan_.count);
  acks_.resize(plan_.count);
  drained_chunk_.assign(plan_.count, false);
  if (res_.sched != nullptr) {
    res_.sched->register_transfer(req_id_, plan_.total);
  }
}

RndvRecv::~RndvRecv() {
  // Destructors must not throw, even when tearing down a transfer that an
  // engine abort interrupted mid-flight.
  try {
    timer_.cancel();
    if (res_.sched != nullptr) {
      res_.sched->drop_pending(src_, sender_req_);
      res_.sched->unregister_transfer(req_id_);
    }
    if (rtbuf_ != nullptr) {
      res_.cuda->free(rtbuf_);
      rtbuf_ = nullptr;
    }
    for (auto& s : slots_) detail::release_slot(*res_.vbufs, s);
  } catch (...) {  // NOLINT(bugprone-empty-catch)
  }
}

void RndvRecv::trace_event(const char* category) {
  if (res_.trace != nullptr) {
    res_.trace->event(res_.rank, category, res_.engine->now());
  }
}

void RndvRecv::post_ctrl(netsim::WireMessage msg) {
  msg.seq = ctrl_seq_++;
  msg.flow = sender_req_;  // same flow label as the sender's leg
  if (res_.sched != nullptr) {
    res_.sched->note_ctrl(msg.kind);
    // Piggyback: pending coalesced credits for this peer must never trail
    // a fresher control message.
    res_.sched->flush_peer(src_);
  }
  res_.net->post_send(src_, std::move(msg));
}

void RndvRecv::arm_timer() {
  armed_epoch_ = progress_epoch_;
  const sim::SimTime at =
      backoff_deadline(*res_.tun, retries_, res_.engine->now());
  sim::Notifier* n = res_.notifier;
  timer_.arm(at, [n] {
    if (n != nullptr) n->notify();
  });
}

void RndvRecv::handle_timeout() {
  if (progress_epoch_ != armed_epoch_) {
    // Something arrived (or local staging moved) since the deadline was
    // armed: the transfer is alive, restore the budget.
    retries_ = 0;
    arm_timer();
    return;
  }
  ++retries_;
  if (res_.retries != nullptr) ++res_.retries->timeouts;
  trace_event("fault_timeout");
  // Twice the sender's budget: a struggling-but-alive sender always outlasts
  // this watchdog (its retransmissions keep moving our epoch), and when it
  // fails its best-effort SEND_ABORT deterministically beats our expiry.
  if (retries_ > res_.tun->rndv_max_retries * 2) {
    if (completed_ == plan_.count) {
      // Payload fully landed; only the SEND_DONE never made it. The sender
      // is done or dead either way — reclaim without it.
      force_drain();
    } else {
      fail("rendezvous " + std::to_string(req_id_) + " from rank " +
           std::to_string(src_) + ": sender went silent with payload "
           "incomplete");
    }
    return;
  }
  arm_timer();
}

void RndvRecv::force_drain() {
  send_done_ = true;
  timer_.cancel();
  // Failover health: the payload made it, but the peer went silent before
  // closing the handshake — count it against the path.
  res_.net->note_failure(src_);
  if (res_.sched != nullptr) {
    // A pending coalesced ack advertises a slot address as a credit; the
    // release below recycles those addresses, so the acks must die first.
    res_.sched->drop_pending(src_, sender_req_);
  }
  // Safe to recycle rather than park in the graveyard: the silence that got
  // us here spans the entire backoff budget, orders of magnitude beyond any
  // delivery latency plus jitter, so no write posted by the sender can
  // still be queued against these addresses.
  for (auto& s : slots_) sched_release(res_, req_id_, s);
  if (res_.sched != nullptr) res_.sched->unregister_transfer(req_id_);
  if (res_.retries != nullptr) ++res_.retries->force_drains;
  trace_event("fault_force_drain");
}

void RndvRecv::fail(const std::string& reason) {
  res_.net->note_failure(src_);  // failover health
  if (res_.retries != nullptr) ++res_.retries->transfer_failures;
  trace_event("fault_transfer_failed");
  abandon(reason);
}

void RndvRecv::cancel(const std::string& reason) {
  if (failed_) return;
  trace_event("fault_recv_canceled");
  // No retraction message exists for a receiver; the peer's own abort (it
  // cancels its matching send, or its COLL_ABORT wave arrives) or its
  // retry budget bounds the sender side.
  abandon(reason);
}

// Shared terminal path of fail() and cancel().
void RndvRecv::abandon(const std::string& reason) {
  failed_ = true;
  error_ = reason;
  timer_.cancel();
  if (res_.sched != nullptr) {
    // Queued acks for this transfer advertise slots headed for the
    // graveyard (or the pool); they must never reach the wire.
    res_.sched->drop_pending(src_, sender_req_);
  }
  for (auto& s : slots_) {
    if (!s.valid()) continue;
    if (res_.slot_graveyard != nullptr) {
      // The sender may still have writes queued against these addresses;
      // park them until the rank tears down.
      res_.slot_graveyard->push_back(std::move(s));
      s = detail::StagingSlot{};
    } else {
      sched_release(res_, req_id_, s);
    }
  }
  if (rtbuf_ != nullptr && res_.slot_graveyard != nullptr) {
    // Same hazard in device memory: the co-located sender's peer copies
    // target the rtbuf through its IPC mapping, and a queued duplicate may
    // still drain after this failure. Park it for teardown-time cudaFree.
    detail::StagingSlot park;
    park.ptr = rtbuf_;
    park.device_owner = res_.cuda;
    res_.slot_graveyard->push_back(park);
    rtbuf_ = nullptr;
  }
  if (res_.sched != nullptr) res_.sched->unregister_transfer(req_id_);
}

void RndvRecv::start() {
  build_graph();
  // Liveness watchdog. From here on the sender is actively driving the
  // transfer (or retransmitting), so every receipt moves our epoch;
  // sustained total silence for the whole backoff budget means the sender
  // failed or the path died, and the receive must resolve bounded instead
  // of tripping the engine's deadlock detector.
  arm_timer();
  if (path_ == Path::kHostRget) {
    // Receiver-driven: pull the whole message in one RDMA READ; no CTS.
    rget_wr_ = res_.net->post_rdma_read(src_, msg_.base, rget_src_,
                                             plan_.total);
    return;
  }
  cts_.kind = kCts;
  cts_.header[0] = sender_req_;
  cts_.header[1] = req_id_;
  if (path_ == Path::kHostDirect) {
    cts_.header[2] = static_cast<std::uint64_t>(CtsMode::kDirect);
    cts_.header[3] = 1;
    append_address(cts_.payload, msg_.base);
    cts_sent_ = true;
    post_ctrl(cts_);
    return;
  }
  if (path_ == Path::kDeviceIpcDirect || path_ == Path::kDeviceIpcOffload) {
    // Intra-node device-direct landing: export an IPC handle for the
    // landing buffer instead of advertising host staging slots. The
    // co-located sender opens the handle and peer-copies straight in.
    std::byte* landing;
    if (path_ == Path::kDeviceIpcOffload) {
      rtbuf_ = static_cast<std::byte*>(res_.cuda->malloc(plan_.total));
      landing = rtbuf_;
    } else {
      landing = static_cast<std::byte*>(msg_.base);
    }
    cts_.header[2] = static_cast<std::uint64_t>(CtsMode::kDirect);
    cts_.header[3] = 1;
    cts_.header[4] = 1;  // payload carries an IPC handle, not an address
    append_ipc_handle(cts_.payload, res_.cuda->ipc_get_mem_handle(landing));
    cts_sent_ = true;
    post_ctrl(cts_);
    return;
  }
  if (path_ == Path::kDeviceOffload) {
    rtbuf_ = static_cast<std::byte*>(res_.cuda->malloc(plan_.total));
  }
  // Advertise a window of landing slots. The first slot falls back to a
  // pinned one-off buffer when the pool is drained, so a CTS can always be
  // sent (guaranteed progress). Beyond the first slot, a receive window
  // may only use the pool while at least half of it stays free — landing
  // windows of concurrent receives must not starve the send side (which
  // would close a circular wait across ranks).
  const std::size_t want = std::min<std::size_t>(plan_.count,
                                                 res_.tun->recv_window);
  for (std::size_t i = 0; i < want; ++i) {
    detail::StagingSlot s;
    const bool pool_allowed =
        (i == 0) || res_.vbufs->available() * 2 > res_.vbufs->capacity();
    if (pool_allowed) {
      // The first slot bypasses the fairness gate: a CTS must always go
      // out (guaranteed progress), and the reserve carved out for this
      // transfer covers it anyway.
      s = sched_acquire(res_, req_id_, plan_.chunk, /*gated=*/i != 0);
    }
    if (!s.valid()) {
      if (i == 0) s = detail::pinned_slot(*res_.cuda, plan_.chunk);
      else break;
    }
    slots_.push_back(std::move(s));
  }
  // The window is advertised exactly once — a denial above must not leave
  // a stale fairness turn queued (this receiver will never re-ask).
  sched_withdraw(res_, req_id_);
  cts_.header[2] = static_cast<std::uint64_t>(CtsMode::kStaged);
  cts_.header[3] = slots_.size();
  for (const auto& s : slots_) append_address(cts_.payload, s.ptr);
  slots_advertised_ = slots_.size();
  cts_sent_ = true;
  post_ctrl(cts_);
}

void RndvRecv::on_duplicate_rts() {
  note_progress();  // the sender is alive and probing
  if (path_ == Path::kHostRget) {
    if (done_sent_) {
      // Our kRndvDone was lost; replay it.
      post_ctrl(done_msg_);
      if (res_.retries != nullptr) ++res_.retries->done_resent;
      trace_event("fault_done_resent");
    }
    // Otherwise the RDMA READ is still in flight; the done will follow.
    return;
  }
  if (cts_sent_) {
    post_ctrl(cts_);
    if (res_.retries != nullptr) ++res_.retries->cts_resent;
    trace_event("fault_cts_resent");
  }
}

void RndvRecv::on_chunk_fin(const netsim::WireMessage& m) {
  const std::size_t idx = m.header[1];
  if (idx >= plan_.count) throw std::logic_error("RndvRecv: bad chunk index");
  note_progress();  // any fin — duplicate included — proves sender liveness
  if (chunks_[idx].arrived) {
    // Retransmitted write for a chunk we already have. If we already
    // drained (and acked) it, the ack was evidently lost: replay it. If it
    // is still in the pipeline, the pending ack will cover it.
    if (drained_chunk_[idx]) {
      resend_ack(idx);
    } else if (res_.retries != nullptr) {
      ++res_.retries->duplicates_dropped;
    }
    return;
  }
  if (m.header[3] != plan_.offset_of(idx) ||
      m.header[4] != plan_.bytes_of(idx)) {
    throw std::logic_error("RndvRecv: chunk geometry mismatch");
  }
  if (!direct_landing() && m.header[2] >= slots_.size()) {
    throw std::logic_error("RndvRecv: chunk fin names unknown slot");
  }
  chunks_[idx].arrived = true;
  chunks_[idx].ecn = m.ecn;  // remember the mark until the ack echoes it
  chunks_[idx].slot = m.header[2];
  ++arrived_count_;
  advance();
}

void RndvRecv::ack_chunk(std::size_t chunk_idx) {
  netsim::WireMessage ack;
  ack.kind = kChunkAck;
  ack.header[0] = sender_req_;
  ack.header[1] = chunk_idx;
  ack.header[2] = kNoSlot;
  ack.header[4] = chunks_[chunk_idx].ecn ? 1 : 0;  // ECN echo
  if (!direct_landing() && slots_advertised_ < plan_.count) {
    // Re-advertise the drained slot (the paper's CREDIT), fused onto the
    // ack so it shares the same retransmission recovery.
    const std::uint64_t slot_idx = chunks_[chunk_idx].slot;
    ack.header[2] = slot_idx;
    ack.header[3] = credit_seq_++;
    append_address(ack.payload, slots_[slot_idx].ptr);
    ++slots_advertised_;
  }
  drained_chunk_[chunk_idx] = true;
  acks_[chunk_idx] = ack;
  ++drained_acks_;
  note_progress();  // local drain progress keeps the watchdog quiet
  if (res_.sched != nullptr && res_.sched->coalescing()) {
    // Hand the ack to the coalescer: it goes out within the delivery
    // window, batched with whatever else this rank owes the same peer
    // (possibly acks of other transfers). Replays of a stored ack on a
    // duplicate fin still use post_ctrl directly — recovery traffic must
    // not sit in a batching window.
    AckBatchEntry e;
    e.sender_req = sender_req_;
    e.chunk_idx = chunk_idx;
    e.slot_idx = ack.header[2];
    e.credit_seq = ack.header[3];
    e.slot_addr =
        (ack.header[2] != kNoSlot) ? slots_[ack.header[2]].ptr : nullptr;
    e.congested = chunks_[chunk_idx].ecn;
    // The credit valve: with half the advertised window's credits pending
    // the sender is at risk of stalling on the coalescing timer; a
    // one-slot window means every ack is the sender's only credit and
    // must not idle in a batch at all. And with no other transfer active
    // there is nothing to batch with — every held ack is pure pipeline
    // delay — so a solo transfer flushes each credit immediately.
    const std::size_t valve =
        res_.sched->active_transfers() > 1
            ? std::max<std::size_t>(1, slots_.size() / 2)
            : 1;
    res_.sched->queue_ack(src_, e, valve);
    if (drained_acks_ == plan_.count) {
      // The transfer's last ack must not sit in a batching window: our
      // request may complete right now, the application may never drive
      // this rank's progress loop again, and the sender's completion
      // hinges on this ack. Flush synchronously (it carries every other
      // ack pending for this peer with it).
      res_.sched->flush_peer(src_);
    }
    return;
  }
  post_ctrl(std::move(ack));
}

void RndvRecv::resend_ack(std::size_t chunk_idx) {
  post_ctrl(acks_[chunk_idx]);
  if (res_.retries != nullptr) ++res_.retries->acks_resent;
  trace_event("fault_ack_resent");
}

void RndvRecv::on_send_done() {
  note_progress();
  if (send_done_) {
    if (res_.retries != nullptr) ++res_.retries->duplicates_dropped;
  } else {
    send_done_ = true;
    res_.net->note_success(src_);  // failover health: full round trip closed
    // Every chunk is acked at the sender: no retransmitted write can target
    // these slots any more, so they may finally return to the pool. (The
    // SEND_DONE also proves no ack of ours is still coalescing — the
    // sender saw them all.)
    for (auto& s : slots_) sched_release(res_, req_id_, s);
    if (res_.sched != nullptr) res_.sched->unregister_transfer(req_id_);
  }
  if (direct_landing()) {
    // The sender retransmits its SEND_DONE until we confirm (our request
    // hinges on it, so it must be reliable). Reply to duplicates too: the
    // retransmission means our previous ack was lost.
    netsim::WireMessage ack;
    ack.kind = kSendDoneAck;
    ack.header[0] = sender_req_;
    post_ctrl(std::move(ack));
  }
  if (drained()) timer_.cancel();
  advance();
}

void RndvRecv::on_send_abort() {
  note_progress();
  if (failed_ || send_done_) {
    if (res_.retries != nullptr) ++res_.retries->duplicates_dropped;
    return;
  }
  if (completed_ == plan_.count) {
    // Everything already landed and unpacked; the sender merely never
    // learned it. The data is good — drain, don't fail.
    force_drain();
    return;
  }
  fail("rendezvous " + std::to_string(req_id_) + " from rank " +
       std::to_string(src_) + ": sender aborted the transfer");
}

bool RndvRecv::on_rdma_read_complete(std::uint64_t wr_id) {
  if (path_ != Path::kHostRget || wr_id != rget_wr_ || done_sent_) {
    return false;
  }
  note_progress();
  completed_ = plan_.count;
  done_msg_.kind = kRndvDone;
  done_msg_.header[0] = sender_req_;
  done_msg_.header[1] = req_id_;  // return address for the SEND_DONE
  done_sent_ = true;
  post_ctrl(done_msg_);
  return true;
}

bool RndvRecv::request_complete() const {
  if (failed_) return false;
  if (path_ == Path::kHostDirect || path_ == Path::kDeviceIpcDirect) {
    // Direct landings go straight into the user buffer, which the
    // application owns again (or may have freed) the moment the request
    // completes. A duplicate write retransmitted because its CHUNK_ACK was
    // lost could drain afterwards and overwrite whatever the application
    // put there — so completion additionally waits for the sender's
    // (reliable, acked) SEND_DONE, the proof that nothing can still drain.
    // The watchdog's force_drain bounds the wait if the sender died.
    // (kDeviceIpcOffload is exempt: duplicates land in the protocol-owned
    // rtbuf, which outlives the request.)
    return completed_ == plan_.count && send_done_;
  }
  return completed_ == plan_.count;
}

bool RndvRecv::drained() const {
  if (failed_) return true;  // slots already parked in the graveyard
  return completed_ == plan_.count && send_done_;
}

void RndvRecv::build_graph() {
  graph_.clear();
  if (res_.trig != nullptr) ++res_.trig->graphs_built;
  switch (path_) {
    case Path::kHostRget:
      return;  // driven entirely by on_rdma_read_complete; no chains
    case Path::kHostDirect:
    case Path::kDeviceIpcDirect: {
      // The write already landed in the user buffer (RDMA into host memory
      // or a peer D2D copy through the opened IPC mapping); ack each
      // arrival. Arrivals are unordered, hence a sparse sweep, not a
      // frontier.
      const int ack = graph_.add_chain(TriggerGraph::ChainKind::kSparse);
      for (std::size_t i = 0; i < plan_.count; ++i) {
        graph_.add_node(
            ack,
            [this, i] { return chunks_[i].arrived && !drained_chunk_[i]; },
            [this, i] {
              ack_chunk(i);
              ++completed_;
            });
      }
      return;
    }
    case Path::kDeviceIpcOffload: {
      // Peer copies land packed chunks in the device rtbuf; each arrival
      // feeds a D2D unpack kernel. No host staging, so the ack goes out as
      // soon as the chunk is handed to the unpack stream. The rtbuf is
      // deliberately NOT freed when the last unpack drains: a duplicate
      // peer copy (retransmitted because its ack was lost) may still be
      // queued against it, so it lives until the transfer object tears
      // down (destructor) or is parked in the graveyard (fail()).
      const int unpack = graph_.add_chain(TriggerGraph::ChainKind::kFrontier);
      for (std::size_t i = 0; i < plan_.count; ++i) {
        graph_.add_node(unpack, [this, i] { return chunks_[i].arrived; },
                        [this, i] {
                          const std::size_t off = plan_.offset_of(i);
                          chunks_[i].unpack_done = submit_device_unpack(
                              *res_.cuda, res_.unpack_stream, msg_, off,
                              plan_.bytes_of(i), rtbuf_ + off);
                          chunks_[i].unpack_submitted = true;
                          ack_chunk(i);
                          ++next_unpack_;
                        });
      }
      const int done = graph_.add_chain(TriggerGraph::ChainKind::kFrontier);
      for (std::size_t i = 0; i < plan_.count; ++i) {
        graph_.add_node(done,
                        [this, i] {
                          return chunks_[i].unpack_submitted &&
                                 chunks_[i].unpack_done.query();
                        },
                        [this] { ++completed_; });
      }
      return;
    }
    case Path::kHostUnpack: {
      // CPU unpack straight from the landing slot, in chunk order (each
      // unpack charges host time, so the frontier drains sequentially).
      const int unpack = graph_.add_chain(TriggerGraph::ChainKind::kFrontier);
      for (std::size_t i = 0; i < plan_.count; ++i) {
        graph_.add_node(unpack, [this, i] { return chunks_[i].arrived; },
                        [this, i] {
                          const std::size_t off = plan_.offset_of(i);
                          const std::size_t bytes = plan_.bytes_of(i);
                          res_.engine->delay(res_.tun->host_pack_time(
                              bytes, chunk_segments(msg_, cursors_.get(), i,
                                                    off, bytes)));
                          if (cursors_ && i < cursors_->count &&
                              off == i * cursors_->chunk) {
                            msg_.dtype.unpack_bytes_from(
                                cursors_->cursors[i],
                                slots_[chunks_[i].slot].ptr, msg_.count,
                                bytes, msg_.base);
                          } else {
                            msg_.dtype.unpack_bytes(
                                slots_[chunks_[i].slot].ptr, msg_.count, off,
                                bytes, msg_.base);
                          }
                          ack_chunk(i);
                          ++completed_;
                        });
      }
      return;
    }
    case Path::kDeviceContig:
    case Path::kDevicePcie: {
      // H2D frontier feeds the copy engine in order; the ack frontier
      // trails it, firing as each copy's event drains.
      const int h2d = graph_.add_chain(TriggerGraph::ChainKind::kFrontier);
      for (std::size_t i = 0; i < plan_.count; ++i) {
        graph_.add_node(h2d, [this, i] { return chunks_[i].arrived; },
                        [this, i] {
                          const std::size_t off = plan_.offset_of(i);
                          const std::size_t bytes = plan_.bytes_of(i);
                          const std::byte* slot_ptr =
                              slots_[chunks_[i].slot].ptr;
                          if (path_ == Path::kDeviceContig) {
                            res_.cuda->memcpy_async(
                                static_cast<std::byte*>(msg_.base) + off,
                                slot_ptr, bytes,
                                cusim::MemcpyKind::kHostToDevice,
                                res_.h2d_stream);
                            chunks_[i].h2d_done =
                                res_.cuda->record_event(res_.h2d_stream);
                          } else {
                            chunks_[i].h2d_done = submit_pcie_unpack_from_host(
                                *res_.cuda, res_.h2d_stream, msg_, off, bytes,
                                slot_ptr);
                          }
                          chunks_[i].h2d_submitted = true;
                          ++next_h2d_;
                        });
      }
      const int ack = graph_.add_chain(TriggerGraph::ChainKind::kFrontier);
      for (std::size_t i = 0; i < plan_.count; ++i) {
        graph_.add_node(ack,
                        [this, i] {
                          return chunks_[i].h2d_submitted &&
                                 chunks_[i].h2d_done.query();
                        },
                        [this, i] {
                          ack_chunk(i);
                          ++completed_;
                        });
      }
      return;
    }
    case Path::kDeviceOffload: {
      // The full three-stage landing pipeline: H2D into the rtbuf, D2D
      // unpack kernel (the host slot drains — ack — as soon as its bytes
      // are in the rtbuf), completion as each unpack's event drains.
      const int h2d = graph_.add_chain(TriggerGraph::ChainKind::kFrontier);
      for (std::size_t i = 0; i < plan_.count; ++i) {
        graph_.add_node(h2d, [this, i] { return chunks_[i].arrived; },
                        [this, i] {
                          const std::size_t off = plan_.offset_of(i);
                          res_.cuda->memcpy_async(
                              rtbuf_ + off, slots_[chunks_[i].slot].ptr,
                              plan_.bytes_of(i),
                              cusim::MemcpyKind::kHostToDevice,
                              res_.h2d_stream);
                          chunks_[i].h2d_done =
                              res_.cuda->record_event(res_.h2d_stream);
                          chunks_[i].h2d_submitted = true;
                          ++next_h2d_;
                        });
      }
      const int unpack = graph_.add_chain(TriggerGraph::ChainKind::kFrontier);
      for (std::size_t i = 0; i < plan_.count; ++i) {
        graph_.add_node(unpack,
                        [this, i] {
                          return chunks_[i].h2d_submitted &&
                                 chunks_[i].h2d_done.query();
                        },
                        [this, i] {
                          const std::size_t off = plan_.offset_of(i);
                          chunks_[i].unpack_done = submit_device_unpack(
                              *res_.cuda, res_.unpack_stream, msg_, off,
                              plan_.bytes_of(i), rtbuf_ + off);
                          chunks_[i].unpack_submitted = true;
                          ack_chunk(i);
                          ++next_unpack_;
                        });
      }
      const int done = graph_.add_chain(TriggerGraph::ChainKind::kFrontier);
      for (std::size_t i = 0; i < plan_.count; ++i) {
        graph_.add_node(done,
                        [this, i] {
                          return chunks_[i].unpack_submitted &&
                                 chunks_[i].unpack_done.query();
                        },
                        [this] { ++completed_; });
      }
      graph_.set_epilogue(done, [this] {
        if (completed_ == plan_.count && rtbuf_ != nullptr) {
          res_.cuda->free(rtbuf_);
          rtbuf_ = nullptr;
        }
      });
      return;
    }
  }
}

void RndvRecv::advance() {
  if (!failed_ && !drained() && timer_.fired()) handle_timeout();
  if (failed_) return;
  graph_.fire();
}

}  // namespace mv2gnc::core
