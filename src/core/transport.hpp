// The pluggable transport seam (docs/SIMULATION.md, "Node topology and
// transport selection").
//
// core::rndv and the scheduler used to be hard-wired to netsim::Endpoint —
// every transfer crossed the simulated HCA, even between ranks that the
// topology places on the same node. Transport abstracts the wire path
// (post_send / post_rdma_write / post_rdma_read / poll), and TransportRouter
// picks one per peer:
//
//   * FabricTransport — pure delegation to the verbs-shaped RDMA fabric
//     (net/fabric.hpp). Timing, fault injection and delivery receipts are
//     untouched: a router holding only this transport is bit-for-bit the
//     pre-seam behavior.
//   * IpcTransport    — delegation to an intra-node channel (net/ipc.hpp):
//     co-located ranks exchange control messages over shared memory and
//     move payload with direct peer copies, bypassing the HCA's latency
//     and fault model entirely. Its device_direct() capability lets the
//     rendezvous collapse the five-stage pipeline to
//     D2D pack -> peer D2D copy -> D2D unpack (CUDA-IPC analogue).
//
// Completions from every transport funnel into one logical CQ: the router
// polls its transports in registration order (fabric first), so single-
// transport runs drain in exactly the legacy order.
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "net/wire.hpp"
#include "sim/time.hpp"

namespace mv2gnc::sim {
class Notifier;
}  // namespace mv2gnc::sim

namespace mv2gnc::netsim {
class Endpoint;
class IpcPort;
}  // namespace mv2gnc::netsim

namespace mv2gnc::core {

/// Aggregate traffic counters of one transport (mirrors the Endpoint
/// statistics surface so per-transport rows can share one table).
struct TransportStats {
  std::uint64_t messages_sent = 0;  // two-sided control/eager messages
  std::uint64_t bytes_sent = 0;     // payload bytes handed to the transport
  std::uint64_t rdma_writes = 0;    // one-sided writes (peer copies on IPC)
  std::uint64_t rdma_reads = 0;
  sim::SimTime busy_time = 0;       // transmit-pipeline occupancy
};

/// Abstract wire path between this rank and a set of peers. One instance
/// per (rank, transport kind); all methods are driven from the owning
/// rank's progress loop.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Short stable identifier ("fabric", "ipc") for stats tables.
  virtual const char* name() const = 0;

  /// Post a two-sided SEND; returns the work-request id. Work-request ids
  /// are unique across every transport of one rank (each implementation
  /// draws from a disjoint range), so completion dispatch by wr_id never
  /// needs to know which transport produced it.
  virtual std::uint64_t post_send(int dst, netsim::WireMessage msg) = 0;

  /// Post a one-sided write of `bytes` from `local` into `remote`,
  /// optionally delivering `imm` to the destination CQ after the data.
  virtual std::uint64_t post_rdma_write(
      int dst, const void* local, void* remote, std::size_t bytes,
      std::optional<netsim::WireMessage> imm = std::nullopt) = 0;

  /// Post a one-sided read of `bytes` from `remote` (on `src`) into
  /// `local`.
  virtual std::uint64_t post_rdma_read(int src, void* local,
                                       const void* remote,
                                       std::size_t bytes) = 0;

  /// Drain one completion; false if this transport's CQ is empty.
  virtual bool poll(netsim::Completion& out) = 0;

  /// Install the notifier poked whenever a completion is enqueued.
  virtual void set_wakeup(sim::Notifier* n) = 0;

  /// True when payload posted through this transport may land directly in
  /// peer *device* memory (the CUDA-IPC peer-copy fast path): the receiver
  /// may advertise a device address and the five-stage pipeline collapses.
  virtual bool device_direct() const { return false; }

  virtual TransportStats stats() const = 0;
};

/// Pure-delegation adapter over the RDMA fabric endpoint. Behavior
/// (timing, fault rolls, receipts, wr-id sequence) is identical to calling
/// the Endpoint directly.
class FabricTransport final : public Transport {
 public:
  explicit FabricTransport(netsim::Endpoint& endpoint);

  const char* name() const override { return "fabric"; }
  std::uint64_t post_send(int dst, netsim::WireMessage msg) override;
  std::uint64_t post_rdma_write(
      int dst, const void* local, void* remote, std::size_t bytes,
      std::optional<netsim::WireMessage> imm) override;
  std::uint64_t post_rdma_read(int src, void* local, const void* remote,
                               std::size_t bytes) override;
  bool poll(netsim::Completion& out) override;
  void set_wakeup(sim::Notifier* n) override;
  TransportStats stats() const override;

 private:
  netsim::Endpoint& endpoint_;
};

/// Delegation adapter over one rank's port on the intra-node IPC channel.
class IpcTransport final : public Transport {
 public:
  explicit IpcTransport(netsim::IpcPort& port);

  const char* name() const override { return "ipc"; }
  std::uint64_t post_send(int dst, netsim::WireMessage msg) override;
  std::uint64_t post_rdma_write(
      int dst, const void* local, void* remote, std::size_t bytes,
      std::optional<netsim::WireMessage> imm) override;
  std::uint64_t post_rdma_read(int src, void* local, const void* remote,
                               std::size_t bytes) override;
  bool poll(netsim::Completion& out) override;
  void set_wakeup(sim::Notifier* n) override;
  bool device_direct() const override { return true; }
  TransportStats stats() const override;

 private:
  netsim::IpcPort& port_;
};

/// Health record of one routed peer, fed by the reliability layer
/// (note_failure on a permanent transfer failure or force-drain,
/// note_success on a completed transfer). Failure/success counts are
/// *consecutive* streaks — either event resets the other's streak — so
/// demotion and restore both require sustained evidence (hysteresis).
struct PeerHealth {
  std::uint64_t failures = 0;    // consecutive failed transfers
  std::uint64_t successes = 0;   // consecutive completed transfers
  std::uint64_t demotions = 0;   // times the peer was demoted to fallback
  std::uint64_t restores = 0;    // times the routed path was restored
  bool demoted = false;          // currently forced onto the fallback
};

/// Per-rank routing table: which Transport carries traffic to each peer.
/// Unrouted peers use the fallback (the fabric). The router exposes the
/// same posting surface as a Transport so protocol code holds exactly one
/// handle to the wire.
///
/// With set_failover armed, the router also acts as a health tracker: a
/// peer whose routed (non-fallback) path keeps failing is demoted to the
/// fallback after `demote_after` consecutive failures, and optimistically
/// restored after `restore_after` consecutive successes — the successes
/// ride the fallback, so a restore is a re-probe of the routed path, not
/// proof it healed. Disabled by default: route() is untouched and the
/// note_* calls are no-ops, keeping pre-failover runs bit-exact.
class TransportRouter {
 public:
  /// `fallback` carries every peer without an explicit route. It is also
  /// the first transport polled.
  explicit TransportRouter(Transport& fallback);

  /// Route all traffic for `peer` over `t` (registers `t` for polling on
  /// first use). Call during setup, before any traffic flows.
  void add_route(int peer, Transport& t);

  /// Arm failover: demote a routed peer to the fallback after
  /// `demote_after` consecutive transfer failures, restore it after
  /// `restore_after` consecutive successes. `demote_after == 0` disables
  /// failover entirely (the default).
  void set_failover(std::uint64_t demote_after, std::uint64_t restore_after);

  /// Reliability-layer verdict on one transfer involving `peer`.
  void note_failure(int peer);
  void note_success(int peer);

  /// Health table for stats printing (peers that ever saw a verdict).
  const std::unordered_map<int, PeerHealth>& peer_health() const {
    return health_;
  }

  Transport& route(int peer) const;
  /// The peer's transport supports direct device-memory landings.
  bool device_direct(int peer) const { return route(peer).device_direct(); }

  // -- posting (forwarded to the peer's transport) -----------------------
  std::uint64_t post_send(int dst, netsim::WireMessage msg) {
    return route(dst).post_send(dst, std::move(msg));
  }
  std::uint64_t post_rdma_write(
      int dst, const void* local, void* remote, std::size_t bytes,
      std::optional<netsim::WireMessage> imm = std::nullopt) {
    return route(dst).post_rdma_write(dst, local, remote, bytes,
                                      std::move(imm));
  }
  std::uint64_t post_rdma_read(int src, void* local, const void* remote,
                               std::size_t bytes) {
    return route(src).post_rdma_read(src, local, remote, bytes);
  }

  /// Drain one completion from the first transport (in registration
  /// order: fallback first) whose CQ is non-empty.
  bool poll(netsim::Completion& out);

  /// Forward the progress-loop notifier to every registered transport.
  void set_wakeup(sim::Notifier* n);

  /// Registered transports, fallback first (for per-transport stats).
  const std::vector<Transport*>& transports() const { return transports_; }

 private:
  Transport& fallback_;
  std::vector<Transport*> transports_;
  std::unordered_map<int, Transport*> routes_;
  // Failover state (inert while demote_after_ == 0).
  std::uint64_t demote_after_ = 0;
  std::uint64_t restore_after_ = 3;
  std::unordered_map<int, PeerHealth> health_;
};

}  // namespace mv2gnc::core
