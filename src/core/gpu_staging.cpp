#include "core/gpu_staging.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

namespace mv2gnc::core {

namespace {

using mpisim::VectorPattern;

struct PatternSlice {
  std::byte* first_block;  // address of the first block in the range
  std::size_t rows;
  std::size_t block;
  std::size_t stride;
};

// Resolve packed range [offset, offset+bytes) of a patterned message to a
// 2-D region. Requires block-aligned offset/bytes.
PatternSlice slice_pattern(const MsgView& msg, std::size_t offset,
                           std::size_t bytes) {
  const VectorPattern& p = *msg.pattern;
  if (p.stride_bytes <= 0 ||
      static_cast<std::size_t>(p.stride_bytes) < p.block_bytes) {
    throw std::logic_error("slice_pattern: degenerate stride");
  }
  if (offset % p.block_bytes != 0 || bytes % p.block_bytes != 0) {
    throw std::logic_error("slice_pattern: range not block-aligned");
  }
  const std::size_t r0 = offset / p.block_bytes;
  const std::size_t rows = bytes / p.block_bytes;
  if (r0 + rows > p.count) {
    throw std::out_of_range("slice_pattern: range beyond pattern");
  }
  std::byte* first =
      static_cast<std::byte*>(msg.base) + msg.dtype.segments().front().offset +
      static_cast<std::int64_t>(r0) * p.stride_bytes;
  return PatternSlice{first, rows, p.block_bytes,
                      static_cast<std::size_t>(p.stride_bytes)};
}

bool patterned(const MsgView& msg) {
  return msg.pattern.has_value() && msg.pattern->stride_bytes > 0 &&
         static_cast<std::size_t>(msg.pattern->stride_bytes) >=
             msg.pattern->block_bytes;
}

// Generalized device pack/unpack kernel: a per-run gather/scatter over
// arbitrary descriptors. Every run pays the full first-row cost — unlike a
// uniform 2-D copy, the DMA engine cannot amortize descriptor processing
// across irregular runs (this is exactly what the plan's sub-pattern
// decomposition exists to avoid). The body performs the real byte moves.
cusim::Event submit_generalized(cusim::CudaContext& ctx, cusim::Stream& stream,
                                const MsgView& msg, std::size_t offset,
                                std::size_t bytes, std::byte* dense,
                                bool packing) {
  const auto& cost = ctx.device().cost();
  std::size_t runs;
  if (msg.plan && msg.plan->packed_bytes() > 0) {
    runs = msg.plan->segments_in_range(offset, bytes);
  } else {
    const std::size_t total_segs = msg.dtype.total_segments(msg.count);
    const double frac = msg.packed_bytes
                            ? static_cast<double>(bytes) /
                                  static_cast<double>(msg.packed_bytes)
                            : 0.0;
    runs = static_cast<std::size_t>(static_cast<double>(total_segs) * frac +
                                    0.5);
  }
  const sim::SimTime dur =
      cost.d2d_2d_setup_ns + cost.copy_launch_ns +
      static_cast<sim::SimTime>(static_cast<double>(runs) *
                                cost.d2d_row_first_ns) +
      cost.transfer_time(bytes, gpu::CopyDir::kDeviceToDevice);
  void* base = msg.base;
  const mpisim::Datatype dtype = msg.dtype;
  const int count = msg.count;
  ctx.launch_kernel_timed(stream, dur, [=] {
    if (packing) {
      dtype.pack_bytes(base, count, offset, bytes, dense);
    } else {
      dtype.unpack_bytes(dense, count, offset, bytes, base);
    }
  });
  return ctx.record_event(stream);
}

// Batched sub-pattern pack/unpack: the plan decomposed the irregular run
// list into a few maximal uniform (block, stride, rows) groups, so the
// packed range becomes a short sequence of 2-D copies (plus 1-D head/tail
// copies where a chunk boundary splits a row) instead of one degenerate
// per-row gather.
cusim::Event submit_subpatterned(cusim::CudaContext& ctx,
                                 cusim::Stream& stream, const MsgView& msg,
                                 std::size_t offset, std::size_t bytes,
                                 std::byte* dense, bool packing) {
  auto* base = static_cast<std::byte*>(msg.base);
  const std::size_t end = offset + bytes;
  const auto copy1d = [&](std::byte* strided, std::byte* packed,
                          std::size_t n) {
    if (packing) {
      ctx.memcpy_async(packed, strided, n,
                       cusim::MemcpyKind::kDeviceToDevice, stream);
    } else {
      ctx.memcpy_async(strided, packed, n,
                       cusim::MemcpyKind::kDeviceToDevice, stream);
    }
  };
  for (const SubPattern& sp : msg.plan->subpatterns()) {
    const std::size_t sp_end = sp.packed_offset + sp.packed_bytes();
    if (sp_end <= offset) continue;
    if (sp.packed_offset >= end) break;
    std::size_t lo = std::max(offset, sp.packed_offset) - sp.packed_offset;
    const std::size_t hi = std::min(end, sp_end) - sp.packed_offset;
    std::byte* d = dense + (sp.packed_offset + lo - offset);
    std::size_t row = lo / sp.block;
    const std::size_t rskip = lo % sp.block;
    std::byte* const sp_base = base + sp.first_offset;
    if (rskip != 0) {  // head: finish the split row with a 1-D copy
      const std::size_t take = std::min(sp.block - rskip, hi - lo);
      copy1d(sp_base + static_cast<std::int64_t>(row) * sp.stride + rskip, d,
             take);
      lo += take;
      d += take;
      ++row;
    }
    const std::size_t full_rows = (hi - lo) / sp.block;
    if (full_rows > 0) {
      std::byte* first = sp_base + static_cast<std::int64_t>(row) * sp.stride;
      const auto stride = static_cast<std::size_t>(sp.stride);
      if (packing) {
        ctx.memcpy2d_async(d, sp.block, first, stride, sp.block, full_rows,
                           cusim::MemcpyKind::kDeviceToDevice, stream);
      } else {
        ctx.memcpy2d_async(first, stride, d, sp.block, sp.block, full_rows,
                           cusim::MemcpyKind::kDeviceToDevice, stream);
      }
      lo += full_rows * sp.block;
      d += full_rows * sp.block;
      row += full_rows;
    }
    const std::size_t tail = hi - lo;
    if (tail > 0) {  // tail: start of a split row
      copy1d(sp_base + static_cast<std::int64_t>(row) * sp.stride, d, tail);
    }
  }
  return ctx.record_event(stream);
}

// True when the plan carries sub-patterns the batched path can drive
// (kSingleVector plans carry exactly one, which also serves unaligned
// slices of patterned messages).
bool subpatterned(const MsgView& msg) {
  return msg.plan && !msg.plan->subpatterns().empty();
}

}  // namespace

std::size_t align_chunk_to_pattern(const MsgView& msg, std::size_t chunk) {
  if (msg.contiguous || !patterned(msg)) return chunk;
  const std::size_t block = msg.pattern->block_bytes;
  if (chunk <= block) return block;
  return (chunk / block) * block;
}

// ---------------------------------------------------------------------------
// Blocking whole-message schemes (Figure 2)
// ---------------------------------------------------------------------------

void stage_to_host(cusim::CudaContext& ctx, PackScheme scheme,
                   const MsgView& msg, std::byte* host_dst) {
  if (!msg.on_device) {
    throw std::logic_error("stage_to_host: message is not device-resident");
  }
  if (msg.packed_bytes == 0) return;
  if (msg.contiguous) {
    ctx.memcpy(host_dst, msg.base, msg.packed_bytes,
               cusim::MemcpyKind::kDeviceToHost);
    return;
  }
  if (!patterned(msg)) {
    throw std::logic_error(
        "stage_to_host: strided scheme requires a vector pattern; use the "
        "pipeline path for irregular datatypes");
  }
  const PatternSlice s = slice_pattern(msg, 0, msg.packed_bytes);
  switch (scheme) {
    case PackScheme::kD2H_nc2nc:
      // Same-layout copy out: the host image keeps the device stride.
      ctx.memcpy2d(host_dst, s.stride, s.first_block, s.stride, s.block,
                   s.rows, cusim::MemcpyKind::kDeviceToHost);
      return;
    case PackScheme::kD2H_nc2c:
      ctx.memcpy2d(host_dst, s.block, s.first_block, s.stride, s.block,
                   s.rows, cusim::MemcpyKind::kDeviceToHost);
      return;
    case PackScheme::kD2D2H_nc2c2c: {
      auto* tbuf = static_cast<std::byte*>(ctx.malloc(msg.packed_bytes));
      ctx.memcpy2d(tbuf, s.block, s.first_block, s.stride, s.block, s.rows,
                   cusim::MemcpyKind::kDeviceToDevice);
      ctx.memcpy(host_dst, tbuf, msg.packed_bytes,
                 cusim::MemcpyKind::kDeviceToHost);
      ctx.free(tbuf);
      return;
    }
  }
}

void stage_from_host(cusim::CudaContext& ctx, PackScheme scheme,
                     const MsgView& msg, const std::byte* host_src) {
  if (!msg.on_device) {
    throw std::logic_error("stage_from_host: message is not device-resident");
  }
  if (msg.packed_bytes == 0) return;
  if (msg.contiguous) {
    ctx.memcpy(msg.base, host_src, msg.packed_bytes,
               cusim::MemcpyKind::kHostToDevice);
    return;
  }
  if (!patterned(msg)) {
    throw std::logic_error(
        "stage_from_host: strided scheme requires a vector pattern");
  }
  const PatternSlice s = slice_pattern(msg, 0, msg.packed_bytes);
  switch (scheme) {
    case PackScheme::kD2H_nc2nc:
      ctx.memcpy2d(s.first_block, s.stride, host_src, s.stride, s.block,
                   s.rows, cusim::MemcpyKind::kHostToDevice);
      return;
    case PackScheme::kD2H_nc2c:
      ctx.memcpy2d(s.first_block, s.stride, host_src, s.block, s.block,
                   s.rows, cusim::MemcpyKind::kHostToDevice);
      return;
    case PackScheme::kD2D2H_nc2c2c: {
      auto* tbuf = static_cast<std::byte*>(ctx.malloc(msg.packed_bytes));
      ctx.memcpy(tbuf, host_src, msg.packed_bytes,
                 cusim::MemcpyKind::kHostToDevice);
      ctx.memcpy2d(s.first_block, s.stride, tbuf, s.block, s.block, s.rows,
                   cusim::MemcpyKind::kDeviceToDevice);
      ctx.free(tbuf);
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Blocking any-layout helpers (eager path)
// ---------------------------------------------------------------------------

void stage_to_host_any(cusim::CudaContext& ctx, const MsgView& msg,
                       std::byte* host_dst, std::size_t nbytes,
                       bool offload) {
  if (nbytes == 0) return;
  if (nbytes > msg.packed_bytes) {
    throw std::out_of_range("stage_to_host_any: nbytes beyond message");
  }
  if (msg.contiguous) {
    ctx.memcpy(host_dst, msg.base, nbytes, cusim::MemcpyKind::kDeviceToHost);
    return;
  }
  const bool aligned =
      patterned(msg) && nbytes % msg.pattern->block_bytes == 0;
  if (aligned && !offload) {
    auto& stream = ctx.default_stream();
    submit_pcie_pack_to_host(ctx, stream, msg, 0, nbytes, host_dst)
        .synchronize();
    return;
  }
  // Offload (or irregular layout): pack on the device, then contiguous D2H.
  // submit_device_pack picks 2-D / batched sub-pattern / generalized from
  // the plan, including unaligned slices.
  auto* tbuf = static_cast<std::byte*>(ctx.malloc(nbytes));
  auto& stream = ctx.default_stream();
  submit_device_pack(ctx, stream, msg, 0, nbytes, tbuf).synchronize();
  ctx.memcpy(host_dst, tbuf, nbytes, cusim::MemcpyKind::kDeviceToHost);
  ctx.free(tbuf);
}

void stage_from_host_any(cusim::CudaContext& ctx, const MsgView& msg,
                         const std::byte* host_src, std::size_t nbytes,
                         bool offload) {
  if (nbytes == 0) return;
  if (nbytes > msg.packed_bytes) {
    throw std::out_of_range("stage_from_host_any: nbytes beyond message");
  }
  if (msg.contiguous) {
    ctx.memcpy(msg.base, host_src, nbytes, cusim::MemcpyKind::kHostToDevice);
    return;
  }
  const bool aligned =
      patterned(msg) && nbytes % msg.pattern->block_bytes == 0;
  if (aligned && !offload) {
    auto& stream = ctx.default_stream();
    submit_pcie_unpack_from_host(ctx, stream, msg, 0, nbytes, host_src)
        .synchronize();
    return;
  }
  auto* tbuf = static_cast<std::byte*>(ctx.malloc(nbytes));
  ctx.memcpy(tbuf, host_src, nbytes, cusim::MemcpyKind::kHostToDevice);
  auto& stream = ctx.default_stream();
  submit_device_unpack(ctx, stream, msg, 0, nbytes, tbuf).synchronize();
  ctx.free(tbuf);
}

// ---------------------------------------------------------------------------
// Chunked async helpers (the pipeline's stage 1 and stage 5)
// ---------------------------------------------------------------------------

cusim::Event submit_device_pack(cusim::CudaContext& ctx, cusim::Stream& stream,
                                const MsgView& msg, std::size_t offset,
                                std::size_t bytes, std::byte* dst_dev) {
  if (msg.contiguous) {
    ctx.memcpy_async(dst_dev, static_cast<std::byte*>(msg.base) + offset,
                     bytes, cusim::MemcpyKind::kDeviceToDevice, stream);
    return ctx.record_event(stream);
  }
  if (patterned(msg) && offset % msg.pattern->block_bytes == 0 &&
      bytes % msg.pattern->block_bytes == 0) {
    const PatternSlice s = slice_pattern(msg, offset, bytes);
    ctx.memcpy2d_async(dst_dev, s.block, s.first_block, s.stride, s.block,
                       s.rows, cusim::MemcpyKind::kDeviceToDevice, stream);
    return ctx.record_event(stream);
  }
  if (subpatterned(msg)) {
    return submit_subpatterned(ctx, stream, msg, offset, bytes, dst_dev,
                               true);
  }
  return submit_generalized(ctx, stream, msg, offset, bytes, dst_dev, true);
}

cusim::Event submit_device_unpack(cusim::CudaContext& ctx,
                                  cusim::Stream& stream, const MsgView& msg,
                                  std::size_t offset, std::size_t bytes,
                                  const std::byte* src_dev) {
  if (msg.contiguous) {
    ctx.memcpy_async(static_cast<std::byte*>(msg.base) + offset, src_dev,
                     bytes, cusim::MemcpyKind::kDeviceToDevice, stream);
    return ctx.record_event(stream);
  }
  if (patterned(msg) && offset % msg.pattern->block_bytes == 0 &&
      bytes % msg.pattern->block_bytes == 0) {
    const PatternSlice s = slice_pattern(msg, offset, bytes);
    ctx.memcpy2d_async(s.first_block, s.stride, src_dev, s.block, s.block,
                       s.rows, cusim::MemcpyKind::kDeviceToDevice, stream);
    return ctx.record_event(stream);
  }
  if (subpatterned(msg)) {
    return submit_subpatterned(ctx, stream, msg, offset, bytes,
                               const_cast<std::byte*>(src_dev), false);
  }
  return submit_generalized(ctx, stream, msg, offset, bytes,
                            const_cast<std::byte*>(src_dev), false);
}

cusim::Event submit_pcie_pack_to_host(cusim::CudaContext& ctx,
                                      cusim::Stream& stream,
                                      const MsgView& msg, std::size_t offset,
                                      std::size_t bytes,
                                      std::byte* host_dst) {
  if (msg.contiguous) {
    ctx.memcpy_async(host_dst, static_cast<std::byte*>(msg.base) + offset,
                     bytes, cusim::MemcpyKind::kDeviceToHost, stream);
    return ctx.record_event(stream);
  }
  if (!patterned(msg)) {
    throw std::logic_error(
        "submit_pcie_pack_to_host: requires a vector pattern");
  }
  const PatternSlice s = slice_pattern(msg, offset, bytes);
  ctx.memcpy2d_async(host_dst, s.block, s.first_block, s.stride, s.block,
                     s.rows, cusim::MemcpyKind::kDeviceToHost, stream);
  return ctx.record_event(stream);
}

cusim::Event submit_pcie_unpack_from_host(cusim::CudaContext& ctx,
                                          cusim::Stream& stream,
                                          const MsgView& msg,
                                          std::size_t offset,
                                          std::size_t bytes,
                                          const std::byte* host_src) {
  if (msg.contiguous) {
    ctx.memcpy_async(static_cast<std::byte*>(msg.base) + offset, host_src,
                     bytes, cusim::MemcpyKind::kHostToDevice, stream);
    return ctx.record_event(stream);
  }
  if (!patterned(msg)) {
    throw std::logic_error(
        "submit_pcie_unpack_from_host: requires a vector pattern");
  }
  const PatternSlice s = slice_pattern(msg, offset, bytes);
  ctx.memcpy2d_async(s.first_block, s.stride, host_src, s.block, s.block,
                     s.rows, cusim::MemcpyKind::kHostToDevice, stream);
  return ctx.record_event(stream);
}

// ---------------------------------------------------------------------------
// Cost-model-driven decisions (paper §IV-B)
// ---------------------------------------------------------------------------

namespace {

// Representative (row width, row count) of a `chunk`-byte slice.
struct ChunkShape {
  std::size_t width;
  std::size_t rows;
};

ChunkShape chunk_shape(const MsgView& msg, std::size_t chunk) {
  if (patterned(msg)) {
    const std::size_t width = msg.pattern->block_bytes;
    return {width, std::max<std::size_t>(1, chunk / width)};
  }
  if (msg.plan && msg.plan->total_segments() > 0 && msg.packed_bytes > 0) {
    const auto rows = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               static_cast<double>(msg.plan->total_segments()) *
               static_cast<double>(chunk) /
               static_cast<double>(msg.packed_bytes)));
    return {std::max<std::size_t>(1, chunk / rows), rows};
  }
  return {chunk, 1};
}

}  // namespace

sim::SimTime modeled_stage_time(const gpu::GpuCostModel& cost,
                                const MsgView& msg, std::size_t chunk,
                                bool offload) {
  chunk = std::min(chunk, msg.packed_bytes);
  if (chunk == 0) return 0;
  const sim::SimTime d2h =
      cost.copy_time(chunk, gpu::CopyDir::kDeviceToHost);
  const sim::SimTime h2d =
      cost.copy_time(chunk, gpu::CopyDir::kHostToDevice);
  if (msg.contiguous) return std::max(d2h, h2d);
  const ChunkShape s = chunk_shape(msg, chunk);
  if (!offload) {
    // nc2c: the strided copy IS the PCIe crossing.
    const sim::SimTime pack = cost.copy2d_time(
        s.width, s.rows, gpu::CopyDir::kDeviceToHost, gpu::Layout2D::kPack,
        /*rows_contiguous=*/false);
    const sim::SimTime unpack = cost.copy2d_time(
        s.width, s.rows, gpu::CopyDir::kHostToDevice, gpu::Layout2D::kUnpack,
        /*rows_contiguous=*/false);
    return std::max(pack, unpack);
  }
  // nc2c2c: device-side pack stage + contiguous PCIe stages.
  sim::SimTime pack;
  const bool irregular =
      msg.plan && msg.plan->layout() == LayoutClass::kIrregular;
  if (irregular) {
    // Generalized gather: flat per-run cost, no descriptor amortization.
    pack = cost.d2d_2d_setup_ns + cost.copy_launch_ns +
           static_cast<sim::SimTime>(static_cast<double>(s.rows) *
                                     cost.d2d_row_first_ns) +
           cost.transfer_time(chunk, gpu::CopyDir::kDeviceToDevice);
  } else {
    pack = cost.copy2d_time(s.width, s.rows, gpu::CopyDir::kDeviceToDevice,
                            gpu::Layout2D::kPack, /*rows_contiguous=*/false);
  }
  return std::max({pack, d2h, h2d});
}

std::size_t select_chunk_bytes(const gpu::GpuCostModel& cost,
                               const MsgView& msg, bool offload,
                               std::size_t fallback) {
  const std::size_t n_total = msg.packed_bytes;
  if (n_total == 0) return fallback;
  std::size_t best = 0;
  double best_cost = std::numeric_limits<double>::infinity();
  for (std::size_t c = 8 * 1024; c <= 1024 * 1024; c *= 2) {
    const std::size_t cand =
        align_chunk_to_pattern(msg, std::min(c, n_total));
    if (cand == 0) continue;
    const std::size_t n = (n_total + cand - 1) / cand;
    const double t =
        static_cast<double>(n + 2) *
        static_cast<double>(modeled_stage_time(cost, msg, cand, offload));
    if (t < best_cost) {
      best_cost = t;
      best = cand;
    }
  }
  return best == 0 ? fallback : best;
}

bool model_prefers_offload(const gpu::GpuCostModel& cost, const MsgView& msg) {
  if (msg.contiguous) return false;
  if (!patterned(msg)) return true;  // PCIe 2-D cannot express the layout
  const std::size_t n_total = msg.packed_bytes;
  if (n_total == 0) return false;
  const std::size_t width = msg.pattern->block_bytes;
  const std::size_t rows = msg.pattern->count;
  // Blocking end-to-end comparison (Figure 2): one strided PCIe copy vs
  // device pack followed by a contiguous PCIe copy.
  const sim::SimTime nc2c =
      cost.copy2d_time(width, rows, gpu::CopyDir::kDeviceToHost,
                       gpu::Layout2D::kPack, /*rows_contiguous=*/false);
  const sim::SimTime nc2c2c =
      cost.copy2d_time(width, rows, gpu::CopyDir::kDeviceToDevice,
                       gpu::Layout2D::kPack, /*rows_contiguous=*/false) +
      cost.copy_time(n_total, gpu::CopyDir::kDeviceToHost);
  return nc2c2c < nc2c;
}

}  // namespace mv2gnc::core
