#include "core/gpu_staging.hpp"

#include <algorithm>
#include <stdexcept>

namespace mv2gnc::core {

namespace {

using mpisim::VectorPattern;

struct PatternSlice {
  std::byte* first_block;  // address of the first block in the range
  std::size_t rows;
  std::size_t block;
  std::size_t stride;
};

// Resolve packed range [offset, offset+bytes) of a patterned message to a
// 2-D region. Requires block-aligned offset/bytes.
PatternSlice slice_pattern(const MsgView& msg, std::size_t offset,
                           std::size_t bytes) {
  const VectorPattern& p = *msg.pattern;
  if (p.stride_bytes <= 0 ||
      static_cast<std::size_t>(p.stride_bytes) < p.block_bytes) {
    throw std::logic_error("slice_pattern: degenerate stride");
  }
  if (offset % p.block_bytes != 0 || bytes % p.block_bytes != 0) {
    throw std::logic_error("slice_pattern: range not block-aligned");
  }
  const std::size_t r0 = offset / p.block_bytes;
  const std::size_t rows = bytes / p.block_bytes;
  if (r0 + rows > p.count) {
    throw std::out_of_range("slice_pattern: range beyond pattern");
  }
  std::byte* first =
      static_cast<std::byte*>(msg.base) + msg.dtype.segments().front().offset +
      static_cast<std::int64_t>(r0) * p.stride_bytes;
  return PatternSlice{first, rows, p.block_bytes,
                      static_cast<std::size_t>(p.stride_bytes)};
}

bool patterned(const MsgView& msg) {
  return msg.pattern.has_value() && msg.pattern->stride_bytes > 0 &&
         static_cast<std::size_t>(msg.pattern->stride_bytes) >=
             msg.pattern->block_bytes;
}

// Generalized device pack/unpack kernel: models per-run cost like a D2D
// 2-D copy and performs the real gather/scatter at completion.
cusim::Event submit_generalized(cusim::CudaContext& ctx, cusim::Stream& stream,
                                const MsgView& msg, std::size_t offset,
                                std::size_t bytes, std::byte* dense,
                                bool packing) {
  const auto& cost = ctx.device().cost();
  const std::size_t total_segs = msg.dtype.total_segments(msg.count);
  const double frac = msg.packed_bytes
                          ? static_cast<double>(bytes) /
                                static_cast<double>(msg.packed_bytes)
                          : 0.0;
  const auto runs = static_cast<std::int64_t>(
      static_cast<double>(total_segs) * frac + 0.5);
  const std::int64_t first = std::min<std::int64_t>(runs, cost.d2d_row_knee);
  const std::int64_t steady = runs - first;
  const sim::SimTime dur =
      cost.d2d_2d_setup_ns + cost.copy_launch_ns +
      static_cast<sim::SimTime>(static_cast<double>(first) *
                                    cost.d2d_row_first_ns +
                                static_cast<double>(steady) *
                                    cost.d2d_row_steady_ns) +
      cost.transfer_time(bytes, gpu::CopyDir::kDeviceToDevice);
  void* base = msg.base;
  const mpisim::Datatype dtype = msg.dtype;
  const int count = msg.count;
  ctx.launch_kernel_timed(stream, dur, [=] {
    if (packing) {
      dtype.pack_bytes(base, count, offset, bytes, dense);
    } else {
      dtype.unpack_bytes(dense, count, offset, bytes, base);
    }
  });
  return ctx.record_event(stream);
}

}  // namespace

std::size_t align_chunk_to_pattern(const MsgView& msg, std::size_t chunk) {
  if (msg.contiguous || !patterned(msg)) return chunk;
  const std::size_t block = msg.pattern->block_bytes;
  if (chunk <= block) return block;
  return (chunk / block) * block;
}

// ---------------------------------------------------------------------------
// Blocking whole-message schemes (Figure 2)
// ---------------------------------------------------------------------------

void stage_to_host(cusim::CudaContext& ctx, PackScheme scheme,
                   const MsgView& msg, std::byte* host_dst) {
  if (!msg.on_device) {
    throw std::logic_error("stage_to_host: message is not device-resident");
  }
  if (msg.packed_bytes == 0) return;
  if (msg.contiguous) {
    ctx.memcpy(host_dst, msg.base, msg.packed_bytes,
               cusim::MemcpyKind::kDeviceToHost);
    return;
  }
  if (!patterned(msg)) {
    throw std::logic_error(
        "stage_to_host: strided scheme requires a vector pattern; use the "
        "pipeline path for irregular datatypes");
  }
  const PatternSlice s = slice_pattern(msg, 0, msg.packed_bytes);
  switch (scheme) {
    case PackScheme::kD2H_nc2nc:
      // Same-layout copy out: the host image keeps the device stride.
      ctx.memcpy2d(host_dst, s.stride, s.first_block, s.stride, s.block,
                   s.rows, cusim::MemcpyKind::kDeviceToHost);
      return;
    case PackScheme::kD2H_nc2c:
      ctx.memcpy2d(host_dst, s.block, s.first_block, s.stride, s.block,
                   s.rows, cusim::MemcpyKind::kDeviceToHost);
      return;
    case PackScheme::kD2D2H_nc2c2c: {
      auto* tbuf = static_cast<std::byte*>(ctx.malloc(msg.packed_bytes));
      ctx.memcpy2d(tbuf, s.block, s.first_block, s.stride, s.block, s.rows,
                   cusim::MemcpyKind::kDeviceToDevice);
      ctx.memcpy(host_dst, tbuf, msg.packed_bytes,
                 cusim::MemcpyKind::kDeviceToHost);
      ctx.free(tbuf);
      return;
    }
  }
}

void stage_from_host(cusim::CudaContext& ctx, PackScheme scheme,
                     const MsgView& msg, const std::byte* host_src) {
  if (!msg.on_device) {
    throw std::logic_error("stage_from_host: message is not device-resident");
  }
  if (msg.packed_bytes == 0) return;
  if (msg.contiguous) {
    ctx.memcpy(msg.base, host_src, msg.packed_bytes,
               cusim::MemcpyKind::kHostToDevice);
    return;
  }
  if (!patterned(msg)) {
    throw std::logic_error(
        "stage_from_host: strided scheme requires a vector pattern");
  }
  const PatternSlice s = slice_pattern(msg, 0, msg.packed_bytes);
  switch (scheme) {
    case PackScheme::kD2H_nc2nc:
      ctx.memcpy2d(s.first_block, s.stride, host_src, s.stride, s.block,
                   s.rows, cusim::MemcpyKind::kHostToDevice);
      return;
    case PackScheme::kD2H_nc2c:
      ctx.memcpy2d(s.first_block, s.stride, host_src, s.block, s.block,
                   s.rows, cusim::MemcpyKind::kHostToDevice);
      return;
    case PackScheme::kD2D2H_nc2c2c: {
      auto* tbuf = static_cast<std::byte*>(ctx.malloc(msg.packed_bytes));
      ctx.memcpy(tbuf, host_src, msg.packed_bytes,
                 cusim::MemcpyKind::kHostToDevice);
      ctx.memcpy2d(s.first_block, s.stride, tbuf, s.block, s.block, s.rows,
                   cusim::MemcpyKind::kDeviceToDevice);
      ctx.free(tbuf);
      return;
    }
  }
}

// ---------------------------------------------------------------------------
// Blocking any-layout helpers (eager path)
// ---------------------------------------------------------------------------

void stage_to_host_any(cusim::CudaContext& ctx, const MsgView& msg,
                       std::byte* host_dst, std::size_t nbytes,
                       bool offload) {
  if (nbytes == 0) return;
  if (nbytes > msg.packed_bytes) {
    throw std::out_of_range("stage_to_host_any: nbytes beyond message");
  }
  if (msg.contiguous) {
    ctx.memcpy(host_dst, msg.base, nbytes, cusim::MemcpyKind::kDeviceToHost);
    return;
  }
  const bool aligned =
      patterned(msg) && nbytes % msg.pattern->block_bytes == 0;
  if (aligned && !offload) {
    auto& stream = ctx.default_stream();
    submit_pcie_pack_to_host(ctx, stream, msg, 0, nbytes, host_dst)
        .synchronize();
    return;
  }
  // Offload (or irregular layout): pack on the device, then contiguous D2H.
  auto* tbuf = static_cast<std::byte*>(ctx.malloc(nbytes));
  auto& stream = ctx.default_stream();
  if (aligned) {
    submit_device_pack(ctx, stream, msg, 0, nbytes, tbuf).synchronize();
  } else {
    // Unaligned slice of a patterned (or irregular) message: generalized
    // device gather.
    submit_generalized(ctx, stream, msg, 0, nbytes, tbuf, true).synchronize();
  }
  ctx.memcpy(host_dst, tbuf, nbytes, cusim::MemcpyKind::kDeviceToHost);
  ctx.free(tbuf);
}

void stage_from_host_any(cusim::CudaContext& ctx, const MsgView& msg,
                         const std::byte* host_src, std::size_t nbytes,
                         bool offload) {
  if (nbytes == 0) return;
  if (nbytes > msg.packed_bytes) {
    throw std::out_of_range("stage_from_host_any: nbytes beyond message");
  }
  if (msg.contiguous) {
    ctx.memcpy(msg.base, host_src, nbytes, cusim::MemcpyKind::kHostToDevice);
    return;
  }
  const bool aligned =
      patterned(msg) && nbytes % msg.pattern->block_bytes == 0;
  if (aligned && !offload) {
    auto& stream = ctx.default_stream();
    submit_pcie_unpack_from_host(ctx, stream, msg, 0, nbytes, host_src)
        .synchronize();
    return;
  }
  auto* tbuf = static_cast<std::byte*>(ctx.malloc(nbytes));
  ctx.memcpy(tbuf, host_src, nbytes, cusim::MemcpyKind::kHostToDevice);
  auto& stream = ctx.default_stream();
  if (aligned) {
    submit_device_unpack(ctx, stream, msg, 0, nbytes, tbuf).synchronize();
  } else {
    submit_generalized(ctx, stream, msg, 0, nbytes, tbuf, false).synchronize();
  }
  ctx.free(tbuf);
}

// ---------------------------------------------------------------------------
// Chunked async helpers (the pipeline's stage 1 and stage 5)
// ---------------------------------------------------------------------------

cusim::Event submit_device_pack(cusim::CudaContext& ctx, cusim::Stream& stream,
                                const MsgView& msg, std::size_t offset,
                                std::size_t bytes, std::byte* dst_dev) {
  if (msg.contiguous) {
    ctx.memcpy_async(dst_dev, static_cast<std::byte*>(msg.base) + offset,
                     bytes, cusim::MemcpyKind::kDeviceToDevice, stream);
    return ctx.record_event(stream);
  }
  if (patterned(msg)) {
    const PatternSlice s = slice_pattern(msg, offset, bytes);
    ctx.memcpy2d_async(dst_dev, s.block, s.first_block, s.stride, s.block,
                       s.rows, cusim::MemcpyKind::kDeviceToDevice, stream);
    return ctx.record_event(stream);
  }
  return submit_generalized(ctx, stream, msg, offset, bytes, dst_dev, true);
}

cusim::Event submit_device_unpack(cusim::CudaContext& ctx,
                                  cusim::Stream& stream, const MsgView& msg,
                                  std::size_t offset, std::size_t bytes,
                                  const std::byte* src_dev) {
  if (msg.contiguous) {
    ctx.memcpy_async(static_cast<std::byte*>(msg.base) + offset, src_dev,
                     bytes, cusim::MemcpyKind::kDeviceToDevice, stream);
    return ctx.record_event(stream);
  }
  if (patterned(msg)) {
    const PatternSlice s = slice_pattern(msg, offset, bytes);
    ctx.memcpy2d_async(s.first_block, s.stride, src_dev, s.block, s.block,
                       s.rows, cusim::MemcpyKind::kDeviceToDevice, stream);
    return ctx.record_event(stream);
  }
  return submit_generalized(ctx, stream, msg, offset, bytes,
                            const_cast<std::byte*>(src_dev), false);
}

cusim::Event submit_pcie_pack_to_host(cusim::CudaContext& ctx,
                                      cusim::Stream& stream,
                                      const MsgView& msg, std::size_t offset,
                                      std::size_t bytes,
                                      std::byte* host_dst) {
  if (msg.contiguous) {
    ctx.memcpy_async(host_dst, static_cast<std::byte*>(msg.base) + offset,
                     bytes, cusim::MemcpyKind::kDeviceToHost, stream);
    return ctx.record_event(stream);
  }
  if (!patterned(msg)) {
    throw std::logic_error(
        "submit_pcie_pack_to_host: requires a vector pattern");
  }
  const PatternSlice s = slice_pattern(msg, offset, bytes);
  ctx.memcpy2d_async(host_dst, s.block, s.first_block, s.stride, s.block,
                     s.rows, cusim::MemcpyKind::kDeviceToHost, stream);
  return ctx.record_event(stream);
}

cusim::Event submit_pcie_unpack_from_host(cusim::CudaContext& ctx,
                                          cusim::Stream& stream,
                                          const MsgView& msg,
                                          std::size_t offset,
                                          std::size_t bytes,
                                          const std::byte* host_src) {
  if (msg.contiguous) {
    ctx.memcpy_async(static_cast<std::byte*>(msg.base) + offset, host_src,
                     bytes, cusim::MemcpyKind::kHostToDevice, stream);
    return ctx.record_event(stream);
  }
  if (!patterned(msg)) {
    throw std::logic_error(
        "submit_pcie_unpack_from_host: requires a vector pattern");
  }
  const PatternSlice s = slice_pattern(msg, offset, bytes);
  ctx.memcpy2d_async(s.first_block, s.stride, host_src, s.block, s.block,
                     s.rows, cusim::MemcpyKind::kHostToDevice, stream);
  return ctx.record_event(stream);
}

}  // namespace mv2gnc::core
