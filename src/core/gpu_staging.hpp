// GPU datatype-processing offload (paper §IV-A).
//
// Two layers:
//  1. The three whole-message staging schemes of Figure 2 — "D2H nc2nc",
//     "D2H nc2c" and "D2D2H nc2c2c" — as blocking helpers. The benchmark
//     for Figure 2 measures these directly; the eager path and the
//     non-pipelined fallbacks reuse them.
//  2. Chunked async submit helpers used by the 5-stage pipeline: pack or
//     unpack one packed-stream byte range on a CUDA stream, returning the
//     cusim::Event that marks its completion.
//
// Pattern handling: vector-shaped messages (the paper's scope) map onto
// cudaMemcpy2DAsync. Arbitrary committed datatypes without a uniform
// pattern use a generalized device pack kernel (an extension over the
// paper, which covers vectors only); its duration is modeled with the same
// per-run D2D costs and its body performs the real byte gather.
#pragma once

#include <cstddef>

#include "core/msg_view.hpp"
#include "cuda/runtime.hpp"
#include "gpu/cost_model.hpp"
#include "sim/time.hpp"

namespace mv2gnc::core {

/// The three options of paper Figure 1 / Figure 2.
enum class PackScheme {
  kD2H_nc2nc,    // option (a): strided copy out, host image stays strided
  kD2H_nc2c,     // option (b): strided copy packs while crossing PCIe
  kD2D2H_nc2c2c, // option (c): pack inside the device, then contiguous D2H
};

/// Blocking: stage the device-resident message into host memory.
///
/// For kD2H_nc2c / kD2D2H_nc2c2c `host_dst` receives the *packed* stream
/// (msg.packed_bytes bytes). For kD2H_nc2nc it receives the same strided
/// image as device memory (extent-sized; caller provides capacity for
/// count*extent bytes) and packing is left to the caller — exactly the
/// "no pack" option programmers used before GPU-aware MPI.
/// Requires msg.pattern for the strided schemes; a contiguous message
/// degrades to one plain D2H copy under every scheme.
void stage_to_host(cusim::CudaContext& ctx, PackScheme scheme,
                   const MsgView& msg, std::byte* host_dst);

/// Blocking mirror of stage_to_host: move a host image back into the
/// device-resident message. For the packing schemes `host_src` holds the
/// packed stream; for kD2H_nc2nc it holds the strided image.
void stage_from_host(cusim::CudaContext& ctx, PackScheme scheme,
                     const MsgView& msg, const std::byte* host_src);

/// Async: pack packed-stream range [offset, offset+bytes) of the
/// device-resident message into device memory at `dst_dev` (typically
/// tbuf+offset) on `stream`. Returns the completion event.
/// When the message has a vector pattern, offset/bytes must be multiples
/// of the pattern block size (the pipeline guarantees this).
cusim::Event submit_device_pack(cusim::CudaContext& ctx, cusim::Stream& stream,
                                const MsgView& msg, std::size_t offset,
                                std::size_t bytes, std::byte* dst_dev);

/// Async mirror: scatter the packed range from device memory `src_dev`
/// back into the strided message on `stream`.
cusim::Event submit_device_unpack(cusim::CudaContext& ctx,
                                  cusim::Stream& stream, const MsgView& msg,
                                  std::size_t offset, std::size_t bytes,
                                  const std::byte* src_dev);

/// Async: pack the packed-stream range straight into *host* memory with a
/// strided PCIe copy (the non-offloaded "D2H nc2c" pipeline variant;
/// requires msg.pattern or a contiguous message).
cusim::Event submit_pcie_pack_to_host(cusim::CudaContext& ctx,
                                      cusim::Stream& stream,
                                      const MsgView& msg, std::size_t offset,
                                      std::size_t bytes, std::byte* host_dst);

/// Async mirror: scatter a packed host range into the strided device
/// message with a strided PCIe copy ("H2D c2nc").
cusim::Event submit_pcie_unpack_from_host(cusim::CudaContext& ctx,
                                          cusim::Stream& stream,
                                          const MsgView& msg,
                                          std::size_t offset,
                                          std::size_t bytes,
                                          const std::byte* host_src);

/// Blocking, any layout: gather the device message's first `nbytes` packed
/// bytes into host memory. Chooses D2D2H when `offload` (or when the layout
/// is irregular), D2H nc2c otherwise. Used by the eager path.
void stage_to_host_any(cusim::CudaContext& ctx, const MsgView& msg,
                       std::byte* host_dst, std::size_t nbytes, bool offload);

/// Blocking mirror: scatter `nbytes` packed host bytes into the device
/// message.
void stage_from_host_any(cusim::CudaContext& ctx, const MsgView& msg,
                         const std::byte* host_src, std::size_t nbytes,
                         bool offload);

/// Round `chunk` down to a multiple of the message's pattern block size
/// (minimum one block); returns `chunk` unchanged for pattern-less or
/// contiguous messages.
std::size_t align_chunk_to_pattern(const MsgView& msg, std::size_t chunk);

// ---------------------------------------------------------------------------
// Cost-model-driven per-message decisions (paper §IV-B)
// ---------------------------------------------------------------------------

/// Modeled duration of the slowest pipeline stage moving one `chunk`-byte
/// chunk of `msg`, for the offloaded (nc2c2c: device pack + contiguous
/// PCIe) or non-offloaded (nc2c: strided PCIe) scheme. This is the T(N/n)
/// of the paper's (n+2)·T latency model.
sim::SimTime modeled_stage_time(const gpu::GpuCostModel& cost,
                                const MsgView& msg, std::size_t chunk,
                                bool offload);

/// Pipeline chunk size minimizing the §IV-B model (n+2)·T(N/n) over
/// power-of-two candidates (8 KB .. 1 MB), each aligned to the message's
/// pattern block. Returns `fallback` when the message is empty.
std::size_t select_chunk_bytes(const gpu::GpuCostModel& cost,
                               const MsgView& msg, bool offload,
                               std::size_t fallback);

/// Figure-2 scheme choice: true when packing on the device and crossing
/// PCIe contiguously (nc2c2c) is modeled cheaper than one strided PCIe
/// copy (nc2c), comparing blocking end-to-end costs. Irregular layouts
/// (no usable 2-D pattern) always prefer the offload path.
bool model_prefers_offload(const gpu::GpuCostModel& cost, const MsgView& msg);

}  // namespace mv2gnc::core
