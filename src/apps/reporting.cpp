#include "apps/reporting.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <stdexcept>
#include <utility>

namespace mv2gnc::apps {

Table::Table(std::string title, std::vector<std::string> columns)
    : title_(std::move(title)), columns_(std::move(columns)) {
  if (columns_.empty()) throw std::invalid_argument("Table: no columns");
}

void Table::add_row(std::vector<std::string> cells) {
  if (cells.size() != columns_.size()) {
    throw std::invalid_argument("Table: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> width(columns_.size());
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    width[c] = columns_[c].size();
    for (const auto& row : rows_) width[c] = std::max(width[c], row[c].size());
  }
  os << "\n== " << title_ << " ==\n";
  auto print_row = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << (c ? "  " : "") << cells[c]
         << std::string(width[c] - cells[c].size(), ' ');
    }
    os << "\n";
  };
  print_row(columns_);
  std::size_t total = 0;
  for (auto w : width) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string Table::to_csv() const {
  std::ostringstream os;
  for (std::size_t c = 0; c < columns_.size(); ++c) {
    os << (c ? "," : "") << columns_[c];
  }
  os << "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c ? "," : "") << row[c];
    }
    os << "\n";
  }
  return os.str();
}

std::string format_bytes(std::size_t bytes) {
  char buf[32];
  if (bytes >= (1u << 20) && bytes % (1u << 20) == 0) {
    std::snprintf(buf, sizeof(buf), "%zuM", bytes >> 20);
  } else if (bytes >= 1024 && bytes % 1024 == 0) {
    std::snprintf(buf, sizeof(buf), "%zuK", bytes >> 10);
  } else {
    std::snprintf(buf, sizeof(buf), "%zu", bytes);
  }
  return buf;
}

std::string format_us(sim::SimTime t, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, sim::to_us(t));
  return buf;
}

std::string format_sec(sim::SimTime t, int precision) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, sim::to_sec(t));
  return buf;
}

std::string format_improvement(double base, double ours) {
  if (base <= 0.0) return "n/a";
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.0f%%", (base - ours) / base * 100.0);
  return buf;
}

}  // namespace mv2gnc::apps
