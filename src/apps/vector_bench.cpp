#include "apps/vector_bench.hpp"

#include <memory>
#include <stdexcept>
#include <vector>

namespace mv2gnc::apps {

namespace {

namespace mpisim = mv2gnc::mpisim;
using mpisim::Context;
using mpisim::Datatype;

constexpr std::size_t kElemBytes = 4;     // "constant chunk size of 4 bytes"
constexpr int kStrideElems = 2;           // device pitch between rows
constexpr std::size_t kUserChunk = 64 * 1024;  // Fig. 4(b) pipeline block

/// Per-rank state for one transport method.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual void send(Context& ctx, int peer, int tag) = 0;
  virtual void recv(Context& ctx, int peer, int tag) = 0;
};

// -- Fig. 4(c): MV2-GPU-NC — device pointers straight into MPI -------------
class Mv2GpuNcTransport : public Transport {
 public:
  Mv2GpuNcTransport(Context& ctx, std::size_t rows) : rows_(rows) {
    dtype_ = Datatype::vector(static_cast<int>(rows), 1, kStrideElems,
                              Datatype::float32());
    dtype_.commit();
    dev_ = ctx.cuda->malloc(rows * kStrideElems * kElemBytes);
  }
  void send(Context& ctx, int peer, int tag) override {
    ctx.comm.send(dev_, 1, dtype_, peer, tag);
  }
  void recv(Context& ctx, int peer, int tag) override {
    ctx.comm.recv(dev_, 1, dtype_, peer, tag);
  }

 private:
  std::size_t rows_;
  Datatype dtype_;
  void* dev_ = nullptr;
};

// -- Fig. 4(a): blocking cudaMemcpy2D + blocking MPI vector send -----------
class Cpy2DSendTransport : public Transport {
 public:
  Cpy2DSendTransport(Context& ctx, std::size_t rows) : rows_(rows) {
    dtype_ = Datatype::vector(static_cast<int>(rows), 1, kStrideElems,
                              Datatype::float32());
    dtype_.commit();
    const std::size_t span = rows * kStrideElems * kElemBytes;
    dev_ = static_cast<std::byte*>(ctx.cuda->malloc(span));
    host_.resize(span);
  }
  void send(Context& ctx, int peer, int tag) override {
    // Copy non-contiguous data from device to host (same strided layout,
    // Fig. 1(a)), then send with the vector type from host memory; the MPI
    // library packs on the CPU.
    ctx.cuda->memcpy2d(host_.data(), kStrideElems * kElemBytes, dev_,
                       kStrideElems * kElemBytes, kElemBytes, rows_,
                       cusim::MemcpyKind::kDeviceToHost);
    ctx.comm.send(host_.data(), 1, dtype_, peer, tag);
  }
  void recv(Context& ctx, int peer, int tag) override {
    ctx.comm.recv(host_.data(), 1, dtype_, peer, tag);
    ctx.cuda->memcpy2d(dev_, kStrideElems * kElemBytes, host_.data(),
                       kStrideElems * kElemBytes, kElemBytes, rows_,
                       cusim::MemcpyKind::kHostToDevice);
  }

 private:
  std::size_t rows_;
  Datatype dtype_;
  std::byte* dev_ = nullptr;
  std::vector<std::byte> host_;
};

// -- Fig. 4(b): hand-tuned user pipeline -----------------------------------
// The ~90 lines below are what every application programmer had to write
// (and tune per platform) before MV2-GPU-NC — this is the productivity
// argument of the paper made concrete.
class Cpy2DAsyncIsendTransport : public Transport {
 public:
  Cpy2DAsyncIsendTransport(Context& ctx, std::size_t rows) : rows_(rows) {
    byte_t_ = Datatype::byte();
    byte_t_.commit();
    const std::size_t bytes = rows * kElemBytes;
    const std::size_t span = rows * kStrideElems * kElemBytes;
    dev_ = static_cast<std::byte*>(ctx.cuda->malloc(span));
    tbuf_ = static_cast<std::byte*>(ctx.cuda->malloc(bytes));
    nchunks_ = (bytes + kUserChunk - 1) / kUserChunk;
    // A tuned implementation uses page-locked chunk buffers
    // (cudaMallocHost) so the async copies run at full PCIe bandwidth.
    host_chunks_.resize(nchunks_);
    for (auto& c : host_chunks_) {
      c = static_cast<std::byte*>(ctx.cuda->malloc_host(kUserChunk));
    }
    pack_stream_ = ctx.cuda->create_stream();
    d2h_stream_ = ctx.cuda->create_stream();
    h2d_stream_ = ctx.cuda->create_stream();
    unpack_stream_ = ctx.cuda->create_stream();
  }

  void send(Context& ctx, int peer, int tag) override {
    const std::size_t bytes = rows_ * kElemBytes;
    std::vector<cusim::Event> pack_ev(nchunks_), d2h_ev(nchunks_);
    // Pack each block from non-contiguous to contiguous inside the GPU.
    for (std::size_t i = 0; i < nchunks_; ++i) {
      const auto [off, len] = chunk(i, bytes);
      ctx.cuda->memcpy2d_async(
          tbuf_ + off, kElemBytes,
          dev_ + (off / kElemBytes) * kStrideElems * kElemBytes,
          kStrideElems * kElemBytes, kElemBytes, len / kElemBytes,
          cusim::MemcpyKind::kDeviceToDevice, pack_stream_);
      pack_ev[i] = ctx.cuda->record_event(pack_stream_);
    }
    // Poll: as packs finish, stage to host; as staging finishes, Isend.
    std::vector<mpisim::Request> reqs;
    std::size_t staged = 0, sent = 0;
    while (sent < nchunks_) {
      bool progressed = false;
      if (staged < nchunks_ && pack_ev[staged].query()) {
        const auto [off, len] = chunk(staged, bytes);
        ctx.cuda->memcpy_async(host_chunks_[staged], tbuf_ + off, len,
                               cusim::MemcpyKind::kDeviceToHost, d2h_stream_);
        d2h_ev[staged] = ctx.cuda->record_event(d2h_stream_);
        ++staged;
        progressed = true;
      }
      if (sent < staged && d2h_ev[sent].query()) {
        const auto [off, len] = chunk(sent, bytes);
        reqs.push_back(ctx.comm.isend(host_chunks_[sent],
                                      static_cast<int>(len), byte_t_, peer,
                                      tag + static_cast<int>(sent)));
        ++sent;
        progressed = true;
      }
      if (!progressed) ctx.engine->delay(sim::microseconds(1));  // CPU poll
    }
    ctx.comm.waitall(reqs);
  }

  void recv(Context& ctx, int peer, int tag) override {
    const std::size_t bytes = rows_ * kElemBytes;
    std::vector<mpisim::Request> reqs(nchunks_);
    for (std::size_t i = 0; i < nchunks_; ++i) {
      const auto [off, len] = chunk(i, bytes);
      reqs[i] = ctx.comm.irecv(host_chunks_[i], static_cast<int>(len),
                               byte_t_, peer, tag + static_cast<int>(i));
    }
    std::vector<cusim::Event> h2d_ev(nchunks_), un_ev(nchunks_);
    std::size_t received = 0, unpacked = 0;
    while (unpacked < nchunks_) {
      bool progressed = false;
      if (received < nchunks_ && ctx.comm.test(reqs[received])) {
        const auto [off, len] = chunk(received, bytes);
        ctx.cuda->memcpy_async(tbuf_ + off, host_chunks_[received], len,
                               cusim::MemcpyKind::kHostToDevice, h2d_stream_);
        h2d_ev[received] = ctx.cuda->record_event(h2d_stream_);
        ++received;
        progressed = true;
      }
      if (unpacked < received && h2d_ev[unpacked].query()) {
        const auto [off, len] = chunk(unpacked, bytes);
        ctx.cuda->memcpy2d_async(
            dev_ + (off / kElemBytes) * kStrideElems * kElemBytes,
            kStrideElems * kElemBytes, tbuf_ + off, kElemBytes, kElemBytes,
            len / kElemBytes, cusim::MemcpyKind::kDeviceToDevice,
            unpack_stream_);
        un_ev[unpacked] = ctx.cuda->record_event(unpack_stream_);
        ++unpacked;
        progressed = true;
      }
      if (!progressed) ctx.engine->delay(sim::microseconds(1));
    }
    un_ev[nchunks_ - 1].synchronize();
  }

 private:
  std::pair<std::size_t, std::size_t> chunk(std::size_t i,
                                            std::size_t total) const {
    const std::size_t off = i * kUserChunk;
    return {off, std::min(kUserChunk, total - off)};
  }

  std::size_t rows_;
  Datatype byte_t_;
  std::byte* dev_ = nullptr;
  std::byte* tbuf_ = nullptr;
  std::size_t nchunks_ = 0;
  std::vector<std::byte*> host_chunks_;  // pinned, owned by the context
  cusim::Stream pack_stream_, d2h_stream_, h2d_stream_, unpack_stream_;
};

std::unique_ptr<Transport> make_transport(VectorMethod m, Context& ctx,
                                          std::size_t rows) {
  switch (m) {
    case VectorMethod::kCpy2DSend:
      return std::make_unique<Cpy2DSendTransport>(ctx, rows);
    case VectorMethod::kCpy2DAsyncIsend:
      return std::make_unique<Cpy2DAsyncIsendTransport>(ctx, rows);
    case VectorMethod::kMv2GpuNc:
      return std::make_unique<Mv2GpuNcTransport>(ctx, rows);
  }
  throw std::invalid_argument("unknown VectorMethod");
}

}  // namespace

const char* method_name(VectorMethod m) {
  switch (m) {
    case VectorMethod::kCpy2DSend: return "Cpy2D+Send";
    case VectorMethod::kCpy2DAsyncIsend: return "Cpy2DAsync+CpyAsync+Isend";
    case VectorMethod::kMv2GpuNc: return "MV2-GPU-NC";
  }
  return "?";
}

sim::SimTime measure_vector_latency(VectorMethod method, std::size_t rows,
                                    int iterations,
                                    const mpisim::ClusterConfig& cfg) {
  mpisim::ClusterConfig c = cfg;
  c.ranks = 2;
  mpisim::Cluster cluster(c);
  sim::SimTime one_way = 0;
  constexpr int kWarmup = 2;
  cluster.run([&](Context& ctx) {
    auto transport = make_transport(method, ctx, rows);
    const int peer = 1 - ctx.rank;
    ctx.comm.barrier();
    sim::SimTime t0 = 0;
    for (int it = -kWarmup; it < iterations; ++it) {
      if (it == 0) {
        ctx.comm.barrier();
        t0 = ctx.engine->now();
      }
      if (ctx.rank == 0) {
        transport->send(ctx, peer, 0);
        transport->recv(ctx, peer, 0);
      } else {
        transport->recv(ctx, peer, 0);
        transport->send(ctx, peer, 0);
      }
    }
    if (ctx.rank == 0) {
      one_way = (ctx.engine->now() - t0) / (2 * iterations);
    }
  });
  return one_way;
}

}  // namespace mv2gnc::apps
