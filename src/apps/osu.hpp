// OSU-micro-benchmark-style measurement kernels (paper §V: "The MPI level
// evaluation is based on OSU Micro Benchmarks").
//
// Three classics, each for host or device buffers:
//   * latency      — ping-pong, average one-way time;
//   * bandwidth    — a window of back-to-back non-blocking sends, acked
//                    once per window (osu_bw);
//   * bi-bandwidth — both directions at once (osu_bibw).
//
// Each measurement runs in its own fresh 2-rank cluster so results are
// independent and deterministic.
#pragma once

#include <cstddef>

#include "mpi/cluster.hpp"

namespace mv2gnc::apps {

/// Where the communication buffers live.
enum class BufferPlacement { kHost, kDevice };

const char* placement_name(BufferPlacement p);

/// Average one-way latency of a contiguous `bytes`-sized message.
sim::SimTime osu_latency(BufferPlacement place, std::size_t bytes,
                         int iterations, const mpisim::ClusterConfig& cfg);

/// Uni-directional streaming bandwidth in MB/s: `window` messages of
/// `bytes` in flight per iteration, one ack per window.
double osu_bandwidth(BufferPlacement place, std::size_t bytes, int window,
                     int iterations, const mpisim::ClusterConfig& cfg);

/// Bi-directional streaming bandwidth in MB/s (sum of both directions).
double osu_bibandwidth(BufferPlacement place, std::size_t bytes, int window,
                       int iterations, const mpisim::ClusterConfig& cfg);

}  // namespace mv2gnc::apps
