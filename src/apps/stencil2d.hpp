// Stencil2D: a SHOC-1.0.1-style two-dimensional nine-point stencil with
// halo exchange (paper §V-B).
//
// Decomposition: a proc_rows x proc_cols process grid, each rank owning a
// local_rows x local_cols tile (plus a one-cell halo ring) in GPU device
// memory. Per iteration: exchange east/west halo columns (non-contiguous),
// then north/south halo rows including corners (contiguous), then run the
// stencil kernel.
//
// Two communication variants, exactly the paper's comparison:
//   kDef       — SHOC as shipped: explicit cudaMemcpy2D/cudaMemcpy staging
//                to host bounce buffers + MPI on host memory
//                (4x cudaMemcpy2D, 4x cudaMemcpy per iteration, Table I).
//   kMv2GpuNc  — device pointers (with vector datatypes for the columns)
//                passed straight to MPI_Irecv/MPI_Send; zero CUDA calls in
//                the exchange.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "mpi/cluster.hpp"

namespace mv2gnc::apps {

struct StencilConfig {
  int proc_rows = 1;
  int proc_cols = 1;
  int local_rows = 64;   // interior rows per process
  int local_cols = 64;   // interior cols per process
  int iterations = 5;
  bool double_precision = false;

  enum class Variant { kDef, kMv2GpuNc };
  Variant variant = Variant::kMv2GpuNc;

  /// Run the real nine-point arithmetic and make checksums meaningful
  /// (small grids only — the full 8K x 8K runs are cost-model driven).
  bool validate = false;

  /// Record per-direction mpi/cuda intervals into the cluster trace
  /// (the paper's Figure 6 breakdown).
  bool trace_dirs = false;

  int ranks() const { return proc_rows * proc_cols; }
};

struct StencilResult {
  double seconds = 0.0;    // virtual time of the iteration loop
  double checksum = 0.0;   // sum of interior cells (validate mode)
};

/// SPMD body: call from every rank of a Cluster sized cfg.ranks().
StencilResult run_stencil(mpisim::Context& ctx, const StencilConfig& cfg);

/// Serial reference of the same computation on the global grid
/// (validate-mode oracle). Returns the full (rows+2) x (cols+2) array after
/// `iterations` steps, halo border included.
std::vector<double> stencil_reference(int global_rows, int global_cols,
                                      int iterations);

/// Deterministic initial value of global interior cell (gi, gj), shared by
/// run_stencil and stencil_reference.
double stencil_initial(int gi, int gj);

/// The nine-point weights (sum to 1): center, adjacent, diagonal.
inline constexpr double kWCenter = 0.4;
inline constexpr double kWAdjacent = 0.1;
inline constexpr double kWDiagonal = 0.05;

}  // namespace mv2gnc::apps
