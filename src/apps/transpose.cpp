#include "apps/transpose.hpp"

#include <array>
#include <stdexcept>

namespace mv2gnc::apps {

namespace {

namespace mpisim = mv2gnc::mpisim;
using mpisim::Context;
using mpisim::Datatype;

// Subarray covering the b x b block at column offset j*b of a b x N
// row-major matrix.
Datatype block_type(int b, int n, int j) {
  const std::array<int, 2> sizes{b, n};
  const std::array<int, 2> subsizes{b, b};
  const std::array<int, 2> starts{0, j * b};
  auto t = Datatype::subarray(sizes, subsizes, starts,
                              mpisim::ArrayOrder::kC, Datatype::float64());
  t.commit();
  return t;
}

}  // namespace

double transpose_initial(int i, int j) {
  return static_cast<double>((i * 131 + j * 17 + 7) % 1013);
}

TransposeResult run_transpose(Context& ctx, const TransposeConfig& cfg) {
  const int p = ctx.size;
  const int n = cfg.global_n;
  if (n % p != 0) {
    throw std::invalid_argument("transpose: global_n must divide by ranks");
  }
  const int b = n / p;
  const std::size_t local = static_cast<std::size_t>(b) * n;
  const std::size_t block = static_cast<std::size_t>(b) * b;

  auto* a = static_cast<double*>(ctx.cuda->malloc(local * sizeof(double)));
  auto* t = static_cast<double*>(ctx.cuda->malloc(local * sizeof(double)));
  auto* scratch =
      static_cast<double*>(ctx.cuda->malloc(local * sizeof(double)));

  if (cfg.validate) {
    std::vector<double> host(local);
    for (int i = 0; i < b; ++i) {
      for (int j = 0; j < n; ++j) {
        host[static_cast<std::size_t>(i) * n + j] =
            transpose_initial(ctx.rank * b + i, j);
      }
    }
    ctx.cuda->memcpy(a, host.data(), local * sizeof(double));
  }

  ctx.comm.barrier();
  const sim::SimTime t0 = ctx.engine->now();

  // Exchange: block j of my rows goes to rank j (subarray datatype straight
  // from device memory); the mirror block from rank i lands in contiguous
  // scratch slot i.
  std::vector<mpisim::Request> reqs;
  auto dbl = Datatype::float64();
  dbl.commit();
  for (int i = 0; i < p; ++i) {
    reqs.push_back(ctx.comm.irecv(scratch + static_cast<std::size_t>(i) * block,
                                  static_cast<int>(block), dbl, i, 10));
  }
  for (int jj = 0; jj < p; ++jj) {
    const int j = (ctx.rank + 1 + jj) % p;  // staggered pairwise order
    auto bt = block_type(b, n, j);
    reqs.push_back(ctx.comm.isend(a, 1, bt, j, 10));
  }
  ctx.comm.waitall(reqs);

  // Local transpose of each received b x b block into the output rows:
  // T[local rows, columns i*b..] = scratch_i ^ T.
  auto compute = ctx.cuda->create_stream();
  for (int i = 0; i < p; ++i) {
    double* src = scratch + static_cast<std::size_t>(i) * block;
    double* dst = t + static_cast<std::size_t>(i) * b;
    const bool do_math = cfg.validate;
    ctx.cuda->launch_kernel(compute, block, /*double_precision=*/true,
                            [src, dst, b, n, do_math] {
                              if (!do_math) return;
                              for (int r = 0; r < b; ++r) {
                                for (int c = 0; c < b; ++c) {
                                  dst[static_cast<std::size_t>(c) * n + r] =
                                      src[static_cast<std::size_t>(r) * b + c];
                                }
                              }
                            });
  }
  compute.synchronize();
  ctx.comm.barrier();

  TransposeResult res;
  res.seconds = sim::to_sec(ctx.engine->now() - t0);
  if (cfg.validate) {
    std::vector<double> host(local);
    ctx.cuda->memcpy(host.data(), t, local * sizeof(double));
    double sum = 0;
    for (int i = 0; i < b; ++i) {
      for (int j = 0; j < n; ++j) {
        const double got = host[static_cast<std::size_t>(i) * n + j];
        // T[ri][j] must equal A[j][ri] for my global row ri.
        const double want = transpose_initial(j, ctx.rank * b + i);
        if (got != want) {
          throw std::runtime_error("transpose validation failed at rank " +
                                   std::to_string(ctx.rank));
        }
        sum += got;
      }
    }
    ctx.comm.allreduce_sum(&sum, &res.checksum, 1);
  }
  ctx.cuda->free(a);
  ctx.cuda->free(t);
  ctx.cuda->free(scratch);
  return res;
}

}  // namespace mv2gnc::apps
