#include "apps/osu.hpp"

#include <vector>

namespace mv2gnc::apps {

namespace {

namespace mpisim = mv2gnc::mpisim;
using mpisim::Context;
using mpisim::Datatype;

Datatype byte_type() {
  Datatype t = Datatype::byte();
  t.commit();
  return t;
}

/// RAII buffer in host or device memory.
struct Buffer {
  Buffer(Context& ctx, BufferPlacement place, std::size_t bytes)
      : ctx_(ctx), place_(place) {
    if (place == BufferPlacement::kDevice) {
      ptr_ = static_cast<std::byte*>(ctx.cuda->malloc(bytes));
    } else {
      host_.resize(bytes);
      ptr_ = host_.data();
    }
  }
  ~Buffer() {
    if (place_ == BufferPlacement::kDevice) ctx_.cuda->free(ptr_);
  }
  std::byte* get() { return ptr_; }

 private:
  Context& ctx_;
  BufferPlacement place_;
  std::byte* ptr_ = nullptr;
  std::vector<std::byte> host_;
};

}  // namespace

const char* placement_name(BufferPlacement p) {
  return p == BufferPlacement::kDevice ? "D-D" : "H-H";
}

sim::SimTime osu_latency(BufferPlacement place, std::size_t bytes,
                         int iterations, const mpisim::ClusterConfig& cfg) {
  mpisim::ClusterConfig c = cfg;
  c.ranks = 2;
  mpisim::Cluster cluster(c);
  sim::SimTime one_way = 0;
  cluster.run([&](Context& ctx) {
    auto t = byte_type();
    Buffer buf(ctx, place, bytes);
    const int peer = 1 - ctx.rank;
    const int n = static_cast<int>(bytes);
    ctx.comm.barrier();
    sim::SimTime t0 = 0;
    for (int it = -2; it < iterations; ++it) {
      if (it == 0) {
        ctx.comm.barrier();
        t0 = ctx.engine->now();
      }
      if (ctx.rank == 0) {
        ctx.comm.send(buf.get(), n, t, peer, 0);
        ctx.comm.recv(buf.get(), n, t, peer, 0);
      } else {
        ctx.comm.recv(buf.get(), n, t, peer, 0);
        ctx.comm.send(buf.get(), n, t, peer, 0);
      }
    }
    if (ctx.rank == 0) one_way = (ctx.engine->now() - t0) / (2 * iterations);
  });
  return one_way;
}

namespace {

double window_bandwidth(BufferPlacement place, std::size_t bytes, int window,
                        int iterations, const mpisim::ClusterConfig& cfg,
                        bool bidirectional) {
  mpisim::ClusterConfig c = cfg;
  c.ranks = 2;
  mpisim::Cluster cluster(c);
  double mbps = 0;
  cluster.run([&](Context& ctx) {
    auto t = byte_type();
    const int peer = 1 - ctx.rank;
    const int n = static_cast<int>(bytes);
    // One buffer per window slot, as osu_bw does.
    std::vector<std::unique_ptr<Buffer>> bufs;
    for (int w = 0; w < window; ++w) {
      bufs.push_back(std::make_unique<Buffer>(ctx, place, bytes));
    }
    char ack = 0;
    auto ints = byte_type();
    ctx.comm.barrier();
    const sim::SimTime t0 = ctx.engine->now();
    for (int it = 0; it < iterations; ++it) {
      std::vector<mpisim::Request> reqs;
      const bool sender = bidirectional || ctx.rank == 0;
      const bool receiver = bidirectional || ctx.rank == 1;
      if (receiver) {
        for (int w = 0; w < window; ++w) {
          reqs.push_back(ctx.comm.irecv(bufs[w]->get(), n, t, peer, w));
        }
      }
      if (sender) {
        for (int w = 0; w < window; ++w) {
          reqs.push_back(ctx.comm.isend(bufs[w]->get(), n, t, peer, w));
        }
      }
      ctx.comm.waitall(reqs);
      // Window ack (osu_bw sends one 4-byte ack per window).
      if (!bidirectional) {
        if (ctx.rank == 1) ctx.comm.send(&ack, 1, ints, 0, 99);
        else ctx.comm.recv(&ack, 1, ints, 1, 99);
      }
    }
    ctx.comm.barrier();
    if (ctx.rank == 0) {
      const double secs = sim::to_sec(ctx.engine->now() - t0);
      const double dirs = bidirectional ? 2.0 : 1.0;
      mbps = dirs * static_cast<double>(bytes) * window * iterations /
             secs / 1e6;
    }
  });
  return mbps;
}

}  // namespace

double osu_bandwidth(BufferPlacement place, std::size_t bytes, int window,
                     int iterations, const mpisim::ClusterConfig& cfg) {
  return window_bandwidth(place, bytes, window, iterations, cfg, false);
}

double osu_bibandwidth(BufferPlacement place, std::size_t bytes, int window,
                       int iterations, const mpisim::ClusterConfig& cfg) {
  return window_bandwidth(place, bytes, window, iterations, cfg, true);
}

}  // namespace mv2gnc::apps
