// Small table/CSV reporting helpers shared by the benchmark binaries.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <vector>

#include "sim/time.hpp"

namespace mv2gnc::apps {

/// Fixed-column ASCII table, printed like the paper's tables.
class Table {
 public:
  Table(std::string title, std::vector<std::string> columns);

  void add_row(std::vector<std::string> cells);
  /// Pretty-print with aligned columns.
  void print(std::ostream& os) const;
  /// Comma-separated rendering (header included).
  std::string to_csv() const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

/// "16", "1K", "4M" — the paper's x-axis labels.
std::string format_bytes(std::size_t bytes);

/// Fixed-precision microseconds, e.g. "281.25".
std::string format_us(sim::SimTime t, int precision = 2);

/// Fixed-precision seconds, e.g. "0.547788".
std::string format_sec(sim::SimTime t, int precision = 6);

/// Percentage improvement of `ours` over `base`, e.g. "42%".
std::string format_improvement(double base, double ours);

}  // namespace mv2gnc::apps
