// Distributed matrix transpose with GPU-resident data and subarray
// datatypes — the second application workload (beyond Stencil2D) for the
// non-contiguous GPU communication path. This is the communication pattern
// of 2-D FFTs and out-of-core solvers: every rank sends a different
// *strided sub-block* of its rows to every other rank.
//
// Layout: a global N x N matrix of doubles, row-block distributed over P
// ranks (b = N/P rows each). Rank r sends block A[r-rows, j-cols] to rank
// j described by a subarray datatype (no staging copies in user code),
// receives the mirror blocks into contiguous device scratch, and finishes
// with a local b x b transpose kernel per block.
#pragma once

#include <vector>

#include "mpi/cluster.hpp"

namespace mv2gnc::apps {

struct TransposeConfig {
  int global_n = 256;  // matrix dimension; must be divisible by ranks
  /// Initialize with real data and verify the result (small sizes).
  bool validate = false;
};

struct TransposeResult {
  double seconds = 0.0;
  double checksum = 0.0;  // sum over local rows of T (validate mode)
};

/// SPMD body: call from every rank. Returns per-rank timing.
TransposeResult run_transpose(mpisim::Context& ctx,
                              const TransposeConfig& cfg);

/// Deterministic initial value of matrix element (i, j).
double transpose_initial(int i, int j);

}  // namespace mv2gnc::apps
