#include "apps/stencil2d.hpp"

#include <array>
#include <cstring>
#include <memory>
#include <stdexcept>

namespace mv2gnc::apps {

namespace {

namespace mpisim = mv2gnc::mpisim;
using mpisim::Context;
using mpisim::Datatype;

// Direction indices and names (paper Fig. 6 categories).
enum Dir { kNorth = 0, kSouth = 1, kWest = 2, kEast = 3 };
constexpr std::array<const char*, 4> kDirName{"north", "south", "west",
                                              "east"};

/// RAII trace scope: records [begin, now) into the cluster trace.
class TraceScope {
 public:
  TraceScope(Context& ctx, bool enabled, Dir dir, const char* what)
      : ctx_(ctx), enabled_(enabled) {
    if (enabled_) {
      category_ = std::string(kDirName[dir]) + "_" + what;
      begin_ = ctx.engine->now();
    }
  }
  ~TraceScope() {
    if (enabled_) {
      ctx_.trace->record(ctx_.rank, category_, begin_, ctx_.engine->now());
    }
  }

 private:
  Context& ctx_;
  bool enabled_;
  std::string category_;
  sim::SimTime begin_ = 0;
};

template <typename T>
Datatype element_type();
template <>
Datatype element_type<float>() {
  return Datatype::float32();
}
template <>
Datatype element_type<double>() {
  return Datatype::float64();
}

template <typename T>
class Stencil {
 public:
  Stencil(Context& ctx, const StencilConfig& cfg)
      : ctx_(ctx), cfg_(cfg),
        rows_(cfg.local_rows), cols_(cfg.local_cols),
        pitch_(cfg.local_cols + 2) {
    if (ctx.size != cfg.ranks()) {
      throw std::invalid_argument("Stencil: cluster size != process grid");
    }
    const int pr = ctx.rank / cfg.proc_cols;
    const int pc = ctx.rank % cfg.proc_cols;
    nbr_[kNorth] = (pr > 0) ? ctx.rank - cfg.proc_cols : -1;
    nbr_[kSouth] = (pr < cfg.proc_rows - 1) ? ctx.rank + cfg.proc_cols : -1;
    nbr_[kWest] = (pc > 0) ? ctx.rank - 1 : -1;
    nbr_[kEast] = (pc < cfg.proc_cols - 1) ? ctx.rank + 1 : -1;
    row0_ = pr * rows_;  // global coordinates of the first interior cell
    col0_ = pc * cols_;

    elem_ = element_type<T>();
    elem_.commit();
    col_dev_ = Datatype::vector(rows_, 1, pitch_, elem_);
    col_dev_.commit();

    const std::size_t cells =
        static_cast<std::size_t>(rows_ + 2) * static_cast<std::size_t>(pitch_);
    cur_ = static_cast<T*>(ctx.cuda->malloc(cells * sizeof(T)));
    next_ = static_cast<T*>(ctx.cuda->malloc(cells * sizeof(T)));
    compute_stream_ = ctx.cuda->create_stream();

    if (cfg.variant == StencilConfig::Variant::kDef) {
      // Host bounce buffers for the Def variant (per direction).
      ew_send_ = std::make_unique<T[]>(static_cast<std::size_t>(rows_) * 2);
      ew_recv_ = std::make_unique<T[]>(static_cast<std::size_t>(rows_) * 2);
      ns_send_ = std::make_unique<T[]>(static_cast<std::size_t>(pitch_) * 2);
      ns_recv_ = std::make_unique<T[]>(static_cast<std::size_t>(pitch_) * 2);
    }
    if (cfg.validate) initialize();
  }

  ~Stencil() {
    ctx_.cuda->free(cur_);
    ctx_.cuda->free(next_);
  }

  StencilResult run() {
    ctx_.comm.barrier();
    const sim::SimTime t0 = ctx_.engine->now();
    for (int it = 0; it < cfg_.iterations; ++it) {
      if (cfg_.variant == StencilConfig::Variant::kDef) {
        exchange_def();
      } else {
        exchange_nc();
      }
      compute();
      std::swap(cur_, next_);
    }
    ctx_.comm.barrier();
    StencilResult res;
    res.seconds = sim::to_sec(ctx_.engine->now() - t0);
    if (cfg_.validate) {
      const double local = interior_sum();
      ctx_.comm.allreduce_sum(&local, &res.checksum, 1);
    }
    return res;
  }

  /// Compare this rank's interior against the serial reference.
  /// Returns the max abs error.
  double max_error_vs(const std::vector<double>& reference,
                      int global_cols) const {
    double err = 0;
    const int gpitch = global_cols + 2;
    for (int i = 1; i <= rows_; ++i) {
      for (int j = 1; j <= cols_; ++j) {
        const double ref =
            reference[static_cast<std::size_t>(row0_ + i) * gpitch +
                      (col0_ + j)];
        const double got = static_cast<double>(at(cur_, i, j));
        err = std::max(err, std::abs(ref - got));
      }
    }
    return err;
  }

 private:
  T& at(T* a, int i, int j) const {
    return a[static_cast<std::size_t>(i) * pitch_ + j];
  }
  const T& at(const T* a, int i, int j) const {
    return a[static_cast<std::size_t>(i) * pitch_ + j];
  }

  void initialize() {
    const std::size_t cells =
        static_cast<std::size_t>(rows_ + 2) * static_cast<std::size_t>(pitch_);
    std::vector<T> host(cells, T{0});
    for (int i = 1; i <= rows_; ++i) {
      for (int j = 1; j <= cols_; ++j) {
        host[static_cast<std::size_t>(i) * pitch_ + j] = static_cast<T>(
            stencil_initial(row0_ + i - 1, col0_ + j - 1));
      }
    }
    ctx_.cuda->memcpy(cur_, host.data(), cells * sizeof(T));
    ctx_.cuda->memcpy(next_, host.data(), cells * sizeof(T));
  }

  // Wait for the receives of one exchange phase. In trace mode each
  // direction is waited (and attributed) separately; otherwise a single
  // Waitall covers the phase, matching SHOC's structure (Table I).
  void wait_phase(std::array<mpisim::Request, 4>& rreq, Dir a, Dir b) {
    if (cfg_.trace_dirs) {
      for (Dir d : {a, b}) {
        if (nbr_[d] < 0) continue;
        TraceScope ts(ctx_, true, d, "mpi");
        ctx_.comm.wait(rreq[d]);
      }
      return;
    }
    std::vector<mpisim::Request> active;
    for (Dir d : {a, b}) {
      if (nbr_[d] >= 0) active.push_back(rreq[d]);
    }
    ctx_.comm.waitall(active);
  }

  // -- Def variant: explicit staging through host memory ------------------
  // (mirrors SHOC's Stencil2D main loop; see Table I for the call counts)
  // BEGIN-STENCIL2D-DEF-LOOP
  void exchange_def() {
    const bool tr = cfg_.trace_dirs;
    std::array<mpisim::Request, 4> rreq;
    // East/west halo columns (non-contiguous on the device).
    for (Dir d : {kWest, kEast}) {
      if (nbr_[d] < 0) continue;
      TraceScope ts(ctx_, tr, d, "mpi");
      rreq[d] = ctx_.comm.irecv(ew_recv_.get() + (d - kWest) * rows_, rows_,
                                elem_, nbr_[d], tag_for(d));
    }
    for (Dir d : {kWest, kEast}) {
      if (nbr_[d] < 0) continue;
      const int surface_col = (d == kWest) ? 1 : cols_;
      {
        // copy non-contiguous data from device to host (D2H nc2c)
        TraceScope ts(ctx_, tr, d, "cuda");
        ctx_.cuda->memcpy2d(ew_send_.get() + (d - kWest) * rows_, sizeof(T),
                            &at(cur_, 1, surface_col), pitch_ * sizeof(T),
                            sizeof(T), rows_,
                            cusim::MemcpyKind::kDeviceToHost);
      }
      TraceScope ts(ctx_, tr, d, "mpi");
      ctx_.comm.send(ew_send_.get() + (d - kWest) * rows_, rows_, elem_,
                     nbr_[d], tag_for(opposite(d)));
    }
    wait_phase(rreq, kWest, kEast);
    for (Dir d : {kWest, kEast}) {
      if (nbr_[d] < 0) continue;
      const int halo_col = (d == kWest) ? 0 : cols_ + 1;
      // copy received halo from host into the device column (H2D c2nc)
      TraceScope ts(ctx_, tr, d, "cuda");
      ctx_.cuda->memcpy2d(&at(cur_, 1, halo_col), pitch_ * sizeof(T),
                          ew_recv_.get() + (d - kWest) * rows_, sizeof(T),
                          sizeof(T), rows_, cusim::MemcpyKind::kHostToDevice);
    }
    // North/south halo rows, full width incl. corners (contiguous).
    for (Dir d : {kNorth, kSouth}) {
      if (nbr_[d] < 0) continue;
      TraceScope ts(ctx_, tr, d, "mpi");
      rreq[d] = ctx_.comm.irecv(ns_recv_.get() + (d - kNorth) * pitch_,
                                pitch_, elem_, nbr_[d], tag_for(d));
    }
    for (Dir d : {kNorth, kSouth}) {
      if (nbr_[d] < 0) continue;
      const int surface_row = (d == kNorth) ? 1 : rows_;
      {
        TraceScope ts(ctx_, tr, d, "cuda");
        ctx_.cuda->memcpy(ns_send_.get() + (d - kNorth) * pitch_,
                          &at(cur_, surface_row, 0), pitch_ * sizeof(T),
                          cusim::MemcpyKind::kDeviceToHost);
      }
      TraceScope ts(ctx_, tr, d, "mpi");
      ctx_.comm.send(ns_send_.get() + (d - kNorth) * pitch_, pitch_, elem_,
                     nbr_[d], tag_for(opposite(d)));
    }
    wait_phase(rreq, kNorth, kSouth);
    for (Dir d : {kNorth, kSouth}) {
      if (nbr_[d] < 0) continue;
      const int halo_row = (d == kNorth) ? 0 : rows_ + 1;
      TraceScope ts(ctx_, tr, d, "cuda");
      ctx_.cuda->memcpy(&at(cur_, halo_row, 0),
                        ns_recv_.get() + (d - kNorth) * pitch_,
                        pitch_ * sizeof(T), cusim::MemcpyKind::kHostToDevice);
    }
  }

  // END-STENCIL2D-DEF-LOOP

  // -- MV2-GPU-NC variant: device buffers straight into MPI ---------------
  // BEGIN-STENCIL2D-NC-LOOP
  void exchange_nc() {
    const bool tr = cfg_.trace_dirs;
    std::array<mpisim::Request, 4> rreq;
    for (Dir d : {kWest, kEast}) {
      if (nbr_[d] < 0) continue;
      TraceScope ts(ctx_, tr, d, "mpi");
      const int halo_col = (d == kWest) ? 0 : cols_ + 1;
      rreq[d] = ctx_.comm.irecv(&at(cur_, 1, halo_col), 1, col_dev_, nbr_[d],
                                tag_for(d));
    }
    for (Dir d : {kWest, kEast}) {
      if (nbr_[d] < 0) continue;
      TraceScope ts(ctx_, tr, d, "mpi");
      const int surface_col = (d == kWest) ? 1 : cols_;
      ctx_.comm.send(&at(cur_, 1, surface_col), 1, col_dev_, nbr_[d],
                     tag_for(opposite(d)));
    }
    wait_phase(rreq, kWest, kEast);
    for (Dir d : {kNorth, kSouth}) {
      if (nbr_[d] < 0) continue;
      TraceScope ts(ctx_, tr, d, "mpi");
      const int halo_row = (d == kNorth) ? 0 : rows_ + 1;
      rreq[d] = ctx_.comm.irecv(&at(cur_, halo_row, 0), pitch_, elem_,
                                nbr_[d], tag_for(d));
    }
    for (Dir d : {kNorth, kSouth}) {
      if (nbr_[d] < 0) continue;
      TraceScope ts(ctx_, tr, d, "mpi");
      const int surface_row = (d == kNorth) ? 1 : rows_;
      ctx_.comm.send(&at(cur_, surface_row, 0), pitch_, elem_, nbr_[d],
                     tag_for(opposite(d)));
    }
    wait_phase(rreq, kNorth, kSouth);
  }

  // END-STENCIL2D-NC-LOOP

  void compute() {
    const std::uint64_t points =
        static_cast<std::uint64_t>(rows_) * static_cast<std::uint64_t>(cols_);
    T* cur = cur_;
    T* next = next_;
    const bool do_math = cfg_.validate;
    auto body = [this, cur, next, do_math] {
      if (!do_math) return;
      for (int i = 1; i <= rows_; ++i) {
        for (int j = 1; j <= cols_; ++j) {
          const T* c = cur + static_cast<std::size_t>(i) * pitch_ + j;
          next[static_cast<std::size_t>(i) * pitch_ + j] = static_cast<T>(
              kWCenter * c[0] +
              kWAdjacent * (c[-1] + c[1] + c[-pitch_] + c[pitch_]) +
              kWDiagonal * (c[-pitch_ - 1] + c[-pitch_ + 1] +
                            c[pitch_ - 1] + c[pitch_ + 1]));
        }
      }
      // Halo ring carries over unchanged (it is re-exchanged next step).
      for (int j = 0; j < pitch_; ++j) {
        next[j] = cur[j];
        next[static_cast<std::size_t>(rows_ + 1) * pitch_ + j] =
            cur[static_cast<std::size_t>(rows_ + 1) * pitch_ + j];
      }
      for (int i = 0; i <= rows_ + 1; ++i) {
        next[static_cast<std::size_t>(i) * pitch_] =
            cur[static_cast<std::size_t>(i) * pitch_];
        next[static_cast<std::size_t>(i) * pitch_ + cols_ + 1] =
            cur[static_cast<std::size_t>(i) * pitch_ + cols_ + 1];
      }
    };
    ctx_.cuda->launch_kernel(compute_stream_, points, cfg_.double_precision,
                             body);
    compute_stream_.synchronize();
  }

  double interior_sum() const {
    double sum = 0;
    for (int i = 1; i <= rows_; ++i) {
      for (int j = 1; j <= cols_; ++j) sum += static_cast<double>(at(cur_, i, j));
    }
    return sum;
  }

  static Dir opposite(Dir d) {
    switch (d) {
      case kNorth: return kSouth;
      case kSouth: return kNorth;
      case kWest: return kEast;
      case kEast: return kWest;
    }
    return kNorth;
  }
  // Tag identifies the direction *at the receiver*.
  static int tag_for(Dir d) { return 50 + static_cast<int>(d); }

  Context& ctx_;
  const StencilConfig& cfg_;
  int rows_, cols_, pitch_;
  std::array<int, 4> nbr_{};
  int row0_ = 0, col0_ = 0;
  Datatype elem_, col_dev_;
  T* cur_ = nullptr;
  T* next_ = nullptr;
  cusim::Stream compute_stream_;
  std::unique_ptr<T[]> ew_send_, ew_recv_, ns_send_, ns_recv_;
};

template <typename T>
StencilResult run_stencil_t(Context& ctx, const StencilConfig& cfg) {
  Stencil<T> app(ctx, cfg);
  StencilResult res = app.run();
  if (cfg.validate) {
    const auto ref = stencil_reference(cfg.proc_rows * cfg.local_rows,
                                       cfg.proc_cols * cfg.local_cols,
                                       cfg.iterations);
    const double err =
        app.max_error_vs(ref, cfg.proc_cols * cfg.local_cols);
    const double tol = cfg.double_precision ? 1e-9 : 1e-4;
    if (err > tol) {
      throw std::runtime_error("Stencil validation failed on rank " +
                               std::to_string(ctx.rank) + ": max error " +
                               std::to_string(err));
    }
  }
  return res;
}

}  // namespace

double stencil_initial(int gi, int gj) {
  return static_cast<double>((gi * 31 + gj * 17 + 3) % 97) / 97.0;
}

std::vector<double> stencil_reference(int global_rows, int global_cols,
                                      int iterations) {
  const int pitch = global_cols + 2;
  std::vector<double> cur(static_cast<std::size_t>(global_rows + 2) * pitch,
                          0.0);
  for (int i = 1; i <= global_rows; ++i) {
    for (int j = 1; j <= global_cols; ++j) {
      cur[static_cast<std::size_t>(i) * pitch + j] =
          stencil_initial(i - 1, j - 1);
    }
  }
  std::vector<double> next = cur;
  for (int it = 0; it < iterations; ++it) {
    for (int i = 1; i <= global_rows; ++i) {
      for (int j = 1; j <= global_cols; ++j) {
        const double* c = cur.data() + static_cast<std::size_t>(i) * pitch + j;
        next[static_cast<std::size_t>(i) * pitch + j] =
            kWCenter * c[0] +
            kWAdjacent * (c[-1] + c[1] + c[-pitch] + c[pitch]) +
            kWDiagonal * (c[-pitch - 1] + c[-pitch + 1] + c[pitch - 1] +
                          c[pitch + 1]);
      }
    }
    std::swap(cur, next);
  }
  return cur;
}

StencilResult run_stencil(Context& ctx, const StencilConfig& cfg) {
  return cfg.double_precision ? run_stencil_t<double>(ctx, cfg)
                              : run_stencil_t<float>(ctx, cfg);
}

}  // namespace mv2gnc::apps
