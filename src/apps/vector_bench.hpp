// GPU-to-GPU vector-datatype transports and the OSU-style latency harness
// (paper §V-A, Figures 4 and 5).
//
// Three ways to move a strided vector between two GPUs:
//   kCpy2DSend        — Fig. 4(a): blocking cudaMemcpy2D staging (nc2nc) +
//                       blocking MPI with a host vector datatype. High
//                       productivity, bad performance.
//   kCpy2DAsyncIsend  — Fig. 4(b): hand-written user-level pipeline with
//                       asynchronous CUDA copies, chunked non-blocking MPI
//                       and cudaStreamQuery polling. Good performance, low
//                       productivity (this file is the productivity cost).
//   kMv2GpuNc         — Fig. 4(c): device buffers straight into MPI; the
//                       library's MV2-GPU-NC engine does the rest.
#pragma once

#include <cstddef>

#include "mpi/cluster.hpp"

namespace mv2gnc::apps {

enum class VectorMethod { kCpy2DSend, kCpy2DAsyncIsend, kMv2GpuNc };

const char* method_name(VectorMethod m);

/// Average one-way latency of a `rows` x 4-byte strided vector between two
/// GPUs, measured with a ping-pong loop (OSU latency methodology: half the
/// round trip, averaged over `iterations` after warm-up).
sim::SimTime measure_vector_latency(VectorMethod method, std::size_t rows,
                                    int iterations,
                                    const mpisim::ClusterConfig& cfg);

}  // namespace mv2gnc::apps
