#include "net/ipc.hpp"

#include <cstring>
#include <string>
#include <utility>

namespace mv2gnc::netsim {

IpcPort::IpcPort(sim::Engine& engine, IpcChannel& channel, int rank)
    : engine_(engine),
      channel_(channel),
      rank_(rank),
      tx_(engine, "ipc" + std::to_string(rank) + ".tx") {}

void IpcPort::deliver(Completion c) {
  cq_.push_back(std::move(c));
  if (wakeup_ != nullptr) wakeup_->notify();
}

sim::SimTime IpcPort::draw_jitter(const FaultSpec& spec) {
  if (spec.jitter_ns <= 0) return 0;
  const sim::SimTime j = static_cast<sim::SimTime>(
      engine_.rand_below(static_cast<std::uint64_t>(spec.jitter_ns) + 1));
  if (j > 0) ++fault_counters_.deliveries_jittered;
  return j;
}

void IpcPort::deliver_remote(IpcPort* dst, std::unique_ptr<WireMessage> msg,
                             sim::SimTime extra_delay) {
  // Move-captured by the delivery event: one allocation per message, no
  // shared_ptr control-block churn (same shape as Endpoint::deliver_remote).
  engine_.schedule_after(channel_.cost().latency_ns + extra_delay,
                         [dst, msg = std::move(msg)]() mutable {
                           const IpcChannel::Receipt* r =
                               dst->channel_.receipt_for(msg->kind);
                           if (r != nullptr) {
                             dst->send_receipt(r->receipt_kind,
                                               r->echo_header, *msg);
                           }
                           dst->deliver(
                               Completion{CqType::kRecv, 0, std::move(*msg)});
                         });
}

void IpcPort::send_receipt(int receipt_kind, std::size_t echo_header,
                           const WireMessage& m) {
  const int dst = m.src_node;
  if (!channel_.has_rank(dst)) return;
  WireMessage ack;
  ack.src_node = rank_;
  ack.kind = receipt_kind;
  ack.header[0] = m.header[echo_header];
  const IpcCostModel& c = channel_.cost();
  IpcPort* dst_port = &channel_.port(dst);
  auto owned = std::make_unique<WireMessage>(std::move(ack));
  ++messages_sent_;
  // Channel-generated, like the HCA's transport ack: no post overhead, no
  // kSendComplete, just transmit occupancy — plus the usual fault rolls on
  // the (this -> dst, receipt_kind) edge. A receipt kind never has a
  // receipt of its own, so this cannot recurse.
  tx_.submit(c.per_msg_overhead_ns + c.copy_time(64, c.host_bw),
             [this, dst, dst_port, msg = std::move(owned)]() mutable {
               sim::SimTime extra = 0;
               if (channel_.faults().enabled()) {
                 const FaultSpec& spec =
                     channel_.faults().resolve(rank_, dst, msg->kind);
                 if (spec.drop_send > 0.0 &&
                     engine_.rand_uniform() < spec.drop_send) {
                   ++fault_counters_.sends_dropped;
                   return;
                 }
                 extra = draw_jitter(spec);
               }
               deliver_remote(dst_port, std::move(msg), extra);
             });
}

bool IpcPort::poll(Completion& out) {
  if (cq_.empty()) return false;
  out = std::move(cq_.front());
  cq_.pop_front();
  return true;
}

std::uint64_t IpcPort::post_send(int dst, WireMessage msg) {
  if (!channel_.has_rank(dst)) {
    throw std::out_of_range("IpcPort::post_send: rank " + std::to_string(dst) +
                            " is not on this node");
  }
  const IpcCostModel& c = channel_.cost();
  engine_.delay(c.post_overhead_ns);  // CPU cost of posting
  const std::uint64_t wr = next_wr_++;
  msg.src_node = rank_;
  ++messages_sent_;
  bytes_sent_ += msg.payload.size();
  const sim::SimTime duration =
      c.per_msg_overhead_ns + c.copy_time(msg.payload.size() + 64, c.host_bw);
  IpcPort* dst_port = &channel_.port(dst);
  auto owned_msg = std::make_unique<WireMessage>(std::move(msg));
  tx_.submit(duration, [this, wr, dst, dst_port,
                        m = std::move(owned_msg)]() mutable {
    // The queue pair drained the descriptor either way; whether the
    // message then reaches the peer is decided here, at drain time, so
    // the fault sequence depends only on the deterministic event order
    // (same placement as the fabric's Endpoint).
    deliver(Completion{CqType::kSendComplete, wr, {}});
    sim::SimTime extra = 0;
    if (channel_.faults().enabled()) {
      const FaultSpec& spec = channel_.faults().resolve(rank_, dst, m->kind);
      if (spec.drop_send > 0.0 && engine_.rand_uniform() < spec.drop_send) {
        ++fault_counters_.sends_dropped;
        return;
      }
      extra = draw_jitter(spec);
    }
    deliver_remote(dst_port, std::move(m), extra);
  });
  return wr;
}

std::uint64_t IpcPort::post_rdma_write(int dst, const void* local,
                                       void* remote, std::size_t bytes,
                                       std::optional<WireMessage> imm) {
  if (!channel_.has_rank(dst)) {
    throw std::out_of_range("IpcPort::post_rdma_write: rank " +
                            std::to_string(dst) + " is not on this node");
  }
  if ((local == nullptr || remote == nullptr) && bytes > 0) {
    throw std::invalid_argument("IpcPort::post_rdma_write: null buffer");
  }
  const IpcCostModel& c = channel_.cost();
  engine_.delay(c.post_overhead_ns);
  const std::uint64_t wr = next_wr_++;
  ++rdma_writes_;
  bytes_sent_ += bytes;
  const sim::SimTime duration =
      c.per_msg_overhead_ns +
      c.copy_time(bytes, channel_.copy_bw(local, remote, bytes));
  IpcPort* dst_port = &channel_.port(dst);
  std::unique_ptr<WireMessage> owned_imm;
  if (imm) {
    imm->src_node = rank_;
    owned_imm = std::make_unique<WireMessage>(std::move(*imm));
  }
  tx_.submit(duration, [this, wr, dst, dst_port, local, remote, bytes,
                        imm_msg = std::move(owned_imm)]() mutable {
    const FaultSpec* spec = nullptr;
    if (channel_.faults().enabled()) {
      const int kind = imm_msg ? imm_msg->kind : FaultModel::kNoKind;
      spec = &channel_.faults().resolve(rank_, dst, kind);
      if (spec->fail_write > 0.0 &&
          engine_.rand_uniform() < spec->fail_write) {
        // Copy/map error (a failed CUDA-IPC mapping, a faulted CMA copy):
        // nothing lands, no notification goes out, and the poster learns
        // via a synthetic error completion — the same CqType::kError the
        // fabric surfaces, so the reliability layer retransmits out of
        // its staging slot regardless of transport.
        ++fault_counters_.writes_failed;
        deliver(Completion{CqType::kError, wr, {}});
        return;
      }
    }
    // Data lands when the copy engine drains; the notification follows one
    // channel latency later (same ordering guarantee as the fabric).
    if (bytes > 0) std::memcpy(remote, local, bytes);
    deliver(Completion{CqType::kRdmaComplete, wr, {}});
    if (imm_msg) {
      sim::SimTime extra = 0;
      if (spec != nullptr) {
        if (spec->drop_imm > 0.0 &&
            engine_.rand_uniform() < spec->drop_imm) {
          ++fault_counters_.imms_dropped;
          return;
        }
        extra = draw_jitter(*spec);
      }
      deliver_remote(dst_port, std::move(imm_msg), extra);
    }
  });
  return wr;
}

std::uint64_t IpcPort::post_rdma_read(int src, void* local,
                                      const void* remote, std::size_t bytes) {
  if (!channel_.has_rank(src)) {
    throw std::out_of_range("IpcPort::post_rdma_read: rank " +
                            std::to_string(src) + " is not on this node");
  }
  if ((local == nullptr || remote == nullptr) && bytes > 0) {
    throw std::invalid_argument("IpcPort::post_rdma_read: null buffer");
  }
  const IpcCostModel& c = channel_.cost();
  engine_.delay(c.post_overhead_ns);
  const std::uint64_t wr = next_wr_++;
  ++rdma_reads_;
  IpcPort* target = &channel_.port(src);
  const double bw = channel_.copy_bw(remote, local, bytes);
  // Request crosses the channel, the copy serializes on the target's
  // pipeline, completion crosses back (mirrors the fabric's read shape).
  engine_.schedule_after(c.latency_ns, [this, target, local, remote, bytes,
                                        wr, bw] {
    const IpcCostModel& cc = channel_.cost();
    target->tx_.submit(
        cc.per_msg_overhead_ns + cc.copy_time(bytes, bw),
        [this, local, remote, bytes, wr] {
          engine_.schedule_after(channel_.cost().latency_ns,
                                 [this, local, remote, bytes, wr] {
                                   if (bytes > 0) {
                                     std::memcpy(local, remote, bytes);
                                   }
                                   deliver(Completion{
                                       CqType::kRdmaReadComplete, wr, {}});
                                 });
        });
  });
  return wr;
}

IpcChannel::IpcChannel(sim::Engine& engine,
                       const gpu::MemoryRegistry& registry, IpcCostModel cost)
    : engine_(engine), registry_(registry), cost_(cost) {}

IpcPort& IpcChannel::add_rank(int rank) {
  auto [it, inserted] =
      ports_.emplace(rank, std::unique_ptr<IpcPort>{});
  if (inserted) it->second = std::make_unique<IpcPort>(engine_, *this, rank);
  return *it->second;
}

IpcPort& IpcChannel::port(int rank) {
  const auto it = ports_.find(rank);
  if (it == ports_.end()) {
    throw std::out_of_range("IpcChannel::port: rank " + std::to_string(rank) +
                            " is not on this node");
  }
  return *it->second;
}

double IpcChannel::copy_bw(const void* src, const void* dst,
                           std::size_t bytes) const {
  const bool src_dev = registry_.is_device_pointer(src);
  const bool dst_dev = registry_.is_device_pointer(dst);
  if (src_dev && dst_dev) return cost_.peer_d2d_bw;
  if (src_dev || dst_dev) return cost_.pcie_bw;
  return bytes >= cost_.shm_cma_threshold ? cost_.cma_host_bw
                                          : cost_.shm_host_bw;
}

}  // namespace mv2gnc::netsim
