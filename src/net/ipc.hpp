// netsim: intra-node IPC channel.
//
// Ranks that the cluster topology co-locates on one node do not cross the
// HCA: control messages travel over a shared-memory queue pair and payload
// moves as a direct copy between the two processes' address spaces — a
// host-side shared-memory copy, a PCIe staging copy when one end is device
// memory, or a peer D2D copy (the CUDA-IPC path) when both ends are device
// memory. The channel carries the same FaultModel as the fabric (benign by
// default): in-node delivery is lossless until a rule is installed, after
// which seeded drops (including delivery receipts), synthetic copy/map
// errors (CqType::kError) and per-pair delivery jitter apply exactly as
// they do at the HCA — so the reliability layer's retransmit/backoff/abort
// guarantees can be exercised over IPC too (see docs/RELIABILITY.md).
// Rules resolve on (src rank, dst rank, message kind).
//
// The channel mirrors the verbs-shaped surface of net/fabric.hpp (same
// WireMessage/Completion types, same post/poll verbs) so the transport
// seam in core can drive either interchangeably. Work-request ids are
// drawn from a range disjoint from the fabric's (offset by kIpcWrBase), so
// one rank's completion dispatch can mix both transports safely.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "gpu/cost_model.hpp"
#include "gpu/memory_registry.hpp"
#include "net/fault.hpp"
#include "net/wire.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace mv2gnc::netsim {

/// Timing constants of the in-node channel. Control latency models a
/// shared-memory queue poll (no NIC, no switch); copy bandwidths are
/// selected per transfer from the memory kinds of the two endpoints.
struct IpcCostModel {
  sim::SimTime latency_ns = 300;         // queue-pair delivery
  sim::SimTime per_msg_overhead_ns = 150;  // descriptor/doorbell processing
  sim::SimTime post_overhead_ns = 100;   // CPU cost of posting
  double host_bw = 10.0;                 // control/eager queue-pair GB/s
  double pcie_bw = 5.5;                  // one end device: PCIe copy
  double peer_d2d_bw = 6.0;              // device<->device peer copy (P2P)

  // Host<->host *payload* copies (one-sided writes/reads between the two
  // processes' address spaces): double-buffered shm below the threshold,
  // single-copy cross-memory attach (CMA) at or above it. Calibrated in
  // gpu::GpuCostModel (see shm_host_bw there); the flat host_bw above only
  // prices the control queue pair and eager payloads riding it.
  double shm_host_bw = 4.8;
  double cma_host_bw = 11.0;
  std::size_t shm_cma_threshold = 64 * 1024;

  sim::SimTime copy_time(std::size_t bytes, double bw) const {
    return static_cast<sim::SimTime>(static_cast<double>(bytes) / bw);
  }

  /// Derive the copy bandwidths from the node's GPU model (peer copies run
  /// over the same PCIe fabric the staged pipeline uses; the host leg
  /// inherits the model's calibrated shm/CMA pair).
  static IpcCostModel from_gpu(const gpu::GpuCostModel& g) {
    IpcCostModel c;
    c.pcie_bw = (g.d2h_bw < g.h2d_bw) ? g.d2h_bw : g.h2d_bw;
    c.peer_d2d_bw = g.peer_d2d_bw;
    c.shm_host_bw = g.shm_host_bw;
    c.cma_host_bw = g.cma_host_bw;
    c.shm_cma_threshold = g.shm_cma_threshold;
    return c;
  }
};

/// First work-request id an IpcPort hands out. The fabric Endpoint counts
/// up from 1; keeping the IPC range disjoint means a rank driving both
/// transports never sees a wr_id collision.
inline constexpr std::uint64_t kIpcWrBase = 1ull << 48;

class IpcChannel;

/// One rank's attachment to the node's IPC channel: a transmit pipeline
/// (FIFO) plus a completion queue, shaped like a NIC endpoint — including
/// the channel's fault model, rolled at transmit-drain time.
class IpcPort {
 public:
  IpcPort(sim::Engine& engine, IpcChannel& channel, int rank);
  IpcPort(const IpcPort&) = delete;
  IpcPort& operator=(const IpcPort&) = delete;

  /// Post a two-sided SEND to co-located rank `dst`.
  std::uint64_t post_send(int dst, WireMessage msg);

  /// Post a one-sided copy of `bytes` from `local` into `remote` (an
  /// address owned by co-located rank `dst`); the copy lands when the
  /// transmit drains, and `imm` (if any) arrives one channel latency
  /// later, preserving the RDMA ordering guarantee.
  std::uint64_t post_rdma_write(int dst, const void* local, void* remote,
                                std::size_t bytes,
                                std::optional<WireMessage> imm = std::nullopt);

  /// Post a one-sided read of `bytes` from `remote` (owned by co-located
  /// rank `src`) into `local`.
  std::uint64_t post_rdma_read(int src, void* local, const void* remote,
                               std::size_t bytes);

  /// Drain one completion; false if the CQ is empty.
  bool poll(Completion& out);

  void set_wakeup(sim::Notifier* n) { wakeup_ = n; }

  int rank() const { return rank_; }

  // -- statistics ------------------------------------------------------
  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t rdma_writes() const { return rdma_writes_; }
  std::uint64_t rdma_reads() const { return rdma_reads_; }
  sim::SimTime tx_busy_time() const { return tx_.total_busy_time(); }
  /// Faults this port's transmit pipeline injected (same accounting side
  /// as Endpoint::fault_counters: the sender decides).
  const FaultCounters& fault_counters() const { return fault_counters_; }

 private:
  friend class IpcChannel;
  void deliver(Completion c);  // push to CQ + wake
  void deliver_remote(IpcPort* dst, std::unique_ptr<WireMessage> msg,
                      sim::SimTime extra_delay = 0);
  // Channel-level half of a delivery receipt (see Fabric::DeliveryReceipt):
  // fired at delivery time, from scheduler context.
  void send_receipt(int receipt_kind, std::size_t echo_header,
                    const WireMessage& m);
  sim::SimTime draw_jitter(const FaultSpec& spec);

  sim::Engine& engine_;
  IpcChannel& channel_;
  int rank_;
  sim::FifoResource tx_;
  std::deque<Completion> cq_;
  sim::Notifier* wakeup_ = nullptr;
  std::uint64_t next_wr_ = kIpcWrBase + 1;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t rdma_writes_ = 0;
  std::uint64_t rdma_reads_ = 0;
  FaultCounters fault_counters_;
};

/// One node's in-node interconnect: a port per co-located rank. Ports are
/// created up front (add_rank) so the address map is fixed before traffic
/// flows. The channel consults the MemoryRegistry to classify each copy's
/// endpoints (host / device) and picks the matching bandwidth.
class IpcChannel {
 public:
  IpcChannel(sim::Engine& engine, const gpu::MemoryRegistry& registry,
             IpcCostModel cost);

  /// Attach rank `rank` to this node's channel.
  IpcPort& add_rank(int rank);
  IpcPort& port(int rank);
  bool has_rank(int rank) const { return ports_.count(rank) != 0; }

  const IpcCostModel& cost() const { return cost_; }
  sim::Engine& engine() { return engine_; }

  /// Live fault model of the channel (benign by default — perfect in-node
  /// delivery). Rules resolve on (src rank, dst rank, kind), mirroring
  /// Fabric::faults().
  FaultModel& faults() { return faults_; }
  const FaultModel& faults() const { return faults_; }

  /// Bandwidth for a copy of `bytes` between `src` and `dst` based on where
  /// the two buffers live: device<->device takes the peer D2D path, one
  /// device end stages over PCIe, and host<->host picks double-buffered shm
  /// vs single-copy CMA by size (shm_cma_threshold).
  double copy_bw(const void* src, const void* dst, std::size_t bytes) const;

  /// Arm a delivery receipt for one message kind (same contract as
  /// Fabric::enable_delivery_receipt): whenever a `kind` message is
  /// delivered, the channel immediately sends `receipt_kind` back to the
  /// origin with header[0] echoing the original's header[echo_header].
  /// Even on a fault-free channel the receipt matters — it tells a sender
  /// whose receiver has not posted the matching recv yet that the
  /// handshake is alive, exactly like the fabric's NIC-level ack. Under a
  /// fault model, receipts roll the same drop/jitter dice as any send.
  void enable_delivery_receipt(int kind, int receipt_kind,
                               std::size_t echo_header) {
    if (kind < 0 || echo_header >= 6 ||
        receipt_for(receipt_kind) != nullptr) {
      throw std::invalid_argument("enable_delivery_receipt: bad config");
    }
    if (receipt_index_.size() <= static_cast<std::size_t>(kind)) {
      receipt_index_.resize(static_cast<std::size_t>(kind) + 1, -1);
    }
    receipt_index_[static_cast<std::size_t>(kind)] =
        static_cast<std::int16_t>(receipts_.size());
    receipts_.push_back(Receipt{kind, receipt_kind, echo_header});
  }

 private:
  friend class IpcPort;
  struct Receipt {
    int kind = 0;
    int receipt_kind = 0;
    std::size_t echo_header = 0;
  };
  // O(1) kind-indexed lookup, mirroring Fabric::receipt_for — it runs on
  // every channel delivery.
  const Receipt* receipt_for(int kind) const {
    if (static_cast<unsigned>(kind) >= receipt_index_.size()) return nullptr;
    const std::int16_t i = receipt_index_[static_cast<std::size_t>(kind)];
    return i >= 0 ? &receipts_[static_cast<std::size_t>(i)] : nullptr;
  }

  sim::Engine& engine_;
  const gpu::MemoryRegistry& registry_;
  IpcCostModel cost_;
  FaultModel faults_;
  std::vector<Receipt> receipts_;
  std::vector<std::int16_t> receipt_index_;  // kind -> receipts_ index, -1
  std::unordered_map<int, std::unique_ptr<IpcPort>> ports_;
};

}  // namespace mv2gnc::netsim
