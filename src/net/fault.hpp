// Fault injection for the netsim transports (fabric and in-node IPC).
//
// A FaultModel attached to a transport (Fabric or IpcChannel) decides, at
// transmit-drain time and using only the engine's seeded RNG (never
// wall-clock), whether each operation is delivered cleanly, delayed, or
// lost:
//   * drop_send   — a two-sided SEND vanishes in the network: the sender
//                   still sees kSendComplete (its NIC drained the WR) but
//                   the message never reaches the destination CQ;
//   * drop_imm    — an RDMA-WRITE's payload lands but its immediate
//                   notification is lost, so the receiver is never told;
//   * fail_write  — an RDMA WRITE fails in transport: no bytes land, no
//                   immediate is sent, and the sender gets a synthetic
//                   CqType::kError completion carrying the wr_id;
//   * jitter_ns   — delivery is delayed by an extra uniform [0, jitter_ns]
//                   on top of the wire latency. NOTE: nonzero jitter can
//                   reorder messages between a node pair, voiding the
//                   transport's FIFO guarantee — only protocols that
//                   tolerate reordering (see docs/RELIABILITY.md) may
//                   enable it.
//
// Specs resolve most-specific-first: per (src,dst,kind) triple, then per
// (src,dst) pair, then per message kind, then the default. Probabilities
// are independent per operation.
#pragma once

#include <cstdint>
#include <map>
#include <utility>

#include "sim/time.hpp"

namespace mv2gnc::netsim {

/// Fault probabilities and delay bound for one (pair | kind | default) rule.
struct FaultSpec {
  double drop_send = 0.0;       // P(two-sided send lost in flight)
  double drop_imm = 0.0;        // P(RDMA immediate lost; data still lands)
  double fail_write = 0.0;      // P(RDMA write errors; no data, kError)
  sim::SimTime jitter_ns = 0;   // extra delivery delay, uniform [0, jitter]

  bool benign() const {
    return drop_send == 0.0 && drop_imm == 0.0 && fail_write == 0.0 &&
           jitter_ns == 0;
  }
};

/// Counts of injected faults, kept per *sending* endpoint (the side whose
/// transmit pipeline made the fault decision).
struct FaultCounters {
  std::uint64_t sends_dropped = 0;
  std::uint64_t imms_dropped = 0;
  std::uint64_t writes_failed = 0;
  std::uint64_t deliveries_jittered = 0;

  std::uint64_t total() const {
    return sends_dropped + imms_dropped + writes_failed + deliveries_jittered;
  }
};

/// Rule table: pair+kind overrides pair overrides kind overrides default.
/// Kind matching uses the two-sided message kind (or the immediate's kind
/// for RDMA writes carrying one); plain RDMA writes match pair/default
/// rules only.
class FaultModel {
 public:
  /// Kind wildcard for operations with no message kind (bare RDMA writes).
  static constexpr int kNoKind = -1;

  void set_default(const FaultSpec& spec) {
    default_ = spec;
    recompute_enabled();
  }
  void set_kind(int kind, const FaultSpec& spec) {
    by_kind_[kind] = spec;
    recompute_enabled();
  }
  void set_pair(int src, int dst, const FaultSpec& spec) {
    by_pair_[{src, dst}] = spec;
    recompute_enabled();
  }
  /// Most-specific tier: one message kind on one directed pair — lets a
  /// sweep target e.g. CTS loss on a single IPC pair without touching any
  /// other traffic.
  void set_pair_kind(int src, int dst, int kind, const FaultSpec& spec) {
    by_pair_kind_[{{src, dst}, kind}] = spec;
    recompute_enabled();
  }

  /// Remove every rule; the transport reverts to perfect delivery.
  void clear() {
    default_ = FaultSpec{};
    by_kind_.clear();
    by_pair_.clear();
    by_pair_kind_.clear();
    enabled_ = false;
    has_rules_ = false;
  }

  /// True when no kind/pair/pair+kind rule is installed, so resolve() is a
  /// single branch returning the default spec. The no-faults configuration
  /// every benchmark baseline runs never touches the three rule maps.
  bool empty() const { return !has_rules_; }

  /// True when any rule can inject a fault — the transport's fast path
  /// skips all RNG draws while this is false, keeping fault-free runs
  /// bit-exact with builds that predate fault injection.
  bool enabled() const { return enabled_; }

  /// Most specific spec for this operation: pair+kind, else pair, else
  /// kind, else default.
  const FaultSpec& resolve(int src, int dst, int kind) const {
    if (!has_rules_) return default_;  // zero map probes on the fast path
    if (!by_pair_kind_.empty()) {
      if (auto it = by_pair_kind_.find({{src, dst}, kind});
          it != by_pair_kind_.end()) {
        return it->second;
      }
    }
    if (auto it = by_pair_.find({src, dst}); it != by_pair_.end()) {
      return it->second;
    }
    if (auto it = by_kind_.find(kind); it != by_kind_.end()) {
      return it->second;
    }
    return default_;
  }

 private:
  void recompute_enabled() {
    enabled_ = !default_.benign();
    for (const auto& [k, s] : by_kind_) enabled_ = enabled_ || !s.benign();
    for (const auto& [p, s] : by_pair_) enabled_ = enabled_ || !s.benign();
    for (const auto& [pk, s] : by_pair_kind_) {
      enabled_ = enabled_ || !s.benign();
    }
    has_rules_ =
        !by_kind_.empty() || !by_pair_.empty() || !by_pair_kind_.empty();
  }

  bool enabled_ = false;
  bool has_rules_ = false;
  FaultSpec default_;
  std::map<int, FaultSpec> by_kind_;
  std::map<std::pair<int, int>, FaultSpec> by_pair_;
  std::map<std::pair<std::pair<int, int>, int>, FaultSpec> by_pair_kind_;
};

}  // namespace mv2gnc::netsim
