// netsim: interconnect topology descriptions.
//
// The default fabric is a full crossbar — every pair of endpoints gets a
// dedicated path and the only serialization point is the sender's transmit
// FIFO (the model the paper's 8-node testbed justifies, and the
// byte-identical baseline every regression md5 is pinned to). The fat-tree
// model adds the thing real clusters pay for at scale: a two-level
// leaf/spine fabric whose inter-switch links are *shared* serialization
// resources, so incast hot-spots and oversubscribed alltoalls slow down
// while nearest-neighbour traffic inside a leaf does not.
//
// Routing is deterministic (dst-indexed uplink choice, the classic D-mod-k
// static route): same inputs => same link crossings => same contention =>
// bit-reproducible runs. See docs/SIMULATION.md, "Switch topology and link
// contention".
#pragma once

#include <cstdint>
#include <stdexcept>

#include "sim/time.hpp"

namespace mv2gnc::netsim {

/// Shape of the inter-node interconnect.
struct FabricTopology {
  enum class Kind {
    kCrossbar,  // dedicated path per pair; no shared links (default)
    kFatTree,   // two-level leaf/spine with shared up/down links
  };

  Kind kind = Kind::kCrossbar;

  /// Fat tree: endpoints attached to each edge ("leaf") switch. Traffic
  /// between two endpoints on the same leaf never touches a shared link.
  int leaf_ports = 8;

  /// Fat tree: down-bandwidth : up-bandwidth ratio at each edge switch.
  /// 1.0 is fully provisioned (one uplink per port); 2.0 is the classic
  /// cost-reduced 2:1 fabric with half the uplinks.
  double oversubscription = 1.0;

  /// Uplinks per leaf switch implied by the oversubscription ratio
  /// (rounded, floored at 1). Each uplink u leads to spine switch u.
  int uplinks() const {
    const double ratio = oversubscription > 0.0 ? oversubscription : 1.0;
    const int u =
        static_cast<int>(static_cast<double>(leaf_ports) / ratio + 0.5);
    return u < 1 ? 1 : u;
  }

  void validate() const {
    if (kind == Kind::kCrossbar) return;
    if (leaf_ports < 1) {
      throw std::invalid_argument("FabricTopology: leaf_ports must be >= 1");
    }
    if (oversubscription <= 0.0) {
      throw std::invalid_argument(
          "FabricTopology: oversubscription must be > 0");
    }
  }

  static FabricTopology crossbar() { return {}; }
  static FabricTopology fat_tree(int leaf_ports, double oversubscription = 1.0) {
    FabricTopology t;
    t.kind = Kind::kFatTree;
    t.leaf_ports = leaf_ports;
    t.oversubscription = oversubscription;
    return t;
  }
};

/// Counters of one inter-switch link (an edge switch's up- or down-link to
/// one spine), snapshot via Fabric::link_stats(). A link is a shared
/// serialization resource: `busy_total` is serialization time consumed,
/// `wait_total` / `peak_backlog` measure queuing behind earlier messages
/// (the contention the crossbar cannot express), and `contended_ops`
/// counts crossings that had to wait at all.
struct LinkStats {
  int leaf = 0;        // edge switch index (endpoint / leaf_ports)
  int index = 0;       // uplink index == spine switch index
  bool up = true;      // true: leaf -> spine; false: spine -> leaf
  std::uint64_t ops = 0;
  std::uint64_t contended_ops = 0;
  std::uint64_t bytes = 0;
  sim::SimTime busy_total = 0;
  sim::SimTime wait_total = 0;
  sim::SimTime peak_backlog = 0;
};

}  // namespace mv2gnc::netsim
