// netsim: interconnect topology descriptions.
//
// The default fabric is a full crossbar — every pair of endpoints gets a
// dedicated path and the only serialization point is the sender's transmit
// FIFO (the model the paper's 8-node testbed justifies, and the
// byte-identical baseline every regression md5 is pinned to). The fat-tree
// model adds the thing real clusters pay for at scale: a two-level
// leaf/spine fabric whose inter-switch links are *shared* serialization
// resources, so incast hot-spots and oversubscribed alltoalls slow down
// while nearest-neighbour traffic inside a leaf does not. The dragonfly
// model keeps the same shared-link primitive but wires it as groups joined
// by direct point-to-point global links (fully connected group graph), the
// geometry where adaptive (UGAL-style) routing decisions matter most.
//
// Routing is selectable per fabric (RouteSelect) and always deterministic:
//   * kDmodK    — dst-indexed static choice (the classic D-mod-k route; on
//                 a dragonfly this is the minimal/direct route). Same
//                 inputs => same link crossings => bit-reproducible runs,
//                 and the byte-identical default.
//   * kHash     — a seedless mix of (src, dst, flow) spreads flows across
//                 the parallel paths, breaking D-mod-k's dst-index
//                 pathologies (incast funneling) the way ECMP hashing does
//                 on real fabrics. Still a pure function of its inputs.
//   * kAdaptive — least-backlogged path at injection time, tie-broken by
//                 index order, so equal-backlog runs stay exactly
//                 reproducible. Reads only link state the simulation
//                 already determines — no RNG anywhere in routing.
// See docs/SIMULATION.md, "Switch topology, routing and link contention".
#pragma once

#include <cstdint>
#include <stdexcept>

#include "sim/time.hpp"

namespace mv2gnc::netsim {

/// How a message picks among the parallel shared links of its route.
/// Ignored by the crossbar (which has no shared links, hence no choice):
/// selecting adaptive routing there is a no-op, not an error.
enum class RouteSelect {
  kDmodK,     // static dst-indexed choice (default; byte-identical baseline)
  kHash,      // deterministic (src, dst, flow) hash across parallel paths
  kAdaptive,  // least-backlogged path now, index order breaks ties
};

/// Shape of the inter-node interconnect.
struct FabricTopology {
  enum class Kind {
    kCrossbar,   // dedicated path per pair; no shared links (default)
    kFatTree,    // two-level leaf/spine with shared up/down links
    kDragonfly,  // groups with direct all-to-all global links
  };

  Kind kind = Kind::kCrossbar;

  /// Fat tree: endpoints attached to each edge ("leaf") switch.
  /// Dragonfly: endpoints per group. Traffic between two endpoints on the
  /// same leaf/group never touches a shared link.
  int leaf_ports = 8;

  /// Fat tree: down-bandwidth : up-bandwidth ratio at each edge switch.
  /// 1.0 is fully provisioned (one uplink per port); 2.0 is the classic
  /// cost-reduced 2:1 fabric with half the uplinks.
  double oversubscription = 1.0;

  /// Link-selection policy (see RouteSelect). On the fat tree it picks the
  /// uplink (== spine); on the dragonfly it decides minimal vs Valiant
  /// (kHash) vs UGAL-style (kAdaptive) global routes.
  RouteSelect route = RouteSelect::kDmodK;

  /// Uplinks per leaf switch implied by the oversubscription ratio
  /// (rounded, floored at 1). Each uplink u leads to spine switch u.
  int uplinks() const {
    const double ratio = oversubscription > 0.0 ? oversubscription : 1.0;
    const int u =
        static_cast<int>(static_cast<double>(leaf_ports) / ratio + 0.5);
    return u < 1 ? 1 : u;
  }

  void validate() const {
    if (kind == Kind::kCrossbar) return;
    if (leaf_ports < 1) {
      throw std::invalid_argument("FabricTopology: leaf_ports must be >= 1");
    }
    if (oversubscription <= 0.0) {
      throw std::invalid_argument(
          "FabricTopology: oversubscription must be > 0");
    }
  }

  static FabricTopology crossbar() { return {}; }
  static FabricTopology fat_tree(int leaf_ports, double oversubscription = 1.0) {
    FabricTopology t;
    t.kind = Kind::kFatTree;
    t.leaf_ports = leaf_ports;
    t.oversubscription = oversubscription;
    return t;
  }
  /// Dragonfly: `group_size` endpoints per group, every ordered group pair
  /// joined by one direct global link (the canonical fully connected
  /// inter-group graph). Oversubscription does not apply — the global
  /// links ARE the scarce resource; routing policy decides how traffic
  /// spreads over them.
  static FabricTopology dragonfly(int group_size) {
    FabricTopology t;
    t.kind = Kind::kDragonfly;
    t.leaf_ports = group_size;
    return t;
  }
};

/// Counters of one shared inter-switch link, snapshot via
/// Fabric::link_stats(). Fat tree: an edge switch's up- or down-link to
/// one spine (`leaf` = edge switch, `index` = uplink == spine, `up` =
/// direction). Dragonfly: the direct global link from group `leaf` to
/// group `index` (`up` always true — global links are unidirectional
/// resources per ordered pair). A link is a shared serialization resource:
/// `busy_total` is serialization time consumed, `wait_total` /
/// `peak_backlog` measure queuing behind earlier messages (the contention
/// the crossbar cannot express), `contended_ops` counts crossings that had
/// to wait at all, and `ecn_marks` counts crossings whose queuing exceeded
/// the fabric's ECN threshold and therefore marked their message
/// (docs/CONCURRENCY.md, "ECN-style congestion feedback").
struct LinkStats {
  int leaf = 0;        // fat tree: edge switch; dragonfly: source group
  int index = 0;       // fat tree: uplink/spine; dragonfly: destination group
  bool up = true;      // fat tree: leaf -> spine direction; dragonfly: true
  std::uint64_t ops = 0;
  std::uint64_t contended_ops = 0;
  std::uint64_t bytes = 0;
  std::uint64_t ecn_marks = 0;
  sim::SimTime busy_total = 0;
  sim::SimTime wait_total = 0;
  sim::SimTime peak_backlog = 0;
};

}  // namespace mv2gnc::netsim
