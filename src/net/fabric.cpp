#include "net/fabric.hpp"

#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

namespace mv2gnc::netsim {

Endpoint::Endpoint(sim::Engine& engine, Fabric& fabric, int node)
    : engine_(engine),
      fabric_(fabric),
      node_(node),
      tx_(engine, "nic" + std::to_string(node) + ".tx") {}

void Endpoint::deliver(Completion c) {
  cq_.push_back(std::move(c));
  if (wakeup_ != nullptr) wakeup_->notify();
}

sim::SimTime Endpoint::draw_jitter(const FaultSpec& spec) {
  if (spec.jitter_ns <= 0) return 0;
  const sim::SimTime j = static_cast<sim::SimTime>(
      engine_.rand_below(static_cast<std::uint64_t>(spec.jitter_ns) + 1));
  if (j > 0) ++fault_counters_.deliveries_jittered;
  return j;
}

void Endpoint::deliver_remote(Endpoint* dst_ep,
                              std::unique_ptr<WireMessage> msg,
                              sim::SimTime extra_delay) {
  // The message is owned by the event itself (move-captured): one
  // allocation carries it from post to delivery, with none of the
  // control-block churn a shared_ptr chain would add per chunk.
  engine_.schedule_after(fabric_.cost().latency_ns + extra_delay,
                         [dst_ep, msg = std::move(msg)]() mutable {
                           const DeliveryReceipt* r =
                               dst_ep->fabric_.receipt_for(msg->kind);
                           if (r != nullptr) dst_ep->send_receipt(*r, *msg);
                           dst_ep->deliver(
                               Completion{CqType::kRecv, 0, std::move(*msg)});
                         });
}

void Endpoint::send_receipt(const DeliveryReceipt& r,
                            const WireMessage& m) {
  const int dst = m.src_node;
  if (dst < 0 || dst >= fabric_.nodes()) return;
  WireMessage ack;
  ack.src_node = node_;
  ack.kind = r.receipt_kind;
  ack.header[0] = m.header[r.echo_header];
  const NetCostModel& c = fabric_.cost();
  Endpoint* dst_ep = &fabric_.endpoint(dst);
  auto owned = std::make_unique<WireMessage>(std::move(ack));
  ++messages_sent_;
  // The HCA generates the receipt itself: no process posts a WR, so there
  // is no post overhead and no kSendComplete — only transmit occupancy,
  // plus the usual fault rolls on the (this -> dst, receipt_kind) edge. A
  // receipt kind has no receipt of its own, so this cannot recurse.
  tx_.submit(c.per_msg_overhead_ns + c.wire_time(64),
             [this, dst, dst_ep, msg = std::move(owned)]() mutable {
               sim::SimTime extra = 0;
               if (fabric_.faults().enabled()) {
                 const FaultSpec& spec =
                     fabric_.faults().resolve(node_, dst, msg->kind);
                 if (spec.drop_send > 0.0 &&
                     engine_.rand_uniform() < spec.drop_send) {
                   ++fault_counters_.sends_dropped;
                   return;
                 }
                 extra = draw_jitter(spec);
               }
               extra += fabric_.traverse(node_, dst, 64, msg->flow);
               deliver_remote(dst_ep, std::move(msg), extra);
             });
}

bool Endpoint::poll(Completion& out) {
  if (cq_.empty()) return false;
  out = std::move(cq_.front());
  cq_.pop_front();
  return true;
}

std::uint64_t Endpoint::post_send(int dst, WireMessage msg) {
  if (dst < 0 || dst >= fabric_.nodes()) {
    throw std::out_of_range("post_send: bad destination node " +
                            std::to_string(dst));
  }
  const NetCostModel& c = fabric_.cost();
  engine_.delay(c.post_overhead_ns);  // CPU cost of posting the WR
  const std::uint64_t wr = next_wr_++;
  msg.src_node = node_;
  ++messages_sent_;
  bytes_sent_ += msg.payload.size();
  const sim::SimTime duration =
      c.per_msg_overhead_ns + c.wire_time(msg.payload.size() + 64);
  Endpoint* dst_ep = &fabric_.endpoint(dst);
  auto owned_msg = std::make_unique<WireMessage>(std::move(msg));
  tx_.submit(duration, [this, wr, dst, dst_ep,
                        m = std::move(owned_msg)]() mutable {
    // The sender's NIC drained the WR either way; whether the network then
    // loses the message is decided here, at drain time, so the fault
    // sequence depends only on the deterministic event order.
    deliver(Completion{CqType::kSendComplete, wr, {}});
    sim::SimTime extra = 0;
    if (fabric_.faults().enabled()) {
      const FaultSpec& spec = fabric_.faults().resolve(node_, dst, m->kind);
      if (spec.drop_send > 0.0 && engine_.rand_uniform() < spec.drop_send) {
        ++fault_counters_.sends_dropped;
        return;
      }
      extra = draw_jitter(spec);
    }
    // Dropped messages never reach the switch fabric's shared links; a
    // delivered one queues behind whatever else its route is carrying —
    // and may pick up a congestion mark doing so.
    extra += fabric_.traverse(node_, dst, m->payload.size() + 64, m->flow,
                              &m->ecn);
    deliver_remote(dst_ep, std::move(m), extra);
  });
  return wr;
}

std::uint64_t Endpoint::post_rdma_write(int dst, const void* local,
                                        void* remote, std::size_t bytes,
                                        std::optional<WireMessage> imm) {
  if (dst < 0 || dst >= fabric_.nodes()) {
    throw std::out_of_range("post_rdma_write: bad destination node " +
                            std::to_string(dst));
  }
  if ((local == nullptr || remote == nullptr) && bytes > 0) {
    throw std::invalid_argument("post_rdma_write: null buffer");
  }
  const NetCostModel& c = fabric_.cost();
  engine_.delay(c.post_overhead_ns);
  const std::uint64_t wr = next_wr_++;
  ++rdma_writes_;
  bytes_sent_ += bytes;
  const sim::SimTime duration = c.per_msg_overhead_ns + c.wire_time(bytes);
  Endpoint* dst_ep = &fabric_.endpoint(dst);
  std::unique_ptr<WireMessage> owned_imm;
  if (imm) {
    imm->src_node = node_;
    owned_imm = std::make_unique<WireMessage>(std::move(*imm));
  }
  tx_.submit(duration, [this, wr, dst, dst_ep, local, remote, bytes,
                        imm_msg = std::move(owned_imm)]() mutable {
    const FaultSpec* spec = nullptr;
    if (fabric_.faults().enabled()) {
      const int kind = imm_msg ? imm_msg->kind : FaultModel::kNoKind;
      spec = &fabric_.faults().resolve(node_, dst, kind);
      if (spec->fail_write > 0.0 &&
          engine_.rand_uniform() < spec->fail_write) {
        // Transport error: nothing lands remotely, no immediate goes out,
        // and the poster learns via a synthetic error completion.
        ++fault_counters_.writes_failed;
        deliver(Completion{CqType::kError, wr, {}});
        return;
      }
    }
    // Data lands when the transmit drains; the remote notification follows
    // one wire latency later, so the receiver never observes the
    // notification before the payload (the RDMA ordering guarantee).
    if (bytes > 0) std::memcpy(remote, local, bytes);
    deliver(Completion{CqType::kRdmaComplete, wr, {}});
    // The written payload crosses the switch fabric whether or not an
    // immediate follows; its queuing delay pushes the notification back,
    // so a receiver never learns of data the shared links have not
    // carried yet.
    const sim::SimTime link_delay = fabric_.traverse(
        node_, dst, bytes + 64, imm_msg ? imm_msg->flow : 0,
        imm_msg ? &imm_msg->ecn : nullptr);
    if (imm_msg) {
      sim::SimTime extra = link_delay;
      if (spec != nullptr) {
        if (spec->drop_imm > 0.0 &&
            engine_.rand_uniform() < spec->drop_imm) {
          ++fault_counters_.imms_dropped;
          return;
        }
        extra += draw_jitter(*spec);
      }
      deliver_remote(dst_ep, std::move(imm_msg), extra);
    }
  });
  return wr;
}

std::uint64_t Endpoint::post_rdma_read(int src, void* local,
                                       const void* remote,
                                       std::size_t bytes) {
  if (src < 0 || src >= fabric_.nodes()) {
    throw std::out_of_range("post_rdma_read: bad source node " +
                            std::to_string(src));
  }
  if ((local == nullptr || remote == nullptr) && bytes > 0) {
    throw std::invalid_argument("post_rdma_read: null buffer");
  }
  const NetCostModel& c = fabric_.cost();
  engine_.delay(c.post_overhead_ns);
  const std::uint64_t wr = next_wr_++;
  ++rdma_reads_;
  Endpoint* target = &fabric_.endpoint(src);
  // The read request crosses the wire, then the response data serializes
  // on the target's transmit pipeline, then crosses back; the data lands
  // locally exactly when the completion is delivered.
  engine_.schedule_after(c.latency_ns, [this, target, local, remote, bytes,
                                        wr, &c] {
    target->tx_.submit(
        c.per_msg_overhead_ns + c.wire_time(bytes),
        [this, target, local, remote, bytes, wr, &c] {
          // The response data crosses the switch fabric target -> reader.
          const sim::SimTime link_delay =
              fabric_.traverse(target->node_, node_, bytes + 64);
          engine_.schedule_after(c.latency_ns + link_delay,
                                 [this, local, remote, bytes, wr] {
            if (bytes > 0) std::memcpy(local, remote, bytes);
            deliver(Completion{CqType::kRdmaReadComplete, wr, {}});
          });
        });
  });
  return wr;
}

Fabric::Fabric(sim::Engine& engine, int nodes, NetCostModel cost,
               FabricTopology topology)
    : engine_(engine), cost_(cost), topology_(topology) {
  if (nodes <= 0) throw std::invalid_argument("Fabric: nodes must be > 0");
  topology_.validate();
  if (topology_.kind == FabricTopology::Kind::kFatTree) {
    uplinks_per_leaf_ = topology_.uplinks();
    const int leaves =
        (nodes + topology_.leaf_ports - 1) / topology_.leaf_ports;
    const std::size_t n_links =
        static_cast<std::size_t>(leaves) *
        static_cast<std::size_t>(uplinks_per_leaf_);
    up_.resize(n_links);
    down_.resize(n_links);
  } else if (topology_.kind == FabricTopology::Kind::kDragonfly) {
    groups_ = (nodes + topology_.leaf_ports - 1) / topology_.leaf_ports;
    global_.resize(static_cast<std::size_t>(groups_) *
                   static_cast<std::size_t>(groups_));
  }
  endpoints_.reserve(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    endpoints_.push_back(std::make_unique<Endpoint>(engine, *this, n));
  }
}

namespace {

// Seedless splitmix-style mixer for hashed (ECMP-like) routing: a pure
// function of (src, dst, flow), so the same transfer always takes the same
// path and runs stay bit-reproducible with no RNG draw.
std::uint64_t mix_route(std::uint64_t src, std::uint64_t dst,
                        std::uint64_t flow) {
  std::uint64_t x = src * 0x9E3779B97F4A7C15ull + dst;
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x += flow;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

}  // namespace

sim::SimTime Fabric::cross_link(Link& l, sim::SimTime arrival,
                                sim::SimTime wire, std::size_t bytes,
                                bool* ecn_mark) {
  const sim::SimTime start = arrival > l.busy_until ? arrival : l.busy_until;
  const sim::SimTime backlog = start - arrival;
  l.busy_until = start + wire;
  l.busy_total += wire;
  l.bytes += bytes;
  ++l.ops;
  if (backlog > 0) {
    ++l.contended_ops;
    l.wait_total += backlog;
    if (backlog > l.peak_backlog) l.peak_backlog = backlog;
    if (ecn_ns_ > 0 && backlog > ecn_ns_) {
      // Congestion experienced: this crossing queued behind more than the
      // armed threshold. The mark travels with the message; the protocol
      // layer echoes it back so the sender can back off (CONCURRENCY.md).
      ++l.ecn_marks;
      if (ecn_mark != nullptr) *ecn_mark = true;
    }
  }
  return start;
}

int Fabric::pick_uplink(int src, int src_leaf, int dst, int dst_leaf,
                        std::uint64_t flow, sim::SimTime now) const {
  switch (topology_.route) {
    case RouteSelect::kDmodK:
      // D-mod-k static routing: the uplink (== spine) is picked from the
      // destination alone, so every packet for one dst funnels through the
      // same spine — deterministic, and it produces the incast hot-spot a
      // hashed ECMP fabric shows on average.
      return dst % uplinks_per_leaf_;
    case RouteSelect::kHash:
      // Hash the actual source node, not its leaf: same-leaf senders with
      // equal flow labels must still be able to spread over the uplinks.
      return static_cast<int>(mix_route(static_cast<std::uint64_t>(src),
                                        static_cast<std::uint64_t>(dst),
                                        flow) %
                              static_cast<std::uint64_t>(uplinks_per_leaf_));
    case RouteSelect::kAdaptive: {
      // Least-backlogged path at injection time, counting both the shared
      // links the message will cross (the down-link into the destination
      // leaf is where incast piles up; the up-link is where an
      // oversubscribed alltoall does). Strict index order breaks ties, so
      // an idle fabric routes exactly like spine 0 every time.
      int best = 0;
      sim::SimTime best_backlog = 0;
      for (int u = 0; u < uplinks_per_leaf_; ++u) {
        const sim::SimTime b =
            backlog_of(up_[static_cast<std::size_t>(
                           src_leaf * uplinks_per_leaf_ + u)],
                       now) +
            backlog_of(down_[static_cast<std::size_t>(
                             dst_leaf * uplinks_per_leaf_ + u)],
                       now);
        if (u == 0 || b < best_backlog) {
          best = u;
          best_backlog = b;
        }
      }
      return best;
    }
  }
  return dst % uplinks_per_leaf_;
}

sim::SimTime Fabric::traverse_fat_tree(int src, int dst, std::size_t bytes,
                                       std::uint64_t flow, bool* ecn_mark) {
  const int src_leaf = src / topology_.leaf_ports;
  const int dst_leaf = dst / topology_.leaf_ports;
  if (src_leaf == dst_leaf) return 0;  // same edge switch, dedicated path
  const sim::SimTime now = engine_.now();
  const int u = pick_uplink(src, src_leaf, dst, dst_leaf, flow, now);
  const sim::SimTime wire = cost_.wire_time(bytes);
  // Cut-through accounting: serialization on the switch links overlaps the
  // sender's own transmit serialization, so an idle path adds zero delay
  // (single-flow fat tree == crossbar, which keeps the calibrated
  // baselines meaningful). Only queuing behind *other* flows on a shared
  // link delays delivery.
  sim::SimTime t = now;
  t = cross_link(
      up_[static_cast<std::size_t>(src_leaf * uplinks_per_leaf_ + u)], t,
      wire, bytes, ecn_mark);
  t = cross_link(
      down_[static_cast<std::size_t>(dst_leaf * uplinks_per_leaf_ + u)], t,
      wire, bytes, ecn_mark);
  return t - now;
}

sim::SimTime Fabric::traverse_dragonfly(int src, int dst, std::size_t bytes,
                                        std::uint64_t flow, bool* ecn_mark) {
  const int gs = src / topology_.leaf_ports;
  const int gd = dst / topology_.leaf_ports;
  if (gs == gd) return 0;  // same group: router-local, dedicated path
  const sim::SimTime now = engine_.now();
  const sim::SimTime wire = cost_.wire_time(bytes);
  // Pick the global route. Minimal is the single direct link gs -> gd (the
  // D-mod-k analogue: no choice, fully static). Valiant-style (kHash)
  // bounces through a deterministic hash-chosen intermediate group, and
  // UGAL-style (kAdaptive) takes the direct link unless some two-hop
  // detour currently has strictly less total backlog.
  int via = gd;  // direct
  switch (topology_.route) {
    case RouteSelect::kDmodK:
      break;
    case RouteSelect::kHash: {
      const int h = static_cast<int>(
          mix_route(static_cast<std::uint64_t>(src),
                    static_cast<std::uint64_t>(dst), flow) %
          static_cast<std::uint64_t>(groups_));
      if (h != gs) via = h;  // h == gd degenerates to the direct route
      break;
    }
    case RouteSelect::kAdaptive: {
      sim::SimTime best = backlog_of(global_link(gs, gd), now);
      for (int h = 0; best > 0 && h < groups_; ++h) {
        if (h == gs || h == gd) continue;
        const sim::SimTime b = backlog_of(global_link(gs, h), now) +
                               backlog_of(global_link(h, gd), now);
        // Strictly less: at equal backlog the shorter (direct) route or
        // the lower intermediate index wins, keeping ties deterministic.
        if (b < best) {
          best = b;
          via = h;
        }
      }
      break;
    }
  }
  sim::SimTime t = now;
  t = cross_link(global_link(gs, via), t, wire, bytes, ecn_mark);
  if (via != gd) t = cross_link(global_link(via, gd), t, wire, bytes, ecn_mark);
  return t - now;
}

sim::SimTime Fabric::traverse(int src, int dst, std::size_t bytes,
                              std::uint64_t flow, bool* ecn_mark) {
  if (!up_.empty()) return traverse_fat_tree(src, dst, bytes, flow, ecn_mark);
  if (!global_.empty()) {
    return traverse_dragonfly(src, dst, bytes, flow, ecn_mark);
  }
  return 0;  // crossbar: no shared links
}

std::vector<LinkStats> Fabric::link_stats() const {
  std::vector<LinkStats> out;
  const auto fill = [](LinkStats& s, const Link& l) {
    s.ops = l.ops;
    s.contended_ops = l.contended_ops;
    s.bytes = l.bytes;
    s.ecn_marks = l.ecn_marks;
    s.busy_total = l.busy_total;
    s.wait_total = l.wait_total;
    s.peak_backlog = l.peak_backlog;
  };
  if (topology_.kind == FabricTopology::Kind::kDragonfly) {
    out.reserve(global_.size());
    for (std::size_t i = 0; i < global_.size(); ++i) {
      LinkStats s;
      s.leaf = static_cast<int>(i) / groups_;   // source group
      s.index = static_cast<int>(i) % groups_;  // destination group
      s.up = true;
      fill(s, global_[i]);
      out.push_back(s);
    }
    return out;
  }
  out.reserve(up_.size() + down_.size());
  const auto snap = [&](const std::vector<Link>& links, bool is_up) {
    for (std::size_t i = 0; i < links.size(); ++i) {
      LinkStats s;
      s.leaf = static_cast<int>(i) / uplinks_per_leaf_;
      s.index = static_cast<int>(i) % uplinks_per_leaf_;
      s.up = is_up;
      fill(s, links[i]);
      out.push_back(s);
    }
  };
  snap(up_, true);
  snap(down_, false);
  return out;
}

Endpoint& Fabric::endpoint(int node) {
  return *endpoints_.at(static_cast<std::size_t>(node));
}

}  // namespace mv2gnc::netsim
