#include "net/fabric.hpp"

#include <cstring>
#include <stdexcept>
#include <string>
#include <utility>

namespace mv2gnc::netsim {

Endpoint::Endpoint(sim::Engine& engine, Fabric& fabric, int node)
    : engine_(engine),
      fabric_(fabric),
      node_(node),
      tx_(engine, "nic" + std::to_string(node) + ".tx") {}

void Endpoint::deliver(Completion c) {
  cq_.push_back(std::move(c));
  if (wakeup_ != nullptr) wakeup_->notify();
}

sim::SimTime Endpoint::draw_jitter(const FaultSpec& spec) {
  if (spec.jitter_ns <= 0) return 0;
  const sim::SimTime j = static_cast<sim::SimTime>(
      engine_.rand_below(static_cast<std::uint64_t>(spec.jitter_ns) + 1));
  if (j > 0) ++fault_counters_.deliveries_jittered;
  return j;
}

void Endpoint::deliver_remote(Endpoint* dst_ep,
                              std::shared_ptr<WireMessage> msg,
                              sim::SimTime extra_delay) {
  engine_.schedule_after(fabric_.cost().latency_ns + extra_delay,
                         [dst_ep, msg] {
                           const DeliveryReceipt* r =
                               dst_ep->fabric_.receipt_for(msg->kind);
                           if (r != nullptr) dst_ep->send_receipt(*r, *msg);
                           dst_ep->deliver(
                               Completion{CqType::kRecv, 0, std::move(*msg)});
                         });
}

void Endpoint::send_receipt(const DeliveryReceipt& r,
                            const WireMessage& m) {
  const int dst = m.src_node;
  if (dst < 0 || dst >= fabric_.nodes()) return;
  WireMessage ack;
  ack.src_node = node_;
  ack.kind = r.receipt_kind;
  ack.header[0] = m.header[r.echo_header];
  const NetCostModel& c = fabric_.cost();
  Endpoint* dst_ep = &fabric_.endpoint(dst);
  auto shared = std::make_shared<WireMessage>(std::move(ack));
  ++messages_sent_;
  // The HCA generates the receipt itself: no process posts a WR, so there
  // is no post overhead and no kSendComplete — only transmit occupancy,
  // plus the usual fault rolls on the (this -> dst, receipt_kind) edge. A
  // receipt kind has no receipt of its own, so this cannot recurse.
  tx_.submit(c.per_msg_overhead_ns + c.wire_time(64),
             [this, dst, dst_ep, shared] {
               sim::SimTime extra = 0;
               if (fabric_.faults().enabled()) {
                 const FaultSpec& spec =
                     fabric_.faults().resolve(node_, dst, shared->kind);
                 if (spec.drop_send > 0.0 &&
                     engine_.rand_uniform() < spec.drop_send) {
                   ++fault_counters_.sends_dropped;
                   return;
                 }
                 extra = draw_jitter(spec);
               }
               deliver_remote(dst_ep, shared, extra);
             });
}

bool Endpoint::poll(Completion& out) {
  if (cq_.empty()) return false;
  out = std::move(cq_.front());
  cq_.pop_front();
  return true;
}

std::uint64_t Endpoint::post_send(int dst, WireMessage msg) {
  if (dst < 0 || dst >= fabric_.nodes()) {
    throw std::out_of_range("post_send: bad destination node " +
                            std::to_string(dst));
  }
  const NetCostModel& c = fabric_.cost();
  engine_.delay(c.post_overhead_ns);  // CPU cost of posting the WR
  const std::uint64_t wr = next_wr_++;
  msg.src_node = node_;
  ++messages_sent_;
  bytes_sent_ += msg.payload.size();
  const sim::SimTime duration =
      c.per_msg_overhead_ns + c.wire_time(msg.payload.size() + 64);
  Endpoint* dst_ep = &fabric_.endpoint(dst);
  auto shared_msg = std::make_shared<WireMessage>(std::move(msg));
  tx_.submit(duration, [this, wr, dst, dst_ep, shared_msg] {
    // The sender's NIC drained the WR either way; whether the network then
    // loses the message is decided here, at drain time, so the fault
    // sequence depends only on the deterministic event order.
    deliver(Completion{CqType::kSendComplete, wr, {}});
    sim::SimTime extra = 0;
    if (fabric_.faults().enabled()) {
      const FaultSpec& spec =
          fabric_.faults().resolve(node_, dst, shared_msg->kind);
      if (spec.drop_send > 0.0 && engine_.rand_uniform() < spec.drop_send) {
        ++fault_counters_.sends_dropped;
        return;
      }
      extra = draw_jitter(spec);
    }
    deliver_remote(dst_ep, shared_msg, extra);
  });
  return wr;
}

std::uint64_t Endpoint::post_rdma_write(int dst, const void* local,
                                        void* remote, std::size_t bytes,
                                        std::optional<WireMessage> imm) {
  if (dst < 0 || dst >= fabric_.nodes()) {
    throw std::out_of_range("post_rdma_write: bad destination node " +
                            std::to_string(dst));
  }
  if ((local == nullptr || remote == nullptr) && bytes > 0) {
    throw std::invalid_argument("post_rdma_write: null buffer");
  }
  const NetCostModel& c = fabric_.cost();
  engine_.delay(c.post_overhead_ns);
  const std::uint64_t wr = next_wr_++;
  ++rdma_writes_;
  bytes_sent_ += bytes;
  const sim::SimTime duration = c.per_msg_overhead_ns + c.wire_time(bytes);
  Endpoint* dst_ep = &fabric_.endpoint(dst);
  std::shared_ptr<WireMessage> shared_imm;
  if (imm) {
    imm->src_node = node_;
    shared_imm = std::make_shared<WireMessage>(std::move(*imm));
  }
  tx_.submit(duration, [this, wr, dst, dst_ep, local, remote, bytes,
                        shared_imm] {
    const FaultSpec* spec = nullptr;
    if (fabric_.faults().enabled()) {
      const int kind =
          shared_imm ? shared_imm->kind : FaultModel::kNoKind;
      spec = &fabric_.faults().resolve(node_, dst, kind);
      if (spec->fail_write > 0.0 &&
          engine_.rand_uniform() < spec->fail_write) {
        // Transport error: nothing lands remotely, no immediate goes out,
        // and the poster learns via a synthetic error completion.
        ++fault_counters_.writes_failed;
        deliver(Completion{CqType::kError, wr, {}});
        return;
      }
    }
    // Data lands when the transmit drains; the remote notification follows
    // one wire latency later, so the receiver never observes the
    // notification before the payload (the RDMA ordering guarantee).
    if (bytes > 0) std::memcpy(remote, local, bytes);
    deliver(Completion{CqType::kRdmaComplete, wr, {}});
    if (shared_imm) {
      sim::SimTime extra = 0;
      if (spec != nullptr) {
        if (spec->drop_imm > 0.0 &&
            engine_.rand_uniform() < spec->drop_imm) {
          ++fault_counters_.imms_dropped;
          return;
        }
        extra = draw_jitter(*spec);
      }
      deliver_remote(dst_ep, shared_imm, extra);
    }
  });
  return wr;
}

std::uint64_t Endpoint::post_rdma_read(int src, void* local,
                                       const void* remote,
                                       std::size_t bytes) {
  if (src < 0 || src >= fabric_.nodes()) {
    throw std::out_of_range("post_rdma_read: bad source node " +
                            std::to_string(src));
  }
  if ((local == nullptr || remote == nullptr) && bytes > 0) {
    throw std::invalid_argument("post_rdma_read: null buffer");
  }
  const NetCostModel& c = fabric_.cost();
  engine_.delay(c.post_overhead_ns);
  const std::uint64_t wr = next_wr_++;
  ++rdma_reads_;
  Endpoint* target = &fabric_.endpoint(src);
  // The read request crosses the wire, then the response data serializes
  // on the target's transmit pipeline, then crosses back; the data lands
  // locally exactly when the completion is delivered.
  engine_.schedule_after(c.latency_ns, [this, target, local, remote, bytes,
                                        wr, &c] {
    target->tx_.submit(
        c.per_msg_overhead_ns + c.wire_time(bytes),
        [this, local, remote, bytes, wr, &c] {
          engine_.schedule_after(c.latency_ns, [this, local, remote, bytes,
                                                wr] {
            if (bytes > 0) std::memcpy(local, remote, bytes);
            deliver(Completion{CqType::kRdmaReadComplete, wr, {}});
          });
        });
  });
  return wr;
}

Fabric::Fabric(sim::Engine& engine, int nodes, NetCostModel cost)
    : engine_(engine), cost_(cost) {
  if (nodes <= 0) throw std::invalid_argument("Fabric: nodes must be > 0");
  endpoints_.reserve(static_cast<std::size_t>(nodes));
  for (int n = 0; n < nodes; ++n) {
    endpoints_.push_back(std::make_unique<Endpoint>(engine, *this, n));
  }
}

Endpoint& Fabric::endpoint(int node) {
  return *endpoints_.at(static_cast<std::size_t>(node));
}

}  // namespace mv2gnc::netsim
