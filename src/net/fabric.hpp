// netsim: a verbs-shaped RDMA fabric model.
//
// Each node owns an Endpoint with a transmit pipeline (FIFO resource) and a
// completion queue. Two operations exist, mirroring what MVAPICH2's channel
// uses on InfiniBand:
//   * post_send    — two-sided SEND of a small control/eager message,
//                    matched by the remote side reading its CQ;
//   * post_rdma_write — one-sided WRITE into remote memory, optionally
//                    carrying an immediate control message (the paper's
//                    "RDMA write finish" notification).
//
// Because all simulated nodes live in one OS process, remote memory is
// directly addressable: the write lands as a real memcpy at the moment the
// transmit drains, and the remote notification arrives one wire latency
// later — so a receiver that reads the buffer after seeing the notification
// always sees the payload bytes, exactly like real RDMA.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "net/fault.hpp"
#include "net/topology.hpp"
#include "net/wire.hpp"
#include "sim/engine.hpp"
#include "sim/resource.hpp"

namespace mv2gnc::netsim {

/// Link/NIC timing constants. Defaults model Mellanox QDR ConnectX-2
/// (MT26428), the paper's HCA.
struct NetCostModel {
  double bw = 3.2;                         // effective GB/s (QDR 4x)
  sim::SimTime latency_ns = 1'500;         // end-to-end wire + switch
  sim::SimTime per_msg_overhead_ns = 600;  // NIC descriptor processing
  sim::SimTime post_overhead_ns = 200;     // CPU cost of posting a WR

  /// Serialization time of `bytes` on the link.
  sim::SimTime wire_time(std::size_t bytes) const {
    return static_cast<sim::SimTime>(static_cast<double>(bytes) / bw);
  }

  /// The paper's testbed fabric.
  static NetCostModel qdr_ib() { return NetCostModel{}; }
};

// WireMessage / CqType / Completion live in net/wire.hpp (shared by every
// transport implementation).

class Fabric;

/// NIC-generated delivery receipt, modelling the transport-level
/// acknowledgement of a reliable-connection HCA: whenever a message of
/// `kind` is delivered into a destination CQ, the destination NIC
/// immediately transmits a message of `receipt_kind` back to the origin,
/// with header[0] echoing the original's header[echo_header]. It fires
/// whether or not the receiving process ever polls its CQ — that is the
/// point: it distinguishes "delivered but not yet consumed" from "lost".
/// The receipt traverses the fabric like any send (fault rolls included)
/// and never generates a receipt of its own.
struct DeliveryReceipt {
  int kind = 0;
  int receipt_kind = 0;
  std::size_t echo_header = 0;
};

/// Per-node NIC endpoint: transmit queue + completion queue.
class Endpoint {
 public:
  Endpoint(sim::Engine& engine, Fabric& fabric, int node);
  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  /// Post a two-sided SEND. Returns the work-request id; a kSendComplete
  /// completion appears on this CQ when the transmit drains, and the
  /// message lands in `dst`'s CQ one wire latency later.
  std::uint64_t post_send(int dst, WireMessage msg);

  /// Post a one-sided RDMA WRITE of `bytes` from `local` into `remote`
  /// (an address on node `dst`). The payload memcpy happens when the
  /// transmit drains (kRdmaComplete locally); if `imm` is given it arrives
  /// at the destination CQ one wire latency after the data lands.
  std::uint64_t post_rdma_write(int dst, const void* local, void* remote,
                                std::size_t bytes,
                                std::optional<WireMessage> imm = std::nullopt);

  /// Post a one-sided RDMA READ of `bytes` from `remote` (an address on
  /// node `src`) into `local`. The read request crosses the wire, the
  /// response serializes on the *target's* transmit pipeline, and a
  /// kRdmaReadComplete lands on this CQ once the data is local.
  std::uint64_t post_rdma_read(int src, void* local, const void* remote,
                               std::size_t bytes);

  /// Drain one completion; false if the CQ is empty.
  bool poll(Completion& out);

  /// Install the notifier poked whenever a completion is enqueued.
  void set_wakeup(sim::Notifier* n) { wakeup_ = n; }

  int node() const { return node_; }

  // -- statistics ------------------------------------------------------
  std::uint64_t messages_sent() const { return messages_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t rdma_writes() const { return rdma_writes_; }
  std::uint64_t rdma_reads() const { return rdma_reads_; }
  sim::SimTime tx_busy_time() const { return tx_.total_busy_time(); }

  /// Faults injected on operations *posted by this endpoint*.
  const FaultCounters& fault_counters() const { return fault_counters_; }

 private:
  friend class Fabric;
  void deliver(Completion c);  // push to CQ + wake
  // Schedule delivery of `msg` into dst's CQ after wire latency plus any
  // fault-injected jitter.
  void deliver_remote(Endpoint* dst_ep, std::unique_ptr<WireMessage> msg,
                      sim::SimTime extra_delay);
  // NIC-side half of DeliveryReceipt: fired at delivery time for a
  // receipt-enabled kind, from scheduler context (no process needed).
  void send_receipt(const DeliveryReceipt& r, const WireMessage& m);
  // Draw the jitter for `spec` (0 if none), counting jittered deliveries.
  sim::SimTime draw_jitter(const FaultSpec& spec);

  sim::Engine& engine_;
  Fabric& fabric_;
  int node_;
  sim::FifoResource tx_;
  std::deque<Completion> cq_;
  sim::Notifier* wakeup_ = nullptr;
  std::uint64_t next_wr_ = 1;
  std::uint64_t messages_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t rdma_writes_ = 0;
  std::uint64_t rdma_reads_ = 0;
  FaultCounters fault_counters_;
};

/// The cluster interconnect: `nodes` endpoints, by default on a full
/// crossbar (no shared links); see FabricTopology for the fat-tree model.
class Fabric {
 public:
  Fabric(sim::Engine& engine, int nodes, NetCostModel cost,
         FabricTopology topology = {});

  Endpoint& endpoint(int node);
  int nodes() const { return static_cast<int>(endpoints_.size()); }
  const NetCostModel& cost() const { return cost_; }
  const FabricTopology& topology() const { return topology_; }
  sim::Engine& engine() { return engine_; }

  /// Charge one message's path through the switch fabric at the current
  /// virtual time and return the extra delivery delay it queued for
  /// (cut-through: an uncontended traversal costs nothing on top of the
  /// wire latency; contention on a shared up/down link delays delivery by
  /// the backlog in front of it). Crossbar: always 0, touches nothing.
  /// Deterministic — uses only the clock, the link state the simulation
  /// already determined, and the route policy (see RouteSelect).
  ///
  /// `flow` labels the transfer for hashed routing (0 is a valid "no
  /// label": the hash then spreads by pair only). When `ecn_mark` is
  /// non-null and the traversal queued behind more than the armed ECN
  /// backlog threshold on any link, *ecn_mark is set (never cleared) —
  /// the congestion-experienced bit of docs/CONCURRENCY.md.
  sim::SimTime traverse(int src, int dst, std::size_t bytes,
                        std::uint64_t flow = 0, bool* ecn_mark = nullptr);

  /// Arm ECN-style marking: a crossing that queues behind more than
  /// `backlog_ns` of earlier traffic on one shared link counts an
  /// ecn_mark on that link and marks the message (see traverse). 0 (the
  /// default) disables marking entirely — no state, no comparisons.
  void set_ecn_threshold(sim::SimTime backlog_ns) { ecn_ns_ = backlog_ns; }
  sim::SimTime ecn_threshold() const { return ecn_ns_; }

  /// Snapshot of every inter-switch link's counters, up-links first
  /// (empty on a crossbar; dragonfly: every used ordered group pair).
  std::vector<LinkStats> link_stats() const;

  /// Arm a DeliveryReceipt (see the struct doc above) for one message kind.
  void enable_delivery_receipt(DeliveryReceipt r) {
    if (r.kind < 0 || r.echo_header >= 6 ||
        receipt_for(r.receipt_kind) != nullptr) {
      throw std::invalid_argument("enable_delivery_receipt: bad config");
    }
    if (receipt_index_.size() <= static_cast<std::size_t>(r.kind)) {
      receipt_index_.resize(static_cast<std::size_t>(r.kind) + 1, -1);
    }
    receipt_index_[static_cast<std::size_t>(r.kind)] =
        static_cast<std::int16_t>(receipts_.size());
    receipts_.push_back(r);
  }
  /// O(1) kind-indexed lookup — this runs on every message delivery.
  const DeliveryReceipt* receipt_for(int kind) const {
    if (static_cast<unsigned>(kind) >= receipt_index_.size()) return nullptr;
    const std::int16_t i = receipt_index_[static_cast<std::size_t>(kind)];
    return i >= 0 ? &receipts_[static_cast<std::size_t>(i)] : nullptr;
  }

  /// Fault-injection rules shared by every endpoint. Mutate before (or
  /// between) transfers; decisions are drawn from the engine RNG at
  /// transmit-drain time, so a fixed Engine::seed_rng seed reproduces the
  /// identical fault sequence.
  FaultModel& faults() { return faults_; }
  const FaultModel& faults() const { return faults_; }

 private:
  // One shared serialization resource inside the switch fabric. Same
  // busy-until arithmetic as sim::FifoResource, but a plain struct — a
  // 256-rank fat tree has hundreds of these and they sit on the
  // per-transmit fast path.
  struct Link {
    sim::SimTime busy_until = 0;
    sim::SimTime busy_total = 0;
    sim::SimTime wait_total = 0;
    sim::SimTime peak_backlog = 0;
    std::uint64_t ops = 0;
    std::uint64_t contended_ops = 0;
    std::uint64_t bytes = 0;
    std::uint64_t ecn_marks = 0;
  };
  // Serialize `wire` time on `l` for a message arriving at `arrival`;
  // returns the instant the message starts crossing (== arrival when the
  // link is idle). Counts an ECN mark on the link (and sets *ecn_mark)
  // when the queuing exceeded the armed threshold.
  sim::SimTime cross_link(Link& l, sim::SimTime arrival, sim::SimTime wire,
                          std::size_t bytes, bool* ecn_mark);
  // Backlog a message injected now would queue behind on `l` — the
  // quantity adaptive routing minimizes.
  sim::SimTime backlog_of(const Link& l, sim::SimTime now) const {
    return l.busy_until > now ? l.busy_until - now : 0;
  }
  // Fat-tree uplink choice for (src_leaf, dst, dst_leaf, flow) under the
  // topology's route policy.
  int pick_uplink(int src, int src_leaf, int dst, int dst_leaf, std::uint64_t flow,
                  sim::SimTime now) const;
  sim::SimTime traverse_fat_tree(int src, int dst, std::size_t bytes,
                                 std::uint64_t flow, bool* ecn_mark);
  sim::SimTime traverse_dragonfly(int src, int dst, std::size_t bytes,
                                  std::uint64_t flow, bool* ecn_mark);
  Link& global_link(int g_from, int g_to) {
    return global_[static_cast<std::size_t>(g_from) *
                       static_cast<std::size_t>(groups_) +
                   static_cast<std::size_t>(g_to)];
  }

  sim::Engine& engine_;
  NetCostModel cost_;
  FabricTopology topology_;
  int uplinks_per_leaf_ = 0;
  int groups_ = 0;          // dragonfly: number of groups
  sim::SimTime ecn_ns_ = 0;  // ECN backlog threshold; 0 = marking off
  std::vector<Link> up_;    // [leaf * uplinks + u]: leaf -> spine u
  std::vector<Link> down_;  // [leaf * uplinks + u]: spine u -> leaf
  std::vector<Link> global_;  // dragonfly: [g_from * groups + g_to]
  FaultModel faults_;
  std::vector<DeliveryReceipt> receipts_;
  std::vector<std::int16_t> receipt_index_;  // kind -> receipts_ index, -1
  std::vector<std::unique_ptr<Endpoint>> endpoints_;
};

}  // namespace mv2gnc::netsim
