// Wire-level message and completion types shared by every transport.
//
// These used to live in net/fabric.hpp; they are transport-neutral (the
// intra-node IPC channel produces the same completions as the RDMA fabric),
// so they sit in their own header that protocol layers can include without
// pulling in any concrete transport implementation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mv2gnc::netsim {

/// A two-sided message (control traffic and eager payloads).
struct WireMessage {
  int src_node = -1;
  int kind = 0;                     // application-level discriminator
  std::uint64_t seq = 0;            // sender-assigned sequence number, used
                                    // by reliable protocols to discard
                                    // duplicate retransmissions
  std::uint64_t flow = 0;           // transfer/flow label: hashed routing
                                    // (RouteSelect::kHash) spreads flows by
                                    // (src, dst, flow), so messages of one
                                    // rendezvous keep one path while
                                    // different transfers between the same
                                    // pair may take different spines
  bool ecn = false;                 // congestion-experienced mark, set by
                                    // the switch fabric when this message
                                    // queued behind more than the ECN
                                    // backlog threshold on a shared link
                                    // (docs/CONCURRENCY.md); echoed back to
                                    // the sender on the chunk ack
  std::uint64_t header[6] = {};     // small fixed header words
  std::vector<std::byte> payload;   // optional inline payload
};

/// CQ entry types.
enum class CqType {
  kRecv,              // a WireMessage arrived (two-sided or RDMA immediate)
  kSendComplete,      // post_send drained; buffer reusable
  kRdmaComplete,      // post_rdma_write drained locally; buffer reusable
  kRdmaReadComplete,  // post_rdma_read data has landed locally
  kError,             // a posted WR failed in transport (fault injection);
                      // wr_id identifies the failed post_rdma_write
};

struct Completion {
  CqType type = CqType::kRecv;
  std::uint64_t wr_id = 0;  // for kSendComplete / kRdmaComplete / kError
  WireMessage msg;          // for kRecv
};

}  // namespace mv2gnc::netsim
