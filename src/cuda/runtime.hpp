// cusim: a CUDA-4.0-shaped runtime over the simulated GPU device.
//
// The subset implemented is exactly what the paper's code paths touch:
// cudaMalloc/cudaFree, cudaMemcpy / cudaMemcpy2D and their Async variants,
// streams (create/query/synchronize), events, memset and kernel launch.
// Semantics follow CUDA where it matters for the protocol:
//   * operations submitted to one stream execute in order;
//   * operations in different streams run concurrently when their engines
//     differ (Fermi: separate D2H and H2D copy engines + compute);
//   * Stream::query() returns true only when all submitted work drained
//     (the cudaStreamQuery()==cudaSuccess idiom from paper Fig. 4(b)).
//
// Data actually moves: the byte transfer is performed when the operation
// completes in virtual time, so anything the receiver observes after a
// completed copy is bit-exact.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "gpu/device.hpp"
#include "sim/engine.hpp"

namespace mv2gnc::cusim {

/// Mirrors cudaMemcpyKind. kDefault infers the direction from the pointer
/// registry (UVA-style), which is what MVAPICH2 relies on.
enum class MemcpyKind {
  kHostToHost,
  kHostToDevice,
  kDeviceToHost,
  kDeviceToDevice,
  kDefault,
};

/// Thrown for API misuse (wrong kind, bad pitch, foreign pointers).
class CudaError : public std::runtime_error {
 public:
  explicit CudaError(const std::string& what) : std::runtime_error(what) {}
};

/// cudaIpcMemHandle_t analogue: an exportable name for (a pointer into) a
/// live device allocation. Plain 64-bit words so a handle can travel in a
/// wire-message payload between co-located ranks.
struct IpcMemHandle {
  std::uint64_t device = 0;  // owning device id
  std::uint64_t base = 0;    // allocation base address
  std::uint64_t size = 0;    // allocation size in bytes
  std::uint64_t offset = 0;  // offset of the exported pointer within it
};

/// A host-visible one-shot flag a stream can wait on (the 32-bit word of
/// cuStreamWaitValue32, reduced to set/unset). Unlike sim::EventFlag, whose
/// waiters are blocked *processes*, HostFlag waiters are callbacks — the
/// stream-trigger machinery arms one to resolve a pending stream_wait_flag
/// the moment the host (e.g. the MPI layer completing a request) triggers.
class HostFlag {
 public:
  HostFlag() = default;

  bool is_set() const { return set_; }

  /// Set the flag and run every armed callback, FIFO. Callbacks may
  /// schedule engine events but must not block.
  void trigger();

  /// Re-arm for another trigger (persistent re-fires). Callbacks armed
  /// after the reset wait for the next trigger.
  void reset() { set_ = false; }

  /// Arm `fn` to run at trigger time — immediately if already set.
  void on_set(std::function<void()> fn);

 private:
  bool set_ = false;
  std::vector<std::function<void()>> waiters_;
};

namespace detail {

struct StreamState {
  gpu::Device* device = nullptr;
  sim::Engine* engine = nullptr;
  int id = 0;
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  sim::SimTime last_op_done = 0;  // stream-order fence
  std::unique_ptr<sim::EventFlag> progress_flag;
  sim::Notifier* wakeup = nullptr;
  // stream_wait_flag support: while a wait op is unresolved the stream is
  // blocked and later submissions queue as activation thunks, replayed in
  // order when the wait resolves. Counts (submitted) advance at submit
  // time so query()/events see the queued work.
  bool blocked = false;
  std::deque<std::function<void()>> deferred;
};

}  // namespace detail

/// A CUDA stream handle. Copyable; copies refer to the same stream.
class Stream {
 public:
  Stream() = default;

  /// True iff every operation submitted so far has completed
  /// (cudaStreamQuery() == cudaSuccess).
  bool query() const;

  /// Block the calling process until all submitted work completes.
  void synchronize();

  /// Install a Notifier poked on every operation completion. The MPI
  /// progress engine uses this as its unified wake-up source.
  void set_wakeup(sim::Notifier* n);

  /// Completion time of the most recently submitted operation.
  sim::SimTime last_op_done() const;

  std::uint64_t submitted() const;
  std::uint64_t completed() const;
  bool valid() const { return state_ != nullptr; }
  int id() const;

 private:
  friend class CudaContext;
  friend class Event;
  explicit Stream(std::shared_ptr<detail::StreamState> s)
      : state_(std::move(s)) {}
  std::shared_ptr<detail::StreamState> state_;
};

/// A CUDA event: captures the work submitted to a stream at record time.
class Event {
 public:
  Event() = default;

  /// True iff all work submitted before the record() completed.
  bool query() const;

  /// Block the calling process until query() would return true.
  void synchronize();

  bool valid() const { return state_ != nullptr; }

 private:
  friend class CudaContext;
  Event(std::shared_ptr<detail::StreamState> s, std::uint64_t seq)
      : state_(std::move(s)), target_seq_(seq) {}
  std::shared_ptr<detail::StreamState> state_;
  std::uint64_t target_seq_ = 0;
};

/// Per-rank CUDA runtime bound to one device (one GPU per process, as in
/// the paper's experiments).
class CudaContext {
 public:
  explicit CudaContext(gpu::Device& device);

  // -- memory ---------------------------------------------------------
  /// cudaMalloc.
  void* malloc(std::size_t bytes);
  /// cudaFree.
  void free(void* ptr);
  /// cudaMallocHost: page-locked host memory. PCIe copies touching pinned
  /// memory run at full bandwidth; pageable memory pays the driver's
  /// staging penalty.
  void* malloc_host(std::size_t bytes);
  /// cudaFreeHost.
  void free_host(void* ptr);
  /// cudaMemset on device memory (blocking).
  void memset(void* dst, int value, std::size_t bytes);

  // -- copies ---------------------------------------------------------
  /// cudaMemcpy (blocking; synchronizes with prior default-stream work).
  void memcpy(void* dst, const void* src, std::size_t bytes,
              MemcpyKind kind = MemcpyKind::kDefault);
  /// cudaMemcpyAsync into `stream`.
  void memcpy_async(void* dst, const void* src, std::size_t bytes,
                    MemcpyKind kind, Stream& stream);
  /// cudaMemcpy2D (blocking). Copies `height` rows of `width` bytes from
  /// `src` (row stride `spitch`) to `dst` (row stride `dpitch`).
  void memcpy2d(void* dst, std::size_t dpitch, const void* src,
                std::size_t spitch, std::size_t width, std::size_t height,
                MemcpyKind kind = MemcpyKind::kDefault);
  /// cudaMemcpy2DAsync into `stream`.
  void memcpy2d_async(void* dst, std::size_t dpitch, const void* src,
                      std::size_t spitch, std::size_t width,
                      std::size_t height, MemcpyKind kind, Stream& stream);

  // -- CUDA IPC ---------------------------------------------------------
  // The intra-node transport's handshake: a receiver exports a handle for
  // its landing buffer, the co-located sender opens it and peer-copies
  // straight into device memory without staging through the host.

  /// cudaIpcGetMemHandle: export a handle for `ptr` (any pointer inside a
  /// live device allocation; interior pointers keep their offset).
  IpcMemHandle ipc_get_mem_handle(const void* ptr) const;
  /// cudaIpcOpenMemHandle: validate the handle against the live allocation
  /// it names and return the address it designates. Throws CudaError for a
  /// stale handle (the allocation was freed or replaced).
  void* ipc_open_mem_handle(const IpcMemHandle& handle);
  /// cudaIpcCloseMemHandle: release one mapping from ipc_open_mem_handle.
  void ipc_close_mem_handle(void* ptr);
  /// Mappings currently open through this context (leak check for tests).
  std::size_t open_ipc_handles() const { return open_ipc_.size(); }

  // -- streams & events -----------------------------------------------
  /// cudaStreamCreate.
  Stream create_stream();
  /// The default (0) stream; blocking API calls use it.
  Stream& default_stream() { return default_stream_; }
  /// cudaEventRecord: capture `stream`'s submitted work.
  Event record_event(Stream& stream);
  /// cudaDeviceSynchronize: wait for every stream created here.
  void device_synchronize();

  // -- kernels ---------------------------------------------------------
  /// Launch a kernel whose duration is modeled from `points` grid points;
  /// `body` (the real host-side math) executes at completion time.
  void launch_kernel(Stream& stream, std::uint64_t points,
                     bool double_precision, std::function<void()> body);
  /// Launch a kernel with an explicitly modeled duration.
  void launch_kernel_timed(Stream& stream, sim::SimTime duration,
                           std::function<void()> body);
  /// Launch an elementwise device reduction over `bytes` of input, priced
  /// by GpuCostModel::reduce_time; `body` performs the real fold at
  /// completion time. The device-buffer collectives enqueue their per-slice
  /// folds through this so reductions are stream-ordered like any kernel.
  void launch_device_reduce(Stream& stream, std::size_t bytes,
                            std::function<void()> body);

  // -- stream-triggered ops (docs/STREAMS.md) ---------------------------
  /// cuLaunchHostFunc / cuStreamWriteValue analogue: enqueue `fn` to run
  /// when the stream reaches this point (all prior submissions drained).
  /// `fn` executes in scheduler context — it must only set flags / poke
  /// notifiers, never block.
  void launch_host_trigger(Stream& stream, std::function<void()> fn);

  /// cuStreamWaitValue analogue: all stream work submitted after this call
  /// waits until `flag` is triggered (and prior stream work drained).
  /// Submissions made while the wait is pending are queued and replayed in
  /// order at resolve time.
  void stream_wait_flag(Stream& stream, std::shared_ptr<HostFlag> flag);

  gpu::Device& device() { return device_; }
  const gpu::Device& device() const { return device_; }

  /// API-call counters (productivity accounting, paper Table I).
  std::uint64_t memcpy_calls() const { return memcpy_calls_; }
  std::uint64_t memcpy2d_calls() const { return memcpy2d_calls_; }
  std::uint64_t reduce_kernel_calls() const { return reduce_kernel_calls_; }
  void reset_call_counters() { memcpy_calls_ = memcpy2d_calls_ = 0; }

 private:
  MemcpyKind resolve_kind(const void* dst, const void* src,
                          MemcpyKind declared, const char* api) const;
  // True when the host-side pointer of a PCIe copy is page-locked.
  bool pinned_side(const void* dst, const void* src, MemcpyKind kind) const;
  sim::FifoResource& engine_for(MemcpyKind kind);
  sim::SimTime submit_to_stream(Stream& stream, sim::FifoResource& res,
                                sim::SimTime duration,
                                std::function<void()> data_move);
  void charge_async_submit();

  gpu::Device& device_;
  sim::Engine& engine_;
  std::vector<std::shared_ptr<detail::StreamState>> streams_;
  Stream default_stream_;
  int next_stream_id_ = 0;
  std::uint64_t memcpy_calls_ = 0;
  std::uint64_t memcpy2d_calls_ = 0;
  std::uint64_t reduce_kernel_calls_ = 0;
  std::unordered_map<void*, std::unique_ptr<std::byte[]>> host_allocs_;
  // Opened-IPC-mapping refcounts, keyed by the mapped pointer.
  std::unordered_map<void*, std::uint64_t> open_ipc_;
};

}  // namespace mv2gnc::cusim
