#include "cuda/runtime.hpp"

#include <algorithm>
#include <cstring>

namespace mv2gnc::cusim {

using gpu::CopyDir;
using gpu::Layout2D;

namespace {

CopyDir dir_of(MemcpyKind kind) {
  switch (kind) {
    case MemcpyKind::kHostToDevice: return CopyDir::kHostToDevice;
    case MemcpyKind::kDeviceToHost: return CopyDir::kDeviceToHost;
    case MemcpyKind::kDeviceToDevice: return CopyDir::kDeviceToDevice;
    case MemcpyKind::kHostToHost: return CopyDir::kHostToHost;
    case MemcpyKind::kDefault: break;
  }
  throw CudaError("unresolved MemcpyKind");
}

const char* kind_name(MemcpyKind kind) {
  switch (kind) {
    case MemcpyKind::kHostToHost: return "HostToHost";
    case MemcpyKind::kHostToDevice: return "HostToDevice";
    case MemcpyKind::kDeviceToHost: return "DeviceToHost";
    case MemcpyKind::kDeviceToDevice: return "DeviceToDevice";
    case MemcpyKind::kDefault: return "Default";
  }
  return "?";
}

}  // namespace

// ---------------------------------------------------------------------------
// HostFlag
// ---------------------------------------------------------------------------

void HostFlag::trigger() {
  set_ = true;
  auto waiters = std::move(waiters_);
  waiters_.clear();
  for (auto& fn : waiters) fn();
}

void HostFlag::on_set(std::function<void()> fn) {
  if (set_) {
    fn();
  } else {
    waiters_.push_back(std::move(fn));
  }
}

// ---------------------------------------------------------------------------
// Stream / Event
// ---------------------------------------------------------------------------

bool Stream::query() const {
  if (!state_) throw CudaError("query() on null stream");
  return state_->completed >= state_->submitted;
}

void Stream::synchronize() {
  if (!state_) throw CudaError("synchronize() on null stream");
  while (state_->completed < state_->submitted) {
    state_->progress_flag->reset();
    state_->progress_flag->wait("cudaStreamSynchronize");
  }
}

void Stream::set_wakeup(sim::Notifier* n) {
  if (!state_) throw CudaError("set_wakeup() on null stream");
  state_->wakeup = n;
}

sim::SimTime Stream::last_op_done() const {
  if (!state_) throw CudaError("last_op_done() on null stream");
  return state_->last_op_done;
}

std::uint64_t Stream::submitted() const { return state_ ? state_->submitted : 0; }
std::uint64_t Stream::completed() const { return state_ ? state_->completed : 0; }
int Stream::id() const { return state_ ? state_->id : -1; }

bool Event::query() const {
  if (!state_) throw CudaError("query() on null event");
  return state_->completed >= target_seq_;
}

void Event::synchronize() {
  if (!state_) throw CudaError("synchronize() on null event");
  while (state_->completed < target_seq_) {
    state_->progress_flag->reset();
    state_->progress_flag->wait("cudaEventSynchronize");
  }
}

// ---------------------------------------------------------------------------
// CudaContext
// ---------------------------------------------------------------------------

CudaContext::CudaContext(gpu::Device& device)
    : device_(device), engine_(device.engine()) {
  default_stream_ = create_stream();
}

void* CudaContext::malloc(std::size_t bytes) { return device_.allocate(bytes); }

void CudaContext::free(void* ptr) { device_.deallocate(ptr); }

void* CudaContext::malloc_host(std::size_t bytes) {
  if (bytes == 0) bytes = 1;
  auto buf = std::make_unique_for_overwrite<std::byte[]>(bytes);
  void* ptr = buf.get();
  device_.registry().register_pinned_host(ptr, bytes);
  host_allocs_.emplace(ptr, std::move(buf));
  return ptr;
}

void CudaContext::free_host(void* ptr) {
  if (ptr == nullptr) return;
  auto it = host_allocs_.find(ptr);
  if (it == host_allocs_.end()) {
    throw CudaError("cudaFreeHost of pointer not from cudaMallocHost");
  }
  device_.registry().unregister_pinned_host(ptr);
  host_allocs_.erase(it);
}

IpcMemHandle CudaContext::ipc_get_mem_handle(const void* ptr) const {
  gpu::PointerInfo info;
  try {
    info = device_.registry().ipc_export(ptr);
  } catch (const std::invalid_argument& e) {
    throw CudaError(std::string("cudaIpcGetMemHandle: ") + e.what());
  }
  IpcMemHandle h;
  h.device = static_cast<std::uint64_t>(info.device_id);
  h.base = reinterpret_cast<std::uintptr_t>(info.base);
  h.size = info.size;
  h.offset = static_cast<std::uint64_t>(static_cast<const std::byte*>(ptr) -
                                        static_cast<const std::byte*>(info.base));
  return h;
}

void* CudaContext::ipc_open_mem_handle(const IpcMemHandle& handle) {
  void* base = reinterpret_cast<void*>(static_cast<std::uintptr_t>(handle.base));
  const auto info = device_.registry().query(base);
  if (!info || reinterpret_cast<std::uintptr_t>(info->base) != handle.base ||
      info->size != handle.size ||
      static_cast<std::uint64_t>(info->device_id) != handle.device) {
    throw CudaError(
        "cudaIpcOpenMemHandle: handle does not name a live allocation");
  }
  if (handle.offset >= handle.size) {
    throw CudaError("cudaIpcOpenMemHandle: offset outside the allocation");
  }
  void* ptr = static_cast<std::byte*>(base) + handle.offset;
  ++open_ipc_[ptr];
  return ptr;
}

void CudaContext::ipc_close_mem_handle(void* ptr) {
  auto it = open_ipc_.find(ptr);
  if (it == open_ipc_.end()) {
    throw CudaError("cudaIpcCloseMemHandle: pointer was not opened here");
  }
  if (--it->second == 0) open_ipc_.erase(it);
}

bool CudaContext::pinned_side(const void* dst, const void* src,
                              MemcpyKind kind) const {
  switch (kind) {
    case MemcpyKind::kHostToDevice:
      return device_.registry().is_pinned_host(src);
    case MemcpyKind::kDeviceToHost:
      return device_.registry().is_pinned_host(dst);
    default:
      return true;  // no PCIe host side involved
  }
}

void CudaContext::memset(void* dst, int value, std::size_t bytes) {
  auto info = device_.registry().query(dst);
  if (!info || info->device_id != device_.id()) {
    throw CudaError("cudaMemset: destination is not on this device");
  }
  const sim::SimTime dur = device_.cost().copy_time(bytes, CopyDir::kDeviceToDevice);
  submit_to_stream(default_stream_, device_.d2d_engine(), dur,
                   [dst, value, bytes] { std::memset(dst, value, bytes); });
  default_stream_.synchronize();
}

MemcpyKind CudaContext::resolve_kind(const void* dst, const void* src,
                                     MemcpyKind declared,
                                     const char* api) const {
  const bool src_dev = device_.registry().is_device_pointer(src);
  const bool dst_dev = device_.registry().is_device_pointer(dst);
  MemcpyKind actual;
  if (src_dev && dst_dev) actual = MemcpyKind::kDeviceToDevice;
  else if (src_dev) actual = MemcpyKind::kDeviceToHost;
  else if (dst_dev) actual = MemcpyKind::kHostToDevice;
  else actual = MemcpyKind::kHostToHost;
  if (declared != MemcpyKind::kDefault && declared != actual) {
    throw CudaError(std::string(api) + ": declared kind " +
                    kind_name(declared) + " does not match pointers (" +
                    kind_name(actual) + ")");
  }
  return actual;
}

sim::FifoResource& CudaContext::engine_for(MemcpyKind kind) {
  switch (kind) {
    case MemcpyKind::kDeviceToHost: return device_.d2h_engine();
    case MemcpyKind::kHostToDevice: return device_.h2d_engine();
    case MemcpyKind::kDeviceToDevice:
    case MemcpyKind::kHostToHost: return device_.d2d_engine();
    case MemcpyKind::kDefault: break;
  }
  throw CudaError("engine_for: unresolved kind");
}

namespace {

// When a stream_wait_flag resolves, replay the submissions queued behind it
// until the queue drains or another wait blocks the stream again.
void drain_deferred(const std::shared_ptr<detail::StreamState>& st) {
  while (!st->blocked && !st->deferred.empty()) {
    auto next = std::move(st->deferred.front());
    st->deferred.pop_front();
    next();
  }
}

}  // namespace

sim::SimTime CudaContext::submit_to_stream(Stream& stream,
                                           sim::FifoResource& res,
                                           sim::SimTime duration,
                                           std::function<void()> data_move) {
  auto st = stream.state_;
  if (!st) throw CudaError("operation submitted to null stream");
  ++st->submitted;
  auto activate = [st, &res, duration, move = std::move(data_move)]() mutable {
    const sim::SimTime done = res.submit_after(
        st->last_op_done, duration,
        [st, move = std::move(move)] {
          if (move) move();
          ++st->completed;
          st->progress_flag->trigger();
          if (st->wakeup != nullptr) st->wakeup->notify();
        });
    st->last_op_done = done;
  };
  if (st->blocked) {
    st->deferred.push_back(std::move(activate));
    return st->last_op_done;
  }
  activate();
  return st->last_op_done;
}

void CudaContext::launch_host_trigger(Stream& stream,
                                      std::function<void()> fn) {
  auto st = stream.state_;
  if (!st) throw CudaError("launch_host_trigger on null stream");
  charge_async_submit();
  ++st->submitted;
  auto activate = [st, eng = &engine_, fn = std::move(fn)]() mutable {
    const sim::SimTime done = std::max(eng->now(), st->last_op_done);
    st->last_op_done = done;
    eng->schedule_at(done, [st, fn = std::move(fn)] {
      if (fn) fn();
      ++st->completed;
      st->progress_flag->trigger();
      if (st->wakeup != nullptr) st->wakeup->notify();
    });
  };
  if (st->blocked) {
    st->deferred.push_back(std::move(activate));
  } else {
    activate();
  }
}

void CudaContext::stream_wait_flag(Stream& stream,
                                   std::shared_ptr<HostFlag> flag) {
  auto st = stream.state_;
  if (!st) throw CudaError("stream_wait_flag on null stream");
  if (!flag) throw CudaError("stream_wait_flag on null flag");
  charge_async_submit();
  ++st->submitted;
  auto activate = [st, eng = &engine_, flag = std::move(flag)] {
    const sim::SimTime fence = st->last_op_done;
    st->blocked = true;
    flag->on_set([st, eng, fence] {
      const sim::SimTime done = std::max(eng->now(), fence);
      eng->schedule_at(done, [st, done] {
        ++st->completed;
        if (done > st->last_op_done) st->last_op_done = done;
        st->blocked = false;
        st->progress_flag->trigger();
        if (st->wakeup != nullptr) st->wakeup->notify();
        drain_deferred(st);
      });
    });
  };
  if (st->blocked) {
    st->deferred.push_back(activate);
  } else {
    activate();
  }
}

void CudaContext::charge_async_submit() {
  engine_.delay(device_.cost().async_submit_ns);
}

void CudaContext::memcpy(void* dst, const void* src, std::size_t bytes,
                         MemcpyKind kind) {
  ++memcpy_calls_;
  const MemcpyKind actual = resolve_kind(dst, src, kind, "cudaMemcpy");
  const sim::SimTime dur = device_.cost().copy_time(
      bytes, dir_of(actual), pinned_side(dst, src, actual));
  submit_to_stream(default_stream_, engine_for(actual), dur,
                   [dst, src, bytes] { std::memcpy(dst, src, bytes); });
  default_stream_.synchronize();
}

void CudaContext::memcpy_async(void* dst, const void* src, std::size_t bytes,
                               MemcpyKind kind, Stream& stream) {
  const MemcpyKind actual = resolve_kind(dst, src, kind, "cudaMemcpyAsync");
  const sim::SimTime dur = device_.cost().copy_time(
      bytes, dir_of(actual), pinned_side(dst, src, actual));
  charge_async_submit();
  submit_to_stream(stream, engine_for(actual), dur,
                   [dst, src, bytes] { std::memcpy(dst, src, bytes); });
}

namespace {

// The real byte movement of a 2-D copy, deferred to completion time.
std::function<void()> copy2d_mover(void* dst, std::size_t dpitch,
                                   const void* src, std::size_t spitch,
                                   std::size_t width, std::size_t height) {
  return [=] {
    auto* d = static_cast<std::byte*>(dst);
    const auto* s = static_cast<const std::byte*>(src);
    for (std::size_t row = 0; row < height; ++row) {
      std::memcpy(d + row * dpitch, s + row * spitch, width);
    }
  };
}

Layout2D layout_of(std::size_t dpitch, std::size_t spitch, std::size_t width) {
  const bool src_strided = spitch > width;
  const bool dst_strided = dpitch > width;
  if (src_strided && !dst_strided) return Layout2D::kPack;
  if (!src_strided && dst_strided) return Layout2D::kUnpack;
  return Layout2D::kSameLayout;
}

}  // namespace

void CudaContext::memcpy2d(void* dst, std::size_t dpitch, const void* src,
                           std::size_t spitch, std::size_t width,
                           std::size_t height, MemcpyKind kind) {
  ++memcpy2d_calls_;
  if (dpitch < width || spitch < width) {
    throw CudaError("cudaMemcpy2D: pitch smaller than width");
  }
  const MemcpyKind actual = resolve_kind(dst, src, kind, "cudaMemcpy2D");
  const bool rows_contig = (dpitch == width && spitch == width);
  const sim::SimTime dur = device_.cost().copy2d_time(
      width, height, dir_of(actual), layout_of(dpitch, spitch, width),
      rows_contig, pinned_side(dst, src, actual));
  submit_to_stream(default_stream_, engine_for(actual), dur,
                   copy2d_mover(dst, dpitch, src, spitch, width, height));
  default_stream_.synchronize();
}

void CudaContext::memcpy2d_async(void* dst, std::size_t dpitch,
                                 const void* src, std::size_t spitch,
                                 std::size_t width, std::size_t height,
                                 MemcpyKind kind, Stream& stream) {
  if (dpitch < width || spitch < width) {
    throw CudaError("cudaMemcpy2DAsync: pitch smaller than width");
  }
  const MemcpyKind actual = resolve_kind(dst, src, kind, "cudaMemcpy2DAsync");
  const bool rows_contig = (dpitch == width && spitch == width);
  const sim::SimTime dur = device_.cost().copy2d_time(
      width, height, dir_of(actual), layout_of(dpitch, spitch, width),
      rows_contig, pinned_side(dst, src, actual));
  charge_async_submit();
  submit_to_stream(stream, engine_for(actual), dur,
                   copy2d_mover(dst, dpitch, src, spitch, width, height));
}

Stream CudaContext::create_stream() {
  auto st = std::make_shared<detail::StreamState>();
  st->device = &device_;
  st->engine = &engine_;
  st->id = next_stream_id_++;
  st->progress_flag = std::make_unique<sim::EventFlag>(engine_);
  streams_.push_back(st);
  return Stream(st);
}

Event CudaContext::record_event(Stream& stream) {
  if (!stream.state_) throw CudaError("record_event on null stream");
  return Event(stream.state_, stream.state_->submitted);
}

void CudaContext::device_synchronize() {
  for (auto& st : streams_) {
    Stream s(st);
    s.synchronize();
  }
}

void CudaContext::launch_kernel(Stream& stream, std::uint64_t points,
                                bool double_precision,
                                std::function<void()> body) {
  launch_kernel_timed(stream,
                      device_.cost().kernel_time(points, double_precision),
                      std::move(body));
}

void CudaContext::launch_kernel_timed(Stream& stream, sim::SimTime duration,
                                      std::function<void()> body) {
  charge_async_submit();
  submit_to_stream(stream, device_.kernel_engine(), duration, std::move(body));
}

void CudaContext::launch_device_reduce(Stream& stream, std::size_t bytes,
                                       std::function<void()> body) {
  ++reduce_kernel_calls_;
  launch_kernel_timed(stream, device_.cost().reduce_time(bytes),
                      std::move(body));
}

}  // namespace mv2gnc::cusim
