#include "mpi/cluster.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <stdexcept>
#include <string>

#include "mpi/coll.hpp"
#include "mpi/rank_comm.hpp"

namespace mv2gnc::mpisim {

Cluster::Cluster(ClusterConfig config) : config_(std::move(config)) {
  if (config_.ranks <= 0) {
    throw std::invalid_argument("Cluster: ranks must be positive");
  }
  config_.tunables.validate();
  trace_.set_enabled(config_.trace_enabled);
  engine_.seed_rng(config_.rng_seed);
  // The routing tunable rides on the topology description. Only a
  // non-default value is copied over, so a route set directly on
  // config_.topology stays authoritative (and the byte-identical default
  // path never rewrites anything).
  if (config_.tunables.route_select != core::RouteSelect::kDmodK) {
    config_.topology.route =
        config_.tunables.route_select == core::RouteSelect::kHash
            ? netsim::RouteSelect::kHash
            : netsim::RouteSelect::kAdaptive;
  }
  fabric_ = std::make_unique<netsim::Fabric>(engine_, config_.ranks,
                                             config_.net_cost,
                                             config_.topology);
  fabric_->faults() = config_.faults;
  fabric_->set_ecn_threshold(config_.tunables.ecn_backlog_ns);
  // RC-transport acknowledgement of the RTS: the receiving NIC confirms
  // delivery even while the receiving process is busy computing, so the
  // sender can tell "RTS lost, retransmit" from "receive not yet posted,
  // keep waiting" (echoes the sender request id from RTS header[2]).
  fabric_->enable_delivery_receipt(
      {core::kRts, core::kRtsAck, /*echo_header=*/2});
  for (int r = 0; r < config_.ranks; ++r) {
    devices_.push_back(std::make_unique<gpu::Device>(
        engine_, registry_, r, config_.gpu_cost,
        config_.device_memory_bytes));
    cuda_.push_back(std::make_unique<cusim::CudaContext>(*devices_.back()));
  }
  // Transport bindings: every rank reaches remote peers through its fabric
  // endpoint; the router in front of it decides per peer. Co-located ranks
  // (ranks_per_node > 1, blocked placement) additionally share a node-local
  // IPC channel and route each other — and themselves — over it.
  for (int r = 0; r < config_.ranks; ++r) {
    fabric_transports_.push_back(
        std::make_unique<core::FabricTransport>(fabric_->endpoint(r)));
    routers_.push_back(
        std::make_unique<core::TransportRouter>(*fabric_transports_.back()));
    routers_.back()->set_failover(
        config_.tunables.transport_failover_threshold,
        config_.tunables.transport_restore_threshold);
  }
  const int rpn = static_cast<int>(config_.tunables.ranks_per_node);
  if (rpn > 1 &&
      config_.tunables.transport_select == core::TransportSelect::kAuto) {
    for (int first = 0; first < config_.ranks; first += rpn) {
      const int last = std::min(config_.ranks, first + rpn);
      if (last - first < 2) continue;  // a lone rank needs no channel
      auto channel = std::make_unique<netsim::IpcChannel>(
          engine_, registry_,
          netsim::IpcCostModel::from_gpu(config_.gpu_cost));
      // Same RTS delivery receipt the fabric arms: even on a fault-free
      // channel, a sender whose receiver has not posted yet still needs
      // the "handshake alive" signal to keep its retry budget fresh — and
      // with ipc_faults armed the channel is no longer lossless at all.
      channel->enable_delivery_receipt(core::kRts, core::kRtsAck,
                                       /*echo_header=*/2);
      channel->faults() = config_.ipc_faults;
      for (int r = first; r < last; ++r) channel->add_rank(r);
      for (int r = first; r < last; ++r) {
        ipc_transports_.push_back(
            std::make_unique<core::IpcTransport>(channel->port(r)));
        for (int peer = first; peer < last; ++peer) {
          routers_[static_cast<std::size_t>(r)]->add_route(
              peer, *ipc_transports_.back());
        }
      }
      ipc_channels_.push_back(std::move(channel));
    }
  }
  // RankComms after devices: they create CUDA streams on construction.
  for (int r = 0; r < config_.ranks; ++r) {
    comms_.push_back(std::make_unique<detail::RankComm>(
        r, config_.ranks, engine_, *cuda_[static_cast<std::size_t>(r)],
        *routers_[static_cast<std::size_t>(r)], registry_, config_.tunables,
        &trace_));
  }
  for (const auto& [rank, when] : config_.crash_at) {
    if (rank < 0 || rank >= config_.ranks) {
      throw std::invalid_argument("Cluster: crash_at names a bad rank");
    }
    if (when < 0) {
      throw std::invalid_argument("Cluster: crash_at time must be >= 0");
    }
    comms_[static_cast<std::size_t>(rank)]->set_crash_time(when);
  }
  // Feed each rank's collectives engine the cost facts coll_select = auto
  // weighs: the fabric's wire parameters against the node-local channel's
  // (mirroring how scheme_select = model reads the GPU cost model).
  {
    const netsim::IpcCostModel ipc =
        netsim::IpcCostModel::from_gpu(config_.gpu_cost);
    detail::CollCostHints hints;
    hints.fabric_bw = config_.net_cost.bw;
    hints.fabric_latency_ns = config_.net_cost.latency_ns;
    hints.ipc_shm_bw = ipc.shm_host_bw;
    hints.ipc_cma_bw = ipc.cma_host_bw;
    hints.ipc_cma_threshold = ipc.shm_cma_threshold;
    hints.ipc_latency_ns = ipc.latency_ns;
    hints.d2h_bw = config_.gpu_cost.d2h_bw;
    hints.h2d_bw = config_.gpu_cost.h2d_bw;
    hints.reduce_bw = config_.gpu_cost.reduce_bw;
    hints.ipc_peer_bw = config_.gpu_cost.peer_d2d_bw;
    hints.copy_launch_ns = config_.gpu_cost.copy_launch_ns;
    hints.kernel_launch_ns = config_.gpu_cost.kernel_launch_ns;
    for (auto& comm : comms_) comm->coll().set_cost_hints(hints);
  }
}

netsim::FaultModel& Cluster::faults() { return fabric_->faults(); }

std::vector<netsim::LinkStats> Cluster::link_stats() const {
  return fabric_->link_stats();
}

netsim::IpcChannel* Cluster::ipc_channel(int rank) {
  if (rank < 0 || rank >= config_.ranks) {
    throw std::out_of_range("ipc_channel: bad rank");
  }
  for (auto& ch : ipc_channels_) {
    if (ch->has_rank(rank)) return ch.get();
  }
  return nullptr;
}

Cluster::FaultStats Cluster::fault_stats(int rank) {
  if (rank < 0 || rank >= config_.ranks) {
    throw std::out_of_range("fault_stats: bad rank");
  }
  FaultStats f;
  f.fabric = fabric_->endpoint(rank).fault_counters();
  if (netsim::IpcChannel* ch = ipc_channel(rank)) {
    f.ipc = ch->port(rank).fault_counters();
  }
  return f;
}

const core::RetryStats& Cluster::retry_stats(int rank) const {
  if (rank < 0 || rank >= config_.ranks) {
    throw std::out_of_range("retry_stats: bad rank");
  }
  return comms_[static_cast<std::size_t>(rank)]->retry_stats();
}

std::size_t Cluster::tracked_rendezvous(int rank) const {
  if (rank < 0 || rank >= config_.ranks) {
    throw std::out_of_range("tracked_rendezvous: bad rank");
  }
  return comms_[static_cast<std::size_t>(rank)]->tracked_rendezvous();
}

const core::TriggerStats& Cluster::trigger_stats(int rank) const {
  if (rank < 0 || rank >= config_.ranks) {
    throw std::out_of_range("trigger_stats: bad rank");
  }
  return comms_[static_cast<std::size_t>(rank)]->trigger_stats();
}

const core::SchedStats& Cluster::sched_stats(int rank) const {
  if (rank < 0 || rank >= config_.ranks) {
    throw std::out_of_range("sched_stats: bad rank");
  }
  return comms_[static_cast<std::size_t>(rank)]->sched_stats();
}

const detail::CollStats& Cluster::coll_stats(int rank) const {
  if (rank < 0 || rank >= config_.ranks) {
    throw std::out_of_range("coll_stats: bad rank");
  }
  return comms_[static_cast<std::size_t>(rank)]->coll().stats();
}

const detail::CollCostHints& Cluster::coll_cost_hints(int rank) const {
  if (rank < 0 || rank >= config_.ranks) {
    throw std::out_of_range("coll_cost_hints: bad rank");
  }
  return comms_[static_cast<std::size_t>(rank)]->coll().cost_hints();
}

std::string Cluster::vbuf_audit(int rank) const {
  if (rank < 0 || rank >= config_.ranks) {
    throw std::out_of_range("vbuf_audit: bad rank");
  }
  return comms_[static_cast<std::size_t>(rank)]->vbufs().audit();
}

std::size_t Cluster::vbufs_in_use(int rank) const {
  if (rank < 0 || rank >= config_.ranks) {
    throw std::out_of_range("vbufs_in_use: bad rank");
  }
  return comms_[static_cast<std::size_t>(rank)]->vbufs().in_use();
}

std::size_t Cluster::graveyard_slots(int rank) const {
  if (rank < 0 || rank >= config_.ranks) {
    throw std::out_of_range("graveyard_slots: bad rank");
  }
  return comms_[static_cast<std::size_t>(rank)]->graveyard_slots();
}

Cluster::~Cluster() = default;

gpu::Device& Cluster::device(int rank) {
  return *devices_.at(static_cast<std::size_t>(rank));
}

netsim::Endpoint& Cluster::endpoint(int rank) {
  return fabric_->endpoint(rank);
}

int Cluster::node_of(int rank) const {
  if (rank < 0 || rank >= config_.ranks) {
    throw std::out_of_range("node_of: bad rank");
  }
  return rank / static_cast<int>(config_.tunables.ranks_per_node);
}

core::TransportRouter& Cluster::router(int rank) {
  if (rank < 0 || rank >= config_.ranks) {
    throw std::out_of_range("router: bad rank");
  }
  return *routers_[static_cast<std::size_t>(rank)];
}

RankStats Cluster::rank_stats(int rank) {
  if (rank < 0 || rank >= config_.ranks) {
    throw std::out_of_range("rank_stats: bad rank");
  }
  RankStats s;
  const netsim::Endpoint& ep = fabric_->endpoint(rank);
  s.messages_sent = ep.messages_sent();
  s.rdma_writes = ep.rdma_writes();
  s.bytes_sent = ep.bytes_sent();
  s.nic_busy = ep.tx_busy_time();
  s.vbuf_high_water =
      comms_[static_cast<std::size_t>(rank)]->vbufs().high_water();
  gpu::Device& dev = *devices_[static_cast<std::size_t>(rank)];
  s.d2h_busy = dev.d2h_engine().total_busy_time();
  s.h2d_busy = dev.h2d_engine().total_busy_time();
  s.d2d_busy = dev.d2d_engine().total_busy_time();
  s.kernel_busy = dev.kernel_engine().total_busy_time();
  const core::RetryStats& retries =
      comms_[static_cast<std::size_t>(rank)]->retry_stats();
  s.retransmits = retries.total_retransmits();
  s.timeouts = retries.timeouts;
  s.stall_fallbacks = retries.stall_fallbacks;
  s.transfer_failures = retries.transfer_failures;
  s.faults_injected = ep.fault_counters().total();
  s.ipc_faults_injected = fault_stats(rank).ipc.total();
  // Everything past the router's first transport (the fabric) is an
  // in-node channel; fold its counters into the IPC aggregate.
  const auto& transports = routers_[static_cast<std::size_t>(rank)]->transports();
  for (std::size_t i = 1; i < transports.size(); ++i) {
    const core::TransportStats ts = transports[i]->stats();
    s.ipc_messages_sent += ts.messages_sent;
    s.ipc_copies += ts.rdma_writes + ts.rdma_reads;
    s.ipc_bytes_sent += ts.bytes_sent;
    s.ipc_busy += ts.busy_time;
  }
  s.sched = comms_[static_cast<std::size_t>(rank)]->sched_stats();
  return s;
}

void Cluster::print_stats(std::ostream& os) {
  os << "\n== cluster utilisation (elapsed " << sim::format_time(elapsed())
     << ") ==\n"
     << "rank   msgs    rdma   MB-sent  nic-busy    d2h-busy    h2d-busy    "
        "d2d-busy    kern-busy  vbuf-hw\n";
  for (int r = 0; r < config_.ranks; ++r) {
    const RankStats s = rank_stats(r);
    char line[256];
    std::snprintf(line, sizeof(line),
                  "%4d %6llu %7llu %9.2f %9.2fms %10.2fms %10.2fms %10.2fms "
                  "%11.2fms %8zu\n",
                  r, static_cast<unsigned long long>(s.messages_sent),
                  static_cast<unsigned long long>(s.rdma_writes),
                  static_cast<double>(s.bytes_sent) / 1e6,
                  sim::to_ms(s.nic_busy), sim::to_ms(s.d2h_busy),
                  sim::to_ms(s.h2d_busy), sim::to_ms(s.d2d_busy),
                  sim::to_ms(s.kernel_busy), s.vbuf_high_water);
    os << line;
  }
  // Inter-switch link occupancy. Only the fat-tree topology has shared
  // links, so every crossbar run (the default) prints exactly as before.
  const std::vector<netsim::LinkStats> links = fabric_->link_stats();
  if (!links.empty()) {
    const netsim::FabricTopology& topo = fabric_->topology();
    const bool dragonfly =
        topo.kind == netsim::FabricTopology::Kind::kDragonfly;
    const char* route_name =
        topo.route == netsim::RouteSelect::kHash       ? "hash"
        : topo.route == netsim::RouteSelect::kAdaptive ? "adaptive"
                                                       : "dmodk";
    // New congestion columns only render when their feature is on, so the
    // default fat-tree output (pinned by the bench baselines) is unchanged.
    const bool show_route =
        dragonfly || topo.route != netsim::RouteSelect::kDmodK;
    const bool show_ecn = fabric_->ecn_threshold() > 0;
    char head[160];
    if (dragonfly) {
      std::snprintf(head, sizeof(head),
                    "fabric links (dragonfly: %d ranks/group, route %s)\n",
                    topo.leaf_ports, route_name);
    } else if (show_route) {
      std::snprintf(head, sizeof(head),
                    "fabric links (fat-tree: %d ports/leaf, %d uplinks/leaf, "
                    "oversubscription %.1f:1, route %s)\n",
                    topo.leaf_ports, topo.uplinks(), topo.oversubscription,
                    route_name);
    } else {
      std::snprintf(head, sizeof(head),
                    "fabric links (fat-tree: %d ports/leaf, %d uplinks/leaf, "
                    "oversubscription %.1f:1)\n",
                    topo.leaf_ports, topo.uplinks(), topo.oversubscription);
    }
    os << head;
    std::vector<const netsim::LinkStats*> active;
    for (const netsim::LinkStats& l : links) {
      if (l.ops > 0) active.push_back(&l);
    }
    std::sort(active.begin(), active.end(),
              [](const netsim::LinkStats* a, const netsim::LinkStats* b) {
                if (a->busy_total != b->busy_total) {
                  return a->busy_total > b->busy_total;
                }
                if (a->up != b->up) return a->up;
                if (a->leaf != b->leaf) return a->leaf < b->leaf;
                return a->index < b->index;
              });
    os << "link              ops  contended   MB-crossed      busy  "
          "wait-total  peak-backlog";
    if (show_ecn) os << "  ecn-marks";
    os << "\n";
    constexpr std::size_t kMaxLinkRows = 16;  // busiest first; rest summed
    netsim::LinkStats tot;
    for (std::size_t i = 0; i < active.size(); ++i) {
      const netsim::LinkStats& l = *active[i];
      tot.ops += l.ops;
      tot.contended_ops += l.contended_ops;
      tot.bytes += l.bytes;
      tot.busy_total += l.busy_total;
      tot.wait_total += l.wait_total;
      tot.ecn_marks += l.ecn_marks;
      if (l.peak_backlog > tot.peak_backlog) tot.peak_backlog = l.peak_backlog;
      if (i >= kMaxLinkRows) continue;
      char label[24];
      if (dragonfly) {
        std::snprintf(label, sizeof(label), "grp%03d->grp%03d", l.leaf,
                      l.index);
      } else {
        std::snprintf(label, sizeof(label), "leaf%03d.%s%-3d", l.leaf,
                      l.up ? "up" : "dn", l.index);
      }
      char line[200];
      std::snprintf(line, sizeof(line),
                    "%s %8llu %10llu %12.2f %7.2fms %8.2fms "
                    "%11.2fms",
                    label, static_cast<unsigned long long>(l.ops),
                    static_cast<unsigned long long>(l.contended_ops),
                    static_cast<double>(l.bytes) / 1e6,
                    sim::to_ms(l.busy_total), sim::to_ms(l.wait_total),
                    sim::to_ms(l.peak_backlog));
      os << line;
      if (show_ecn) {
        char e[32];
        std::snprintf(e, sizeof(e), " %9llu",
                      static_cast<unsigned long long>(l.ecn_marks));
        os << e;
      }
      os << "\n";
    }
    char totline[200];
    std::snprintf(totline, sizeof(totline),
                  "all %zu links     %8llu %10llu %12.2f %7.2fms %8.2fms "
                  "%11.2fms",
                  active.size(), static_cast<unsigned long long>(tot.ops),
                  static_cast<unsigned long long>(tot.contended_ops),
                  static_cast<double>(tot.bytes) / 1e6,
                  sim::to_ms(tot.busy_total), sim::to_ms(tot.wait_total),
                  sim::to_ms(tot.peak_backlog));
    os << totline;
    if (show_ecn) {
      char e[32];
      std::snprintf(e, sizeof(e), " %9llu",
                    static_cast<unsigned long long>(tot.ecn_marks));
      os << e;
    }
    os << "\n";
  }
  // Per-transport traffic split, shown only when some rank actually has
  // more than one wire path (so the default topology's output is unchanged).
  bool any_ipc = false;
  for (int r = 0; r < config_.ranks; ++r) {
    if (routers_[static_cast<std::size_t>(r)]->transports().size() > 1) {
      any_ipc = true;
      break;
    }
  }
  if (any_ipc) {
    os << "rank  transport    msgs   copies   MB-moved      busy\n";
    for (int r = 0; r < config_.ranks; ++r) {
      for (const core::Transport* t :
           routers_[static_cast<std::size_t>(r)]->transports()) {
        const core::TransportStats ts = t->stats();
        char line[160];
        std::snprintf(line, sizeof(line),
                      "%4d  %-9s %7llu %8llu %10.2f %7.2fms\n", r, t->name(),
                      static_cast<unsigned long long>(ts.messages_sent),
                      static_cast<unsigned long long>(ts.rdma_writes +
                                                      ts.rdma_reads),
                      static_cast<double>(ts.bytes_sent) / 1e6,
                      sim::to_ms(ts.busy_time));
        os << line;
      }
    }
  }
  // Collective-operation census, aggregated over ranks: shown next to the
  // per-transport split (same gate), since it explains where the IPC-side
  // traffic above comes from.
  if (any_ipc) {
    detail::CollStats agg;
    auto add = [](detail::CollOpStats& a, const detail::CollOpStats& b) {
      a.calls += b.calls;
      a.hier_calls += b.hier_calls;
      a.bytes_sent += b.bytes_sent;
      a.intra_phases += b.intra_phases;
      a.leader_phases += b.leader_phases;
    };
    for (int r = 0; r < config_.ranks; ++r) {
      const detail::CollStats& cs = coll_stats(r);
      add(agg.barrier, cs.barrier);
      add(agg.bcast, cs.bcast);
      add(agg.allreduce, cs.allreduce);
      add(agg.allgather, cs.allgather);
      add(agg.alltoall, cs.alltoall);
      add(agg.gather, cs.gather);
      add(agg.scatter, cs.scatter);
    }
    if (agg.total_calls() > 0) {
      os << "collective   calls    hier   MB-sent  intra-ph  leader-ph\n";
      const std::pair<const char*, const detail::CollOpStats*> rows[] = {
          {"barrier", &agg.barrier},     {"bcast", &agg.bcast},
          {"allreduce", &agg.allreduce}, {"allgather", &agg.allgather},
          {"alltoall", &agg.alltoall},   {"gather", &agg.gather},
          {"scatter", &agg.scatter},
      };
      for (const auto& [name, op] : rows) {
        if (op->calls == 0) continue;
        char line[160];
        std::snprintf(line, sizeof(line),
                      "%-10s %7llu %7llu %9.2f %9llu %10llu\n", name,
                      static_cast<unsigned long long>(op->calls),
                      static_cast<unsigned long long>(op->hier_calls),
                      static_cast<double>(op->bytes_sent) / 1e6,
                      static_cast<unsigned long long>(op->intra_phases),
                      static_cast<unsigned long long>(op->leader_phases));
        os << line;
      }
    }
  }
  // Device-collective table: the device-buffer paths (coll_device tunable,
  // docs/COLLECTIVES.md) only differ from the host engine when the knob is
  // moved off its staged default, so the gate keeps default-mode output
  // byte-identical.
  if (config_.tunables.coll_device != core::CollDevice::kStaged) {
    detail::CollStats agg;
    auto add_dev = [](detail::CollOpStats& a, const detail::CollOpStats& b) {
      a.device_calls += b.device_calls;
      a.device_pipelined += b.device_pipelined;
      a.device_slices += b.device_slices;
      a.bytes_staged += b.bytes_staged;
      a.bytes_peer += b.bytes_peer;
      a.reduce_kernels += b.reduce_kernels;
      a.device_stage_ns += b.device_stage_ns;
      a.device_elapsed_ns += b.device_elapsed_ns;
    };
    for (int r = 0; r < config_.ranks; ++r) {
      const detail::CollStats& cs = coll_stats(r);
      add_dev(agg.bcast, cs.bcast);
      add_dev(agg.allreduce, cs.allreduce);
      add_dev(agg.allgather, cs.allgather);
      add_dev(agg.alltoall, cs.alltoall);
    }
    const detail::CollOpStats* devs[] = {&agg.bcast, &agg.allreduce,
                                         &agg.allgather, &agg.alltoall};
    bool any_device = false;
    for (const detail::CollOpStats* op : devs) {
      if (op->device_calls > 0) any_device = true;
    }
    if (any_device) {
      os << "device-coll  calls  pipelined  slices  MB-staged  MB-peer  "
            "reduce-k  overlap\n";
      const std::pair<const char*, const detail::CollOpStats*> rows[] = {
          {"bcast", &agg.bcast},
          {"allreduce", &agg.allreduce},
          {"allgather", &agg.allgather},
          {"alltoall", &agg.alltoall},
      };
      for (const auto& [name, op] : rows) {
        if (op->device_calls == 0) continue;
        char line[160];
        std::snprintf(line, sizeof(line),
                      "%-10s %7llu %8llu %9llu %10.2f %8.2f %9llu %8.2f\n",
                      name,
                      static_cast<unsigned long long>(op->device_calls),
                      static_cast<unsigned long long>(op->device_pipelined),
                      static_cast<unsigned long long>(op->device_slices),
                      static_cast<double>(op->bytes_staged) / 1e6,
                      static_cast<double>(op->bytes_peer) / 1e6,
                      static_cast<unsigned long long>(op->reduce_kernels),
                      op->overlap_ratio());
        os << line;
      }
    }
  }
  bool any_faults = false;
  for (int r = 0; r < config_.ranks; ++r) {
    const RankStats s = rank_stats(r);
    if (s.faults_injected + s.retransmits + s.timeouts + s.stall_fallbacks +
            s.transfer_failures >
        0) {
      any_faults = true;
      break;
    }
  }
  if (any_faults) {
    os << "rank  faults    retx  timeouts  stalls  failures\n";
    for (int r = 0; r < config_.ranks; ++r) {
      const RankStats s = rank_stats(r);
      char line[160];
      std::snprintf(line, sizeof(line), "%4d %7llu %7llu %9llu %7llu %9llu\n",
                    r, static_cast<unsigned long long>(s.faults_injected),
                    static_cast<unsigned long long>(s.retransmits),
                    static_cast<unsigned long long>(s.timeouts),
                    static_cast<unsigned long long>(s.stall_fallbacks),
                    static_cast<unsigned long long>(s.transfer_failures));
      os << line;
    }
  }
  // IPC fault + transport failover table: shown only when the in-node
  // channel actually injected faults or the router's health tracker acted,
  // so every fault-free (and failover-disabled) run prints exactly as
  // before.
  bool any_ipc_faults = false;
  for (int r = 0; r < config_.ranks; ++r) {
    const auto& health = routers_[static_cast<std::size_t>(r)]->peer_health();
    std::uint64_t actions = 0;
    for (const auto& [peer, h] : health) {
      actions += h.demotions + h.restores + (h.demoted ? 1 : 0);
    }
    if (fault_stats(r).ipc.total() + actions > 0) {
      any_ipc_faults = true;
      break;
    }
  }
  if (any_ipc_faults) {
    os << "rank  ipc-faults  demotions  restores  demoted-now\n";
    for (int r = 0; r < config_.ranks; ++r) {
      std::uint64_t demotions = 0;
      std::uint64_t restores = 0;
      std::uint64_t demoted_now = 0;
      const auto& health =
          routers_[static_cast<std::size_t>(r)]->peer_health();
      for (const auto& [peer, h] : health) {
        demotions += h.demotions;
        restores += h.restores;
        if (h.demoted) ++demoted_now;
      }
      char line[160];
      std::snprintf(line, sizeof(line), "%4d %11llu %10llu %9llu %12llu\n",
                    r,
                    static_cast<unsigned long long>(fault_stats(r).ipc.total()),
                    static_cast<unsigned long long>(demotions),
                    static_cast<unsigned long long>(restores),
                    static_cast<unsigned long long>(demoted_now));
      os << line;
    }
  }
  bool any_sched = false;
  for (int r = 0; r < config_.ranks; ++r) {
    const core::SchedStats& ss = sched_stats(r);
    if (ss.grants_reserve + ss.grants_overflow + ss.denials +
            ss.acks_individual + ss.acks_coalesced + ss.ecn_marks >
        0) {
      any_sched = true;
      break;
    }
  }
  if (any_sched) {
    // ECN columns render only when marking is armed, keeping every
    // ECN-off run (all the pinned baselines) byte-identical.
    const bool show_ecn = config_.tunables.ecn_backlog_ns > 0;
    os << "rank  act-hw  grants(res/ovf)  denials  q-waits  avg-qwait  "
          "depth(-/+)  ack-ind  ack-coal  batches  piggyb  coal%";
    if (show_ecn) os << "  ecn-marks  ecn-depth(-/+)";
    os << "\n";
    for (int r = 0; r < config_.ranks; ++r) {
      const core::SchedStats& ss = sched_stats(r);
      char line[256];
      std::snprintf(
          line, sizeof(line),
          "%4d %7zu %8llu/%-8llu %7llu %8llu %8.1fus %5llu/%-5llu %8llu "
          "%9llu %8llu %7llu %5.1f",
          r, ss.active_high_water,
          static_cast<unsigned long long>(ss.grants_reserve),
          static_cast<unsigned long long>(ss.grants_overflow),
          static_cast<unsigned long long>(ss.denials),
          static_cast<unsigned long long>(ss.queue_waits),
          static_cast<double>(ss.avg_queue_wait_ns()) / 1e3,
          static_cast<unsigned long long>(ss.depth_shrinks),
          static_cast<unsigned long long>(ss.depth_grows),
          static_cast<unsigned long long>(ss.acks_individual),
          static_cast<unsigned long long>(ss.acks_coalesced),
          static_cast<unsigned long long>(ss.ack_batches),
          static_cast<unsigned long long>(ss.ack_piggybacks),
          100.0 * ss.coalesce_ratio());
      os << line;
      if (show_ecn) {
        char e[48];
        std::snprintf(e, sizeof(e), " %9llu %9llu/%-5llu",
                      static_cast<unsigned long long>(ss.ecn_marks),
                      static_cast<unsigned long long>(ss.depth_shrinks_ecn),
                      static_cast<unsigned long long>(ss.depth_grows_ecn));
        os << e;
      }
      os << "\n";
    }
    // Outgoing control-message census by wire kind.
    os << "rank   rts    cts    fin    ack   ackb   done  sdone  other  "
          "ctrl-total\n";
    for (int r = 0; r < config_.ranks; ++r) {
      const core::SchedStats& ss = sched_stats(r);
      const std::uint64_t named =
          ss.ctrl_by_kind[core::kRts] + ss.ctrl_by_kind[core::kCts] +
          ss.ctrl_by_kind[core::kChunkFin] + ss.ctrl_by_kind[core::kChunkAck] +
          ss.ctrl_by_kind[core::kChunkAckBatch] +
          ss.ctrl_by_kind[core::kRndvDone] + ss.ctrl_by_kind[core::kSendDone];
      char line[224];
      std::snprintf(
          line, sizeof(line),
          "%4d %5llu %6llu %6llu %6llu %6llu %6llu %6llu %6llu %11llu\n", r,
          static_cast<unsigned long long>(ss.ctrl_by_kind[core::kRts]),
          static_cast<unsigned long long>(ss.ctrl_by_kind[core::kCts]),
          static_cast<unsigned long long>(ss.ctrl_by_kind[core::kChunkFin]),
          static_cast<unsigned long long>(ss.ctrl_by_kind[core::kChunkAck]),
          static_cast<unsigned long long>(
              ss.ctrl_by_kind[core::kChunkAckBatch]),
          static_cast<unsigned long long>(ss.ctrl_by_kind[core::kRndvDone]),
          static_cast<unsigned long long>(ss.ctrl_by_kind[core::kSendDone]),
          static_cast<unsigned long long>(ss.ctrl_total() - named),
          static_cast<unsigned long long>(ss.ctrl_total()));
      os << line;
    }
  }
  // Trigger-graph / stream / persistent counters render only when one of
  // the stream-rendezvous knobs left its default, keeping every default
  // run (all the pinned baselines) byte-identical.
  const bool show_trig =
      config_.tunables.trigger_mode != core::TriggerMode::kPolled ||
      config_.tunables.persistent_plan_cache;
  if (show_trig) {
    os << "rank  graphs  fired  stream-ops  s-sends  s-recvs  p-starts  "
          "plan-hits\n";
    for (int r = 0; r < config_.ranks; ++r) {
      const core::TriggerStats& ts = trigger_stats(r);
      char line[160];
      std::snprintf(line, sizeof(line),
                    "%4d %7llu %6llu %11llu %8llu %8llu %9llu %10llu\n", r,
                    static_cast<unsigned long long>(ts.graphs_built),
                    static_cast<unsigned long long>(ts.triggers_fired),
                    static_cast<unsigned long long>(ts.stream_ops),
                    static_cast<unsigned long long>(ts.stream_sends),
                    static_cast<unsigned long long>(ts.stream_recvs),
                    static_cast<unsigned long long>(ts.persistent_starts),
                    static_cast<unsigned long long>(ts.plan_cache_hits));
      os << line;
    }
  }
  const core::PlanCacheStats pc = plan_cache_stats();
  if (pc.lookups() > 0) {
    char line[200];
    std::snprintf(line, sizeof(line),
                  "pack-plan cache (process-wide): %llu lookups, %.1f%% hits "
                  "(%llu built, %llu deduped, %llu evicted)\n",
                  static_cast<unsigned long long>(pc.lookups()),
                  100.0 * pc.hit_rate(),
                  static_cast<unsigned long long>(pc.misses),
                  static_cast<unsigned long long>(pc.signature_dedups),
                  static_cast<unsigned long long>(pc.evictions));
    os << line;
  }
}

core::PlanCacheStats Cluster::plan_cache_stats() {
  return core::PlanCache::instance().stats();
}

void Cluster::run(std::function<void(Context&)> body) {
  if (ran_) {
    throw std::logic_error(
        "Cluster::run is one-shot; construct a fresh Cluster per run");
  }
  ran_ = true;
  auto contexts = std::make_shared<std::vector<Context>>();
  contexts->resize(static_cast<std::size_t>(config_.ranks));
  for (int r = 0; r < config_.ranks; ++r) {
    Context& ctx = (*contexts)[static_cast<std::size_t>(r)];
    ctx.rank = r;
    ctx.size = config_.ranks;
    ctx.comm = Communicator(comms_[static_cast<std::size_t>(r)].get());
    ctx.cuda = cuda_[static_cast<std::size_t>(r)].get();
    ctx.engine = &engine_;
    ctx.trace = &trace_;
    ctx.tunables = &config_.tunables;
    detail::RankComm* comm = comms_[static_cast<std::size_t>(r)].get();
    engine_.spawn("rank" + std::to_string(r),
                  [this, &ctx, body, contexts, comm] {
      // Seeded startup skew: each rank enters the body at an independent
      // random offset in [0, rank_skew_ns], modelling the launch jitter of
      // a real job. Off (0) by default so fault-free runs are unchanged.
      const sim::SimTime skew = config_.tunables.rank_skew_ns;
      if (skew > 0) {
        engine_.delay(static_cast<sim::SimTime>(
            engine_.rand_below(static_cast<std::uint64_t>(skew) + 1)));
      }
      try {
        body(ctx);
        // MPI_Finalize analogue: the rank may still owe protocol work (a
        // draining receiver waiting on SEND_DONE, retransmissions,
        // coalesced acks). Keep servicing progress until it quiesces —
        // once this thread exits, nobody pumps the recovery timers any
        // more.
        comm->drain_pending();
      } catch (const detail::RankCrashed&) {
        // Crash-stop injection (ClusterConfig::crash_at): the rank
        // vanishes silently — no drain, no error. Its peers resolve the
        // loss through retry budgets, force-drain watchdogs and the
        // collective abort protocol.
      }
    });
  }
  engine_.run();
}

}  // namespace mv2gnc::mpisim
