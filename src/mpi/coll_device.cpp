// Device-buffer collectives (docs/COLLECTIVES.md, "Device-resident
// buffers"): the CollEngine paths that engage when allreduce / allgather /
// bcast arguments live in registered device memory.
//
// Two schedules per operation, selected by the coll_device tunable:
//
//   staged     synchronous full-size D2H, the host wire algorithm on a
//              staged copy, synchronous full-size H2D. Zero overlap — the
//              baseline the paper improves on — but it prices the PCIe legs
//              the legacy host-only engine silently skipped.
//   pipelined  the vector is cut into slices; slice k's D2H (coll_d2h_
//              stream) overlaps slice k-1's wire leg, whose folds run as
//              device reduction kernels (coll_red_), while slice k-2's
//              write-back drains on coll_h2d_. Sequencing uses the stream
//              primitives: record_event data gates let the RTS of a slice's
//              first send leave while its D2H is still in flight
//              (trigger_mode = stream), stream_wait_flag holds the
//              pre-enqueued write-back until the wire leg lands, and a
//              launch_host_trigger marks the drain of the pipeline. Under
//              trigger_mode = polled the same schedule synchronizes
//              point-wise and is byte-identical.
//
// At rpn > 1 the two-level pipelined allreduce keeps the intra-node
// reduce-scatter / allgather rings entirely device-resident: co-located
// ranks exchange device pointers, which the IPC transport peer-copies
// (device_direct()) without a host bounce; only the owned 1/n stripe
// crosses PCIe for the inter-node butterfly. The two-level bcast lands each
// slice on the leader's device and fans it out over the same peer path.
//
// Residency contract: the pipelined schedules assume residency is uniform
// across the group (all ranks device or all host) — mixed residency per
// rank falls back to the staged schedule, whose wire leg interoperates with
// the host path. After an aborted pipelined collective the destination
// device buffer may still be written by an already-enqueued write-back
// (result of a failed collective is undefined); like any buffer handed to a
// collective, it must stay live until the communicator drains.
#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>

#include "mpi/coll.hpp"

namespace mv2gnc::mpisim::detail {

namespace {

// Tag families of the device pipelines, below the host families (which end
// at -11 * span; see coll.cpp). Per-slice offsets are slice * kDevStride +
// round, so pick_slice_bytes caps the slice count at kMaxDevSlices to keep
// every offset inside one span.
constexpr int kTagSpan = 1 << 16;
constexpr int kDevStride = 64;
constexpr int kMaxDevSlices = 512;
constexpr int kTagDevArRd = -12 * kTagSpan;    // - (slice*stride + round)
constexpr int kTagDevArPair = -13 * kTagSpan;  // - (slice*2 + phase)
constexpr int kTagDevBcast = -14 * kTagSpan;        // flat binomial: - slice
constexpr int kTagDevBcastLeader = -15 * kTagSpan;  // leader leg: - slice
constexpr int kTagDevBcastIntra = -16 * kTagSpan;   // intra leg: - slice
constexpr int kTagDevArRs = -17 * kTagSpan;  // device reduce-scatter: - step
constexpr int kTagDevArAg = -18 * kTagSpan;  // device slice allgather: - step
constexpr int kTagDevAgBlock = -19 * kTagSpan;  // mirror ring: - block owner

Datatype committed_byte() {
  Datatype t = Datatype::byte();
  t.commit();
  return t;
}

Datatype committed_double() {
  Datatype t = Datatype::float64();
  t.commit();
  return t;
}

int index_of(const std::vector<int>& v, int value) {
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (v[i] == value) return static_cast<int>(i);
  }
  return -1;
}

std::vector<int> identity_ranks(int p) {
  std::vector<int> r(static_cast<std::size_t>(p));
  std::iota(r.begin(), r.end(), 0);
  return r;
}

int uniform_node_size(const std::vector<std::vector<int>>& members) {
  const std::size_t n = members.front().size();
  for (const std::vector<int>& m : members) {
    if (m.size() != n) return 0;
  }
  return static_cast<int>(n);
}

void reduce_into(double* acc, const double* in, int count, bool take_max) {
  for (int i = 0; i < count; ++i) {
    acc[i] = take_max ? std::max(acc[i], in[i]) : acc[i] + in[i];
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// Shared machinery
// ---------------------------------------------------------------------------

bool CollEngine::device_buffer(const void* p) const {
  return p != nullptr && comm_.memory_registry().is_device_pointer(p);
}

void CollEngine::ensure_coll_streams() {
  if (coll_streams_ready_) return;
  cusim::CudaContext& ctx = comm_.cuda();
  coll_d2h_ = ctx.create_stream();
  coll_h2d_ = ctx.create_stream();
  coll_red_ = ctx.create_stream();
  coll_streams_ready_ = true;
}

// Abort-safe staging slot: tracked in coll_slots_ for the lifetime of the
// running collective, so an aborted pipeline parks it in the slot graveyard
// (a stale slice delivery or a still-queued copy may reference it) and
// normal completion returns it to the pool. Pool-sized requests that find
// the pool empty fall back to a one-off pinned allocation rather than
// stalling the collective.
core::detail::StagingSlot* CollEngine::slot_scratch(std::size_t bytes) {
  auto s = std::make_unique<core::detail::StagingSlot>(
      core::detail::acquire_slot(comm_.vbufs(), comm_.cuda(), bytes));
  if (!s->valid()) *s = core::detail::pinned_slot(comm_.cuda(), bytes);
  core::detail::StagingSlot* p = s.get();
  coll_slots_.push_back(std::move(s));
  return p;
}

void CollEngine::settle_coll_slots(bool aborted) {
  for (auto& s : coll_slots_) {
    if (aborted) {
      comm_.park_slot(std::move(*s));
    } else {
      core::detail::release_slot(comm_.vbufs(), *s);
    }
  }
  coll_slots_.clear();
}

double* CollEngine::device_scratch(std::size_t n) {
  cusim::CudaContext& ctx = comm_.cuda();
  void* p = ctx.malloc(n * sizeof(double));
  scratch_.push_back(
      std::shared_ptr<void>(p, [c = &ctx](void* q) { c->free(q); }));
  return static_cast<double*>(p);
}

void CollEngine::device_fold(CollOpStats& op, double* acc, const double* in,
                             int n, bool take_max) {
  ensure_coll_streams();
  cusim::CudaContext& ctx = comm_.cuda();
  const std::size_t bytes = sizeof(double) * static_cast<std::size_t>(n);
  ctx.launch_device_reduce(coll_red_, bytes, [acc, in, n, take_max] {
    reduce_into(acc, in, n, take_max);
  });
  cusim::Event done = ctx.record_event(coll_red_);
  done.synchronize();
  ++op.reduce_kernels;
}

std::size_t CollEngine::pick_slice_bytes(std::size_t total, int p) const {
  std::size_t s = comm_.tunables().coll_slice_bytes;
  if (s == 0) {
    // Model pick: minimize slices * wire-leg + fill/drain over power-of-two
    // candidates. The wire legs serialize on the calling fiber, so they sum;
    // the PCIe legs hide behind them except the first D2H and last H2D. A
    // slice's Rabenseifner leg moves 2(1-1/p) wire bytes and folds (1-1/p),
    // but each of its 2 log2 p exchanges also pays the rendezvous protocol
    // (handshake round trips plus staging launches) — the term that pushes
    // the pick toward few large slices on a high-latency fabric.
    const double pcie = hints_.pcie_bw();
    const double pd = std::max(static_cast<double>(p), 2.0);
    const double rounds = std::ceil(std::log2(pd));
    const double frac = 1.0 - 1.0 / pd;
    const double proto =
        4.0 * static_cast<double>(hints_.fabric_latency_ns) +
        2.0 * static_cast<double>(hints_.copy_launch_ns);
    double best = std::numeric_limits<double>::infinity();
    std::size_t pick = 64 * 1024;
    for (std::size_t c = 16 * 1024; c <= (std::size_t{4} << 20); c <<= 1) {
      const double cd = static_cast<double>(c);
      const double slices =
          std::ceil(static_cast<double>(total) / cd);
      const double copy = static_cast<double>(hints_.copy_launch_ns) +
                          cd / pcie;
      const double wire =
          2.0 * rounds * proto + 2.0 * frac * cd / hints_.fabric_bw +
          rounds * static_cast<double>(hints_.kernel_launch_ns) +
          frac * cd / hints_.reduce_bw;
      const double cost = slices * wire + 2.0 * copy;
      if (cost < best) {
        best = cost;
        pick = c;
      }
    }
    s = pick;
  }
  if (s < sizeof(double)) s = sizeof(double);
  s = (s + 7) & ~std::size_t{7};
  // Per-slice tag offsets must stay inside one tag span.
  while ((total + s - 1) / s > static_cast<std::size_t>(kMaxDevSlices)) {
    s <<= 1;
  }
  return s;
}

bool CollEngine::device_pipeline_wins(std::size_t bytes, int p) const {
  if (p <= 1) return false;
  const double pcie = hints_.pcie_bw();
  const double launch = static_cast<double>(hints_.copy_launch_ns);
  const double rounds = std::ceil(std::log2(static_cast<double>(p)));
  const double frac = 1.0 - 1.0 / static_cast<double>(p);
  const double proto = 4.0 * static_cast<double>(hints_.fabric_latency_ns) +
                       2.0 * launch;
  // Staged rides the host butterfly (log2 p full-size exchanges, free host
  // folds) behind two exposed full-size PCIe copies; the pipeline's slices
  // ride Rabenseifner legs with on-device folds, PCIe hidden except at the
  // pipeline's ends. Same sketch as pick_slice_bytes, rank-invariant.
  const double bd = static_cast<double>(bytes);
  const double staged =
      2.0 * (launch + bd / pcie) + rounds * (proto + bd / hints_.fabric_bw);
  const std::size_t sb = pick_slice_bytes(bytes, p);
  const double sd = static_cast<double>(sb);
  const double slices = std::ceil(bd / sd);
  const double wire =
      2.0 * rounds * proto + 2.0 * frac * sd / hints_.fabric_bw +
      rounds * static_cast<double>(hints_.kernel_launch_ns) +
      frac * sd / hints_.reduce_bw;
  const double pipe = slices * wire + 2.0 * (launch + sd / pcie);
  return pipe < staged;
}

// ---------------------------------------------------------------------------
// Sliced allreduce pipeline
// ---------------------------------------------------------------------------

void CollEngine::device_slice_wire(CollOpStats& op, const CommGroup& g,
                                   const std::vector<int>& ranks, int me,
                                   double* data, int count, bool take_max,
                                   int slice, cusim::Event* gate) {
  static const Datatype double_t = committed_double();
  const int p = static_cast<int>(ranks.size());
  if (p <= 1) return;
  auto world_of = [&](int idx) {
    return g.world[static_cast<std::size_t>(
        ranks[static_cast<std::size_t>(idx)])];
  };
  double* tmp = scratch<double>(static_cast<std::size_t>(count));
  int pof2 = 1;
  while (pof2 * 2 <= p) pof2 *= 2;
  const int rem = p - pof2;
  // The slice's D2H gate rides the first send's data stages (the RTS still
  // leaves immediately); any fold that writes the slot before a send
  // consumed the gate must synchronize it explicitly.
  bool gate_pending = gate != nullptr;
  auto gated_send = [&](const double* buf, int cnt, int dst, int tag) {
    op.bytes_sent += sizeof(double) * static_cast<std::size_t>(cnt);
    Request r;
    if (gate_pending) {
      XferOpts opts;
      opts.data_gate = *gate;
      r = comm_.isend(buf, cnt, double_t, dst, tag, g.context, opts);
      gate_pending = false;
    } else {
      r = comm_.isend(buf, cnt, double_t, dst, tag, g.context);
    }
    inflight_.push_back(r);
    return r;
  };
  auto fold_at = [&](int off, int cnt) {
    if (gate_pending) {
      gate->synchronize();
      gate_pending = false;
    }
    device_fold(op, data + off, tmp + off, cnt, take_max);
  };
  // Non-power-of-two pre-pairing: evens hand their whole slice to the odd
  // neighbour and rejoin after the allgather (the MPICH shape).
  const int tpair = kTagDevArPair - slice * 2;
  int newrank;
  if (me < 2 * rem) {
    if (me % 2 == 0) {
      Request s = gated_send(data, count, world_of(me + 1), tpair - 0);
      cwait(s);
      newrank = -1;
    } else {
      Request r = irecv_track(tmp, count, double_t, world_of(me - 1),
                              tpair - 0, g.context);
      cwait(r);
      fold_at(0, count);
      newrank = me / 2;
    }
  } else {
    newrank = me - rem;
  }
  if (newrank >= 0 && count < 2 * pof2) {
    // Too few elements to split into pof2 chunks: full-vector recursive
    // doubling (the short-vector shape; folds still run on-device).
    int round = 0;
    for (int mask = 1; mask < pof2; mask <<= 1, ++round) {
      const int newdst = newrank ^ mask;
      const int dst_idx = newdst < rem ? newdst * 2 + 1 : newdst + rem;
      const int dst = world_of(dst_idx);
      const int tag = kTagDevArRd - (slice * kDevStride + round);
      Request rr = irecv_track(tmp, count, double_t, dst, tag, g.context);
      Request sr = gated_send(data, count, dst, tag);
      cwait(sr);
      cwait(rr);
      fold_at(0, count);
    }
  } else if (newrank >= 0) {
    // Rabenseifner: recursive-halving reduce-scatter, then the same
    // exchanges replayed in reverse as a recursive-doubling allgather.
    // 2(1-1/p) wire bytes and (1-1/p) folded bytes per rank, against
    // log2(p) of each for the butterfly — this is where the pipeline's
    // reduction-kernel bill stays below the PCIe time it hides.
    const int q2 = count / pof2;
    const int r2 = count % pof2;
    auto cstart = [&](int i) { return i * q2 + std::min(i, r2); };
    struct HalvingRound {
      int dst;
      int half;
      bool lower;
    };
    std::vector<HalvingRound> replay;
    int wlo = 0;
    int whi = pof2;
    int round = 0;
    while (whi - wlo > 1) {
      const int half = (whi - wlo) / 2;
      const bool lower = newrank < wlo + half;
      const int partner_nr = lower ? newrank + half : newrank - half;
      const int dst_idx =
          partner_nr < rem ? partner_nr * 2 + 1 : partner_nr + rem;
      const int dst = world_of(dst_idx);
      const int keep_lo = lower ? wlo : wlo + half;
      const int keep_hi = lower ? wlo + half : whi;
      const int send_lo = lower ? wlo + half : wlo;
      const int send_hi = lower ? whi : wlo + half;
      const int koff = cstart(keep_lo);
      const int kcnt = cstart(keep_hi) - koff;
      const int soff = cstart(send_lo);
      const int scnt = cstart(send_hi) - soff;
      const int tag = kTagDevArRd - (slice * kDevStride + round);
      Request rr =
          irecv_track(tmp + koff, kcnt, double_t, dst, tag, g.context);
      Request sr = gated_send(data + soff, scnt, dst, tag);
      cwait(sr);
      cwait(rr);
      fold_at(koff, kcnt);
      replay.push_back({dst, half, lower});
      if (lower) {
        whi = wlo + half;
      } else {
        wlo = wlo + half;
      }
      ++round;
    }
    // Allgather: the owned window doubles back out; the partner of each
    // reversed round holds the mirror range, shifted by that round's half.
    int olo = wlo;
    int ohi = whi;
    for (std::size_t j = replay.size(); j-- > 0;) {
      const HalvingRound& hr = replay[j];
      const int plo = hr.lower ? olo + hr.half : olo - hr.half;
      const int phi = plo + (ohi - olo);
      const int soff = cstart(olo);
      const int scnt = cstart(ohi) - soff;
      const int roff = cstart(plo);
      const int rcnt = cstart(phi) - roff;
      const int tag = kTagDevArRd - (slice * kDevStride + round);
      Request rr =
          irecv_track(data + roff, rcnt, double_t, hr.dst, tag, g.context);
      Request sr = gated_send(data + soff, scnt, hr.dst, tag);
      cwait(sr);
      cwait(rr);
      olo = std::min(olo, plo);
      ohi = std::max(ohi, phi);
      ++round;
    }
  }
  if (me < 2 * rem) {
    if (me % 2 == 0) {
      Request r = irecv_track(data, count, double_t, world_of(me + 1),
                              tpair - 1, g.context);
      cwait(r);
    } else {
      Request s = gated_send(data, count, world_of(me - 1), tpair - 1);
      cwait(s);
    }
  }
}

void CollEngine::device_sliced_allreduce(CollOpStats& op, const CommGroup& g,
                                         const std::vector<int>& ranks,
                                         int me, double* dev, int count,
                                         bool take_max) {
  const int p = static_cast<int>(ranks.size());
  if (p <= 1 || count <= 0) return;
  ensure_coll_streams();
  cusim::CudaContext& ctx = comm_.cuda();
  sim::Engine& eng = comm_.engine();
  const bool stream_mode =
      comm_.tunables().trigger_mode == core::TriggerMode::kStream;
  const std::size_t total = sizeof(double) * static_cast<std::size_t>(count);
  const std::size_t slice_bytes = pick_slice_bytes(total, p);
  const int sc = static_cast<int>(slice_bytes / sizeof(double));
  const int S = (count + sc - 1) / sc;
  op.device_slices += static_cast<std::uint64_t>(S);

  struct SliceState {
    core::detail::StagingSlot* slot = nullptr;
    cusim::Event d2h;
    std::shared_ptr<cusim::HostFlag> h2d_release;
    int off = 0;
    int len = 0;
  };
  std::vector<SliceState> sl(static_cast<std::size_t>(S));
  // If the pipeline aborts, release every armed write-back flag on unwind:
  // a permanently blocked coll_h2d_ stream would wedge later collectives
  // and teardown. The released copies read parked scratch slots (kept live
  // precisely for this) and write the caller's recvbuf — undefined content
  // of a failed collective.
  struct FlagDrain {
    std::vector<SliceState>* sl;
    ~FlagDrain() {
      for (SliceState& s : *sl) {
        if (s.h2d_release && !s.h2d_release->is_set()) s.h2d_release->trigger();
      }
    }
  } flag_drain{&sl};

  auto post_d2h = [&](int k) {
    SliceState& s = sl[static_cast<std::size_t>(k)];
    s.off = k * sc;
    s.len = std::min(sc, count - s.off);
    const std::size_t b = sizeof(double) * static_cast<std::size_t>(s.len);
    s.slot = slot_scratch(b);
    ctx.memcpy_async(s.slot->ptr, dev + s.off, b,
                     cusim::MemcpyKind::kDeviceToHost, coll_d2h_);
    s.d2h = ctx.record_event(coll_d2h_);
    op.bytes_staged += b;
    op.device_stage_ns +=
        hints_.copy_launch_ns +
        static_cast<sim::SimTime>(static_cast<double>(b) / hints_.d2h_bw);
    if (stream_mode) {
      // A send gated on s.d2h is re-driven by the progress loop, not by
      // the event completing — wake the loop the moment the copy drains,
      // or the gated send sleeps until its retry timer (and charges a
      // spurious timeout).
      ctx.launch_host_trigger(coll_d2h_, [this] { comm_.wake_progress(); });
      // Pre-enqueue the write-back in stream order behind a wait flag; the
      // wire leg's completion releases it (cuStreamWaitValue idiom).
      s.h2d_release = std::make_shared<cusim::HostFlag>();
      ctx.stream_wait_flag(coll_h2d_, s.h2d_release);
      ctx.memcpy_async(dev + s.off, s.slot->ptr, b,
                       cusim::MemcpyKind::kHostToDevice, coll_h2d_);
    }
  };

  constexpr int kPrefetch = 2;  // D2H slices posted ahead of the wire leg
  int posted = 0;
  for (int k = 0; k < S; ++k) {
    while (posted < S && posted <= k + kPrefetch) post_d2h(posted++);
    SliceState& s = sl[static_cast<std::size_t>(k)];
    double* host = reinterpret_cast<double*>(s.slot->ptr);
    const std::size_t b = sizeof(double) * static_cast<std::size_t>(s.len);
    const sim::SimTime wire_t0 = eng.now();
    if (stream_mode) {
      cusim::Event data_gate = s.d2h;
      device_slice_wire(op, g, ranks, me, host, s.len, take_max, k, &data_gate);
      // Degenerate butterflies may not have consumed the gate; the
      // write-back below must still see the D2H drained.
      if (!s.d2h.query()) s.d2h.synchronize();
      s.h2d_release->trigger();
    } else {
      s.d2h.synchronize();
      device_slice_wire(op, g, ranks, me, host, s.len, take_max, k, nullptr);
      ctx.memcpy_async(dev + s.off, host, b,
                       cusim::MemcpyKind::kHostToDevice, coll_h2d_);
    }
    op.device_stage_ns += eng.now() - wire_t0;
    op.device_stage_ns +=
        hints_.copy_launch_ns +
        static_cast<sim::SimTime>(static_cast<double>(b) / hints_.h2d_bw);
    op.bytes_staged += b;
  }
  // Drain the write-back leg: the host trigger fires in scheduler context
  // the instant the stream empties and releases the waiting fiber.
  sim::EventFlag drained(eng);
  ctx.launch_host_trigger(coll_h2d_, [&drained] { drained.trigger(); });
  drained.wait("coll_device_drain");
}

void CollEngine::device_allreduce(CollOpStats& op, const double* sendbuf,
                                  double* recvbuf, int count, bool take_max,
                                  const CommGroup& g) {
  cusim::CudaContext& ctx = comm_.cuda();
  const core::Tunables& tun = comm_.tunables();
  sim::Engine& eng = comm_.engine();
  const sim::SimTime t0 = eng.now();
  const std::size_t bytes = sizeof(double) * static_cast<std::size_t>(count);
  ++op.device_calls;

  const bool both_dev = device_buffer(sendbuf) && device_buffer(recvbuf);
  bool pipelined = false;
  switch (tun.coll_device) {
    case core::CollDevice::kStaged: break;
    case core::CollDevice::kPipelined: pipelined = both_dev; break;
    case core::CollDevice::kAuto:
      pipelined =
          both_dev && tun.gpu_offload && device_pipeline_wins(bytes, g.size());
      break;
  }

  if (g.size() == 1 || count == 0) {
    if (count > 0 && sendbuf != recvbuf) ctx.memcpy(recvbuf, sendbuf, bytes);
    const sim::SimTime dt = eng.now() - t0;
    op.device_stage_ns += dt;
    op.device_elapsed_ns += dt;
    return;
  }

  if (!pipelined) {
    // Legacy staged schedule: full-size D2H, host butterfly, full-size H2D,
    // fully serialized (this is the baseline bench_coll_device beats).
    double* host = scratch<double>(static_cast<std::size_t>(count));
    if (device_buffer(sendbuf)) {
      ctx.memcpy(host, sendbuf, bytes);
      op.bytes_staged += bytes;
    } else {
      std::memcpy(host, sendbuf, bytes);
    }
    allreduce_wire(op, host, count, take_max, g);
    if (device_buffer(recvbuf)) {
      ctx.memcpy(recvbuf, host, bytes);
      op.bytes_staged += bytes;
    } else {
      std::memcpy(recvbuf, host, bytes);
    }
    const sim::SimTime dt = eng.now() - t0;
    op.device_stage_ns += dt;
    op.device_elapsed_ns += dt;
    return;
  }

  ++op.device_pipelined;
  ensure_coll_streams();
  // Seed the on-device accumulator.
  if (sendbuf != recvbuf) {
    const sim::SimTime seed_t0 = eng.now();
    ctx.memcpy_async(recvbuf, sendbuf, bytes,
                     cusim::MemcpyKind::kDeviceToDevice, coll_red_);
    ctx.record_event(coll_red_).synchronize();
    op.device_stage_ns += eng.now() - seed_t0;
  }
  const Topology t = map_nodes(g);
  const int uniform = uniform_node_size(t.members);
  const bool hier =
      use_hier(t, bytes, /*device=*/true) && uniform > 1 && count >= uniform;
  if (!hier) {
    device_sliced_allreduce(op, g, identity_ranks(g.size()), g.my_rank,
                            recvbuf, count, take_max);
    op.device_elapsed_ns += eng.now() - t0;
    return;
  }
  // Two-level schedule with device-resident intra legs: the ring
  // reduce-scatter and allgather exchange device pointers directly (the
  // IPC transport peer-copies them when device_direct() holds — no host
  // bounce); only the owned stripe runs the sliced host pipeline across
  // the fabric.
  ++op.hier_calls;
  static const Datatype double_t = committed_double();
  const std::vector<int>& mem =
      t.members[static_cast<std::size_t>(t.my_node)];
  const int n = uniform;
  const int me_local = index_of(mem, g.my_rank);
  const int q = count / n;
  const int r = count % n;
  auto slice_start = [&](int j) { return j * q + std::min(j, r); };
  auto slice_len = [&](int j) { return q + (j < r ? 1 : 0); };
  const int right = g.world[static_cast<std::size_t>(
      mem[static_cast<std::size_t>((me_local + 1) % n)])];
  const int left = g.world[static_cast<std::size_t>(
      mem[static_cast<std::size_t>((me_local - 1 + n) % n)])];
  const bool peer_direct = comm_.net().device_direct(right);
  double* dtmp = device_scratch(static_cast<std::size_t>(q + (r ? 1 : 0)));
  // Phase A: device-resident ring reduce-scatter (same schedule as the
  // host engine's striped phase A; folds are reduction kernels).
  ++op.intra_phases;
  sim::SimTime ring_t0 = eng.now();
  for (int s = 0; s < n - 1; ++s) {
    const int sj = ((me_local - s - 1) % n + n) % n;
    const int rj = ((me_local - s - 2) % n + n) % n;
    Request rr = irecv_track(dtmp, slice_len(rj), double_t, left,
                             kTagDevArRs - s, g.context);
    Request sr = isend_counted(op, recvbuf + slice_start(sj), slice_len(sj),
                               double_t, right, kTagDevArRs - s, g.context);
    cwait(sr);
    cwait(rr);
    const std::size_t sb =
        sizeof(double) * static_cast<std::size_t>(slice_len(sj));
    if (peer_direct) op.bytes_peer += sb; else op.bytes_staged += sb;
    device_fold(op, recvbuf + slice_start(rj), dtmp, slice_len(rj), take_max);
  }
  op.device_stage_ns += eng.now() - ring_t0;
  // Phase B: sliced host pipeline on the owned stripe, striped across the
  // counterpart members of every node.
  if (t.num_nodes() > 1) {
    ++op.leader_phases;
    std::vector<int> stripe_group;
    stripe_group.reserve(t.members.size());
    for (const std::vector<int>& node_mem : t.members) {
      stripe_group.push_back(
          node_mem[static_cast<std::size_t>(me_local)]);
    }
    device_sliced_allreduce(op, g, stripe_group, t.my_node,
                            recvbuf + slice_start(me_local),
                            slice_len(me_local), take_max);
  }
  // Phase C: device-resident ring allgather of the reduced slices.
  ++op.intra_phases;
  ring_t0 = eng.now();
  for (int s = 0; s < n - 1; ++s) {
    const int sj = ((me_local - s) % n + n) % n;
    const int rj = ((me_local - s - 1) % n + n) % n;
    Request rr = irecv_track(recvbuf + slice_start(rj), slice_len(rj),
                             double_t, left, kTagDevArAg - s, g.context);
    Request sr = isend_counted(op, recvbuf + slice_start(sj), slice_len(sj),
                               double_t, right, kTagDevArAg - s, g.context);
    cwait(sr);
    cwait(rr);
    const std::size_t sb =
        sizeof(double) * static_cast<std::size_t>(slice_len(sj));
    if (peer_direct) op.bytes_peer += sb; else op.bytes_staged += sb;
  }
  op.device_stage_ns += eng.now() - ring_t0;
  op.device_elapsed_ns += eng.now() - t0;
}

// ---------------------------------------------------------------------------
// Bcast
// ---------------------------------------------------------------------------

void CollEngine::device_bcast(CollOpStats& op, void* buf, int count,
                              const Datatype& dtype, int root,
                              const CommGroup& g) {
  cusim::CudaContext& ctx = comm_.cuda();
  const core::Tunables& tun = comm_.tunables();
  sim::Engine& eng = comm_.engine();
  const sim::SimTime t0 = eng.now();
  ++op.device_calls;
  const std::size_t bytes = dtype.size() * static_cast<std::size_t>(count);
  if (g.size() == 1 || bytes == 0) {
    const sim::SimTime dt = eng.now() - t0;
    op.device_stage_ns += dt;
    op.device_elapsed_ns += dt;
    return;
  }
  bool pipelined = false;
  switch (tun.coll_device) {
    case core::CollDevice::kStaged: break;
    case core::CollDevice::kPipelined: pipelined = true; break;
    case core::CollDevice::kAuto:
      pipelined = tun.gpu_offload && device_pipeline_wins(bytes, g.size());
      break;
  }
  auto* dev = static_cast<std::byte*>(buf);

  if (!pipelined) {
    std::byte* host = scratch<std::byte>(bytes);
    if (g.my_rank == root) {
      ctx.memcpy(host, dev, bytes);
      op.bytes_staged += bytes;
    }
    bcast_wire(op, host, count, dtype, root, g);
    if (g.my_rank != root) {
      ctx.memcpy(dev, host, bytes);
      op.bytes_staged += bytes;
    }
    const sim::SimTime dt = eng.now() - t0;
    op.device_stage_ns += dt;
    op.device_elapsed_ns += dt;
    return;
  }

  ++op.device_pipelined;
  ensure_coll_streams();
  static const Datatype byte_t = committed_byte();
  const std::size_t slice_bytes = pick_slice_bytes(bytes, g.size());
  const int S = static_cast<int>((bytes + slice_bytes - 1) / slice_bytes);
  op.device_slices += static_cast<std::uint64_t>(S);
  Topology t = map_nodes(g);
  const bool hier = use_hier(t, bytes, /*device=*/true);
  auto slice_off = [&](int k) {
    return static_cast<std::size_t>(k) * slice_bytes;
  };
  auto slice_len = [&](int k) {
    return std::min(slice_bytes, bytes - slice_off(k));
  };

  if (!hier) {
    // Flat: per slice, the root stages D2H and leads a host binomial over
    // staging slots; receivers write each arriving slice back on coll_h2d_
    // while later slices are still on the wire.
    const std::vector<int> ranks = identity_ranks(g.size());
    std::vector<core::detail::StagingSlot*> slots(
        static_cast<std::size_t>(S));
    std::vector<cusim::Event> d2h(static_cast<std::size_t>(S));
    for (int k = 0; k < S; ++k) {
      slots[static_cast<std::size_t>(k)] = slot_scratch(slice_len(k));
      if (g.my_rank == root) {
        ctx.memcpy_async(slots[static_cast<std::size_t>(k)]->ptr,
                         dev + slice_off(k), slice_len(k),
                         cusim::MemcpyKind::kDeviceToHost, coll_d2h_);
        d2h[static_cast<std::size_t>(k)] = ctx.record_event(coll_d2h_);
        op.bytes_staged += slice_len(k);
        op.device_stage_ns +=
            hints_.copy_launch_ns +
            static_cast<sim::SimTime>(static_cast<double>(slice_len(k)) /
                                      hints_.d2h_bw);
      }
    }
    ++op.leader_phases;
    for (int k = 0; k < S; ++k) {
      std::byte* host = slots[static_cast<std::size_t>(k)]->ptr;
      const std::size_t b = slice_len(k);
      if (g.my_rank == root) d2h[static_cast<std::size_t>(k)].synchronize();
      const sim::SimTime wire_t0 = eng.now();
      binomial_bcast(op, g, ranks, g.my_rank, root, host,
                     static_cast<int>(b), byte_t, kTagDevBcast - k);
      op.device_stage_ns += eng.now() - wire_t0;
      if (g.my_rank != root) {
        ctx.memcpy_async(dev + slice_off(k), host, b,
                         cusim::MemcpyKind::kHostToDevice, coll_h2d_);
        op.bytes_staged += b;
        op.device_stage_ns +=
            hints_.copy_launch_ns +
            static_cast<sim::SimTime>(static_cast<double>(b) / hints_.h2d_bw);
      }
    }
    sim::EventFlag drained(eng);
    ctx.launch_host_trigger(coll_h2d_, [&drained] { drained.trigger(); });
    drained.wait("coll_device_bcast_drain");
    op.device_elapsed_ns += eng.now() - t0;
    return;
  }

  // Two-level: slices hop leaders over the fabric on staging slots; each
  // leader lands its slice on-device and fans it out device-resident over
  // the IPC peer path (members receive straight into device memory).
  ++op.hier_calls;
  const int root_node = t.node_of[static_cast<std::size_t>(root)];
  t.leaders[static_cast<std::size_t>(root_node)] = root;
  const std::vector<int>& mem =
      t.members[static_cast<std::size_t>(t.my_node)];
  const int leader = t.leaders[static_cast<std::size_t>(t.my_node)];
  const bool am_leader = g.my_rank == leader;
  if (am_leader && t.num_nodes() > 1) ++op.leader_phases;
  if (mem.size() > 1) ++op.intra_phases;
  int peer_probe = -1;  // a co-member, for the device-direct stats split
  for (int m : mem) {
    if (m != g.my_rank) {
      peer_probe = g.world[static_cast<std::size_t>(m)];
      break;
    }
  }
  std::vector<core::detail::StagingSlot*> slots;
  std::vector<cusim::Event> d2h;
  if (am_leader) {
    slots.resize(static_cast<std::size_t>(S));
    d2h.resize(static_cast<std::size_t>(S));
    for (int k = 0; k < S; ++k) {
      slots[static_cast<std::size_t>(k)] = slot_scratch(slice_len(k));
      if (g.my_rank == root) {
        ctx.memcpy_async(slots[static_cast<std::size_t>(k)]->ptr,
                         dev + slice_off(k), slice_len(k),
                         cusim::MemcpyKind::kDeviceToHost, coll_d2h_);
        d2h[static_cast<std::size_t>(k)] = ctx.record_event(coll_d2h_);
        op.bytes_staged += slice_len(k);
      }
    }
  }
  for (int k = 0; k < S; ++k) {
    const std::size_t b = slice_len(k);
    if (am_leader) {
      std::byte* host = slots[static_cast<std::size_t>(k)]->ptr;
      if (g.my_rank == root) d2h[static_cast<std::size_t>(k)].synchronize();
      if (t.num_nodes() > 1) {
        binomial_bcast(op, g, t.leaders, t.my_node, root_node, host,
                       static_cast<int>(b), byte_t, kTagDevBcastLeader - k);
      }
      if (g.my_rank != root) {
        // Land the slice on-device before the intra fan-out reads it.
        ctx.memcpy_async(dev + slice_off(k), host, b,
                         cusim::MemcpyKind::kHostToDevice, coll_h2d_);
        ctx.record_event(coll_h2d_).synchronize();
        op.bytes_staged += b;
      }
    }
    if (mem.size() > 1) {
      const std::uint64_t sent0 = op.bytes_sent;
      binomial_bcast(op, g, mem, index_of(mem, g.my_rank),
                     index_of(mem, leader), dev + slice_off(k),
                     static_cast<int>(b), byte_t, kTagDevBcastIntra - k);
      const std::uint64_t delta = op.bytes_sent - sent0;
      if (peer_probe >= 0 && comm_.net().device_direct(peer_probe)) {
        op.bytes_peer += delta;
      } else {
        op.bytes_staged += delta;
      }
    }
  }
  const sim::SimTime dt = eng.now() - t0;
  op.device_stage_ns += dt;
  op.device_elapsed_ns += dt;
}

// ---------------------------------------------------------------------------
// Allgather
// ---------------------------------------------------------------------------

void CollEngine::device_allgather(CollOpStats& op, const void* sendbuf,
                                  int count, const Datatype& dtype,
                                  void* recvbuf, const CommGroup& g) {
  cusim::CudaContext& ctx = comm_.cuda();
  const core::Tunables& tun = comm_.tunables();
  sim::Engine& eng = comm_.engine();
  const sim::SimTime t0 = eng.now();
  ++op.device_calls;
  const std::size_t block = static_cast<std::size_t>(dtype.extent()) *
                            static_cast<std::size_t>(count);
  const int p = g.size();
  const int my = g.my_rank;
  auto* out = static_cast<std::byte*>(recvbuf);

  if (p == 1 || block == 0) {
    if (block > 0 && sendbuf != recvbuf) ctx.memcpy(out, sendbuf, block);
    const sim::SimTime dt = eng.now() - t0;
    op.device_stage_ns += dt;
    op.device_elapsed_ns += dt;
    return;
  }

  const std::size_t total = block * static_cast<std::size_t>(p);
  const bool both_dev = device_buffer(sendbuf) && device_buffer(recvbuf);
  bool pipelined = false;
  switch (tun.coll_device) {
    case core::CollDevice::kStaged: break;
    case core::CollDevice::kPipelined: pipelined = both_dev; break;
    case core::CollDevice::kAuto:
      pipelined =
          both_dev && tun.gpu_offload && device_pipeline_wins(total, p);
      break;
  }

  if (!pipelined) {
    std::byte* hin = scratch<std::byte>(block);
    std::byte* hout = scratch<std::byte>(total);
    if (device_buffer(sendbuf)) {
      ctx.memcpy(hin, sendbuf, block);
      op.bytes_staged += block;
    } else {
      std::memcpy(hin, sendbuf, block);
    }
    allgather_wire(op, hin, count, dtype, hout, g);
    if (device_buffer(recvbuf)) {
      ctx.memcpy(out, hout, total);
      op.bytes_staged += total;
    } else {
      std::memcpy(out, hout, total);
    }
    const sim::SimTime dt = eng.now() - t0;
    op.device_stage_ns += dt;
    op.device_elapsed_ns += dt;
    return;
  }

  ++op.device_pipelined;
  ensure_coll_streams();
  const Topology t = map_nodes(g);
  if (use_hier(t, block)) {
    // Two-level pass-through with device pointers: the intra ring and
    // co-member forwards peer-copy device memory directly (device_direct),
    // and each fabric stripe leg rides the rendezvous' own chunked
    // pipeline. The byte split below attributes this rank's sends to the
    // peer path when its node's IPC channel is device-direct.
    const std::uint64_t sent0 = op.bytes_sent;
    allgather_wire(op, sendbuf, count, dtype, recvbuf, g);
    const std::uint64_t delta = op.bytes_sent - sent0;
    int peer_probe = -1;
    const std::vector<int>& mem =
        t.members[static_cast<std::size_t>(t.my_node)];
    for (int m : mem) {
      if (m != my) {
        peer_probe = g.world[static_cast<std::size_t>(m)];
        break;
      }
    }
    if (peer_probe >= 0 && comm_.net().device_direct(peer_probe)) {
      op.bytes_peer += delta;
    } else {
      op.bytes_staged += delta;
    }
    const sim::SimTime dt = eng.now() - t0;
    op.device_stage_ns += dt;
    op.device_elapsed_ns += dt;
    return;
  }
  // Flat host-mirror ring: the own block crosses PCIe once (D2H into a
  // mirror slot), every forward sends from the host mirror — no per-hop
  // PCIe round trip — and each arriving block's H2D overlaps the next ring
  // step; the own block lands on-device via a D2D copy.
  static const Datatype byte_t = committed_byte();
  ++op.leader_phases;
  op.device_slices += static_cast<std::uint64_t>(p);
  std::vector<core::detail::StagingSlot*> mirror(
      static_cast<std::size_t>(p), nullptr);
  mirror[static_cast<std::size_t>(my)] = slot_scratch(block);
  ctx.memcpy_async(mirror[static_cast<std::size_t>(my)]->ptr, sendbuf, block,
                   cusim::MemcpyKind::kDeviceToHost, coll_d2h_);
  cusim::Event own_d2h = ctx.record_event(coll_d2h_);
  op.bytes_staged += block;
  op.device_stage_ns +=
      hints_.copy_launch_ns +
      static_cast<sim::SimTime>(static_cast<double>(block) / hints_.d2h_bw);
  ctx.memcpy_async(out + static_cast<std::size_t>(my) * block, sendbuf,
                   block, cusim::MemcpyKind::kDeviceToDevice, coll_red_);
  const int right = g.world[static_cast<std::size_t>((my + 1) % p)];
  const int left = g.world[static_cast<std::size_t>((my - 1 + p) % p)];
  for (int s = 0; s < p - 1; ++s) {
    const int sendb = (my - s + p) % p;
    const int recvb = (my - s - 1 + p) % p;
    mirror[static_cast<std::size_t>(recvb)] = slot_scratch(block);
    Request rr = irecv_track(mirror[static_cast<std::size_t>(recvb)]->ptr,
                             static_cast<int>(block), byte_t, left,
                             kTagDevAgBlock - recvb, g.context);
    if (s == 0) own_d2h.synchronize();
    const sim::SimTime wire_t0 = eng.now();
    Request sr = isend_counted(op,
                               mirror[static_cast<std::size_t>(sendb)]->ptr,
                               static_cast<int>(block), byte_t, right,
                               kTagDevAgBlock - sendb, g.context);
    cwait(sr);
    cwait(rr);
    op.device_stage_ns += eng.now() - wire_t0;
    ctx.memcpy_async(out + static_cast<std::size_t>(recvb) * block,
                     mirror[static_cast<std::size_t>(recvb)]->ptr, block,
                     cusim::MemcpyKind::kHostToDevice, coll_h2d_);
    op.bytes_staged += block;
    op.device_stage_ns +=
        hints_.copy_launch_ns +
        static_cast<sim::SimTime>(static_cast<double>(block) / hints_.h2d_bw);
  }
  ctx.record_event(coll_red_).synchronize();  // own-block D2D
  sim::EventFlag drained(eng);
  ctx.launch_host_trigger(coll_h2d_, [&drained] { drained.trigger(); });
  drained.wait("coll_device_ag_drain");
  op.device_elapsed_ns += eng.now() - t0;
}

}  // namespace mv2gnc::mpisim::detail
